package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustSelect(t *testing.T, in Inputs) Plan {
	t.Helper()
	p, err := Select(in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSelectValidation(t *testing.T) {
	bad := []Inputs{
		{RenewableW: -1},
		{DemandW: -1},
		{BatteryDischargeW: -1},
		{BatteryChargeW: -1},
		{GridBudgetW: -1},
	}
	for _, in := range bad {
		if _, err := Select(in); !errors.Is(err, ErrBadInputs) {
			t.Errorf("Select(%+v) err = %v, want ErrBadInputs", in, err)
		}
	}
}

func TestCaseASurplusChargesBattery(t *testing.T) {
	p := mustSelect(t, Inputs{
		RenewableW: 1500, DemandW: 1000,
		BatteryChargeW: 300, BatteryDischargeW: 999, GridBudgetW: 1000,
	})
	if p.Case != CaseA {
		t.Fatalf("case = %v, want A", p.Case)
	}
	if p.LoadRenewableW != 1000 || p.LoadBatteryW != 0 || p.LoadGridW != 0 {
		t.Errorf("load mix = %+v", p)
	}
	if p.ChargeRenewableW != 300 || p.ChargeGridW != 0 {
		t.Errorf("charge mix = %+v", p)
	}
	if p.CurtailedW != 200 {
		t.Errorf("curtailed = %v, want 200", p.CurtailedW)
	}
	if p.SupplyW() != 1000 {
		t.Errorf("supply = %v, want 1000", p.SupplyW())
	}
}

func TestCaseBBatterySupplements(t *testing.T) {
	p := mustSelect(t, Inputs{
		RenewableW: 600, DemandW: 1000,
		BatteryDischargeW: 800, BatteryChargeW: 500, GridBudgetW: 1000,
	})
	if p.Case != CaseB {
		t.Fatalf("case = %v, want B", p.Case)
	}
	if p.LoadRenewableW != 600 || p.LoadBatteryW != 400 || p.LoadGridW != 0 {
		t.Errorf("load mix = %+v", p)
	}
	if p.GridW() != 0 {
		t.Errorf("grid = %v, want 0", p.GridW())
	}
	if p.SupplyW() != 1000 {
		t.Errorf("supply = %v", p.SupplyW())
	}
}

func TestCaseBGridTakesOverAtDoD(t *testing.T) {
	// Battery can only deliver 100 W: grid covers the remaining 300.
	// No grid charging while the bank is still discharging — a bank
	// cannot do both in one epoch.
	p := mustSelect(t, Inputs{
		RenewableW: 600, DemandW: 1000,
		BatteryDischargeW: 100, BatteryChargeW: 2000, GridBudgetW: 1000,
	})
	if p.Case != CaseB {
		t.Fatalf("case = %v, want B", p.Case)
	}
	if p.LoadBatteryW != 100 || p.LoadGridW != 300 {
		t.Errorf("load mix = %+v", p)
	}
	if p.ChargeGridW != 0 {
		t.Errorf("grid charge = %v, want 0 while discharging", p.ChargeGridW)
	}
	if p.ChargeRenewableW != 0 {
		t.Error("only one source may charge the battery")
	}
}

func TestCaseBGridChargesOnceBatteryEmpty(t *testing.T) {
	// Bank fully drained: the grid covers the shortfall and recharges
	// the bank with the leftover budget.
	p := mustSelect(t, Inputs{
		RenewableW: 600, DemandW: 1000,
		BatteryDischargeW: 0, BatteryChargeW: 2000, GridBudgetW: 1000,
	})
	if p.LoadGridW != 400 {
		t.Errorf("grid load = %v, want 400", p.LoadGridW)
	}
	if p.ChargeGridW != 600 { // 1000 budget − 400 load
		t.Errorf("grid charge = %v, want 600", p.ChargeGridW)
	}
}

func TestDischargeLockout(t *testing.T) {
	// Recovery latch active: the bank must not discharge even though it
	// has headroom; grid covers and recharges.
	p := mustSelect(t, Inputs{
		RenewableW: 0, DemandW: 800,
		BatteryDischargeW: 500, BatteryChargeW: 400, GridBudgetW: 1500,
		DischargeLockout: true,
	})
	if p.LoadBatteryW != 0 {
		t.Errorf("battery load = %v during lockout, want 0", p.LoadBatteryW)
	}
	if p.LoadGridW != 800 {
		t.Errorf("grid load = %v, want 800", p.LoadGridW)
	}
	if p.ChargeGridW != 400 { // min(1500−800, 400)
		t.Errorf("grid charge = %v, want 400", p.ChargeGridW)
	}
	// Case A charging is unaffected by the lockout.
	p = mustSelect(t, Inputs{
		RenewableW: 1000, DemandW: 500, BatteryChargeW: 300,
		DischargeLockout: true,
	})
	if p.ChargeRenewableW != 300 {
		t.Errorf("renewable charge = %v under lockout, want 300", p.ChargeRenewableW)
	}
}

func TestCaseCBatteryAlone(t *testing.T) {
	p := mustSelect(t, Inputs{
		RenewableW: 0, DemandW: 900,
		BatteryDischargeW: 2000, BatteryChargeW: 100, GridBudgetW: 1000,
	})
	if p.Case != CaseC {
		t.Fatalf("case = %v, want C", p.Case)
	}
	if p.LoadBatteryW != 900 || p.LoadGridW != 0 || p.LoadRenewableW != 0 {
		t.Errorf("load mix = %+v", p)
	}
}

func TestCaseCGridBudgetCapsSupply(t *testing.T) {
	// Battery drained, demand 1500, grid budget only 1000: supply is
	// capped — the scarcity regime where PAR matters.
	p := mustSelect(t, Inputs{
		RenewableW: 0, DemandW: 1500,
		BatteryDischargeW: 0, BatteryChargeW: 500, GridBudgetW: 1000,
	})
	if p.Case != CaseC {
		t.Fatalf("case = %v, want C", p.Case)
	}
	if p.LoadGridW != 1000 {
		t.Errorf("grid load = %v, want 1000 (budget)", p.LoadGridW)
	}
	if p.SupplyW() != 1000 {
		t.Errorf("supply = %v, want capped 1000", p.SupplyW())
	}
	if p.ChargeGridW != 0 {
		t.Errorf("no budget left to charge, got %v", p.ChargeGridW)
	}
}

func TestRenewableFloorForcesCaseC(t *testing.T) {
	p := mustSelect(t, Inputs{
		RenewableW: 3, DemandW: 100,
		BatteryDischargeW: 500, GridBudgetW: 0,
	})
	if p.Case != CaseC {
		t.Fatalf("case = %v, want C below inverter floor", p.Case)
	}
	if p.CurtailedW != 3 {
		t.Errorf("curtailed = %v, want 3", p.CurtailedW)
	}
}

func TestCaseAZeroDemand(t *testing.T) {
	p := mustSelect(t, Inputs{
		RenewableW: 500, DemandW: 0, BatteryChargeW: 200,
	})
	if p.Case != CaseA || p.SupplyW() != 0 {
		t.Errorf("plan = %+v", p)
	}
	if p.ChargeRenewableW != 200 || p.CurtailedW != 300 {
		t.Errorf("charge/curtail = %v/%v", p.ChargeRenewableW, p.CurtailedW)
	}
}

func TestCaseString(t *testing.T) {
	if CaseA.String() != "A" || CaseB.String() != "B" || CaseC.String() != "C" {
		t.Error("Case.String mismatch")
	}
	if Case(9).String() != "Case(9)" {
		t.Errorf("unknown = %v", Case(9))
	}
}

// Property: the plan never violates physical constraints — supply ≤
// demand, battery draw within limits, grid within budget, single charging
// source, no negative flows, and renewable accounting balances.
func TestQuickPlanInvariants(t *testing.T) {
	f := func(renRaw, demRaw, disRaw, chgRaw, gridRaw uint16) bool {
		in := Inputs{
			RenewableW:        float64(renRaw),
			DemandW:           float64(demRaw),
			BatteryDischargeW: float64(disRaw),
			BatteryChargeW:    float64(chgRaw),
			GridBudgetW:       float64(gridRaw),
		}
		p, err := Select(in)
		if err != nil {
			return false
		}
		const eps = 1e-9
		if p.LoadRenewableW < 0 || p.LoadBatteryW < 0 || p.LoadGridW < 0 ||
			p.ChargeRenewableW < 0 || p.ChargeGridW < 0 || p.CurtailedW < 0 {
			return false
		}
		if p.SupplyW() > in.DemandW+eps {
			return false
		}
		if p.LoadBatteryW > in.BatteryDischargeW+eps {
			return false
		}
		if p.ChargeRenewableW+p.ChargeGridW > in.BatteryChargeW+eps {
			return false
		}
		if p.GridW() > in.GridBudgetW+eps {
			return false
		}
		if p.ChargeRenewableW > 0 && p.ChargeGridW > 0 {
			return false // single charging source
		}
		// Renewable energy conservation.
		if p.LoadRenewableW+p.ChargeRenewableW+p.CurtailedW > in.RenewableW+eps {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: supply only falls short of demand when every source is
// genuinely exhausted.
func TestQuickSupplyShortfallJustified(t *testing.T) {
	f := func(renRaw, demRaw, disRaw, gridRaw uint16) bool {
		in := Inputs{
			RenewableW:        float64(renRaw),
			DemandW:           float64(demRaw),
			BatteryDischargeW: float64(disRaw),
			GridBudgetW:       float64(gridRaw),
		}
		p, err := Select(in)
		if err != nil {
			return false
		}
		short := in.DemandW - p.SupplyW()
		if short <= 1e-9 {
			return true
		}
		// Shortfall implies grid budget fully used on load and battery
		// at its discharge limit (renewable below floor contributes 0).
		gridExhausted := math.Abs(p.LoadGridW-in.GridBudgetW) < 1e-9
		batteryExhausted := math.Abs(p.LoadBatteryW-in.BatteryDischargeW) < 1e-9
		return gridExhausted && batteryExhausted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
