// Package power implements the power-source selection of the GreenHetero
// scheduler (paper §IV-B.1, Fig. 6): each epoch, given the predicted
// renewable supply, the predicted rack demand, the battery state, and the
// grid budget, it plans which sources power the load and which source (at
// most one) charges the battery.
//
//	Case A — renewable ≥ demand: renewable carries the load alone and
//	         the surplus charges the battery.
//	Case B — 0 < renewable < demand: the battery discharges to cover the
//	         shortfall; once it hits its DoD floor the grid takes over
//	         the shortfall and recharges the battery.
//	Case C — renewable unavailable: the battery carries the load alone;
//	         at the DoD floor the grid takes over and recharges.
//
// The grid is always the last resort and is capped by a budget (the
// paper's 1000 W default, swept in Fig. 12), so the planned supply can
// fall short of demand — that scarcity is precisely when the power
// allocation ratio matters.
package power

import (
	"errors"
	"fmt"
)

// Case classifies an epoch's supply regime (Fig. 6).
type Case int

const (
	// CaseA means renewable fully covers demand.
	CaseA Case = iota + 1
	// CaseB means renewable is positive but short; storage supplements.
	CaseB
	// CaseC means renewable is unavailable; storage or grid carries all.
	CaseC
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseA:
		return "A"
	case CaseB:
		return "B"
	case CaseC:
		return "C"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// renewableFloorW is the threshold below which renewable generation is
// treated as unavailable (Case C): PV inverters cannot hold a useful
// output below a few watts.
const renewableFloorW = 5.0

// Inputs gathers everything the planner needs for one epoch. Powers are
// epoch-average watts.
type Inputs struct {
	// RenewableW is the (predicted) renewable generation.
	RenewableW float64
	// DemandW is the (predicted) rack power demand.
	DemandW float64
	// BatteryDischargeW is the maximum power the battery can deliver
	// this epoch without crossing its DoD floor.
	BatteryDischargeW float64
	// BatteryChargeW is the maximum source-side power the battery can
	// absorb this epoch.
	BatteryChargeW float64
	// GridBudgetW caps total grid draw (load + charging).
	GridBudgetW float64
	// DischargeLockout forbids battery discharge this epoch. The
	// controller latches it after the bank reaches its DoD floor and
	// holds it until the charge recovers, so the bank cleanly recharges
	// ("the grid or the renewable power will charge the batteries to
	// prepare for future power shortages", §IV-B.1) instead of
	// oscillating at the floor.
	DischargeLockout bool
}

// ErrBadInputs is returned for negative inputs.
var ErrBadInputs = errors.New("power: negative input")

// Plan is the source mix for one epoch.
type Plan struct {
	// Case is the supply regime that produced this plan.
	Case Case
	// LoadRenewableW, LoadBatteryW, and LoadGridW power the servers.
	LoadRenewableW float64
	LoadBatteryW   float64
	LoadGridW      float64
	// ChargeRenewableW and ChargeGridW charge the battery; per the
	// paper at most one of them is nonzero.
	ChargeRenewableW float64
	ChargeGridW      float64
	// CurtailedW is renewable generation with nowhere to go
	// (load satisfied, battery full).
	CurtailedW float64
}

// SupplyW is the total power delivered to the servers.
//
// ghlint:allocfree
func (p Plan) SupplyW() float64 {
	return p.LoadRenewableW + p.LoadBatteryW + p.LoadGridW
}

// GridW is the total grid draw (load + charging).
//
// ghlint:allocfree
func (p Plan) GridW() float64 {
	return p.LoadGridW + p.ChargeGridW
}

// Select plans the epoch's source mix. It is a pure function of its
// inputs: the simulator applies the plan to the battery afterwards.
//
// ghlint:allocfree
func Select(in Inputs) (Plan, error) {
	if in.RenewableW < 0 || in.DemandW < 0 || in.BatteryDischargeW < 0 ||
		in.BatteryChargeW < 0 || in.GridBudgetW < 0 {
		return Plan{}, fmt.Errorf("%w: %+v", ErrBadInputs, in)
	}

	var p Plan
	switch {
	case in.RenewableW < renewableFloorW:
		p.Case = CaseC
	case in.RenewableW >= in.DemandW:
		p.Case = CaseA
	default:
		p.Case = CaseB
	}

	switch p.Case {
	case CaseA:
		p.LoadRenewableW = in.DemandW
		surplus := in.RenewableW - in.DemandW
		p.ChargeRenewableW = min(surplus, in.BatteryChargeW)
		p.CurtailedW = surplus - p.ChargeRenewableW

	case CaseB:
		p.LoadRenewableW = in.RenewableW
		shortfall := in.DemandW - in.RenewableW
		p.LoadBatteryW = min(shortfall, dischargeable(in))
		shortfall -= p.LoadBatteryW
		if shortfall > 0 {
			// Battery unavailable mid-shortfall: grid covers the rest
			// and recharges the battery with leftover budget. The bank
			// cannot charge and discharge in the same epoch.
			p.LoadGridW = min(shortfall, in.GridBudgetW)
			if p.LoadBatteryW == 0 {
				p.ChargeGridW = min(in.GridBudgetW-p.LoadGridW, in.BatteryChargeW)
			}
		}

	case CaseC:
		p.CurtailedW = in.RenewableW // below the inverter floor
		p.LoadBatteryW = min(in.DemandW, dischargeable(in))
		shortfall := in.DemandW - p.LoadBatteryW
		if shortfall > 0 {
			p.LoadGridW = min(shortfall, in.GridBudgetW)
			if p.LoadBatteryW == 0 {
				p.ChargeGridW = min(in.GridBudgetW-p.LoadGridW, in.BatteryChargeW)
			}
		}
	}
	return p, nil
}

// dischargeable is the battery power available for the load this epoch,
// honoring the recovery lockout.
//
// ghlint:allocfree
func dischargeable(in Inputs) float64 {
	if in.DischargeLockout {
		return 0
	}
	return in.BatteryDischargeW
}

// ghlint:allocfree
// ghlint:units a=W b=W result=W
func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
