package enforcer

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/power"
	"greenhetero/internal/server"
)

func testRack(t *testing.T) *server.Rack {
	t.Helper()
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	r, err := server.NewRack("test", server.Group{Spec: a, Count: 5}, server.Group{Spec: b, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSPCInstructions(t *testing.T) {
	rack := testRack(t)
	var spc SPC
	ins, err := spc.Instructions(rack, []float64{0.6, 0.4}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("got %d instructions, want 2", len(ins))
	}
	// Groups are sorted by ID: e5-2620 first, i5-4460 second.
	if ins[0].ServerID != server.XeonE52620 || ins[1].ServerID != server.CoreI54460 {
		t.Errorf("instruction order: %+v", ins)
	}
	if math.Abs(ins[0].TargetW-120) > 1e-9 { // 0.6·1000/5
		t.Errorf("group0 target = %v, want 120", ins[0].TargetW)
	}
	if ins[0].State.FreqMHz == 0 {
		t.Error("120 W target should select a running state")
	}
	// Group 1 gets 80 W/server ≥ i5 peak-effective range → high state.
	if ins[1].State.Watts <= 47 {
		t.Errorf("group1 state = %+v, want a loaded state", ins[1].State)
	}
}

func TestSPCSleepBelowIdle(t *testing.T) {
	rack := testRack(t)
	var spc SPC
	ins, err := spc.Instructions(rack, []float64{0.05, 0}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 10 W per Xeon is below its lowest running state → sleep.
	if ins[0].State.Name != "sleep" {
		t.Errorf("state = %+v, want sleep", ins[0].State)
	}
	if ins[1].State.Name != "sleep" {
		t.Errorf("zero fraction state = %+v, want sleep", ins[1].State)
	}
}

func TestSPCValidation(t *testing.T) {
	rack := testRack(t)
	var spc SPC
	if _, err := spc.Instructions(rack, []float64{1}, 100); !errors.Is(err, ErrFractionMismatch) {
		t.Errorf("err = %v, want ErrFractionMismatch", err)
	}
	if _, err := spc.Instructions(rack, []float64{-0.1, 0.5}, 100); !errors.Is(err, ErrBadFraction) {
		t.Errorf("err = %v, want ErrBadFraction", err)
	}
	if _, err := spc.Instructions(rack, []float64{0.7, 0.7}, 100); !errors.Is(err, ErrBadFraction) {
		t.Errorf("sum > 1 err = %v, want ErrBadFraction", err)
	}
}

func newPSC(t *testing.T) (*PSC, *battery.Bank) {
	t.Helper()
	bank, err := battery.New(battery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	psc, err := NewPSC(bank)
	if err != nil {
		t.Fatal(err)
	}
	return psc, bank
}

func TestNewPSCNil(t *testing.T) {
	if _, err := NewPSC(nil); err == nil {
		t.Error("nil bank should error")
	}
}

func TestPSCApplyDischarge(t *testing.T) {
	psc, bank := newPSC(t)
	plan := power.Plan{Case: power.CaseB, LoadRenewableW: 600, LoadBatteryW: 400}
	exec, err := psc.Apply(plan, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if exec.BatteryToLoadW != 400 {
		t.Errorf("battery to load = %v, want 400", exec.BatteryToLoadW)
	}
	if exec.SupplyW != 1000 {
		t.Errorf("supply = %v, want 1000", exec.SupplyW)
	}
	if math.Abs(bank.ChargeWh()-(12000-100)) > 1e-6 { // 400 W × 0.25 h
		t.Errorf("bank = %v Wh", bank.ChargeWh())
	}
}

func TestPSCApplyRenewableCharge(t *testing.T) {
	psc, bank := newPSC(t)
	bank.Discharge(4000, time.Hour) // make room
	plan := power.Plan{Case: power.CaseA, LoadRenewableW: 500, ChargeRenewableW: 300}
	exec, err := psc.Apply(plan, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if exec.BatteryChargedW != 300 || exec.ChargeSource != battery.SourceRenewable {
		t.Errorf("charge = %v from %v", exec.BatteryChargedW, exec.ChargeSource)
	}
	if exec.GridW != 0 {
		t.Errorf("grid = %v, want 0", exec.GridW)
	}
}

func TestPSCApplyGridChargeCountsGrid(t *testing.T) {
	psc, bank := newPSC(t)
	bank.Discharge(4800, time.Hour) // at DoD floor
	plan := power.Plan{Case: power.CaseC, LoadGridW: 700, ChargeGridW: 300}
	exec, err := psc.Apply(plan, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if exec.ChargeSource != battery.SourceGrid {
		t.Errorf("source = %v, want grid", exec.ChargeSource)
	}
	if exec.GridW != 1000 {
		t.Errorf("grid = %v, want 1000", exec.GridW)
	}
}

func TestPSCApplyRecapsAgainstLiveBank(t *testing.T) {
	// The plan asks for more than the bank still holds: execution is
	// capped, and supply falls accordingly.
	psc, bank := newPSC(t)
	bank.Discharge(4700, time.Hour) // only 100 Wh usable left
	plan := power.Plan{Case: power.CaseC, LoadBatteryW: 800}
	exec, err := psc.Apply(plan, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exec.BatteryToLoadW-100) > 1e-6 {
		t.Errorf("battery to load = %v, want capped 100", exec.BatteryToLoadW)
	}
	if exec.SupplyW != exec.BatteryToLoadW {
		t.Errorf("supply = %v, want %v", exec.SupplyW, exec.BatteryToLoadW)
	}
}

func TestPSCApplyBadEpoch(t *testing.T) {
	psc, _ := newPSC(t)
	if _, err := psc.Apply(power.Plan{}, 0); err == nil {
		t.Error("zero epoch should error")
	}
}

// Property: an executed plan never draws more battery or grid power than
// planned, and never supplies more than planned.
func TestQuickExecutionWithinPlan(t *testing.T) {
	f := func(renRaw, batRaw, gridRaw, chgRaw uint16, gridCharge bool) bool {
		bank, err := battery.New(battery.DefaultConfig())
		if err != nil {
			return false
		}
		bank.Discharge(float64(batRaw%4000), time.Hour)
		psc, err := NewPSC(bank)
		if err != nil {
			return false
		}
		plan := power.Plan{
			LoadRenewableW: float64(renRaw % 2000),
			LoadBatteryW:   float64(batRaw % 2000),
			LoadGridW:      float64(gridRaw % 2000),
		}
		if gridCharge {
			plan.ChargeGridW = float64(chgRaw % 1000)
		} else {
			plan.ChargeRenewableW = float64(chgRaw % 1000)
		}
		exec, err := psc.Apply(plan, 15*time.Minute)
		if err != nil {
			return false
		}
		const eps = 1e-9
		return exec.BatteryToLoadW <= plan.LoadBatteryW+eps &&
			exec.BatteryChargedW <= plan.ChargeRenewableW+plan.ChargeGridW+eps &&
			exec.GridW <= plan.LoadGridW+plan.ChargeGridW+eps &&
			exec.SupplyW <= plan.SupplyW()+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
