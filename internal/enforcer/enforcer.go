// Package enforcer implements the GreenHetero Enforcer (paper §IV-A):
// the Power Source Controller (PSC), which carries out source switching
// and battery charge/discharge for a planned source mix, and the Server
// Power Controller (SPC), which turns per-server power budgets into DVFS
// power-state instructions (§IV-B.4).
package enforcer

import (
	"errors"
	"fmt"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/power"
	"greenhetero/internal/server"
)

// Instruction is one SPC decision: which power state a server group's
// members should enter.
type Instruction struct {
	// GroupIndex identifies the rack group the instruction targets.
	GroupIndex int
	// ServerID is the group's server configuration.
	ServerID string
	// TargetW is the per-server power budget that produced the state.
	TargetW float64
	// State is the chosen DVFS/sleep state.
	State server.PowerState
}

var (
	// ErrFractionMismatch is returned when the PAR vector length does
	// not match the rack's groups.
	ErrFractionMismatch = errors.New("enforcer: fraction count does not match rack groups")
	// ErrBadFraction is returned for fractions outside [0, 1] or sums
	// above 1.
	ErrBadFraction = errors.New("enforcer: bad PAR fraction")
)

// SPC is the Server Power Controller.
type SPC struct{}

// Instructions maps a PAR vector over a rack into per-group power states:
// group i receives fractions[i]·supplyW, split evenly among its servers,
// and each server is set to the state selected by the paper's linear
// power→state mapping.
//
// ghlint:allocfree
// ghlint:units fractions=frac supplyW=W
func (SPC) Instructions(rack *server.Rack, fractions []float64, supplyW float64) ([]Instruction, error) {
	if len(fractions) != rack.NumGroups() {
		return nil, fmt.Errorf("%w: %d fractions, %d groups", ErrFractionMismatch, len(fractions), rack.NumGroups())
	}
	var sum float64
	for i, f := range fractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("%w: fractions[%d] = %v", ErrBadFraction, i, f)
		}
		sum += f
	}
	if sum > 1+1e-9 {
		return nil, fmt.Errorf("%w: sum %v > 1", ErrBadFraction, sum)
	}
	out := make([]Instruction, len(fractions)) //lint:ghlint ignore allocfree the per-epoch instruction slice is the SPC's one budgeted allocation (callers own it)
	for i := range out {
		g := rack.Group(i)
		perServer := fractions[i] * supplyW / float64(g.Count)
		out[i] = Instruction{
			GroupIndex: i,
			ServerID:   g.Spec.ID,
			TargetW:    perServer,
			State:      g.Spec.StateForPower(perServer),
		}
	}
	return out, nil
}

// Execution records what the PSC actually did in one epoch, which can
// fall short of the plan when the battery state moved since prediction.
type Execution struct {
	// Plan echoes the input plan.
	Plan power.Plan
	// BatteryToLoadW is the battery power actually delivered.
	BatteryToLoadW float64
	// BatteryChargedW is the source-side charging power actually
	// absorbed, from ChargeSource.
	BatteryChargedW float64
	// ChargeSource says which source charged the battery (zero when
	// BatteryChargedW is 0).
	ChargeSource battery.Source
	// GridW is the total grid power actually drawn.
	GridW float64
	// SupplyW is the power actually delivered to the servers.
	SupplyW float64
}

// PSC is the Power Source Controller. It owns the switching between
// renewable, battery, and grid feeds for one rack. The bank may be a
// rack-local *battery.Bank or a per-epoch *battery.Lease carved from a
// shared site bank.
type PSC struct {
	bank battery.Store
}

// NewPSC wires a PSC to its rack battery store.
func NewPSC(bank battery.Store) (*PSC, error) {
	if bank == nil {
		return nil, errors.New("enforcer: nil battery bank")
	}
	return &PSC{bank: bank}, nil
}

// Apply executes a source plan for one epoch against the live battery,
// re-capping flows against the bank's actual state. At most one source
// charges the battery (the plan guarantees it; Apply preserves it).
//
// ghlint:allocfree
func (p *PSC) Apply(plan power.Plan, epoch time.Duration) (Execution, error) {
	if epoch <= 0 {
		return Execution{}, fmt.Errorf("enforcer: epoch %v", epoch)
	}
	exec := Execution{Plan: plan}

	exec.BatteryToLoadW = p.bank.Discharge(plan.LoadBatteryW, epoch)

	switch {
	case plan.ChargeRenewableW > 0:
		exec.BatteryChargedW = p.bank.Charge(plan.ChargeRenewableW, epoch, battery.SourceRenewable)
		if exec.BatteryChargedW > 0 {
			exec.ChargeSource = battery.SourceRenewable
		}
	case plan.ChargeGridW > 0:
		exec.BatteryChargedW = p.bank.Charge(plan.ChargeGridW, epoch, battery.SourceGrid)
		if exec.BatteryChargedW > 0 {
			exec.ChargeSource = battery.SourceGrid
		}
	}

	gridCharge := 0.0
	if exec.ChargeSource == battery.SourceGrid {
		gridCharge = exec.BatteryChargedW
	}
	exec.GridW = plan.LoadGridW + gridCharge
	exec.SupplyW = plan.LoadRenewableW + exec.BatteryToLoadW + plan.LoadGridW
	return exec, nil
}
