// Package core implements the GreenHetero Controller (paper §IV, Fig. 4
// and Fig. 5): the rack-level decision maker that each scheduling epoch
//
//  1. predicts renewable generation and rack power demand (Holt double
//     exponential smoothing, §IV-B.1),
//  2. selects power sources for the epoch (Cases A/B/C, grid last),
//  3. if the (server, workload) pair is new, runs a training run and
//     populates the performance-power database (Algorithm 1 lines 4–5),
//  4. otherwise asks the configured policy for the power allocation
//     ratio (PAR) over the predicted supply (line 7),
//  5. enforces the decision: the PSC switches sources against the live
//     battery and the SPC maps per-server budgets to DVFS states, and
//  6. optionally folds runtime feedback samples back into the database
//     (lines 8–10, GreenHetero's adaptive optimization).
//
// The controller is deliberately ignorant of whether its measurements
// come from a simulator or from live telemetry agents — both implement
// Prober.
package core

import (
	"errors"
	"fmt"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/enforcer"
	"greenhetero/internal/fit"
	"greenhetero/internal/policy"
	"greenhetero/internal/power"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/server"
	"greenhetero/internal/timeseries"
	"greenhetero/internal/workload"
)

// TrainingResult is what a training run measures for one pair.
type TrainingResult struct {
	// Samples are the profiled (power, performance) points.
	Samples []fit.Sample
	// PeakEffW is the highest power draw observed — the pair's
	// effective peak demand.
	PeakEffW float64
}

// Prober measures live servers. The simulator implements it over the
// hidden ground truth; live deployments implement it over telemetry.
type Prober interface {
	// TrainingRun profiles (spec, w) with ample power, as in Fig. 7:
	// the system runs under the ondemand governor while performance and
	// power samples are collected.
	TrainingRun(spec server.Spec, w workload.Workload) (TrainingResult, error)
}

// Config assembles a controller.
type Config struct {
	// Rack is the controller's rack (rack-level deployment, §IV-A).
	Rack *server.Rack
	// DB is the performance-power database.
	DB *profiledb.DB
	// Policy decides the PAR (Table III).
	Policy policy.Policy
	// Battery is the rack's energy storage: a rack-local *battery.Bank,
	// or a *battery.Lease carved per epoch from a shared site bank by
	// the fleet coordinator.
	Battery battery.Store
	// GridBudgetW caps grid draw (paper default 1000 W).
	GridBudgetW float64
	// Epoch is the scheduling epoch (paper: 15 minutes).
	Epoch time.Duration
	// Prober runs training measurements.
	Prober Prober
	// TryAllocation, if set, lets the Manual policy trial allocations
	// on the live system at the epoch's supply.
	TryAllocation func(supplyW float64, fractions []float64) (float64, error)
	// Alpha/Beta fix the Holt smoothing parameters. Zero values mean
	// the defaults (0.5, 0.3); use timeseries.Train on historical
	// traces to pick better ones.
	Alpha, Beta float64
	// RenewablePredictor and DemandPredictor, when set, replace the
	// default Holt smoothers (e.g. with the seasonal Holt-Winters
	// extension). The paper's framework explicitly admits "any other
	// proven prediction approaches" (§IV-B.1).
	RenewablePredictor timeseries.Predictor
	DemandPredictor    timeseries.Predictor
}

// ErrBadConfig is returned by New for incomplete configurations.
var ErrBadConfig = errors.New("core: bad config")

// Controller is the per-rack GreenHetero controller.
type Controller struct {
	cfg       Config
	renewable timeseries.Predictor
	demand    timeseries.Predictor
	psc       *enforcer.PSC
	spc       enforcer.SPC
	epochIdx  int
	// recovering latches after the bank hits its DoD floor and holds
	// until the charge recovers, so the bank recharges cleanly instead
	// of trickle-cycling at the floor.
	recovering bool
	// groups caches Rack.Groups() (immutable after construction) so the
	// per-epoch paths do not re-copy the slice.
	groups []server.Group
	// scratch is the policy layer's reusable per-epoch working memory
	// (projection entries, solver models, the warm solver cache). Owned
	// by this controller, so it is never shared across goroutines.
	scratch *policy.Scratch
	// wsBuf backs StepObserved's uniform-workload expansion.
	wsBuf []workload.Workload
	// bidEntry backs BelievedDemandW's projection lookups.
	bidEntry profiledb.Entry
}

// recoverSoC is the state of charge at which a bank that drained to its
// DoD floor is considered recovered and may discharge again.
const recoverSoC = 0.75

// New validates cfg and builds a controller.
func New(cfg Config) (*Controller, error) {
	switch {
	case cfg.Rack == nil:
		return nil, fmt.Errorf("%w: nil rack", ErrBadConfig)
	case cfg.DB == nil:
		return nil, fmt.Errorf("%w: nil database", ErrBadConfig)
	case cfg.Policy == nil:
		return nil, fmt.Errorf("%w: nil policy", ErrBadConfig)
	case cfg.Battery == nil:
		return nil, fmt.Errorf("%w: nil battery", ErrBadConfig)
	case cfg.Prober == nil:
		return nil, fmt.Errorf("%w: nil prober", ErrBadConfig)
	case cfg.Epoch <= 0:
		return nil, fmt.Errorf("%w: epoch %v", ErrBadConfig, cfg.Epoch)
	case cfg.GridBudgetW < 0:
		return nil, fmt.Errorf("%w: grid budget %v", ErrBadConfig, cfg.GridBudgetW)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.3
	}
	var ren timeseries.Predictor = cfg.RenewablePredictor
	if ren == nil {
		h, err := timeseries.NewHolt(cfg.Alpha, cfg.Beta)
		if err != nil {
			return nil, fmt.Errorf("core: renewable predictor: %w", err)
		}
		ren = h
	}
	var dem timeseries.Predictor = cfg.DemandPredictor
	if dem == nil {
		h, err := timeseries.NewHolt(cfg.Alpha, cfg.Beta)
		if err != nil {
			return nil, fmt.Errorf("core: demand predictor: %w", err)
		}
		dem = h
	}
	psc, err := enforcer.NewPSC(cfg.Battery)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Controller{
		cfg:       cfg,
		renewable: ren,
		demand:    dem,
		psc:       psc,
		groups:    cfg.Rack.Groups(),
		scratch:   policy.NewScratch(),
	}, nil
}

// Decision records everything the controller decided for one epoch.
type Decision struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Case is the supply regime the planner chose.
	Case power.Case
	// PredictedRenewableW and PredictedDemandW are the Holt forecasts
	// the decision was based on.
	PredictedRenewableW float64
	PredictedDemandW    float64
	// Plan is the executed source plan (built against the measured
	// renewable power at enforcement time).
	Plan power.Plan
	// Execution is what the PSC actually did against the live battery.
	Execution enforcer.Execution
	// SupplyW is the power actually delivered to the servers.
	SupplyW float64
	// Fractions is the PAR vector applied (one per rack group).
	Fractions []float64
	// Instructions are the SPC's per-group DVFS decisions.
	Instructions []enforcer.Instruction
	// TrainingRun reports whether this epoch ran a training run
	// instead of a policy allocation.
	TrainingRun bool
	// Degraded reports that the epoch ran on stale (last-known-good)
	// observations from a degraded Monitor collection: the decision
	// stands, but the predictors were not fed.
	Degraded bool
	// Unconstrained reports a Case A epoch: supply covers demand, so no
	// power capping is enforced and servers run under the ondemand
	// governor at their natural draw (the paper observes that adaptive
	// allocation "has very little impact when the power supply is
	// abundant"; these are also the epochs whose measurements reveal
	// each pair's true saturation point to the database).
	Unconstrained bool
}

// Observation is one epoch's measured controller inputs, with
// provenance: Stale marks values carried over from the Monitor's
// last-known-good readings (degraded collection) instead of fresh
// samples.
type Observation struct {
	// RenewableW is the renewable power measured during this epoch.
	RenewableW float64
	// DemandW is the rack demand observed last epoch.
	DemandW float64
	// Stale marks a degraded observation. The controller still plans
	// and enforces — the rack must keep running through a partial
	// Monitor outage — but the predictors skip it: replayed values
	// would teach the smoothers a flat line nobody measured.
	Stale bool
}

// Step runs one scheduling epoch with every group running the same
// workload. obsRenewableW is the renewable power measured during this
// epoch (the PSC sees it in real time; the *predictors* only consume it
// at the end of the step, so planning uses forecasts). obsDemandW is the
// rack demand observed last epoch.
//
// ghlint:allocfree
func (c *Controller) Step(obsRenewableW, obsDemandW float64, w workload.Workload) (Decision, error) {
	return c.StepObserved(Observation{RenewableW: obsRenewableW, DemandW: obsDemandW}, w)
}

// StepObserved is Step with explicit observation provenance.
//
// ghlint:allocfree
func (c *Controller) StepObserved(obs Observation, w workload.Workload) (Decision, error) {
	n := c.cfg.Rack.NumGroups()
	if cap(c.wsBuf) < n {
		c.wsBuf = make([]workload.Workload, n)
	}
	ws := c.wsBuf[:n]
	for i := range ws {
		ws[i] = w
	}
	return c.StepMixedObserved(obs, ws)
}

// StepMixed is Step for mixed racks: each group runs its own workload
// (one entry per rack group). Real datacenter racks collocate services;
// the database keys per (configuration, workload) pair either way.
//
// ghlint:allocfree
func (c *Controller) StepMixed(obsRenewableW, obsDemandW float64, groupWs []workload.Workload) (Decision, error) {
	return c.StepMixedObserved(Observation{RenewableW: obsRenewableW, DemandW: obsDemandW}, groupWs)
}

// StepMixedObserved is StepMixed with explicit observation provenance.
// It is the epoch hot path (every Step variant funnels here) and is
// under the allocfree contract; the genuinely-cold branches — training
// runs, Case A demand shares, the zero-supply epoch — carry reasoned
// suppressions that enumerate the per-epoch allocation budget.
//
// ghlint:allocfree
func (c *Controller) StepMixedObserved(obs Observation, groupWs []workload.Workload) (Decision, error) {
	obsRenewableW, obsDemandW := obs.RenewableW, obs.DemandW
	if obsRenewableW < 0 || obsDemandW < 0 {
		return Decision{}, fmt.Errorf("core: negative observation ren=%v dem=%v", obsRenewableW, obsDemandW)
	}
	if len(groupWs) != c.cfg.Rack.NumGroups() {
		return Decision{}, fmt.Errorf("core: %d workloads for %d groups", len(groupWs), c.cfg.Rack.NumGroups())
	}
	for i, w := range groupWs {
		if w.ID == "" {
			return Decision{}, fmt.Errorf("core: group %d: empty workload", i)
		}
	}
	d := Decision{Epoch: c.epochIdx, Degraded: obs.Stale}
	c.epochIdx++

	// 1. Predict. Until the smoothers are primed, fall back to the
	// most recent observation (a nowcast).
	d.PredictedRenewableW = c.forecast(c.renewable, obsRenewableW)
	d.PredictedDemandW = c.forecast(c.demand, obsDemandW)

	// 2. Training runs for unprofiled pairs (Algorithm 1 lines 3–5).
	trained, err := c.ensureProfiled(groupWs) //lint:ghlint ignore allocfree training is the cold profiling path, once per new (server, workload) pair
	if err != nil {
		return Decision{}, err
	}
	d.TrainingRun = trained

	// 3. Source selection over the forecasts, then enforcement against
	// the measured renewable power. Prediction error therefore shifts
	// the PAR optimum (computed for the forecast supply) away from the
	// supply the servers actually receive — the cost the paper's
	// trained predictor minimizes.
	if c.cfg.Battery.AtDoD() {
		c.recovering = true
	} else if c.cfg.Battery.SoC() >= recoverSoC {
		c.recovering = false
	}
	// The bank is not mutated until psc.Apply below, so the planning and
	// enforcement selections see identical battery headroom — compute it
	// once.
	batteryDischargeW := c.cfg.Battery.AvailableDischargeW(c.cfg.Epoch)
	batteryChargeW := c.cfg.Battery.AcceptableChargeW(c.cfg.Epoch)
	planned, err := power.Select(power.Inputs{
		RenewableW:        d.PredictedRenewableW,
		DemandW:           d.PredictedDemandW,
		BatteryDischargeW: batteryDischargeW,
		BatteryChargeW:    batteryChargeW,
		GridBudgetW:       c.cfg.GridBudgetW,
		DischargeLockout:  c.recovering,
	})
	if err != nil {
		return Decision{}, fmt.Errorf("core: plan: %w", err)
	}
	d.Case = planned.Case

	// 4. Allocate the predicted supply (line 7). In Case A no capping is
	// enforced: every server runs at its natural draw, and the recorded
	// PAR is simply each group's demand share.
	predictedSupply := planned.SupplyW()
	switch {
	case planned.Case == power.CaseA:
		d.Unconstrained = true
		d.Fractions = c.demandShares(groupWs) //lint:ghlint ignore allocfree Case A epochs are unconstrained — no capping runs, so the share vector is off the hot path
	case predictedSupply > 0:
		fractions, err := c.allocate(groupWs, predictedSupply)
		if err != nil {
			return Decision{}, err
		}
		d.Fractions = fractions
	default:
		d.Fractions = make([]float64, c.cfg.Rack.NumGroups()) //lint:ghlint ignore allocfree zero-supply epochs are dark-rack cold paths
	}

	// 5. Enforce with the measured renewable power.
	execPlan, err := power.Select(power.Inputs{
		RenewableW:        obsRenewableW,
		DemandW:           d.PredictedDemandW,
		BatteryDischargeW: batteryDischargeW,
		BatteryChargeW:    batteryChargeW,
		GridBudgetW:       c.cfg.GridBudgetW,
		DischargeLockout:  c.recovering,
	})
	if err != nil {
		return Decision{}, fmt.Errorf("core: exec plan: %w", err)
	}
	d.Plan = execPlan
	exec, err := c.psc.Apply(execPlan, c.cfg.Epoch)
	if err != nil {
		return Decision{}, fmt.Errorf("core: enforce: %w", err)
	}
	d.Execution = exec
	d.SupplyW = exec.SupplyW

	if d.SupplyW > 0 {
		ins, err := c.spc.Instructions(c.cfg.Rack, d.Fractions, d.SupplyW)
		if err != nil {
			return Decision{}, fmt.Errorf("core: instructions: %w", err)
		}
		d.Instructions = ins
	}

	// 6. Feed the predictors (observations become history). Stale
	// observations are excluded: they are replays, not measurements.
	if !obs.Stale {
		c.renewable.Observe(obsRenewableW)
		c.demand.Observe(obsDemandW)
	}
	return d, nil
}

// forecast returns the smoother's one-step forecast, or the fallback
// before priming. Negative forecasts (a falling trend extrapolated past
// zero) clamp to zero.
//
// ghlint:allocfree
// ghlint:units fallback=W result=W
func (c *Controller) forecast(h timeseries.Predictor, fallback float64) float64 {
	v, err := h.Forecast()
	if err != nil {
		return fallback
	}
	if v < 0 {
		return 0
	}
	return v
}

// ensureProfiled runs training runs for any rack group missing a database
// entry for its workload. Returns whether any training ran this epoch.
func (c *Controller) ensureProfiled(groupWs []workload.Workload) (bool, error) {
	var trained bool
	for i, g := range c.groups {
		k := profiledb.Key{ServerID: g.Spec.ID, WorkloadID: groupWs[i].ID}
		if c.cfg.DB.Has(k) {
			continue
		}
		res, err := c.cfg.Prober.TrainingRun(g.Spec, groupWs[i])
		if err != nil {
			return trained, fmt.Errorf("core: training run %s: %w", k, err)
		}
		peakEff := res.PeakEffW
		if peakEff <= g.Spec.IdleW {
			peakEff = g.Spec.PeakW // defensive: degenerate measurement
		}
		if err := c.cfg.DB.AddTrainingRun(k, g.Spec.IdleW, peakEff, res.Samples); err != nil {
			return trained, fmt.Errorf("core: store training run %s: %w", k, err)
		}
		trained = true
	}
	return trained, nil
}

// demandShares returns each group's share of the rack's believed demand,
// from database ranges when profiled, otherwise nameplate peaks.
func (c *Controller) demandShares(groupWs []workload.Workload) []float64 {
	groups := c.groups
	demands := make([]float64, len(groups))
	var total float64
	for i, g := range groups {
		perServer := g.Spec.PeakW
		if e, err := c.cfg.DB.Projection(profiledb.Key{ServerID: g.Spec.ID, WorkloadID: groupWs[i].ID}); err == nil {
			perServer = e.PeakEffW
		}
		demands[i] = float64(g.Count) * perServer
		total += demands[i]
	}
	if total == 0 {
		return make([]float64, len(groups))
	}
	for i := range demands {
		demands[i] /= total
	}
	return demands
}

// allocate asks the policy for the PAR vector.
//
// ghlint:allocfree
func (c *Controller) allocate(groupWs []workload.Workload, supplyW float64) ([]float64, error) {
	ctx := policy.Context{
		Groups:         c.groups,
		Workload:       groupWs[0],
		GroupWorkloads: groupWs,
		SupplyW:        supplyW,
		DB:             c.cfg.DB,
		Scratch:        c.scratch,
	}
	if c.cfg.TryAllocation != nil {
		ctx.TryAllocation = func(fracs []float64) (float64, error) { //lint:ghlint ignore allocfree the trial closure exists only for Manual's live probing, never on the solver path
			return c.cfg.TryAllocation(supplyW, fracs)
		}
	}
	fracs, err := c.cfg.Policy.Allocate(ctx) //lint:ghlint ignore allocfree policy dispatch: Solver.Allocate is verified; the baseline policies allocate by design
	if err != nil {
		return nil, fmt.Errorf("core: allocate: %w", err)
	}
	return fracs, nil
}

// Feedback folds one epoch's measured per-group samples back into the
// database when the policy is adaptive (Algorithm 1 lines 8–10). Samples
// are keyed by group index; every group runs w.
func (c *Controller) Feedback(w workload.Workload, groupSamples map[int][]fit.Sample) error {
	ws := make([]workload.Workload, c.cfg.Rack.NumGroups())
	for i := range ws {
		ws[i] = w
	}
	return c.FeedbackMixed(ws, groupSamples)
}

// FeedbackMixed is Feedback for mixed racks (one workload per group).
func (c *Controller) FeedbackMixed(groupWs []workload.Workload, groupSamples map[int][]fit.Sample) error {
	if !c.cfg.Policy.UpdatesDB() {
		return nil
	}
	groups := c.cfg.Rack.Groups()
	if len(groupWs) != len(groups) {
		return fmt.Errorf("core: feedback: %d workloads for %d groups", len(groupWs), len(groups))
	}
	for idx, samples := range groupSamples {
		if idx < 0 || idx >= len(groups) {
			return fmt.Errorf("core: feedback: group index %d out of range", idx)
		}
		k := profiledb.Key{ServerID: groups[idx].Spec.ID, WorkloadID: groupWs[idx].ID}
		if err := c.cfg.DB.AddFeedback(k, samples...); err != nil {
			// A degenerate refit must not abort the run; the previous
			// projection remains in force.
			if errors.Is(err, profiledb.ErrFit) {
				continue
			}
			return fmt.Errorf("core: feedback: %w", err)
		}
	}
	return nil
}

// SetGridBudgetW replaces the controller's grid budget. The fleet
// coordinator calls it once per epoch with the rack's share of the site
// budget before stepping the rack.
//
// ghlint:allocfree
// ghlint:units w=W
func (c *Controller) SetGridBudgetW(w float64) error {
	if w < 0 {
		return fmt.Errorf("%w: grid budget %v", ErrBadConfig, w)
	}
	c.cfg.GridBudgetW = w
	return nil
}

// BelievedDemandW is the rack's demand bid: the power it believes its
// groups draw at effective peak, priced from the database's cached
// projections (nameplate peaks for unprofiled pairs). It reads only
// controller knowledge — never ground truth — so a site allocator using
// it stays inside the paper's prediction discipline.
//
// ghlint:allocfree
func (c *Controller) BelievedDemandW(groupWs []workload.Workload) (float64, error) {
	if len(groupWs) != len(c.groups) {
		return 0, fmt.Errorf("core: bid: %d workloads for %d groups", len(groupWs), len(c.groups))
	}
	var total float64
	for i, g := range c.groups {
		perServer := g.Spec.PeakW
		k := profiledb.Key{ServerID: g.Spec.ID, WorkloadID: groupWs[i].ID}
		if err := c.cfg.DB.ProjectionInto(k, &c.bidEntry); err == nil {
			perServer = c.bidEntry.PeakEffW
		}
		total += float64(g.Count) * perServer
	}
	return total, nil
}

// Rack exposes the controller's rack.
func (c *Controller) Rack() *server.Rack { return c.cfg.Rack }

// Policy exposes the active policy.
func (c *Controller) Policy() policy.Policy { return c.cfg.Policy }

// Epoch exposes the scheduling epoch length.
func (c *Controller) Epoch() time.Duration { return c.cfg.Epoch }
