package core

import (
	"encoding/json"
	"fmt"

	"greenhetero/internal/timeseries"
)

// State is the controller's durable state: the epoch index, the
// battery-recovery latch, and both predictors' smoother states. The
// profile database and battery bank are shared objects persisted by
// their own owners (profiledb snapshot, battery.State), so they do not
// appear here.
type State struct {
	Epoch      int             `json:"epoch"`
	Recovering bool            `json:"recovering"`
	Renewable  json.RawMessage `json:"renewable"`
	Demand     json.RawMessage `json:"demand"`
}

// ExportState snapshots the controller's mutable state. It fails if a
// custom predictor does not implement timeseries.Snapshotter.
func (c *Controller) ExportState() (State, error) {
	rs, err := snapshotPredictor(c.renewable, "renewable")
	if err != nil {
		return State{}, err
	}
	ds, err := snapshotPredictor(c.demand, "demand")
	if err != nil {
		return State{}, err
	}
	return State{
		Epoch:      c.epochIdx,
		Recovering: c.recovering,
		Renewable:  rs,
		Demand:     ds,
	}, nil
}

// RestoreState applies a snapshot taken by ExportState on a controller
// built from the same Config. Predictors validate their own parameter
// fingerprints; on error the caller must discard the controller, since
// one predictor may have been restored before the other failed.
func (c *Controller) RestoreState(st State) error {
	if st.Epoch < 0 {
		return fmt.Errorf("core: restore: negative epoch %d", st.Epoch)
	}
	if err := restorePredictor(c.renewable, st.Renewable, "renewable"); err != nil {
		return err
	}
	if err := restorePredictor(c.demand, st.Demand, "demand"); err != nil {
		return err
	}
	c.epochIdx = st.Epoch
	c.recovering = st.Recovering
	return nil
}

func snapshotPredictor(p timeseries.Predictor, label string) (json.RawMessage, error) {
	s, ok := p.(timeseries.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: %s predictor %T does not support state snapshots", label, p)
	}
	b, err := s.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot %s predictor: %w", label, err)
	}
	return b, nil
}

func restorePredictor(p timeseries.Predictor, data json.RawMessage, label string) error {
	s, ok := p.(timeseries.Snapshotter)
	if !ok {
		return fmt.Errorf("core: %s predictor %T does not support state snapshots", label, p)
	}
	if err := s.Restore(data); err != nil {
		return fmt.Errorf("core: restore %s predictor: %w", label, err)
	}
	return nil
}
