package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/fit"
	"greenhetero/internal/policy"
	"greenhetero/internal/power"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/server"
	"greenhetero/internal/workload"
)

// truthProber profiles against the noiseless ground truth.
type truthProber struct {
	calls int
}

func (p *truthProber) TrainingRun(spec server.Spec, w workload.Workload) (TrainingResult, error) {
	p.calls++
	peakEff := workload.PeakEffW(spec, w)
	res := TrainingResult{PeakEffW: peakEff}
	for i := 0; i < 5; i++ {
		pw := spec.IdleW + 1 + float64(i)/4*(peakEff-spec.IdleW-1)
		res.Samples = append(res.Samples, fit.Sample{X: pw, Y: workload.Perf(spec, w, pw)})
	}
	return res, nil
}

// failingProber always errors.
type failingProber struct{}

func (failingProber) TrainingRun(server.Spec, workload.Workload) (TrainingResult, error) {
	return TrainingResult{}, errors.New("meter offline")
}

func testRack(t *testing.T) *server.Rack {
	t.Helper()
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	r, err := server.NewRack("test", server.Group{Spec: a, Count: 5}, server.Group{Spec: b, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testConfig(t *testing.T) Config {
	t.Helper()
	bank, err := battery.New(battery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rack:        testRack(t),
		DB:          profiledb.New(),
		Policy:      policy.Solver{Adaptive: true},
		Battery:     bank,
		GridBudgetW: 1000,
		Epoch:       15 * time.Minute,
		Prober:      &truthProber{},
	}
}

func mustWorkload(t *testing.T, id string) workload.Workload {
	t.Helper()
	w, err := workload.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	base := testConfig(t)
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil rack", func(c *Config) { c.Rack = nil }},
		{"nil db", func(c *Config) { c.DB = nil }},
		{"nil policy", func(c *Config) { c.Policy = nil }},
		{"nil battery", func(c *Config) { c.Battery = nil }},
		{"nil prober", func(c *Config) { c.Prober = nil }},
		{"zero epoch", func(c *Config) { c.Epoch = 0 }},
		{"negative grid", func(c *Config) { c.GridBudgetW = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
	bad := base
	bad.Alpha = 2
	if _, err := New(bad); err == nil {
		t.Error("alpha out of range should error")
	}
}

func TestFirstStepRunsTrainingForAllGroups(t *testing.T) {
	cfg := testConfig(t)
	pb := &truthProber{}
	cfg.Prober = pb
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)
	dec, err := ctrl.Step(500, 1000, w)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.TrainingRun {
		t.Error("first step should train")
	}
	if pb.calls != 2 {
		t.Errorf("training calls = %d, want one per group", pb.calls)
	}
	if cfg.DB.Len() != 2 {
		t.Errorf("db entries = %d, want 2", cfg.DB.Len())
	}
	// Second step must not retrain.
	dec, err = ctrl.Step(500, 1000, w)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TrainingRun || pb.calls != 2 {
		t.Errorf("retrained: %v calls %d", dec.TrainingRun, pb.calls)
	}
	// A new workload trains again.
	if _, err := ctrl.Step(500, 1000, mustWorkload(t, workload.Canneal)); err != nil {
		t.Fatal(err)
	}
	if pb.calls != 4 {
		t.Errorf("calls = %d, want 4 after new workload", pb.calls)
	}
}

func TestTrainingFailureSurfaces(t *testing.T) {
	cfg := testConfig(t)
	cfg.Prober = failingProber{}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(500, 1000, mustWorkload(t, workload.SPECjbb)); err == nil {
		t.Error("prober failure must surface")
	}
}

func TestCaseAIsUnconstrained(t *testing.T) {
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)
	dec, err := ctrl.Step(5000, 1000, w)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Case != power.CaseA || !dec.Unconstrained {
		t.Errorf("case %v unconstrained %v, want A/true", dec.Case, dec.Unconstrained)
	}
	// PAR reported as demand shares: Xeon group demand dominates.
	if dec.Fractions[0] <= dec.Fractions[1] {
		t.Errorf("fractions = %v, want Xeon share larger", dec.Fractions)
	}
	// Surplus renewable charges the battery... but the bank starts
	// full, so it is curtailed instead.
	if dec.Plan.CurtailedW <= 0 {
		t.Errorf("curtailed = %v, want surplus curtailment with a full bank", dec.Plan.CurtailedW)
	}
}

func TestScarcityAllocatesWithPolicy(t *testing.T) {
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)
	// Prime with two epochs, then a scarce one.
	if _, err := ctrl.Step(700, 1100, w); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(700, 1100, w); err != nil {
		t.Fatal(err)
	}
	dec, err := ctrl.Step(700, 1100, w)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Case != power.CaseB {
		t.Fatalf("case = %v, want B", dec.Case)
	}
	if dec.Unconstrained {
		t.Error("scarce epoch must be constrained")
	}
	if len(dec.Instructions) != 2 {
		t.Fatalf("instructions = %d, want 2", len(dec.Instructions))
	}
	var sum float64
	for _, f := range dec.Fractions {
		sum += f
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Errorf("fractions sum = %v", sum)
	}
	if dec.SupplyW <= 0 {
		t.Errorf("supply = %v", dec.SupplyW)
	}
}

func TestNegativeObservationRejected(t *testing.T) {
	ctrl, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(-1, 100, mustWorkload(t, workload.SPECjbb)); err == nil {
		t.Error("negative renewable must error")
	}
	if _, err := ctrl.Step(1, -100, mustWorkload(t, workload.SPECjbb)); err == nil {
		t.Error("negative demand must error")
	}
}

func TestFeedbackGatedByPolicy(t *testing.T) {
	w := mustWorkload(t, workload.SPECjbb)
	sample := fit.Sample{X: 120, Y: 500}

	// Adaptive: feedback lands in the database.
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(500, 1000, w); err != nil {
		t.Fatal(err)
	}
	before, err := cfg.DB.Lookup(profiledb.Key{ServerID: server.XeonE52620, WorkloadID: w.ID})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Feedback(w, map[int][]fit.Sample{0: {sample, {X: 100, Y: 300}}}); err != nil {
		t.Fatal(err)
	}
	after, err := cfg.DB.Lookup(profiledb.Key{ServerID: server.XeonE52620, WorkloadID: w.ID})
	if err != nil {
		t.Fatal(err)
	}
	if after.Refits != before.Refits+1 {
		t.Errorf("refits = %d, want %d", after.Refits, before.Refits+1)
	}

	// Non-adaptive: feedback is dropped.
	cfgA := testConfig(t)
	cfgA.Policy = policy.Solver{Adaptive: false}
	ctrlA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrlA.Step(500, 1000, w); err != nil {
		t.Fatal(err)
	}
	if err := ctrlA.Feedback(w, map[int][]fit.Sample{0: {sample, {X: 100, Y: 300}}}); err != nil {
		t.Fatal(err)
	}
	e, err := cfgA.DB.Lookup(profiledb.Key{ServerID: server.XeonE52620, WorkloadID: w.ID})
	if err != nil {
		t.Fatal(err)
	}
	if e.Refits != 0 {
		t.Errorf("GreenHetero-a refits = %d, want 0", e.Refits)
	}
}

func TestFeedbackBadGroupIndex(t *testing.T) {
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)
	if _, err := ctrl.Step(500, 1000, w); err != nil {
		t.Fatal(err)
	}
	err = ctrl.Feedback(w, map[int][]fit.Sample{7: {{X: 1, Y: 1}}})
	if err == nil {
		t.Error("out-of-range group index must error")
	}
}

func TestRecoveryLockoutAfterDoD(t *testing.T) {
	// Drain the bank to its floor, then verify the controller refuses
	// to discharge again until the charge recovers.
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)
	// Night: zero renewable, demand 900 W (below the 1000 W grid budget,
	// leaving charging headroom). 4.8 kWh usable → ~21 epochs at 15 min;
	// run 40 to pass the DoD point.
	var sawGridChargeDuringLockout bool
	for e := 0; e < 40; e++ {
		atFloorBefore := cfg.Battery.AtDoD()
		dec, err := ctrl.Step(0, 900, w)
		if err != nil {
			t.Fatal(err)
		}
		if atFloorBefore && dec.Execution.BatteryToLoadW > 0 {
			t.Fatalf("epoch %d: discharging from the DoD floor", e)
		}
		if dec.Execution.BatteryChargedW > 0 && dec.Execution.GridW > dec.Plan.LoadGridW-1e-9 {
			sawGridChargeDuringLockout = true
		}
	}
	if !cfg.Battery.AtDoD() && cfg.Battery.SoC() < 0.61 {
		t.Errorf("bank SoC = %v; expected recharge above the floor", cfg.Battery.SoC())
	}
	if !sawGridChargeDuringLockout {
		t.Error("grid never recharged the bank after DoD")
	}
}

func TestAccessors(t *testing.T) {
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Rack() != cfg.Rack || ctrl.Policy().Name() != "GreenHetero" || ctrl.Epoch() != cfg.Epoch {
		t.Error("accessor mismatch")
	}
}

func TestManualPolicyThroughController(t *testing.T) {
	cfg := testConfig(t)
	cfg.Policy = &policy.Manual{}
	rng := rand.New(rand.NewSource(5))
	groups := cfg.Rack.Groups()
	w := mustWorkload(t, workload.SPECjbb)
	cfg.TryAllocation = func(supplyW float64, fracs []float64) (float64, error) {
		var total float64
		for i, g := range groups {
			perServer := fracs[i] * supplyW / float64(g.Count)
			total += float64(g.Count) * workload.Perf(g.Spec, w, perServer) * (1 + 0.01*rng.NormFloat64())
		}
		return total, nil
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Prime predictors, then force scarcity so Manual actually trials.
	if _, err := ctrl.Step(600, 1100, w); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(600, 1100, w); err != nil {
		t.Fatal(err)
	}
	dec, err := ctrl.Step(600, 1100, w)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Case == power.CaseA {
		t.Fatal("expected scarcity")
	}
	var sum float64
	for _, f := range dec.Fractions {
		sum += f
	}
	if sum <= 0 {
		t.Errorf("manual fractions = %v", dec.Fractions)
	}
}

func TestStepMixedWorkloads(t *testing.T) {
	cfg := testConfig(t)
	pb := &truthProber{}
	cfg.Prober = pb
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := []workload.Workload{
		mustWorkload(t, workload.SPECjbb),
		mustWorkload(t, workload.Memcached),
	}
	dec, err := ctrl.StepMixed(600, 1000, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.TrainingRun || pb.calls != 2 {
		t.Errorf("training = %v, calls %d", dec.TrainingRun, pb.calls)
	}
	// The database must key the Xeon group to SPECjbb and the i5 group
	// to Memcached.
	if !cfg.DB.Has(profiledb.Key{ServerID: server.XeonE52620, WorkloadID: workload.SPECjbb}) {
		t.Error("missing xeon/specjbb entry")
	}
	if !cfg.DB.Has(profiledb.Key{ServerID: server.CoreI54460, WorkloadID: workload.Memcached}) {
		t.Error("missing i5/memcached entry")
	}
	if cfg.DB.Len() != 2 {
		t.Errorf("db entries = %d, want 2", cfg.DB.Len())
	}
	// Mismatched slice lengths and empty workloads are rejected.
	if _, err := ctrl.StepMixed(600, 1000, ws[:1]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ctrl.StepMixed(600, 1000, []workload.Workload{{}, {}}); err == nil {
		t.Error("empty workload should error")
	}
}

func TestFeedbackMixedKeying(t *testing.T) {
	cfg := testConfig(t)
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := []workload.Workload{
		mustWorkload(t, workload.SPECjbb),
		mustWorkload(t, workload.Memcached),
	}
	if _, err := ctrl.StepMixed(600, 1000, ws); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.FeedbackMixed(ws, map[int][]fit.Sample{
		1: {{X: 55, Y: 10}, {X: 60, Y: 12}},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := cfg.DB.Lookup(profiledb.Key{ServerID: server.CoreI54460, WorkloadID: workload.Memcached})
	if err != nil {
		t.Fatal(err)
	}
	if e.Refits != 1 {
		t.Errorf("refits = %d, want 1", e.Refits)
	}
	if err := ctrl.FeedbackMixed(ws[:1], nil); err == nil {
		t.Error("length mismatch should error")
	}
}
