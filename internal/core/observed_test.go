package core

import (
	"testing"

	"greenhetero/internal/workload"
)

// spyPredictor records what the controller feeds it.
type spyPredictor struct {
	observed []float64
}

func (s *spyPredictor) Observe(o float64)          { s.observed = append(s.observed, o) }
func (s *spyPredictor) Forecast() (float64, error) { return 500, nil }

// TestStaleObservationSkipsPredictors: a degraded epoch must plan and
// enforce, set Decision.Degraded, and leave the predictors untouched —
// replayed last-known-good values are not measurements.
func TestStaleObservationSkipsPredictors(t *testing.T) {
	cfg := testConfig(t)
	ren, dem := &spyPredictor{}, &spyPredictor{}
	cfg.RenewablePredictor = ren
	cfg.DemandPredictor = dem
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)

	fresh, err := ctrl.StepObserved(Observation{RenewableW: 600, DemandW: 900}, w)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Degraded {
		t.Error("fresh observation marked degraded")
	}
	if len(ren.observed) != 1 || len(dem.observed) != 1 {
		t.Fatalf("fresh epoch fed predictors %d/%d times, want 1/1", len(ren.observed), len(dem.observed))
	}

	stale, err := ctrl.StepObserved(Observation{RenewableW: 600, DemandW: 900, Stale: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Degraded {
		t.Error("stale observation not marked degraded")
	}
	if stale.Epoch != fresh.Epoch+1 {
		t.Errorf("stale epoch index = %d, want %d (degraded epochs still advance)", stale.Epoch, fresh.Epoch+1)
	}
	if len(stale.Fractions) == 0 {
		t.Error("degraded epoch produced no allocation")
	}
	if len(ren.observed) != 1 || len(dem.observed) != 1 {
		t.Errorf("stale epoch fed predictors (%d/%d observations), want untouched",
			len(ren.observed), len(dem.observed))
	}
}

// TestStepDelegatesToObserved: the legacy entry points are the Stale:
// false case of the observed ones.
func TestStepDelegatesToObserved(t *testing.T) {
	ctrl, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, workload.SPECjbb)
	d, err := ctrl.Step(600, 900, w)
	if err != nil {
		t.Fatal(err)
	}
	if d.Degraded {
		t.Error("Step marked degraded")
	}
	if _, err := ctrl.StepMixedObserved(Observation{RenewableW: -1}, []workload.Workload{w, w}); err == nil {
		t.Error("negative observation should error")
	}
}
