package daemon

import (
	"testing"
	"time"
)

// TestSessionReadRace pins the daemon's session locking discipline: a
// handler-style read of live session state under RLock must never race
// with the ticking scheduler loop. The session's battery bank and epoch
// counter are plain fields with no internal locking, so this holds only
// while the loop steps the session under d.mu — the daemon this test
// was written against called d.session.Step() outside the lock, and the
// race detector flagged Step's battery writes against exactly this
// read. Run with -race.
func TestSessionReadRace(t *testing.T) {
	d := startDaemon(t, time.Millisecond)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		d.mu.RLock()
		_ = d.session.Bank().SoC()
		_ = d.session.Epoch()
		d.mu.RUnlock()
		time.Sleep(100 * time.Microsecond)
	}
}
