package daemon

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// Restart-from-state-dir lifecycle: a daemon that ran (Start → ticks →
// Stop) leaves a state dir a brand-new daemon resumes from, and /status
// reports the durable-state plane on both sides.

func getStatus(t *testing.T, ts *httptest.Server) status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRestartFromStateDir(t *testing.T) {
	dir := t.TempDir()
	quiet := func(string, ...any) {}

	// First life: start, let the ticker drive real epochs, stop cleanly.
	sessA := testSession(t)
	dA, err := New(Config{
		Session:       sessA,
		Tick:          time.Millisecond,
		HistoryLimit:  16,
		StateDir:      dir,
		SnapshotEvery: 2,
		Logf:          quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dA.Recovered() {
		t.Error("fresh state dir reported recovered")
	}
	if err := dA.Start(); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(dA.Handler())
	stA := waitForEpochs(t, tsA, 3)
	tsA.Close()
	dA.Stop()
	if stA.Recovered {
		t.Error("first life /status reported recovered=true")
	}
	// New writes the identity checkpoint at epoch 0 before any tick.
	if stA.LastCheckpointEpoch < 0 {
		t.Errorf("first life lastCheckpointEpoch = %d, want >= 0", stA.LastCheckpointEpoch)
	}
	epochA := sessA.Epoch()
	if epochA < 3 {
		t.Fatalf("first life stopped at epoch %d", epochA)
	}

	// Second life: a new daemon over the same dir resumes mid-session.
	sessB := testSession(t)
	dB, err := New(Config{
		Session:       sessB,
		Tick:          time.Millisecond,
		HistoryLimit:  16,
		StateDir:      dir,
		SnapshotEvery: 2,
		Logf:          quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dB.Recovered() {
		t.Error("second life did not report recovery")
	}
	// Stop wrote a final checkpoint, so the second life resumes exactly
	// where the first stopped — no epochs lost, none replayed twice.
	if got := sessB.Epoch(); got != epochA {
		t.Errorf("second life resumed at epoch %d, first stopped at %d", got, epochA)
	}
	if got := dB.LastCheckpointEpoch(); got != epochA {
		t.Errorf("post-recovery checkpoint at epoch %d, want %d", got, epochA)
	}

	if err := dB.Start(); err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(dB.Handler())
	defer tsB.Close()
	defer dB.Stop()
	stB := getStatus(t, tsB)
	if !stB.Recovered {
		t.Error("second life /status recovered = false")
	}
	if stB.LastCheckpointEpoch < epochA {
		t.Errorf("second life /status lastCheckpointEpoch = %d, want >= %d", stB.LastCheckpointEpoch, epochA)
	}
	// And it keeps making progress from there.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := getStatus(t, tsB); st.SessionEpoch > epochA {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second life never advanced past the recovered epoch")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStopWithoutStartStillCheckpoints covers the never-started daemon:
// Stop must still flush a final checkpoint and close the store, and the
// next life must land exactly where StepEpoch left off.
func TestStopWithoutStartStillCheckpoints(t *testing.T) {
	dir := t.TempDir()
	quiet := func(string, ...any) {}
	sessA := testSession(t)
	dA, err := New(Config{
		Session:      sessA,
		Tick:         time.Hour,
		HistoryLimit: 16,
		StateDir:     dir,
		Logf:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	for sessA.Epoch() < 2 {
		if err := dA.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	dA.Stop()
	dA.Stop() // idempotent, including the store close

	sessB := testSession(t)
	dB, err := New(Config{
		Session:      sessB,
		Tick:         time.Hour,
		HistoryLimit: 16,
		StateDir:     dir,
		Logf:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dB.Stop()
	if !dB.Recovered() {
		t.Error("no recovery after Stop-without-Start life")
	}
	if got := sessB.Epoch(); got != 2 {
		t.Errorf("resumed at epoch %d, want 2", got)
	}
	if got := len(dB.History()); got != 2 {
		t.Errorf("recovered history has %d entries, want 2", got)
	}
}

// TestSnapshotCadenceValidation: a negative cadence is a config error,
// zero means the default.
func TestSnapshotCadenceValidation(t *testing.T) {
	if _, err := New(Config{Session: testSession(t), Tick: time.Second, SnapshotEvery: -1}); err == nil {
		t.Error("negative SnapshotEvery accepted")
	}
}
