package daemon

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"greenhetero/internal/telemetry"
)

// TestStopWithoutStart: Stop on a never-started daemon must return
// instead of blocking forever on the loop's done channel.
func TestStopWithoutStart(t *testing.T) {
	d, err := New(Config{Session: testSession(t), Tick: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start deadlocked")
	}
	if err := d.Start(); err == nil {
		t.Error("Start after Stop should error")
	}
}

// TestStopIdempotent: repeated Stop calls must not panic on the stop
// channel.
func TestStopIdempotent(t *testing.T) {
	d, err := New(Config{Session: testSession(t), Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second Stop blocked")
	}
}

// stubHealth is a fixed HealthSource.
type stubHealth []telemetry.AgentHealth

func (s stubHealth) Health() []telemetry.AgentHealth { return s }

// TestStatusExposesAgentHealth: a configured HealthSource surfaces the
// Monitor's breaker and staleness state in /status.
func TestStatusExposesAgentHealth(t *testing.T) {
	d, err := New(Config{
		Session: testSession(t),
		Tick:    time.Hour, // no ticks needed
		Health: stubHealth{{
			Addr:  "10.0.0.1:7000",
			State: telemetry.BreakerOpen,
			Stale: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Agents []struct {
			Addr  string `json:"addr"`
			State string `json:"state"`
			Stale bool   `json:"stale"`
		} `json:"agents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Agents) != 1 {
		t.Fatalf("agents = %+v, want one entry", st.Agents)
	}
	a := st.Agents[0]
	if a.Addr != "10.0.0.1:7000" || a.State != "open" || !a.Stale {
		t.Errorf("agent health = %+v", a)
	}
}
