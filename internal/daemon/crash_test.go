package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greenhetero/internal/wal"
)

// Crash-equivalence harness: the daemon's durability claim is that a
// crash at ANY write/sync/rename boundary, followed by a restart over
// the surviving files, converges to exactly the state an uninterrupted
// run produces. The CrashFS counts every durable-storage operation;
// TestDaemonCrashAtEveryCrashpoint re-runs the same scripted workload
// once per operation, killing the daemon at that boundary each time.

// crashEpochs is the scripted run length. Small enough that every
// crashpoint is exercised in a few seconds, large enough to cross
// several snapshot boundaries (SnapshotEvery=2) and segment rotations.
const crashEpochs = 6

// finalState captures everything ISSUE's equivalence claim covers: the
// /db snapshot bytes, battery state of charge, and the epoch history.
type finalState struct {
	db      []byte
	soc     float64
	history []byte
}

// runToEnd builds a fresh session over fsys, steps it to crashEpochs,
// and stops. A storage crash surfaces as an error from New or StepEpoch.
func runToEnd(t *testing.T, fsys wal.FS, logf func(string, ...any)) (*Daemon, error) {
	t.Helper()
	sess := testSession(t)
	d, err := New(Config{
		Session:       sess,
		Tick:          time.Hour, // epochs driven by StepEpoch, not ticks
		HistoryLimit:  64,
		FS:            fsys,
		SnapshotEvery: 2,
		Logf:          logf,
	})
	if err != nil {
		return nil, err
	}
	for sess.Epoch() < crashEpochs {
		if err := d.StepEpoch(); err != nil {
			d.Stop()
			return nil, err
		}
	}
	d.Stop()
	return d, nil
}

// capture reads the daemon's final state. Only meaningful on a daemon
// that ran to completion.
func capture(t *testing.T, d *Daemon) finalState {
	t.Helper()
	var db bytes.Buffer
	d.mu.RLock()
	err := d.session.DB().Save(&db)
	soc := d.session.Bank().SoC()
	d.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	hist, err := json.Marshal(d.History())
	if err != nil {
		t.Fatal(err)
	}
	return finalState{db: db.Bytes(), soc: soc, history: hist}
}

func sameState(a, b finalState) bool {
	return bytes.Equal(a.db, b.db) &&
		math.Float64bits(a.soc) == math.Float64bits(b.soc) &&
		bytes.Equal(a.history, b.history)
}

// dumpArtifact writes the crashed filesystem's applied namespace for CI
// post-mortems when GREENHETERO_CRASH_ARTIFACT_DIR is set.
func dumpArtifact(t *testing.T, fsys *wal.CrashFS, k int) {
	t.Helper()
	root := os.Getenv("GREENHETERO_CRASH_ARTIFACT_DIR")
	if root == "" {
		return
	}
	dir := filepath.Join(root, fmt.Sprintf("crashpoint-%d", k))
	if err := fsys.DumpTo(dir); err != nil {
		t.Logf("dumping crash state: %v", err)
	} else {
		t.Logf("crash state dumped to %s", dir)
	}
}

func TestDaemonCrashAtEveryCrashpoint(t *testing.T) {
	const seed = 42
	quiet := func(string, ...any) {}

	// Baseline: same FS implementation, never armed, so the operation
	// count and final state are exactly what every crashed run converges
	// toward.
	base := wal.NewCrashFS(seed)
	d, err := runToEnd(t, base, quiet)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	want := capture(t, d)
	ops := base.Ops()
	if ops < 20 {
		t.Fatalf("baseline touched only %d storage ops; harness would prove little", ops)
	}
	t.Logf("baseline: %d storage ops, %d epochs", ops, crashEpochs)

	for k := 1; k <= ops; k++ {
		k := k
		t.Run(fmt.Sprintf("crashpoint-%d", k), func(t *testing.T) {
			fsys := wal.NewCrashFS(seed)
			fsys.SetCrashAt(k)
			_, runErr := runToEnd(t, fsys, quiet)
			if !fsys.Crashed() {
				t.Fatalf("crashpoint %d was never reached (run err=%v)", k, runErr)
			}

			// Reboot: the machine comes back with only what survived the
			// durability model, and the daemon must converge to baseline.
			fsys.Recover()
			d2, err := runToEnd(t, fsys, quiet)
			if err != nil {
				dumpArtifact(t, fsys, k)
				t.Fatalf("restart after crashpoint %d: %v", k, err)
			}
			got := capture(t, d2)
			if !sameState(got, want) {
				dumpArtifact(t, fsys, k)
				t.Errorf("crashpoint %d: recovered state diverges from uninterrupted run\n db equal: %v\n soc: got %x want %x\n history equal: %v",
					k, bytes.Equal(got.db, want.db),
					math.Float64bits(got.soc), math.Float64bits(want.soc),
					bytes.Equal(got.history, want.history))
			}
		})
	}
}

// TestDaemonDoubleCrashConverges arms a second crash during the
// recovery run itself: crash, reboot, crash again mid-recovery, reboot,
// and the third run must still converge to baseline.
func TestDaemonDoubleCrashConverges(t *testing.T) {
	const seed = 1337
	quiet := func(string, ...any) {}

	base := wal.NewCrashFS(seed)
	d, err := runToEnd(t, base, quiet)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	want := capture(t, d)
	ops := base.Ops()

	// A spread of first/second crashpoints rather than the full cross
	// product (which would be quadratic in ops).
	for _, k1 := range []int{1, ops / 3, ops / 2, ops - 1} {
		if k1 < 1 {
			continue
		}
		t.Run(fmt.Sprintf("first-%d", k1), func(t *testing.T) {
			fsys := wal.NewCrashFS(seed)
			fsys.SetCrashAt(k1)
			_, _ = runToEnd(t, fsys, quiet)
			if !fsys.Crashed() {
				t.Fatalf("crashpoint %d was never reached", k1)
			}
			fsys.Recover()
			// Second crash early in the recovery run, where replay and
			// re-checkpointing happen (the op counter is cumulative
			// across reboots, so arm relative to it).
			fsys.SetCrashAt(fsys.Ops() + 3)
			_, _ = runToEnd(t, fsys, quiet)
			if !fsys.Crashed() {
				t.Fatalf("second crashpoint was never reached after first crash at %d", k1)
			}
			fsys.Recover()
			d3, err := runToEnd(t, fsys, quiet)
			if err != nil {
				dumpArtifact(t, fsys, k1)
				t.Fatalf("third run after double crash: %v", err)
			}
			if got := capture(t, d3); !sameState(got, want) {
				dumpArtifact(t, fsys, k1)
				t.Errorf("double crash (first at %d): recovered state diverges from baseline", k1)
			}
		})
	}
}

// TestDaemonCorruptedTailTruncates kills a daemon without Stop, chops
// bytes off the newest WAL segment (a torn tail a real crash can
// leave), and asserts the next daemon starts anyway — logging the
// truncation, never refusing.
func TestDaemonCorruptedTailTruncates(t *testing.T) {
	dir := t.TempDir()
	quiet := func(string, ...any) {}

	sessA := testSession(t)
	dA, err := New(Config{
		Session:       sessA,
		Tick:          time.Hour,
		HistoryLimit:  64,
		StateDir:      dir,
		SnapshotEvery: 100, // keep every record in the log tail
		Logf:          quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	for sessA.Epoch() < 4 {
		if err := dA.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// No Stop: simulate a hard kill with the log mid-flight.

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 6 {
		t.Fatalf("segment %s too small to tear", last)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	sessB := testSession(t)
	dB, err := New(Config{
		Session:       sessB,
		Tick:          time.Hour,
		HistoryLimit:  64,
		StateDir:      dir,
		SnapshotEvery: 100,
		Logf:          logf,
	})
	if err != nil {
		t.Fatalf("daemon must start over a torn tail, got: %v", err)
	}
	defer dB.Stop()
	if !dB.Recovered() {
		t.Error("daemon over existing state dir did not report recovery")
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "truncat") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no truncation warning logged; logs: %q", logs)
	}
	// The torn record covered epoch 3; the daemon replays up to the tear
	// and keeps going.
	if got := sessB.Epoch(); got < 3 || got > 4 {
		t.Errorf("recovered session at epoch %d, want 3 or 4", got)
	}
	if err := dB.StepEpoch(); err != nil {
		t.Errorf("stepping after torn-tail recovery: %v", err)
	}
}

// TestDaemonRejectsMismatchedStateDir proves the replay verification:
// a state dir written under one scenario must not silently restore into
// a session built from another.
func TestDaemonRejectsMismatchedStateDir(t *testing.T) {
	fsys := wal.NewCrashFS(7)
	quiet := func(string, ...any) {}
	if _, err := runToEnd(t, fsys, quiet); err != nil {
		t.Fatal(err)
	}

	other := testSessionSeed(t, 8) // same rack/workload, different seed
	_, err := New(Config{
		Session:       other,
		Tick:          time.Hour,
		HistoryLimit:  64,
		FS:            fsys,
		SnapshotEvery: 2,
		Logf:          quiet,
	})
	if err == nil {
		t.Fatal("daemon restored a snapshot from a different scenario")
	}
}
