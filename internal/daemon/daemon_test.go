package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

func testSession(t *testing.T) *sim.Session {
	t.Helper()
	return testSessionSeed(t, 7)
}

func testSessionSeed(t *testing.T, seed int64) *sim.Session {
	t.Helper()
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	rack, err := server.NewRack("daemon-test",
		server.Group{Spec: a, Count: 5}, server.Group{Spec: b, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Lookup(workload.SPECjbb)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := solar.DefaultHigh(2200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSession(sim.Config{
		Rack:        rack,
		Workload:    w,
		Policy:      policy.Solver{Adaptive: true},
		Solar:       tr,
		Epochs:      96,
		GridBudgetW: 1000,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startDaemon(t *testing.T, tick time.Duration) *Daemon {
	t.Helper()
	d, err := New(Config{Session: testSession(t), Tick: tick, HistoryLimit: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Tick: time.Second}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil session err = %v", err)
	}
	if _, err := New(Config{Session: testSession(t)}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero tick err = %v", err)
	}
	if _, err := New(Config{Session: testSession(t), Tick: time.Second, HistoryLimit: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative limit err = %v", err)
	}
}

func TestStartTwice(t *testing.T) {
	d := startDaemon(t, time.Hour) // never ticks during the test
	if err := d.Start(); err == nil {
		t.Error("second Start should error")
	}
}

// waitForEpochs polls /status until at least n epochs have run.
func waitForEpochs(t *testing.T, ts *httptest.Server, n int) status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if st.Epochs >= n {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("daemon never reached epoch target")
	return status{}
}

func TestHTTPAPIServesLiveState(t *testing.T) {
	d := startDaemon(t, time.Millisecond)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	// Liveness.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	st := waitForEpochs(t, ts, 3)
	if st.Policy != "GreenHetero" || st.Workload != workload.SPECjbb {
		t.Errorf("status labels = %+v", st)
	}
	if st.Last == nil || st.Last.SupplyW < 0 {
		t.Errorf("status last = %+v", st.Last)
	}
	if st.BatterySoC <= 0 || st.BatterySoC > 1 {
		t.Errorf("soc = %v", st.BatterySoC)
	}
	if st.DBEntries != 2 {
		t.Errorf("db entries = %d, want 2", st.DBEntries)
	}
	if st.LastError != "" {
		t.Errorf("unexpected error: %s", st.LastError)
	}

	// History grows and is well-formed JSON.
	resp, err = ts.Client().Get(ts.URL + "/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist []sim.EpochResult
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if len(hist) < 3 {
		t.Errorf("history = %d entries", len(hist))
	}

	// The database snapshot parses.
	resp, err = ts.Client().Get(ts.URL + "/db")
	if err != nil {
		t.Fatal(err)
	}
	var db struct {
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&db); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if len(db.Entries) != 2 {
		t.Errorf("db snapshot entries = %d", len(db.Entries))
	}
}

func TestHistoryRingBounded(t *testing.T) {
	d, err := New(Config{Session: testSession(t), Tick: time.Millisecond, HistoryLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	// The ring caps the reported Epochs count at 4, so wait on the last
	// epoch index instead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := waitForEpochs(t, ts, 1)
		if st.Last != nil && st.Last.Epoch >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never passed epoch 5")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := ts.Client().Get(ts.URL + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hist []sim.EpochResult
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) > 4 {
		t.Errorf("ring grew to %d, limit 4", len(hist))
	}
	// The retained entries are the most recent ones.
	if hist[len(hist)-1].Epoch < 5 {
		t.Errorf("ring tail epoch = %d, want recent", hist[len(hist)-1].Epoch)
	}
}

func TestStopTerminatesLoop(t *testing.T) {
	d, err := New(Config{Session: testSession(t), Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
}

func TestStatusReportsNoErrorOnHealthyRun(t *testing.T) {
	d := startDaemon(t, time.Millisecond)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	st := waitForEpochs(t, ts, 2)
	if st.LastError != "" {
		t.Errorf("healthy run reported error %q", st.LastError)
	}
}
