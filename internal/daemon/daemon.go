// Package daemon runs the GreenHetero controller as a long-lived service
// with an HTTP introspection API — the operational form a rack controller
// takes in production (the paper's controller runs continuously at the
// rack PDU). One scheduling epoch executes per wall-clock tick, and the
// API exposes the live decision state:
//
//	GET /healthz   liveness
//	GET /status    last epoch's decision + aggregates
//	GET /history   recent epochs (ring buffer)
//	GET /db        the performance-power database snapshot
package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"greenhetero/internal/sim"
	"greenhetero/internal/telemetry"
)

// HealthSource exposes per-agent Monitor health for /status — typically
// a *telemetry.Collector.
type HealthSource interface {
	Health() []telemetry.AgentHealth
}

// Config assembles a daemon.
type Config struct {
	// Session is the stepwise simulation (or, in a real deployment, a
	// session wrapping live telemetry).
	Session *sim.Session
	// Tick is the wall-clock interval per scheduling epoch. Simulated
	// time is accelerated: a 15-minute epoch can tick every second.
	Tick time.Duration
	// HistoryLimit bounds the retained epoch ring (default 1024).
	HistoryLimit int
	// Health optionally surfaces the Monitor's per-agent health (breaker
	// state, stale flags) in /status.
	Health HealthSource
}

// ErrBadConfig is returned by New for invalid configurations.
var ErrBadConfig = errors.New("daemon: bad config")

// Daemon is the running service. Create with New, then Start; Stop
// shuts the scheduler loop down and waits for it.
type Daemon struct {
	tick   time.Duration
	limit  int
	health HealthSource

	// mu guards the session as well as the daemon's own fields: the
	// session's internals (battery bank, predictors, epoch counter) have
	// no locking of their own, so the loop steps it under the write lock
	// and handlers read live session state under the read lock. The
	// guardedby annotations make ghlint re-prove that discipline on every
	// build — the PR 3 race (session stepped between Unlock and re-Lock)
	// is exactly what they reject.
	mu sync.RWMutex
	// ghlint:guardedby mu
	session *sim.Session
	// ghlint:guardedby mu
	history []sim.EpochResult
	// ghlint:guardedby mu
	lastErr error
	// ghlint:guardedby mu
	started bool
	// ghlint:guardedby mu
	stopping bool

	stop chan struct{}
	done chan struct{}
}

// New validates cfg and builds a stopped daemon.
func New(cfg Config) (*Daemon, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("%w: nil session", ErrBadConfig)
	}
	if cfg.Tick <= 0 {
		return nil, fmt.Errorf("%w: tick %v", ErrBadConfig, cfg.Tick)
	}
	if cfg.HistoryLimit == 0 {
		cfg.HistoryLimit = 1024
	}
	if cfg.HistoryLimit < 1 {
		return nil, fmt.Errorf("%w: history limit %d", ErrBadConfig, cfg.HistoryLimit)
	}
	return &Daemon{
		session: cfg.Session,
		tick:    cfg.Tick,
		limit:   cfg.HistoryLimit,
		health:  cfg.Health,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the scheduler loop. It may be called once; a stopped
// daemon cannot be restarted.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopping {
		return errors.New("daemon: already stopped")
	}
	if d.started {
		return errors.New("daemon: already started")
	}
	d.started = true
	go d.loop()
	return nil
}

// Stop signals the loop and waits for it to exit. Safe to call in any
// state: before Start it simply marks the daemon stopped, and repeated
// calls are no-ops, so `defer d.Stop()` composes with error paths that
// never reach Start.
func (d *Daemon) Stop() {
	d.mu.Lock()
	wasStarted := d.started
	if !d.stopping {
		d.stopping = true
		close(d.stop)
	}
	d.mu.Unlock()
	if wasStarted {
		<-d.done
	}
}

func (d *Daemon) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Step mutates the session in place, so it runs under the
			// write lock; every handler read of session state holds the
			// read lock and therefore observes a quiesced session.
			d.mu.Lock()
			er, err := d.session.Step()
			if err != nil {
				// Record and keep ticking: a transient failure (e.g. a
				// dead sensor during training) must not kill the rack
				// controller.
				d.lastErr = err
			} else {
				d.lastErr = nil
				d.history = append(d.history, er)
				if over := len(d.history) - d.limit; over > 0 {
					d.history = append(d.history[:0:0], d.history[over:]...)
				}
			}
			d.mu.Unlock()
		case <-d.stop:
			return
		}
	}
}

// status is the /status document.
type status struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	// Epochs counts retained history entries; SessionEpoch is the
	// session's own live epoch counter.
	Epochs       int                     `json:"epochs"`
	SessionEpoch int                     `json:"sessionEpoch"`
	BatterySoC   float64                 `json:"batterySoC"`
	Cycles       int                     `json:"batteryCycles"`
	DBEntries    int                     `json:"dbEntries"`
	Agents       []telemetry.AgentHealth `json:"agents,omitempty"`
	LastError    string                  `json:"lastError,omitempty"`
	Last         *sim.EpochResult        `json:"last,omitempty"`
}

// Handler returns the HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		d.mu.RLock()
		st := status{
			Policy:       d.session.Policy(),
			Workload:     d.session.WorkloadLabel(),
			Epochs:       len(d.history),
			SessionEpoch: d.session.Epoch(),
			BatterySoC:   d.session.Bank().SoC(),
			Cycles:       d.session.Bank().Cycles(),
			DBEntries:    d.session.DB().Len(),
		}
		if d.lastErr != nil {
			st.LastError = d.lastErr.Error()
		}
		if n := len(d.history); n > 0 {
			last := d.history[n-1]
			st.Last = &last
		}
		d.mu.RUnlock()
		// The health source carries its own locking.
		if d.health != nil {
			st.Agents = d.health.Health()
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /history", func(w http.ResponseWriter, r *http.Request) {
		d.mu.RLock()
		out := append([]sim.EpochResult(nil), d.history...)
		d.mu.RUnlock()
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /db", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot under the read lock (so the dump is epoch-consistent),
		// then write outside it: a slow client must not stall the loop.
		var buf bytes.Buffer
		d.mu.RLock()
		err := d.session.DB().Save(&buf)
		d.mu.RUnlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
