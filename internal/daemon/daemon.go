// Package daemon runs the GreenHetero controller as a long-lived service
// with an HTTP introspection API — the operational form a rack controller
// takes in production (the paper's controller runs continuously at the
// rack PDU). One scheduling epoch executes per wall-clock tick, and the
// API exposes the live decision state:
//
//	GET /healthz   liveness
//	GET /status    last epoch's decision + aggregates
//	GET /history   recent epochs (ring buffer)
//	GET /db        the performance-power database snapshot
package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"greenhetero/internal/sim"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/wal"
)

// HealthSource exposes per-agent Monitor health for /status — typically
// a *telemetry.Collector.
type HealthSource interface {
	Health() []telemetry.AgentHealth
}

// Config assembles a daemon.
type Config struct {
	// Session is the stepwise simulation (or, in a real deployment, a
	// session wrapping live telemetry).
	Session *sim.Session
	// Tick is the wall-clock interval per scheduling epoch. Simulated
	// time is accelerated: a 15-minute epoch can tick every second.
	Tick time.Duration
	// HistoryLimit bounds the retained epoch ring (default 1024).
	HistoryLimit int
	// Health optionally surfaces the Monitor's per-agent health (breaker
	// state, stale flags) in /status.
	Health HealthSource
	// StateDir, when set, makes the daemon's state durable: each epoch is
	// journaled to a write-ahead log under this directory before it takes
	// effect, and a daemon restarted over the same directory resumes the
	// session exactly where it stopped (see state.go).
	StateDir string
	// SnapshotEvery is the checkpoint cadence in committed epochs
	// (default 32). A snapshot compacts the WAL, bounding both disk use
	// and recovery replay time.
	SnapshotEvery int
	// FS overrides the durable-state filesystem; used by tests to inject
	// wal.CrashFS. Takes precedence over StateDir.
	FS wal.FS
	// Logf receives recovery and durability warnings (default log.Printf).
	Logf func(format string, args ...any)
}

// ErrBadConfig is returned by New for invalid configurations.
var ErrBadConfig = errors.New("daemon: bad config")

// Daemon is the running service. Create with New, then Start; Stop
// shuts the scheduler loop down and waits for it.
type Daemon struct {
	tick   time.Duration
	limit  int
	health HealthSource

	// Durable-state plane, immutable after New. store is nil when no
	// StateDir/FS is configured; recovered reports whether New resumed
	// from existing durable state.
	store     *wal.Store
	snapEvery int
	recovered bool
	logf      func(format string, args ...any)

	// mu guards the session as well as the daemon's own fields: the
	// session's internals (battery bank, predictors, epoch counter) have
	// no locking of their own, so the loop steps it under the write lock
	// and handlers read live session state under the read lock. The
	// guardedby annotations make ghlint re-prove that discipline on every
	// build — the PR 3 race (session stepped between Unlock and re-Lock)
	// is exactly what they reject.
	mu sync.RWMutex
	// ghlint:guardedby mu
	session *sim.Session
	// ghlint:guardedby mu
	history []sim.EpochResult
	// ghlint:guardedby mu
	lastErr error
	// ghlint:guardedby mu
	started bool
	// ghlint:guardedby mu
	stopping bool
	// walErr latches the first storage failure. The write-ahead contract
	// is journal-then-apply; once journaling fails, stepping further would
	// advance state that can never be recovered, so the scheduler halts
	// (the HTTP API stays up and reports the error).
	// ghlint:guardedby mu
	walErr error
	// ghlint:guardedby mu
	sinceSnap int
	// checkpointEpoch is the epoch covered by the latest snapshot
	// (-1 until one exists).
	// ghlint:guardedby mu
	checkpointEpoch int
	// ghlint:guardedby mu
	storeClosed bool

	stop chan struct{}
	done chan struct{}
}

// New validates cfg and builds a stopped daemon. With durable state
// configured it opens (or creates) the WAL, resumes the session from any
// existing snapshot + log tail, and writes a fresh checkpoint so the
// resumed position is immediately durable.
func New(cfg Config) (*Daemon, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("%w: nil session", ErrBadConfig)
	}
	if cfg.Tick <= 0 {
		return nil, fmt.Errorf("%w: tick %v", ErrBadConfig, cfg.Tick)
	}
	if cfg.HistoryLimit == 0 {
		cfg.HistoryLimit = 1024
	}
	if cfg.HistoryLimit < 1 {
		return nil, fmt.Errorf("%w: history limit %d", ErrBadConfig, cfg.HistoryLimit)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("%w: snapshot cadence %d", ErrBadConfig, cfg.SnapshotEvery)
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 32
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}

	fsys := cfg.FS
	if fsys == nil && cfg.StateDir != "" {
		dirFS, err := wal.NewDirFS(cfg.StateDir)
		if err != nil {
			return nil, fmt.Errorf("daemon: open state dir: %w", err)
		}
		fsys = dirFS
	}

	var (
		store     *wal.Store
		history   []sim.EpochResult
		recovered bool
	)
	if fsys != nil {
		var rec wal.Recovered
		var err error
		store, rec, err = wal.Open(fsys, wal.Options{Logf: logf})
		if err != nil {
			return nil, fmt.Errorf("daemon: open wal: %w", err)
		}
		if rec.Snapshot != nil || len(rec.Records) > 0 {
			history, err = recoverState(cfg.Session, cfg.HistoryLimit, cfg.Health, rec, logf)
			if err != nil {
				_ = store.Close()
				return nil, err
			}
			recovered = true
			logf("daemon: recovered durable state: session at epoch %d (snapshot epoch %d, %d log records replayed)",
				cfg.Session.Epoch(), rec.SnapshotEpoch, len(rec.Records))
		}
	}

	d := &Daemon{
		session:         cfg.Session,
		tick:            cfg.Tick,
		limit:           cfg.HistoryLimit,
		health:          cfg.Health,
		store:           store,
		snapEvery:       cfg.SnapshotEvery,
		recovered:       recovered,
		logf:            logf,
		history:         history,
		checkpointEpoch: -1,
		stop:            make(chan struct{}), // ghlint:unbounded close-only shutdown signal; Stop closes it, run only selects on it
		done:            make(chan struct{}), // ghlint:unbounded close-only exit signal; run closes it, Stop blocks until the close
	}
	if store != nil {
		// Checkpoint immediately: a fresh dir gets its identity snapshot
		// (so a later mismatched scenario fails fast), and a recovered one
		// compacts the replayed tail away.
		d.mu.Lock()
		err := d.checkpointLocked()
		d.mu.Unlock()
		if err != nil {
			_ = store.Close()
			return nil, fmt.Errorf("daemon: initial checkpoint: %w", err)
		}
	}
	return d, nil
}

// Start launches the scheduler loop. It may be called once; a stopped
// daemon cannot be restarted.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopping {
		return errors.New("daemon: already stopped")
	}
	if d.started {
		return errors.New("daemon: already started")
	}
	d.started = true
	go d.loop()
	return nil
}

// Stop signals the loop and waits for it to exit. Safe to call in any
// state: before Start it simply marks the daemon stopped, and repeated
// calls are no-ops, so `defer d.Stop()` composes with error paths that
// never reach Start. With durable state configured, Stop writes a final
// checkpoint (unless the store already failed) and closes the WAL.
func (d *Daemon) Stop() {
	d.mu.Lock()
	wasStarted := d.started
	if !d.stopping {
		d.stopping = true
		close(d.stop)
	}
	d.mu.Unlock()
	if wasStarted {
		<-d.done
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.store == nil || d.storeClosed {
		return
	}
	d.storeClosed = true
	if d.walErr == nil {
		if err := d.checkpointLocked(); err != nil {
			d.logf("daemon: final checkpoint failed: %v", err)
		}
	}
	if err := d.store.Close(); err != nil {
		d.logf("daemon: closing wal: %v", err)
	}
}

func (d *Daemon) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := d.StepEpoch(); err != nil {
				// Storage failure: the write-ahead contract is broken, so
				// the scheduler halts rather than advance unrecoverable
				// state. The HTTP API stays up and reports the error.
				d.logf("daemon: scheduler halted: %v", err)
				return
			}
		case <-d.stop:
			return
		}
	}
}

// StepEpoch executes one scheduling epoch under the write-ahead
// discipline. It is the loop's body, exported so tests (and the crash
// harness) can drive epochs without wall-clock ticks. The returned error
// is nil for session-level epoch failures (those are recorded in
// /status and the daemon keeps ticking) and non-nil only for durable-
// storage failures, which halt the scheduler.
func (d *Daemon) StepEpoch() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.walErr != nil {
		return d.walErr
	}
	return d.stepLocked()
}

// stepLocked journals, steps, commits, and maybe checkpoints.
// ghlint:holds d.mu
func (d *Daemon) stepLocked() error {
	// Journal the intent before the session mutates: after a crash the
	// log always shows which epoch was in flight.
	if d.store != nil {
		ib, err := json.Marshal(intentRecord{Epoch: d.session.Epoch()})
		if err != nil {
			return d.failStoreLocked(fmt.Errorf("daemon: encode intent: %w", err))
		}
		if err := d.store.Append(recTypeIntent, ib); err != nil {
			return d.failStoreLocked(fmt.Errorf("daemon: journal intent: %w", err))
		}
	}
	// Step mutates the session in place, so it runs under the write lock;
	// every handler read of session state holds the read lock and
	// therefore observes a quiesced session.
	er, err := d.session.Step()
	if err != nil {
		// Record and keep ticking: a transient failure (e.g. a dead
		// sensor during training) must not kill the rack controller.
		// Deterministic replay reproduces the failure, so the uncommitted
		// intent needs no undo record.
		d.lastErr = err
		return nil
	}
	d.lastErr = nil
	d.history = appendTrimmed(d.history, er, d.limit)
	if d.store != nil {
		eb, err := json.Marshal(epochRecord{Epoch: er.Epoch, Result: er})
		if err != nil {
			return d.failStoreLocked(fmt.Errorf("daemon: encode epoch record: %w", err))
		}
		if err := d.store.Append(recTypeEpoch, eb); err != nil {
			return d.failStoreLocked(fmt.Errorf("daemon: journal epoch: %w", err))
		}
		d.sinceSnap++
		if d.sinceSnap >= d.snapEvery {
			if err := d.checkpointLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkpointLocked writes an atomic full-state snapshot and compacts
// the WAL behind it.
// ghlint:holds d.mu
func (d *Daemon) checkpointLocked() error {
	st, err := d.session.ExportState()
	if err != nil {
		return d.failStoreLocked(fmt.Errorf("daemon: export state: %w", err))
	}
	ps := persistedState{Schema: stateSchema, Session: st, History: d.history}
	if d.health != nil {
		ps.Agents = d.health.Health()
	}
	b, err := json.Marshal(ps)
	if err != nil {
		return d.failStoreLocked(fmt.Errorf("daemon: encode snapshot: %w", err))
	}
	if err := d.store.SaveSnapshot(st.Epoch, b); err != nil {
		return d.failStoreLocked(fmt.Errorf("daemon: save snapshot: %w", err))
	}
	d.checkpointEpoch = st.Epoch
	d.sinceSnap = 0
	return nil
}

// failStoreLocked latches the first storage failure and returns it.
// ghlint:holds d.mu
func (d *Daemon) failStoreLocked(err error) error {
	if d.walErr == nil {
		d.walErr = err
	}
	return d.walErr
}

// Recovered reports whether New resumed from existing durable state.
func (d *Daemon) Recovered() bool { return d.recovered }

// LastCheckpointEpoch returns the epoch covered by the latest snapshot,
// or -1 if none exists (including when durable state is disabled).
func (d *Daemon) LastCheckpointEpoch() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.checkpointEpoch
}

// History returns a copy of the retained epoch results.
func (d *Daemon) History() []sim.EpochResult {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]sim.EpochResult(nil), d.history...)
}

// status is the /status document.
type status struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	// Epochs counts retained history entries; SessionEpoch is the
	// session's own live epoch counter.
	Epochs       int     `json:"epochs"`
	SessionEpoch int     `json:"sessionEpoch"`
	BatterySoC   float64 `json:"batterySoC"`
	Cycles       int     `json:"batteryCycles"`
	DBEntries    int     `json:"dbEntries"`
	// Durable-state plane: whether this daemon resumed from an existing
	// state dir, the epoch covered by the latest checkpoint (-1 when
	// durable state is disabled or no checkpoint exists), and the live
	// WAL segment count.
	Recovered           bool                    `json:"recovered"`
	LastCheckpointEpoch int                     `json:"lastCheckpointEpoch"`
	WALSegments         int                     `json:"walSegments"`
	Agents              []telemetry.AgentHealth `json:"agents,omitempty"`
	LastError           string                  `json:"lastError,omitempty"`
	Last                *sim.EpochResult        `json:"last,omitempty"`
}

// Handler returns the HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		d.mu.RLock()
		st := status{
			Policy:              d.session.Policy(),
			Workload:            d.session.WorkloadLabel(),
			Epochs:              len(d.history),
			SessionEpoch:        d.session.Epoch(),
			BatterySoC:          d.session.Bank().SoC(),
			Cycles:              d.session.Bank().Cycles(),
			DBEntries:           d.session.DB().Len(),
			Recovered:           d.recovered,
			LastCheckpointEpoch: d.checkpointEpoch,
		}
		if d.store != nil {
			st.WALSegments = d.store.Segments()
		}
		if d.lastErr != nil {
			st.LastError = d.lastErr.Error()
		}
		if d.walErr != nil {
			st.LastError = d.walErr.Error()
		}
		if n := len(d.history); n > 0 {
			last := d.history[n-1]
			st.Last = &last
		}
		d.mu.RUnlock()
		// The health source carries its own locking.
		if d.health != nil {
			st.Agents = d.health.Health()
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /history", func(w http.ResponseWriter, r *http.Request) {
		d.mu.RLock()
		out := append([]sim.EpochResult(nil), d.history...)
		d.mu.RUnlock()
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /db", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot under the read lock (so the dump is epoch-consistent),
		// then write outside it: a slow client must not stall the loop.
		var buf bytes.Buffer
		d.mu.RLock()
		err := d.session.DB().Save(&buf)
		d.mu.RUnlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
