// Durable state: the daemon's WAL integration. With a StateDir (or an
// injected wal.FS) configured, every scheduling epoch follows the
// write-ahead discipline:
//
//  1. journal an intent record (fsynced) — "epoch E is about to run",
//  2. step the session,
//  3. journal the epoch's full result (fsynced) — the commit record,
//  4. every SnapshotEvery committed epochs, write an atomic full-state
//     snapshot and compact the log.
//
// Recovery inverts it: restore the newest snapshot into a fresh session
// built from the same scenario, then re-execute one epoch per commit
// record. The session is a deterministic state machine (seeded RNG with
// a persisted draw counter), so re-execution reproduces each journaled
// result bit-for-bit — and the daemon verifies that it does, turning a
// state-dir/scenario mismatch into a hard error instead of silent
// divergence. An intent record with no matching commit marks an epoch
// that crashed mid-step; it re-executes identically on resume, which is
// exactly why intents need no undo log.
package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"

	"greenhetero/internal/sim"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/wal"
)

// WAL record types.
const (
	recTypeIntent byte = 1
	recTypeEpoch  byte = 2
)

// stateSchema versions the snapshot payload.
const stateSchema = 1

// HealthRestorer is the optional restore face of a HealthSource — a
// *telemetry.Collector implements it. When the configured HealthSource
// does too, recovered checkpoints re-seed per-agent breaker health.
type HealthRestorer interface {
	RestoreHealth([]telemetry.AgentHealth) error
}

// persistedState is the snapshot payload: the session's full state,
// the retained epoch history, and per-agent Monitor health.
type persistedState struct {
	Schema  int                     `json:"schema"`
	Session *sim.State              `json:"session"`
	History []sim.EpochResult       `json:"history"`
	Agents  []telemetry.AgentHealth `json:"agents,omitempty"`
}

// intentRecord journals that an epoch is about to execute.
type intentRecord struct {
	Epoch int `json:"epoch"`
}

// epochRecord is the commit record: the epoch's journaled outcome.
type epochRecord struct {
	Epoch  int             `json:"epoch"`
	Result sim.EpochResult `json:"result"`
}

// recoverState restores rec into session and returns the recovered
// history. Called from New before the Daemon struct exists, so it works
// on locals; the caller installs the results.
func recoverState(session *sim.Session, limit int, health HealthSource, rec wal.Recovered, logf func(string, ...any)) ([]sim.EpochResult, error) {
	var history []sim.EpochResult
	if rec.Snapshot != nil {
		var ps persistedState
		if err := json.Unmarshal(rec.Snapshot, &ps); err != nil {
			return nil, fmt.Errorf("daemon: recover: decode snapshot: %w", err)
		}
		if ps.Schema != stateSchema {
			return nil, fmt.Errorf("daemon: recover: snapshot schema %d, want %d", ps.Schema, stateSchema)
		}
		if err := session.RestoreState(ps.Session); err != nil {
			return nil, fmt.Errorf("daemon: recover: %w", err)
		}
		history = append(history, ps.History...)
		if hr, ok := health.(HealthRestorer); ok && len(ps.Agents) > 0 {
			if err := hr.RestoreHealth(ps.Agents); err != nil {
				return nil, fmt.Errorf("daemon: recover: %w", err)
			}
		}
	} else if len(rec.Records) > 0 {
		logf("daemon: recovering from log tail only (no snapshot)")
	}

	// Re-execute the journaled epochs and verify each re-derived result
	// against its commit record.
	for _, r := range rec.Records {
		switch r.Type {
		case recTypeIntent:
			// An intent without a commit is an epoch that crashed
			// mid-step; the loop below leaves the session positioned to
			// re-run it.
		case recTypeEpoch:
			var er epochRecord
			if err := json.Unmarshal(r.Data, &er); err != nil {
				return nil, fmt.Errorf("daemon: recover: decode epoch record seq %d: %w", r.Seq, err)
			}
			// Catch up over epochs that failed (and therefore committed
			// nothing) in the original run: a deterministic session
			// fails them identically here.
			for session.Epoch() < er.Epoch {
				if _, err := session.Step(); err == nil {
					return nil, fmt.Errorf("daemon: recover: epoch %d succeeded on replay but has no commit record — state dir does not match this scenario", session.Epoch()-1)
				}
			}
			if session.Epoch() != er.Epoch {
				return nil, fmt.Errorf("daemon: recover: commit record for epoch %d but session is at %d — state dir does not match this scenario", er.Epoch, session.Epoch())
			}
			got, err := session.Step()
			if err != nil {
				return nil, fmt.Errorf("daemon: recover: replaying epoch %d: %w", er.Epoch, err)
			}
			if err := verifyReplay(er.Result, got); err != nil {
				return nil, err
			}
			history = appendTrimmed(history, got, limit)
		default:
			return nil, fmt.Errorf("daemon: recover: unknown record type %d at seq %d", r.Type, r.Seq)
		}
	}
	return history, nil
}

// verifyReplay asserts the re-executed epoch reproduces the journaled
// one byte-for-byte. A mismatch means the state dir belongs to a
// different scenario (changed rack, trace, seed, policy…): continuing
// would silently diverge from every decision already acted on.
func verifyReplay(journaled, got sim.EpochResult) error {
	jb, err := json.Marshal(journaled)
	if err != nil {
		return fmt.Errorf("daemon: recover: %w", err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		return fmt.Errorf("daemon: recover: %w", err)
	}
	if !bytes.Equal(jb, gb) {
		return fmt.Errorf("daemon: recover: epoch %d replay diverged from journal — state dir does not match this scenario (journaled %s, replayed %s)",
			journaled.Epoch, jb, gb)
	}
	return nil
}

// appendTrimmed appends to the history ring, enforcing the limit.
func appendTrimmed(history []sim.EpochResult, er sim.EpochResult, limit int) []sim.EpochResult {
	history = append(history, er)
	if over := len(history) - limit; over > 0 {
		history = append(history[:0:0], history[over:]...)
	}
	return history
}
