package fit

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFitQuadratic hardens the curve-fit entry point the profiledb
// update path re-fits on every feedback sample (paper §IV-B.2),
// mirroring the FuzzLoadScenario pattern: arbitrary bytes decode into
// (x, y) samples, and Quadratic must either return an error or a
// well-formed polynomial — never panic, never return NaN/Inf
// coefficients, and always reproduce the same fit for the same samples
// (the determinism contract every golden table leans on).
func FuzzFitQuadratic(f *testing.F) {
	seed := func(samples ...float64) []byte {
		b := make([]byte, 8*len(samples))
		for i, v := range samples {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	// The paper's shape: a handful of well-scaled (power, perf) points.
	f.Add(seed(40, 100, 55, 180, 70, 240, 85, 280, 100, 300))
	f.Add(seed(40, 100, 55, 180, 70, 240))  // exactly determined
	f.Add(seed(40, 100, 55, 180))           // too few samples
	f.Add(seed(50, 1, 50, 2, 50, 3, 50, 4)) // degenerate: shared X
	f.Add(seed(0, 0, 0, 0, 0, 0, 0, 0))
	f.Add(seed(math.MaxFloat64, 1, -math.MaxFloat64, 2, 1, 3))
	f.Add(seed(math.Inf(1), 1, 2, math.NaN(), 3, 4))
	f.Add(seed(1e-300, 1e300, 2e-300, -1e300, 3e-300, 0))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3}) // trailing partial sample is dropped

	f.Fuzz(func(t *testing.T, data []byte) {
		samples := make([]Sample, 0, len(data)/16)
		for i := 0; i+16 <= len(data); i += 16 {
			samples = append(samples, Sample{
				X: math.Float64frombits(binary.LittleEndian.Uint64(data[i:])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(data[i+8:])),
			})
		}

		p, err := Quadratic(samples)
		if err != nil {
			return // rejecting degenerate input is fine; panicking is not
		}
		if got, want := p.Degree(), 2; got != want {
			t.Fatalf("Quadratic degree = %d, want %d", got, want)
		}
		if p.N != len(samples) {
			t.Fatalf("Quadratic N = %d, want %d", p.N, len(samples))
		}
		for i, c := range p.Coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("coefficient %d is %v for samples %v", i, c, samples)
			}
		}

		// Same samples, same fit — bit-identical, not approximately.
		q, err := Quadratic(samples)
		if err != nil {
			t.Fatalf("refit errored (%v) after a successful fit", err)
		}
		for i := range p.Coeffs {
			if math.Float64bits(p.Coeffs[i]) != math.Float64bits(q.Coeffs[i]) {
				t.Fatalf("refit coefficient %d differs: %v vs %v", i, p.Coeffs[i], q.Coeffs[i])
			}
		}
	})
}
