// Package fit provides small least-squares fitting utilities used by the
// GreenHetero performance-power database.
//
// The paper (§IV-B.2) fits a quadratic Perf = f(Power) to a handful of
// profiled (power, performance) samples, and re-fits as feedback samples
// arrive. This package implements polynomial least squares via normal
// equations solved with partially-pivoted Gaussian elimination, which is
// numerically adequate for the low degrees (≤3) and well-scaled inputs
// used here.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Sample is one observed (x, y) pair, e.g. (power watts, throughput).
type Sample struct {
	X float64
	Y float64
}

var (
	// ErrTooFewSamples is returned when fewer samples than coefficients
	// are supplied.
	ErrTooFewSamples = errors.New("fit: too few samples for requested degree")
	// ErrSingular is returned when the normal equations are singular,
	// e.g. all samples share the same X.
	ErrSingular = errors.New("fit: singular system (degenerate samples)")
	// ErrBadDegree is returned for degrees outside [1, 6].
	ErrBadDegree = errors.New("fit: degree must be in [1, 6]")
)

// Poly is a fitted polynomial y = Coeffs[0] + Coeffs[1]*x + Coeffs[2]*x² + …
type Poly struct {
	// Coeffs holds the polynomial coefficients in ascending-power order.
	Coeffs []float64
	// R2 is the coefficient of determination of the fit on its samples.
	R2 float64
	// N is the number of samples used.
	N int
}

// Eval evaluates the polynomial at x using Horner's scheme.
//
// ghlint:allocfree
func (p Poly) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Derivative evaluates dy/dx at x.
//
// ghlint:allocfree
func (p Poly) Derivative(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 1; i-- {
		y = y*x + p.Coeffs[i]*float64(i)
	}
	return y
}

// Degree reports the polynomial degree (len(coeffs)-1), or -1 when empty.
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// String renders the polynomial in human-readable ascending-power form.
func (p Poly) String() string {
	if len(p.Coeffs) == 0 {
		return "fit.Poly{}"
	}
	s := ""
	for i, c := range p.Coeffs {
		if i > 0 {
			s += " + "
		}
		switch i {
		case 0:
			s += fmt.Sprintf("%.6g", c)
		case 1:
			s += fmt.Sprintf("%.6g·x", c)
		default:
			s += fmt.Sprintf("%.6g·x^%d", c, i)
		}
	}
	return s
}

// Polynomial fits a least-squares polynomial of the given degree to the
// samples. Degree 2 reproduces the paper's quadratic projection.
func Polynomial(samples []Sample, degree int) (Poly, error) {
	if degree < 1 || degree > 6 {
		return Poly{}, ErrBadDegree
	}
	m := degree + 1
	if len(samples) < m {
		return Poly{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewSamples, len(samples), m)
	}

	// Build normal equations A·c = b where A[i][j] = Σ x^(i+j),
	// b[i] = Σ y·x^i.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	b := make([]float64, m)
	// powSums[k] = Σ x^k for k in [0, 2·degree].
	powSums := make([]float64, 2*degree+1)
	for _, s := range samples {
		xp := 1.0
		for k := 0; k <= 2*degree; k++ {
			powSums[k] += xp
			if k < m {
				b[k] += s.Y * xp
			}
			xp *= s.X
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			a[i][j] = powSums[i+j]
		}
	}

	coeffs, err := solveLinear(a, b)
	if err != nil {
		return Poly{}, err
	}

	p := Poly{Coeffs: coeffs, N: len(samples)}
	p.R2 = rSquared(samples, p)
	return p, nil
}

// Linear fits y = a + b·x; a convenience wrapper around Polynomial.
func Linear(samples []Sample) (Poly, error) {
	return Polynomial(samples, 1)
}

// Quadratic fits y = a + b·x + c·x²; the paper's projection model.
func Quadratic(samples []Sample) (Poly, error) {
	return Polynomial(samples, 2)
}

// rSquared computes the coefficient of determination of p on samples.
//
// ghlint:allocfree
func rSquared(samples []Sample, p Poly) float64 {
	if len(samples) == 0 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		mean += s.Y
	}
	mean /= float64(len(samples))

	var ssRes, ssTot float64
	for _, s := range samples {
		d := s.Y - p.Eval(s.X)
		ssRes += d * d
		t := s.Y - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		// All Y identical: perfect fit iff residuals vanish.
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// solveLinear solves a·x = b with partial pivoting. It mutates its inputs.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	x := make([]float64, len(a))
	if err := solveLinearInto(a, b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// solveLinearInto is solveLinear writing the solution into x (len(a)),
// so hot-path callers (the Accumulator) can reuse buffers. It mutates a
// and b, and may partially write x before detecting a NaN/Inf solution.
//
// ghlint:allocfree
func solveLinearInto(a [][]float64, b, x []float64) error {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot: pick the row with the largest |a[row][col]|.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}

	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		for c := row + 1; c < n; c++ {
			sum -= a[row][c] * x[c]
		}
		x[row] = sum / a[row][row]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrSingular
		}
	}
	return nil
}
