package fit

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLinearExact(t *testing.T) {
	// y = 3 + 2x fitted from exact points must recover coefficients.
	samples := []Sample{{0, 3}, {1, 5}, {2, 7}, {3, 9}}
	p, err := Linear(samples)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if !almostEqual(p.Coeffs[0], 3, 1e-9) || !almostEqual(p.Coeffs[1], 2, 1e-9) {
		t.Errorf("coeffs = %v, want [3 2]", p.Coeffs)
	}
	if !almostEqual(p.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", p.R2)
	}
}

func TestQuadraticExact(t *testing.T) {
	// y = 1 - 0.5x + 0.25x².
	truth := Poly{Coeffs: []float64{1, -0.5, 0.25}}
	var samples []Sample
	for x := -3.0; x <= 3; x += 0.5 {
		samples = append(samples, Sample{x, truth.Eval(x)})
	}
	p, err := Quadratic(samples)
	if err != nil {
		t.Fatalf("Quadratic: %v", err)
	}
	for i, want := range truth.Coeffs {
		if !almostEqual(p.Coeffs[i], want, 1e-9) {
			t.Errorf("coeff[%d] = %v, want %v", i, p.Coeffs[i], want)
		}
	}
}

func TestQuadraticNoisy(t *testing.T) {
	// With symmetric noise the fit should land near the truth.
	rng := rand.New(rand.NewSource(42))
	truth := Poly{Coeffs: []float64{10, 3, -0.05}}
	var samples []Sample
	for x := 40.0; x <= 180; x += 5 {
		samples = append(samples, Sample{x, truth.Eval(x) + rng.NormFloat64()*2})
	}
	p, err := Quadratic(samples)
	if err != nil {
		t.Fatalf("Quadratic: %v", err)
	}
	for x := 50.0; x <= 170; x += 30 {
		if !almostEqual(p.Eval(x), truth.Eval(x), 5) {
			t.Errorf("Eval(%v) = %v, want ≈ %v", x, p.Eval(x), truth.Eval(x))
		}
	}
	if p.R2 < 0.99 {
		t.Errorf("R2 = %v, want ≥ 0.99", p.R2)
	}
}

func TestPolynomialDegreeErrors(t *testing.T) {
	samples := []Sample{{0, 0}, {1, 1}, {2, 2}}
	tests := []struct {
		name    string
		degree  int
		samples []Sample
		wantErr error
	}{
		{"degree zero", 0, samples, ErrBadDegree},
		{"degree too high", 7, samples, ErrBadDegree},
		{"too few samples", 2, samples[:2], ErrTooFewSamples},
		{"degenerate x", 1, []Sample{{1, 1}, {1, 2}, {1, 3}}, ErrSingular},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Polynomial(tt.samples, tt.degree)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDerivative(t *testing.T) {
	p := Poly{Coeffs: []float64{1, -0.5, 0.25}} // y' = -0.5 + 0.5x
	tests := []struct {
		x, want float64
	}{{0, -0.5}, {1, 0}, {4, 1.5}}
	for _, tt := range tests {
		if got := p.Derivative(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Derivative(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestDegreeAndString(t *testing.T) {
	if d := (Poly{}).Degree(); d != -1 {
		t.Errorf("empty Degree() = %d, want -1", d)
	}
	p := Poly{Coeffs: []float64{1, 2, 3}}
	if d := p.Degree(); d != 2 {
		t.Errorf("Degree() = %d, want 2", d)
	}
	s := p.String()
	for _, frag := range []string{"1", "2·x", "3·x^2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
	if (Poly{}).String() != "fit.Poly{}" {
		t.Errorf("empty String() = %q", (Poly{}).String())
	}
}

func TestRSquaredConstantY(t *testing.T) {
	// All-Y-identical: fit is exact, R2 defined as 1.
	samples := []Sample{{0, 5}, {1, 5}, {2, 5}, {3, 5}}
	p, err := Linear(samples)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if !almostEqual(p.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", p.R2)
	}
}

// Property: fitting exact points of a random quadratic recovers values of
// the quadratic everywhere in the sampled interval.
func TestQuickQuadraticRecovery(t *testing.T) {
	f := func(a, b, c int8) bool {
		truth := Poly{Coeffs: []float64{float64(a), float64(b) / 8, float64(c) / 64}}
		var samples []Sample
		for x := 0.0; x <= 10; x++ {
			samples = append(samples, Sample{x, truth.Eval(x)})
		}
		p, err := Quadratic(samples)
		if err != nil {
			return false
		}
		for x := 0.5; x < 10; x += 1.7 {
			if !almostEqual(p.Eval(x), truth.Eval(x), 1e-6*(1+math.Abs(truth.Eval(x)))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Eval and Horner agree with naive power evaluation.
func TestQuickEvalMatchesNaive(t *testing.T) {
	f := func(c0, c1, c2, c3 int8, xi int8) bool {
		p := Poly{Coeffs: []float64{float64(c0), float64(c1), float64(c2), float64(c3)}}
		x := float64(xi) / 16
		naive := float64(c0) + float64(c1)*x + float64(c2)*x*x + float64(c3)*x*x*x
		return almostEqual(p.Eval(x), naive, 1e-9*(1+math.Abs(naive)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkQuadraticFit(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for x := 40.0; x <= 180; x += 2 {
		samples = append(samples, Sample{x, 10 + 3*x - 0.05*x*x + rng.NormFloat64()})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quadratic(samples); err != nil {
			b.Fatal(err)
		}
	}
}
