package fit

import (
	"errors"
	"math"
	"testing"
)

// polyBitsEqual reports whether two fits are bit-identical (coefficients,
// R², and N), the equivalence currency of the hot-path optimizations.
func polyBitsEqual(a, b Poly) bool {
	if a.N != b.N || math.Float64bits(a.R2) != math.Float64bits(b.R2) || len(a.Coeffs) != len(b.Coeffs) {
		return false
	}
	for i := range a.Coeffs {
		if math.Float64bits(a.Coeffs[i]) != math.Float64bits(b.Coeffs[i]) {
			return false
		}
	}
	return true
}

func mustAcc(t *testing.T, degree int) *Accumulator {
	t.Helper()
	a, err := NewAccumulator(degree)
	if err != nil {
		t.Fatalf("NewAccumulator(%d): %v", degree, err)
	}
	return a
}

// quadSamples synthesizes a noisy-but-deterministic quadratic window.
func quadSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		x := 40 + 3.7*float64(i)
		out[i] = Sample{X: x, Y: 12 + 4.1*x - 0.013*x*x + math.Sin(float64(i))}
	}
	return out
}

func TestAccumulatorMatchesBatchAppendOnly(t *testing.T) {
	samples := quadSamples(40)
	acc := mustAcc(t, 2)
	for i, s := range samples {
		acc.Append(s)
		window := samples[:i+1]
		for _, deg := range []int{1, 2} {
			want, wantErr := Polynomial(window, deg)
			got, gotErr := acc.Fit(window, deg)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("n=%d deg=%d: batch err %v, acc err %v", i+1, deg, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("n=%d deg=%d: error text %q vs %q", i+1, deg, wantErr, gotErr)
				}
				continue
			}
			if !polyBitsEqual(want, got) {
				t.Fatalf("n=%d deg=%d: batch %+v, acc %+v not bit-identical", i+1, deg, want, got)
			}
		}
	}
}

func TestAccumulatorMatchesBatchAfterEviction(t *testing.T) {
	const window = 16
	samples := quadSamples(60)
	acc := mustAcc(t, 2)
	var win []Sample
	for _, s := range samples {
		win = append(win, s)
		if len(win) > window {
			win = win[1:]
			acc.ReplaceWindow(win)
		} else {
			acc.Append(s)
		}
		want, err := Quadratic(win)
		if err != nil {
			continue
		}
		got, err := acc.Fit(win, 2)
		if err != nil {
			t.Fatalf("acc fit errored (%v) where batch succeeded", err)
		}
		if !polyBitsEqual(want, got) {
			t.Fatalf("window fit diverged: batch %+v acc %+v", want, got)
		}
	}
}

func TestAccumulatorFailedSolveKeepsPreviousCoeffs(t *testing.T) {
	good := quadSamples(8)
	acc := mustAcc(t, 2)
	acc.ReplaceWindow(good)
	p, err := acc.Fit(good, 2)
	if err != nil {
		t.Fatal(err)
	}
	kept := append([]float64(nil), p.Coeffs...)

	// Degenerate window: all samples share X — singular normal equations.
	bad := make([]Sample, 8)
	for i := range bad {
		bad[i] = Sample{X: 50, Y: float64(i)}
	}
	acc.ReplaceWindow(bad)
	if _, err := acc.Fit(bad, 2); err == nil {
		t.Fatal("expected singular fit to fail")
	}
	// The previously returned Poly must be untouched: a live profiledb
	// curve stays in force after a degenerate refit.
	for i := range kept {
		if math.Float64bits(kept[i]) != math.Float64bits(p.Coeffs[i]) {
			t.Fatalf("failed solve corrupted previous coefficients: %v vs %v", kept, p.Coeffs)
		}
	}
}

func TestAccumulatorValidation(t *testing.T) {
	if _, err := NewAccumulator(0); !errors.Is(err, ErrBadDegree) {
		t.Fatalf("degree 0: %v", err)
	}
	if _, err := NewAccumulator(7); !errors.Is(err, ErrBadDegree) {
		t.Fatalf("degree 7: %v", err)
	}
	acc := mustAcc(t, 2)
	samples := quadSamples(5)
	acc.ReplaceWindow(samples)
	if _, err := acc.Fit(samples, 3); !errors.Is(err, ErrBadDegree) {
		t.Fatalf("degree above accumulator's: %v", err)
	}
	if _, err := acc.Fit(samples[:3], 2); err == nil {
		t.Fatal("window/accumulator length mismatch must error")
	}
	if _, err := acc.Fit(samples, 2); err != nil {
		t.Fatalf("valid fit: %v", err)
	}
}

func TestAccumulatorFitAllocsFree(t *testing.T) {
	samples := quadSamples(64)
	acc := mustAcc(t, 2)
	acc.ReplaceWindow(samples)
	if _, err := acc.Fit(samples, 2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		acc.ReplaceWindow(samples)
		if _, err := acc.Fit(samples, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReplaceWindow+Fit allocates %v per run, want 0", allocs)
	}
}
