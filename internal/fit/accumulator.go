package fit

import "fmt"

// Accumulator is the incremental form of Polynomial: it maintains the
// normal-equation sums (Σ xᵏ and Σ y·xᵏ) as samples arrive, so the
// per-epoch refit of a profile-database entry costs O(degree) per
// appended sample plus one small dense solve — instead of re-walking the
// whole retained window — and performs zero steady-state allocations
// (the matrix, right-hand side, and coefficient buffers are preallocated
// at construction).
//
// Equivalence contract (enforced by FuzzFitIncremental): a Fit over a
// window whose samples were Appended in order returns the bit-identical
// Poly that the batch Polynomial returns for that window. This holds
// because Append performs exactly the per-sample operations of the batch
// loop, in the same order, on the same running sums. The one case where
// an O(1) update is provably unable to preserve bit-identity is window
// eviction: subtracting an evicted sample's contributions re-associates
// the floating-point additions and is only ULP-close, not identical
// ((a+b)-a ≠ b in general). Eviction therefore re-accumulates over the
// retained window via ReplaceWindow — O(window·degree), still
// allocation-free, and the window is small by design (profiledb caps it
// at 64 samples).
type Accumulator struct {
	degree int
	n      int
	// pow[k] = Σ xᵏ for k in [0, 2·degree]; mom[k] = Σ y·xᵏ for
	// k in [0, degree]. Identical accumulation order to Polynomial.
	pow []float64
	mom []float64
	// Preallocated solve scratch: rows points into rowBuf (the normal
	// matrix is rebuilt from pow before every solve, and solveLinearInto
	// swaps row headers while pivoting).
	rows   [][]float64
	rowBuf []float64
	rhs    []float64
	// Double-buffered coefficients: a failed solve may scribble on its
	// output before detecting a NaN, so each Fit solves into the buffer
	// the previous successful Fit did NOT return. The previously
	// returned Poly (e.g. a live profiledb curve kept in force after a
	// degenerate refit) is never corrupted by a failed attempt.
	coeffs [2][]float64
	cur    int
}

// NewAccumulator prepares an accumulator for fits up to the given
// degree (lower degrees can be fitted from the same sums — the sums a
// degree-d fit needs are a prefix of a higher-degree accumulator's).
func NewAccumulator(degree int) (*Accumulator, error) {
	if degree < 1 || degree > 6 {
		return nil, ErrBadDegree
	}
	m := degree + 1
	a := &Accumulator{
		degree: degree,
		pow:    make([]float64, 2*degree+1),
		mom:    make([]float64, m),
		rows:   make([][]float64, m),
		rowBuf: make([]float64, m*m),
		rhs:    make([]float64, m),
	}
	a.coeffs[0] = make([]float64, m)
	a.coeffs[1] = make([]float64, m)
	return a, nil
}

// Len reports the number of accumulated samples.
func (a *Accumulator) Len() int { return a.n }

// Degree reports the maximum fittable degree.
func (a *Accumulator) Degree() int { return a.degree }

// Append folds one sample into the running sums. It performs exactly
// the batch loop's per-sample updates (same expressions, same order),
// which is what makes append-only windows bit-identical to batch fits.
//
// ghlint:allocfree
func (a *Accumulator) Append(s Sample) {
	xp := 1.0
	for k := 0; k <= 2*a.degree; k++ {
		a.pow[k] += xp
		if k <= a.degree {
			a.mom[k] += s.Y * xp
		}
		xp *= s.X
	}
	a.n++
}

// Reset clears the sums (the solve buffers are retained).
//
// ghlint:allocfree
func (a *Accumulator) Reset() {
	for i := range a.pow {
		a.pow[i] = 0
	}
	for i := range a.mom {
		a.mom[i] = 0
	}
	a.n = 0
}

// ReplaceWindow resets and re-accumulates over window in order — the
// eviction path (see the type comment for why eviction cannot be O(1)
// without losing bit-identity).
//
// ghlint:allocfree
func (a *Accumulator) ReplaceWindow(window []Sample) {
	a.Reset()
	for _, s := range window {
		a.Append(s)
	}
}

// Fit solves the normal equations for the given degree from the running
// sums. window must hold exactly the accumulated samples, in order; it
// is consulted only for the R² computation. The returned Poly's Coeffs
// alias an internal buffer that remains valid until the next successful
// Fit — callers that retain coefficients across fits must copy them
// (profiledb's Lookup/Save/Projection all do).
//
// ghlint:allocfree
func (a *Accumulator) Fit(window []Sample, degree int) (Poly, error) {
	if degree < 1 || degree > a.degree {
		return Poly{}, ErrBadDegree
	}
	if len(window) != a.n {
		return Poly{}, fmt.Errorf("fit: window has %d samples, accumulator holds %d", len(window), a.n)
	}
	m := degree + 1
	if a.n < m {
		return Poly{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewSamples, a.n, m)
	}
	for i := 0; i < m; i++ {
		row := a.rowBuf[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			row[j] = a.pow[i+j]
		}
		a.rows[i] = row
	}
	rhs := a.rhs[:m]
	copy(rhs, a.mom[:m])
	next := a.coeffs[1-a.cur][:m]
	if err := solveLinearInto(a.rows[:m], rhs, next); err != nil {
		return Poly{}, err
	}
	a.cur = 1 - a.cur
	p := Poly{Coeffs: next, N: a.n}
	p.R2 = rSquared(window, p)
	return p, nil
}
