package fit

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFitIncremental is the differential proof behind the accumulator:
// arbitrary bytes decode into a stream of (x, y) samples fed through a
// bounded window (mimicking profiledb's 64-sample cap), maintained both
// as a plain slice refit by the batch Polynomial and as an Accumulator.
// Append-only growth uses Append; evictions use ReplaceWindow (the type
// comment documents why an O(1) subtractive eviction is only ULP-close
// and therefore not offered). At every step both paths must agree
// bit-for-bit — same error outcome, same coefficients, same R² — for
// both the quadratic and linear fits profiledb falls back through.
func FuzzFitIncremental(f *testing.F) {
	seed := func(samples ...float64) []byte {
		b := make([]byte, 8*len(samples))
		for i, v := range samples {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(40, 100, 55, 180, 70, 240, 85, 280, 100, 300))
	f.Add(seed(40, 100, 55, 180, 70, 240))  // exactly determined
	f.Add(seed(40, 100, 55, 180))           // too few for quadratic
	f.Add(seed(50, 1, 50, 2, 50, 3, 50, 4)) // degenerate: shared X
	f.Add(seed(0, 0, 0, 0, 0, 0, 0, 0))
	f.Add(seed(math.MaxFloat64, 1, -math.MaxFloat64, 2, 1, 3))
	f.Add(seed(math.Inf(1), 1, 2, math.NaN(), 3, 4))
	f.Add(seed(1e-300, 1e300, 2e-300, -1e300, 3e-300, 0))
	// Long stream: 12 samples through an 8-slot window forces evictions.
	long := make([]float64, 0, 24)
	for i := 0; i < 12; i++ {
		x := 40 + 5*float64(i)
		long = append(long, x, 10+3*x-0.01*x*x)
	}
	f.Add(seed(long...))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		// First byte (if any) picks the window cap in [4, 11] so small
		// inputs still exercise eviction; remaining bytes are samples.
		cap := 8
		if len(data) > 0 {
			cap = 4 + int(data[0]%8)
			data = data[1:]
		}

		acc, err := NewAccumulator(2)
		if err != nil {
			t.Fatal(err)
		}
		var window []Sample
		for i := 0; i+16 <= len(data); i += 16 {
			s := Sample{
				X: math.Float64frombits(binary.LittleEndian.Uint64(data[i:])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(data[i+8:])),
			}
			window = append(window, s)
			if len(window) > cap {
				window = window[1:]
				acc.ReplaceWindow(window)
			} else {
				acc.Append(s)
			}

			for _, deg := range []int{1, 2} {
				want, wantErr := Polynomial(window, deg)
				got, gotErr := acc.Fit(window, deg)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("step %d deg %d: batch err %v, accumulator err %v (window %v)",
						i/16, deg, wantErr, gotErr, window)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("step %d deg %d: error %q vs %q", i/16, deg, wantErr, gotErr)
					}
					continue
				}
				if want.N != got.N || len(want.Coeffs) != len(got.Coeffs) {
					t.Fatalf("step %d deg %d: shape mismatch %+v vs %+v", i/16, deg, want, got)
				}
				for k := range want.Coeffs {
					if math.Float64bits(want.Coeffs[k]) != math.Float64bits(got.Coeffs[k]) {
						t.Fatalf("step %d deg %d coeff %d: batch %v (%#x), accumulator %v (%#x)",
							i/16, deg, k, want.Coeffs[k], math.Float64bits(want.Coeffs[k]),
							got.Coeffs[k], math.Float64bits(got.Coeffs[k]))
					}
				}
				if math.Float64bits(want.R2) != math.Float64bits(got.R2) {
					t.Fatalf("step %d deg %d: R² %v vs %v", i/16, deg, want.R2, got.R2)
				}
			}
		}
	})
}
