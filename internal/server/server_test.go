package server

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestCatalogMatchesTable2(t *testing.T) {
	specs := Catalog()
	if len(specs) != 6 {
		t.Fatalf("catalog size = %d, want 6", len(specs))
	}
	tests := []struct {
		id           string
		peakW, idleW float64
		cores        int
		class        Class
	}{
		{XeonE52620, 178, 88, 12, ClassCPU},
		{XeonE52650, 112, 66, 8, ClassCPU},
		{XeonE52603, 79, 58, 4, ClassCPU},
		{CoreI78700K, 88, 39, 6, ClassCPU},
		{CoreI54460, 96, 47, 4, ClassCPU},
		{TitanXp, 411, 149, 3840, ClassGPU},
	}
	for _, tt := range tests {
		t.Run(tt.id, func(t *testing.T) {
			s, err := Lookup(tt.id)
			if err != nil {
				t.Fatal(err)
			}
			if s.PeakW != tt.peakW || s.IdleW != tt.idleW || s.Cores != tt.cores || s.Class != tt.class {
				t.Errorf("spec %+v does not match Table II", s)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("catalog spec invalid: %v", err)
			}
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("pdp-11"); err == nil {
		t.Error("unknown lookup should error")
	}
}

func TestCatalogIsACopy(t *testing.T) {
	c := Catalog()
	c[0].PeakW = 1
	s, err := Lookup(XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	if s.PeakW != 178 {
		t.Error("Catalog must return a copy")
	}
}

func TestValidate(t *testing.T) {
	base, err := Lookup(XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty id", func(s *Spec) { s.ID = "" }},
		{"bad class", func(s *Spec) { s.Class = 0 }},
		{"zero freq", func(s *Spec) { s.BaseFreqMHz = 0 }},
		{"zero sockets", func(s *Spec) { s.Sockets = 0 }},
		{"zero cores", func(s *Spec) { s.Cores = 0 }},
		{"zero idle", func(s *Spec) { s.IdleW = 0 }},
		{"peak below idle", func(s *Spec) { s.PeakW = s.IdleW - 1 }},
		{"one dvfs level", func(s *Spec) { s.DVFSLevels = 1 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			tt.mut(&s)
			if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestStatesOrderedAndBounded(t *testing.T) {
	for _, s := range Catalog() {
		states := s.States()
		if len(states) != s.DVFSLevels+1 {
			t.Errorf("%s: %d states, want %d", s.ID, len(states), s.DVFSLevels+1)
		}
		if states[0].Name != "sleep" || states[0].FreqMHz != 0 {
			t.Errorf("%s: first state = %+v, want sleep", s.ID, states[0])
		}
		if !sort.SliceIsSorted(states, func(i, j int) bool { return states[i].Watts < states[j].Watts }) {
			t.Errorf("%s: states not ordered by power", s.ID)
		}
		top := states[len(states)-1]
		if top.Watts > s.PeakW+1e-9 || top.FreqMHz != s.BaseFreqMHz {
			t.Errorf("%s: top state = %+v, want peak %vW @ %vMHz", s.ID, top, s.PeakW, s.BaseFreqMHz)
		}
	}
}

func TestStateForPower(t *testing.T) {
	s, err := Lookup(XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	states := s.States()
	tests := []struct {
		name    string
		targetW float64
		want    string
	}{
		{"below running floor", 10, "sleep"},
		{"at peak", s.PeakW, states[len(states)-1].Name},
		{"above peak", s.PeakW + 100, states[len(states)-1].Name},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := s.StateForPower(tt.targetW)
			if got.Name != tt.want {
				t.Errorf("StateForPower(%v) = %q, want %q", tt.targetW, got.Name, tt.want)
			}
		})
	}
	// Mid-range mapping must pick a state whose power is ≤ target + one
	// step (the enforcer never overshoots its budget by more than a step).
	for w := states[1].Watts; w < s.PeakW; w += 5 {
		st := s.StateForPower(w)
		if st.Watts > w+s.DynamicRangeW()/float64(s.DVFSLevels-1)+1e-9 {
			t.Errorf("StateForPower(%v) picked %v W", w, st.Watts)
		}
	}
}

// Property: StateForPower is monotone — more power never selects a
// lower-power state.
func TestQuickStateForPowerMonotone(t *testing.T) {
	specs := Catalog()
	f := func(specIdx uint8, w1Raw, w2Raw uint16) bool {
		s := specs[int(specIdx)%len(specs)]
		w1, w2 := float64(w1Raw%500), float64(w2Raw%500)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		return s.StateForPower(w1).Watts <= s.StateForPower(w2).Watts+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func mustSpec(t *testing.T, id string) Spec {
	t.Helper()
	s, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRack(t *testing.T) {
	a := mustSpec(t, XeonE52620)
	b := mustSpec(t, CoreI54460)
	r, err := NewRack("comb1", Group{a, 5}, Group{b, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "comb1" || r.Servers() != 10 || r.NumGroups() != 2 {
		t.Errorf("rack = %q servers %d groups %d", r.Name(), r.Servers(), r.NumGroups())
	}
	wantPeak := 5*178.0 + 5*96.0
	if got := r.PeakW(); got != wantPeak {
		t.Errorf("PeakW = %v, want %v", got, wantPeak)
	}
	wantIdle := 5*88.0 + 5*47.0
	if got := r.IdleW(); got != wantIdle {
		t.Errorf("IdleW = %v, want %v", got, wantIdle)
	}
}

func TestNewRackOrdering(t *testing.T) {
	// Group order at construction must not matter: sorted by spec ID.
	a := mustSpec(t, XeonE52620)
	b := mustSpec(t, CoreI54460)
	r1, err := NewRack("x", Group{a, 1}, Group{b, 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRack("x", Group{b, 1}, Group{a, 1})
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := r1.Groups(), r2.Groups()
	for i := range g1 {
		if g1[i].Spec.ID != g2[i].Spec.ID {
			t.Fatalf("group order differs: %v vs %v", g1[i].Spec.ID, g2[i].Spec.ID)
		}
	}
}

func TestNewRackErrors(t *testing.T) {
	a := mustSpec(t, XeonE52620)
	b := mustSpec(t, XeonE52650)
	c := mustSpec(t, XeonE52603)
	d := mustSpec(t, CoreI54460)
	if _, err := NewRack("empty"); !errors.Is(err, ErrEmptyRack) {
		t.Errorf("err = %v, want ErrEmptyRack", err)
	}
	if _, err := NewRack("four", Group{a, 1}, Group{b, 1}, Group{c, 1}, Group{d, 1}); !errors.Is(err, ErrTooManyGroups) {
		t.Errorf("err = %v, want ErrTooManyGroups", err)
	}
	if _, err := NewRack("dup", Group{a, 1}, Group{a, 2}); err == nil {
		t.Error("duplicate specs should error")
	}
	if _, err := NewRack("zero", Group{a, 0}); err == nil {
		t.Error("zero count should error")
	}
	bad := a
	bad.IdleW = 0
	if _, err := NewRack("bad", Group{bad, 1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec", err)
	}
}

func TestGroupsIsACopy(t *testing.T) {
	a := mustSpec(t, XeonE52620)
	r, err := NewRack("x", Group{a, 1})
	if err != nil {
		t.Fatal(err)
	}
	gs := r.Groups()
	gs[0].Count = 99
	if r.Groups()[0].Count != 1 {
		t.Error("Groups must return a copy")
	}
}

func TestClassString(t *testing.T) {
	if ClassCPU.String() != "cpu" || ClassGPU.String() != "gpu" {
		t.Error("Class.String mismatch")
	}
	if Class(7).String() != "Class(7)" {
		t.Errorf("unknown = %v", Class(7))
	}
}

// TestStatesCacheBounded pins the statesCache eviction contract: the
// memo never exceeds statesCacheCap entries, and specs served past the
// cap still get correct (just unmemoized) state ladders.
func TestStatesCacheBounded(t *testing.T) {
	base, err := Lookup(XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	// Churn far more synthetic specs than the cap holds, as a fleet-gen
	// sweep would.
	var over Spec
	for i := 0; i < statesCacheCap+16; i++ {
		s := base
		s.PeakW = base.PeakW + float64(i) // distinct comparable key per spec
		s.StateForPower(100)
		over = s
	}
	var n int
	statesCache.Range(func(_, _ any) bool { n++; return true })
	if n > statesCacheCap {
		t.Fatalf("statesCache holds %d entries, cap is %d", n, statesCacheCap)
	}
	if got := statesCacheLen.Load(); got > statesCacheCap {
		t.Fatalf("statesCacheLen = %d, cap is %d", got, statesCacheCap)
	}
	// A spec past the cap is served a freshly-built ladder identical to
	// the memoized shape: same length, monotone watts, sleep first.
	states := over.States()
	if len(states) != over.DVFSLevels+1 {
		t.Fatalf("over-cap spec: %d states, want %d", len(states), over.DVFSLevels+1)
	}
	if states[0].Name != "sleep" {
		t.Fatalf("over-cap spec: first state %q, want sleep", states[0].Name)
	}
	for i := 1; i < len(states); i++ {
		if states[i].Watts < states[i-1].Watts {
			t.Fatalf("over-cap spec: watts not monotone at %d: %v < %v", i, states[i].Watts, states[i-1].Watts)
		}
	}
	// Determinism: two uncached builds agree.
	again := over.States()
	for i := range states {
		if states[i] != again[i] {
			t.Fatalf("over-cap spec: rebuild differs at state %d: %+v vs %+v", i, states[i], again[i])
		}
	}
}
