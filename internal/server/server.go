// Package server models the heterogeneous rack servers of the paper's
// evaluation platform (Table II): six configurations spanning three Xeon
// generations, two desktop Cores, and an Nvidia GPU, each described by
// its peak/idle power envelope and a ladder of DVFS power states.
//
// Servers here are power/performance envelopes, not instruction-level
// models: the controller treats a server as a box that converts an
// allocated power budget into throughput (see internal/workload for the
// response surfaces), which is exactly the abstraction the paper's
// scheduler operates on.
package server

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Class broadly distinguishes processing hardware.
type Class int

const (
	// ClassCPU marks general-purpose CPU servers.
	ClassCPU Class = iota + 1
	// ClassGPU marks GPU accelerator servers.
	ClassGPU
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCPU:
		return "cpu"
	case ClassGPU:
		return "gpu"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Spec describes one server configuration (a Table II row).
type Spec struct {
	// ID is a stable short identifier, e.g. "e5-2620".
	ID string
	// Model is the marketing name, e.g. "Xeon E5-2620".
	Model string
	// Class distinguishes CPU from GPU servers.
	Class Class
	// BaseFreqMHz is the nominal frequency (Table II "Frequency").
	BaseFreqMHz float64
	// Sockets and Cores follow Table II.
	Sockets int
	Cores   int
	// PeakW and IdleW bound the power envelope (Table II).
	PeakW float64
	IdleW float64
	// DVFSLevels is the number of frequency steps exposed; at least 2.
	DVFSLevels int
	// PerfFactor is a microarchitectural efficiency multiplier on the
	// capability model (IPC, memory system, uncore): cores and
	// frequency alone do not rank real servers. Calibrated so the
	// Table IV pairs behave as the paper reports — Comb2/Comb4 nearly
	// homogeneous in throughput-per-watt, Comb1/Comb3 strongly
	// heterogeneous. Must be positive.
	PerfFactor float64
}

// ErrBadSpec is returned when a spec fails validation.
var ErrBadSpec = errors.New("server: bad spec")

// Validate checks internal consistency.
func (s Spec) Validate() error {
	switch {
	case s.ID == "":
		return fmt.Errorf("%w: empty ID", ErrBadSpec)
	case s.Class != ClassCPU && s.Class != ClassGPU:
		return fmt.Errorf("%w %s: unknown class %d", ErrBadSpec, s.ID, int(s.Class))
	case s.BaseFreqMHz <= 0:
		return fmt.Errorf("%w %s: frequency %v", ErrBadSpec, s.ID, s.BaseFreqMHz)
	case s.Sockets < 1 || s.Cores < 1:
		return fmt.Errorf("%w %s: sockets %d cores %d", ErrBadSpec, s.ID, s.Sockets, s.Cores)
	case s.IdleW <= 0 || s.PeakW <= s.IdleW:
		return fmt.Errorf("%w %s: power envelope idle %v peak %v", ErrBadSpec, s.ID, s.IdleW, s.PeakW)
	case s.DVFSLevels < 2:
		return fmt.Errorf("%w %s: DVFS levels %d", ErrBadSpec, s.ID, s.DVFSLevels)
	case s.PerfFactor <= 0:
		return fmt.Errorf("%w %s: perf factor %v", ErrBadSpec, s.ID, s.PerfFactor)
	}
	return nil
}

// DynamicRangeW is the controllable power span (peak − idle).
func (s Spec) DynamicRangeW() float64 { return s.PeakW - s.IdleW }

// PowerState is one entry of the ordered power-state set S_N of §IV-B.4:
// either a low-power (sleep) state or a DVFS frequency level.
type PowerState struct {
	// Name labels the state, e.g. "sleep", "freq-1600MHz".
	Name string
	// FreqMHz is 0 for sleep states.
	FreqMHz float64
	// Watts is the server draw while in this state at full load.
	Watts float64
}

// States returns the ordered power-state set S_N, lowest power first:
// a sleep state, then DVFSLevels frequency steps from the lowest usable
// frequency up to base frequency. Power at a frequency step follows the
// classic DVFS scaling P = idle + (peak − idle)·(f/fmax)^e with e ≈ 2.2
// (voltage scales with frequency, P ∝ f·V²).
func (s Spec) States() []PowerState {
	return append([]PowerState(nil), s.cachedStates()...)
}

// statesCache memoizes buildStates per Spec (a comparable value type):
// the state set is a pure function of the spec, and the SPC maps a power
// target to a state every epoch — rebuilding the ladder (with its
// per-level Pow and Sprintf) on each enforcement dominated the epoch
// hot path before caching.
//
// The cache is bounded at statesCacheCap entries. The catalog holds six
// specs and a rack at most three, but experiment sweeps fabricate
// synthetic specs freely; an unbounded memo would grow for the process
// lifetime. Past the cap, new specs are served freshly-built ladders —
// correct, just unmemoized. The bound is approximate under concurrency:
// racing first-time builders can overshoot by at most the number of
// racing goroutines.
var statesCache sync.Map // Spec → []PowerState

// statesCacheCap bounds statesCache (see its doc).
const statesCacheCap = 64

// statesCacheLen counts statesCache entries (approximately, see
// statesCache's doc).
var statesCacheLen atomic.Int64

// cachedStates returns the memoized state set. The returned slice is
// shared: callers must not mutate it (States hands external callers a
// copy).
//
// ghlint:allocfree
func (s Spec) cachedStates() []PowerState {
	if v, ok := statesCache.Load(s); ok { //lint:ghlint ignore allocfree the Spec key boxes into sync.Map.Load — the lookup's one budgeted allocation
		return v.([]PowerState)
	}
	return s.buildStates() //lint:ghlint ignore allocfree cold first build per Spec, memoized below the cache cap
}

// buildStates computes the ladder and memoizes it while the cache has
// room.
func (s Spec) buildStates() []PowerState {
	const sleepW = 4.0
	const dvfsExp = 2.2
	states := make([]PowerState, 0, s.DVFSLevels+1)
	states = append(states, PowerState{Name: "sleep", Watts: math.Min(sleepW, s.IdleW)})
	// Lowest usable frequency ≈ 40 % of base, evenly spaced steps to 100 %.
	const fMinFrac = 0.40
	for i := 0; i < s.DVFSLevels; i++ {
		frac := fMinFrac + (1-fMinFrac)*float64(i)/float64(s.DVFSLevels-1)
		f := s.BaseFreqMHz * frac
		w := s.IdleW + s.DynamicRangeW()*math.Pow(frac, dvfsExp)
		states = append(states, PowerState{
			Name:    fmt.Sprintf("freq-%.0fMHz", f),
			FreqMHz: f,
			Watts:   w,
		})
	}
	if statesCacheLen.Load() >= statesCacheCap {
		return states
	}
	if v, loaded := statesCache.LoadOrStore(s, states); loaded {
		return v.([]PowerState)
	}
	statesCacheLen.Add(1)
	return states
}

// StateForPower implements the paper's linear mapping from a power target
// to a position in S_N (§IV-B.4): targets at or above peak select the
// highest state, targets below the lowest running state select sleep, and
// anything between is linearly scaled to a state index.
//
// ghlint:allocfree
func (s Spec) StateForPower(targetW float64) PowerState {
	states := s.cachedStates()
	lo := states[1].Watts // lowest running state
	hi := states[len(states)-1].Watts
	switch {
	case targetW < lo:
		return states[0]
	case targetW >= hi:
		return states[len(states)-1]
	}
	// Linear scale into the running states [1, len-1].
	frac := (targetW - lo) / (hi - lo)
	idx := 1 + int(math.Floor(frac*float64(len(states)-2)))
	if idx > len(states)-1 {
		idx = len(states) - 1
	}
	return states[idx]
}

// Catalog IDs for the Table II servers.
const (
	XeonE52620  = "e5-2620"
	XeonE52650  = "e5-2650"
	XeonE52603  = "e5-2603"
	CoreI78700K = "i7-8700k"
	CoreI54460  = "i5-4460"
	TitanXp     = "titan-xp"
)

// catalog reproduces Table II.
var catalog = []Spec{
	{ID: XeonE52620, Model: "Xeon E5-2620", Class: ClassCPU, BaseFreqMHz: 2000, Sockets: 2, Cores: 12, PeakW: 178, IdleW: 88, DVFSLevels: 10, PerfFactor: 1.00},
	{ID: XeonE52650, Model: "Xeon E5-2650", Class: ClassCPU, BaseFreqMHz: 2000, Sockets: 1, Cores: 8, PeakW: 112, IdleW: 66, DVFSLevels: 10, PerfFactor: 1.45},
	{ID: XeonE52603, Model: "Xeon E5-2603", Class: ClassCPU, BaseFreqMHz: 1800, Sockets: 1, Cores: 4, PeakW: 79, IdleW: 58, DVFSLevels: 8, PerfFactor: 1.60},
	{ID: CoreI78700K, Model: "Core i7-8700K", Class: ClassCPU, BaseFreqMHz: 3700, Sockets: 1, Cores: 6, PeakW: 88, IdleW: 39, DVFSLevels: 12, PerfFactor: 0.55},
	{ID: CoreI54460, Model: "Core i5-4460", Class: ClassCPU, BaseFreqMHz: 3200, Sockets: 1, Cores: 4, PeakW: 96, IdleW: 47, DVFSLevels: 10, PerfFactor: 1.00},
	{ID: TitanXp, Model: "Nvidia Titan Xp", Class: ClassGPU, BaseFreqMHz: 1582, Sockets: 1, Cores: 3840, PeakW: 411, IdleW: 149, DVFSLevels: 16, PerfFactor: 1.00},
}

// Catalog returns a copy of the Table II server catalog.
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup finds a catalog spec by ID.
func Lookup(id string) (Spec, error) {
	for _, s := range catalog {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("server: unknown spec %q", id)
}

// Group is a homogeneous set of servers within a rack.
type Group struct {
	Spec  Spec
	Count int
}

// Rack is a PDU-level collection of up to three heterogeneous server
// groups (the paper assumes ≤3 configurations per rack, §IV-B.3).
type Rack struct {
	name   string
	groups []Group
}

var (
	// ErrTooManyGroups enforces the paper's ≤3 configurations per rack.
	ErrTooManyGroups = errors.New("server: rack supports at most 3 server groups")
	// ErrEmptyRack is returned for racks with no servers.
	ErrEmptyRack = errors.New("server: rack has no servers")
)

// NewRack builds a rack from groups, validating each spec.
func NewRack(name string, groups ...Group) (*Rack, error) {
	if len(groups) == 0 {
		return nil, ErrEmptyRack
	}
	if len(groups) > 3 {
		return nil, fmt.Errorf("%w: got %d", ErrTooManyGroups, len(groups))
	}
	seen := make(map[string]bool, len(groups))
	gs := make([]Group, len(groups))
	for i, g := range groups {
		if err := g.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("rack %q group %d: %w", name, i, err)
		}
		if g.Count < 1 {
			return nil, fmt.Errorf("server: rack %q group %q: count %d", name, g.Spec.ID, g.Count)
		}
		if seen[g.Spec.ID] {
			return nil, fmt.Errorf("server: rack %q: duplicate spec %q", name, g.Spec.ID)
		}
		seen[g.Spec.ID] = true
		gs[i] = g
	}
	// Stable ordering by spec ID keeps PAR vectors deterministic.
	sort.Slice(gs, func(i, j int) bool { return gs[i].Spec.ID < gs[j].Spec.ID })
	return &Rack{name: name, groups: gs}, nil
}

// Name returns the rack's label.
func (r *Rack) Name() string { return r.name }

// Groups returns a copy of the rack's server groups.
func (r *Rack) Groups() []Group {
	out := make([]Group, len(r.groups))
	copy(out, r.groups)
	return out
}

// NumGroups reports how many heterogeneous groups the rack holds.
//
// ghlint:allocfree
func (r *Rack) NumGroups() int { return len(r.groups) }

// Group returns the i'th group by value, letting per-epoch paths iterate
// the rack without the defensive copy Groups makes.
//
// ghlint:allocfree
func (r *Rack) Group(i int) Group { return r.groups[i] }

// Servers reports the total server count.
func (r *Rack) Servers() int {
	var n int
	for _, g := range r.groups {
		n += g.Count
	}
	return n
}

// PeakW is the aggregate peak power demand of the rack.
func (r *Rack) PeakW() float64 {
	var w float64
	for _, g := range r.groups {
		w += g.Spec.PeakW * float64(g.Count)
	}
	return w
}

// IdleW is the aggregate idle power demand of the rack.
func (r *Rack) IdleW() float64 {
	var w float64
	for _, g := range r.groups {
		w += g.Spec.IdleW * float64(g.Count)
	}
	return w
}
