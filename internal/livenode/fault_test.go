package livenode

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/core"
	"greenhetero/internal/faultnet"
	"greenhetero/internal/policy"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/server"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/workload"
)

func fastRetry(attempts int) telemetry.RetryPolicy {
	return telemetry.RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 3}
}

func TestNodeSetTargetNonFinite(t *testing.T) {
	n, err := NewNode("n0", mustSpec(t, server.XeonE52620), mustWorkload(t, workload.SPECjbb), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := n.SetTarget(bad); err == nil {
			t.Errorf("SetTarget(%v) should error", bad)
		}
	}
	if err := n.SetTarget(100); err != nil {
		t.Errorf("finite target rejected: %v", err)
	}
}

// TestTrainingRunSingleSample pins the Samples=1 path: the sweep fraction
// used to be 0/0 = NaN, which poisoned the power target.
func TestTrainingRunSingleSample(t *testing.T) {
	_, addrs, _ := liveRack(t)
	spec := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, workload.SPECjbb)
	p := &Prober{GroupAddrs: addrs, Samples: 1, Timeout: 2 * time.Second}
	res, err := p.TrainingRun(spec, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(res.Samples))
	}
	s := res.Samples[0]
	if math.IsNaN(s.X) || math.IsNaN(s.Y) || math.IsInf(s.X, 0) || math.IsInf(s.Y, 0) {
		t.Errorf("single-sample training produced non-finite sample %+v", s)
	}
}

// TestTrainingRunUnderFaults sweeps a node through a proxy injecting
// seeded connection resets: the prober's retry policy must carry the
// whole run through without aborting.
func TestTrainingRunUnderFaults(t *testing.T) {
	spec := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, workload.SPECjbb)
	n, err := NewNode("n0", spec, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := telemetry.NewAgent("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	sched, err := faultnet.NewSchedule(17, faultnet.Rates{Reset: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	p, err := faultnet.New(a.Addr(), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })

	prober := &Prober{
		GroupAddrs: map[string][]string{spec.ID: {p.Addr()}},
		Samples:    5,
		Timeout:    time.Second,
		Retry:      fastRetry(4),
	}
	res, err := prober.TrainingRun(spec, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(res.Samples))
	}
	if p.Count(faultnet.Reset) == 0 {
		t.Error("schedule injected no resets; test exercised nothing")
	}
}

// TestClosedLoopDegradedMinority is the headline fault-tolerance run: a
// multi-epoch live control loop where one of four agents sits behind a
// 20%-drop proxy. Every epoch must complete — dropped samples surface as
// stale readings, never as failed epochs — and killing a majority of
// agents must still abort collection.
func TestClosedLoopDegradedMinority(t *testing.T) {
	if testing.Short() {
		t.Skip("drop faults spend real timeouts")
	}
	specA := mustSpec(t, server.XeonE52620)
	specB := mustSpec(t, server.CoreI54460)
	w := mustWorkload(t, workload.SPECjbb)
	rack, err := server.NewRack("degraded",
		server.Group{Spec: specA, Count: 2},
		server.Group{Spec: specB, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	groupAddrs := make(map[string][]string)
	var agents []*telemetry.Agent
	for gi, g := range rack.Groups() {
		for i := 0; i < g.Count; i++ {
			n, err := NewNode(fmt.Sprintf("g%d/n%d", gi, i), g.Spec, w, int64(gi*10+i))
			if err != nil {
				t.Fatal(err)
			}
			a, err := telemetry.NewAgent("127.0.0.1:0", n)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = a.Close() })
			groupAddrs[g.Spec.ID] = append(groupAddrs[g.Spec.ID], a.Addr())
			agents = append(agents, a)
		}
	}
	// The last agent's monitoring path goes through a seeded 20%-drop
	// proxy; enforcement and training use the direct addresses.
	sched, err := faultnet.NewSchedule(23, faultnet.Rates{Drop: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := faultnet.New(agents[3].Addr(), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lossy.Close() })
	monitorAddrs := []string{agents[0].Addr(), agents[1].Addr(), agents[2].Addr(), lossy.Addr()}

	bank, err := battery.New(battery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(core.Config{
		Rack:        rack,
		DB:          profiledb.New(),
		Policy:      policy.Solver{Adaptive: true},
		Battery:     bank,
		GridBudgetW: 400,
		Epoch:       15 * time.Minute,
		Prober:      &Prober{GroupAddrs: groupAddrs, Timeout: 2 * time.Second, Retry: fastRetry(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	collector, err := telemetry.NewCollector(monitorAddrs,
		telemetry.WithRetry(fastRetry(1)), // no retries: every drop must surface as stale
		telemetry.WithTimeout(150*time.Millisecond),
		telemetry.WithBreaker(telemetry.BreakerConfig{FailureThreshold: 10}))
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()

	ctx := context.Background()
	demand := 0.0
	for _, g := range rack.Groups() {
		demand += float64(g.Count) * workload.PeakEffW(g.Spec, w)
	}
	staleTotal := 0
	for epoch := 0; epoch < 8; epoch++ {
		dec, err := ctrl.Step(300, demand, w)
		if err != nil {
			t.Fatalf("epoch %d: controller: %v", epoch, err)
		}
		targets := make([]InstructionTarget, 0, len(dec.Instructions))
		for _, ins := range dec.Instructions {
			targets = append(targets, InstructionTarget{ServerID: ins.ServerID, TargetW: ins.TargetW})
		}
		if err := Enforce(ctx, groupAddrs, targets, 2*time.Second); err != nil {
			t.Fatalf("epoch %d: enforce: %v", epoch, err)
		}
		results, err := collector.Collect(ctx)
		if err != nil {
			t.Fatalf("epoch %d: collect failed (minority loss must degrade, not fail): %v", epoch, err)
		}
		for _, r := range results {
			if r.Stale {
				staleTotal++
			}
		}
	}
	if lossy.Count(faultnet.Drop) == 0 {
		t.Error("proxy injected no drops over 8 epochs")
	}
	if staleTotal == 0 {
		t.Error("drops occurred but no reading was served stale")
	}

	// Majority failure is still an error: kill three of four agents.
	for _, a := range agents[:3] {
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := collector.Collect(ctx); !errors.Is(err, telemetry.ErrMajorityFailed) {
		t.Errorf("majority-dead collect err = %v, want ErrMajorityFailed", err)
	}
}
