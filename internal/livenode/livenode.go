// Package livenode runs the GreenHetero control loop over the network
// instead of in-process: each server is a telemetry agent that accepts
// SPC power targets ("set") and reports meter readings ("sample"), and a
// Prober drives training runs through the same wire protocol the Monitor
// uses. Combined with core.Controller this is the paper's deployment
// shape (Fig. 4) end to end — the only simulated part is the node's
// response surface, which on real hardware is the machine itself.
package livenode

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"greenhetero/internal/core"
	"greenhetero/internal/fit"
	"greenhetero/internal/server"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/workload"
)

// Node simulates one server's node-local control: it holds the current
// SPC power target, maps it through the spec's DVFS ladder, and reports
// noisy meter readings of the resulting operating point. Safe for
// concurrent use (the agent serves connections concurrently).
type Node struct {
	id   string
	spec server.Spec
	w    workload.Workload

	mu        sync.Mutex
	targetW   float64
	intensity float64
	rng       *rand.Rand
}

// NewNode builds a node running workload w at full intensity with no
// power cap (ondemand behaviour until the first SPC target arrives).
func NewNode(id string, spec server.Spec, w workload.Workload, seed int64) (*Node, error) {
	if id == "" {
		return nil, errors.New("livenode: empty id")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("livenode: %w", err)
	}
	if w.ID == "" {
		return nil, errors.New("livenode: empty workload")
	}
	return &Node{
		id:        id,
		spec:      spec,
		w:         w,
		targetW:   spec.PeakW, // uncapped
		intensity: 1,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

var (
	_ telemetry.Sampler = (*Node)(nil)
	_ telemetry.Setter  = (*Node)(nil)
)

// SetTarget implements telemetry.Setter: the SPC's power budget.
func (n *Node) SetTarget(powerW float64) error {
	if powerW < 0 {
		return fmt.Errorf("livenode %s: negative target %v", n.id, powerW)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.targetW = powerW
	return nil
}

// SetIntensity adjusts the node's load level (the sim's diurnal knob).
func (n *Node) SetIntensity(i float64) error {
	if !workload.ValidIntensity(i) {
		return fmt.Errorf("livenode %s: intensity %v", n.id, i)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.intensity = i
	return nil
}

// Sample implements telemetry.Sampler: one noisy meter reading at the
// node's current operating point (actual draw, not the budget).
func (n *Node) Sample() (telemetry.Reading, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	used := workload.UsedPowerWAt(n.spec, n.w, n.targetW, n.intensity)
	perf := workload.PerfAt(n.spec, n.w, n.targetW, n.intensity)
	noise := n.w.Noise()
	powerNoisy := used * (1 + 0.01*n.rng.NormFloat64())
	perfNoisy := perf * (1 + noise*n.rng.NormFloat64())
	if powerNoisy < 0 {
		powerNoisy = 0
	}
	if perfNoisy < 0 {
		perfNoisy = 0
	}
	return telemetry.Reading{
		NodeID:     n.id,
		PowerW:     powerNoisy,
		Perf:       perfNoisy,
		UnixMillis: time.Now().UnixMilli(),
	}, nil
}

// Prober implements core.Prober over live agents: training runs sweep one
// node of the target group through its power band via "set", reading the
// meter after each step — Fig. 7's training run, over TCP.
type Prober struct {
	// GroupAddrs maps a server configuration id to the agent addresses
	// of that group's nodes; training uses the first node.
	GroupAddrs map[string][]string
	// Samples per training run (paper: 5). Zero means 5.
	Samples int
	// Timeout per wire operation. Zero means 2 s.
	Timeout time.Duration
}

var _ core.Prober = (*Prober)(nil)

// TrainingRun implements core.Prober.
func (p *Prober) TrainingRun(spec server.Spec, w workload.Workload) (core.TrainingResult, error) {
	addrs := p.GroupAddrs[spec.ID]
	if len(addrs) == 0 {
		return core.TrainingResult{}, fmt.Errorf("livenode: no agents for %s", spec.ID)
	}
	samples := p.Samples
	if samples == 0 {
		samples = 5
	}
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	addr := addrs[0]
	ctx := context.Background()

	res := core.TrainingResult{Samples: make([]fit.Sample, 0, samples)}
	for i := 0; i < samples; i++ {
		frac := float64(i) / float64(samples-1)
		target := spec.IdleW + 1 + frac*(spec.PeakW-spec.IdleW-1)
		if err := telemetry.SetTarget(ctx, addr, target, timeout); err != nil {
			return core.TrainingResult{}, fmt.Errorf("livenode: training set: %w", err)
		}
		reading, err := sampleOnce(ctx, addr, timeout)
		if err != nil {
			return core.TrainingResult{}, fmt.Errorf("livenode: training sample: %w", err)
		}
		res.Samples = append(res.Samples, fit.Sample{X: reading.PowerW, Y: reading.Perf})
		if reading.PowerW > res.PeakEffW {
			res.PeakEffW = reading.PowerW
		}
	}
	// Restore the node to uncapped operation after profiling.
	if err := telemetry.SetTarget(ctx, addr, spec.PeakW, timeout); err != nil {
		return core.TrainingResult{}, fmt.Errorf("livenode: training restore: %w", err)
	}
	return res, nil
}

// sampleOnce reads one agent through a throwaway single-agent collector.
func sampleOnce(ctx context.Context, addr string, timeout time.Duration) (telemetry.Reading, error) {
	c, err := telemetry.NewCollector([]string{addr}, telemetry.WithTimeout(timeout))
	if err != nil {
		return telemetry.Reading{}, err
	}
	results, err := c.Collect(ctx)
	if err != nil {
		return telemetry.Reading{}, err
	}
	if results[0].Err != nil {
		return telemetry.Reading{}, results[0].Err
	}
	return results[0].Reading, nil
}

// Enforce pushes SPC instructions to every node of each group: the
// decision's per-server budget fans out over the wire.
func Enforce(ctx context.Context, groupAddrs map[string][]string, instructions []InstructionTarget, timeout time.Duration) error {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	var firstErr error
	for _, ins := range instructions {
		for _, addr := range groupAddrs[ins.ServerID] {
			if err := telemetry.SetTarget(ctx, addr, ins.TargetW, timeout); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("livenode: enforce %s: %w", addr, err)
			}
		}
	}
	return firstErr
}

// InstructionTarget is the wire-relevant slice of an SPC instruction.
type InstructionTarget struct {
	// ServerID selects the group.
	ServerID string
	// TargetW is the per-server budget.
	TargetW float64
}
