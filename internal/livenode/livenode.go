// Package livenode runs the GreenHetero control loop over the network
// instead of in-process: each server is a telemetry agent that accepts
// SPC power targets ("set") and reports meter readings ("sample"), and a
// Prober drives training runs through the same wire protocol the Monitor
// uses. Combined with core.Controller this is the paper's deployment
// shape (Fig. 4) end to end — the only simulated part is the node's
// response surface, which on real hardware is the machine itself.
package livenode

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"greenhetero/internal/core"
	"greenhetero/internal/fit"
	"greenhetero/internal/server"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/workload"
)

// Node simulates one server's node-local control: it holds the current
// SPC power target, maps it through the spec's DVFS ladder, and reports
// noisy meter readings of the resulting operating point. Safe for
// concurrent use (the agent serves connections concurrently).
type Node struct {
	id   string
	spec server.Spec
	w    workload.Workload

	mu sync.Mutex
	// ghlint:guardedby mu
	targetW float64
	// ghlint:guardedby mu
	intensity float64
	// ghlint:guardedby mu
	rng *rand.Rand
}

// NewNode builds a node running workload w at full intensity with no
// power cap (ondemand behaviour until the first SPC target arrives).
func NewNode(id string, spec server.Spec, w workload.Workload, seed int64) (*Node, error) {
	if id == "" {
		return nil, errors.New("livenode: empty id")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("livenode: %w", err)
	}
	if w.ID == "" {
		return nil, errors.New("livenode: empty workload")
	}
	return &Node{
		id:        id,
		spec:      spec,
		w:         w,
		targetW:   spec.PeakW, // uncapped
		intensity: 1,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

var (
	_ telemetry.Sampler = (*Node)(nil)
	_ telemetry.Setter  = (*Node)(nil)
)

// SetTarget implements telemetry.Setter: the SPC's power budget.
func (n *Node) SetTarget(powerW float64) error {
	// NaN slips through a plain `< 0` check (every comparison with NaN
	// is false) and would poison the node's operating point.
	if math.IsNaN(powerW) || math.IsInf(powerW, 0) {
		return fmt.Errorf("livenode %s: non-finite target %v", n.id, powerW)
	}
	if powerW < 0 {
		return fmt.Errorf("livenode %s: negative target %v", n.id, powerW)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.targetW = powerW
	return nil
}

// SetIntensity adjusts the node's load level (the sim's diurnal knob).
func (n *Node) SetIntensity(i float64) error {
	if !workload.ValidIntensity(i) {
		return fmt.Errorf("livenode %s: intensity %v", n.id, i)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.intensity = i
	return nil
}

// Sample implements telemetry.Sampler: one noisy meter reading at the
// node's current operating point (actual draw, not the budget).
func (n *Node) Sample() (telemetry.Reading, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	used := workload.UsedPowerWAt(n.spec, n.w, n.targetW, n.intensity)
	perf := workload.PerfAt(n.spec, n.w, n.targetW, n.intensity)
	noise := n.w.Noise()
	powerNoisy := used * (1 + 0.01*n.rng.NormFloat64())
	perfNoisy := perf * (1 + noise*n.rng.NormFloat64())
	if powerNoisy < 0 {
		powerNoisy = 0
	}
	if perfNoisy < 0 {
		perfNoisy = 0
	}
	return telemetry.Reading{
		NodeID:     n.id,
		PowerW:     powerNoisy,
		Perf:       perfNoisy,
		UnixMillis: time.Now().UnixMilli(),
	}, nil
}

// Prober implements core.Prober over live agents: training runs sweep one
// node of the target group through its power band via "set", reading the
// meter after each step — Fig. 7's training run, over TCP.
type Prober struct {
	// GroupAddrs maps a server configuration id to the agent addresses
	// of that group's nodes; training uses the first node.
	GroupAddrs map[string][]string
	// Samples per training run (paper: 5). Zero means 5.
	Samples int
	// Timeout per wire operation. Zero means 2 s.
	Timeout time.Duration
	// Retry bounds per-operation retries during the run (zero fields
	// take the telemetry defaults), so a transient wire fault does not
	// abort a whole training sweep.
	Retry telemetry.RetryPolicy
}

var _ core.Prober = (*Prober)(nil)

// TrainingRun implements core.Prober. The whole sweep rides one
// persistent connection with the prober's retry policy.
func (p *Prober) TrainingRun(spec server.Spec, w workload.Workload) (core.TrainingResult, error) {
	addrs := p.GroupAddrs[spec.ID]
	if len(addrs) == 0 {
		return core.TrainingResult{}, fmt.Errorf("livenode: no agents for %s", spec.ID)
	}
	samples := p.Samples
	if samples == 0 {
		samples = 5
	}
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	addr := addrs[0]
	ctx := context.Background()
	c, err := telemetry.NewCollector([]string{addr},
		telemetry.WithTimeout(timeout), telemetry.WithRetry(p.Retry))
	if err != nil {
		return core.TrainingResult{}, fmt.Errorf("livenode: training collector: %w", err)
	}
	defer c.Close()

	// A single-sample sweep has one step, not zero: divide by
	// max(samples-1, 1) so frac is 0, never the NaN of 0/0.
	steps := samples - 1
	if steps < 1 {
		steps = 1
	}
	res := core.TrainingResult{Samples: make([]fit.Sample, 0, samples)}
	for i := 0; i < samples; i++ {
		frac := float64(i) / float64(steps)
		target := spec.IdleW + 1 + frac*(spec.PeakW-spec.IdleW-1)
		if err := c.SetTarget(ctx, addr, target); err != nil {
			return core.TrainingResult{}, fmt.Errorf("livenode: training set: %w", err)
		}
		reading, err := sampleFresh(ctx, c)
		if err != nil {
			return core.TrainingResult{}, fmt.Errorf("livenode: training sample: %w", err)
		}
		res.Samples = append(res.Samples, fit.Sample{X: reading.PowerW, Y: reading.Perf})
		if reading.PowerW > res.PeakEffW {
			res.PeakEffW = reading.PowerW
		}
	}
	// Restore the node to uncapped operation after profiling.
	if err := c.SetTarget(ctx, addr, spec.PeakW); err != nil {
		return core.TrainingResult{}, fmt.Errorf("livenode: training restore: %w", err)
	}
	return res, nil
}

// sampleFresh reads one fresh reading through the prober's collector. A
// stale (last-known-good) reading is useless for profiling: the sample
// must reflect the target just set.
func sampleFresh(ctx context.Context, c *telemetry.Collector) (telemetry.Reading, error) {
	results, err := c.Collect(ctx)
	if err != nil {
		return telemetry.Reading{}, err
	}
	r := results[0]
	if r.Err != nil {
		return telemetry.Reading{}, r.Err
	}
	if r.Stale {
		return telemetry.Reading{}, errors.New("stale reading during training run")
	}
	return r.Reading, nil
}

// Enforce pushes SPC instructions to every node of each group: the
// decision's per-server budget fans out over the wire.
func Enforce(ctx context.Context, groupAddrs map[string][]string, instructions []InstructionTarget, timeout time.Duration) error {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	var firstErr error
	for _, ins := range instructions {
		for _, addr := range groupAddrs[ins.ServerID] {
			if err := telemetry.SetTarget(ctx, addr, ins.TargetW, timeout); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("livenode: enforce %s: %w", addr, err)
			}
		}
	}
	return firstErr
}

// InstructionTarget is the wire-relevant slice of an SPC instruction.
type InstructionTarget struct {
	// ServerID selects the group.
	ServerID string
	// TargetW is the per-server budget.
	TargetW float64
}
