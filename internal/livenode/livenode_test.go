package livenode

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/core"
	"greenhetero/internal/policy"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/server"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/workload"
)

func mustSpec(t *testing.T, id string) server.Spec {
	t.Helper()
	s, err := server.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustWorkload(t *testing.T, id string) workload.Workload {
	t.Helper()
	w, err := workload.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewNodeValidation(t *testing.T) {
	spec := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, workload.SPECjbb)
	if _, err := NewNode("", spec, w, 1); err == nil {
		t.Error("empty id should error")
	}
	if _, err := NewNode("n", server.Spec{}, w, 1); err == nil {
		t.Error("bad spec should error")
	}
	if _, err := NewNode("n", spec, workload.Workload{}, 1); err == nil {
		t.Error("empty workload should error")
	}
}

func TestNodeSetAndSample(t *testing.T) {
	spec := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, workload.SPECjbb)
	n, err := NewNode("n0", spec, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Uncapped: the node draws its effective peak.
	r, err := n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	peakEff := workload.PeakEffW(spec, w)
	if math.Abs(r.PowerW-peakEff) > peakEff*0.05 {
		t.Errorf("uncapped draw = %v, want ≈ %v", r.PowerW, peakEff)
	}
	// Capped below idle: the node cannot run.
	if err := n.SetTarget(20); err != nil {
		t.Fatal(err)
	}
	r, err = n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if r.PowerW != 0 || r.Perf != 0 {
		t.Errorf("below-idle reading = %+v, want zeros", r)
	}
	if err := n.SetTarget(-1); err == nil {
		t.Error("negative target should error")
	}
	if err := n.SetIntensity(0); err == nil {
		t.Error("bad intensity should error")
	}
	if err := n.SetIntensity(0.5); err != nil {
		t.Fatal(err)
	}
}

// liveRack spins up agents for a 2-group rack and returns the rack, the
// address map, and a cleanup-registered agent list.
func liveRack(t *testing.T) (*server.Rack, map[string][]string, []*Node) {
	t.Helper()
	specA := mustSpec(t, server.XeonE52620)
	specB := mustSpec(t, server.CoreI54460)
	w := mustWorkload(t, workload.SPECjbb)
	rack, err := server.NewRack("live",
		server.Group{Spec: specA, Count: 2},
		server.Group{Spec: specB, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[string][]string)
	var nodes []*Node
	for gi, g := range rack.Groups() {
		for i := 0; i < g.Count; i++ {
			n, err := NewNode(fmt.Sprintf("g%d/n%d", gi, i), g.Spec, w, int64(gi*10+i))
			if err != nil {
				t.Fatal(err)
			}
			a, err := telemetry.NewAgent("127.0.0.1:0", n)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				if err := a.Close(); err != nil {
					t.Errorf("close agent: %v", err)
				}
			})
			addrs[g.Spec.ID] = append(addrs[g.Spec.ID], a.Addr())
			nodes = append(nodes, n)
		}
	}
	return rack, addrs, nodes
}

func TestProberTrainingRunOverTCP(t *testing.T) {
	_, addrs, _ := liveRack(t)
	spec := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, workload.SPECjbb)
	p := &Prober{GroupAddrs: addrs, Samples: 5, Timeout: 2 * time.Second}
	res, err := p.TrainingRun(spec, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 5 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// The highest observed draw approximates the workload's effective
	// peak (the meter reads actual draw, capped by demand).
	peakEff := workload.PeakEffW(spec, w)
	if math.Abs(res.PeakEffW-peakEff) > peakEff*0.06 {
		t.Errorf("observed peak %v, want ≈ %v", res.PeakEffW, peakEff)
	}
	if _, err := p.TrainingRun(mustSpec(t, server.TitanXp), w); err == nil {
		t.Error("unknown group should error")
	}
}

// TestClosedLoopOverTCP drives the full controller loop against live
// agents: training over the wire, policy allocation, SPC enforcement via
// "set", and Monitor feedback via "sample".
func TestClosedLoopOverTCP(t *testing.T) {
	rack, addrs, _ := liveRack(t)
	w := mustWorkload(t, workload.SPECjbb)
	bank, err := battery.New(battery.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := profiledb.New()
	ctrl, err := core.New(core.Config{
		Rack:        rack,
		DB:          db,
		Policy:      policy.Solver{Adaptive: true},
		Battery:     bank,
		GridBudgetW: 400,
		Epoch:       15 * time.Minute,
		Prober:      &Prober{GroupAddrs: addrs, Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	demand := 0.0
	for _, g := range rack.Groups() {
		demand += float64(g.Count) * workload.PeakEffW(g.Spec, w)
	}
	// Scarce renewable: the controller must cap the nodes.
	var lastPerf float64
	for epoch := 0; epoch < 4; epoch++ {
		dec, err := ctrl.Step(300, demand, w)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if epoch == 0 && !dec.TrainingRun {
			t.Error("first epoch should train over TCP")
		}
		// Enforce the SPC decision on every node.
		targets := make([]InstructionTarget, 0, len(dec.Instructions))
		for _, ins := range dec.Instructions {
			targets = append(targets, InstructionTarget{ServerID: ins.ServerID, TargetW: ins.TargetW})
		}
		if err := Enforce(ctx, addrs, targets, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		// Monitor: collect readings from every node, feed back.
		var all []string
		for _, as := range addrs {
			all = append(all, as...)
		}
		collector, err := telemetry.NewCollector(all)
		if err != nil {
			t.Fatal(err)
		}
		results, err := collector.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		lastPerf = 0
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("sensor %s: %v", r.Addr, r.Err)
			}
			lastPerf += r.Reading.Perf
		}
	}
	if db.Len() != 2 {
		t.Errorf("db entries = %d, want 2", db.Len())
	}
	if lastPerf <= 0 {
		t.Errorf("rack throughput = %v after enforcement", lastPerf)
	}
}

func TestEnforcePartialFailure(t *testing.T) {
	_, addrs, _ := liveRack(t)
	targets := []InstructionTarget{
		{ServerID: server.XeonE52620, TargetW: 100},
		{ServerID: "ghost", TargetW: 50}, // no agents: silently skipped
	}
	if err := Enforce(context.Background(), addrs, targets, time.Second); err != nil {
		t.Fatal(err)
	}
	// A dead address inside a known group surfaces an error.
	broken := map[string][]string{server.XeonE52620: {"127.0.0.1:1"}}
	if err := Enforce(context.Background(), broken, targets[:1], 200*time.Millisecond); err == nil {
		t.Error("dead node should surface an enforcement error")
	}
}
