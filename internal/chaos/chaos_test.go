package chaos

import (
	"testing"

	"greenhetero/internal/cluster"
)

func disturbAt(t *testing.T, eng *Engine, n, epoch int) *cluster.Disturbance {
	t.Helper()
	d := cluster.NewDisturbance(n)
	eng.Disturb(epoch, d)
	return d
}

func TestJoinEpochs(t *testing.T) {
	instant, err := JoinEpochs(8, StartupInstant, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range instant {
		if j != 0 {
			t.Errorf("instant rack %d joins at %d", i, j)
		}
	}

	linear, err := JoinEpochs(8, StartupLinear, 4, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if linear[0] != 0 {
		t.Errorf("linear first join %d", linear[0])
	}
	for i := 1; i < len(linear); i++ {
		if linear[i] < linear[i-1] || linear[i] > 4 {
			t.Errorf("linear joins not a ramp: %v", linear)
			break
		}
	}

	wave, err := JoinEpochs(8, StartupWave, 4, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, j := range wave {
		distinct[j] = true
	}
	if len(distinct) != 2 {
		t.Errorf("wave with 2 waves produced %d cohorts: %v", len(distinct), wave)
	}

	exp, err := JoinEpochs(16, StartupExponential, 8, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exp[0] != 0 || exp[15] != 8 {
		t.Errorf("exponential endpoints: %v", exp)
	}

	// Jitter is seeded: same seed same joins, all non-negative.
	j1, err := JoinEpochs(32, StartupLinear, 8, 0, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := JoinEpochs(32, StartupLinear, 8, 0, 0.5, 42)
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatal("jittered joins differ across same-seed calls")
		}
		if j1[i] < 0 {
			t.Errorf("rack %d joins at %d", i, j1[i])
		}
	}

	for _, bad := range []struct {
		name string
		fn   func() ([]int, error)
	}{
		{"no racks", func() ([]int, error) { return JoinEpochs(0, StartupInstant, 0, 0, 0, 1) }},
		{"unknown pattern", func() ([]int, error) { return JoinEpochs(4, "warp", 2, 0, 0, 1) }},
		{"bad jitter", func() ([]int, error) { return JoinEpochs(4, StartupLinear, 2, 0, 1.0, 1) }},
		{"wave without waves", func() ([]int, error) { return JoinEpochs(4, StartupWave, 2, 0, 0, 1) }},
		{"negative ramp", func() ([]int, error) { return JoinEpochs(4, StartupLinear, -1, 0, 0, 1) }},
	} {
		if _, err := bad.fn(); err == nil {
			t.Errorf("%s accepted", bad.name)
		}
	}
}

func TestEngineZoneOutage(t *testing.T) {
	eng, err := NewEngine(Config{
		Racks: 8, Zones: 4, Epochs: 10, Seed: 1, WALRack: -1,
		Events: []Event{{Kind: KindZoneOutage, At: 2, Duration: 2, Zone: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := disturbAt(t, eng, 8, 2)
	for i := 0; i < 8; i++ {
		want := i%4 == 1
		if d.Down[i] != want {
			t.Errorf("epoch 2 rack %d down=%v, want %v", i, d.Down[i], want)
		}
	}
	if d := disturbAt(t, eng, 8, 4); d.Down[1] || d.Down[5] {
		t.Error("outage leaked past its window")
	}
}

func TestEngineWeatherFront(t *testing.T) {
	const racks, width = 10, 4
	eng, err := NewEngine(Config{
		Racks: racks, Epochs: 12, Seed: 1, WALRack: -1,
		Events: []Event{{Kind: KindWeatherFront, At: 0, Duration: 6, WidthRacks: width, DepthFrac: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{}
	for e := 0; e < 6; e++ {
		d := disturbAt(t, eng, racks, e)
		band := 0
		for i, f := range d.PVScaleFrac {
			switch f {
			case 1:
			case 0.5:
				covered[i] = true
				band++
			default:
				t.Fatalf("epoch %d rack %d PV scale %v", e, i, f)
			}
		}
		if band > width+1 {
			t.Errorf("epoch %d band %d racks, width %d", e, band, width)
		}
	}
	if len(covered) != racks {
		t.Errorf("sweep covered %d of %d racks", len(covered), racks)
	}
	if d := disturbAt(t, eng, racks, 6); d.PVScaleFrac[0] != 1 {
		t.Error("front leaked past its window")
	}
}

func TestEnginePriceSpikeAndFade(t *testing.T) {
	eng, err := NewEngine(Config{
		Racks: 4, Epochs: 16, Seed: 1, WALRack: -1,
		Events: []Event{
			{Kind: KindPriceSpike, At: 2, Duration: 4, PriceScale: 3, GridBudgetScale: 0.5},
			{Kind: KindBatteryFade, At: 5, FadeFrac: 0.2},
			{Kind: KindBatteryFade, At: 8, FadeFrac: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.PriceScale(1); got != 1 {
		t.Errorf("price scale before spike = %v", got)
	}
	if got := eng.PriceScale(3); got != 3 {
		t.Errorf("price scale in spike = %v", got)
	}
	if d := disturbAt(t, eng, 4, 3); d.GridBudgetScaleFrac != 0.5 {
		t.Errorf("grid budget scale in spike = %v", d.GridBudgetScaleFrac)
	}
	if d := disturbAt(t, eng, 4, 6); d.GridBudgetScaleFrac != 1 {
		t.Errorf("grid budget scale after spike = %v", d.GridBudgetScaleFrac)
	}
	// Fades are permanent and compound.
	if d := disturbAt(t, eng, 4, 4); d.BatteryCapacityFrac != 1 {
		t.Errorf("capacity before fade = %v", d.BatteryCapacityFrac)
	}
	if d := disturbAt(t, eng, 4, 6); d.BatteryCapacityFrac != 0.8 {
		t.Errorf("capacity after first fade = %v", d.BatteryCapacityFrac)
	}
	if d := disturbAt(t, eng, 4, 10); d.BatteryCapacityFrac != 0.8*0.5 {
		t.Errorf("capacity after both fades = %v", d.BatteryCapacityFrac)
	}
}

func TestEngineSurgeAndPartition(t *testing.T) {
	eng, err := NewEngine(Config{
		Racks: 4, Epochs: 10, Seed: 1, WALRack: -1,
		Events: []Event{
			{Kind: KindWorkloadSurge, At: 1, Duration: 2, IntensityScale: 1.5},
			{Kind: KindAgentPartition, At: 4, Duration: 2, Racks: []int{1, 2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := disturbAt(t, eng, 4, 1)
	for i, s := range d.IntensityScale {
		if s != 1.5 {
			t.Errorf("surge epoch rack %d intensity %v", i, s)
		}
	}
	parts := eng.Partitions()
	if len(parts) != 1 {
		t.Fatalf("partitions = %d", len(parts))
	}
	d = disturbAt(t, eng, 4, 4)
	if !d.Partitioned[1] || !d.Partitioned[2] || d.Partitioned[0] || d.Partitioned[3] {
		t.Errorf("partitioned = %v", d.Partitioned)
	}
	if !parts[0].Active() {
		t.Error("faultnet partition not activated inside its window")
	}
	d = disturbAt(t, eng, 4, 6)
	if d.Partitioned[1] || parts[0].Active() {
		t.Error("partition did not heal after its window")
	}
}

func TestEngineCascadeDeterministic(t *testing.T) {
	cfg := Config{
		Racks: 32, Epochs: 20, Seed: 99, WALRack: -1,
		Events: []Event{{
			Kind: KindRackCrash, At: 2, Racks: []int{5},
			Fanout: 2, Depth: 3, RecoveryEpochs: 4, JitterFrac: 0.3,
		}},
	}
	a, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxDown := 0
	for e := 0; e < 20; e++ {
		da := disturbAt(t, a, 32, e)
		db := disturbAt(t, b, 32, e)
		down := 0
		for i := range da.Down {
			if da.Down[i] != db.Down[i] {
				t.Fatalf("epoch %d rack %d differs across same-seed engines", e, i)
			}
			if da.Down[i] {
				down++
			}
		}
		if down > maxDown {
			maxDown = down
		}
	}
	if maxDown < 2 {
		t.Errorf("cascade with fanout 2 depth 3 peaked at %d racks down", maxDown)
	}
	if d := disturbAt(t, a, 32, 2); !d.Down[5] {
		t.Error("seed rack not down at the crash epoch")
	}
}

func TestEngineDaemonCrash(t *testing.T) {
	cfg := Config{
		Racks: 4, Epochs: 12, Seed: 7, WALRack: 2,
		Events: []Event{{Kind: KindDaemonCrash, At: 5, Duration: 3}},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arm := eng.DaemonArm()
	k, ok := arm[5]
	if !ok || (k != 1 && k != 2) {
		t.Fatalf("daemon arm = %v, want crashpoint 1 or 2 at epoch 5", arm)
	}
	// The crash epoch itself still steps (the commit tears after); the
	// daemon is down for the following Duration epochs.
	if d := disturbAt(t, eng, 4, 5); d.Down[2] {
		t.Error("WAL rack down during the crash epoch itself")
	}
	for e := 6; e < 9; e++ {
		if d := disturbAt(t, eng, 4, e); !d.Down[2] {
			t.Errorf("WAL rack not down at epoch %d", e)
		}
	}
	if d := disturbAt(t, eng, 4, 9); d.Down[2] {
		t.Error("daemon outage leaked past its window")
	}

	cfg.WALRack = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Error("daemon_crash without a WAL rack accepted")
	}
}

func TestEngineJoins(t *testing.T) {
	eng, err := NewEngine(Config{
		Racks: 4, Epochs: 8, Seed: 1, WALRack: -1,
		JoinEpochs: []int{0, 2, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := disturbAt(t, eng, 4, 1)
	if d.Absent[0] || !d.Absent[1] || !d.Absent[3] {
		t.Errorf("epoch 1 absent = %v", d.Absent)
	}
	if d := disturbAt(t, eng, 4, 4); d.Absent[3] {
		t.Error("rack 3 still absent at its join epoch")
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	for _, tt := range []struct {
		name string
		cfg  Config
	}{
		{"no racks", Config{Racks: 0, Epochs: 4, WALRack: -1}},
		{"no epochs", Config{Racks: 2, Epochs: 0, WALRack: -1}},
		{"wal rack out of range", Config{Racks: 2, Epochs: 4, WALRack: 5}},
		{"join epochs mis-sized", Config{Racks: 2, Epochs: 4, WALRack: -1, JoinEpochs: []int{0}}},
		{"event epoch out of range", Config{Racks: 2, Epochs: 4, WALRack: -1,
			Events: []Event{{Kind: KindZoneOutage, At: 9, Duration: 1}}}},
		{"event rack out of range", Config{Racks: 2, Epochs: 4, WALRack: -1,
			Events: []Event{{Kind: KindRackCrash, At: 1, Racks: []int{7}, RecoveryEpochs: 1}}}},
		{"unknown kind", Config{Racks: 2, Epochs: 4, WALRack: -1,
			Events: []Event{{Kind: "meteor", At: 1}}}},
	} {
		if _, err := NewEngine(tt.cfg); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
}
