package chaos

import (
	"strings"
	"testing"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

func testSession(t *testing.T, epochs int) *sim.Session {
	t.Helper()
	spec, err := server.Lookup("e5-2620")
	if err != nil {
		t.Fatal(err)
	}
	rack, err := server.NewRack("wal-rack", server.Group{Spec: spec, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Lookup("specjbb")
	if err != nil {
		t.Fatal(err)
	}
	p, err := policy.ByName("GreenHetero")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := solar.Generate(solar.Config{
		Profile: solar.High, PeakWatts: 2200, Days: 1,
		Step: 15 * time.Minute, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSession(sim.Config{
		Rack: rack, Workload: w, Policy: p, Solar: tr,
		Epochs: epochs, GridBudgetW: 1000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHarnessCrashRecover drives the WAL harness by hand: commits are
// durable, an armed crashpoint tears the commit of its epoch, further
// commits fail until Recover, and Recover restores the last durable
// state and fast-forwards to the fleet clock.
func TestHarnessCrashRecover(t *testing.T) {
	const epochs = 12
	s := testSession(t, epochs)
	h, err := NewHarness(0, 5, 3, map[int]int{4: 1})
	if err != nil {
		t.Fatal(err)
	}

	step := func() {
		t.Helper()
		if _, err := s.StepAllocated(sim.Allocation{RenewableW: 1500, GridBudgetW: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 4; e++ {
		step()
		if err := h.Commit(e, s); err != nil {
			t.Fatalf("commit epoch %d: %v", e, err)
		}
	}

	// Epoch 4's commit hits the armed crashpoint.
	step()
	if err := h.Commit(4, s); err == nil {
		t.Fatal("commit at the armed crashpoint succeeded")
	}
	if h.Crashes() != 1 {
		t.Fatalf("crashes = %d", h.Crashes())
	}
	if err := h.Commit(5, s); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("commit on a crashed daemon: %v", err)
	}

	// Recovery restores the last durable state (epoch 3) and skips the
	// session forward to the fleet clock.
	if err := h.Recover(6, s); err != nil {
		t.Fatal(err)
	}
	if h.Recoveries() != 1 {
		t.Fatalf("recoveries = %d", h.Recoveries())
	}
	if s.Epoch() != 6 {
		t.Fatalf("session at epoch %d after recovery to 6", s.Epoch())
	}
	for e := 6; e < epochs; e++ {
		step()
		if err := h.Commit(e, s); err != nil {
			t.Fatalf("commit epoch %d after recovery: %v", e, err)
		}
	}
}

func TestHarnessRejectsBadCadence(t *testing.T) {
	if _, err := NewHarness(0, 1, 0, nil); err == nil {
		t.Error("snapshot cadence 0 accepted")
	}
}
