package chaos

import (
	"fmt"

	"greenhetero/internal/cluster"
	"greenhetero/internal/runner"
)

// StormConfig wires a chaos schedule onto a fleet run.
type StormConfig struct {
	// Name labels the stress report.
	Name string
	// Fleet is the underlying fleet configuration; Run installs the
	// chaos engine as its Disturber and (with a WAL rack) the harness
	// as its Checkpointer.
	Fleet cluster.Config
	// Chaos is the storm schedule. Racks, Epochs, and Names are filled
	// from Fleet when zero.
	Chaos Config
	// SLOSupplyFrac is the report's SLO floor (default 0.5: an epoch
	// supplied below half its demand violates).
	SLOSupplyFrac float64
	// SnapshotEvery is the WAL harness snapshot cadence in commits
	// (default 8).
	SnapshotEvery int
}

// Run executes the storm: expand the schedule, run the fleet in
// degraded mode under it, and derive the stress report. Deterministic
// end to end — same seed, same report bytes, at any parallelism.
func Run(sc StormConfig) (*cluster.FleetResult, *Report, error) {
	if sc.SLOSupplyFrac == 0 {
		sc.SLOSupplyFrac = 0.5
	}
	if sc.SLOSupplyFrac < 0 || sc.SLOSupplyFrac > 1 {
		return nil, nil, fmt.Errorf("chaos: SLO supply fraction %v", sc.SLOSupplyFrac)
	}
	if sc.SnapshotEvery == 0 {
		sc.SnapshotEvery = 8
	}
	if sc.Chaos.Racks == 0 {
		sc.Chaos.Racks = len(sc.Fleet.Racks)
	}
	if sc.Chaos.Epochs == 0 {
		sc.Chaos.Epochs = sc.Fleet.Epochs
	}
	if sc.Chaos.Names == nil {
		names := make([]string, 0, len(sc.Fleet.Racks))
		for _, rc := range sc.Fleet.Racks {
			names = append(names, rc.Rack.Name())
		}
		sc.Chaos.Names = names
	}
	if sc.Chaos.Racks != len(sc.Fleet.Racks) {
		return nil, nil, fmt.Errorf("chaos: schedule sized for %d racks, fleet has %d", sc.Chaos.Racks, len(sc.Fleet.Racks))
	}
	if sc.Chaos.Epochs != sc.Fleet.Epochs {
		return nil, nil, fmt.Errorf("chaos: schedule sized for %d epochs, fleet runs %d", sc.Chaos.Epochs, sc.Fleet.Epochs)
	}
	eng, err := NewEngine(sc.Chaos)
	if err != nil {
		return nil, nil, err
	}
	cfg := sc.Fleet
	cfg.Disturber = eng
	var h *Harness
	if sc.Chaos.WALRack >= 0 {
		h, err = NewHarness(sc.Chaos.WALRack, runner.DeriveSeed(sc.Chaos.Seed, "chaos/walfs"), sc.SnapshotEvery, eng.DaemonArm())
		if err != nil {
			return nil, nil, err
		}
		cfg.Checkpointer = h
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, buildReport(sc, res, eng, h), nil
}
