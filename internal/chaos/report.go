package chaos

import (
	"encoding/json"

	"greenhetero/internal/cluster"
	"greenhetero/internal/metrics"
)

// EventReport summarizes one scheduled event in the stress report.
type EventReport struct {
	Kind     string `json:"kind"`
	AtEpoch  int    `json:"atEpoch"`
	Duration int    `json:"duration,omitempty"`
}

// QuarantineReport is one breaker episode: when the rack went down,
// when it rejoined (-1 if the run ended first), and the recovery time.
type QuarantineReport struct {
	FromEpoch      int `json:"fromEpoch"`
	RejoinEpoch    int `json:"rejoinEpoch"`
	RecoveryEpochs int `json:"recoveryEpochs"`
}

// RackReport is one rack's line in the stress report.
type RackReport struct {
	Name              string             `json:"name"`
	ServedEpochs      int                `json:"servedEpochs"`
	FailedEpochs      int                `json:"failedEpochs,omitempty"`
	QuarantinedEpochs int                `json:"quarantinedEpochs,omitempty"`
	AbsentEpochs      int                `json:"absentEpochs,omitempty"`
	PartitionedEpochs int                `json:"partitionedEpochs,omitempty"`
	SLOViolations     int                `json:"sloViolations,omitempty"`
	WALRecoveries     int                `json:"walRecoveries,omitempty"`
	MeanEPU           float64            `json:"meanEPU"`
	GridWh            float64            `json:"gridWh"`
	Quarantines       []QuarantineReport `json:"quarantines,omitempty"`
}

// Report is a storm's reproducible stress report. Built entirely from
// the seeded run, it is byte-identical for a fixed seed at any
// parallelism level.
type Report struct {
	Scenario  string `json:"scenario"`
	Seed      int64  `json:"seed"`
	Racks     int    `json:"racks"`
	Epochs    int    `json:"epochs"`
	Allocator string `json:"allocator"`
	// SLOSupplyFrac is the supply/demand floor below which a served
	// epoch violates the SLO; unserved post-startup epochs always do.
	SLOSupplyFrac float64       `json:"sloSupplyFrac"`
	Events        []EventReport `json:"events"`

	MeanEPU         float64 `json:"meanEPU"`
	TotalPerf       float64 `json:"totalPerf"`
	TotalGridWh     float64 `json:"totalGridWh"`
	GridCostUnits   float64 `json:"gridCostUnits"`
	RedistributedWh float64 `json:"redistributedWh"`
	BatteryCycles   int     `json:"batteryCycles"`

	SLOViolations int `json:"sloViolations"`
	FailedEpochs  int `json:"failedEpochs"`
	// DegradedEpochs counts site epochs that ran with at least one rack
	// down or quarantined — degraded, never aborted.
	DegradedEpochs   int `json:"degradedEpochs"`
	Quarantines      int `json:"quarantines"`
	DaemonCrashes    int `json:"daemonCrashes"`
	DaemonRecoveries int `json:"daemonRecoveries"`
	// MeanRecoveryEpochs averages completed quarantines' recovery times
	// (0 when none completed).
	MeanRecoveryEpochs float64 `json:"meanRecoveryEpochs"`

	PerRack []RackReport `json:"perRack"`
}

// JSON renders the report with a stable field order and a trailing
// newline — the byte-compare target for golden tests and CI artifacts.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// buildReport derives the stress report from a finished storm run.
func buildReport(sc StormConfig, res *cluster.FleetResult, eng *Engine, h *Harness) *Report {
	hours := sc.Fleet.Solar.Step.Hours()
	rep := &Report{
		Scenario:      sc.Name,
		Seed:          sc.Chaos.Seed,
		Racks:         len(sc.Fleet.Racks),
		Epochs:        sc.Fleet.Epochs,
		Allocator:     res.Allocator,
		SLOSupplyFrac: sc.SLOSupplyFrac,
		Events:        make([]EventReport, 0, len(sc.Chaos.Events)),
		MeanEPU:       res.MeanEPU(),
		TotalPerf:     res.TotalPerf(),
		TotalGridWh:   res.TotalGridWh(),
		BatteryCycles: res.BatteryCycles,
		PerRack:       make([]RackReport, 0, len(res.Racks)),
	}
	for _, ev := range sc.Chaos.Events {
		dur := ev.Duration
		if ev.Kind == KindRackCrash {
			dur = ev.RecoveryEpochs
		}
		rep.Events = append(rep.Events, EventReport{Kind: ev.Kind, AtEpoch: ev.At, Duration: dur})
	}
	for _, se := range res.Site {
		rep.GridCostUnits += se.GridW * hours * eng.PriceScale(se.Epoch)
		rep.RedistributedWh += se.RedistributedW * hours
		if se.DownRacks > 0 {
			rep.DegradedEpochs++
		}
	}
	completedRecovery := 0
	var recoverySum int
	for i, rr := range res.Racks {
		hlt := res.Health[i]
		r := RackReport{
			Name:              hlt.Name,
			ServedEpochs:      hlt.ServedEpochs,
			FailedEpochs:      hlt.FailedEpochs,
			QuarantinedEpochs: hlt.QuarantinedEpochs,
			AbsentEpochs:      hlt.AbsentEpochs,
			PartitionedEpochs: hlt.PartitionedEpochs,
			WALRecoveries:     hlt.Recoveries,
			MeanEPU:           rr.Result.MeanEPU(),
			GridWh:            rr.Result.GridEnergyWh(),
		}
		for _, er := range rr.Result.Epochs {
			if metrics.SLOViolated(er.SupplyW, er.DemandW, sc.SLOSupplyFrac) {
				r.SLOViolations++
			}
		}
		// Post-startup epochs the rack did not serve are violations too:
		// demand existed and nothing supplied it.
		r.SLOViolations += hlt.FailedEpochs + hlt.QuarantinedEpochs
		for _, q := range hlt.Quarantines {
			r.Quarantines = append(r.Quarantines, QuarantineReport{
				FromEpoch:      q.FromEpoch,
				RejoinEpoch:    q.RejoinEpoch,
				RecoveryEpochs: q.RecoveryEpochs,
			})
			if q.RejoinEpoch >= 0 {
				completedRecovery++
				recoverySum += q.RecoveryEpochs
			}
		}
		rep.Quarantines += len(hlt.Quarantines)
		rep.SLOViolations += r.SLOViolations
		rep.FailedEpochs += hlt.FailedEpochs
		rep.PerRack = append(rep.PerRack, r)
	}
	if completedRecovery > 0 {
		rep.MeanRecoveryEpochs = float64(recoverySum) / float64(completedRecovery)
	}
	if h != nil {
		rep.DaemonCrashes = h.Crashes()
		rep.DaemonRecoveries = h.Recoveries()
	}
	return rep
}
