package chaos

import (
	"encoding/json"
	"fmt"

	"greenhetero/internal/sim"
	"greenhetero/internal/wal"
)

// state records carry the rack's full exported session state; the type
// byte stays below wal.TypeSnapshot.
const recState byte = 1

// Harness implements cluster.Checkpointer over the PR 5 WAL layer on a
// crash-injecting filesystem: after every served epoch the rack's full
// session state is made durable (a snapshot every SnapshotEvery
// commits, a log record otherwise). A daemon_crash event arms a
// CrashFS crashpoint inside a commit; the torn write surfaces as a
// commit error, the fleet's breaker takes the rack down, and Recover
// reopens the salvaged store and restores the last durable state —
// the in-memory session the crash notionally destroyed is rewound to
// what actually survived, then fast-forwarded to the fleet clock.
type Harness struct {
	rack      int
	fs        *wal.CrashFS
	store     *wal.Store
	snapEvery int
	armAt     map[int]int

	commits    int
	crashes    int
	recoveries int
}

// NewHarness opens a WAL on a fresh crash-injecting filesystem for the
// given rack. armAt maps epochs to crashpoint offsets (see
// Engine.DaemonArm); snapEvery is the snapshot cadence in commits.
func NewHarness(rack int, seed int64, snapEvery int, armAt map[int]int) (*Harness, error) {
	if snapEvery < 1 {
		return nil, fmt.Errorf("chaos: snapshot cadence %d", snapEvery)
	}
	fs := wal.NewCrashFS(seed)
	store, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: open wal: %w", err)
	}
	return &Harness{rack: rack, fs: fs, store: store, snapEvery: snapEvery, armAt: armAt}, nil
}

// Rack implements cluster.Checkpointer.
func (h *Harness) Rack() int { return h.rack }

// Crashes and Recoveries report the daemon's crash/recovery counts for
// the stress report.
func (h *Harness) Crashes() int    { return h.crashes }
func (h *Harness) Recoveries() int { return h.recoveries }

// Commit implements cluster.Checkpointer: make epoch's state durable.
// If a daemon_crash event is scheduled for this epoch, the crashpoint
// is armed first, so the commit itself tears.
func (h *Harness) Commit(epoch int, s *sim.Session) error {
	if h.store == nil {
		return fmt.Errorf("chaos: rack %d wal is down (unrecovered crash)", h.rack)
	}
	if k, ok := h.armAt[epoch]; ok {
		h.fs.SetCrashAt(h.fs.Ops() + k)
	}
	st, err := s.ExportState()
	if err != nil {
		return fmt.Errorf("chaos: export rack %d: %w", h.rack, err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("chaos: encode rack %d: %w", h.rack, err)
	}
	h.commits++
	if (h.commits-1)%h.snapEvery == 0 {
		err = h.store.SaveSnapshot(epoch, data)
	} else {
		err = h.store.Append(recState, data)
	}
	if err != nil {
		// The daemon is gone; the store handle with it. Recover reopens.
		h.crashes++
		h.store = nil
		return fmt.Errorf("chaos: commit rack %d epoch %d: %w", h.rack, epoch, err)
	}
	return nil
}

// Recover implements cluster.Checkpointer: restart the daemon, salvage
// the WAL, restore the newest durable state, and fast-forward the
// session to the fleet clock. Epochs that were stepped but never
// durable are rewound — they were already charged to the rack's
// breaker as failures.
func (h *Harness) Recover(epoch int, s *sim.Session) error {
	h.fs.Recover()
	store, rec, err := wal.Open(h.fs, wal.Options{})
	if err != nil {
		return fmt.Errorf("chaos: reopen rack %d wal: %w", h.rack, err)
	}
	h.store = store
	data := rec.Snapshot
	for _, r := range rec.Records {
		if r.Type == recState {
			data = r.Data
		}
	}
	if data != nil {
		var st sim.State
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("chaos: decode rack %d state: %w", h.rack, err)
		}
		if err := s.RestoreState(&st); err != nil {
			return fmt.Errorf("chaos: restore rack %d: %w", h.rack, err)
		}
	}
	for s.Epoch() < epoch {
		s.SkipEpoch()
	}
	h.recoveries++
	return nil
}
