package chaos_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"greenhetero/internal/chaos"
	"greenhetero/internal/scenario"
)

var updateStormGolden = flag.Bool("update-storm-golden", false, "rewrite the storm64 stress report golden file")

func loadStorm(t *testing.T, path string) chaos.StormConfig {
	t.Helper()
	sc, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	storm, err := sc.BuildStorm()
	if err != nil {
		t.Fatal(err)
	}
	return storm
}

func runStormReport(t *testing.T, storm chaos.StormConfig, parallelism int) []byte {
	t.Helper()
	storm.Fleet.Parallelism = parallelism
	_, rep, err := chaos.Run(storm)
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStormGoldenReport pins the storm64 stress report byte for byte:
// the same seed must reproduce it exactly at parallelism 1, 4, and
// per-CPU. Regenerate with -update-storm-golden after an intentional
// engine or report change.
func TestStormGoldenReport(t *testing.T) {
	storm := loadStorm(t, filepath.Join("testdata", "storm64.json"))
	got := runStormReport(t, storm, 1)

	golden := filepath.Join("testdata", "storm64_report.json")
	if *updateStormGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stress report drifted from golden file %s (run with -update-storm-golden if intentional)", golden)
	}
	for _, par := range []int{4, 0} {
		if b := runStormReport(t, storm, par); !bytes.Equal(b, want) {
			t.Errorf("parallelism %d report differs from golden", par)
		}
	}
}

// TestCommittedStormScenarios runs the repo's committed storm scenarios
// end to end — the 1000-rack acceptance storm and the CI smoke storm.
// The fleet must never abort an epoch, quarantined racks' shares must
// be redistributed, and the report must be byte-identical across runs
// and parallelism levels.
func TestCommittedStormScenarios(t *testing.T) {
	for _, tt := range []struct {
		path  string
		racks int
	}{
		{filepath.Join("..", "..", "scenarios", "storm-1000.json"), 1000},
		{filepath.Join("..", "..", "scenarios", "storm-256.json"), 256},
	} {
		t.Run(filepath.Base(tt.path), func(t *testing.T) {
			storm := loadStorm(t, tt.path)
			if len(storm.Fleet.Racks) != tt.racks {
				t.Fatalf("racks = %d, want %d", len(storm.Fleet.Racks), tt.racks)
			}
			storm.Fleet.Parallelism = 1
			res, rep, err := chaos.Run(storm)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Site) != storm.Fleet.Epochs {
				t.Fatalf("site epochs = %d of %d: the fleet aborted an epoch", len(res.Site), storm.Fleet.Epochs)
			}
			if rep.RedistributedWh <= 0 {
				t.Error("no allocation redistributed despite quarantines")
			}
			if rep.Quarantines == 0 || rep.DegradedEpochs == 0 {
				t.Errorf("storm left no marks: quarantines=%d degraded=%d", rep.Quarantines, rep.DegradedEpochs)
			}
			if rep.DaemonCrashes != 1 || rep.DaemonRecoveries != 1 {
				t.Errorf("daemon crashes=%d recoveries=%d, want 1/1", rep.DaemonCrashes, rep.DaemonRecoveries)
			}
			for _, r := range rep.PerRack {
				total := r.ServedEpochs + r.FailedEpochs + r.QuarantinedEpochs + r.AbsentEpochs
				if total != storm.Fleet.Epochs {
					t.Fatalf("rack %s accounts for %d of %d epochs", r.Name, total, storm.Fleet.Epochs)
				}
			}
			want := runStormReport(t, storm, 1)
			for _, par := range []int{4, 0} {
				if b := runStormReport(t, storm, par); !bytes.Equal(b, want) {
					t.Errorf("parallelism %d report differs", par)
				}
			}
		})
	}
}
