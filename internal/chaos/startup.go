package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"greenhetero/internal/runner"
)

// Startup patterns for fleet generation: when each rack joins the
// fleet. Epochs before a rack's join are Absent — skipped with no
// breaker or SLO bookkeeping.
const (
	StartupInstant     = "instant"     // everyone at epoch 0
	StartupLinear      = "linear"      // evenly spread over the ramp
	StartupExponential = "exponential" // doubling cohorts over the ramp
	StartupWave        = "wave"        // discrete waves over the ramp
)

// JoinEpochs computes each of n racks' join epochs under the named
// startup pattern, spread over rampEpochs, with seeded per-rack jitter
// of up to jitterFrac of the ramp in either direction. waves is only
// meaningful for StartupWave. The result is deterministic in the seed
// and never negative.
func JoinEpochs(n int, pattern string, rampEpochs, waves int, jitterFrac float64, seed int64) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("chaos: %d racks", n)
	}
	if rampEpochs < 0 {
		return nil, fmt.Errorf("chaos: ramp %d epochs", rampEpochs)
	}
	if math.IsNaN(jitterFrac) || jitterFrac < 0 || jitterFrac >= 1 {
		return nil, fmt.Errorf("chaos: startup jitter %v outside [0,1)", jitterFrac)
	}
	joins := make([]int, n)
	ramp := float64(rampEpochs)
	switch pattern {
	case StartupInstant:
		// all zero
	case StartupLinear:
		for i := range joins {
			joins[i] = int(math.Round(float64(i) * ramp / float64(n)))
		}
	case StartupExponential:
		// Doubling cohorts: rack i is in cohort log2(i+1); the last
		// cohort lands at the end of the ramp.
		last := math.Log2(float64(n))
		if last <= 0 {
			last = 1
		}
		for i := range joins {
			joins[i] = int(math.Round(math.Log2(float64(i+1)) / last * ramp))
		}
	case StartupWave:
		if waves < 1 {
			return nil, fmt.Errorf("chaos: %d waves", waves)
		}
		for i := range joins {
			w := i * waves / n
			joins[i] = int(math.Round(float64(w) * ramp / float64(waves)))
		}
	default:
		return nil, fmt.Errorf("chaos: unknown startup pattern %q", pattern)
	}
	if jitterFrac > 0 && rampEpochs > 0 {
		rng := rand.New(rand.NewSource(runner.DeriveSeed(seed, "chaos/startup")))
		for i := range joins {
			j := joins[i] + int(math.Round((2*rng.Float64()-1)*jitterFrac*ramp))
			if j < 0 {
				j = 0
			}
			joins[i] = j
		}
	}
	return joins, nil
}
