// Package chaos turns a fleet run into a seeded failure storm: a
// schedule of domain events — cascading rack crashes, zone outages,
// cloud-bank weather fronts sweeping PV across the rack axis, grid
// price spikes, battery capacity fade, flash-crowd workload surges,
// agent partitions (driven through internal/faultnet's Partition
// primitive), and mid-storm daemon crashes at WAL crashpoints —
// expanded at build time from per-event seeded RNG streams into plain
// epoch windows, then replayed through cluster.Run's Disturber hook.
// Everything downstream of the seed is deterministic, so a storm's
// stress report is byte-identical across runs and parallelism levels.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"greenhetero/internal/cluster"
	"greenhetero/internal/faultnet"
	"greenhetero/internal/runner"
)

// Event kinds. Windowed kinds occupy [At, At+Duration); instantaneous
// kinds fire at At.
const (
	// KindRackCrash crashes the seed racks at At, then cascades: each
	// victim fans out to Fanout random racks one epoch later, Depth
	// levels deep. Every victim stays down for RecoveryEpochs, jittered
	// by JitterFrac.
	KindRackCrash = "rack_crash"
	// KindZoneOutage takes every rack in Zone down for the window.
	KindZoneOutage = "zone_outage"
	// KindWeatherFront sweeps a cloud bank of WidthRacks across the
	// rack axis over the window, derating covered racks' delivered PV
	// by DepthFrac.
	KindWeatherFront = "weather_front"
	// KindPriceSpike multiplies the grid price by PriceScale for the
	// window; the site answers with demand response, scaling its grid
	// budget by GridBudgetScale.
	KindPriceSpike = "price_spike"
	// KindBatteryFade permanently removes FadeFrac of the site bank's
	// remaining capacity at At (aging, cell failure).
	KindBatteryFade = "battery_fade"
	// KindWorkloadSurge multiplies the target racks' demand intensity
	// by IntensityScale for the window (flash crowd). Empty Racks
	// means the whole fleet.
	KindWorkloadSurge = "workload_surge"
	// KindAgentPartition severs the target racks' agent links for the
	// window through a faultnet.Partition: the coordinator holds their
	// last grants instead of re-bidding them. Empty Racks means the
	// whole fleet.
	KindAgentPartition = "agent_partition"
	// KindDaemonCrash tears the checkpointed rack's daemon down at a
	// seeded WAL crashpoint inside the commit of epoch At, keeps it
	// down for Duration epochs, and forces recovery from durable state.
	KindDaemonCrash = "daemon_crash"
)

// Event is one scheduled chaos event, with rack targets already
// resolved to fleet indices. Only the fields its Kind documents are
// read.
type Event struct {
	Kind     string
	At       int
	Duration int
	// Racks targets specific racks (crash seeds; surge / partition
	// scope, where empty means the whole fleet).
	Racks []int
	// Zone targets a zone (rack i belongs to zone i mod Zones).
	Zone int
	// Fanout and Depth shape a crash cascade.
	Fanout int
	Depth  int
	// RecoveryEpochs is a crash victim's down time, jittered by
	// JitterFrac.
	RecoveryEpochs int
	JitterFrac     float64
	// DepthFrac is a weather front's PV derate; WidthRacks its size.
	//
	// ghlint:units frac
	DepthFrac  float64
	WidthRacks int
	// PriceScale and GridBudgetScale shape a price spike.
	PriceScale      float64
	GridBudgetScale float64
	// FadeFrac is the capacity fraction a battery_fade removes.
	//
	// ghlint:units frac
	FadeFrac float64
	// IntensityScale is a workload surge's demand multiplier.
	IntensityScale float64
}

// Config describes a storm over a fleet.
type Config struct {
	// Racks is the fleet size; Names its rack names (synthesized when
	// nil). Zone of rack i is i mod Zones (default 1 zone).
	Racks int
	Names []string
	Zones int
	// JoinEpochs, when non-nil, is each rack's startup epoch (see
	// JoinEpochs); earlier epochs are Absent.
	JoinEpochs []int
	// Epochs is the run length; events are clipped to it.
	Epochs int
	// Seed drives every random choice (cascade victims, jitter, WAL
	// crashpoints) through per-event derived streams.
	Seed int64
	// Events is the storm schedule.
	Events []Event
	// WALRack is the rack whose daemon is checkpointed through the WAL
	// layer (-1 = none). Required for daemon_crash events.
	WALRack int
}

// epoch window over one rack or zone.
type window struct {
	target   int
	from, to int
}

type front struct {
	at, end, width int
	depth          float64
}

type spike struct {
	from, to    int
	price, grid float64
}

type fadePoint struct {
	at   int
	frac float64
}

type surge struct {
	from, to int
	scale    float64
	racks    []int // nil = all
}

type partWindow struct {
	from, to int
	racks    []int // nil = all
	part     *faultnet.Partition
}

// Engine is a built storm: every event expanded into plain epoch
// windows. It implements cluster.Disturber; Disturb is called serially
// once per epoch and is pure replay — all randomness was spent at
// build time.
type Engine struct {
	cfg     Config
	crashes []window
	zones   []window
	fronts  []front
	spikes  []spike
	fades   []fadePoint
	surges  []surge
	parts   []partWindow
	// daemonArm maps an epoch to the WAL crashpoint offset armed before
	// that epoch's commit.
	daemonArm map[int]int
}

// NewEngine expands the storm schedule. Each event draws from its own
// derived RNG stream, so reordering or editing one event never
// perturbs another's expansion.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Racks < 1 {
		return nil, fmt.Errorf("chaos: %d racks", cfg.Racks)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("chaos: %d epochs", cfg.Epochs)
	}
	if cfg.Zones < 1 {
		cfg.Zones = 1
	}
	if cfg.Names == nil {
		cfg.Names = make([]string, cfg.Racks)
		for i := range cfg.Names {
			cfg.Names[i] = fmt.Sprintf("rack-%04d", i)
		}
	}
	if len(cfg.Names) != cfg.Racks {
		return nil, fmt.Errorf("chaos: %d names for %d racks", len(cfg.Names), cfg.Racks)
	}
	if cfg.JoinEpochs != nil && len(cfg.JoinEpochs) != cfg.Racks {
		return nil, fmt.Errorf("chaos: %d join epochs for %d racks", len(cfg.JoinEpochs), cfg.Racks)
	}
	if cfg.WALRack >= cfg.Racks {
		return nil, fmt.Errorf("chaos: WAL rack %d of %d", cfg.WALRack, cfg.Racks)
	}
	g := &Engine{cfg: cfg, daemonArm: make(map[int]int)}
	for idx, ev := range cfg.Events {
		if ev.At < 0 || ev.At >= cfg.Epochs {
			return nil, fmt.Errorf("chaos: event %d (%s) at epoch %d of %d", idx, ev.Kind, ev.At, cfg.Epochs)
		}
		for _, r := range ev.Racks {
			if r < 0 || r >= cfg.Racks {
				return nil, fmt.Errorf("chaos: event %d (%s) targets rack %d of %d", idx, ev.Kind, r, cfg.Racks)
			}
		}
		rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, fmt.Sprintf("chaos/event/%d", idx))))
		if err := g.expand(idx, ev, rng); err != nil {
			return nil, err
		}
	}
	// Replay order must not depend on schedule order: sort each table.
	sort.Slice(g.crashes, func(i, j int) bool {
		a, b := g.crashes[i], g.crashes[j]
		if a.from != b.from {
			return a.from < b.from
		}
		return a.target < b.target
	})
	sort.Slice(g.fades, func(i, j int) bool { return g.fades[i].at < g.fades[j].at })
	return g, nil
}

// expand turns one event into replay windows using its private rng.
func (g *Engine) expand(idx int, ev Event, rng *rand.Rand) error {
	bad := func(f string, args ...any) error {
		return fmt.Errorf("chaos: event %d (%s): %s", idx, ev.Kind, fmt.Sprintf(f, args...))
	}
	switch ev.Kind {
	case KindRackCrash:
		if len(ev.Racks) == 0 {
			return bad("no seed racks")
		}
		if ev.RecoveryEpochs < 1 {
			return bad("recovery %d epochs", ev.RecoveryEpochs)
		}
		if ev.JitterFrac < 0 || ev.JitterFrac >= 1 || math.IsNaN(ev.JitterFrac) {
			return bad("jitter %v outside [0,1)", ev.JitterFrac)
		}
		if ev.Fanout < 0 || ev.Depth < 0 {
			return bad("fanout %d depth %d", ev.Fanout, ev.Depth)
		}
		down := make(map[int]bool)
		level := ev.Racks
		for l := 0; l <= ev.Depth && len(level) > 0; l++ {
			at := ev.At + l
			if at >= g.cfg.Epochs {
				break
			}
			var next []int
			for _, r := range level {
				if down[r] {
					continue
				}
				down[r] = true
				dur := jitterEpochs(rng, ev.RecoveryEpochs, ev.JitterFrac)
				g.crashes = append(g.crashes, window{target: r, from: at, to: at + dur})
				if l == ev.Depth {
					continue
				}
				// Fan out to random healthy racks; a saturated fleet
				// simply stops cascading (bounded retries).
				for f := 0; f < ev.Fanout; f++ {
					for try := 0; try < 8; try++ {
						v := rng.Intn(g.cfg.Racks)
						if !down[v] {
							next = append(next, v)
							break
						}
					}
				}
			}
			level = next
		}
	case KindZoneOutage:
		if ev.Zone < 0 || ev.Zone >= g.cfg.Zones {
			return bad("zone %d of %d", ev.Zone, g.cfg.Zones)
		}
		if ev.Duration < 1 {
			return bad("duration %d", ev.Duration)
		}
		g.zones = append(g.zones, window{target: ev.Zone, from: ev.At, to: ev.At + ev.Duration})
	case KindWeatherFront:
		if ev.Duration < 1 {
			return bad("duration %d", ev.Duration)
		}
		if ev.WidthRacks < 1 {
			return bad("width %d racks", ev.WidthRacks)
		}
		if !(ev.DepthFrac > 0 && ev.DepthFrac <= 1) {
			return bad("depth %v outside (0,1]", ev.DepthFrac)
		}
		g.fronts = append(g.fronts, front{at: ev.At, end: ev.At + ev.Duration, width: ev.WidthRacks, depth: ev.DepthFrac})
	case KindPriceSpike:
		if ev.Duration < 1 {
			return bad("duration %d", ev.Duration)
		}
		price, grid := ev.PriceScale, ev.GridBudgetScale
		if price == 0 {
			price = 1
		}
		if grid == 0 {
			grid = 1
		}
		if !(price > 0) || !(grid > 0) || grid > 1 {
			return bad("price scale %v, grid budget scale %v", ev.PriceScale, ev.GridBudgetScale)
		}
		g.spikes = append(g.spikes, spike{from: ev.At, to: ev.At + ev.Duration, price: price, grid: grid})
	case KindBatteryFade:
		if !(ev.FadeFrac > 0 && ev.FadeFrac < 1) {
			return bad("fade %v outside (0,1)", ev.FadeFrac)
		}
		g.fades = append(g.fades, fadePoint{at: ev.At, frac: ev.FadeFrac})
	case KindWorkloadSurge:
		if ev.Duration < 1 {
			return bad("duration %d", ev.Duration)
		}
		if !(ev.IntensityScale > 0) || math.IsInf(ev.IntensityScale, 0) {
			return bad("intensity scale %v", ev.IntensityScale)
		}
		g.surges = append(g.surges, surge{from: ev.At, to: ev.At + ev.Duration, scale: ev.IntensityScale, racks: ev.Racks})
	case KindAgentPartition:
		if ev.Duration < 1 {
			return bad("duration %d", ev.Duration)
		}
		peers := ev.Racks
		names := make([]string, 0, len(peers))
		if len(peers) == 0 {
			names = append(names, g.cfg.Names...)
		} else {
			for _, r := range peers {
				names = append(names, g.cfg.Names[r])
			}
		}
		g.parts = append(g.parts, partWindow{
			from:  ev.At,
			to:    ev.At + ev.Duration,
			racks: peers,
			part:  faultnet.NewPartition(names...),
		})
	case KindDaemonCrash:
		if g.cfg.WALRack < 0 {
			return bad("no WAL rack configured")
		}
		if ev.Duration < 1 {
			return bad("duration %d", ev.Duration)
		}
		// The crashpoint lands 1 or 2 filesystem ops into the commit of
		// epoch At — inside the record write or its sync — so the epoch
		// is stepped but never durable.
		g.daemonArm[ev.At] = 1 + rng.Intn(2)
		g.crashes = append(g.crashes, window{target: g.cfg.WALRack, from: ev.At + 1, to: ev.At + 1 + ev.Duration})
	default:
		return bad("unknown kind")
	}
	return nil
}

// jitterEpochs jitters a base duration by ±frac, floored at one epoch.
func jitterEpochs(rng *rand.Rand, base int, frac float64) int {
	d := int(math.Round(float64(base) * (1 + frac*(2*rng.Float64()-1))))
	if d < 1 {
		d = 1
	}
	return d
}

// Disturb implements cluster.Disturber: replay the expanded storm for
// one epoch into the effect vector.
func (g *Engine) Disturb(epoch int, d *cluster.Disturbance) {
	if g.cfg.JoinEpochs != nil {
		for i, j := range g.cfg.JoinEpochs {
			if epoch < j {
				d.Absent[i] = true
			}
		}
	}
	for _, w := range g.crashes {
		if epoch >= w.from && epoch < w.to {
			d.Down[w.target] = true
		}
	}
	for _, w := range g.zones {
		if epoch >= w.from && epoch < w.to {
			for i := w.target; i < g.cfg.Racks; i += g.cfg.Zones {
				d.Down[i] = true
			}
		}
	}
	for _, f := range g.fronts {
		if epoch < f.at || epoch >= f.end {
			continue
		}
		// The cloud bank's center sweeps from just off one edge of the
		// rack axis to just off the other over the window.
		p := 0.0
		if span := f.end - f.at - 1; span > 0 {
			p = float64(epoch-f.at) / float64(span)
		}
		c := -float64(f.width)/2 + p*float64(g.cfg.Racks+f.width)
		lo := int(math.Ceil(c - float64(f.width)/2))
		hi := int(math.Floor(c + float64(f.width)/2))
		if lo < 0 {
			lo = 0
		}
		if hi >= g.cfg.Racks {
			hi = g.cfg.Racks - 1
		}
		for i := lo; i <= hi; i++ {
			d.PVScaleFrac[i] *= 1 - f.depth
		}
	}
	for _, s := range g.spikes {
		if epoch >= s.from && epoch < s.to {
			d.GridBudgetScaleFrac *= s.grid
		}
	}
	capFrac := 1.0
	for _, f := range g.fades {
		if f.at <= epoch {
			capFrac *= 1 - f.frac
		}
	}
	d.BatteryCapacityFrac = capFrac
	for _, s := range g.surges {
		if epoch < s.from || epoch >= s.to {
			continue
		}
		if s.racks == nil {
			for i := range d.IntensityScale {
				d.IntensityScale[i] *= s.scale
			}
		} else {
			for _, i := range s.racks {
				d.IntensityScale[i] *= s.scale
			}
		}
	}
	for _, p := range g.parts {
		in := epoch >= p.from && epoch < p.to
		if in != p.part.Active() {
			if in {
				p.part.Activate()
			} else {
				p.part.Deactivate()
			}
		}
		if !in {
			continue
		}
		if p.racks == nil {
			for i := range d.Partitioned {
				d.Partitioned[i] = true
			}
		} else {
			for _, i := range p.racks {
				d.Partitioned[i] = true
			}
		}
	}
}

// PriceScale is the grid price multiplier in effect at epoch (product
// of active price spikes; 1 outside them). The stress report prices
// grid energy with it.
func (g *Engine) PriceScale(epoch int) float64 {
	scale := 1.0
	for _, s := range g.spikes {
		if epoch >= s.from && epoch < s.to {
			scale *= s.price
		}
	}
	return scale
}

// DaemonArm maps epochs to the WAL crashpoint offsets armed before
// those epochs' commits (empty without daemon_crash events).
func (g *Engine) DaemonArm() map[int]int { return g.daemonArm }

// Partitions returns the storm's faultnet partitions, one per
// agent_partition event, for attaching fault proxies.
func (g *Engine) Partitions() []*faultnet.Partition {
	out := make([]*faultnet.Partition, len(g.parts))
	for i := range g.parts {
		out[i] = g.parts[i].part
	}
	return out
}
