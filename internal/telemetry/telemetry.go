// Package telemetry implements the distributed Monitor plumbing of the
// GreenHetero controller (paper §IV-A, Fig. 4): per-node sensor agents
// that export power and performance readings, and a collector the
// rack-level controller uses to gather them each epoch.
//
// The wire protocol is newline-delimited JSON over TCP — one request
// object per line, one response object per line — matching the paper's
// "measurements … gathered by the distributed sensors". The same
// controller logic runs against in-process samplers in simulation and
// against live agents in examples/livetelemetry.
//
// The collector is built for lossy networks: it keeps one persistent
// connection per agent (dialed lazily, transparently redialed on
// error), retries failed exchanges with seeded exponential backoff, and
// tracks per-agent health behind a circuit breaker. When a minority of
// agents fail an epoch it degrades gracefully, serving each failed
// agent's last-known-good reading flagged Stale; only a majority
// failure aborts the collection.
package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"greenhetero/internal/runner"
)

// MaxLineBytes caps one wire line (request or response). Oversized
// lines are a protocol violation: agents reply with a structured error
// and close; collectors treat them as a transport failure.
const MaxLineBytes = 1 << 20

// Reading is one sensor observation from a node.
type Reading struct {
	// NodeID identifies the reporting node (e.g. "rack1/e5-2620/3").
	NodeID string `json:"nodeId"`
	// PowerW is the node's measured power draw.
	PowerW float64 `json:"powerW"`
	// Perf is the node's measured application throughput.
	Perf float64 `json:"perf"`
	// UnixMillis timestamps the observation.
	UnixMillis int64 `json:"unixMillis"`
}

// Sampler produces readings for an agent. Implementations must be safe
// for concurrent use.
type Sampler interface {
	Sample() (Reading, error)
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func() (Reading, error)

// Sample implements Sampler.
func (f SamplerFunc) Sample() (Reading, error) { return f() }

// Setter receives enforcement commands: the SPC's per-server power
// budget, which the node maps to a DVFS state (§IV-B.4). Agents whose
// sampler also implements Setter accept the "set" op; sensors that only
// measure reject it.
type Setter interface {
	SetTarget(powerW float64) error
}

// request is the wire request.
type request struct {
	Op string `json:"op"` // "sample", "ping", or "set"
	// TargetW carries the power budget for "set".
	TargetW float64 `json:"targetW,omitempty"`
}

// response is the wire response.
type response struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Reading *Reading `json:"reading,omitempty"`
}

// Agent is one node's sensor endpoint.
type Agent struct {
	sampler Sampler
	ln      net.Listener

	mu sync.Mutex
	// ghlint:guardedby mu
	conns map[net.Conn]struct{}
	// ghlint:guardedby mu
	closed bool

	wg sync.WaitGroup
}

// NewAgent starts an agent listening on addr ("127.0.0.1:0" for an
// ephemeral test port). Close must be called to release the listener.
func NewAgent(addr string, sampler Sampler) (*Agent, error) {
	if sampler == nil {
		return nil, errors.New("telemetry: nil sampler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen: %w", err)
	}
	a := &Agent{
		sampler: sampler,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Close stops the agent and waits for its goroutines to exit.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	for c := range a.conns {
		_ = c.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			_ = conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()

		a.wg.Add(1)
		go a.serve(conn)
	}
}

func (a *Agent) serve(conn net.Conn) {
	defer a.wg.Done()
	defer func() {
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		_ = conn.Close()
	}()

	sc := bufio.NewScanner(conn)
	// Bound the per-line buffer explicitly: the default 64 KiB token cap
	// would otherwise kill the connection silently on an oversized line.
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req request
		var resp response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = a.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	// An over-limit line is a protocol violation, not a clean
	// disconnect: reply with a structured error so the client can tell
	// the difference, then close.
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		_ = enc.Encode(response{Error: fmt.Sprintf("request line exceeds %d bytes", MaxLineBytes)})
	}
}

// handle executes one decoded request.
func (a *Agent) handle(req request) response {
	switch req.Op {
	case "ping":
		return response{OK: true}
	case "sample":
		r, err := a.sampler.Sample()
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Reading: &r}
	case "set":
		if math.IsNaN(req.TargetW) || math.IsInf(req.TargetW, 0) {
			return response{Error: fmt.Sprintf("non-finite power target %v", req.TargetW)}
		}
		setter, ok := a.sampler.(Setter)
		if !ok {
			return response{Error: "node does not accept power targets"}
		}
		if err := setter.SetTarget(req.TargetW); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// RetryPolicy bounds how the collector retries a failed exchange.
// Transport failures (dial, IO, decode) are retried with exponential
// backoff; application-level errors reported by the agent are not — the
// agent answered, so retrying cannot change the outcome this epoch.
type RetryPolicy struct {
	// Attempts is the total tries per exchange (first try included).
	// Zero means the default 3; 1 disables retries.
	Attempts int
	// BaseDelay is the backoff before the first retry (default 10 ms);
	// each subsequent retry doubles it up to MaxDelay (default 200 ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the backoff jitter. Per-agent jitter streams are
	// derived with runner.DeriveSeed(Seed, agent key), so fan-out retry
	// timing is reproducible and never read from the wall clock.
	Seed int64
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 200 * time.Millisecond
	}
	return p
}

// BreakerConfig tunes the per-agent circuit breaker.
type BreakerConfig struct {
	// FailureThreshold consecutive failed exchanges open the breaker
	// (default 5). Negative disables the breaker entirely.
	FailureThreshold int
	// CooldownEpochs is how many Collect epochs an open breaker skips
	// an agent before probing it half-open again (default 2).
	CooldownEpochs int
}

// withDefaults fills zero fields.
func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.FailureThreshold == 0 {
		b.FailureThreshold = 5
	}
	if b.CooldownEpochs <= 0 {
		b.CooldownEpochs = 2
	}
	return b
}

// BreakerState is a circuit breaker position.
type BreakerState int

const (
	// BreakerClosed: the agent is healthy; exchanges flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures tripped the breaker; the agent
	// is skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next exchange is a
	// single probe that either closes or reopens the breaker.
	BreakerHalfOpen
)

// String renders the state for status endpoints.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// MarshalJSON encodes the state as its string form.
func (s BreakerState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// AgentHealth is one agent's health snapshot.
type AgentHealth struct {
	Addr                string       `json:"addr"`
	State               BreakerState `json:"state"`
	ConsecutiveFailures int          `json:"consecutiveFailures"`
	Successes           uint64       `json:"successes"`
	Failures            uint64       `json:"failures"`
	// Stale reports whether the agent's latest Collect was served from
	// its last-known-good reading instead of a fresh sample.
	Stale     bool   `json:"stale"`
	LastError string `json:"lastError,omitempty"`
}

// agentState owns everything mutable about one agent: its persistent
// connection, its breaker, its jitter stream, and its last-known-good
// reading. The mutex serializes exchanges per agent.
type agentState struct {
	addr string // immutable after construction; the one unguarded field

	mu sync.Mutex
	// ghlint:guardedby mu
	rng *rand.Rand // backoff jitter, seeded via runner.DeriveSeed

	// ghlint:guardedby mu
	conn net.Conn
	// ghlint:guardedby mu
	rd *bufio.Reader

	// ghlint:guardedby mu
	state BreakerState
	// ghlint:guardedby mu
	fails int // consecutive failures
	// ghlint:guardedby mu
	coolEpoch int // Collect epochs spent open
	// ghlint:guardedby mu
	succTotal uint64
	// ghlint:guardedby mu
	failTotal uint64
	// ghlint:guardedby mu
	lastErr error

	// ghlint:guardedby mu
	lastGood Reading
	// ghlint:guardedby mu
	hasGood bool
	// ghlint:guardedby mu
	staleLast bool
}

// closeConnLocked drops the persistent connection.
//
// ghlint:holds a.mu
func (a *agentState) closeConnLocked() {
	if a.conn != nil {
		_ = a.conn.Close()
		a.conn = nil
		a.rd = nil
	}
}

// Collector gathers readings from a set of agents.
type Collector struct {
	agents  []*agentState
	timeout time.Duration
	retry   RetryPolicy
	breaker BreakerConfig
}

// CollectorOption configures a Collector.
type CollectorOption func(*Collector)

// WithTimeout sets the per-exchange dial/IO timeout (default 2 s).
func WithTimeout(d time.Duration) CollectorOption {
	return func(c *Collector) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithRetry sets the retry policy (zero fields take defaults).
func WithRetry(p RetryPolicy) CollectorOption {
	return func(c *Collector) { c.retry = p.withDefaults() }
}

// WithBreaker sets the circuit-breaker configuration (zero fields take
// defaults).
func WithBreaker(b BreakerConfig) CollectorOption {
	return func(c *Collector) { c.breaker = b.withDefaults() }
}

// ErrNoAgents is returned when a collector is built without addresses.
var ErrNoAgents = errors.New("telemetry: no agent addresses")

// ErrMajorityFailed is returned by Collect when more than half the
// agents failed their fresh sample this epoch: too little of the rack
// is observable to allocate against, stale or not.
var ErrMajorityFailed = errors.New("telemetry: majority of agents failed")

// ErrCircuitOpen reports an exchange skipped because the agent's
// breaker is open and still cooling down.
var ErrCircuitOpen = errors.New("telemetry: circuit open")

// NewCollector builds a collector over the given agent addresses.
func NewCollector(addrs []string, opts ...CollectorOption) (*Collector, error) {
	if len(addrs) == 0 {
		return nil, ErrNoAgents
	}
	c := &Collector{
		timeout: 2 * time.Second,
		retry:   RetryPolicy{}.withDefaults(),
		breaker: BreakerConfig{}.withDefaults(),
	}
	for _, o := range opts {
		o(c)
	}
	c.agents = make([]*agentState, len(addrs))
	for i, addr := range addrs {
		// The jitter stream is keyed by (seed, index, addr): duplicate
		// addresses get decorrelated streams, and the same config
		// always reproduces the same backoff schedule.
		seed := runner.DeriveSeed(c.retry.Seed, fmt.Sprintf("%d/%s", i, addr))
		c.agents[i] = &agentState{
			addr: addr,
			rng:  rand.New(rand.NewSource(seed)),
		}
	}
	return c, nil
}

// Close drops every persistent agent connection. The collector remains
// usable; connections are redialed on demand.
func (c *Collector) Close() error {
	for _, a := range c.agents {
		a.mu.Lock()
		a.closeConnLocked()
		a.mu.Unlock()
	}
	return nil
}

// Health snapshots per-agent health, in address order.
func (c *Collector) Health() []AgentHealth {
	out := make([]AgentHealth, len(c.agents))
	for i, a := range c.agents {
		a.mu.Lock()
		h := AgentHealth{
			Addr:                a.addr,
			State:               a.state,
			ConsecutiveFailures: a.fails,
			Successes:           a.succTotal,
			Failures:            a.failTotal,
			Stale:               a.staleLast,
		}
		if a.lastErr != nil {
			h.LastError = a.lastErr.Error()
		}
		a.mu.Unlock()
		out[i] = h
	}
	return out
}

// RestoreHealth re-seeds per-agent health from a persisted snapshot
// (daemon crash recovery): breaker position, failure counters, and the
// staleness flag are matched to agents by address, in occurrence order
// for duplicate addresses. Entries for unknown addresses are skipped —
// a topology change between runs must not block recovery — and agents
// without an entry keep their zero (closed) state. The open-breaker
// cooldown clock restarts at zero: after a restart an open breaker
// waits one full cooldown before probing, which errs toward caution
// rather than inheriting a stale countdown. Last-known-good readings
// are not persisted, so a restored agent serves no stale reading until
// it has a fresh one. Validation happens before anything is applied.
func (c *Collector) RestoreHealth(snap []AgentHealth) error {
	for i, h := range snap {
		if h.State < BreakerClosed || h.State > BreakerHalfOpen {
			return fmt.Errorf("telemetry: restore health: entry %d (%s): unknown breaker state %d", i, h.Addr, h.State)
		}
		if h.ConsecutiveFailures < 0 {
			return fmt.Errorf("telemetry: restore health: entry %d (%s): negative consecutive failures %d", i, h.Addr, h.ConsecutiveFailures)
		}
	}
	// Match by address in occurrence order (duplicate addresses pair
	// first-to-first, second-to-second).
	byAddr := make(map[string][]*agentState, len(c.agents))
	for _, a := range c.agents {
		byAddr[a.addr] = append(byAddr[a.addr], a)
	}
	for _, h := range snap {
		q := byAddr[h.Addr]
		if len(q) == 0 {
			continue
		}
		a := q[0]
		byAddr[h.Addr] = q[1:]
		a.mu.Lock()
		a.state = h.State
		a.fails = h.ConsecutiveFailures
		a.coolEpoch = 0
		a.succTotal = h.Successes
		a.failTotal = h.Failures
		a.staleLast = h.Stale
		a.lastErr = nil
		if h.LastError != "" {
			a.lastErr = errors.New(h.LastError)
		}
		a.mu.Unlock()
	}
	return nil
}

// Result pairs an agent address with its reading or error.
type Result struct {
	Addr    string
	Reading Reading
	// Err is set when no reading — fresh or last-known-good — is
	// available for the agent this epoch.
	Err error
	// Stale marks a degraded reading: the fresh sample failed and
	// Reading holds the agent's last-known-good observation.
	Stale bool
}

// failedFresh reports whether the agent's fresh sample failed this
// epoch (the degraded and errored cases both imply it).
func (r Result) failedFresh() bool { return r.Stale || r.Err != nil }

// Collect polls every agent concurrently and returns one result per
// agent, in address order. Failed agents are retried per the retry
// policy; agents that still fail are served from last-known-good
// readings flagged Stale (degraded mode). Collect itself fails only
// when a strict majority of agents failed their fresh sample — the rack
// is effectively unobservable — or on context cancellation; in the
// majority case the per-agent results are still returned for
// inspection.
func (c *Collector) Collect(ctx context.Context) ([]Result, error) {
	results := make([]Result, len(c.agents))
	var wg sync.WaitGroup
	for i, a := range c.agents {
		i, a := i, a
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = c.collectOne(ctx, a)
		}()
	}
	done := make(chan struct{}) // ghlint:unbounded close-only completion signal; closed when the WaitGroup drains
	go func() {
		defer close(done)
		wg.Wait()
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Results are abandoned; goroutines unwind on their own
		// deadlines (each exchange has c.timeout, and retries stop at
		// context cancellation).
		<-done
		return nil, fmt.Errorf("telemetry: collect: %w", ctx.Err())
	}

	failed := 0
	var firstErr error
	for _, r := range results {
		if r.failedFresh() {
			failed++
			if firstErr == nil {
				if r.Err != nil {
					firstErr = r.Err
				} else {
					firstErr = fmt.Errorf("agent %s: stale", r.Addr)
				}
			}
		}
	}
	if failed*2 > len(results) {
		return results, fmt.Errorf("%w: %d/%d (first: %v)", ErrMajorityFailed, failed, len(results), firstErr)
	}
	return results, nil
}

// collectOne runs one agent's epoch: breaker bookkeeping, the sampling
// exchange with retries, and degraded-mode fallback.
func (c *Collector) collectOne(ctx context.Context, a *agentState) Result {
	a.mu.Lock()
	defer a.mu.Unlock()

	attempts := c.retry.Attempts
	switch a.state {
	case BreakerOpen:
		a.coolEpoch++
		if a.coolEpoch <= c.breaker.CooldownEpochs {
			// Still cooling: skip the network entirely.
			a.staleLast = a.hasGood
			return c.degraded(a, fmt.Errorf("%w: %s (%d/%d cooldown epochs)",
				ErrCircuitOpen, a.addr, a.coolEpoch, c.breaker.CooldownEpochs))
		}
		a.state = BreakerHalfOpen
		attempts = 1 // a single probe, no retries
	case BreakerHalfOpen:
		attempts = 1
	}

	reading, err := c.exchangeLocked(ctx, a, request{Op: "sample"}, attempts)
	if err != nil {
		c.recordFailureLocked(a, err)
		a.staleLast = a.hasGood
		return c.degraded(a, err)
	}
	c.recordSuccessLocked(a)
	a.lastGood = reading
	a.hasGood = true
	a.staleLast = false
	return Result{Addr: a.addr, Reading: reading}
}

// degraded builds the failed-agent result: last-known-good flagged
// Stale when available, otherwise the error itself.
//
// ghlint:holds a.mu
func (c *Collector) degraded(a *agentState, err error) Result {
	if a.hasGood {
		return Result{Addr: a.addr, Reading: a.lastGood, Stale: true}
	}
	return Result{Addr: a.addr, Err: err}
}

// recordFailureLocked updates health counters and may open the breaker.
//
// ghlint:holds a.mu
func (c *Collector) recordFailureLocked(a *agentState, err error) {
	a.fails++
	a.failTotal++
	a.lastErr = err
	if a.state == BreakerHalfOpen {
		// The probe failed: reopen and restart the cooldown.
		a.state = BreakerOpen
		a.coolEpoch = 0
		return
	}
	if c.breaker.FailureThreshold >= 0 && a.fails >= c.breaker.FailureThreshold {
		a.state = BreakerOpen
		a.coolEpoch = 0
	}
}

// recordSuccessLocked resets health state and closes the breaker.
//
// ghlint:holds a.mu
func (c *Collector) recordSuccessLocked(a *agentState) {
	a.fails = 0
	a.succTotal++
	a.lastErr = nil
	a.state = BreakerClosed
	a.coolEpoch = 0
}

// SetTarget commands one agent (which must be in the collector's
// address set) to the given power budget over the persistent
// connection, with the collector's retry policy. An open breaker fails
// fast with ErrCircuitOpen; Collect epochs drive its cooldown.
func (c *Collector) SetTarget(ctx context.Context, addr string, powerW float64) error {
	if err := validTarget(powerW); err != nil {
		return fmt.Errorf("telemetry: set %s: %w", addr, err)
	}
	a := c.agent(addr)
	if a == nil {
		return fmt.Errorf("telemetry: set %s: agent not in collector", addr)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == BreakerOpen {
		return fmt.Errorf("%w: %s", ErrCircuitOpen, addr)
	}
	attempts := c.retry.Attempts
	if a.state == BreakerHalfOpen {
		attempts = 1
	}
	if _, err := c.exchangeLocked(ctx, a, request{Op: "set", TargetW: powerW}, attempts); err != nil {
		c.recordFailureLocked(a, err)
		return fmt.Errorf("telemetry: set %s: %w", addr, err)
	}
	c.recordSuccessLocked(a)
	return nil
}

// agent finds the state for addr (first match).
func (c *Collector) agent(addr string) *agentState {
	for _, a := range c.agents {
		if a.addr == addr {
			return a
		}
	}
	return nil
}

// errAgent is an application-level error reported by an agent. It is
// not retried: the agent answered, so the transport is healthy.
type errAgent struct{ msg string }

func (e errAgent) Error() string { return e.msg }

// exchangeLocked runs one request/response exchange on the agent's
// persistent connection, redialing transparently and retrying transport
// failures with seeded exponential backoff. Called with a.mu held.
func (c *Collector) exchangeLocked(ctx context.Context, a *agentState, req request, attempts int) (Reading, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			if err := sleepCtx(ctx, c.backoff(a, try)); err != nil {
				return Reading{}, fmt.Errorf("%s: %w (after %v)", a.addr, err, lastErr)
			}
		}
		resp, err := a.roundTripLocked(ctx, req, c.timeout)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue // transport failure: redial and retry
		}
		if !resp.OK {
			return Reading{}, errAgent{fmt.Sprintf("agent %s: %s", a.addr, resp.Error)}
		}
		if req.Op == "sample" {
			if resp.Reading == nil {
				return Reading{}, errAgent{fmt.Sprintf("agent %s: ok response without reading", a.addr)}
			}
			return *resp.Reading, nil
		}
		return Reading{}, nil
	}
	return Reading{}, fmt.Errorf("%s (after %d attempts): %w", a.addr, attempts, lastErr)
}

// backoff returns the jittered delay before retry number try (1-based):
// exponential in try, capped, with 50–100 % seeded jitter. The jitter
// stream comes from the configured seed (via runner.DeriveSeed), never
// the wall clock, so retry schedules are reproducible.
//
// ghlint:holds a.mu
func (c *Collector) backoff(a *agentState, try int) time.Duration {
	d := c.retry.BaseDelay << (try - 1)
	if d > c.retry.MaxDelay || d <= 0 {
		d = c.retry.MaxDelay
	}
	half := int64(d) / 2
	return time.Duration(half + a.rng.Int63n(half+1))
}

// roundTripLocked performs one exchange on the persistent connection,
// dialing if needed. Any failure tears the connection down so the next
// attempt redials cleanly.
//
// ghlint:holds a.mu
func (a *agentState) roundTripLocked(ctx context.Context, req request, timeout time.Duration) (response, error) {
	if a.conn == nil {
		d := net.Dialer{Timeout: timeout}
		conn, err := d.DialContext(ctx, "tcp", a.addr)
		if err != nil {
			return response{}, fmt.Errorf("dial %s: %w", a.addr, err)
		}
		a.conn = conn
		a.rd = bufio.NewReader(conn)
	}
	if err := a.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		a.closeConnLocked()
		return response{}, fmt.Errorf("deadline %s: %w", a.addr, err)
	}
	line, err := json.Marshal(req)
	if err != nil {
		return response{}, fmt.Errorf("encode %s: %w", a.addr, err)
	}
	if _, err := a.conn.Write(append(line, '\n')); err != nil {
		a.closeConnLocked()
		return response{}, fmt.Errorf("send %s: %w", a.addr, err)
	}
	raw, err := readLine(a.rd, MaxLineBytes)
	if err != nil {
		a.closeConnLocked()
		return response{}, fmt.Errorf("recv %s: %w", a.addr, err)
	}
	var resp response
	if err := json.Unmarshal(raw, &resp); err != nil {
		// A garbled response leaves the stream unframed: drop the
		// connection rather than trust subsequent lines.
		a.closeConnLocked()
		return response{}, fmt.Errorf("decode %s: %w", a.addr, err)
	}
	return resp, nil
}

// readLine reads one newline-terminated line of at most max bytes.
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		switch {
		case err == nil:
			return bytes.TrimSuffix(buf, []byte("\n")), nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(buf) > max {
				return nil, fmt.Errorf("response line exceeds %d bytes", max)
			}
		default:
			return nil, err
		}
	}
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// validTarget rejects non-finite power budgets before they reach the
// wire (NaN would silently pass a `NaN < 0` validation on the node).
func validTarget(powerW float64) error {
	if math.IsNaN(powerW) || math.IsInf(powerW, 0) {
		return fmt.Errorf("non-finite power target %v", powerW)
	}
	return nil
}

// SetTarget commands one agent to the given power budget (the wire form
// of an SPC instruction) over a throwaway connection, without retries.
// Prefer Collector.SetTarget for repeated enforcement.
func SetTarget(ctx context.Context, addr string, powerW float64, timeout time.Duration) error {
	if err := validTarget(powerW); err != nil {
		return fmt.Errorf("telemetry: set %s: %w", addr, err)
	}
	resp, err := roundTrip(ctx, addr, request{Op: "set", TargetW: powerW}, timeout)
	if err != nil {
		return fmt.Errorf("telemetry: set %s: %w", addr, err)
	}
	if !resp.OK {
		return fmt.Errorf("telemetry: set %s: %s", addr, resp.Error)
	}
	return nil
}

// roundTrip performs one request/response exchange on a fresh
// connection.
func roundTrip(ctx context.Context, addr string, req request, timeout time.Duration) (response, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return response{}, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return response{}, fmt.Errorf("deadline: %w", err)
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return response{}, fmt.Errorf("send: %w", err)
	}
	raw, err := readLine(bufio.NewReader(conn), MaxLineBytes)
	if err != nil {
		return response{}, fmt.Errorf("recv: %w", err)
	}
	var resp response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return response{}, fmt.Errorf("decode: %w", err)
	}
	return resp, nil
}

// Ping checks one agent's liveness.
func Ping(ctx context.Context, addr string, timeout time.Duration) error {
	resp, err := roundTrip(ctx, addr, request{Op: "ping"}, timeout)
	if err != nil {
		return fmt.Errorf("telemetry: ping %s: %w", addr, err)
	}
	if !resp.OK {
		return fmt.Errorf("telemetry: ping %s: %s", addr, resp.Error)
	}
	return nil
}
