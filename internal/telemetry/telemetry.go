// Package telemetry implements the distributed Monitor plumbing of the
// GreenHetero controller (paper §IV-A, Fig. 4): per-node sensor agents
// that export power and performance readings, and a collector the
// rack-level controller uses to gather them each epoch.
//
// The wire protocol is newline-delimited JSON over TCP — one request
// object per line, one response object per line — matching the paper's
// "measurements … gathered by the distributed sensors". The same
// controller logic runs against in-process samplers in simulation and
// against live agents in examples/livetelemetry.
package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Reading is one sensor observation from a node.
type Reading struct {
	// NodeID identifies the reporting node (e.g. "rack1/e5-2620/3").
	NodeID string `json:"nodeId"`
	// PowerW is the node's measured power draw.
	PowerW float64 `json:"powerW"`
	// Perf is the node's measured application throughput.
	Perf float64 `json:"perf"`
	// UnixMillis timestamps the observation.
	UnixMillis int64 `json:"unixMillis"`
}

// Sampler produces readings for an agent. Implementations must be safe
// for concurrent use.
type Sampler interface {
	Sample() (Reading, error)
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func() (Reading, error)

// Sample implements Sampler.
func (f SamplerFunc) Sample() (Reading, error) { return f() }

// Setter receives enforcement commands: the SPC's per-server power
// budget, which the node maps to a DVFS state (§IV-B.4). Agents whose
// sampler also implements Setter accept the "set" op; sensors that only
// measure reject it.
type Setter interface {
	SetTarget(powerW float64) error
}

// request is the wire request.
type request struct {
	Op string `json:"op"` // "sample", "ping", or "set"
	// TargetW carries the power budget for "set".
	TargetW float64 `json:"targetW,omitempty"`
}

// response is the wire response.
type response struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Reading *Reading `json:"reading,omitempty"`
}

// Agent is one node's sensor endpoint.
type Agent struct {
	sampler Sampler
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewAgent starts an agent listening on addr ("127.0.0.1:0" for an
// ephemeral test port). Close must be called to release the listener.
func NewAgent(addr string, sampler Sampler) (*Agent, error) {
	if sampler == nil {
		return nil, errors.New("telemetry: nil sampler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen: %w", err)
	}
	a := &Agent{
		sampler: sampler,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Close stops the agent and waits for its goroutines to exit.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	for c := range a.conns {
		_ = c.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			_ = conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()

		a.wg.Add(1)
		go a.serve(conn)
	}
}

func (a *Agent) serve(conn net.Conn) {
	defer a.wg.Done()
	defer func() {
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		_ = conn.Close()
	}()

	sc := bufio.NewScanner(conn)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req request
		var resp response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			switch req.Op {
			case "ping":
				resp = response{OK: true}
			case "sample":
				r, err := a.sampler.Sample()
				if err != nil {
					resp = response{Error: err.Error()}
				} else {
					resp = response{OK: true, Reading: &r}
				}
			case "set":
				setter, ok := a.sampler.(Setter)
				if !ok {
					resp = response{Error: "node does not accept power targets"}
				} else if err := setter.SetTarget(req.TargetW); err != nil {
					resp = response{Error: err.Error()}
				} else {
					resp = response{OK: true}
				}
			default:
				resp = response{Error: fmt.Sprintf("unknown op %q", req.Op)}
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Collector gathers readings from a set of agents.
type Collector struct {
	addrs   []string
	timeout time.Duration
}

// CollectorOption configures a Collector.
type CollectorOption func(*Collector)

// WithTimeout sets the per-request dial/IO timeout (default 2 s).
func WithTimeout(d time.Duration) CollectorOption {
	return func(c *Collector) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// ErrNoAgents is returned when a collector is built without addresses.
var ErrNoAgents = errors.New("telemetry: no agent addresses")

// NewCollector builds a collector over the given agent addresses.
func NewCollector(addrs []string, opts ...CollectorOption) (*Collector, error) {
	if len(addrs) == 0 {
		return nil, ErrNoAgents
	}
	c := &Collector{
		addrs:   append([]string(nil), addrs...),
		timeout: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Result pairs an agent address with its reading or error.
type Result struct {
	Addr    string
	Reading Reading
	Err     error
}

// Collect polls every agent concurrently and returns one result per
// agent, in address order. Individual agent failures are reported in the
// corresponding Result; the method itself fails only on context
// cancellation.
func (c *Collector) Collect(ctx context.Context) ([]Result, error) {
	results := make([]Result, len(c.addrs))
	var wg sync.WaitGroup
	for i, addr := range c.addrs {
		i, addr := i, addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.sampleOne(ctx, addr)
			results[i] = Result{Addr: addr, Reading: r, Err: err}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	select {
	case <-done:
		return results, nil
	case <-ctx.Done():
		// Results are abandoned; goroutines unwind on their own
		// deadlines (each dial/IO has c.timeout).
		<-done
		return nil, fmt.Errorf("telemetry: collect: %w", ctx.Err())
	}
}

// sampleOne performs one request/response exchange with an agent.
func (c *Collector) sampleOne(ctx context.Context, addr string) (Reading, error) {
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Reading{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return Reading{}, fmt.Errorf("deadline %s: %w", addr, err)
	}

	if err := json.NewEncoder(conn).Encode(request{Op: "sample"}); err != nil {
		return Reading{}, fmt.Errorf("send %s: %w", addr, err)
	}
	var resp response
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Reading{}, fmt.Errorf("recv %s: %w", addr, err)
		}
		return Reading{}, fmt.Errorf("recv %s: connection closed", addr)
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return Reading{}, fmt.Errorf("decode %s: %w", addr, err)
	}
	if !resp.OK {
		return Reading{}, fmt.Errorf("agent %s: %s", addr, resp.Error)
	}
	if resp.Reading == nil {
		return Reading{}, fmt.Errorf("agent %s: ok response without reading", addr)
	}
	return *resp.Reading, nil
}

// SetTarget commands one agent to the given power budget (the wire form
// of an SPC instruction).
func SetTarget(ctx context.Context, addr string, powerW float64, timeout time.Duration) error {
	resp, err := roundTrip(ctx, addr, request{Op: "set", TargetW: powerW}, timeout)
	if err != nil {
		return fmt.Errorf("telemetry: set %s: %w", addr, err)
	}
	if !resp.OK {
		return fmt.Errorf("telemetry: set %s: %s", addr, resp.Error)
	}
	return nil
}

// roundTrip performs one request/response exchange.
func roundTrip(ctx context.Context, addr string, req request, timeout time.Duration) (response, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return response{}, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return response{}, fmt.Errorf("deadline: %w", err)
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return response{}, fmt.Errorf("send: %w", err)
	}
	var resp response
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return response{}, fmt.Errorf("recv: %w", err)
		}
		return response{}, errors.New("recv: connection closed")
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return response{}, fmt.Errorf("decode: %w", err)
	}
	return resp, nil
}

// Ping checks one agent's liveness.
func Ping(ctx context.Context, addr string, timeout time.Duration) error {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: ping %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return fmt.Errorf("telemetry: ping %s: %w", addr, err)
	}
	if err := json.NewEncoder(conn).Encode(request{Op: "ping"}); err != nil {
		return fmt.Errorf("telemetry: ping %s: %w", addr, err)
	}
	var resp response
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return fmt.Errorf("telemetry: ping %s: no response", addr)
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return fmt.Errorf("telemetry: ping %s: %w", addr, err)
	}
	if !resp.OK {
		return fmt.Errorf("telemetry: ping %s: %s", addr, resp.Error)
	}
	return nil
}
