package telemetry

import (
	"testing"
)

// TestRestoreHealthRoundTrip: Health → RestoreHealth into a fresh
// collector over the same addresses reproduces breaker state, counters,
// and staleness.
func TestRestoreHealthRoundTrip(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000"}
	snap := []AgentHealth{
		{Addr: addrs[0], State: BreakerOpen, ConsecutiveFailures: 4,
			Successes: 10, Failures: 6, Stale: true, LastError: "dial timeout"},
		{Addr: addrs[1], State: BreakerClosed, ConsecutiveFailures: 0,
			Successes: 16, Failures: 0},
	}

	c, err := NewCollector(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreHealth(snap); err != nil {
		t.Fatal(err)
	}
	got := c.Health()
	if len(got) != 2 {
		t.Fatalf("health has %d entries", len(got))
	}
	for i := range snap {
		if got[i].Addr != snap[i].Addr ||
			got[i].State != snap[i].State ||
			got[i].ConsecutiveFailures != snap[i].ConsecutiveFailures ||
			got[i].Successes != snap[i].Successes ||
			got[i].Failures != snap[i].Failures ||
			got[i].Stale != snap[i].Stale ||
			got[i].LastError != snap[i].LastError {
			t.Errorf("agent %d: got %+v, want %+v", i, got[i], snap[i])
		}
	}
}

// TestRestoreHealthDuplicateAddrs: duplicate addresses restore in
// occurrence order, not all onto the first match.
func TestRestoreHealthDuplicateAddrs(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.1:7000"}
	c, err := NewCollector(addrs)
	if err != nil {
		t.Fatal(err)
	}
	snap := []AgentHealth{
		{Addr: addrs[0], State: BreakerOpen, ConsecutiveFailures: 3, Failures: 3},
		{Addr: addrs[1], State: BreakerClosed, Successes: 5},
	}
	if err := c.RestoreHealth(snap); err != nil {
		t.Fatal(err)
	}
	got := c.Health()
	if got[0].State != BreakerOpen || got[1].State != BreakerClosed {
		t.Errorf("duplicate addrs restored out of order: %+v", got)
	}
}

// TestRestoreHealthTopologyChange: entries for addresses the collector
// no longer watches are skipped, never an error — a redeployed rack must
// still recover.
func TestRestoreHealthTopologyChange(t *testing.T) {
	c, err := NewCollector([]string{"10.0.0.9:7000"})
	if err != nil {
		t.Fatal(err)
	}
	snap := []AgentHealth{
		{Addr: "10.0.0.1:7000", State: BreakerOpen, ConsecutiveFailures: 2, Failures: 2},
		{Addr: "10.0.0.9:7000", State: BreakerHalfOpen, ConsecutiveFailures: 1, Failures: 1},
	}
	if err := c.RestoreHealth(snap); err != nil {
		t.Fatal(err)
	}
	got := c.Health()
	if len(got) != 1 || got[0].State != BreakerHalfOpen {
		t.Errorf("health = %+v", got)
	}
}

// TestRestoreHealthRejections: invalid snapshots are refused before any
// agent is mutated.
func TestRestoreHealthRejections(t *testing.T) {
	c, err := NewCollector([]string{"10.0.0.1:7000"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreHealth([]AgentHealth{{Addr: "10.0.0.1:7000", State: BreakerState(99)}}); err == nil {
		t.Error("out-of-range breaker state accepted")
	}
	if err := c.RestoreHealth([]AgentHealth{{Addr: "10.0.0.1:7000", ConsecutiveFailures: -1}}); err == nil {
		t.Error("negative consecutive failures accepted")
	}
	if got := c.Health()[0]; got.State != BreakerClosed || got.Failures != 0 {
		t.Errorf("failed restore mutated the collector: %+v", got)
	}
}
