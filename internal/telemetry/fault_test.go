package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"greenhetero/internal/faultnet"
)

// fastRetry keeps backoff sleeps negligible so fault tests stay quick.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1}
}

// proxied starts an agent behind a faultnet proxy and returns the proxy.
func proxied(t *testing.T, s Sampler, sched *faultnet.Schedule) *faultnet.Proxy {
	t.Helper()
	a := startAgent(t, s)
	p, err := faultnet.New(a.Addr(), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// TestBackoffDeterministic pins the seeded jitter: two collectors built
// from the same config produce identical backoff schedules, and a
// different seed produces a different one.
func TestBackoffDeterministic(t *testing.T) {
	build := func(seed int64) *Collector {
		c, err := NewCollector([]string{"127.0.0.1:9"},
			WithRetry(RetryPolicy{Attempts: 4, BaseDelay: 10 * time.Millisecond, Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b, other := build(7), build(7), build(8)
	var sameA, sameB, diff []time.Duration
	for try := 1; try <= 8; try++ {
		sameA = append(sameA, a.backoff(a.agents[0], try))
		sameB = append(sameB, b.backoff(b.agents[0], try))
		diff = append(diff, other.backoff(other.agents[0], try))
	}
	for i := range sameA {
		if sameA[i] != sameB[i] {
			t.Errorf("draw %d: %v != %v with equal seeds", i, sameA[i], sameB[i])
		}
		// Jitter stays within [50%, 100%] of the exponential delay.
		base := 10 * time.Millisecond << i
		if base > 200*time.Millisecond {
			base = 200 * time.Millisecond
		}
		if sameA[i] < base/2 || sameA[i] > base {
			t.Errorf("draw %d = %v outside [%v, %v]", i, sameA[i], base/2, base)
		}
	}
	if fmt.Sprint(sameA) == fmt.Sprint(diff) {
		t.Error("different seeds produced identical jitter streams")
	}
}

// TestCollectRetriesTransientFault injects a single connection reset:
// the collector must redial and succeed within its retry budget, with
// no stale flag and a closed breaker.
func TestCollectRetriesTransientFault(t *testing.T) {
	p := proxied(t, fixedSampler("n1", 100, 5), faultnet.NewFixedSchedule(faultnet.Reset))
	c, err := NewCollector([]string{p.Addr()}, WithRetry(fastRetry(3)), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; r.Err != nil || r.Stale || r.Reading.NodeID != "n1" {
		t.Errorf("result = %+v, want fresh n1 reading", r)
	}
	if got := p.Exchanges(); got != 2 {
		t.Errorf("exchanges = %d, want 2 (reset + retried success)", got)
	}
	h := c.Health()[0]
	if h.State != BreakerClosed || h.Successes != 1 || h.ConsecutiveFailures != 0 {
		t.Errorf("health = %+v, want closed with one success", h)
	}
}

// TestCollectSurvivesGarbageResponse: a garbled response must be
// treated as a transport failure — connection dropped, exchange
// retried — not parsed or trusted.
func TestCollectSurvivesGarbageResponse(t *testing.T) {
	p := proxied(t, fixedSampler("n1", 100, 5), faultnet.NewFixedSchedule(faultnet.Garbage))
	c, err := NewCollector([]string{p.Addr()}, WithRetry(fastRetry(3)), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; r.Err != nil || r.Stale || r.Reading.NodeID != "n1" {
		t.Errorf("result = %+v, want fresh reading after garbage retry", r)
	}
}

// TestBreakerLifecycle drives the full state machine with a fixed fault
// schedule: closed → (threshold failures) → open → cooldown skips with
// no network traffic → half-open probe → closed.
func TestBreakerLifecycle(t *testing.T) {
	p := proxied(t, fixedSampler("n1", 100, 5),
		faultnet.NewFixedSchedule(faultnet.Reset, faultnet.Reset))
	c, err := NewCollector([]string{p.Addr()},
		WithRetry(fastRetry(1)), // one attempt per epoch so failures count 1:1
		WithBreaker(BreakerConfig{FailureThreshold: 2, CooldownEpochs: 2}),
		WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	step := func(epoch int, wantState BreakerState, wantExchanges int64) {
		t.Helper()
		// Every failed epoch of a single-agent collector is a majority
		// failure; the breaker bookkeeping is what this test pins.
		_, _ = c.Collect(ctx)
		if h := c.Health()[0]; h.State != wantState {
			t.Errorf("epoch %d: state = %v, want %v", epoch, h.State, wantState)
		}
		if got := p.Exchanges(); got != wantExchanges {
			t.Errorf("epoch %d: exchanges = %d, want %d", epoch, got, wantExchanges)
		}
	}

	step(1, BreakerClosed, 1) // first reset: one failure, under threshold
	step(2, BreakerOpen, 2)   // second reset trips the breaker
	step(3, BreakerOpen, 2)   // cooling: no network traffic
	step(4, BreakerOpen, 2)   // still cooling
	// Cooldown elapsed: a single half-open probe hits the (now healthy)
	// agent and closes the breaker.
	results, err := c.Collect(ctx)
	if err != nil {
		t.Fatalf("probe epoch: %v", err)
	}
	if r := results[0]; r.Err != nil || r.Stale || r.Reading.NodeID != "n1" {
		t.Errorf("probe result = %+v, want fresh reading", r)
	}
	if h := c.Health()[0]; h.State != BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Errorf("post-probe health = %+v, want closed", h)
	}
	if got := p.Exchanges(); got != 3 {
		t.Errorf("exchanges = %d, want 3 (probe was a single attempt)", got)
	}
}

// TestBreakerFailedProbeReopens: a half-open probe that fails must
// reopen the breaker and restart the cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	p := proxied(t, fixedSampler("n1", 100, 5),
		faultnet.NewFixedSchedule(faultnet.Reset, faultnet.Reset)) // trip + failed probe
	c, err := NewCollector([]string{p.Addr()},
		WithRetry(fastRetry(1)),
		WithBreaker(BreakerConfig{FailureThreshold: 1, CooldownEpochs: 1}),
		WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	_, _ = c.Collect(ctx) // trip: open
	_, _ = c.Collect(ctx) // cooldown skip
	_, _ = c.Collect(ctx) // half-open probe hits the second reset
	if h := c.Health()[0]; h.State != BreakerOpen {
		t.Errorf("state after failed probe = %v, want open", h.State)
	}
	_, _ = c.Collect(ctx) // cooldown again
	results, err := c.Collect(ctx)
	if err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if r := results[0]; r.Err != nil || r.Stale {
		t.Errorf("second probe result = %+v, want fresh", r)
	}
}

// TestDegradedModeStaleMinority: when a minority of agents fails after
// a healthy epoch, Collect substitutes last-known-good readings flagged
// Stale and reports no error.
func TestDegradedModeStaleMinority(t *testing.T) {
	a1 := startAgent(t, fixedSampler("n1", 100, 1))
	a2 := startAgent(t, fixedSampler("n2", 200, 2))
	a3 := startAgent(t, fixedSampler("n3", 300, 3))
	c, err := NewCollector([]string{a1.Addr(), a2.Addr(), a3.Addr()},
		WithRetry(fastRetry(1)), WithTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Collect(ctx); err != nil {
		t.Fatalf("healthy epoch: %v", err)
	}
	if err := a3.Close(); err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(ctx)
	if err != nil {
		t.Fatalf("degraded epoch: %v", err)
	}
	for i, want := range []struct {
		node  string
		stale bool
	}{{"n1", false}, {"n2", false}, {"n3", true}} {
		r := results[i]
		if r.Err != nil {
			t.Errorf("agent %d: err = %v", i, r.Err)
			continue
		}
		if r.Reading.NodeID != want.node || r.Stale != want.stale {
			t.Errorf("agent %d = {node %q, stale %v}, want {%q, %v}",
				i, r.Reading.NodeID, r.Stale, want.node, want.stale)
		}
	}
	health := c.Health()
	if health[2].Stale != true || health[0].Stale || health[1].Stale {
		t.Errorf("health stale flags = [%v %v %v], want [false false true]",
			health[0].Stale, health[1].Stale, health[2].Stale)
	}
}

// TestMajorityFailureStillErrors: stale fallbacks cannot mask a
// majority outage — Collect must return ErrMajorityFailed while still
// exposing the per-agent results.
func TestMajorityFailureStillErrors(t *testing.T) {
	a1 := startAgent(t, fixedSampler("n1", 100, 1))
	a2 := startAgent(t, fixedSampler("n2", 200, 2))
	a3 := startAgent(t, fixedSampler("n3", 300, 3))
	c, err := NewCollector([]string{a1.Addr(), a2.Addr(), a3.Addr()},
		WithRetry(fastRetry(1)), WithTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Collect(ctx); err != nil {
		t.Fatalf("healthy epoch: %v", err)
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a3.Close(); err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(ctx)
	if !errors.Is(err, ErrMajorityFailed) {
		t.Fatalf("err = %v, want ErrMajorityFailed", err)
	}
	if len(results) != 3 {
		t.Fatalf("results should still be returned, got %d", len(results))
	}
	if !results[1].Stale || !results[2].Stale {
		t.Errorf("dead agents should carry stale readings: %+v, %+v", results[1], results[2])
	}
}

// countingServer is a bare-wire agent that counts TCP accepts, proving
// the collector reuses its persistent connection across epochs.
func countingServer(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var accepts atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				enc := json.NewEncoder(c)
				for sc.Scan() {
					r := Reading{NodeID: "counted", PowerW: 1}
					if err := enc.Encode(response{OK: true, Reading: &r}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &accepts
}

// TestPersistentConnectionReuse: five epochs plus a SetTarget must ride
// one TCP connection.
func TestPersistentConnectionReuse(t *testing.T) {
	addr, accepts := countingServer(t)
	c, err := NewCollector([]string{addr}, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for epoch := 0; epoch < 5; epoch++ {
		if _, err := c.Collect(ctx); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	if err := c.SetTarget(ctx, addr, 120); err != nil {
		t.Fatal(err)
	}
	if got := accepts.Load(); got != 1 {
		t.Errorf("server accepted %d connections, want 1 (persistent reuse)", got)
	}
}

// TestCollectorSetTargetRetries: enforcement traffic gets the same
// retry treatment as sampling.
func TestCollectorSetTargetRetries(t *testing.T) {
	s := &setSampler{}
	p := proxied(t, s, faultnet.NewFixedSchedule(faultnet.Reset))
	c, err := NewCollector([]string{p.Addr()}, WithRetry(fastRetry(3)), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.SetTarget(ctx, p.Addr(), 150); err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Reading.PowerW != 150 {
		t.Errorf("node at %v W, want 150", results[0].Reading.PowerW)
	}
	if err := c.SetTarget(ctx, "127.0.0.1:1", 100); err == nil ||
		!strings.Contains(err.Error(), "not in collector") {
		t.Errorf("unknown addr err = %v", err)
	}
}

// TestSetTargetRejectsNonFinite covers all three layers: the one-shot
// helper, the collector path, and the agent's own wire-side check.
func TestSetTargetRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := SetTarget(context.Background(), "127.0.0.1:1", bad, time.Second); err == nil ||
			!strings.Contains(err.Error(), "non-finite") {
			t.Errorf("SetTarget(%v) err = %v, want non-finite rejection", bad, err)
		}
	}
	c, err := NewCollector([]string{"127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetTarget(context.Background(), "127.0.0.1:1", math.NaN()); err == nil ||
		!strings.Contains(err.Error(), "non-finite") {
		t.Errorf("Collector.SetTarget(NaN) err = %v, want non-finite rejection", err)
	}
	// Agent side: a hand-built "set" request with a non-finite target is
	// rejected before it reaches the node's Setter.
	a := &Agent{sampler: &setSampler{}}
	if resp := a.handle(request{Op: "set", TargetW: math.NaN()}); resp.OK ||
		!strings.Contains(resp.Error, "non-finite") {
		t.Errorf("agent handle(set NaN) = %+v, want non-finite rejection", resp)
	}
}

// TestAgentOversizedLine: an over-limit request line draws a structured
// error response before the agent closes the connection, and the agent
// keeps serving other clients.
func TestAgentOversizedLine(t *testing.T) {
	a := startAgent(t, fixedSampler("x", 1, 1))
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, MaxLineBytes+16)
	for i := range huge {
		huge[i] = 'x'
	}
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no structured error before close: %v", err)
	}
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("error line not json: %v (%q)", err, line)
	}
	if resp.OK || !strings.Contains(resp.Error, "exceeds") {
		t.Errorf("response = %+v, want line-limit error", resp)
	}
	if err := Ping(context.Background(), a.Addr(), time.Second); err != nil {
		t.Errorf("agent dead after oversized line: %v", err)
	}
}

// TestCollectWithRandomDropSchedule runs many epochs through a seeded
// 20%-drop proxy: with retries and degraded mode, every epoch must
// produce a usable reading and the run must be reproducible.
func TestCollectWithRandomDropSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("drop faults spend real timeouts")
	}
	run := func(seed int64) (stale int, faults int64) {
		sched, err := faultnet.NewSchedule(seed, faultnet.Rates{Drop: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		p := proxied(t, fixedSampler("n1", 100, 5), sched)
		healthy := startAgent(t, fixedSampler("n2", 200, 6))
		c, err := NewCollector([]string{p.Addr(), healthy.Addr()},
			WithRetry(fastRetry(2)),
			WithTimeout(150*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for epoch := 0; epoch < 15; epoch++ {
			results, err := c.Collect(context.Background())
			if err != nil {
				t.Fatalf("seed %d epoch %d: %v", seed, epoch, err)
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("seed %d epoch %d agent %d: %v", seed, epoch, i, r.Err)
				}
				if r.Stale {
					stale++
				}
			}
		}
		return stale, p.Count(faultnet.Drop)
	}
	stale, drops := run(11)
	if drops == 0 {
		t.Error("schedule injected no drops; test exercised nothing")
	}
	stale2, drops2 := run(11)
	if stale2 != stale || drops2 != drops {
		t.Errorf("same seed diverged: stale %d vs %d, drops %d vs %d", stale, stale2, drops, drops2)
	}
}
