package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startAgent(t *testing.T, s Sampler) *Agent {
	t.Helper()
	a, err := NewAgent("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close agent: %v", err)
		}
	})
	return a
}

func fixedSampler(id string, powerW, perf float64) Sampler {
	return SamplerFunc(func() (Reading, error) {
		return Reading{NodeID: id, PowerW: powerW, Perf: perf, UnixMillis: time.Now().UnixMilli()}, nil
	})
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent("127.0.0.1:0", nil); err == nil {
		t.Error("nil sampler should error")
	}
	if _, err := NewAgent("256.256.256.256:0", fixedSampler("x", 1, 1)); err == nil {
		t.Error("bad addr should error")
	}
}

func TestCollectSingleAgent(t *testing.T) {
	a := startAgent(t, fixedSampler("node-1", 120.5, 987))
	c, err := NewCollector([]string{a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Reading.NodeID != "node-1" || r.Reading.PowerW != 120.5 || r.Reading.Perf != 987 {
		t.Errorf("reading = %+v", r.Reading)
	}
}

func TestCollectManyAgents(t *testing.T) {
	const n = 8
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		a := startAgent(t, fixedSampler(fmt.Sprintf("node-%d", i), float64(100+i), float64(i)))
		addrs[i] = a.Addr()
	}
	c, err := NewCollector(addrs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("agent %d: %v", i, r.Err)
			continue
		}
		if want := fmt.Sprintf("node-%d", i); r.Reading.NodeID != want {
			t.Errorf("result %d out of order: %q", i, r.Reading.NodeID)
		}
	}
}

func TestCollectAgentFailure(t *testing.T) {
	healthy := startAgent(t, fixedSampler("ok", 1, 1))
	failing := startAgent(t, SamplerFunc(func() (Reading, error) {
		return Reading{}, errors.New("sensor offline")
	}))
	c, err := NewCollector([]string{healthy.Addr(), failing.Addr()}, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("healthy agent failed: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "sensor offline") {
		t.Errorf("failing agent err = %v", results[1].Err)
	}
}

func TestCollectDeadAgent(t *testing.T) {
	a := startAgent(t, fixedSampler("x", 1, 1))
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector([]string{addr}, WithTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// A single dead agent with no last-known-good reading is a majority
	// failure: the rack is unobservable.
	results, err := c.Collect(context.Background())
	if !errors.Is(err, ErrMajorityFailed) {
		t.Errorf("err = %v, want ErrMajorityFailed", err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Errorf("dead agent should still report its error result, got %+v", results)
	}
}

func TestCollectContextCancelled(t *testing.T) {
	slow := startAgent(t, SamplerFunc(func() (Reading, error) {
		time.Sleep(2 * time.Second)
		return Reading{NodeID: "slow"}, nil
	}))
	c, err := NewCollector([]string{slow.Addr()}, WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Collect(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil); !errors.Is(err, ErrNoAgents) {
		t.Errorf("err = %v, want ErrNoAgents", err)
	}
}

func TestPing(t *testing.T) {
	a := startAgent(t, fixedSampler("x", 1, 1))
	if err := Ping(context.Background(), a.Addr(), time.Second); err != nil {
		t.Errorf("ping: %v", err)
	}
	if err := Ping(context.Background(), "127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("ping to closed port should fail")
	}
}

func TestAgentCloseIdempotent(t *testing.T) {
	a, err := NewAgent("127.0.0.1:0", fixedSampler("x", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestAgentConcurrentSamples(t *testing.T) {
	var calls atomic.Int64
	a := startAgent(t, SamplerFunc(func() (Reading, error) {
		calls.Add(1)
		return Reading{NodeID: "n"}, nil
	}))
	c, err := NewCollector([]string{a.Addr(), a.Addr(), a.Addr(), a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		results, err := c.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	if got := calls.Load(); got != 20 {
		t.Errorf("sampler calls = %d, want 20", got)
	}
}

// setSampler is a Sampler that also accepts power targets.
type setSampler struct {
	mu      sync.Mutex
	targetW float64
}

func (s *setSampler) Sample() (Reading, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Reading{NodeID: "settable", PowerW: s.targetW}, nil
}

func (s *setSampler) SetTarget(powerW float64) error {
	if powerW > 1000 {
		return errors.New("target above breaker rating")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targetW = powerW
	return nil
}

func TestSetTarget(t *testing.T) {
	s := &setSampler{}
	a := startAgent(t, s)
	ctx := context.Background()
	if err := SetTarget(ctx, a.Addr(), 150, time.Second); err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector([]string{a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Reading.PowerW != 150 {
		t.Errorf("node at %v W, want 150", results[0].Reading.PowerW)
	}
	// The node's own validation propagates over the wire.
	if err := SetTarget(ctx, a.Addr(), 5000, time.Second); err == nil ||
		!strings.Contains(err.Error(), "breaker") {
		t.Errorf("err = %v, want node validation error", err)
	}
}

func TestSetTargetOnPureSensor(t *testing.T) {
	a := startAgent(t, fixedSampler("sensor", 1, 1))
	err := SetTarget(context.Background(), a.Addr(), 100, time.Second)
	if err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Errorf("err = %v, want rejection", err)
	}
}

// TestAgentSurvivesGarbage sends raw junk at the agent: it must reply
// with an error line (or drop the connection) and keep serving.
func TestAgentSurvivesGarbage(t *testing.T) {
	a := startAgent(t, fixedSampler("x", 1, 1))
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("THIS IS NOT JSON\n{\"op\":\"frobnicate\"}\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("no response line %d", i)
		}
		var resp map[string]any
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("response %d not json: %v", i, err)
		}
		if ok, _ := resp["ok"].(bool); ok {
			t.Errorf("response %d claims ok for garbage", i)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	// The agent still serves real clients.
	if err := Ping(context.Background(), a.Addr(), time.Second); err != nil {
		t.Errorf("agent dead after garbage: %v", err)
	}
}
