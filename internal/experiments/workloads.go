package experiments

import (
	"fmt"

	"greenhetero/internal/metrics"
	"greenhetero/internal/runner"
	"greenhetero/internal/sim"
	"greenhetero/internal/workload"
)

// policyOrder is the presentation order of the five Table III policies.
var policyOrder = []string{"Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero"}

// workloadComparison runs the Figs. 9/10 scenario: every Figure-9
// workload on Comb1 under the insufficient-renewable regime (drained
// battery, no grid, supply laddering 45–95 % of the rack's demand scale),
// all five policies, with identical noise.
func workloadComparison(o Options) (map[string]map[string]*sim.Result, error) {
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	tr, err := scarcityTrace(defaultLadder, rackAnchorW(rack), perLevel(o))
	if err != nil {
		return nil, err
	}
	set := workload.Figure9Set()
	perWorkload, err := runner.Map(o.Parallelism, len(set), func(i int) (map[string]*sim.Result, error) {
		w := set[i]
		cfg := sim.Config{
			Rack:        rack,
			Workload:    w,
			Solar:       tr,
			Epochs:      tr.Len(),
			GridBudgetW: 0,
			InitialSoC:  0.6, // batteries drained: pure renewable scarcity
			Seed:        o.Seed,
			Intensity:   sim.ConstantIntensity(1),
		}
		results, err := sim.CompareParallel(cfg, freshPolicies(), o.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", w.ID, err)
		}
		return results, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]*sim.Result, len(set))
	for i, w := range set {
		out[w.ID] = perWorkload[i]
	}
	return out, nil
}

// Figure9 reproduces the performance comparison of 12 workloads under
// the five policies (Fig. 9), normalized to Uniform. Paper shape: mean
// ≈1.6x, Streamcluster best (≈2.2x), Memcached worst (≈1.2x), Mcf ≈1.3x,
// GreenHetero ≥ GreenHetero-a ≥ {Manual, GreenHetero-p} ≥ Uniform.
func Figure9(opts Options) (*Table, error) {
	o := opts.withDefaults()
	all, err := workloadComparison(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9",
		Title:  "Normalized performance of five policies, insufficient renewable power (vs Uniform)",
		Header: append([]string{"Workload"}, policyOrder...),
	}
	var gains []float64
	best, worst := "", ""
	bestV, worstV := -1.0, 99.0
	for _, w := range workload.Figure9Set() {
		results := all[w.ID]
		base := results["Uniform"].MeanPerfScarce()
		row := []string{w.Name}
		for _, p := range policyOrder {
			row = append(row, fmtX(results[p].MeanPerfScarce()/base))
		}
		t.Rows = append(t.Rows, row)
		g := results["GreenHetero"].MeanPerfScarce() / base
		gains = append(gains, g)
		if g > bestV {
			bestV, best = g, w.Name
		}
		if g < worstV {
			worstV, worst = g, w.Name
		}
	}
	mean, err := metrics.Mean(gains)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GreenHetero mean gain = %.2fx (paper ≈ 1.6x)", mean),
		fmt.Sprintf("best: %s %.2fx (paper: Streamcluster 2.2x); worst: %s %.2fx (paper: Memcached 1.2x)", best, bestV, worst, worstV),
	)
	return t, nil
}

// Figure10 reproduces the EPU comparison (Fig. 10), same runs as Fig. 9.
// Paper shape: mean ≈2.2x, Canneal best (≈2.7x), Web-search worst
// (≈1.1x); EPU gains correlate loosely with performance gains.
func Figure10(opts Options) (*Table, error) {
	o := opts.withDefaults()
	all, err := workloadComparison(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Normalized effective power utilization (EPU) of five policies (vs Uniform)",
		Header: append([]string{"Workload"}, policyOrder...),
	}
	var gains []float64
	best := ""
	bestV := -1.0
	for _, w := range workload.Figure9Set() {
		results := all[w.ID]
		base := results["Uniform"].MeanEPUScarce()
		row := []string{w.Name}
		for _, p := range policyOrder {
			row = append(row, fmtX(results[p].MeanEPUScarce()/base))
		}
		t.Rows = append(t.Rows, row)
		g := results["GreenHetero"].MeanEPUScarce() / base
		gains = append(gains, g)
		if g > bestV {
			bestV, best = g, w.Name
		}
	}
	mean, err := metrics.Mean(gains)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GreenHetero mean EPU gain = %.2fx (paper ≈ 2.2x; ours is flatter — see EXPERIMENTS.md)", mean),
		fmt.Sprintf("best: %s %.2fx (paper: Canneal 2.7x)", best, bestV),
	)
	return t, nil
}
