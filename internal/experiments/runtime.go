package experiments

import (
	"fmt"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/policy"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// runtimeDay runs the Fig. 8 / Fig. 11 scenario: a 24-hour SPECjbb run on
// Comb1 under a solar trace, GreenHetero vs Uniform.
func runtimeDay(id, title string, tr *trace.Trace, o Options) (*Table, error) {
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	epochs := 96
	if o.Quick {
		epochs = 24
	}
	cfg := sim.Config{
		Rack:        rack,
		Workload:    workloadByID(workload.SPECjbb),
		Solar:       tr,
		Epochs:      epochs,
		GridBudgetW: 1000,
		Seed:        o.Seed,
	}
	results, err := sim.CompareParallel(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}}, o.Parallelism)
	if err != nil {
		return nil, err
	}
	uni, gh := results["Uniform"], results["GreenHetero"]

	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Hour", "Case", "Renewable(W)", "Supply(W)", "PAR", "Perf vs Uniform", "Batt out(W)", "Batt in(W)", "Grid(W)", "SoC"},
	}
	printEvery := 4
	if o.Quick {
		printEvery = 2
	}
	for i, e := range gh.Epochs {
		if i%printEvery != 0 {
			continue
		}
		ratio := 1.0
		if uni.Epochs[i].Perf > 0 {
			ratio = e.Perf / uni.Epochs[i].Perf
		} else if e.Perf > 0 {
			ratio = 99
		}
		par := 0.0
		var fsum float64
		for _, f := range e.Fractions {
			fsum += f
		}
		if fsum > 0 {
			par = e.Fractions[0] / fsum
		}
		t.Rows = append(t.Rows, []string{
			fmtF(float64(i)/4, 1),
			e.Case.String(),
			fmtF(e.RenewableW, 0),
			fmtF(e.SupplyW, 0),
			fmtF(par, 2),
			fmtX(ratio),
			fmtF(e.BatteryOutW, 0),
			fmtF(e.BatteryInW, 0),
			fmtF(e.GridW, 0),
			fmtF(e.BatterySoC, 2),
		})
	}

	scarceGain := gh.MeanPerfScarce() / uni.MeanPerfScarce()
	var dodEpochs int
	for _, e := range gh.Epochs {
		if e.BatterySoC <= 0.605 {
			dodEpochs++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean scarce-epoch (Cases B/C) gain over Uniform = %.2fx", scarceGain),
		fmt.Sprintf("mean PAR = %.0f%% (paper fig8 ≈ 58%%)", gh.MeanPAR()*100),
		fmt.Sprintf("epochs at DoD floor = %d (%.1f h)", dodEpochs, float64(dodEpochs)/4),
		fmt.Sprintf("grid energy: GreenHetero %.0f Wh, Uniform %.0f Wh", gh.GridEnergyWh(), uni.GridEnergyWh()),
		fmt.Sprintf("battery cycles this day: %d → estimated lifetime %.1f years at the 1300-cycle rating",
			gh.BatteryCycles, battery.LifetimeYears(gh.BatteryCycles, time.Duration(len(gh.Epochs))*15*time.Minute)),
	)
	return t, nil
}

// Figure8 reproduces the High-trace runtime experiment (Fig. 8):
// per-epoch performance/PAR plus the battery and grid activity. Expected
// shape: ≈1.5x over Uniform during Cases B/C, parity in Case A, one long
// overnight discharge to DoD followed by grid takeover and charging.
func Figure8(opts Options) (*Table, error) {
	o := opts.withDefaults()
	tr, err := solar.DefaultHigh(2200)
	if err != nil {
		return nil, err
	}
	return runtimeDay("fig8", "24h SPECjbb runtime on the High solar trace (GreenHetero vs Uniform)", tr, o)
}

// Figure11 reproduces the Low-trace runtime experiment (Fig. 11):
// weaker, fluctuating generation causes more frequent battery activity
// and smaller (≈1.2x) gains concentrated in Cases A/B.
func Figure11(opts Options) (*Table, error) {
	o := opts.withDefaults()
	tr, err := solar.DefaultLow(2200)
	if err != nil {
		return nil, err
	}
	t, err := runtimeDay("fig11", "24h SPECjbb runtime on the Low solar trace (GreenHetero vs Uniform)", tr, o)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "expected vs fig8: more charge/discharge transitions, more grid usage (Fig. 11)")
	return t, nil
}
