package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"abl-dbupdate", "abl-noise", "abl-predictor", "abl-solver",
		"ext-cluster", "ext-mixed",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"fig3", "fig6", "fig8", "fig9",
		"tab1", "tab2", "tab3", "tab4",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Error("unknown id should error")
	}
}

// TestAllExperimentsProduceTables runs every registered experiment in
// Quick mode and checks structural sanity (every row matches the header,
// renders without error).
func TestAllExperimentsProduceTables(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if tbl.ID != id {
				t.Errorf("table id = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header %d", i, len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			if _, err := tbl.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), id) {
				t.Error("rendered output missing id")
			}
		})
	}
}

// parseRatio converts "1.53x" cells back to floats.
func parseRatio(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("parse ratio %q: %v", cell, err)
	}
	return v
}

func columnIndex(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, h := range tbl.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tbl.Header)
	return -1
}

func TestFigure3Shape(t *testing.T) {
	tbl, err := Run("fig3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find the best-performance row; paper puts the optimum near 65 %.
	perfCol := columnIndex(t, tbl, "Perf (norm. to 50%)")
	epuCol := columnIndex(t, tbl, "EPU")
	bestPerf, bestPAR := -1.0, ""
	var epu50, epu100 float64
	for _, row := range tbl.Rows {
		perf, err := strconv.ParseFloat(row[perfCol], 64)
		if err != nil {
			t.Fatal(err)
		}
		if perf > bestPerf {
			bestPerf, bestPAR = perf, row[0]
		}
		switch row[0] {
		case "50%":
			epu50, err = strconv.ParseFloat(row[epuCol], 64)
			if err != nil {
				t.Fatal(err)
			}
		case "100%":
			epu100, err = strconv.ParseFloat(row[epuCol], 64)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if bestPAR != "65%" && bestPAR != "70%" && bestPAR != "60%" {
		t.Errorf("optimum PAR = %s, paper ≈ 65%%", bestPAR)
	}
	if bestPerf < 1.3 || bestPerf > 1.8 {
		t.Errorf("best perf = %v, paper ≈ 1.5x", bestPerf)
	}
	if epu50 < 0.80 || epu50 > 0.93 {
		t.Errorf("EPU at 50%% = %v, paper ≈ 0.86", epu50)
	}
	if epu100 >= epu50 {
		t.Errorf("EPU at 100%% (%v) should collapse below uniform (%v)", epu100, epu50)
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig9 sweep")
	}
	tbl, err := Run("fig9", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ghCol := columnIndex(t, tbl, "GreenHetero")
	gaCol := columnIndex(t, tbl, "GreenHetero-a")
	var sum float64
	var best, worst string
	bestV, worstV := -1.0, 99.0
	for _, row := range tbl.Rows {
		g := parseRatio(t, row[ghCol])
		sum += g
		if g > bestV {
			bestV, best = g, row[0]
		}
		if g < worstV {
			worstV, worst = g, row[0]
		}
		// Adaptive at least on par with frozen.
		if ga := parseRatio(t, row[gaCol]); g < ga-0.05 {
			t.Errorf("%s: GreenHetero %v below GreenHetero-a %v", row[0], g, ga)
		}
	}
	mean := sum / float64(len(tbl.Rows))
	if mean < 1.4 || mean > 1.9 {
		t.Errorf("mean gain = %v, paper ≈ 1.6x", mean)
	}
	if best != "Streamcluster" {
		t.Errorf("best workload = %s (%vx), paper: Streamcluster", best, bestV)
	}
	if worst != "Memcached" && worst != "Mcf" {
		t.Errorf("worst workload = %s (%vx), paper: Memcached (1.2x)", worst, worstV)
	}
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig13 sweep")
	}
	tbl, err := Run("fig13", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ghCol := columnIndex(t, tbl, "GreenHetero")
	gains := map[string]float64{}
	for _, row := range tbl.Rows {
		gains[row[0]] = parseRatio(t, row[ghCol])
	}
	// Near-homogeneous pairs benefit least (paper: ~3% for Comb2/Comb4).
	for _, homog := range []string{"Comb2", "Comb4"} {
		for _, hetero := range []string{"Comb1", "Comb5"} {
			if gains[homog] >= gains[hetero] {
				t.Errorf("%s gain %v ≥ %s gain %v; heterogeneous racks should benefit more",
					homog, gains[homog], hetero, gains[hetero])
			}
		}
	}
	if gains["Comb1"] < 1.2 {
		t.Errorf("Comb1 gain = %v, paper ≈ 1.5x", gains["Comb1"])
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig14 sweep")
	}
	tbl, err := Run("fig14", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ghCol := columnIndex(t, tbl, "GreenHetero")
	gains := map[string]float64{}
	for _, row := range tbl.Rows {
		gains[row[0]] = parseRatio(t, row[ghCol])
	}
	if gains["Srad_v1"] < 2.0 {
		t.Errorf("Srad_v1 gain = %v, paper 4.6x — should dominate", gains["Srad_v1"])
	}
	for name, g := range gains {
		if name == "Srad_v1" {
			continue
		}
		if g > gains["Srad_v1"] {
			t.Errorf("%s gain %v above Srad_v1 %v", name, g, gains["Srad_v1"])
		}
	}
}

func TestFigure12Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig12 sweep")
	}
	tbl, err := Run("fig12", Options{})
	if err != nil {
		t.Fatal(err)
	}
	gainCol := columnIndex(t, tbl, "Gain")
	first := parseRatio(t, tbl.Rows[0][gainCol])
	last := parseRatio(t, tbl.Rows[len(tbl.Rows)-1][gainCol])
	if first <= last {
		t.Errorf("gain at tightest budget (%v) should exceed gain at loosest (%v)", first, last)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tbl, err := Run("tab3", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"### tab3", "| Policy |", "|---|", "| GreenHetero |"} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + separator + 5 policies + blank/notes... at least 7 lines.
	if len(lines) < 7 {
		t.Errorf("markdown too short: %d lines", len(lines))
	}
}
