package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the golden files from the current output. It
// exists for intentional table-format or scenario changes only — the
// whole point of the goldens is that hot-path optimizations (the
// accumulator-based refits, the warm-started solver, the preallocated
// epoch buffers) must NOT need it: they are required to reproduce the
// reference output byte for byte.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden experiment outputs")

// TestExperimentsGolden locks every experiment id's quick-mode output
// (seed 7, the Options default) against goldens captured before the
// epoch hot-path optimizations landed. It is the equivalence gate of
// DESIGN §5g: the optimized fit/solver/sim paths run unconditionally —
// there is no opt-out flag — so any byte of drift in any table fails
// here.
func TestExperimentsGolden(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			var buf bytes.Buffer
			if _, err := tbl.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo(%s): %v", id, err)
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden for %s (run with -update-golden to create): %v", id, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden %s\n--- golden ---\n%s\n--- got ---\n%s",
					id, path, want, buf.Bytes())
			}
		})
	}
}
