package experiments

import (
	"bytes"
	"testing"
)

// render runs an experiment and returns its fully rendered text table.
func render(t *testing.T, id string, opts Options) []byte {
	t.Helper()
	tbl, err := Run(id, opts)
	if err != nil {
		t.Fatalf("Run(%s, parallelism=%d): %v", id, opts.Parallelism, err)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSerialParallelEquivalence is the determinism contract of the
// parallel experiment engine: EVERY registered experiment id — in
// particular the multi-run sweeps, ablations, and extensions — must
// produce byte-identical output at Parallelism 1 (the exact legacy
// serial loop) and Parallelism 8. Iterating all of IDs() means a newly
// registered experiment is held to the contract automatically.
func TestSerialParallelEquivalence(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := render(t, id, Options{Quick: true, Parallelism: 1})
			parallel := render(t, id, Options{Quick: true, Parallelism: 8})
			if !bytes.Equal(serial, parallel) {
				t.Errorf("serial and parallel output differ for %s:\n--- parallelism=1 ---\n%s\n--- parallelism=8 ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// TestDefaultParallelismEquivalence spot-checks that the default knob
// (0 → one worker per CPU) also matches serial output on a
// representative multi-run experiment of each family.
func TestDefaultParallelismEquivalence(t *testing.T) {
	for _, id := range []string{"fig9", "fig12", "abl-noise", "ext-cluster"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := render(t, id, Options{Quick: true, Parallelism: 1})
			def := render(t, id, Options{Quick: true})
			if !bytes.Equal(serial, def) {
				t.Errorf("default parallelism output differs from serial for %s", id)
			}
		})
	}
}
