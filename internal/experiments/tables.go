package experiments

import (
	"strconv"
	"strings"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/workload"
)

// Table1 reproduces Table I: the evaluation workload catalog.
func Table1(Options) (*Table, error) {
	t := &Table{
		ID:     "tab1",
		Title:  "Workload description (Table I)",
		Header: []string{"Workload", "Suite", "Performance metric", "Interactive", "GPU port"},
	}
	for _, w := range workload.Catalog() {
		t.Rows = append(t.Rows, []string{
			w.Name,
			w.Suite.String(),
			w.Metric,
			boolYN(w.Interactive),
			boolYN(w.GPUCapable()),
		})
	}
	t.Notes = append(t.Notes,
		"response-surface parameters (util/gamma/parallelism) are this reproduction's calibration; see DESIGN.md")
	return t, nil
}

// Table2 reproduces Table II: the server catalog.
func Table2(Options) (*Table, error) {
	t := &Table{
		ID:     "tab2",
		Title:  "Server description (Table II)",
		Header: []string{"Server type", "Frequency", "Sockets", "Cores", "Peak power", "Idle power", "DVFS states"},
	}
	for _, s := range server.Catalog() {
		t.Rows = append(t.Rows, []string{
			s.Model,
			fmtF(s.BaseFreqMHz/1000, 1) + " GHz",
			strconv.Itoa(s.Sockets),
			strconv.Itoa(s.Cores),
			fmtF(s.PeakW, 0) + "W",
			fmtF(s.IdleW, 0) + "W",
			strconv.Itoa(len(s.States())),
		})
	}
	return t, nil
}

// Table3 reproduces Table III: the compared power-allocation policies.
func Table3(Options) (*Table, error) {
	descriptions := map[string]string{
		"Uniform":       "allocate power to each server uniformly, heterogeneity-oblivious",
		"Manual":        "statically try all allocations at 10% granularity, keep the best per supply level",
		"GreenHetero-p": "allocate by descending energy efficiency from the database",
		"GreenHetero-a": "database-driven solver without runtime database updates",
		"GreenHetero":   "database-driven solver with adaptive runtime updates",
	}
	t := &Table{
		ID:     "tab3",
		Title:  "Power allocation policies (Table III)",
		Header: []string{"Policy", "Updates DB", "Description"},
	}
	for _, p := range policy.All() {
		t.Rows = append(t.Rows, []string{p.Name(), boolYN(p.UpdatesDB()), descriptions[p.Name()]})
	}
	return t, nil
}

// Table4 reproduces Table IV: the server combinations.
func Table4(Options) (*Table, error) {
	workloadsFor := func(name string) string {
		if name == "Comb6" {
			ids := make([]string, 0, 4)
			for _, w := range workload.Comb6Set() {
				ids = append(ids, w.Name)
			}
			return strings.Join(ids, ", ")
		}
		return "SPECjbb"
	}
	t := &Table{
		ID:     "tab4",
		Title:  "Server combinations (Table IV)",
		Header: []string{"Combination", "Server types", "Servers", "Rack peak", "Workloads"},
	}
	for _, c := range combos {
		rack, err := comboRack(c.name)
		if err != nil {
			return nil, err
		}
		models := make([]string, 0, len(c.servers))
		for _, g := range rack.Groups() {
			models = append(models, g.Spec.Model)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			strings.Join(models, ", "),
			strconv.Itoa(rack.Servers()),
			fmtF(rack.PeakW(), 0) + "W",
			workloadsFor(c.name),
		})
	}
	return t, nil
}

func boolYN(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
