package experiments

import (
	"fmt"

	"greenhetero/internal/cluster"
	"greenhetero/internal/policy"
	"greenhetero/internal/runner"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

// ExtensionCluster is the multi-rack datacenter extension (paper §IV-A
// discusses the distributed rack-level deployment; cross-rack capacity
// coordination is the paper's future work). Three heterogeneous racks
// share one site PV plant, site battery bank, and site grid budget under
// the per-epoch fleet coordinator; the experiment crosses the site
// allocator with the per-rack allocation policy:
//
//	site uniform    × rack Uniform       — fully heterogeneity-oblivious
//	site uniform    × rack GreenHetero   — the paper's deployment
//	site demand     × rack GreenHetero   — demand-aware site split
//	site water-fill × rack GreenHetero   — heterogeneity-awareness at
//	                                       both levels
func ExtensionCluster(opts Options) (*Table, error) {
	o := opts.withDefaults()
	epochs := 96
	if o.Quick {
		epochs = 24
	}
	// Site PV sized so the racks live mostly in Cases B/C.
	tr, err := solar.Generate(solar.Config{
		Profile:   solar.High,
		PeakWatts: 4200,
		Days:      7,
		Step:      epochStep,
		Seed:      1,
	})
	if err != nil {
		return nil, err
	}
	buildRacks := func(p func() policy.Policy) ([]cluster.RackConfig, error) {
		specs := []struct {
			combo    string
			workload string
		}{
			{"Comb1", workload.SPECjbb},
			{"Comb2", workload.Canneal},
			{"Comb6", workload.SradV1},
		}
		out := make([]cluster.RackConfig, 0, len(specs))
		for _, sp := range specs {
			rack, err := comboRack(sp.combo)
			if err != nil {
				return nil, err
			}
			out = append(out, cluster.RackConfig{
				Rack:     rack,
				Workload: workloadByID(sp.workload),
				Policy:   p(),
			})
		}
		return out, nil
	}

	type variant struct {
		name   string
		alloc  cluster.Allocator
		policy func() policy.Policy
	}
	variants := []variant{
		{"uniform PV / Uniform racks", cluster.Uniform{}, func() policy.Policy { return policy.Uniform{} }},
		{"uniform PV / GreenHetero racks", cluster.Uniform{}, func() policy.Policy { return policy.Solver{Adaptive: true} }},
		{"demand PV / GreenHetero racks", cluster.DemandProportional{}, func() policy.Policy { return policy.Solver{Adaptive: true} }},
		{"water-fill PV / GreenHetero racks", cluster.HierarchicalPAR{}, func() policy.Policy { return policy.Solver{Adaptive: true} }},
	}

	t := &Table{
		ID:     "ext-cluster",
		Title:  "Extension: 3-rack green datacenter — site allocator × per-rack policy",
		Header: []string{"Deployment", "Site perf", "vs oblivious", "Mean EPU", "Grid (kWh)"},
	}
	siteResults, err := runner.Map(o.Parallelism, len(variants), func(i int) (*cluster.FleetResult, error) {
		v := variants[i]
		racks, err := buildRacks(v.policy)
		if err != nil {
			return nil, err
		}
		return cluster.Run(cluster.Config{
			Racks:           racks,
			Solar:           tr,
			Allocator:       v.alloc,
			SiteGridBudgetW: 2500,
			Epochs:          epochs,
			Seed:            o.Seed,
			Parallelism:     o.Parallelism,
		})
	})
	if err != nil {
		return nil, err
	}
	base := siteResults[0].TotalPerf()
	for i, v := range variants {
		res := siteResults[i]
		perf := res.TotalPerf()
		t.Rows = append(t.Rows, []string{
			v.name,
			fmtF(perf, 0),
			fmtX(perf / base),
			fmtF(res.MeanEPU(), 3),
			fmtF(res.TotalGridWh()/1000, 1),
		})
	}
	t.Notes = append(t.Notes,
		"expected: per-rack GreenHetero recovers most of the gain; demand-aware PV division adds the rest",
		fmt.Sprintf("site: Comb1(SPECjbb) + Comb2(Canneal) + Comb6(Srad_v1), %d epochs", epochs),
	)
	return t, nil
}

// ExtensionMixed evaluates a mixed rack: the Xeon group serves SPECjbb
// while the i5 group serves Memcached — collocated services on one PDU,
// which is how production racks actually look. The database keys per
// (configuration, workload) pair (Algorithm 1's c & w), so the solver
// optimizes across two different response curves simultaneously.
func ExtensionMixed(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	tr, err := scarcityTrace(defaultLadder, rackAnchorW(rack)*0.9, perLevel(o))
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Rack: rack,
		GroupWorkloads: []workload.Workload{
			workloadByID(workload.SPECjbb),   // e5-2620 group
			workloadByID(workload.Memcached), // i5-4460 group
		},
		Solar:       tr,
		Epochs:      tr.Len(),
		GridBudgetW: 0,
		InitialSoC:  0.6,
		Seed:        o.Seed,
		Intensity:   sim.ConstantIntensity(1),
	}
	results, err := sim.CompareParallel(cfg, freshPolicies(), o.Parallelism)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-mixed",
		Title:  "Extension: mixed rack (Xeons serve SPECjbb, i5s serve Memcached), scarcity ladder",
		Header: []string{"Policy", "Scarce perf", "vs Uniform", "Scarce EPU"},
	}
	base := results["Uniform"].MeanPerfScarce()
	for _, name := range policyOrder {
		r := results[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmtF(r.MeanPerfScarce(), 0),
			fmtX(r.MeanPerfScarce() / base),
			fmtF(r.MeanEPUScarce(), 3),
		})
	}
	t.Notes = append(t.Notes,
		"expected: heterogeneity-awareness still pays with per-group workloads; the DB holds one projection per (config, workload) pair",
	)
	return t, nil
}
