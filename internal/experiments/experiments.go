// Package experiments contains one runner per table and figure of the
// paper's evaluation (§V), plus the §III case study and the ablations
// called out in DESIGN.md. Each runner reproduces the corresponding
// artifact as a text table: the same rows/series the paper reports,
// regenerated from the simulation substrate.
//
// Runners are addressed by id ("tab1" … "tab4", "fig3", "fig6",
// "fig8" … "fig14", "abl-…"); the ghbench command and the repository's
// benchmarks both dispatch through Run.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// Table is a reproduced artifact: header, rows, and prose notes
// (paper-vs-measured commentary).
type Table struct {
	// ID is the experiment id, e.g. "fig9".
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, one string per column.
	Rows [][]string
	// Notes carry paper-expectation commentary.
	Notes []string
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteMarkdown renders the table as GitHub-flavored Markdown (the
// format EXPERIMENTS.md embeds).
func (t *Table) WriteMarkdown(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteString(" ")
			sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sb.WriteString("|")
	sb.WriteString(strings.Repeat("---|", len(t.Header)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Options tune a runner.
type Options struct {
	// Seed drives measurement noise (default 7, the value used in the
	// committed EXPERIMENTS.md numbers).
	Seed int64
	// Quick shrinks epoch counts for use inside testing.B loops.
	Quick bool
	// Parallelism bounds the concurrent simulation runs a multi-run
	// experiment fans out (sweep cells × policies): 0 means one worker
	// per CPU (runtime.GOMAXPROCS(0)), 1 is the exact legacy serial
	// loop. Every run owns its RNG, database, and policy instances, so
	// the produced Table is bit-identical at every parallelism level —
	// a contract enforced by the serial-vs-parallel equivalence tests.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// Runner produces one artifact.
type Runner func(Options) (*Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"tab1":          Table1,
	"tab2":          Table2,
	"tab3":          Table3,
	"tab4":          Table4,
	"fig3":          Figure3,
	"fig6":          Figure6,
	"fig8":          Figure8,
	"fig9":          Figure9,
	"fig10":         Figure10,
	"fig11":         Figure11,
	"fig12":         Figure12,
	"fig13":         Figure13,
	"fig14":         Figure14,
	"ext-cluster":   ExtensionCluster,
	"ext-mixed":     ExtensionMixed,
	"abl-dbupdate":  AblationDBUpdate,
	"abl-solver":    AblationSolverGrid,
	"abl-predictor": AblationPredictor,
	"abl-noise":     AblationNoise,
}

// IDs lists the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run dispatches an experiment by id.
func Run(id string, opts Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts)
}

// ---- shared helpers ----

// expStart anchors all experiment traces.
var expStart = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

// epochStep is the paper's 15-minute scheduling epoch.
const epochStep = 15 * time.Minute

// comboSpec names the Table IV server combinations.
type comboSpec struct {
	name    string
	servers []string
}

// combos reproduces Table IV (5 servers per configuration, §V-A.2).
var combos = []comboSpec{
	{"Comb1", []string{server.XeonE52620, server.CoreI54460}},
	{"Comb2", []string{server.XeonE52603, server.CoreI54460}},
	{"Comb3", []string{server.XeonE52650, server.XeonE52620}},
	{"Comb4", []string{server.CoreI78700K, server.CoreI54460}},
	{"Comb5", []string{server.XeonE52620, server.XeonE52603, server.CoreI54460}},
	{"Comb6", []string{server.XeonE52620, server.TitanXp}},
}

// comboRack builds the rack for a Table IV combination.
func comboRack(name string) (*server.Rack, error) {
	for _, c := range combos {
		if c.name != name {
			continue
		}
		groups := make([]server.Group, 0, len(c.servers))
		for _, id := range c.servers {
			spec, err := server.Lookup(id)
			if err != nil {
				return nil, err
			}
			groups = append(groups, server.Group{Spec: spec, Count: 5})
		}
		return server.NewRack(strings.ToLower(name), groups...)
	}
	return nil, fmt.Errorf("experiments: unknown combination %q", name)
}

// scarcityTrace sweeps supply fractions of anchorW, perLevel epochs each.
func scarcityTrace(fracs []float64, anchorW float64, perLevel int) (*trace.Trace, error) {
	vals := make([]float64, 0, len(fracs)*perLevel)
	for _, f := range fracs {
		for i := 0; i < perLevel; i++ {
			vals = append(vals, f*anchorW)
		}
	}
	return trace.New("scarcity", expStart, 15*time.Minute, vals)
}

// defaultLadder is the "renewable power is insufficient" regime used for
// Figs. 9/10/13/14: supply sweeps 45–95 % of the rack's SPECjbb-scale
// demand.
var defaultLadder = []float64{0.45, 0.55, 0.65, 0.75, 0.85, 0.95}

// perLevel returns epochs per scarcity level, honoring Quick mode.
func perLevel(o Options) int {
	if o.Quick {
		return 2
	}
	return 8
}

// rackAnchorW approximates the rack's full SPECjbb-scale demand.
func rackAnchorW(r *server.Rack) float64 { return r.PeakW() * 0.83 }

// freshPolicies returns a new Table III policy set (Manual is stateful).
func freshPolicies() []policy.Policy { return policy.All() }

// fmtF formats a float at the given precision.
//
//lint:ghlint ignore units pure display formatter; it takes values of every dimension by design
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// fmtX formats a ratio as "1.53x".
func fmtX(v float64) string { return fmt.Sprintf("%.2fx", v) }

// workloadByID panics on unknown catalog ids (compile-time constants).
func workloadByID(id string) workload.Workload {
	w, err := workload.Lookup(id)
	if err != nil {
		panic(err)
	}
	return w
}
