package experiments

import (
	"fmt"

	"greenhetero/internal/metrics"
	"greenhetero/internal/power"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

// Figure3 reproduces the §III-B case study: two heterogeneous servers
// (Xeon E5-2620 vs Core i5-4460) under a fixed 220 W budget running
// SPECjbb, sweeping the power allocation ratio (PAR) to Server A. The
// paper finds EPU ≈ 0.86 at the uniform 50 % split, a collapse at
// PAR = 100 %, and both EPU and performance peaking near PAR ≈ 65 %.
func Figure3(Options) (*Table, error) {
	const budgetW = 220.0
	specA, err := server.Lookup(server.XeonE52620)
	if err != nil {
		return nil, err
	}
	specB, err := server.Lookup(server.CoreI54460)
	if err != nil {
		return nil, err
	}
	w := workloadByID(workload.SPECjbb)

	evaluate := func(par float64) (perf, epu float64) {
		pa := par * budgetW
		pb := (1 - par) * budgetW
		perf = workload.Perf(specA, w, pa) + workload.Perf(specB, w, pb)
		used := workload.UsedPowerW(specA, w, pa) + workload.UsedPowerW(specB, w, pb)
		return perf, metrics.EPU(used, budgetW)
	}
	perf50, _ := evaluate(0.50)

	t := &Table{
		ID:     "fig3",
		Title:  "EPU and normalized performance vs power allocation ratio (case study, 220W, SPECjbb)",
		Header: []string{"PAR to Server A", "EPU", "Perf (norm. to 50%)"},
	}
	bestPAR, bestPerf := 0.0, -1.0
	for par := 0.35; par <= 1.0001; par += 0.05 {
		perf, epu := evaluate(par)
		t.Rows = append(t.Rows, []string{
			fmtF(par*100, 0) + "%",
			fmtF(epu, 2),
			fmtF(perf/perf50, 2),
		})
		if perf > bestPerf {
			bestPerf, bestPAR = perf, par
		}
	}
	_, epu50 := evaluate(0.50)
	_, epu100 := evaluate(1.00)
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimum PAR = %.0f%% (paper ≈ 65%%), best/uniform perf = %.2fx (paper ≈ 1.5x)", bestPAR*100, bestPerf/perf50),
		fmt.Sprintf("EPU at 50%% = %.2f (paper ≈ 0.86); EPU at 100%% = %.2f (paper ≈ 0.37, ours counts capped-at-peak draw)", epu50, epu100),
	)
	return t, nil
}

// Figure6 reproduces the power-source selection illustration: a 24-hour
// diurnal rack-demand pattern against a one-day solar trace, classifying
// every epoch into Cases A/B/C.
func Figure6(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	tr, err := solar.DefaultHigh(2200)
	if err != nil {
		return nil, err
	}
	w := workloadByID(workload.SPECjbb)
	intensity := sim.DiurnalIntensity(96)

	t := &Table{
		ID:     "fig6",
		Title:  "Power source selection over a 24h day (Case A: renewable, B: +battery, C: battery/grid)",
		Header: []string{"Hour", "Renewable (W)", "Demand (W)", "Case"},
	}
	counts := map[power.Case]int{}
	step := 4 // print hourly, classify every epoch
	for e := 0; e < 96; e++ {
		ren := tr.At(e)
		var demand float64
		for _, g := range rack.Groups() {
			demand += float64(g.Count) * workload.PeakEffWAt(g.Spec, w, intensity(e))
		}
		plan, err := power.Select(power.Inputs{
			RenewableW: ren, DemandW: demand,
			BatteryDischargeW: 4800, BatteryChargeW: 4800, GridBudgetW: 1000,
		})
		if err != nil {
			return nil, err
		}
		counts[plan.Case]++
		if e%step == 0 {
			t.Rows = append(t.Rows, []string{
				fmtF(float64(e)/4, 1),
				fmtF(ren, 0),
				fmtF(demand, 0),
				plan.Case.String(),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("case distribution over the day: A=%d B=%d C=%d epochs (seed %d)", counts[power.CaseA], counts[power.CaseB], counts[power.CaseC], o.Seed),
		"expected shape: C overnight, B at dawn/dusk shoulders, A through midday (Fig. 6)",
	)
	return t, nil
}
