package experiments

import (
	"fmt"

	"greenhetero/internal/policy"
	"greenhetero/internal/runner"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/solver"
	"greenhetero/internal/timeseries"
	"greenhetero/internal/workload"
)

// AblationDBUpdate isolates Algorithm 1's runtime database updates:
// GreenHetero vs GreenHetero-a on the diurnal 24h run, where load
// intensity drifts away from the training-run operating point. Updates
// should recover most of the drift-induced loss.
func AblationDBUpdate(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	tr, err := solar.DefaultHigh(2200)
	if err != nil {
		return nil, err
	}
	epochs := 96
	if o.Quick {
		epochs = 24
	}
	t := &Table{
		ID:     "abl-dbupdate",
		Title:  "Ablation: runtime database updates (GreenHetero vs GreenHetero-a), diurnal drift",
		Header: []string{"Workload", "GreenHetero-a perf", "GreenHetero perf", "Update benefit"},
	}
	wids := []string{workload.SPECjbb, workload.Streamcluster, workload.WebSearch}
	rows, err := runner.Map(o.Parallelism, len(wids), func(i int) ([]string, error) {
		wid := wids[i]
		cfg := sim.Config{
			Rack:        rack,
			Workload:    workloadByID(wid),
			Solar:       tr,
			Epochs:      epochs,
			GridBudgetW: 1000,
			Seed:        o.Seed,
		}
		results, err := sim.CompareParallel(cfg, []policy.Policy{
			policy.Solver{Adaptive: false},
			policy.Solver{Adaptive: true},
		}, o.Parallelism)
		if err != nil {
			return nil, err
		}
		frozen := results["GreenHetero-a"].MeanPerf()
		adaptive := results["GreenHetero"].MeanPerf()
		return []string{wid, fmtF(frozen, 0), fmtF(adaptive, 0), fmtX(adaptive / frozen)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "expected: benefit > 1x — stale training-run projections mis-range the solver under load drift")
	return t, nil
}

// AblationSolverGrid sweeps the solver's search granularity, bridging
// from Manual's 10 % grid down to 0.5 %, on fixed projections.
func AblationSolverGrid(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	w := workloadByID(workload.SPECjbb)
	models := make([]solver.GroupModel, 0, rack.NumGroups())
	for _, g := range rack.Groups() {
		g := g
		models = append(models, solver.GroupModel{
			Count:    g.Count,
			IdleW:    g.Spec.IdleW,
			PeakEffW: workload.PeakEffW(g.Spec, w),
			Perf:     func(p float64) float64 { return workload.Perf(g.Spec, w, p) }, //lint:ghlint ignore allocfree offline ablation binds a truth-surface closure, not the epoch hot path
		})
	}
	t := &Table{
		ID:     "abl-solver",
		Title:  "Ablation: solver grid granularity (SPECjbb truth surfaces, supply = 80% demand)",
		Header: []string{"Grid step", "Refinement", "Objective", "Evaluations"},
	}
	// 80 % of demand: deep enough that allocation matters, shallow
	// enough that the optimum is an off-grid interior/corner point
	// (at deeper scarcity the optimum collapses to "run only the small
	// group", which every granularity finds).
	supply := rackAnchorW(rack) * 0.80
	type variant struct {
		name   string
		opts   solver.Options
		refine string
	}
	variants := []variant{
		{"10%", solver.Options{GridStep: 0.10, RefinePasses: -1}, "off"},
		{"10%", solver.Options{GridStep: 0.10}, "on"},
		{"5%", solver.Options{GridStep: 0.05, RefinePasses: -1}, "off"},
		{"1%", solver.Options{GridStep: 0.01, RefinePasses: -1}, "off"},
		{"1%", solver.Options{GridStep: 0.01}, "on"},
		{"0.5%", solver.Options{GridStep: 0.005}, "on"},
	}
	var base float64
	for i, v := range variants {
		res, err := solver.Optimize(models, supply, v.opts)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = res.PredictedPerf
		}
		t.Rows = append(t.Rows, []string{
			v.name, v.refine,
			fmt.Sprintf("%.4f (%.2f%% over 10%% grid)", res.PredictedPerf, 100*(res.PredictedPerf/base-1)),
			fmt.Sprintf("%d", res.Evaluations),
		})
	}
	_ = o
	t.Notes = append(t.Notes, "expected: monotone objective improvement at increasing evaluation cost; refinement recovers most of a coarse grid's loss")
	return t, nil
}

// AblationPredictor compares three predictors on the fluctuating Low
// trace: a naive last-value predictor (α=1, β≈0), the paper's trained
// Holt, and the Holt-Winters seasonal extension (period = one day) —
// both for one-step-ahead SSE on the raw trace and for end-to-end
// performance through the controller.
func AblationPredictor(opts Options) (*Table, error) {
	o := opts.withDefaults()
	tr, err := solar.DefaultLow(2200)
	if err != nil {
		return nil, err
	}
	const perDay = 96
	// One-step-ahead SSE comparison on the raw trace.
	trained, err := timeseries.Train(tr.Values)
	if err != nil {
		return nil, err
	}
	naiveSSE, err := timeseries.SSE(tr.Values, 1, 0)
	if err != nil {
		return nil, err
	}
	seasonal, err := timeseries.TrainSeasonal(tr.Values, perDay)
	if err != nil {
		return nil, err
	}

	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	epochs := 96
	if o.Quick {
		epochs = 24
	}
	mustHolt := func(a, b float64) func() timeseries.Predictor {
		return func() timeseries.Predictor {
			h, err := timeseries.NewHolt(a, b)
			if err != nil {
				panic(err) // parameters validated above
			}
			return h
		}
	}
	factories := []func() timeseries.Predictor{
		mustHolt(1, 1e-9),
		mustHolt(trained.Alpha, trained.Beta),
		func() timeseries.Predictor {
			h, err := timeseries.NewHoltWinters(seasonal.Alpha, seasonal.Beta, seasonal.Gamma, perDay)
			if err != nil {
				panic(err) // parameters validated above
			}
			return h
		},
	}
	perfs, err := runner.Map(o.Parallelism, len(factories), func(i int) (float64, error) {
		cfg := sim.Config{
			Rack:             rack,
			Workload:         workloadByID(workload.SPECjbb),
			Solar:            tr,
			Epochs:           epochs,
			GridBudgetW:      1000,
			Seed:             o.Seed,
			PredictorFactory: factories[i],
		}
		res, err := sim.Run(withPolicy(cfg, policy.Solver{Adaptive: true}))
		if err != nil {
			return 0, err
		}
		return res.MeanPerf(), nil
	})
	if err != nil {
		return nil, err
	}
	naivePerf, holtPerf, hwPerf := perfs[0], perfs[1], perfs[2]

	t := &Table{
		ID:     "abl-predictor",
		Title:  "Ablation: naive vs Holt vs Holt-Winters predictors (Low trace)",
		Header: []string{"Predictor", "Parameters", "1-step SSE", "Mean perf"},
	}
	t.Rows = append(t.Rows,
		[]string{"naive last-value", "α=1.00 β=0.00", fmtF(naiveSSE, 0), fmtF(naivePerf, 0)},
		[]string{"Holt (paper, trained)", fmt.Sprintf("α=%.2f β=%.2f", trained.Alpha, trained.Beta), fmtF(trained.SSE, 0), fmtF(holtPerf, 0)},
		[]string{"Holt-Winters (seasonal ext.)", fmt.Sprintf("α=%.2f β=%.2f γ=%.2f m=%d", seasonal.Alpha, seasonal.Beta, seasonal.Gamma, perDay), fmtF(seasonal.SSE, 0), fmtF(hwPerf, 0)},
	)
	t.Notes = append(t.Notes,
		"expected SSE ordering: Holt-Winters < Holt ≤ naive (solar is strongly diurnal)",
		"end-to-end perf differences are modest: enforcement re-plans sources against measured power; only the PAR rides on the forecast",
	)
	return t, nil
}

// AblationNoise sweeps training-run measurement noise to show how the
// adaptive updates insulate GreenHetero from bad initial profiles.
func AblationNoise(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	tr, err := scarcityTrace(defaultLadder, rackAnchorW(rack), perLevel(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-noise",
		Title:  "Ablation: training-run noise vs policy robustness (SPECjbb, scarcity ladder)",
		Header: []string{"Training noise x", "GreenHetero-a perf", "GreenHetero perf", "Adaptive advantage"},
	}
	noises := []float64{1, 3, 6, 10}
	rows, err := runner.Map(o.Parallelism, len(noises), func(i int) ([]string, error) {
		cfg := sim.Config{
			Rack:          rack,
			Workload:      workloadByID(workload.SPECjbb),
			Solar:         tr,
			Epochs:        tr.Len(),
			GridBudgetW:   0,
			InitialSoC:    0.6,
			Seed:          o.Seed,
			Intensity:     sim.ConstantIntensity(1),
			TrainingNoise: noises[i],
		}
		results, err := sim.CompareParallel(cfg, []policy.Policy{
			policy.Solver{Adaptive: false},
			policy.Solver{Adaptive: true},
		}, o.Parallelism)
		if err != nil {
			return nil, err
		}
		frozen := results["GreenHetero-a"].MeanPerfScarce()
		adaptive := results["GreenHetero"].MeanPerfScarce()
		return []string{
			fmtF(noises[i], 0), fmtF(frozen, 0), fmtF(adaptive, 0), fmtX(adaptive / frozen),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "expected: the adaptive advantage grows with training noise (Algorithm 1's rationale, §IV-B.5)")
	return t, nil
}

// withPolicy returns cfg with the policy set (Config is a value type).
func withPolicy(cfg sim.Config, p policy.Policy) sim.Config {
	cfg.Policy = p
	return cfg
}
