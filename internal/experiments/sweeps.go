package experiments

import (
	"fmt"

	"greenhetero/internal/cost"
	"greenhetero/internal/metrics"
	"greenhetero/internal/policy"
	"greenhetero/internal/runner"
	"greenhetero/internal/sim"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// Figure12 reproduces the grid-power-budget sweep (Fig. 12): SPECjbb on
// Comb1 with drained batteries and no renewable generation, so the rack
// runs entirely on a capped grid feed. The scarcer the budget, the larger
// GreenHetero's advantage — which is how GreenHetero lets operators
// under-provision the grid infrastructure (§V-B.4).
func Figure12(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	epochs := 24
	if o.Quick {
		epochs = 8
	}
	night, err := trace.New("night", expStart, epochStep, make([]float64, epochs))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig12",
		Title:  "Performance under different grid power budgets (batteries drained)",
		Header: []string{"Grid budget (W)", "Uniform perf", "GreenHetero perf", "Gain", "Grid bill ($/day-equiv)"},
	}
	tariff := cost.DefaultTariff()
	budgets := []float64{500, 600, 700, 800, 900, 1000, 1100, 1200, 1300, 1400}
	rows, err := runner.Map(o.Parallelism, len(budgets), func(i int) ([]string, error) {
		budget := budgets[i]
		cfg := sim.Config{
			Rack:        rack,
			Workload:    workloadByID(workload.SPECjbb),
			Solar:       night,
			Epochs:      epochs,
			GridBudgetW: budget,
			InitialSoC:  0.6,
			Seed:        o.Seed,
			Intensity:   sim.ConstantIntensity(1),
		}
		results, err := sim.CompareParallel(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}}, o.Parallelism)
		if err != nil {
			return nil, err
		}
		uni := results["Uniform"].MeanPerf()
		gh := results["GreenHetero"].MeanPerf()
		gain := 0.0
		if uni > 0 {
			gain = gh / uni
		} else if gh > 0 {
			gain = 99
		}
		ghRes := results["GreenHetero"]
		bill, err := cost.FromSeries(ghRes.GridSeriesW(), ghRes.EpochHours(), tariff)
		if err != nil {
			return nil, err
		}
		return []string{
			fmtF(budget, 0), fmtF(uni, 0), fmtF(gh, 0), fmtX(gain),
			fmt.Sprintf("%.2f (peak %.2fkW)", bill.Total, bill.PeakKW),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"expected shape: gain shrinks as the budget approaches rack demand (abundance), grows under tight budgets",
		"the paper reads this as GreenHetero enabling grid under-provisioning: every kW of peak feed avoided saves $13.61 in demand charges",
	)
	return t, nil
}

// Figure13 reproduces the server-combination comparison (Fig. 13):
// SPECjbb across Comb1–Comb5 under the scarcity ladder, all five
// policies. Paper shape: Comb2/Comb4 (similar power profiles) ≈ 1.0x —
// effectively homogeneous racks; Comb1/Comb3 ≈ 1.5x; Comb5 (3 types)
// ≈ 1.6x.
func Figure13(opts Options) (*Table, error) {
	o := opts.withDefaults()
	t := &Table{
		ID:     "fig13",
		Title:  "SPECjbb performance across server combinations (vs Uniform)",
		Header: append([]string{"Combination"}, policyOrder...),
	}
	// Every combination shares the same physical supply (the paper runs
	// all combos on one testbed): the ladder is anchored to Comb1's
	// SPECjbb demand. Racks with lighter demand (Comb2/Comb4) therefore
	// sit in mild scarcity and behave near-homogeneously, while hungrier
	// racks (Comb3/Comb5) are deep in scarcity where allocation matters.
	w := workloadByID(workload.SPECjbb)
	comb1, err := comboRack("Comb1")
	if err != nil {
		return nil, err
	}
	var anchor float64
	for _, g := range comb1.Groups() {
		anchor += float64(g.Count) * workload.PeakEffW(g.Spec, w)
	}
	// Slightly shallower than the fig9 ladder: the paper's combo sweep
	// stays above total blackout even for the hungriest rack.
	fig13Ladder := []float64{0.55, 0.65, 0.75, 0.85, 0.95}
	tr, err := scarcityTrace(fig13Ladder, anchor, perLevel(o))
	if err != nil {
		return nil, err
	}
	cells := combos[:5] // Comb6 is the GPU rack of fig14
	rows, err := runner.Map(o.Parallelism, len(cells), func(i int) ([]string, error) {
		c := cells[i]
		rack, err := comboRack(c.name)
		if err != nil {
			return nil, err
		}
		cfg := sim.Config{
			Rack:        rack,
			Workload:    w,
			Solar:       tr,
			Epochs:      tr.Len(),
			GridBudgetW: 0,
			InitialSoC:  0.6,
			Seed:        o.Seed,
			Intensity:   sim.ConstantIntensity(1),
		}
		results, err := sim.CompareParallel(cfg, freshPolicies(), o.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		base := results["Uniform"].MeanPerfScarce()
		row := []string{c.name}
		for _, p := range policyOrder {
			row = append(row, fmtX(results[p].MeanPerfScarce()/base))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper shape: Comb2/Comb4 near 1x (near-homogeneous power profiles), Comb1/Comb3 ≈ 1.5x, Comb5 ≈ 1.6x",
	)
	return t, nil
}

// Figure14 reproduces the GPU-platform comparison (Fig. 14): the Comb6
// rack (Xeon E5-2620 + Titan Xp) on the four Rodinia-style workloads.
// Paper shape: Srad_v1 up to 4.6x (strong GPU affinity), average ≈ 2.5x,
// Cfd smallest (CPU and GPU nearly tied).
func Figure14(opts Options) (*Table, error) {
	o := opts.withDefaults()
	rack, err := comboRack("Comb6")
	if err != nil {
		return nil, err
	}
	// The GPU rack's scarcity band sits lower relative to nameplate
	// because the Titan's idle floor dominates.
	tr, err := scarcityTrace([]float64{0.45, 0.55, 0.65, 0.75}, rack.PeakW()*0.85, perLevel(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig14",
		Title:  "Performance of Comb6 (CPU+GPU) for the heterogeneous-computing workloads (vs Uniform)",
		Header: append([]string{"Workload"}, policyOrder...),
	}
	set := workload.Comb6Set()
	type cell struct {
		row  []string
		gain float64
	}
	cellsOut, err := runner.Map(o.Parallelism, len(set), func(i int) (cell, error) {
		w := set[i]
		cfg := sim.Config{
			Rack:        rack,
			Workload:    w,
			Solar:       tr,
			Epochs:      tr.Len(),
			GridBudgetW: 0,
			InitialSoC:  0.6,
			Seed:        o.Seed,
			Intensity:   sim.ConstantIntensity(1),
		}
		results, err := sim.CompareParallel(cfg, freshPolicies(), o.Parallelism)
		if err != nil {
			return cell{}, fmt.Errorf("%s: %w", w.ID, err)
		}
		base := results["Uniform"].MeanPerfScarce()
		row := []string{w.Name}
		for _, p := range policyOrder {
			row = append(row, fmtX(results[p].MeanPerfScarce()/base))
		}
		return cell{row: row, gain: results["GreenHetero"].MeanPerfScarce() / base}, nil
	})
	if err != nil {
		return nil, err
	}
	var gains []float64
	for _, c := range cellsOut {
		t.Rows = append(t.Rows, c.row)
		gains = append(gains, c.gain)
	}
	mean, err := metrics.Mean(gains)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GreenHetero mean gain = %.2fx (paper ≈ 2.5x); Srad_v1 should dominate (paper 4.6x), Cfd smallest", mean),
	)
	return t, nil
}
