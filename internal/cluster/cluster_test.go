package cluster

import (
	"errors"
	"math"
	"testing"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

func rackOf(t *testing.T, name string, ids []string, count int) *server.Rack {
	t.Helper()
	groups := make([]server.Group, 0, len(ids))
	for _, id := range ids {
		spec, err := server.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, server.Group{Spec: spec, Count: count})
	}
	r, err := server.NewRack(name, groups...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustWorkload(t *testing.T, id string) workload.Workload {
	t.Helper()
	w, err := workload.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func twoRackConfig(t *testing.T) Config {
	t.Helper()
	tr, err := solar.DefaultHigh(4500)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Racks: []RackConfig{
			{
				Rack:        rackOf(t, "rack-a", []string{server.XeonE52620, server.CoreI54460}, 5),
				Workload:    mustWorkload(t, workload.SPECjbb),
				Policy:      policy.Solver{Adaptive: true},
				GridBudgetW: 1000,
			},
			{
				Rack:        rackOf(t, "rack-b", []string{server.XeonE52603, server.CoreI54460}, 5),
				Workload:    mustWorkload(t, workload.Canneal),
				Policy:      policy.Solver{Adaptive: true},
				GridBudgetW: 800,
			},
		},
		Solar:  tr,
		Epochs: 48,
		Seed:   7,
	}
}

func TestRunValidation(t *testing.T) {
	base := twoRackConfig(t)
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"no racks", func(c *Config) { c.Racks = nil }},
		{"nil solar", func(c *Config) { c.Solar = nil }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"nil rack", func(c *Config) { c.Racks[0].Rack = nil }},
		{"nil policy", func(c *Config) { c.Racks[0].Policy = nil }},
		{"empty workload", func(c *Config) { c.Racks[0].Workload = workload.Workload{} }},
		{"bad strategy", func(c *Config) { c.Shares = ShareStrategy(9) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := twoRackConfig(t)
			tt.mut(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
	_ = base
}

func TestRunAggregates(t *testing.T) {
	cfg := twoRackConfig(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Racks) != 2 {
		t.Fatalf("racks = %d", len(res.Racks))
	}
	var shareSum float64
	for _, rr := range res.Racks {
		if rr.Result == nil {
			t.Fatalf("rack %s missing result", rr.Name)
		}
		if len(rr.Result.Epochs) != cfg.Epochs {
			t.Errorf("rack %s epochs = %d", rr.Name, len(rr.Result.Epochs))
		}
		shareSum += rr.PVShare
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("PV shares sum to %v", shareSum)
	}
	if got, want := res.TotalPerf(), res.Racks[0].Result.MeanPerf()+res.Racks[1].Result.MeanPerf(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalPerf = %v, want %v", got, want)
	}
	if res.MeanEPU() <= 0 || res.MeanEPU() > 1 {
		t.Errorf("MeanEPU = %v", res.MeanEPU())
	}
	if res.TotalGridWh() < 0 {
		t.Errorf("grid = %v", res.TotalGridWh())
	}
	if res.TotalPerfScarce() <= 0 {
		t.Errorf("scarce perf = %v", res.TotalPerfScarce())
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := twoRackConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPerf() != b.TotalPerf() {
		t.Errorf("non-deterministic: %v vs %v", a.TotalPerf(), b.TotalPerf())
	}
}

func TestShareStrategies(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Shares = ShareDemandProportional
	fr, err := shares(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rack A (E5-2620 heavy, SPECjbb) demands far more than rack B
	// (small servers, low-util Canneal).
	if fr[0] <= fr[1] {
		t.Errorf("demand shares = %v, want rack A larger", fr)
	}
	cfg.Shares = ShareUniform
	fr, err = shares(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fr[0] != 0.5 || fr[1] != 0.5 {
		t.Errorf("uniform shares = %v", fr)
	}
}

func TestDemandProportionalBeatsUniformShares(t *testing.T) {
	// A scarce site: demand-aware PV division should raise total
	// datacenter throughput over an equal split, because the hungry
	// rack is the one that converts extra watts into throughput.
	scarce, err := trace.New("scarce", simStart(), cfgStep(), constVals(900, 48))
	if err != nil {
		t.Fatal(err)
	}
	build := func(strategy ShareStrategy) float64 {
		cfg := twoRackConfig(t)
		cfg.Solar = scarce
		cfg.Shares = strategy
		for i := range cfg.Racks {
			cfg.Racks[i].GridBudgetW = 0
			cfg.Racks[i].InitialSoC = 0.6
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalPerf()
	}
	uniform := build(ShareUniform)
	demand := build(ShareDemandProportional)
	if demand <= uniform {
		t.Errorf("demand-proportional %v not above uniform %v", demand, uniform)
	}
}

func TestShareStrategyString(t *testing.T) {
	if ShareUniform.String() != "uniform" || ShareDemandProportional.String() != "demand-proportional" {
		t.Error("String mismatch")
	}
	if ShareStrategy(9).String() != "ShareStrategy(9)" {
		t.Errorf("unknown = %v", ShareStrategy(9))
	}
}

func TestRackFailurePropagates(t *testing.T) {
	// One rack with an invalid battery config: its simulation fails and
	// the site run must surface the error rather than return a partial
	// result.
	cfg := twoRackConfig(t)
	cfg.Epochs = 5
	cfg.Racks[1].Battery.CapacityWh = -5
	if _, err := Run(cfg); err == nil {
		t.Error("rack failure should propagate")
	}
}

// test helpers shared across cases.
func simStart() time.Time    { return time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC) }
func cfgStep() time.Duration { return 15 * time.Minute }
func constVals(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
