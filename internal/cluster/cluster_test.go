package cluster

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

var updateFleetGolden = flag.Bool("update-fleet-golden", false, "rewrite the fleet golden fixture")

func rackOf(t *testing.T, name string, ids []string, count int) *server.Rack {
	t.Helper()
	groups := make([]server.Group, 0, len(ids))
	for _, id := range ids {
		spec, err := server.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, server.Group{Spec: spec, Count: count})
	}
	r, err := server.NewRack(name, groups...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustWorkload(t *testing.T, id string) workload.Workload {
	t.Helper()
	w, err := workload.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func twoRackConfig(t *testing.T) Config {
	t.Helper()
	tr, err := solar.DefaultHigh(4500)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Racks: []RackConfig{
			{
				Rack:     rackOf(t, "rack-a", []string{server.XeonE52620, server.CoreI54460}, 5),
				Workload: mustWorkload(t, workload.SPECjbb),
				Policy:   policy.Solver{Adaptive: true},
			},
			{
				Rack:     rackOf(t, "rack-b", []string{server.XeonE52603, server.CoreI54460}, 5),
				Workload: mustWorkload(t, workload.Canneal),
				Policy:   policy.Solver{Adaptive: true},
			},
		},
		Solar:           tr,
		SiteGridBudgetW: 1800,
		Epochs:          48,
		Seed:            7,
	}
}

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"no racks", func(c *Config) { c.Racks = nil }},
		{"nil solar", func(c *Config) { c.Solar = nil }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"nil rack", func(c *Config) { c.Racks[0].Rack = nil }},
		{"nil policy", func(c *Config) { c.Racks[0].Policy = nil }},
		{"no workload", func(c *Config) { c.Racks[0].Workload = workload.Workload{} }},
		{"negative site grid", func(c *Config) { c.SiteGridBudgetW = -1 }},
		{"bad initial SoC", func(c *Config) { c.InitialSoC = 1.5 }},
		{"group workload count", func(c *Config) {
			c.Racks[0].GroupWorkloads = []workload.Workload{c.Racks[0].Workload}
		}},
		{"duplicate rack names", func(c *Config) {
			c.Racks[1].Rack = rackOf(t, "rack-a", []string{server.XeonE52603}, 5)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := twoRackConfig(t)
			tt.mut(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestAllocatorByName(t *testing.T) {
	for _, a := range Allocators() {
		got, err := AllocatorByName(a.Name())
		if err != nil || got.Name() != a.Name() {
			t.Errorf("AllocatorByName(%q) = %v, %v", a.Name(), got, err)
		}
	}
	if _, err := AllocatorByName("nope"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown allocator err = %v", err)
	}
}

func TestHierarchicalPARWeights(t *testing.T) {
	out := make([]float64, 2)

	// Abundant supply: grants equal bids — demand-proportional.
	if err := (HierarchicalPAR{}).Weights([]float64{100, 300}, Supply{RenewableW: 1000}, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.25) > 1e-12 || math.Abs(out[1]-0.75) > 1e-12 {
		t.Errorf("abundant weights = %v, want [0.25 0.75]", out)
	}

	// Scarce supply (200 W for 400 W of bids): max-min fair — both
	// racks rise to the 100 W fill level, so the small bidder is made
	// whole and the shortfall lands on the large one.
	if err := (HierarchicalPAR{}).Weights([]float64{100, 300}, Supply{RenewableW: 200}, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("scarce weights = %v, want [0.5 0.5]", out)
	}

	// Mid scarcity (250 W): rack 0 saturates at its 100 W bid, rack 1
	// absorbs the remaining 150 W.
	if err := (HierarchicalPAR{}).Weights([]float64{100, 300}, Supply{RenewableW: 250}, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.4) > 1e-12 || math.Abs(out[1]-0.6) > 1e-12 {
		t.Errorf("mid-scarce weights = %v, want [0.4 0.6]", out)
	}

	// Zero bids fall back to uniform.
	if err := (HierarchicalPAR{}).Weights([]float64{0, 0}, Supply{RenewableW: 250}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.5 || out[1] != 0.5 {
		t.Errorf("zero-bid weights = %v, want uniform", out)
	}
}

func TestRunAggregates(t *testing.T) {
	cfg := twoRackConfig(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocator != "uniform" {
		t.Errorf("default allocator = %q", res.Allocator)
	}
	if len(res.Racks) != 2 {
		t.Fatalf("racks = %d", len(res.Racks))
	}
	if len(res.Site) != cfg.Epochs {
		t.Fatalf("site trace = %d epochs, want %d", len(res.Site), cfg.Epochs)
	}
	for _, rr := range res.Racks {
		if rr.Result == nil {
			t.Fatalf("rack %s missing result", rr.Name)
		}
		if len(rr.Result.Epochs) != cfg.Epochs {
			t.Errorf("rack %s epochs = %d", rr.Name, len(rr.Result.Epochs))
		}
	}
	for _, se := range res.Site {
		if se.BatterySoC < 0 || se.BatterySoC > 1 {
			t.Fatalf("epoch %d site SoC = %v", se.Epoch, se.BatterySoC)
		}
		if se.BidW <= 0 {
			t.Fatalf("epoch %d bid = %v", se.Epoch, se.BidW)
		}
	}
	if got, want := res.TotalPerf(), res.Racks[0].Result.MeanPerf()+res.Racks[1].Result.MeanPerf(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalPerf = %v, want %v", got, want)
	}
	if res.MeanEPU() <= 0 || res.MeanEPU() > 1 {
		t.Errorf("MeanEPU = %v", res.MeanEPU())
	}
	if res.TotalGridWh() < 0 {
		t.Errorf("grid = %v", res.TotalGridWh())
	}
	if res.TotalPerfScarce() <= 0 {
		t.Errorf("scarce perf = %v", res.TotalPerfScarce())
	}
}

// fleetEqual bit-compares two fleet runs: every rack's epoch records
// and the full site battery trace.
func fleetEqual(t *testing.T, label string, a, b *FleetResult) {
	t.Helper()
	if a.BatteryCycles != b.BatteryCycles {
		t.Errorf("%s: cycles %d vs %d", label, a.BatteryCycles, b.BatteryCycles)
	}
	if len(a.Site) != len(b.Site) || len(a.Racks) != len(b.Racks) {
		t.Fatalf("%s: shape mismatch", label)
	}
	for i := range a.Site {
		if a.Site[i] != b.Site[i] {
			t.Fatalf("%s: site epoch %d differs:\n%+v\n%+v", label, i, a.Site[i], b.Site[i])
		}
	}
	for i := range a.Racks {
		if a.Racks[i].Name != b.Racks[i].Name {
			t.Fatalf("%s: rack %d name %q vs %q", label, i, a.Racks[i].Name, b.Racks[i].Name)
		}
		ae, be := a.Racks[i].Result.Epochs, b.Racks[i].Result.Epochs
		if len(ae) != len(be) {
			t.Fatalf("%s: rack %s epoch count", label, a.Racks[i].Name)
		}
		for e := range ae {
			if !reflect.DeepEqual(ae[e], be[e]) {
				t.Fatalf("%s: rack %s epoch %d differs:\n%+v\n%+v",
					label, a.Racks[i].Name, e, ae[e], be[e])
			}
		}
	}
}

// TestFleetDeterminism proves serial and parallel fleet runs
// bit-identical for every allocator strategy (per-rack epoch records
// and the site battery trace), at parallelism 1, 4, and per-CPU.
func TestFleetDeterminism(t *testing.T) {
	for _, alloc := range Allocators() {
		alloc := alloc
		t.Run(alloc.Name(), func(t *testing.T) {
			cfg := twoRackConfig(t)
			cfg.Allocator = alloc
			cfg.Parallelism = 1
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{4, 0} {
				cfg.Parallelism = par
				got, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fleetEqual(t, fmt.Sprintf("%s/parallelism=%d", alloc.Name(), par), ref, got)
			}
		})
	}
}

// TestMixedRackBids is the regression test for mixed-rack blindness:
// two racks with identical hardware, one running the heavy workload on
// both groups, the other a heavy+light mix via GroupWorkloads. The
// demand-proportional allocator must price the mixed rack off its
// per-group workloads and feed the all-heavy rack more PV.
func TestMixedRackBids(t *testing.T) {
	scarce, err := trace.New("scarce", simStart(), cfgStep(), constVals(900, 24))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{server.XeonE52620, server.XeonE52603}
	cfg := Config{
		Racks: []RackConfig{
			{
				Rack:     rackOf(t, "all-heavy", ids, 5),
				Workload: mustWorkload(t, workload.SPECjbb),
				Policy:   policy.Solver{Adaptive: true},
			},
			{
				Rack: rackOf(t, "mixed", ids, 5),
				GroupWorkloads: []workload.Workload{
					mustWorkload(t, workload.SPECjbb),
					mustWorkload(t, workload.Canneal),
				},
				Policy: policy.Solver{Adaptive: true},
			},
		},
		Solar:     scarce,
		Allocator: DemandProportional{},
		Epochs:    24,
		Seed:      11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pv := func(i int) float64 {
		var sum float64
		for _, e := range res.Racks[i].Result.Epochs {
			sum += e.RenewableW
		}
		return sum
	}
	if heavy, mixed := pv(0), pv(1); heavy <= mixed {
		t.Errorf("all-heavy rack PV %v W not above mixed rack %v W — mixed rack was priced on a single workload", heavy, mixed)
	}
}

// TestThousandRackSmoke steps a 1000-rack fleet through full epochs.
func TestThousandRackSmoke(t *testing.T) {
	tr, err := solar.DefaultHigh(4500 * 1000)
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{server.XeonE52620, server.XeonE52603, server.CoreI54460}
	wls := []string{workload.SPECjbb, workload.Canneal}
	racks := make([]RackConfig, 1000)
	for i := range racks {
		racks[i] = RackConfig{
			Rack:     rackOf(t, fmt.Sprintf("rack-%04d", i), []string{specs[i%len(specs)]}, 4),
			Workload: mustWorkload(t, wls[i%len(wls)]),
			Policy:   policy.Solver{Adaptive: true},
		}
	}
	cfg := Config{
		Racks:           racks,
		Solar:           tr,
		Allocator:       HierarchicalPAR{},
		SiteGridBudgetW: 1000 * 1000,
		Epochs:          3,
		Seed:            42,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Racks) != 1000 || len(res.Site) != cfg.Epochs {
		t.Fatalf("shape: %d racks, %d site epochs", len(res.Racks), len(res.Site))
	}
	if res.TotalPerf() <= 0 {
		t.Errorf("TotalPerf = %v", res.TotalPerf())
	}
}

// fleetGolden is the serialized shape of the golden fixture: the full
// site trace plus per-rack aggregates, enough to diff any allocator
// refactor.
type fleetGolden struct {
	Allocator string
	Cycles    int
	Site      []SiteEpoch
	Racks     []struct {
		Name     string
		MeanPerf float64
		MeanEPU  float64
		GridWh   float64
	}
}

// TestFleetGolden pins a small hierarchical-PAR fleet run to a
// committed fixture so future allocator refactors are diffable. Rerun
// with -update-fleet-golden to regenerate after an intentional change.
func TestFleetGolden(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Allocator = HierarchicalPAR{}
	cfg.Epochs = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var g fleetGolden
	g.Allocator = res.Allocator
	g.Cycles = res.BatteryCycles
	g.Site = res.Site
	for _, rr := range res.Racks {
		g.Racks = append(g.Racks, struct {
			Name     string
			MeanPerf float64
			MeanEPU  float64
			GridWh   float64
		}{rr.Name, rr.Result.MeanPerf(), rr.Result.MeanEPU(), rr.Result.GridEnergyWh()})
	}
	got, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "fleet_golden.json")
	if *updateFleetGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update-fleet-golden)", err)
	}
	if string(got) != string(want) {
		t.Errorf("fleet golden drifted (rerun with -update-fleet-golden if intentional):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRackFailurePropagates(t *testing.T) {
	// An unbuildable rack session (empty workload ID in the group list)
	// must surface the rack's name rather than return a partial result.
	cfg := twoRackConfig(t)
	cfg.Racks[1].GroupWorkloads = []workload.Workload{
		cfg.Racks[1].Workload, {},
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("rack failure should propagate")
	}
	if !strings.Contains(err.Error(), "rack-b") {
		t.Errorf("error %v does not name the failing rack", err)
	}
}

// test helpers shared across cases.
func simStart() time.Time    { return time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC) }
func cfgStep() time.Duration { return 15 * time.Minute }
func constVals(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
