package cluster

import (
	"errors"
	"testing"

	"greenhetero/internal/sim"
)

// scriptedDisturber adapts a function to the Disturber interface.
type scriptedDisturber func(epoch int, d *Disturbance)

func (f scriptedDisturber) Disturb(epoch int, d *Disturbance) { f(epoch, d) }

// TestNoOpDisturberUnchanged pins degraded mode's zero-cost contract:
// a disturber that never disturbs anything must leave the run
// bit-identical to a plain fleet run.
func TestNoOpDisturberUnchanged(t *testing.T) {
	plain, err := Run(twoRackConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoRackConfig(t)
	cfg.Disturber = scriptedDisturber(func(int, *Disturbance) {})
	disturbed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleetEqual(t, "no-op disturber", plain, disturbed)
	for _, h := range disturbed.Health {
		if h.FailedEpochs != 0 || h.QuarantinedEpochs != 0 || len(h.Quarantines) != 0 {
			t.Errorf("rack %s health dirtied by a no-op disturber: %+v", h.Name, h)
		}
	}
}

// TestBreakerQuarantineAndRejoin walks one rack through the full
// breaker cycle: two down epochs open it, the cooldown skips two more,
// and the half-open probe rejoins it with the recovery time recorded.
func TestBreakerQuarantineAndRejoin(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Disturber = scriptedDisturber(func(e int, d *Disturbance) {
		if e == 2 || e == 3 {
			d.Down[1] = true
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Site) != cfg.Epochs {
		t.Fatalf("site epochs %d of %d: an epoch aborted", len(res.Site), cfg.Epochs)
	}
	h := res.Health[1]
	if h.FailedEpochs != 2 || h.QuarantinedEpochs != 2 {
		t.Errorf("failed=%d quarantined=%d, want 2/2", h.FailedEpochs, h.QuarantinedEpochs)
	}
	if h.ServedEpochs != cfg.Epochs-4 {
		t.Errorf("served=%d, want %d", h.ServedEpochs, cfg.Epochs-4)
	}
	if len(h.Quarantines) != 1 {
		t.Fatalf("quarantines = %+v", h.Quarantines)
	}
	q := h.Quarantines[0]
	if q.FromEpoch != 2 || q.RejoinEpoch != 6 || q.RecoveryEpochs != 4 {
		t.Errorf("quarantine = %+v, want {2 6 4}", q)
	}
	// The healthy rack is untouched, and the site flags the degradation.
	if h0 := res.Health[0]; h0.ServedEpochs != cfg.Epochs || h0.FailedEpochs != 0 {
		t.Errorf("healthy rack health: %+v", h0)
	}
	for e, se := range res.Site {
		wantDown := e >= 2 && e <= 5 // 2 failed + 2 cooling epochs
		if (se.DownRacks > 0) != wantDown {
			t.Errorf("epoch %d DownRacks=%d, want down=%v", e, se.DownRacks, wantDown)
		}
	}
	// The missing rack's share was redistributed (priced by its last bid).
	if res.Site[3].RedistributedW <= 0 {
		t.Error("no redistribution recorded while rack 1 was down")
	}
	if res.Site[0].RedistributedW != 0 {
		t.Errorf("redistribution %v before any failure", res.Site[0].RedistributedW)
	}
}

// TestBreakerDisabled: a negative threshold records failures but never
// quarantines, so the rack rejoins the moment the outage clears.
func TestBreakerDisabled(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Breaker = &BreakerConfig{FailureThreshold: -1}
	cfg.Disturber = scriptedDisturber(func(e int, d *Disturbance) {
		if e >= 2 && e < 5 {
			d.Down[1] = true
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Health[1]
	if h.FailedEpochs != 3 || h.QuarantinedEpochs != 0 || len(h.Quarantines) != 0 {
		t.Errorf("health = %+v, want 3 failures and no quarantine", h)
	}
	if h.ServedEpochs != cfg.Epochs-3 {
		t.Errorf("served=%d, want %d", h.ServedEpochs, cfg.Epochs-3)
	}
}

// TestOpenQuarantineAtRunEnd: a rack still quarantined when the run
// ends gets an open episode with RejoinEpoch -1.
func TestOpenQuarantineAtRunEnd(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Disturber = scriptedDisturber(func(e int, d *Disturbance) {
		if e >= cfg.Epochs-3 {
			d.Down[1] = true
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Health[1]
	if len(h.Quarantines) != 1 {
		t.Fatalf("quarantines = %+v", h.Quarantines)
	}
	q := h.Quarantines[0]
	if q.FromEpoch != cfg.Epochs-3 || q.RejoinEpoch != -1 || q.RecoveryEpochs != -1 {
		t.Errorf("open quarantine = %+v", q)
	}
}

// TestPartitionHeldAllocation: a partitioned rack keeps serving under
// its last granted allocation — no failures, no quarantine, and its
// held share comes off the top of the split.
func TestPartitionHeldAllocation(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Disturber = scriptedDisturber(func(e int, d *Disturbance) {
		if e >= 3 && e < 6 {
			d.Partitioned[1] = true
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Health[1]
	if h.ServedEpochs != cfg.Epochs || h.PartitionedEpochs != 3 {
		t.Errorf("served=%d partitioned=%d, want %d/3", h.ServedEpochs, h.PartitionedEpochs, cfg.Epochs)
	}
	if h.FailedEpochs != 0 || len(h.Quarantines) != 0 {
		t.Errorf("partition charged the breaker: %+v", h)
	}
	if got := len(res.Racks[1].Result.Epochs); got != cfg.Epochs {
		t.Errorf("rack 1 recorded %d epochs, want %d", got, cfg.Epochs)
	}
}

// TestAbsentStartup: pre-startup epochs are skipped silently with no
// breaker or SLO bookkeeping, and the session stays on the site clock.
func TestAbsentStartup(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Disturber = scriptedDisturber(func(e int, d *Disturbance) {
		if e < 4 {
			d.Absent[1] = true
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Health[1]
	if h.AbsentEpochs != 4 || h.ServedEpochs != cfg.Epochs-4 || h.FailedEpochs != 0 {
		t.Errorf("health = %+v", h)
	}
	eps := res.Racks[1].Result.Epochs
	if len(eps) != cfg.Epochs-4 || eps[0].Epoch != 4 {
		t.Fatalf("rack 1 first served epoch %d (%d recorded)", eps[0].Epoch, len(eps))
	}
}

// TestDegradedDeterminism: a stormy run is bit-identical across
// parallelism levels — all mutation stays serial.
func TestDegradedDeterminism(t *testing.T) {
	storm := func(e int, d *Disturbance) {
		switch {
		case e == 2 || e == 3:
			d.Down[0] = true
		case e >= 5 && e < 8:
			d.Partitioned[1] = true
		case e == 9:
			d.PVScaleFrac[0] = 0.3
			d.IntensityScale[1] = 1.5
		case e == 11:
			d.GridBudgetScaleFrac = 0.5
			d.BatteryCapacityFrac = 0.9
		}
	}
	run := func(par int) *FleetResult {
		cfg := twoRackConfig(t)
		cfg.Parallelism = par
		cfg.Disturber = scriptedDisturber(storm)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, par := range []int{4, 0} {
		fleetEqual(t, "degraded parallelism", serial, run(par))
	}
}

// fakeCk is a scripted Checkpointer: Commit fails at one epoch, then
// Recover fast-forwards the session like the WAL harness does.
type fakeCk struct {
	rack     int
	failAt   int
	commits  int
	recovers int
}

func (f *fakeCk) Rack() int { return f.rack }

func (f *fakeCk) Commit(e int, s *sim.Session) error {
	if e == f.failAt {
		return errors.New("torn write")
	}
	f.commits++
	return nil
}

func (f *fakeCk) Recover(e int, s *sim.Session) error {
	for s.Epoch() < e {
		s.SkipEpoch()
	}
	f.recovers++
	return nil
}

// TestCheckpointerCrashRecovery: a failed commit marks the rack dirty
// and charges its breaker; the next epoch recovers from durable state
// before the rack serves again.
func TestCheckpointerCrashRecovery(t *testing.T) {
	cfg := twoRackConfig(t)
	ck := &fakeCk{rack: 0, failAt: 3}
	cfg.Checkpointer = ck
	cfg.Disturber = scriptedDisturber(func(int, *Disturbance) {})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ck.recovers != 1 {
		t.Errorf("recovers = %d, want 1", ck.recovers)
	}
	if ck.commits != cfg.Epochs-1 {
		t.Errorf("commits = %d, want %d", ck.commits, cfg.Epochs-1)
	}
	h := res.Health[0]
	// The crash epoch still served (the physics happened), and the
	// recovery is recorded; one commit failure is below the threshold,
	// so no quarantine.
	if h.ServedEpochs != cfg.Epochs || h.Recoveries != 1 {
		t.Errorf("served=%d recoveries=%d, want %d/1", h.ServedEpochs, h.Recoveries, cfg.Epochs)
	}
	if len(h.Quarantines) != 0 {
		t.Errorf("single commit failure quarantined the rack: %+v", h.Quarantines)
	}
}

// TestCheckpointerValidation rejects a checkpointer naming a rack
// outside the fleet.
func TestCheckpointerValidation(t *testing.T) {
	cfg := twoRackConfig(t)
	cfg.Checkpointer = &fakeCk{rack: 9}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range checkpointer rack accepted")
	}
}
