// Package cluster lifts the rack-level GreenHetero controller to a
// multi-rack green datacenter (paper §II-A, Fig. 2). The paper argues for
// a *distributed* deployment — one controller, PV feed, and battery bank
// per rack, none of it shared (§IV-A) — and leaves multi-rack coordination
// as future work. This package implements that deployment: each rack runs
// its own controller against its own share of the site's PV output, racks
// simulate concurrently, and the site aggregates results.
//
// It also implements the one cross-rack decision the architecture leaves
// open: how the site's PV output is split across rack PDUs. ShareUniform
// mirrors the heterogeneity-oblivious default (every rack gets an equal
// feed); ShareDemandProportional sizes each rack's feed to its demand —
// the same heterogeneity-awareness GreenHetero applies within a rack,
// applied one level up.
package cluster

import (
	"errors"
	"fmt"

	"greenhetero/internal/battery"
	"greenhetero/internal/policy"
	"greenhetero/internal/runner"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// ShareStrategy decides each rack's fraction of the site PV output.
type ShareStrategy int

const (
	// ShareUniform gives every rack an equal PV share.
	ShareUniform ShareStrategy = iota + 1
	// ShareDemandProportional sizes shares by rack demand
	// (Σ count·peakEff for the rack's workload).
	ShareDemandProportional
)

// String implements fmt.Stringer.
func (s ShareStrategy) String() string {
	switch s {
	case ShareUniform:
		return "uniform"
	case ShareDemandProportional:
		return "demand-proportional"
	default:
		return fmt.Sprintf("ShareStrategy(%d)", int(s))
	}
}

// RackConfig describes one rack's deployment.
type RackConfig struct {
	// Rack is the rack's server composition.
	Rack *server.Rack
	// Workload runs on the rack.
	Workload workload.Workload
	// Policy allocates power within the rack.
	Policy policy.Policy
	// GridBudgetW caps the rack's grid feed.
	GridBudgetW float64
	// Battery configures the rack bank; zero value = paper default.
	Battery battery.Config
	// InitialSoC as in sim.Config (0 = full).
	InitialSoC float64
}

// Config describes a datacenter run.
type Config struct {
	// Racks lists the rack deployments.
	Racks []RackConfig
	// Solar is the site-level PV trace, divided among racks by Shares.
	Solar *trace.Trace
	// Shares selects the PV division strategy (default ShareUniform).
	Shares ShareStrategy
	// Epochs is the simulation length.
	Epochs int
	// Seed drives measurement noise; each rack's stream is derived from
	// it with a stable per-rack key (runner.DeriveSeed), so racks have
	// independent noise but the site run is reproducible bit-for-bit.
	Seed int64
	// Parallelism bounds concurrent rack simulations: 0 = one worker
	// per CPU, 1 = serial. Results are identical at every level.
	Parallelism int
}

// ErrBadConfig is returned for invalid datacenter configurations.
var ErrBadConfig = errors.New("cluster: bad config")

// RackResult pairs a rack's label with its simulation record.
type RackResult struct {
	Name    string
	PVShare float64
	Result  *sim.Result
}

// Result aggregates a datacenter run.
type Result struct {
	Racks []RackResult
}

// TotalPerf sums mean throughput across racks.
func (r *Result) TotalPerf() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanPerf()
	}
	return sum
}

// TotalPerfScarce sums scarce-epoch mean throughput across racks.
func (r *Result) TotalPerfScarce() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanPerfScarce()
	}
	return sum
}

// TotalGridWh sums grid energy across racks.
func (r *Result) TotalGridWh() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.GridEnergyWh()
	}
	return sum
}

// MeanEPU averages rack EPU weighted equally.
func (r *Result) MeanEPU() float64 {
	if len(r.Racks) == 0 {
		return 0
	}
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanEPU()
	}
	return sum / float64(len(r.Racks))
}

// shares computes each rack's PV fraction under the strategy.
func shares(cfg Config) ([]float64, error) {
	n := len(cfg.Racks)
	out := make([]float64, n)
	switch cfg.Shares {
	case ShareUniform:
		for i := range out {
			out[i] = 1 / float64(n)
		}
	case ShareDemandProportional:
		var total float64
		demands := make([]float64, n)
		for i, rc := range cfg.Racks {
			for _, g := range rc.Rack.Groups() {
				demands[i] += float64(g.Count) * workload.PeakEffW(g.Spec, rc.Workload)
			}
			total += demands[i]
		}
		if total <= 0 {
			return nil, fmt.Errorf("%w: zero total demand", ErrBadConfig)
		}
		for i := range out {
			out[i] = demands[i] / total
		}
	default:
		return nil, fmt.Errorf("%w: unknown share strategy %d", ErrBadConfig, int(cfg.Shares))
	}
	return out, nil
}

// Run simulates every rack concurrently (each is an independent
// electrical and control domain) and aggregates the site result.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Racks) == 0 {
		return nil, fmt.Errorf("%w: no racks", ErrBadConfig)
	}
	if cfg.Solar == nil {
		return nil, fmt.Errorf("%w: nil solar trace", ErrBadConfig)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("%w: epochs %d", ErrBadConfig, cfg.Epochs)
	}
	if cfg.Shares == 0 {
		cfg.Shares = ShareUniform
	}
	for i, rc := range cfg.Racks {
		if rc.Rack == nil || rc.Policy == nil || rc.Workload.ID == "" {
			return nil, fmt.Errorf("%w: rack %d incomplete", ErrBadConfig, i)
		}
	}
	fractions, err := shares(cfg)
	if err != nil {
		return nil, err
	}

	racks, err := runner.Map(cfg.Parallelism, len(cfg.Racks), func(i int) (RackResult, error) {
		rc := cfg.Racks[i]
		rackSolar := cfg.Solar.Scale(fractions[i])
		simRes, err := sim.Run(sim.Config{
			Rack:        rc.Rack,
			Workload:    rc.Workload,
			Policy:      rc.Policy,
			Solar:       rackSolar,
			Epochs:      cfg.Epochs,
			GridBudgetW: rc.GridBudgetW,
			Battery:     rc.Battery,
			InitialSoC:  rc.InitialSoC,
			Seed:        runner.DeriveSeed(cfg.Seed, fmt.Sprintf("rack/%d/%s", i, rc.Rack.Name())),
		})
		if err != nil {
			return RackResult{}, fmt.Errorf("rack %s: %w", rc.Rack.Name(), err)
		}
		return RackResult{Name: rc.Rack.Name(), PVShare: fractions[i], Result: simRes}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Racks: racks}, nil
}
