// Package cluster lifts the rack-level GreenHetero controller to a
// multi-rack green datacenter (paper §II-A, Fig. 2): a per-epoch fleet
// coordinator. Each rack runs its own controller (the paper's
// distributed deployment, §IV-A), but the site's PV feed, battery bank,
// and grid budget are shared resources — so every scheduling epoch the
// coordinator collects per-rack demand bids (believed peaks from the
// controllers' cached projections, never ground truth), asks a site
// Allocator for a weight vector, carves the shared battery into
// per-rack leases, and steps every rack in parallel under its
// allocation. This is a hierarchical version of the paper's PAR solve:
// site-level split over rack bids, then the rack-local PAR as before.
//
// Determinism: racks step through runner.Map with a per-epoch barrier,
// each rack's noise stream is derived via runner.DeriveSeed, bids and
// weights are computed serially in rack order, and the shared bank is
// settled in rack-index order after the barrier — so a fleet run is
// bit-identical at every parallelism level.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"greenhetero/internal/battery"
	"greenhetero/internal/policy"
	"greenhetero/internal/runner"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// Supply is the site-level resource pool for one epoch, as the
// allocator sees it.
type Supply struct {
	// RenewableW is the site PV output this epoch.
	RenewableW float64
	// BatteryDischargeW is the site bank's available discharge power.
	BatteryDischargeW float64
	// BatteryChargeW is the site bank's acceptable charging power.
	BatteryChargeW float64
	// GridBudgetW is the site grid cap.
	GridBudgetW float64
}

// PotentialW is the total power the site could deliver to racks this
// epoch (PV + battery + grid).
func (s Supply) PotentialW() float64 {
	return s.RenewableW + s.BatteryDischargeW + s.GridBudgetW
}

// Allocator splits the site supply across racks each epoch. Weights
// writes one weight per rack into out (len(out) == len(bids)); weights
// must be non-negative and sum to at most 1, and every site resource
// (PV, battery budgets, grid) is divided by the same vector.
// Implementations must be deterministic and allocation-free: they run
// once per epoch inside the fleet hot loop.
type Allocator interface {
	// Name identifies the strategy ("uniform", "demand-proportional",
	// "hierarchical-par").
	Name() string
	// Weights computes the epoch's split from the racks' demand bids
	// (believed peak watts) and the site supply.
	Weights(bids []float64, site Supply, out []float64) error
}

// Uniform gives every rack an equal share regardless of demand — the
// heterogeneity-oblivious baseline.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Weights implements Allocator.
func (Uniform) Weights(bids []float64, _ Supply, out []float64) error {
	w := 1 / float64(len(out))
	for i := range out {
		out[i] = w
	}
	return nil
}

// DemandProportional sizes each rack's share by its demand bid — the
// same heterogeneity-awareness GreenHetero applies within a rack,
// applied one level up. Zero total demand falls back to uniform.
type DemandProportional struct{}

// Name implements Allocator.
func (DemandProportional) Name() string { return "demand-proportional" }

// Weights implements Allocator.
func (DemandProportional) Weights(bids []float64, _ Supply, out []float64) error {
	var total float64
	for _, b := range bids {
		total += b
	}
	if total <= 0 {
		return Uniform{}.Weights(bids, Supply{}, out)
	}
	for i, b := range bids {
		out[i] = b / total
	}
	return nil
}

// HierarchicalPAR water-fills the site's deliverable power over the
// rack bids, max-min fair: when supply covers demand every rack is
// granted its bid (demand-proportional); under scarcity all racks are
// raised toward an equal fill level, so small racks saturate at their
// bid and the shortfall lands on the largest bidders — the site-level
// analogue of the paper's PAR solve, which also equalizes marginal
// allocations under a shared budget. Weights are the normalized grants.
type HierarchicalPAR struct{}

// Name implements Allocator.
func (HierarchicalPAR) Name() string { return "hierarchical-par" }

// Weights implements Allocator.
func (HierarchicalPAR) Weights(bids []float64, site Supply, out []float64) error {
	var sumBids float64
	active := 0
	for i, b := range bids {
		out[i] = 0
		if b > 0 {
			sumBids += b
			active++
		}
	}
	target := site.PotentialW()
	if sumBids < target {
		target = sumBids
	}
	if sumBids <= 0 || target <= 0 {
		return Uniform{}.Weights(bids, Supply{}, out)
	}

	// Water-fill: repeatedly offer every unsatisfied rack an equal share
	// of the remaining power; racks whose residual bid fits are granted
	// fully and drop out. Each round either retires a rack (at most
	// len(bids) rounds) or every remaining rack absorbs the full share
	// and the loop ends.
	remaining := target
	for active > 0 && remaining > 0 {
		share := remaining / float64(active)
		progress := false
		for i, b := range bids {
			if b <= 0 || out[i] >= b {
				continue
			}
			if need := b - out[i]; need <= share {
				out[i] = b
				remaining -= need
				active--
				progress = true
			}
		}
		if !progress {
			for i, b := range bids {
				if b > 0 && out[i] < b {
					out[i] += share
				}
			}
			break
		}
	}

	var granted float64
	for _, g := range out {
		granted += g
	}
	if granted <= 0 {
		return Uniform{}.Weights(bids, Supply{}, out)
	}
	for i := range out {
		out[i] /= granted
	}
	return nil
}

// Allocators lists the built-in strategies.
func Allocators() []Allocator {
	return []Allocator{Uniform{}, DemandProportional{}, HierarchicalPAR{}}
}

// AllocatorByName resolves a strategy by its Name.
func AllocatorByName(name string) (Allocator, error) {
	for _, a := range Allocators() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("%w: unknown allocator %q", ErrBadConfig, name)
}

// RackConfig describes one rack's deployment. Power and storage are
// site-level concerns (Config); a rack brings its hardware, workload,
// and policy.
type RackConfig struct {
	// Rack is the rack's server composition. Rack names must be unique
	// across the fleet.
	Rack *server.Rack
	// Workload runs on every group of the rack.
	Workload workload.Workload
	// GroupWorkloads, when non-nil, assigns each rack group its own
	// workload (a mixed rack, one entry per group); Workload is then
	// ignored. The demand bid prices each group's own workload.
	GroupWorkloads []workload.Workload
	// Policy allocates power within the rack.
	Policy policy.Policy
}

// Config describes a fleet run.
type Config struct {
	// Racks lists the rack deployments.
	Racks []RackConfig
	// Solar is the site-level PV trace; the allocator splits it across
	// racks each epoch.
	Solar *trace.Trace
	// Allocator is the site split strategy (nil = Uniform).
	Allocator Allocator
	// SiteBattery configures the shared site bank; zero value means the
	// paper's rack default scaled by the rack count (12 kWh per rack).
	SiteBattery battery.Config
	// SiteGridBudgetW caps the site's total grid draw, split by the
	// allocator alongside the PV feed.
	SiteGridBudgetW float64
	// InitialSoC sets the site bank's starting state of charge (0 =
	// full, as in the paper §V-B.1).
	//
	// ghlint:units frac
	InitialSoC float64
	// Epochs is the simulation length.
	Epochs int
	// Seed drives measurement noise; each rack's stream is derived from
	// it with a stable per-rack key (runner.DeriveSeed), so racks have
	// independent noise but the fleet run is reproducible bit-for-bit.
	Seed int64
	// Parallelism bounds concurrent rack steps within an epoch: 0 = one
	// worker per CPU, 1 = serial. Results are identical at every level.
	Parallelism int
	// Disturber, when non-nil, injects per-epoch disturbances (chaos):
	// see the Disturbance effect vector. Nil leaves the run undisturbed
	// and bit-identical to a pre-chaos fleet run.
	Disturber Disturber
	// Breaker tunes the per-rack circuit breaker that quarantines
	// repeatedly failing racks (nil = defaults).
	Breaker *BreakerConfig
	// Checkpointer, when non-nil, persists one rack's state through the
	// WAL layer after each served epoch and drives its crash recovery.
	Checkpointer Checkpointer
}

// ErrBadConfig is returned for invalid fleet configurations.
var ErrBadConfig = errors.New("cluster: bad config")

// RackResult pairs a rack's label with its simulation record.
type RackResult struct {
	Name   string
	Result *sim.Result
}

// SiteEpoch records one epoch's site-level totals.
type SiteEpoch struct {
	Epoch int
	// RenewableW is the site PV output offered to the allocator.
	RenewableW float64
	// BidW is the racks' total demand bid.
	BidW float64
	// SupplyW and GridW sum the racks' delivered supply and grid draw.
	SupplyW float64
	GridW   float64
	// BatteryOutW and BatteryInW are the settled site-bank flows
	// (discharge to racks; source-side charging power absorbed).
	BatteryOutW float64
	BatteryInW  float64
	// BatterySoC is the site bank's state of charge after settlement.
	//
	// ghlint:units frac
	BatterySoC float64
	// DownRacks counts racks that failed or sat quarantined this epoch;
	// QuarantinedRacks is the cooldown subset. Omitted when zero so
	// healthy-run traces serialize unchanged.
	DownRacks        int `json:",omitempty"`
	QuarantinedRacks int `json:",omitempty"`
	// RedistributedW is the supply share the epoch's missing racks would
	// have commanded (priced by the allocator at their last-known bids),
	// absorbed by the serving fleet instead.
	RedistributedW float64 `json:",omitempty"`
}

// FleetResult aggregates a fleet run: per-rack records plus the
// site-level epoch trace.
type FleetResult struct {
	// Allocator is the strategy that produced the run.
	Allocator string
	// Racks holds each rack's full simulation record.
	Racks []RackResult
	// Site is the per-epoch site trace.
	Site []SiteEpoch
	// BatteryCycles counts the site bank's discharge-to-DoD cycles.
	BatteryCycles int
	// Health is each rack's degraded-mode history, index-aligned with
	// Racks. In an undisturbed run every rack simply serves every epoch.
	Health []RackHealth
}

// TotalPerf sums mean throughput across racks.
func (r *FleetResult) TotalPerf() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanPerf()
	}
	return sum
}

// TotalPerfScarce sums scarce-epoch mean throughput across racks.
func (r *FleetResult) TotalPerfScarce() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanPerfScarce()
	}
	return sum
}

// TotalGridWh sums grid energy across racks.
func (r *FleetResult) TotalGridWh() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.GridEnergyWh()
	}
	return sum
}

// MeanEPU averages rack EPU weighted equally.
func (r *FleetResult) MeanEPU() float64 {
	if len(r.Racks) == 0 {
		return 0
	}
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanEPU()
	}
	return sum / float64(len(r.Racks))
}

// validate checks cfg and applies defaults, returning the ready config.
func (cfg Config) validate() (Config, error) {
	if len(cfg.Racks) == 0 {
		return cfg, fmt.Errorf("%w: no racks", ErrBadConfig)
	}
	if cfg.Solar == nil {
		return cfg, fmt.Errorf("%w: nil solar trace", ErrBadConfig)
	}
	if cfg.Epochs < 1 {
		return cfg, fmt.Errorf("%w: epochs %d", ErrBadConfig, cfg.Epochs)
	}
	if cfg.SiteGridBudgetW < 0 {
		return cfg, fmt.Errorf("%w: site grid budget %v", ErrBadConfig, cfg.SiteGridBudgetW)
	}
	if cfg.InitialSoC < 0 || cfg.InitialSoC > 1 {
		return cfg, fmt.Errorf("%w: initial SoC %v", ErrBadConfig, cfg.InitialSoC)
	}
	if cfg.Allocator == nil {
		cfg.Allocator = Uniform{}
	}
	if cfg.SiteBattery == (battery.Config{}) {
		cfg.SiteBattery = battery.DefaultConfig()
		cfg.SiteBattery.CapacityWh *= float64(len(cfg.Racks))
	}
	seen := make(map[string]int, len(cfg.Racks))
	for i, rc := range cfg.Racks {
		if rc.Rack == nil || rc.Policy == nil {
			return cfg, fmt.Errorf("%w: rack %d incomplete", ErrBadConfig, i)
		}
		if rc.GroupWorkloads == nil && rc.Workload.ID == "" {
			return cfg, fmt.Errorf("%w: rack %d has no workload", ErrBadConfig, i)
		}
		if rc.GroupWorkloads != nil && len(rc.GroupWorkloads) != rc.Rack.NumGroups() {
			return cfg, fmt.Errorf("%w: rack %d: %d group workloads for %d groups",
				ErrBadConfig, i, len(rc.GroupWorkloads), rc.Rack.NumGroups())
		}
		name := rc.Rack.Name()
		if j, dup := seen[name]; dup {
			return cfg, fmt.Errorf("%w: racks %d and %d share the name %q (reports would be ambiguous)",
				ErrBadConfig, j, i, name)
		}
		seen[name] = i
	}
	if ck := cfg.Checkpointer; ck != nil {
		if r := ck.Rack(); r < 0 || r >= len(cfg.Racks) {
			return cfg, fmt.Errorf("%w: checkpointer rack %d of %d", ErrBadConfig, r, len(cfg.Racks))
		}
	}
	return cfg, nil
}

// Run simulates the fleet: per-epoch site allocation over live rack
// sessions, racks stepping in parallel between barriers.
//
// The fleet degrades instead of failing the epoch. A rack whose bid or
// step errors — or that a Disturber marks down — is skipped for the
// epoch and charged against its per-rack breaker; once the breaker
// opens the rack is quarantined for a cooldown, then probed half-open.
// A missing rack's PV/battery/grid share is redistributed by the live
// allocator the moment it vanishes from the bid vector, and the share
// it would have commanded is recorded in SiteEpoch.RedistributedW.
// Setup failures (NewSession) still abort: those are configuration
// errors, not runtime faults.
func Run(cfg Config) (*FleetResult, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	n := len(cfg.Racks)
	d := cfg.Solar.Step
	brk := BreakerConfig{}
	if cfg.Breaker != nil {
		brk = *cfg.Breaker
	}
	brk = brk.withDefaults()

	site, err := battery.NewSiteBank(cfg.SiteBattery, n)
	if err != nil {
		return nil, fmt.Errorf("cluster: site bank: %w", err)
	}
	if cfg.InitialSoC != 0 {
		if err := site.Bank().SetSoC(cfg.InitialSoC); err != nil {
			return nil, fmt.Errorf("cluster: site bank: %w", err)
		}
	}

	sessions := make([]*sim.Session, n)
	results := make([]*sim.Result, n)
	ctl := make([]rackCtl, n)
	for i, rc := range cfg.Racks {
		s, err := sim.NewSession(sim.Config{
			Rack:           rc.Rack,
			Workload:       rc.Workload,
			GroupWorkloads: rc.GroupWorkloads,
			Policy:         rc.Policy,
			Solar:          cfg.Solar,
			Epochs:         cfg.Epochs,
			Bank:           site.Lease(i),
			Seed:           runner.DeriveSeed(cfg.Seed, fmt.Sprintf("rack/%d/%s", i, rc.Rack.Name())),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: rack %s: %w", rc.Rack.Name(), err)
		}
		sessions[i] = s
		results[i] = s.NewResult()
		ctl[i].downSince = -1
		ctl[i].health.Name = rc.Rack.Name()
	}

	var dist *Disturbance
	if cfg.Disturber != nil {
		dist = NewDisturbance(n)
	}
	ck := cfg.Checkpointer
	ckRack := -1
	ckDirty := false // an uncommitted (crashed) epoch forces recovery
	if ck != nil {
		ckRack = ck.Rack()
	}

	out := &FleetResult{
		Allocator: cfg.Allocator.Name(),
		Site:      make([]SiteEpoch, 0, cfg.Epochs),
	}
	var (
		mode        = make([]rackMode, n)
		failErr     = make([]error, n)
		bids        = make([]float64, n) // compact: one entry per bidding rack
		idx         = make([]int, n)     // rack index per compact slot
		weights     = make([]float64, n) // compact allocator output
		weightsFull = make([]float64, n) // scattered to rack indexing
		ghostBids   = make([]float64, n) // scratch: redistribution pricing
		ghostW      = make([]float64, n)
	)
	capacityFrac := 1.0
	for e := 0; e < cfg.Epochs; e++ {
		// 0. Let the disturber write this epoch's effect vector, and
		// apply any battery aging to the shared bank.
		if dist != nil {
			dist.Reset()
			cfg.Disturber.Disturb(e, dist)
			if f := dist.BatteryCapacityFrac; f < capacityFrac {
				if err := site.Bank().Fade(f / capacityFrac); err != nil {
					return nil, fmt.Errorf("cluster: battery fade: %w", err)
				}
				capacityFrac = f
			}
		}

		// 1. Classify every rack for the epoch, serially in rack order.
		// Partitioned racks hold their last grant, reserved off the top
		// of the split below.
		quarantined := 0
		var heldPVW, heldGridW float64
		for i := range sessions {
			c := &ctl[i]
			failErr[i] = nil
			switch {
			case dist != nil && dist.Absent[i]:
				mode[i] = modeAbsent
				c.health.AbsentEpochs++
			case c.state == rackQuarantined && c.cool > 0:
				mode[i] = modeCooling
				c.cool--
				c.health.QuarantinedEpochs++
				quarantined++
			case dist != nil && dist.Down[i]:
				mode[i] = modeFail
				failErr[i] = errRackDown
			case dist != nil && dist.Partitioned[i]:
				mode[i] = modeHeld
				c.health.PartitionedEpochs++
				heldPVW += c.heldPVW
				heldGridW += c.heldGridW
			default:
				mode[i] = modeServe
			}
		}

		// 1b. WAL recovery: after a crashed commit the checkpointed
		// rack's in-memory session is notionally lost — before its next
		// attempt it must restore from durable state.
		if ck != nil && ckDirty && (mode[ckRack] == modeServe || mode[ckRack] == modeHeld) {
			if err := ck.Recover(e, sessions[ckRack]); err != nil {
				mode[ckRack] = modeFail
				failErr[ckRack] = fmt.Errorf("recover: %w", err)
			} else {
				ckDirty = false
				ctl[ckRack].health.Recoveries++
			}
		}

		// 2. Collect demand bids from the serving racks, serially in
		// rack order, into a compact vector — a missing rack's absence
		// here is what redistributes its share.
		var bidTotal float64
		k := 0
		for i, s := range sessions {
			if mode[i] != modeServe {
				continue
			}
			b, err := s.DemandBidW()
			if err != nil {
				mode[i] = modeFail
				failErr[i] = fmt.Errorf("bid: %w", err)
				continue
			}
			c := &ctl[i]
			c.lastBidW = b
			c.haveBid = true
			idx[k] = i
			bids[k] = b
			bidTotal += b
			k++
		}

		// 3. Split the site supply over the serving racks. Held grants
		// come off the top; a price spike's demand response scales the
		// grid budget.
		pv := cfg.Solar.At(e)
		gridBudgetW := cfg.SiteGridBudgetW
		if dist != nil {
			gridBudgetW *= dist.GridBudgetScaleFrac
		}
		splitPV := pv - heldPVW
		if splitPV < 0 {
			splitPV = 0
		}
		splitGrid := gridBudgetW - heldGridW
		if splitGrid < 0 {
			splitGrid = 0
		}
		supply := Supply{
			RenewableW:        splitPV,
			BatteryDischargeW: site.Bank().AvailableDischargeW(d),
			BatteryChargeW:    site.Bank().AcceptableChargeW(d),
			GridBudgetW:       splitGrid,
		}
		for i := range weightsFull {
			weightsFull[i] = 0
		}
		if k > 0 {
			if err := cfg.Allocator.Weights(bids[:k], supply, weights[:k]); err != nil {
				return nil, fmt.Errorf("cluster: allocator %s: %w", cfg.Allocator.Name(), err)
			}
			var wsum float64
			for j, w := range weights[:k] {
				if w < 0 || math.IsNaN(w) {
					return nil, fmt.Errorf("cluster: allocator %s: weight[%d] = %v", cfg.Allocator.Name(), idx[j], w)
				}
				wsum += w
			}
			if wsum > 1+1e-9 {
				return nil, fmt.Errorf("cluster: allocator %s: weights sum to %v > 1", cfg.Allocator.Name(), wsum)
			}
			for j := 0; j < k; j++ {
				weightsFull[idx[j]] = weights[j]
			}
		}
		if err := site.Carve(weightsFull, d); err != nil {
			return nil, fmt.Errorf("cluster: carve: %w", err)
		}

		// 3b. Redistribution accounting: price what the missing racks
		// would have commanded by re-running the allocator over the
		// serving bids plus the missing racks' last-known bids. Pure
		// reporting — the real split above never sees these ghosts.
		var redistributedW float64
		g := k
		for i := range mode {
			if (mode[i] == modeFail || mode[i] == modeCooling) && ctl[i].haveBid {
				ghostBids[g] = ctl[i].lastBidW
				g++
			}
		}
		if g > k {
			copy(ghostBids[:k], bids[:k])
			if err := cfg.Allocator.Weights(ghostBids[:g], supply, ghostW[:g]); err == nil {
				pot := supply.PotentialW()
				for j := k; j < g; j++ {
					redistributedW += ghostW[j] * pot
				}
			}
		}

		// 4. Apply flash-crowd demand scaling, serially, pre-barrier.
		if dist != nil {
			for i, s := range sessions {
				if mode[i] != modeServe && mode[i] != modeHeld {
					continue
				}
				if err := s.SetIntensityScale(dist.IntensityScale[i]); err != nil {
					return nil, fmt.Errorf("cluster: rack %s: %w", cfg.Racks[i].Rack.Name(), err)
				}
			}
		}

		// 5. Step the live racks in parallel (the per-epoch barrier).
		// Worker i reads only its own rack's state and never returns an
		// error: a failed step is an outcome, not an abort.
		outs, err := runner.Map(cfg.Parallelism, n, func(i int) (stepOutcome, error) {
			var a sim.Allocation
			switch mode[i] {
			case modeServe:
				a = sim.Allocation{
					RenewableW:  weightsFull[i] * supply.RenewableW,
					GridBudgetW: weightsFull[i] * supply.GridBudgetW,
				}
			case modeHeld:
				a = sim.Allocation{RenewableW: ctl[i].heldPVW, GridBudgetW: ctl[i].heldGridW}
			default:
				return stepOutcome{}, nil
			}
			if dist != nil {
				// Weather-front derate lands after the split: the
				// allocator priced clear-sky supply, so the front hits as
				// forecast error.
				a.RenewableW *= dist.PVScaleFrac[i]
			}
			er, err := sessions[i].StepAllocated(a)
			if err != nil {
				return stepOutcome{err: err}, nil
			}
			return stepOutcome{er: er, served: true}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: epoch %d: %w", e, err)
		}

		// 6. Post-barrier bookkeeping, serially in rack order: breaker
		// transitions, WAL commit for the checkpointed rack, epoch
		// records. Every session is then aligned to the site clock —
		// skipped racks advance without consuming their noise stream.
		se := SiteEpoch{
			Epoch:            e,
			RenewableW:       supply.RenewableW,
			BidW:             bidTotal,
			QuarantinedRacks: quarantined,
			RedistributedW:   redistributedW,
		}
		for i := range outs {
			c := &ctl[i]
			switch {
			case mode[i] == modeAbsent:
				// pre-startup: no bookkeeping
			case mode[i] == modeCooling:
				se.DownRacks++
			case failErr[i] != nil || outs[i].err != nil:
				c.fail(e, brk)
				c.health.FailedEpochs++
				se.DownRacks++
			case outs[i].served:
				committed := true
				if ck != nil && i == ckRack {
					if cerr := ck.Commit(e, sessions[i]); cerr != nil {
						ckDirty = true
						committed = false
					}
				}
				// The physical epoch happened either way; record it.
				results[i].Epochs = append(results[i].Epochs, outs[i].er)
				se.SupplyW += outs[i].er.SupplyW
				se.GridW += outs[i].er.GridW
				c.health.ServedEpochs++
				if mode[i] == modeServe {
					c.heldPVW = weightsFull[i] * supply.RenewableW
					c.heldGridW = weightsFull[i] * supply.GridBudgetW
				}
				if committed {
					if q, ended := c.recover(e); ended {
						c.health.Quarantines = append(c.health.Quarantines, q)
					}
				} else {
					// Served, but the daemon crashed before the epoch was
					// durable: a breaker failure, and the rack recovers
					// from the WAL before its next attempt.
					c.fail(e, brk)
				}
			}
			for sessions[i].Epoch() <= e {
				sessions[i].SkipEpoch()
			}
		}

		// 7. Settle the shared bank in rack-index order and record the
		// site trace.
		settle := site.Settle(d)
		se.BatteryOutW = settle.DischargeW
		se.BatteryInW = settle.ChargeRenewableW + settle.ChargeGridW
		se.BatterySoC = site.Bank().SoC()
		out.Site = append(out.Site, se)
	}

	out.BatteryCycles = site.Bank().Cycles()
	out.Racks = make([]RackResult, n)
	out.Health = make([]RackHealth, n)
	for i, rc := range cfg.Racks {
		out.Racks[i] = RackResult{Name: rc.Rack.Name(), Result: results[i]}
		c := &ctl[i]
		if c.state == rackQuarantined {
			// Still down when the run ended: leave the episode open.
			c.health.Quarantines = append(c.health.Quarantines,
				Quarantine{FromEpoch: c.downSince, RejoinEpoch: -1, RecoveryEpochs: -1})
		}
		out.Health[i] = c.health
	}
	return out, nil
}

// errRackDown marks a disturbance-injected crash window.
var errRackDown = errors.New("cluster: rack down (disturbance)")
