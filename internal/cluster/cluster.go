// Package cluster lifts the rack-level GreenHetero controller to a
// multi-rack green datacenter (paper §II-A, Fig. 2): a per-epoch fleet
// coordinator. Each rack runs its own controller (the paper's
// distributed deployment, §IV-A), but the site's PV feed, battery bank,
// and grid budget are shared resources — so every scheduling epoch the
// coordinator collects per-rack demand bids (believed peaks from the
// controllers' cached projections, never ground truth), asks a site
// Allocator for a weight vector, carves the shared battery into
// per-rack leases, and steps every rack in parallel under its
// allocation. This is a hierarchical version of the paper's PAR solve:
// site-level split over rack bids, then the rack-local PAR as before.
//
// Determinism: racks step through runner.Map with a per-epoch barrier,
// each rack's noise stream is derived via runner.DeriveSeed, bids and
// weights are computed serially in rack order, and the shared bank is
// settled in rack-index order after the barrier — so a fleet run is
// bit-identical at every parallelism level.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"greenhetero/internal/battery"
	"greenhetero/internal/policy"
	"greenhetero/internal/runner"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// Supply is the site-level resource pool for one epoch, as the
// allocator sees it.
type Supply struct {
	// RenewableW is the site PV output this epoch.
	RenewableW float64
	// BatteryDischargeW is the site bank's available discharge power.
	BatteryDischargeW float64
	// BatteryChargeW is the site bank's acceptable charging power.
	BatteryChargeW float64
	// GridBudgetW is the site grid cap.
	GridBudgetW float64
}

// PotentialW is the total power the site could deliver to racks this
// epoch (PV + battery + grid).
func (s Supply) PotentialW() float64 {
	return s.RenewableW + s.BatteryDischargeW + s.GridBudgetW
}

// Allocator splits the site supply across racks each epoch. Weights
// writes one weight per rack into out (len(out) == len(bids)); weights
// must be non-negative and sum to at most 1, and every site resource
// (PV, battery budgets, grid) is divided by the same vector.
// Implementations must be deterministic and allocation-free: they run
// once per epoch inside the fleet hot loop.
type Allocator interface {
	// Name identifies the strategy ("uniform", "demand-proportional",
	// "hierarchical-par").
	Name() string
	// Weights computes the epoch's split from the racks' demand bids
	// (believed peak watts) and the site supply.
	Weights(bids []float64, site Supply, out []float64) error
}

// Uniform gives every rack an equal share regardless of demand — the
// heterogeneity-oblivious baseline.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Weights implements Allocator.
func (Uniform) Weights(bids []float64, _ Supply, out []float64) error {
	w := 1 / float64(len(out))
	for i := range out {
		out[i] = w
	}
	return nil
}

// DemandProportional sizes each rack's share by its demand bid — the
// same heterogeneity-awareness GreenHetero applies within a rack,
// applied one level up. Zero total demand falls back to uniform.
type DemandProportional struct{}

// Name implements Allocator.
func (DemandProportional) Name() string { return "demand-proportional" }

// Weights implements Allocator.
func (DemandProportional) Weights(bids []float64, _ Supply, out []float64) error {
	var total float64
	for _, b := range bids {
		total += b
	}
	if total <= 0 {
		return Uniform{}.Weights(bids, Supply{}, out)
	}
	for i, b := range bids {
		out[i] = b / total
	}
	return nil
}

// HierarchicalPAR water-fills the site's deliverable power over the
// rack bids, max-min fair: when supply covers demand every rack is
// granted its bid (demand-proportional); under scarcity all racks are
// raised toward an equal fill level, so small racks saturate at their
// bid and the shortfall lands on the largest bidders — the site-level
// analogue of the paper's PAR solve, which also equalizes marginal
// allocations under a shared budget. Weights are the normalized grants.
type HierarchicalPAR struct{}

// Name implements Allocator.
func (HierarchicalPAR) Name() string { return "hierarchical-par" }

// Weights implements Allocator.
func (HierarchicalPAR) Weights(bids []float64, site Supply, out []float64) error {
	var sumBids float64
	active := 0
	for i, b := range bids {
		out[i] = 0
		if b > 0 {
			sumBids += b
			active++
		}
	}
	target := site.PotentialW()
	if sumBids < target {
		target = sumBids
	}
	if sumBids <= 0 || target <= 0 {
		return Uniform{}.Weights(bids, Supply{}, out)
	}

	// Water-fill: repeatedly offer every unsatisfied rack an equal share
	// of the remaining power; racks whose residual bid fits are granted
	// fully and drop out. Each round either retires a rack (at most
	// len(bids) rounds) or every remaining rack absorbs the full share
	// and the loop ends.
	remaining := target
	for active > 0 && remaining > 0 {
		share := remaining / float64(active)
		progress := false
		for i, b := range bids {
			if b <= 0 || out[i] >= b {
				continue
			}
			if need := b - out[i]; need <= share {
				out[i] = b
				remaining -= need
				active--
				progress = true
			}
		}
		if !progress {
			for i, b := range bids {
				if b > 0 && out[i] < b {
					out[i] += share
				}
			}
			break
		}
	}

	var granted float64
	for _, g := range out {
		granted += g
	}
	if granted <= 0 {
		return Uniform{}.Weights(bids, Supply{}, out)
	}
	for i := range out {
		out[i] /= granted
	}
	return nil
}

// Allocators lists the built-in strategies.
func Allocators() []Allocator {
	return []Allocator{Uniform{}, DemandProportional{}, HierarchicalPAR{}}
}

// AllocatorByName resolves a strategy by its Name.
func AllocatorByName(name string) (Allocator, error) {
	for _, a := range Allocators() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("%w: unknown allocator %q", ErrBadConfig, name)
}

// RackConfig describes one rack's deployment. Power and storage are
// site-level concerns (Config); a rack brings its hardware, workload,
// and policy.
type RackConfig struct {
	// Rack is the rack's server composition. Rack names must be unique
	// across the fleet.
	Rack *server.Rack
	// Workload runs on every group of the rack.
	Workload workload.Workload
	// GroupWorkloads, when non-nil, assigns each rack group its own
	// workload (a mixed rack, one entry per group); Workload is then
	// ignored. The demand bid prices each group's own workload.
	GroupWorkloads []workload.Workload
	// Policy allocates power within the rack.
	Policy policy.Policy
}

// Config describes a fleet run.
type Config struct {
	// Racks lists the rack deployments.
	Racks []RackConfig
	// Solar is the site-level PV trace; the allocator splits it across
	// racks each epoch.
	Solar *trace.Trace
	// Allocator is the site split strategy (nil = Uniform).
	Allocator Allocator
	// SiteBattery configures the shared site bank; zero value means the
	// paper's rack default scaled by the rack count (12 kWh per rack).
	SiteBattery battery.Config
	// SiteGridBudgetW caps the site's total grid draw, split by the
	// allocator alongside the PV feed.
	SiteGridBudgetW float64
	// InitialSoC sets the site bank's starting state of charge (0 =
	// full, as in the paper §V-B.1).
	//
	// ghlint:units frac
	InitialSoC float64
	// Epochs is the simulation length.
	Epochs int
	// Seed drives measurement noise; each rack's stream is derived from
	// it with a stable per-rack key (runner.DeriveSeed), so racks have
	// independent noise but the fleet run is reproducible bit-for-bit.
	Seed int64
	// Parallelism bounds concurrent rack steps within an epoch: 0 = one
	// worker per CPU, 1 = serial. Results are identical at every level.
	Parallelism int
}

// ErrBadConfig is returned for invalid fleet configurations.
var ErrBadConfig = errors.New("cluster: bad config")

// RackResult pairs a rack's label with its simulation record.
type RackResult struct {
	Name   string
	Result *sim.Result
}

// SiteEpoch records one epoch's site-level totals.
type SiteEpoch struct {
	Epoch int
	// RenewableW is the site PV output offered to the allocator.
	RenewableW float64
	// BidW is the racks' total demand bid.
	BidW float64
	// SupplyW and GridW sum the racks' delivered supply and grid draw.
	SupplyW float64
	GridW   float64
	// BatteryOutW and BatteryInW are the settled site-bank flows
	// (discharge to racks; source-side charging power absorbed).
	BatteryOutW float64
	BatteryInW  float64
	// BatterySoC is the site bank's state of charge after settlement.
	//
	// ghlint:units frac
	BatterySoC float64
}

// FleetResult aggregates a fleet run: per-rack records plus the
// site-level epoch trace.
type FleetResult struct {
	// Allocator is the strategy that produced the run.
	Allocator string
	// Racks holds each rack's full simulation record.
	Racks []RackResult
	// Site is the per-epoch site trace.
	Site []SiteEpoch
	// BatteryCycles counts the site bank's discharge-to-DoD cycles.
	BatteryCycles int
}

// TotalPerf sums mean throughput across racks.
func (r *FleetResult) TotalPerf() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanPerf()
	}
	return sum
}

// TotalPerfScarce sums scarce-epoch mean throughput across racks.
func (r *FleetResult) TotalPerfScarce() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanPerfScarce()
	}
	return sum
}

// TotalGridWh sums grid energy across racks.
func (r *FleetResult) TotalGridWh() float64 {
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.GridEnergyWh()
	}
	return sum
}

// MeanEPU averages rack EPU weighted equally.
func (r *FleetResult) MeanEPU() float64 {
	if len(r.Racks) == 0 {
		return 0
	}
	var sum float64
	for _, rr := range r.Racks {
		sum += rr.Result.MeanEPU()
	}
	return sum / float64(len(r.Racks))
}

// validate checks cfg and applies defaults, returning the ready config.
func (cfg Config) validate() (Config, error) {
	if len(cfg.Racks) == 0 {
		return cfg, fmt.Errorf("%w: no racks", ErrBadConfig)
	}
	if cfg.Solar == nil {
		return cfg, fmt.Errorf("%w: nil solar trace", ErrBadConfig)
	}
	if cfg.Epochs < 1 {
		return cfg, fmt.Errorf("%w: epochs %d", ErrBadConfig, cfg.Epochs)
	}
	if cfg.SiteGridBudgetW < 0 {
		return cfg, fmt.Errorf("%w: site grid budget %v", ErrBadConfig, cfg.SiteGridBudgetW)
	}
	if cfg.InitialSoC < 0 || cfg.InitialSoC > 1 {
		return cfg, fmt.Errorf("%w: initial SoC %v", ErrBadConfig, cfg.InitialSoC)
	}
	if cfg.Allocator == nil {
		cfg.Allocator = Uniform{}
	}
	if cfg.SiteBattery == (battery.Config{}) {
		cfg.SiteBattery = battery.DefaultConfig()
		cfg.SiteBattery.CapacityWh *= float64(len(cfg.Racks))
	}
	seen := make(map[string]int, len(cfg.Racks))
	for i, rc := range cfg.Racks {
		if rc.Rack == nil || rc.Policy == nil {
			return cfg, fmt.Errorf("%w: rack %d incomplete", ErrBadConfig, i)
		}
		if rc.GroupWorkloads == nil && rc.Workload.ID == "" {
			return cfg, fmt.Errorf("%w: rack %d has no workload", ErrBadConfig, i)
		}
		if rc.GroupWorkloads != nil && len(rc.GroupWorkloads) != rc.Rack.NumGroups() {
			return cfg, fmt.Errorf("%w: rack %d: %d group workloads for %d groups",
				ErrBadConfig, i, len(rc.GroupWorkloads), rc.Rack.NumGroups())
		}
		name := rc.Rack.Name()
		if j, dup := seen[name]; dup {
			return cfg, fmt.Errorf("%w: racks %d and %d share the name %q (reports would be ambiguous)",
				ErrBadConfig, j, i, name)
		}
		seen[name] = i
	}
	return cfg, nil
}

// Run simulates the fleet: per-epoch site allocation over live rack
// sessions, racks stepping in parallel between barriers.
func Run(cfg Config) (*FleetResult, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	n := len(cfg.Racks)
	d := cfg.Solar.Step

	site, err := battery.NewSiteBank(cfg.SiteBattery, n)
	if err != nil {
		return nil, fmt.Errorf("cluster: site bank: %w", err)
	}
	if cfg.InitialSoC != 0 {
		if err := site.Bank().SetSoC(cfg.InitialSoC); err != nil {
			return nil, fmt.Errorf("cluster: site bank: %w", err)
		}
	}

	sessions := make([]*sim.Session, n)
	results := make([]*sim.Result, n)
	for i, rc := range cfg.Racks {
		s, err := sim.NewSession(sim.Config{
			Rack:           rc.Rack,
			Workload:       rc.Workload,
			GroupWorkloads: rc.GroupWorkloads,
			Policy:         rc.Policy,
			Solar:          cfg.Solar,
			Epochs:         cfg.Epochs,
			Bank:           site.Lease(i),
			Seed:           runner.DeriveSeed(cfg.Seed, fmt.Sprintf("rack/%d/%s", i, rc.Rack.Name())),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: rack %s: %w", rc.Rack.Name(), err)
		}
		sessions[i] = s
		results[i] = s.NewResult()
	}

	out := &FleetResult{
		Allocator: cfg.Allocator.Name(),
		Site:      make([]SiteEpoch, 0, cfg.Epochs),
	}
	bids := make([]float64, n)
	weights := make([]float64, n)
	for e := 0; e < cfg.Epochs; e++ {
		// 1. Collect demand bids, serially in rack order.
		var bidTotal float64
		for i, s := range sessions {
			b, err := s.DemandBidW()
			if err != nil {
				return nil, fmt.Errorf("cluster: rack %s: bid: %w", cfg.Racks[i].Rack.Name(), err)
			}
			bids[i] = b
			bidTotal += b
		}

		// 2. Split the site supply.
		supply := Supply{
			RenewableW:        cfg.Solar.At(e),
			BatteryDischargeW: site.Bank().AvailableDischargeW(d),
			BatteryChargeW:    site.Bank().AcceptableChargeW(d),
			GridBudgetW:       cfg.SiteGridBudgetW,
		}
		if err := cfg.Allocator.Weights(bids, supply, weights); err != nil {
			return nil, fmt.Errorf("cluster: allocator %s: %w", cfg.Allocator.Name(), err)
		}
		var wsum float64
		for i, w := range weights {
			if w < 0 || math.IsNaN(w) {
				return nil, fmt.Errorf("cluster: allocator %s: weight[%d] = %v", cfg.Allocator.Name(), i, w)
			}
			wsum += w
		}
		if wsum > 1+1e-9 {
			return nil, fmt.Errorf("cluster: allocator %s: weights sum to %v > 1", cfg.Allocator.Name(), wsum)
		}
		if err := site.Carve(weights, d); err != nil {
			return nil, fmt.Errorf("cluster: carve: %w", err)
		}

		// 3. Step every rack in parallel under its allocation (the
		// per-epoch barrier).
		epochs, err := runner.Map(cfg.Parallelism, n, func(i int) (sim.EpochResult, error) {
			er, err := sessions[i].StepAllocated(sim.Allocation{
				RenewableW:  weights[i] * supply.RenewableW,
				GridBudgetW: weights[i] * supply.GridBudgetW,
			})
			if err != nil {
				return sim.EpochResult{}, fmt.Errorf("rack %s: %w", cfg.Racks[i].Rack.Name(), err)
			}
			return er, nil
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: epoch %d: %w", e, err)
		}

		// 4. Settle the shared bank in rack-index order and record the
		// site trace.
		settle := site.Settle(d)
		se := SiteEpoch{
			Epoch:       e,
			RenewableW:  supply.RenewableW,
			BidW:        bidTotal,
			BatteryOutW: settle.DischargeW,
			BatteryInW:  settle.ChargeRenewableW + settle.ChargeGridW,
			BatterySoC:  site.Bank().SoC(),
		}
		for i, er := range epochs {
			se.SupplyW += er.SupplyW
			se.GridW += er.GridW
			results[i].Epochs = append(results[i].Epochs, er)
		}
		out.Site = append(out.Site, se)
	}

	out.BatteryCycles = site.Bank().Cycles()
	out.Racks = make([]RackResult, n)
	for i, rc := range cfg.Racks {
		out.Racks[i] = RackResult{Name: rc.Rack.Name(), Result: results[i]}
	}
	return out, nil
}
