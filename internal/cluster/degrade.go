// Degraded-mode fleet coordination: the types that let Run keep
// allocating when racks misbehave instead of aborting the epoch.
//
// A Disturber (the chaos engine) writes a per-epoch effect vector —
// crashed racks, agent partitions, PV derates, demand surges, grid and
// battery shocks — and Run absorbs it: a rack whose step fails is
// quarantined under a per-rack circuit breaker (the PR 3 telemetry
// breaker shape: consecutive-failure threshold, cooldown, half-open
// probe), its share of PV/battery/grid is redistributed by the live
// allocator from the next epoch simply by its absence from the bid
// vector, and its rejoin is tracked with a recovery time. A
// Checkpointer composes the WAL layer in: one rack's durable state is
// committed after every served epoch, and a commit that dies at a
// CrashFS crashpoint forces the rack through recovery before it may
// serve again.

package cluster

import "greenhetero/internal/sim"

// BreakerConfig tunes the per-rack circuit breaker — the same shape as
// the PR 3 telemetry breaker: FailureThreshold consecutive failed
// epochs open it (quarantine), CooldownEpochs are skipped, then one
// half-open probe epoch either closes it or re-opens the cooldown.
type BreakerConfig struct {
	// FailureThreshold consecutive failed epochs quarantine the rack
	// (0 = default 2, negative = never quarantine).
	FailureThreshold int
	// CooldownEpochs is how many epochs a quarantined rack skips before
	// its next probe (0 or negative = default 2).
	CooldownEpochs int
}

func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.FailureThreshold == 0 {
		b.FailureThreshold = 2
	}
	if b.CooldownEpochs <= 0 {
		b.CooldownEpochs = 2
	}
	return b
}

// Disturbance is one epoch's effect vector, written by a Disturber
// before the epoch runs. Reset gives the all-clear state; the slices
// are sized to the fleet and reused every epoch.
type Disturbance struct {
	// Down marks racks that are crashed or inside an outage window this
	// epoch: they do not bid, do not step, and count as failures toward
	// their breaker.
	Down []bool
	// Absent marks racks that have not started yet (fleet_gen startup
	// patterns): skipped silently, with no breaker or SLO bookkeeping.
	Absent []bool
	// Partitioned marks racks whose agent link is severed: the
	// coordinator cannot collect their bid, so they keep stepping under
	// their last granted allocation, reserved off the top of the epoch's
	// supply before the allocator splits the remainder.
	Partitioned []bool
	// PVScaleFrac derates each rack's delivered PV after the split
	// (cloud-bank weather fronts). The allocator prices clear-sky
	// supply — the derate lands as forecast error, exactly as a real
	// front beats a day-ahead forecast.
	//
	// ghlint:units frac
	PVScaleFrac []float64
	// IntensityScale multiplies each rack's demand intensity pattern
	// (flash-crowd workload surges).
	IntensityScale []float64
	// GridBudgetScaleFrac scales the site grid budget this epoch (grid
	// price spikes answered with demand response).
	//
	// ghlint:units frac
	GridBudgetScaleFrac float64
	// BatteryCapacityFrac is the site bank's remaining capacity as a
	// fraction of nameplate (battery aging). Must be non-increasing over
	// epochs; Run applies the delta to the shared bank via Fade.
	//
	// ghlint:units frac
	BatteryCapacityFrac float64
}

// NewDisturbance sizes an all-clear effect vector for n racks.
func NewDisturbance(n int) *Disturbance {
	d := &Disturbance{
		Down:           make([]bool, n),
		Absent:         make([]bool, n),
		Partitioned:    make([]bool, n),
		PVScaleFrac:    make([]float64, n),
		IntensityScale: make([]float64, n),
	}
	d.Reset()
	return d
}

// Reset restores the all-clear state so the vector can be reused.
func (d *Disturbance) Reset() {
	for i := range d.Down {
		d.Down[i] = false
		d.Absent[i] = false
		d.Partitioned[i] = false
		d.PVScaleFrac[i] = 1
		d.IntensityScale[i] = 1
	}
	d.GridBudgetScaleFrac = 1
	d.BatteryCapacityFrac = 1
}

// Disturber injects per-epoch disturbances into a fleet run. Disturb is
// called serially at the top of every epoch with d freshly Reset; it
// must be deterministic (seeded) — the chaos engine in internal/chaos
// is the canonical implementation.
type Disturber interface {
	Disturb(epoch int, d *Disturbance)
}

// Checkpointer persists one rack's controller state through the WAL
// layer, composing daemon crash/recovery into a fleet run. Commit is
// called serially after each of the rack's served epochs; an error
// (e.g. a CrashFS crashpoint tearing the write) counts as a breaker
// failure, and Run calls Recover before the rack's next attempt so the
// rack resumes from durable state, not from the in-memory session the
// crash notionally destroyed.
type Checkpointer interface {
	// Rack is the index of the checkpointed rack.
	Rack() int
	// Commit durably records the rack's state after epoch.
	Commit(epoch int, s *sim.Session) error
	// Recover restores s from durable state and fast-forwards it to the
	// current epoch (SkipEpoch), called once before the rack's next
	// attempt after a failed Commit.
	Recover(epoch int, s *sim.Session) error
}

// Quarantine records one breaker episode: first failed epoch, the
// successful probe epoch that rejoined the rack (-1 if the run ended
// first), and the recovery time between them.
type Quarantine struct {
	FromEpoch   int
	RejoinEpoch int
	// RecoveryEpochs is RejoinEpoch - FromEpoch (-1 while open).
	RecoveryEpochs int
}

// RackHealth aggregates one rack's degraded-mode history over a run.
// Every epoch lands in exactly one of Served/Failed/Quarantined/Absent.
type RackHealth struct {
	Name string
	// ServedEpochs is epochs the rack stepped and recorded a result
	// (including epochs served under a held allocation while
	// partitioned).
	ServedEpochs int
	// FailedEpochs is failed attempts: down windows, bid/step errors,
	// and failed half-open probes.
	FailedEpochs int
	// QuarantinedEpochs is epochs skipped inside breaker cooldowns.
	QuarantinedEpochs int
	// AbsentEpochs is pre-startup epochs (fleet_gen patterns).
	AbsentEpochs int
	// PartitionedEpochs counts served epochs under a held allocation
	// (subset of ServedEpochs).
	PartitionedEpochs int
	// Recoveries counts successful WAL recoveries (checkpointed rack
	// only).
	Recoveries int
	// Quarantines lists the rack's breaker episodes in order.
	Quarantines []Quarantine
}

// rack breaker states.
const (
	rackUp = iota
	rackQuarantined
)

// rackCtl is the coordinator's per-rack degraded-mode state: breaker,
// last-known bid, and the last granted allocation a partitioned rack
// keeps stepping under.
type rackCtl struct {
	state int // rackUp or rackQuarantined
	fails int // consecutive failed attempts
	cool  int // cooldown epochs remaining while quarantined
	// downSince is the first failed epoch of the current episode, -1
	// when healthy.
	downSince int

	// lastBidW is the rack's most recent successful demand bid — what
	// the redistribution accounting prices a missing rack at.
	lastBidW float64
	haveBid  bool

	// heldPVW and heldGridW are the last granted allocation, held by a
	// partitioned rack and reserved off the top of the split.
	heldPVW   float64
	heldGridW float64

	health RackHealth
}

// fail records a failed attempt at epoch e against breaker b.
func (c *rackCtl) fail(e int, b BreakerConfig) {
	c.fails++
	if c.downSince < 0 {
		c.downSince = e
	}
	switch {
	case c.state == rackQuarantined:
		// Failed half-open probe: re-open the cooldown.
		c.cool = b.CooldownEpochs
	case b.FailureThreshold >= 0 && c.fails >= b.FailureThreshold:
		c.state = rackQuarantined
		c.cool = b.CooldownEpochs
	}
}

// recover closes the breaker after a served-and-committed epoch e and
// returns the completed quarantine episode, if one just ended.
func (c *rackCtl) recover(e int) (Quarantine, bool) {
	var q Quarantine
	ended := false
	if c.state == rackQuarantined {
		q = Quarantine{FromEpoch: c.downSince, RejoinEpoch: e, RecoveryEpochs: e - c.downSince}
		ended = true
		c.state = rackUp
	}
	c.fails = 0
	c.downSince = -1
	return q, ended
}

// per-epoch rack modes, assigned serially before the parallel barrier.
type rackMode uint8

const (
	modeServe   rackMode = iota // bid, receive a split, step
	modeHeld                    // partitioned: step under the held allocation
	modeFail                    // down or errored: a failed attempt
	modeCooling                 // quarantined, inside the breaker cooldown
	modeAbsent                  // not started yet (fleet_gen startup)
)

type stepOutcome struct {
	er     sim.EpochResult
	served bool
	err    error
}
