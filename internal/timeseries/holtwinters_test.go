package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// diurnal builds a clean daily pattern: n days of a half-sine bell.
func diurnal(days, perDay int, peak float64) []float64 {
	out := make([]float64, 0, days*perDay)
	for d := 0; d < days; d++ {
		for i := 0; i < perDay; i++ {
			v := peak * math.Sin(math.Pi*float64(i)/float64(perDay))
			out = append(out, v*v/peak)
		}
	}
	return out
}

func TestNewHoltWintersValidation(t *testing.T) {
	if _, err := NewHoltWinters(1.5, 0.1, 0.1, 96); !errors.Is(err, ErrBadSmoothing) {
		t.Errorf("bad alpha err = %v", err)
	}
	if _, err := NewHoltWinters(0.5, 0.1, 0.1, 1); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("bad period err = %v", err)
	}
	h, err := NewHoltWinters(0.5, 0.1, 0.1, 96)
	if err != nil {
		t.Fatal(err)
	}
	if h.Period() != 96 {
		t.Errorf("period = %d", h.Period())
	}
}

func TestForecastNeedsOneSeason(t *testing.T) {
	h, err := NewHoltWinters(0.5, 0.1, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.Observe(float64(i))
		if _, err := h.Forecast(); !errors.Is(err, ErrNotPrimed) {
			t.Fatalf("obs %d: err = %v, want ErrNotPrimed", i, err)
		}
	}
	h.Observe(3)
	if _, err := h.Forecast(); err != nil {
		t.Fatalf("after one season: %v", err)
	}
}

func TestSeasonalBeatsHoltOnDiurnalSeries(t *testing.T) {
	// On a strongly seasonal series (a solar day), Holt-Winters must
	// cut one-step-ahead SSE well below the double-exponential Holt —
	// the point of the extension.
	series := diurnal(5, 48, 1500)
	holt, err := Train(series)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := TrainSeasonal(series, 48)
	if err != nil {
		t.Fatal(err)
	}
	if hw.SSE >= holt.SSE {
		t.Errorf("seasonal SSE %v not below Holt %v", hw.SSE, holt.SSE)
	}
	if hw.SSE > holt.SSE*0.5 {
		t.Errorf("seasonal SSE %v should be well below Holt %v on a clean diurnal series", hw.SSE, holt.SSE)
	}
}

func TestSeasonalForecastTracksPattern(t *testing.T) {
	series := diurnal(4, 24, 1000)
	res, err := TrainSeasonal(series[:72], 24)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHoltWinters(res.Alpha, res.Beta, res.Gamma, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range series[:72] {
		h.Observe(o)
	}
	// Predict the fourth day one step at a time.
	var sumAbs, sumTruth float64
	for _, truth := range series[72:] {
		p, err := h.Forecast()
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(p - truth)
		sumTruth += truth
		h.Observe(truth)
	}
	if sumAbs/sumTruth > 0.15 {
		t.Errorf("relative forecast error %v, want < 15%%", sumAbs/sumTruth)
	}
}

func TestTrainSeasonalValidation(t *testing.T) {
	if _, err := TrainSeasonal(make([]float64, 10), 1); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("bad period err = %v", err)
	}
	if _, err := TrainSeasonal(make([]float64, 10), 8); !errors.Is(err, ErrTooShort) {
		t.Errorf("short history err = %v", err)
	}
}

// Property: forecasts are finite and non-negative for any observation
// sequence (power series semantics).
func TestQuickSeasonalForecastFinite(t *testing.T) {
	f := func(raw []uint16, ai, bi, gi uint8) bool {
		if len(raw) < 8 {
			return true
		}
		h, err := NewHoltWinters(float64(ai)/255, float64(bi)/255, float64(gi)/255, 4)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Observe(float64(r))
		}
		p, err := h.Forecast()
		return err == nil && !math.IsNaN(p) && !math.IsInf(p, 0) && p >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrainSeasonal(b *testing.B) {
	series := diurnal(3, 96, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainSeasonal(series, 96); err != nil {
			b.Fatal(err)
		}
	}
}
