// Package timeseries implements the power predictor of the GreenHetero
// scheduler (paper §IV-B.1): Holt double-exponential smoothing with the
// smoothing parameters (α, β) trained on historical records by minimizing
// squared one-step-ahead prediction error (Eq. 5).
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Predictor is the interface the controller consumes: feed observations,
// get one-step-ahead forecasts. Holt (the paper's choice) and HoltWinters
// (the seasonal extension) both implement it; the paper notes "any other
// proven prediction approaches can be integrated into our prediction
// framework" (§IV-B.1).
//
// The controller calls both methods every scheduling epoch, so they are
// annotated allocfree contracts: every in-program implementation is
// statically verified allocation-free.
type Predictor interface {
	// Observe feeds one measured sample into the smoother.
	//
	// ghlint:allocfree
	Observe(o float64)
	// Forecast returns the one-step-ahead prediction.
	//
	// ghlint:allocfree
	Forecast() (float64, error)
}

// Holt is a double-exponential-smoothing predictor:
//
//	level:      Sₜ = α·Oₜ + (1−α)·(Sₜ₋₁ + Bₜ₋₁)   (Eq. 2)
//	trend:      Bₜ = β·(Sₜ − Sₜ₋₁) + (1−β)·Bₜ₋₁   (Eq. 3)
//	prediction: Pₜ₊₁ = Sₜ + Bₜ                      (Eq. 4)
//
// The zero value is not usable; construct with NewHolt.
type Holt struct {
	alpha float64
	beta  float64

	level  float64
	trend  float64
	primed int // number of observations seen
}

var (
	_ Predictor = (*Holt)(nil)
	_ Predictor = (*HoltWinters)(nil)
)

var (
	// ErrBadSmoothing is returned for α or β outside [0, 1].
	ErrBadSmoothing = errors.New("timeseries: smoothing parameter outside [0, 1]")
	// ErrNotPrimed is returned by Forecast before two observations arrive.
	ErrNotPrimed = errors.New("timeseries: predictor needs at least two observations")
	// ErrTooShort is returned by Train for histories shorter than 3 points.
	ErrTooShort = errors.New("timeseries: training history too short")
)

// NewHolt constructs a predictor with fixed smoothing parameters.
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha < 0 || alpha > 1 || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("%w: alpha=%v beta=%v", ErrBadSmoothing, alpha, beta)
	}
	return &Holt{alpha: alpha, beta: beta}, nil
}

// Alpha reports the level smoothing parameter.
func (h *Holt) Alpha() float64 { return h.alpha }

// Beta reports the trend smoothing parameter.
func (h *Holt) Beta() float64 { return h.beta }

// Observe feeds one observation Oₜ from the Monitor into the smoother.
//
// ghlint:allocfree
func (h *Holt) Observe(o float64) {
	switch h.primed {
	case 0:
		h.level = o
	case 1:
		h.trend = o - h.level
		h.level = o
	default:
		prevLevel := h.level
		h.level = h.alpha*o + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	}
	h.primed++
}

// Forecast returns the one-step-ahead prediction Pₜ₊₁ = Sₜ + Bₜ.
//
// ghlint:allocfree
func (h *Holt) Forecast() (float64, error) {
	if h.primed < 2 {
		return 0, ErrNotPrimed
	}
	return h.level + h.trend, nil
}

// ForecastN returns the k-step-ahead prediction Sₜ + k·Bₜ (linear trend
// extrapolation), k ≥ 1.
func (h *Holt) ForecastN(k int) (float64, error) {
	if h.primed < 2 {
		return 0, ErrNotPrimed
	}
	if k < 1 {
		return 0, fmt.Errorf("timeseries: forecast horizon %d < 1", k)
	}
	return h.level + float64(k)*h.trend, nil
}

// Reset clears observed state, keeping (α, β).
func (h *Holt) Reset() {
	h.level, h.trend, h.primed = 0, 0, 0
}

// SSE replays history through a fresh smoother with parameters (α, β) and
// returns the sum of squared one-step-ahead prediction errors ΔD².
func SSE(history []float64, alpha, beta float64) (float64, error) {
	h, err := NewHolt(alpha, beta)
	if err != nil {
		return 0, err
	}
	var sse float64
	for _, o := range history {
		if p, err := h.Forecast(); err == nil {
			d := p - o
			sse += d * d
		}
		h.Observe(o)
	}
	return sse, nil
}

// TrainResult reports the parameters chosen by Train and their error.
type TrainResult struct {
	Alpha float64
	Beta  float64
	SSE   float64
}

// Train fits (α, β) on past records by minimizing ΔD² (Eq. 5). It runs a
// coarse grid search followed by two local refinement passes, which is
// robust against the non-convexity of the SSE surface and cheap at the
// history lengths used per rack (≤ a few thousand points).
func Train(history []float64) (TrainResult, error) {
	if len(history) < 3 {
		return TrainResult{}, fmt.Errorf("%w: %d points", ErrTooShort, len(history))
	}
	best := TrainResult{SSE: math.Inf(1)}
	evaluate := func(a, b float64) {
		sse, err := SSE(history, a, b)
		if err != nil {
			return
		}
		if sse < best.SSE {
			best = TrainResult{Alpha: a, Beta: b, SSE: sse}
		}
	}

	// Coarse pass on a 0.05 grid over [0,1]².
	for a := 0.0; a <= 1.0001; a += 0.05 {
		for b := 0.0; b <= 1.0001; b += 0.05 {
			evaluate(a, b)
		}
	}
	// Two refinement passes around the incumbent.
	step := 0.05
	for pass := 0; pass < 2; pass++ {
		step /= 10
		ca, cb := best.Alpha, best.Beta
		for a := ca - 5*step; a <= ca+5*step; a += step {
			if a < 0 || a > 1 {
				continue
			}
			for b := cb - 5*step; b <= cb+5*step; b += step {
				if b < 0 || b > 1 {
					continue
				}
				evaluate(a, b)
			}
		}
	}
	return best, nil
}

// NewTrained trains (α, β) on history and returns a predictor primed with
// that same history, ready to forecast the next epoch.
func NewTrained(history []float64) (*Holt, TrainResult, error) {
	res, err := Train(history)
	if err != nil {
		return nil, TrainResult{}, err
	}
	h, err := NewHolt(res.Alpha, res.Beta)
	if err != nil {
		return nil, TrainResult{}, err
	}
	for _, o := range history {
		h.Observe(o)
	}
	return h, res, nil
}
