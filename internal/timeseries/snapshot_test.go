package timeseries

import (
	"math"
	"testing"
)

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestHoltSnapshotRoundTrip: restoring a snapshot reproduces forecasts
// bit-for-bit, including after further observations.
func TestHoltSnapshotRoundTrip(t *testing.T) {
	a, err := NewHolt(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []float64{100, 120, 90, 140, 135.5, 128.25} {
		a.Observe(o)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewHolt(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	fa, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(fa, fb) {
		t.Errorf("restored forecast %v != original %v", fb, fa)
	}
	// Continue both streams: they must stay identical.
	for _, o := range []float64{111, 99.75, 150} {
		a.Observe(o)
		b.Observe(o)
	}
	fa, _ = a.ForecastN(3)
	fb, _ = b.ForecastN(3)
	if !bitsEq(fa, fb) {
		t.Errorf("post-restore streams diverged: %v vs %v", fb, fa)
	}
}

// TestHoltSnapshotUnprimed: a fresh predictor's snapshot restores to a
// fresh predictor.
func TestHoltSnapshotUnprimed(t *testing.T) {
	a, err := NewHolt(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHolt(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Forecast(); err == nil {
		t.Error("unprimed restore produced a forecast")
	}
}

// TestHoltRestoreRejections: parameter-fingerprint mismatches and
// corrupt payloads are refused.
func TestHoltRestoreRejections(t *testing.T) {
	a, err := NewHolt(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(10)
	a.Observe(20)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other, err := NewHolt(0.5, 0.2) // different alpha
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Error("restore across different parameters accepted")
	}
	same, err := NewHolt(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Restore([]byte("{")); err == nil {
		t.Error("garbage payload accepted")
	}
	if err := same.Restore([]byte(`{"alpha":0.4,"beta":0.2,"primed":-1}`)); err == nil {
		t.Error("negative primed accepted")
	}
	if err := same.Restore([]byte(`{"alpha":0.4,"beta":0.2,"level":1e999}`)); err == nil {
		t.Error("out-of-range level accepted")
	}
}

// TestHoltWintersSnapshotRoundTrip: the seasonal model round-trips too,
// including the seasonal index array.
func TestHoltWintersSnapshotRoundTrip(t *testing.T) {
	const period = 4
	a, err := NewHoltWinters(0.3, 0.1, 0.2, period)
	if err != nil {
		t.Fatal(err)
	}
	obs := []float64{10, 20, 30, 15, 12, 22, 33, 16, 11, 21, 31, 14}
	for _, o := range obs {
		a.Observe(o)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewHoltWinters(0.3, 0.1, 0.2, period)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	fa, ea := a.Forecast()
	fb, eb := b.Forecast()
	if (ea == nil) != (eb == nil) {
		t.Fatalf("forecast error mismatch: %v vs %v", ea, eb)
	}
	if ea == nil && !bitsEq(fa, fb) {
		t.Errorf("restored forecast %v != original %v", fb, fa)
	}
	// Continue both streams through a full season: still identical.
	for _, o := range []float64{13, 23, 32, 15} {
		a.Observe(o)
		b.Observe(o)
	}
	fa, _ = a.Forecast()
	fb, _ = b.Forecast()
	if !bitsEq(fa, fb) {
		t.Errorf("post-restore streams diverged: %v vs %v", fb, fa)
	}

	// Wrong period is a fingerprint mismatch.
	c, err := NewHoltWinters(0.3, 0.1, 0.2, period+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(snap); err == nil {
		t.Error("restore across different period accepted")
	}
}
