package timeseries

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Snapshotter is the optional persistence face of a Predictor: the
// controller's durable-state plane snapshots predictors that implement
// it and restores them bit-exactly after a crash. Holt and HoltWinters
// both implement it; a custom Predictor that does not cannot be used
// with a state-dir-enabled daemon.
type Snapshotter interface {
	// Snapshot serializes the predictor's mutable state.
	Snapshot() ([]byte, error)
	// Restore applies a snapshot taken from a predictor constructed with
	// the same parameters. It validates before mutating: on error the
	// predictor is unchanged.
	Restore(data []byte) error
}

var (
	_ Snapshotter = (*Holt)(nil)
	_ Snapshotter = (*HoltWinters)(nil)
)

// ErrBadSnapshot is returned by Restore for snapshots that are corrupt,
// non-finite, or taken from a predictor with different parameters.
var ErrBadSnapshot = errors.New("timeseries: bad snapshot")

// sameBits reports exact bit identity of two floats — the right notion
// for a parameter fingerprint, where any drift means the snapshot came
// from a differently-configured predictor.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: non-finite %s", ErrBadSnapshot, name)
	}
	return nil
}

// holtState is Holt's wire form. Alpha/beta ride along as a fingerprint
// so a snapshot cannot silently restore into a predictor trained with
// different smoothing parameters.
type holtState struct {
	Alpha  float64 `json:"alpha"`
	Beta   float64 `json:"beta"`
	Level  float64 `json:"level"`
	Trend  float64 `json:"trend"`
	Primed int     `json:"primed"`
}

// Snapshot implements Snapshotter.
func (h *Holt) Snapshot() ([]byte, error) {
	return json.Marshal(holtState{
		Alpha:  h.alpha,
		Beta:   h.beta,
		Level:  h.level,
		Trend:  h.trend,
		Primed: h.primed,
	})
}

// Restore implements Snapshotter.
func (h *Holt) Restore(data []byte) error {
	var st holtState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if !sameBits(st.Alpha, h.alpha) || !sameBits(st.Beta, h.beta) {
		return fmt.Errorf("%w: parameters (α=%v, β=%v) do not match predictor (α=%v, β=%v)",
			ErrBadSnapshot, st.Alpha, st.Beta, h.alpha, h.beta)
	}
	if err := checkFinite("level", st.Level); err != nil {
		return err
	}
	if err := checkFinite("trend", st.Trend); err != nil {
		return err
	}
	if st.Primed < 0 {
		return fmt.Errorf("%w: negative primed %d", ErrBadSnapshot, st.Primed)
	}
	h.level = st.Level
	h.trend = st.Trend
	h.primed = st.Primed
	return nil
}

// holtWintersState is HoltWinters' wire form.
type holtWintersState struct {
	Alpha    float64   `json:"alpha"`
	Beta     float64   `json:"beta"`
	Gamma    float64   `json:"gamma"`
	Period   int       `json:"period"`
	Level    float64   `json:"level"`
	Trend    float64   `json:"trend"`
	Seasonal []float64 `json:"seasonal"`
	Primed   int       `json:"primed"`
}

// Snapshot implements Snapshotter.
func (h *HoltWinters) Snapshot() ([]byte, error) {
	return json.Marshal(holtWintersState{
		Alpha:    h.alpha,
		Beta:     h.beta,
		Gamma:    h.gamma,
		Period:   h.period,
		Level:    h.level,
		Trend:    h.trend,
		Seasonal: append([]float64(nil), h.seasonal...),
		Primed:   h.primed,
	})
}

// Restore implements Snapshotter.
func (h *HoltWinters) Restore(data []byte) error {
	var st holtWintersState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if !sameBits(st.Alpha, h.alpha) || !sameBits(st.Beta, h.beta) || !sameBits(st.Gamma, h.gamma) || st.Period != h.period {
		return fmt.Errorf("%w: parameters (α=%v, β=%v, γ=%v, m=%d) do not match predictor (α=%v, β=%v, γ=%v, m=%d)",
			ErrBadSnapshot, st.Alpha, st.Beta, st.Gamma, st.Period, h.alpha, h.beta, h.gamma, h.period)
	}
	if len(st.Seasonal) != h.period {
		return fmt.Errorf("%w: %d seasonal indices for period %d", ErrBadSnapshot, len(st.Seasonal), h.period)
	}
	if err := checkFinite("level", st.Level); err != nil {
		return err
	}
	if err := checkFinite("trend", st.Trend); err != nil {
		return err
	}
	for i, v := range st.Seasonal {
		if err := checkFinite(fmt.Sprintf("seasonal[%d]", i), v); err != nil {
			return err
		}
	}
	if st.Primed < 0 {
		return fmt.Errorf("%w: negative primed %d", ErrBadSnapshot, st.Primed)
	}
	h.level = st.Level
	h.trend = st.Trend
	h.seasonal = append([]float64(nil), st.Seasonal...)
	h.primed = st.Primed
	return nil
}
