package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// HoltWinters is the additive triple-exponential-smoothing predictor —
// the full method of the paper's reference (Kalekar, "Time series
// forecasting using Holt-Winters exponential smoothing"). The paper's
// prototype uses the double (level+trend) variant; solar generation is
// strongly diurnal, so the seasonal variant is the natural upgrade and
// is offered as an extension:
//
//	level:    Sₜ = α·(Oₜ − Cₜ₋ₘ) + (1−α)·(Sₜ₋₁ + Bₜ₋₁)
//	trend:    Bₜ = β·(Sₜ − Sₜ₋₁) + (1−β)·Bₜ₋₁
//	seasonal: Cₜ = γ·(Oₜ − Sₜ) + (1−γ)·Cₜ₋ₘ
//	forecast: Pₜ₊₁ = Sₜ + Bₜ + Cₜ₊₁₋ₘ
//
// with season length m (96 epochs for a 24-hour day at 15 minutes).
type HoltWinters struct {
	alpha, beta, gamma float64
	period             int

	level    float64
	trend    float64
	seasonal []float64
	primed   int
}

// ErrBadPeriod is returned for season lengths below 2.
var ErrBadPeriod = errors.New("timeseries: season length must be ≥ 2")

// NewHoltWinters constructs the seasonal predictor.
func NewHoltWinters(alpha, beta, gamma float64, period int) (*HoltWinters, error) {
	if alpha < 0 || alpha > 1 || beta < 0 || beta > 1 || gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("%w: alpha=%v beta=%v gamma=%v", ErrBadSmoothing, alpha, beta, gamma)
	}
	if period < 2 {
		return nil, fmt.Errorf("%w: %d", ErrBadPeriod, period)
	}
	return &HoltWinters{
		alpha:    alpha,
		beta:     beta,
		gamma:    gamma,
		period:   period,
		seasonal: make([]float64, period),
	}, nil
}

// Period reports the season length.
func (h *HoltWinters) Period() int { return h.period }

// Observe feeds one observation. The first season initializes the
// seasonal indices around the running mean; smoothing begins afterwards.
//
// ghlint:allocfree
func (h *HoltWinters) Observe(o float64) {
	idx := h.primed % h.period
	if h.primed < h.period {
		// Bootstrap: accumulate the first season's raw values; once the
		// season completes, convert to deviations from its mean.
		h.seasonal[idx] = o
		h.level = h.level + (o-h.level)/float64(h.primed+1) // running mean
		h.primed++
		if h.primed == h.period {
			for i := range h.seasonal {
				h.seasonal[i] -= h.level
			}
		}
		return
	}
	prevLevel := h.level
	h.level = h.alpha*(o-h.seasonal[idx]) + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	h.seasonal[idx] = h.gamma*(o-h.level) + (1-h.gamma)*h.seasonal[idx]
	h.primed++
}

// Forecast returns the one-step-ahead seasonal prediction, floored at
// zero for power series (generation cannot be negative).
//
// ghlint:allocfree
func (h *HoltWinters) Forecast() (float64, error) {
	if h.primed < h.period {
		return 0, ErrNotPrimed
	}
	idx := h.primed % h.period
	p := h.level + h.trend + h.seasonal[idx]
	if p < 0 {
		p = 0
	}
	return p, nil
}

// SeasonalSSE replays history through a fresh seasonal smoother and
// returns the sum of squared one-step-ahead errors (skipping the
// bootstrap season).
func SeasonalSSE(history []float64, alpha, beta, gamma float64, period int) (float64, error) {
	h, err := NewHoltWinters(alpha, beta, gamma, period)
	if err != nil {
		return 0, err
	}
	var sse float64
	for _, o := range history {
		if p, err := h.Forecast(); err == nil {
			d := p - o
			sse += d * d
		}
		h.Observe(o)
	}
	return sse, nil
}

// SeasonalTrainResult reports TrainSeasonal's chosen parameters.
type SeasonalTrainResult struct {
	Alpha, Beta, Gamma float64
	SSE                float64
}

// TrainSeasonal fits (α, β, γ) on history by coarse grid search plus one
// refinement pass. History must cover at least two full seasons.
func TrainSeasonal(history []float64, period int) (SeasonalTrainResult, error) {
	if period < 2 {
		return SeasonalTrainResult{}, fmt.Errorf("%w: %d", ErrBadPeriod, period)
	}
	if len(history) < 2*period {
		return SeasonalTrainResult{}, fmt.Errorf("%w: %d points for season %d", ErrTooShort, len(history), period)
	}
	best := SeasonalTrainResult{SSE: math.Inf(1)}
	evaluate := func(a, b, g float64) {
		sse, err := SeasonalSSE(history, a, b, g, period)
		if err != nil {
			return
		}
		if sse < best.SSE {
			best = SeasonalTrainResult{Alpha: a, Beta: b, Gamma: g, SSE: sse}
		}
	}
	// Coarse 0.2 grid (3 parameters make a fine grid expensive).
	for a := 0.0; a <= 1.0001; a += 0.2 {
		for b := 0.0; b <= 1.0001; b += 0.2 {
			for g := 0.0; g <= 1.0001; g += 0.2 {
				evaluate(a, b, g)
			}
		}
	}
	// One refinement pass at 0.04 around the incumbent.
	ca, cb, cg := best.Alpha, best.Beta, best.Gamma
	for a := ca - 0.16; a <= ca+0.16; a += 0.04 {
		if a < 0 || a > 1 {
			continue
		}
		for b := cb - 0.16; b <= cb+0.16; b += 0.04 {
			if b < 0 || b > 1 {
				continue
			}
			for g := cg - 0.16; g <= cg+0.16; g += 0.04 {
				if g < 0 || g > 1 {
					continue
				}
				evaluate(a, b, g)
			}
		}
	}
	return best, nil
}
