package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHoltValidation(t *testing.T) {
	tests := []struct {
		name        string
		alpha, beta float64
		wantErr     bool
	}{
		{"valid mid", 0.5, 0.3, false},
		{"valid bounds", 0, 1, false},
		{"alpha low", -0.1, 0.5, true},
		{"alpha high", 1.1, 0.5, true},
		{"beta low", 0.5, -0.01, true},
		{"beta high", 0.5, 1.5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewHolt(tt.alpha, tt.beta)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewHolt(%v, %v) err = %v, wantErr %v", tt.alpha, tt.beta, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadSmoothing) {
				t.Errorf("err = %v, want ErrBadSmoothing", err)
			}
		})
	}
}

func TestForecastNotPrimed(t *testing.T) {
	h, err := NewHolt(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Forecast(); !errors.Is(err, ErrNotPrimed) {
		t.Errorf("Forecast before data: err = %v, want ErrNotPrimed", err)
	}
	h.Observe(10)
	if _, err := h.Forecast(); !errors.Is(err, ErrNotPrimed) {
		t.Errorf("Forecast after one obs: err = %v, want ErrNotPrimed", err)
	}
	h.Observe(12)
	if _, err := h.Forecast(); err != nil {
		t.Errorf("Forecast after two obs: err = %v, want nil", err)
	}
}

func TestLinearTrendIsExact(t *testing.T) {
	// A perfectly linear series must be predicted exactly for any α, β
	// once the level/trend are primed from the first two points.
	h, err := NewHolt(0.4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		o := 100 + 5*float64(i)
		if i >= 2 {
			p, err := h.Forecast()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p-o) > 1e-9 {
				t.Fatalf("step %d: forecast %v, want %v", i, p, o)
			}
		}
		h.Observe(o)
	}
}

func TestForecastN(t *testing.T) {
	h, err := NewHolt(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(10)
	h.Observe(13) // level=13, trend=3 with α=β=1
	tests := []struct {
		k    int
		want float64
	}{{1, 16}, {2, 19}, {5, 28}}
	for _, tt := range tests {
		got, err := h.ForecastN(tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("ForecastN(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
	if _, err := h.ForecastN(0); err == nil {
		t.Error("ForecastN(0) should error")
	}
}

func TestReset(t *testing.T) {
	h, err := NewHolt(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1)
	h.Observe(2)
	h.Reset()
	if _, err := h.Forecast(); !errors.Is(err, ErrNotPrimed) {
		t.Errorf("after Reset: err = %v, want ErrNotPrimed", err)
	}
}

func TestTrainRecoversGoodParams(t *testing.T) {
	// Noisy ramp: trained predictor should beat a naive last-value
	// predictor on one-step-ahead SSE.
	rng := rand.New(rand.NewSource(3))
	var history []float64
	for i := 0; i < 200; i++ {
		history = append(history, 50+2*float64(i)+rng.NormFloat64()*3)
	}
	res, err := Train(history)
	if err != nil {
		t.Fatal(err)
	}
	// Naive last-value predictor == Holt(1, 0).
	naive, err := SSE(history, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > naive {
		t.Errorf("trained SSE %v worse than naive %v", res.SSE, naive)
	}
	if res.Alpha < 0 || res.Alpha > 1 || res.Beta < 0 || res.Beta > 1 {
		t.Errorf("trained params out of range: %+v", res)
	}
}

func TestTrainTooShort(t *testing.T) {
	if _, err := Train([]float64{1, 2}); !errors.Is(err, ErrTooShort) {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestNewTrainedForecasts(t *testing.T) {
	var history []float64
	for i := 0; i < 50; i++ {
		history = append(history, 10*float64(i))
	}
	h, res, err := NewTrained(history)
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-500) > 20 {
		t.Errorf("forecast %v, want ≈ 500 (params %+v)", p, res)
	}
}

// Property: for any observation sequence and valid parameters, the
// forecast is finite and the smoother never panics.
func TestQuickForecastFinite(t *testing.T) {
	f := func(raw []uint16, ai, bi uint8) bool {
		if len(raw) < 2 {
			return true
		}
		alpha := float64(ai) / 255
		beta := float64(bi) / 255
		h, err := NewHolt(alpha, beta)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Observe(float64(r))
		}
		p, err := h.Forecast()
		return err == nil && !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a constant series is forecast exactly (level locks on, trend 0).
func TestQuickConstantSeries(t *testing.T) {
	f := func(v uint16, ai, bi uint8) bool {
		alpha := float64(ai) / 255
		beta := float64(bi) / 255
		h, err := NewHolt(alpha, beta)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			h.Observe(float64(v))
		}
		p, err := h.Forecast()
		return err == nil && math.Abs(p-float64(v)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	var history []float64
	for i := 0; i < 672; i++ { // one week at 15-min epochs
		history = append(history, 500+200*math.Sin(float64(i)/96*2*math.Pi)+rng.NormFloat64()*20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(history); err != nil {
			b.Fatal(err)
		}
	}
}
