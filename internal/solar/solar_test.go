package solar

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero peak", Config{Profile: High, Days: 1, Step: time.Minute}},
		{"zero days", Config{Profile: High, PeakWatts: 100, Step: time.Minute}},
		{"zero step", Config{Profile: High, PeakWatts: 100, Days: 1}},
		{"bad profile", Config{PeakWatts: 100, Days: 1, Step: time.Minute}},
		{"step over a day", Config{Profile: High, PeakWatts: 100, Days: 1, Step: 48 * time.Hour}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	tr, err := DefaultHigh(2000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Len(), 7*96; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	// Night samples (midnight ± ) must be zero; midday must be positive.
	for day := 0; day < 7; day++ {
		base := day * 96
		if v := tr.Values[base]; v != 0 {
			t.Errorf("day %d midnight = %v, want 0", day, v)
		}
		if v := tr.Values[base+48]; v <= 0 { // 12:00
			t.Errorf("day %d noon = %v, want > 0", day, v)
		}
	}
	s, err := tr.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Max > 2000 {
		t.Errorf("max %v exceeds panel peak", s.Max)
	}
	if s.Min < 0 {
		t.Errorf("negative generation %v", s.Min)
	}
}

func TestHighExceedsLow(t *testing.T) {
	hi, err := DefaultHigh(2000)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := DefaultLow(2000)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := hi.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	sl, err := lo.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sh.Mean <= sl.Mean {
		t.Errorf("high mean %v ≤ low mean %v", sh.Mean, sl.Mean)
	}
	if sh.Max <= sl.Max {
		t.Errorf("high max %v ≤ low max %v", sh.Max, sl.Max)
	}
}

func TestLowIsMoreVolatile(t *testing.T) {
	// The Low trace must show more relative step-to-step fluctuation
	// during daylight (that's what drives the extra battery activity in
	// Fig. 11).
	vol := func(vals []float64) float64 {
		var sum float64
		var n int
		for i := 1; i < len(vals); i++ {
			if vals[i] > 0 && vals[i-1] > 0 {
				d := vals[i] - vals[i-1]
				m := (vals[i] + vals[i-1]) / 2
				sum += math.Abs(d) / m
				n++
			}
		}
		return sum / float64(n)
	}
	hi, err := DefaultHigh(2000)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := DefaultLow(2000)
	if err != nil {
		t.Fatal(err)
	}
	if vol(lo.Values) <= vol(hi.Values) {
		t.Errorf("low volatility %v ≤ high volatility %v", vol(lo.Values), vol(hi.Values))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Profile: Low, PeakWatts: 1500, Days: 3, Step: 15 * time.Minute, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestProfileString(t *testing.T) {
	if High.String() != "high" || Low.String() != "low" {
		t.Errorf("String: %v %v", High, Low)
	}
	if Profile(9).String() != "Profile(9)" {
		t.Errorf("unknown String = %v", Profile(9))
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("high")
	if err != nil || p != High {
		t.Errorf("ParseProfile(high) = %v, %v", p, err)
	}
	p, err = ParseProfile("low")
	if err != nil || p != Low {
		t.Errorf("ParseProfile(low) = %v, %v", p, err)
	}
	if _, err := ParseProfile("wind"); err == nil {
		t.Error("ParseProfile(wind) should error")
	}
}

// Property: generation is always within [0, peak] and zero at night for
// any seed and profile.
func TestQuickBounds(t *testing.T) {
	f := func(seed int64, profRaw bool) bool {
		prof := High
		if profRaw {
			prof = Low
		}
		tr, err := Generate(Config{Profile: prof, PeakWatts: 1000, Days: 2, Step: 15 * time.Minute, Seed: seed})
		if err != nil {
			return false
		}
		for i, v := range tr.Values {
			if v < 0 || v > 1000 {
				return false
			}
			hour := float64(i%96) / 4
			if (hour < 6 || hour > 19) && v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateWeek(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DefaultHigh(2000); err != nil {
			b.Fatal(err)
		}
	}
}
