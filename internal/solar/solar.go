// Package solar generates synthetic photovoltaic power traces standing in
// for the NREL Measurement and Instrumentation Data Center irradiance
// traces used in the paper (§V-A.2): one-week series at 15-minute
// resolution, in a "High" variant (clear, high-generation days, as in
// Fig. 8) and a "Low" variant (weaker and much more fluctuating
// generation, as in Fig. 11).
//
// The generator composes a deterministic diurnal irradiance bell with
// seeded day-level weather attenuation and intra-day cloud transients, so
// traces are reproducible from (profile, seed, panel capacity).
package solar

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"greenhetero/internal/trace"
)

// Profile selects a generation pattern.
type Profile int

const (
	// High reproduces the high-level generation trace of Fig. 8:
	// mostly clear days, smooth bells, few transients.
	High Profile = iota + 1
	// Low reproduces the low-level generation trace of Fig. 11: weaker
	// peak output and frequent cloud-induced dips.
	Low
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case High:
		return "high"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// ParseProfile maps "high"/"low" to a Profile.
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "high":
		return High, nil
	case "low":
		return Low, nil
	default:
		return 0, fmt.Errorf("solar: unknown profile %q", s)
	}
}

// ErrBadConfig is returned by Generate for invalid configurations.
var ErrBadConfig = errors.New("solar: bad config")

// Config parameterizes trace generation.
type Config struct {
	// Profile selects High or Low generation.
	Profile Profile
	// PeakWatts is the PV array's rated output under full irradiance.
	PeakWatts float64
	// Days is the trace length in days (the paper uses 7).
	Days int
	// Step is the sampling interval (the paper uses 15 minutes).
	Step time.Duration
	// Seed makes the weather reproducible.
	Seed int64
	// Start is the timestamp of the first sample; zero means
	// 2021-06-01T00:00Z (midsummer, matching long solar days).
	Start time.Time
}

// defaultStart anchors traces deterministically when Start is zero.
var defaultStart = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

// profileParams are the per-profile weather characteristics.
type profileParams struct {
	// clearness is the mean day-level attenuation (1 = fully clear).
	clearness float64
	// clearnessJitter is the day-to-day spread of attenuation.
	clearnessJitter float64
	// cloudRate is the per-sample probability of a cloud transient.
	cloudRate float64
	// cloudDepth is the mean fractional output drop during a transient.
	cloudDepth float64
	// peakScale derates the array's usable peak for the profile.
	peakScale float64
}

func paramsFor(p Profile) (profileParams, error) {
	switch p {
	case High:
		return profileParams{
			clearness:       0.95,
			clearnessJitter: 0.05,
			cloudRate:       0.02,
			cloudDepth:      0.25,
			peakScale:       1.0,
		}, nil
	case Low:
		return profileParams{
			clearness:       0.60,
			clearnessJitter: 0.20,
			cloudRate:       0.18,
			cloudDepth:      0.55,
			peakScale:       0.70,
		}, nil
	default:
		return profileParams{}, fmt.Errorf("%w: unknown profile %v", ErrBadConfig, int(p))
	}
}

// Generate produces a PV power trace in watts.
func Generate(cfg Config) (*trace.Trace, error) {
	if cfg.PeakWatts <= 0 {
		return nil, fmt.Errorf("%w: peakWatts %v", ErrBadConfig, cfg.PeakWatts)
	}
	if cfg.Days < 1 {
		return nil, fmt.Errorf("%w: days %d", ErrBadConfig, cfg.Days)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("%w: step %v", ErrBadConfig, cfg.Step)
	}
	pp, err := paramsFor(cfg.Profile)
	if err != nil {
		return nil, err
	}
	start := cfg.Start
	if start.IsZero() {
		start = defaultStart
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perDay := int(24 * time.Hour / cfg.Step)
	if perDay < 1 {
		return nil, fmt.Errorf("%w: step %v longer than a day", ErrBadConfig, cfg.Step)
	}
	values := make([]float64, 0, perDay*cfg.Days)

	const (
		sunriseHour = 6.0
		sunsetHour  = 19.0
	)
	for day := 0; day < cfg.Days; day++ {
		// Day-level attenuation: one weather draw per day.
		clear := pp.clearness + rng.NormFloat64()*pp.clearnessJitter
		clear = clamp(clear, 0.05, 1)
		// Cloud transients decay over a few samples.
		cloud := 0.0
		for i := 0; i < perDay; i++ {
			hour := float64(i) * cfg.Step.Hours()
			bell := diurnal(hour, sunriseHour, sunsetHour)
			if rng.Float64() < pp.cloudRate {
				cloud = pp.cloudDepth * (0.5 + rng.Float64())
			}
			cloud *= 0.6 // transient decay
			atten := clear * (1 - clamp(cloud, 0, 0.95))
			p := cfg.PeakWatts * pp.peakScale * bell * atten
			if p < 0 {
				p = 0
			}
			values = append(values, p)
		}
	}

	name := fmt.Sprintf("solar-%s", cfg.Profile)
	return trace.New(name, start, cfg.Step, values)
}

// diurnal returns the normalized irradiance bell at the given hour of day:
// 0 outside [sunrise, sunset], a squared half-sine inside (the squared
// shape approximates the measured irradiance curves better than a plain
// half-sine near sunrise/sunset).
//
// ghlint:units hour=h sunrise=h sunset=h result=frac
func diurnal(hour, sunrise, sunset float64) float64 {
	if hour <= sunrise || hour >= sunset {
		return 0
	}
	x := (hour - sunrise) / (sunset - sunrise)
	s := math.Sin(math.Pi * x)
	return s * s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DefaultHigh returns the one-week High trace used throughout the
// experiments: 15-minute resolution, the given panel peak watts, seed 1.
func DefaultHigh(peakWatts float64) (*trace.Trace, error) {
	return Generate(Config{Profile: High, PeakWatts: peakWatts, Days: 7, Step: 15 * time.Minute, Seed: 1})
}

// DefaultLow returns the one-week Low trace counterpart (seed 2).
func DefaultLow(peakWatts float64) (*trace.Trace, error) {
	return Generate(Config{Profile: Low, PeakWatts: peakWatts, Days: 7, Step: 15 * time.Minute, Seed: 2})
}
