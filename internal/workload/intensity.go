package workload

import (
	"fmt"
	"math"

	"greenhetero/internal/server"
)

// Intensity-aware variants of the response surface. Datacenter load is
// not constant: Fig. 6 drives the runtime experiments with a typical
// diurnal rack-power pattern. Intensity i ∈ (0, 1] scales how much of the
// workload's dynamic power range is exercised this epoch:
//
//	peakEff(i) = idle + i·util·(peak − idle)
//	perfMax(i) = perfMax · i^0.3
//
// (lighter load needs less power to saturate, and delivers somewhat less
// absolute throughput). Intensity 1 reduces to the base functions, and
// the shift of peakEff over the day is what makes the paper's runtime
// database updates (Algorithm 1 lines 8–10) worthwhile: projections
// profiled at one intensity drift as the load moves.

// ErrBadIntensity is returned for intensities outside (0, 1].
var ErrBadIntensity = fmt.Errorf("workload: intensity outside (0, 1]")

// ValidIntensity reports whether i is usable.
func ValidIntensity(i float64) bool { return i > 0 && i <= 1 }

// PeakEffWAt is PeakEffW under load intensity i.
func PeakEffWAt(s server.Spec, w Workload, intensity float64) float64 {
	return s.IdleW + intensity*w.util*s.DynamicRangeW()
}

// PerfAt is Perf under load intensity i.
func PerfAt(s server.Spec, w Workload, powerW, intensity float64) float64 {
	if !ValidIntensity(intensity) {
		return 0
	}
	if powerW < s.IdleW {
		return 0
	}
	max := PerfMax(s, w) * math.Pow(intensity, 0.3)
	if max == 0 {
		return 0
	}
	peakEff := PeakEffWAt(s, w, intensity)
	if powerW >= peakEff {
		return max
	}
	x := (powerW - s.IdleW) / (peakEff - s.IdleW)
	return max * math.Pow(x, w.gamma)
}

// UsedPowerWAt is UsedPowerW under load intensity i.
func UsedPowerWAt(s server.Spec, w Workload, powerW, intensity float64) float64 {
	if !ValidIntensity(intensity) || powerW < s.IdleW {
		return 0
	}
	peakEff := PeakEffWAt(s, w, intensity)
	if powerW > peakEff {
		return peakEff
	}
	return powerW
}
