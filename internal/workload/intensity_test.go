package workload

import (
	"math"
	"testing"
	"testing/quick"

	"greenhetero/internal/server"
)

func TestIntensityOneMatchesBase(t *testing.T) {
	s := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, SPECjbb)
	for p := 40.0; p <= 200; p += 10 {
		if got, want := PerfAt(s, w, p, 1), Perf(s, w, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("PerfAt(%v, 1) = %v, want %v", p, got, want)
		}
		if got, want := UsedPowerWAt(s, w, p, 1), UsedPowerW(s, w, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("UsedPowerWAt(%v, 1) = %v, want %v", p, got, want)
		}
	}
	if got, want := PeakEffWAt(s, w, 1), PeakEffW(s, w); math.Abs(got-want) > 1e-9 {
		t.Errorf("PeakEffWAt(1) = %v, want %v", got, want)
	}
}

func TestLowerIntensityLowersDemandAndPerf(t *testing.T) {
	s := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, SPECjbb)
	if PeakEffWAt(s, w, 0.5) >= PeakEffWAt(s, w, 1) {
		t.Error("lighter load should need less power")
	}
	// Saturated throughput falls with intensity.
	if PerfAt(s, w, s.PeakW, 0.5) >= PerfAt(s, w, s.PeakW, 1) {
		t.Error("lighter load should deliver less saturated throughput")
	}
	// But at a fixed scarce budget, light load reaches saturation sooner:
	// perf per watt can be better.
	p := s.IdleW + 0.2*s.DynamicRangeW()
	if PerfAt(s, w, p, 0.3) <= 0 {
		t.Error("light load at modest power should still run")
	}
}

func TestInvalidIntensity(t *testing.T) {
	s := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, SPECjbb)
	for _, i := range []float64{0, -0.5, 1.5} {
		if ValidIntensity(i) {
			t.Errorf("ValidIntensity(%v) = true", i)
		}
		if got := PerfAt(s, w, 120, i); got != 0 {
			t.Errorf("PerfAt(i=%v) = %v, want 0", i, got)
		}
		if got := UsedPowerWAt(s, w, 120, i); got != 0 {
			t.Errorf("UsedPowerWAt(i=%v) = %v, want 0", i, got)
		}
	}
}

// Property: at any valid intensity, PerfAt stays within [0, PerfMax] and
// is monotone in power.
func TestQuickPerfAtBounds(t *testing.T) {
	specs := server.Catalog()
	wls := Catalog()
	f := func(si, wi uint8, pRaw uint16, iRaw uint8) bool {
		s := specs[int(si)%len(specs)]
		w := wls[int(wi)%len(wls)]
		intensity := (float64(iRaw%100) + 1) / 100
		p1 := float64(pRaw % 600)
		p2 := p1 + 25
		v1 := PerfAt(s, w, p1, intensity)
		v2 := PerfAt(s, w, p2, intensity)
		return v1 >= 0 && v2 <= PerfMax(s, w)+1e-9 && v1 <= v2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}
