package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"greenhetero/internal/server"
)

func mustSpec(t *testing.T, id string) server.Spec {
	t.Helper()
	s, err := server.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustWorkload(t *testing.T, id string) Workload {
	t.Helper()
	w, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCatalogMatchesTable1(t *testing.T) {
	if got := len(Catalog()); got != 16 {
		t.Fatalf("catalog size = %d, want 16", got)
	}
	tests := []struct {
		id          string
		suite       Suite
		interactive bool
	}{
		{SPECjbb, SuiteSPEC, true},
		{WebSearch, SuiteCloudsuite, true},
		{Memcached, SuiteCloudsuite, true},
		{Streamcluster, SuitePARSEC, false},
		{Canneal, SuitePARSEC, false},
		{Mcf, SuiteSPECCPU, false},
		{SradV1, SuiteRodinia, false},
		{Cfd, SuiteRodinia, false},
	}
	for _, tt := range tests {
		t.Run(tt.id, func(t *testing.T) {
			w := mustWorkload(t, tt.id)
			if w.Suite != tt.suite || w.Interactive != tt.interactive {
				t.Errorf("workload %+v mismatch", w)
			}
			if w.util <= 0 || w.util > 1 || w.gamma <= 0 || w.gamma > 1 {
				t.Errorf("%s: parameters out of range: util %v gamma %v", tt.id, w.util, w.gamma)
			}
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("doom"); err == nil {
		t.Error("unknown lookup should error")
	}
}

func TestFigure9Set(t *testing.T) {
	set := Figure9Set()
	if len(set) != 12 {
		t.Fatalf("fig9 set = %d workloads, want 12", len(set))
	}
	var interactive, parsec, hpc int
	for _, w := range set {
		switch {
		case w.Interactive:
			interactive++
		case w.Suite == SuitePARSEC:
			parsec++
		case w.Suite == SuiteSPECCPU:
			hpc++
		}
	}
	if interactive != 3 || parsec != 8 || hpc != 1 {
		t.Errorf("composition = %d interactive / %d parsec / %d hpc, want 3/8/1", interactive, parsec, hpc)
	}
}

func TestComb6Set(t *testing.T) {
	set := Comb6Set()
	if len(set) != 4 {
		t.Fatalf("comb6 set = %d, want 4", len(set))
	}
	for _, w := range set {
		if !w.GPUCapable() {
			t.Errorf("%s in Comb6 set but not GPU capable", w.ID)
		}
	}
}

func TestPerfShape(t *testing.T) {
	s := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, SPECjbb)
	if got := Perf(s, w, s.IdleW-1); got != 0 {
		t.Errorf("perf below idle = %v, want 0", got)
	}
	peakEff := PeakEffW(s, w)
	max := PerfMax(s, w)
	if got := Perf(s, w, peakEff); math.Abs(got-max) > 1e-9 {
		t.Errorf("perf at peakEff = %v, want %v", got, max)
	}
	if got := Perf(s, w, s.PeakW+500); got != max {
		t.Errorf("perf above peak = %v, want saturated %v", got, max)
	}
	// Monotone increasing in the controllable band.
	prev := -1.0
	for p := s.IdleW; p <= peakEff; p += 2 {
		cur := Perf(s, w, p)
		if cur < prev {
			t.Fatalf("perf not monotone at %vW: %v < %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestPeakEffMatchesCaseStudy(t *testing.T) {
	// §III-B measures ≈147 W and ≈81 W for SPECjbb on the two case-study
	// servers; the util parameter was calibrated to land near those.
	a := mustSpec(t, server.XeonE52620)
	b := mustSpec(t, server.CoreI54460)
	w := mustWorkload(t, SPECjbb)
	if got := PeakEffW(a, w); math.Abs(got-147) > 3 {
		t.Errorf("E5-2620 SPECjbb peakEff = %v, want ≈147", got)
	}
	if got := PeakEffW(b, w); math.Abs(got-79) > 3 {
		t.Errorf("i5-4460 SPECjbb peakEff = %v, want ≈79", got)
	}
}

func TestGPUAffinity(t *testing.T) {
	gpu := mustSpec(t, server.TitanXp)
	cpu := mustSpec(t, server.XeonE52620)
	// Srad_v1 strongly GPU-biased (drives Fig. 14's 4.6×).
	srad := mustWorkload(t, SradV1)
	if ratio := PerfMax(gpu, srad) / PerfMax(cpu, srad); ratio < 5 {
		t.Errorf("srad GPU/CPU ratio = %v, want ≥ 5", ratio)
	}
	// Cfd nearly indifferent (Fig. 14's smallest gain).
	cfd := mustWorkload(t, Cfd)
	if ratio := PerfMax(gpu, cfd) / PerfMax(cpu, cfd); ratio < 0.9 || ratio > 1.5 {
		t.Errorf("cfd GPU/CPU ratio = %v, want ≈ 1", ratio)
	}
	// No GPU port → zero GPU performance.
	jbb := mustWorkload(t, SPECjbb)
	if got := PerfMax(gpu, jbb); got != 0 {
		t.Errorf("SPECjbb on GPU = %v, want 0", got)
	}
	if got := Perf(gpu, jbb, 400); got != 0 {
		t.Errorf("SPECjbb Perf on GPU = %v, want 0", got)
	}
}

func TestUsedPowerW(t *testing.T) {
	s := mustSpec(t, server.CoreI54460)
	w := mustWorkload(t, Memcached)
	peakEff := PeakEffW(s, w)
	tests := []struct {
		name  string
		alloc float64
		want  float64
	}{
		{"below idle wasted", s.IdleW - 5, 0},
		{"at idle", s.IdleW, s.IdleW},
		{"mid band", (s.IdleW + peakEff) / 2, (s.IdleW + peakEff) / 2},
		{"surplus capped", s.PeakW, peakEff},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := UsedPowerW(s, w, tt.alloc); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("UsedPowerW(%v) = %v, want %v", tt.alloc, got, tt.want)
			}
		})
	}
}

func TestProfileSamples(t *testing.T) {
	s := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, SPECjbb)
	rng := rand.New(rand.NewSource(1))
	samples, err := Profile(s, w, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	peakEff := PeakEffW(s, w)
	for i, smp := range samples {
		if smp.PowerW < 0 || smp.Perf < 0 {
			t.Errorf("sample %d negative: %+v", i, smp)
		}
		if smp.PowerW > peakEff*1.1 {
			t.Errorf("sample %d power %v far above peakEff %v", i, smp.PowerW, peakEff)
		}
	}
	if _, err := Profile(s, w, 1, rng); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := Profile(s, w, 5, nil); !errors.Is(err, ErrNoRNG) {
		t.Errorf("nil rng err = %v, want ErrNoRNG", err)
	}
}

func TestMeasureAtTracksTruth(t *testing.T) {
	s := mustSpec(t, server.XeonE52620)
	w := mustWorkload(t, Streamcluster)
	rng := rand.New(rand.NewSource(2))
	p := (s.IdleW + PeakEffW(s, w)) / 2
	truth := Perf(s, w, p)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += MeasureAt(s, w, p, rng).Perf
	}
	mean := sum / n
	if math.Abs(mean-truth)/truth > 0.02 {
		t.Errorf("noisy mean %v deviates from truth %v", mean, truth)
	}
}

func TestEnergyEfficiencyOrdering(t *testing.T) {
	// For SPECjbb, the desktop i5 is more energy-efficient than the
	// 2-socket Xeon (drives GreenHetero-p's ordering in §V-B.2).
	a := mustSpec(t, server.XeonE52620)
	b := mustSpec(t, server.CoreI54460)
	w := mustWorkload(t, SPECjbb)
	if EnergyEfficiency(b, w) <= EnergyEfficiency(a, w) {
		t.Errorf("i5 efficiency %v ≤ Xeon %v", EnergyEfficiency(b, w), EnergyEfficiency(a, w))
	}
}

func TestSuiteString(t *testing.T) {
	names := map[Suite]string{
		SuiteSPEC: "SPEC", SuiteCloudsuite: "Cloudsuite", SuitePARSEC: "PARSEC",
		SuiteSPECCPU: "SPECCPU", SuiteRodinia: "Rodinia", Suite(99): "Suite(99)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: Perf is within [0, PerfMax] and monotone non-decreasing in
// power for every catalog (server, workload) pair.
func TestQuickPerfBoundsMonotone(t *testing.T) {
	specs := server.Catalog()
	wls := Catalog()
	f := func(si, wi uint8, p1Raw, p2Raw uint16) bool {
		s := specs[int(si)%len(specs)]
		w := wls[int(wi)%len(wls)]
		p1, p2 := float64(p1Raw%600), float64(p2Raw%600)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		max := PerfMax(s, w)
		v1, v2 := Perf(s, w, p1), Perf(s, w, p2)
		return v1 >= 0 && v2 <= max+1e-9 && v1 <= v2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: UsedPowerW never exceeds the allocation and is zero below idle.
func TestQuickUsedPowerBounds(t *testing.T) {
	specs := server.Catalog()
	wls := Catalog()
	f := func(si, wi uint8, pRaw uint16) bool {
		s := specs[int(si)%len(specs)]
		w := wls[int(wi)%len(wls)]
		p := float64(pRaw % 600)
		used := UsedPowerW(s, w, p)
		if p < s.IdleW {
			return used == 0
		}
		return used >= 0 && used <= p+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPerfEval(b *testing.B) {
	s, err := server.Lookup(server.XeonE52620)
	if err != nil {
		b.Fatal(err)
	}
	w, err := Lookup(SPECjbb)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Perf(s, w, 120)
	}
}
