// Package workload models the evaluation workloads of Table I and, for
// each (server, workload) pair, a hidden ground-truth performance-vs-power
// response surface that stands in for real hardware.
//
// The GreenHetero controller never reads these surfaces directly: it sees
// only noisy profiled samples (Sample), fits its own quadratic
// projections, and optimizes against those — exactly as the paper's
// prototype profiles real servers with external power meters. The
// simulator, in contrast, evaluates policies on the hidden truth.
//
// Response-surface model, per (server s, workload w):
//
//	peakEffW  = idle(s) + util(w) · (peak(s) − idle(s))
//	perf(p)   = 0                                  for p < idle(s)
//	          = perfMax(s,w) · x^gamma(w)          for idle ≤ p < peakEff,
//	            where x = (p − idle)/(peakEff − idle)
//	          = perfMax(s,w)                        for p ≥ peakEffW
//
// util captures how much of the server's dynamic power range the workload
// can drive (Twitter-style interactive services sit far below 100 % CPU,
// §III-C); gamma captures the concavity of the power/performance return;
// perfMax captures the server's capability on that workload, including
// GPU affinity for the Rodinia kernels (§V-B.5).
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"greenhetero/internal/server"
)

// Suite identifies the originating benchmark suite (Table I).
type Suite int

const (
	// SuiteSPEC is SPECjbb.
	SuiteSPEC Suite = iota + 1
	// SuiteCloudsuite holds the scale-out cloud services.
	SuiteCloudsuite
	// SuitePARSEC holds the emerging shared-memory workloads.
	SuitePARSEC
	// SuiteSPECCPU holds the HPC workloads (Mcf).
	SuiteSPECCPU
	// SuiteRodinia holds the GPU-CPU heterogeneous computing kernels.
	SuiteRodinia
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	switch s {
	case SuiteSPEC:
		return "SPEC"
	case SuiteCloudsuite:
		return "Cloudsuite"
	case SuitePARSEC:
		return "PARSEC"
	case SuiteSPECCPU:
		return "SPECCPU"
	case SuiteRodinia:
		return "Rodinia"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Workload describes one Table I workload and its response parameters.
type Workload struct {
	// ID is a stable identifier, e.g. "specjbb".
	ID string
	// Name is the display name, e.g. "SPECjbb".
	Name string
	// Suite is the originating benchmark suite.
	Suite Suite
	// Metric names the performance unit (jops, ops, rps, ips).
	Metric string
	// Interactive marks tail-latency-constrained services.
	Interactive bool

	// util is the fraction of a server's dynamic power range the
	// workload drives at full intensity.
	util float64
	// gamma is the concavity of the power→performance response.
	gamma float64
	// par is the parallelism exponent used for CPU capability.
	par float64
	// gpuSpeedup is perfMax on the Titan Xp relative to the E5-2620;
	// 0 means the workload has no GPU implementation.
	gpuSpeedup float64
	// noise is the relative σ of profiled performance measurements.
	noise float64
}

// Util reports the dynamic-range utilization parameter.
func (w Workload) Util() float64 { return w.util }

// Gamma reports the response concavity parameter.
func (w Workload) Gamma() float64 { return w.gamma }

// GPUCapable reports whether the workload has a GPU implementation.
func (w Workload) GPUCapable() bool { return w.gpuSpeedup > 0 }

// Noise reports the relative measurement noise σ.
func (w Workload) Noise() float64 { return w.noise }

// Catalog IDs.
const (
	SPECjbb          = "specjbb"
	WebSearch        = "web-search"
	Memcached        = "memcached"
	Streamcluster    = "streamcluster"
	Freqmine         = "freqmine"
	Blackscholes     = "blackscholes"
	Bodytrack        = "bodytrack"
	Swaptions        = "swaptions"
	Vips             = "vips"
	X264             = "x264"
	Canneal          = "canneal"
	Mcf              = "mcf"
	SradV1           = "srad_v1"
	Particlefilter   = "particlefilter"
	Cfd              = "cfd"
	StreamclusterRod = "streamcluster-rodinia"
)

// catalog reproduces Table I with the reproduction's response parameters.
// The parameters were chosen so the policy comparison shapes of the
// paper's Figs. 9/10/14 hold: Streamcluster is near-linear and highly
// parallel (largest reallocation gain), Memcached drives little dynamic
// power and saturates early (smallest gain), Canneal has low util so
// oblivious allocations overshoot its effective peak (largest EPU gain),
// Srad_v1 is strongly GPU-biased while Cfd runs about as fast either way.
var catalog = []Workload{
	{ID: SPECjbb, Name: "SPECjbb", Suite: SuiteSPEC, Metric: "jops (99%-ile 500ms)", Interactive: true,
		util: 0.66, gamma: 0.70, par: 0.85, noise: 0.04},
	{ID: WebSearch, Name: "Web-search", Suite: SuiteCloudsuite, Metric: "ops (90%-ile 500ms)", Interactive: true,
		util: 0.62, gamma: 0.45, par: 0.80, noise: 0.06},
	{ID: Memcached, Name: "Memcached", Suite: SuiteCloudsuite, Metric: "rps (95%-ile 10ms)", Interactive: true,
		util: 0.30, gamma: 0.30, par: 0.30, noise: 0.05},
	{ID: Streamcluster, Name: "Streamcluster", Suite: SuitePARSEC, Metric: "ips",
		util: 0.95, gamma: 0.95, par: 0.95, gpuSpeedup: 5.0, noise: 0.04},
	{ID: Freqmine, Name: "Freqmine", Suite: SuitePARSEC, Metric: "ips",
		util: 0.85, gamma: 0.80, par: 0.90, noise: 0.04},
	{ID: Blackscholes, Name: "Blackscholes", Suite: SuitePARSEC, Metric: "ips",
		util: 0.90, gamma: 0.85, par: 0.92, noise: 0.03},
	{ID: Bodytrack, Name: "Bodytrack", Suite: SuitePARSEC, Metric: "ips",
		util: 0.80, gamma: 0.75, par: 0.85, noise: 0.05},
	{ID: Swaptions, Name: "Swaptions", Suite: SuitePARSEC, Metric: "ips",
		util: 0.92, gamma: 0.88, par: 0.95, noise: 0.03},
	{ID: Vips, Name: "Vips", Suite: SuitePARSEC, Metric: "ips",
		util: 0.75, gamma: 0.70, par: 0.88, noise: 0.04},
	{ID: X264, Name: "X264", Suite: SuitePARSEC, Metric: "ips",
		util: 0.88, gamma: 0.78, par: 0.90, noise: 0.05},
	{ID: Canneal, Name: "Canneal", Suite: SuitePARSEC, Metric: "ips",
		util: 0.42, gamma: 0.60, par: 0.70, noise: 0.05},
	{ID: Mcf, Name: "Mcf", Suite: SuiteSPECCPU, Metric: "ips",
		util: 0.60, gamma: 0.55, par: 0.45, noise: 0.04},
	{ID: SradV1, Name: "Srad_v1", Suite: SuiteRodinia, Metric: "ips",
		util: 0.90, gamma: 0.85, par: 0.90, gpuSpeedup: 9.0, noise: 0.04},
	{ID: Particlefilter, Name: "Particlefilter", Suite: SuiteRodinia, Metric: "ips",
		util: 0.85, gamma: 0.80, par: 0.88, gpuSpeedup: 4.0, noise: 0.05},
	{ID: Cfd, Name: "Cfd", Suite: SuiteRodinia, Metric: "ips",
		util: 0.88, gamma: 0.82, par: 0.90, gpuSpeedup: 1.15, noise: 0.04},
	{ID: StreamclusterRod, Name: "Streamcluster (Rodinia)", Suite: SuiteRodinia, Metric: "ips",
		util: 0.95, gamma: 0.95, par: 0.95, gpuSpeedup: 5.0, noise: 0.04},
}

// Catalog returns a copy of the Table I workload catalog.
func Catalog() []Workload {
	out := make([]Workload, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup finds a catalog workload by ID.
func Lookup(id string) (Workload, error) {
	for _, w := range catalog {
		if w.ID == id {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", id)
}

// Figure9Set returns the 12 workloads evaluated in Figs. 9/10: three
// interactive services, eight PARSEC workloads, and one HPC workload.
func Figure9Set() []Workload {
	ids := []string{
		SPECjbb, WebSearch, Memcached,
		Streamcluster, Freqmine, Blackscholes, Bodytrack,
		Swaptions, Vips, X264, Canneal,
		Mcf,
	}
	out := make([]Workload, len(ids))
	for i, id := range ids {
		w, err := Lookup(id)
		if err != nil {
			// Catalog IDs are compile-time constants; absence is a
			// programming error.
			panic(err)
		}
		out[i] = w
	}
	return out
}

// Comb6Set returns the GPU-platform workloads of Table IV / Fig. 14.
func Comb6Set() []Workload {
	ids := []string{StreamclusterRod, SradV1, Particlefilter, Cfd}
	out := make([]Workload, len(ids))
	for i, id := range ids {
		w, err := Lookup(id)
		if err != nil {
			panic(err)
		}
		out[i] = w
	}
	return out
}

// referenceCap is the CPU capability of the Xeon E5-2620, used as the GPU
// speedup baseline. Computed lazily per workload.
func referenceCap(w Workload) float64 {
	ref, err := server.Lookup(server.XeonE52620)
	if err != nil {
		panic(err) // catalog constant
	}
	return cpuCap(ref, w)
}

// cpuCap is the parametric CPU capability model:
// perfFactor · cores^par · freqGHz.
func cpuCap(s server.Spec, w Workload) float64 {
	factor := s.PerfFactor
	if factor <= 0 {
		factor = 1
	}
	return factor * math.Pow(float64(s.Cores), w.par) * s.BaseFreqMHz / 1000
}

// PerfMax returns the saturated throughput of workload w on server s, in
// the workload's metric units. GPU servers return 0 for workloads with no
// GPU implementation.
func PerfMax(s server.Spec, w Workload) float64 {
	const unitScale = 100 // arbitrary metric units per capability point
	switch s.Class {
	case server.ClassGPU:
		if w.gpuSpeedup <= 0 {
			return 0
		}
		return unitScale * w.gpuSpeedup * referenceCap(w)
	default:
		return unitScale * cpuCap(s, w)
	}
}

// PeakEffW returns the effective peak power draw of workload w on server
// s: the paper's "server power demand" for that workload, which can sit
// well below the nameplate peak for low-utilization services.
func PeakEffW(s server.Spec, w Workload) float64 {
	return s.IdleW + w.util*s.DynamicRangeW()
}

// Perf evaluates the hidden ground-truth response surface: throughput of
// workload w on one server s drawing allocated power powerW.
func Perf(s server.Spec, w Workload, powerW float64) float64 {
	if powerW < s.IdleW {
		return 0
	}
	max := PerfMax(s, w)
	if max == 0 {
		return 0
	}
	peakEff := PeakEffW(s, w)
	if powerW >= peakEff {
		return max
	}
	x := (powerW - s.IdleW) / (peakEff - s.IdleW)
	return max * math.Pow(x, w.gamma)
}

// UsedPowerW returns the power the server actually consumes when
// allocated powerW while running w: zero below idle (the server cannot
// start), capped at the workload's effective peak above it. The surplus
// (allocated − used) is the waste EPU charges against a policy.
func UsedPowerW(s server.Spec, w Workload, powerW float64) float64 {
	if powerW < s.IdleW {
		return 0
	}
	peakEff := PeakEffW(s, w)
	if powerW > peakEff {
		return peakEff
	}
	return powerW
}

// Sample is one profiled (power, performance) observation as the Monitor
// would report it: the ground truth perturbed by measurement noise.
type Sample struct {
	PowerW float64
	Perf   float64
}

// ErrNoRNG is returned when Profile is called without a random source.
var ErrNoRNG = errors.New("workload: nil RNG")

// Profile generates n noisy profiling samples for (s, w) spread across
// the controllable power range, emulating the paper's 2-minute training
// run measurements. Noise is multiplicative Gaussian with the workload's
// σ on performance and 1 % on power metering.
func Profile(s server.Spec, w Workload, n int, rng *rand.Rand) ([]Sample, error) {
	if rng == nil {
		return nil, ErrNoRNG
	}
	if n < 2 {
		return nil, fmt.Errorf("workload: need ≥2 samples, got %d", n)
	}
	peakEff := PeakEffW(s, w)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		// Sweep from just above idle to effective peak.
		frac := float64(i) / float64(n-1)
		p := s.IdleW + 1 + frac*(peakEff-s.IdleW-1)
		out = append(out, MeasureAt(s, w, p, rng))
	}
	return out, nil
}

// MeasureAt returns one noisy observation of (s, w) at allocated power p.
func MeasureAt(s server.Spec, w Workload, p float64, rng *rand.Rand) Sample {
	perf := Perf(s, w, p)
	perfNoisy := perf * (1 + w.noise*rng.NormFloat64())
	if perfNoisy < 0 {
		perfNoisy = 0
	}
	powerNoisy := p * (1 + 0.01*rng.NormFloat64())
	if powerNoisy < 0 {
		powerNoisy = 0
	}
	return Sample{PowerW: powerNoisy, Perf: perfNoisy}
}

// EnergyEfficiency returns throughput per watt at the workload's
// effective peak — the ranking key used by the GreenHetero-p policy.
func EnergyEfficiency(s server.Spec, w Workload) float64 {
	peakEff := PeakEffW(s, w)
	if peakEff <= 0 {
		return 0
	}
	return Perf(s, w, peakEff) / peakEff
}
