package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"greenhetero/internal/runner"
)

// ErrCrashed is returned by every CrashFS operation once the scheduled
// crashpoint has fired: the "machine" is down until Recover.
var ErrCrashed = errors.New("wal: injected crash")

// inode is one file's in-memory content. data is the applied (page
// cache) content; data[:synced] is the prefix known durable via Sync.
type inode struct {
	data   []byte
	synced int
}

// CrashFS is a deterministic in-memory FS modelling POSIX crash
// semantics for the equivalence suite. It maintains two namespaces: the
// applied one (what a running process observes) and the durable one
// (directory entries made durable by SyncDir); file content is durable
// only up to the last file Sync. Every mutating operation — Create,
// Write, Sync, Rename, Remove, SyncDir — is a numbered crashpoint.
// SetCrashAt(k) makes the k-th operation fail mid-flight: a write tears
// at a DeriveSeed-chosen prefix, everything else simply does not
// happen, and all subsequent operations return ErrCrashed until Recover
// simulates the reboot. On Recover, unsynced file content survives
// partially — a DeriveSeed-chosen amount beyond the synced prefix —
// matching real page-cache behaviour where un-fsynced data may or may
// not reach the platter. Everything is derived from the seed, so a
// given (seed, crashpoint) pair always produces the identical disk
// image.
type CrashFS struct {
	seed int64

	mu sync.Mutex
	// ghlint:guardedby mu
	names map[string]*inode
	// ghlint:guardedby mu
	durable map[string]*inode
	// ghlint:guardedby mu
	ops int
	// ghlint:guardedby mu
	crashAt int
	// ghlint:guardedby mu
	crashed bool
	// ghlint:guardedby mu
	recoveries int
}

// NewCrashFS builds an empty crash-injection FS. The seed drives torn-
// write lengths and unsynced-data survival at recovery.
func NewCrashFS(seed int64) *CrashFS {
	return &CrashFS{
		seed:    seed,
		names:   make(map[string]*inode),
		durable: make(map[string]*inode),
	}
}

// SetCrashAt arms the k-th (1-based) mutating operation to crash.
// k <= 0 disarms.
func (fs *CrashFS) SetCrashAt(k int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = k
}

// Ops reports how many mutating operations have run — the number of
// distinct crashpoints a workload exposes.
func (fs *CrashFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the armed crashpoint has fired.
func (fs *CrashFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// op consumes one crashpoint slot and reports whether the scheduled
// crash fires on this operation.
//
// ghlint:holds fs.mu
func (fs *CrashFS) op() bool {
	fs.ops++
	if fs.crashAt > 0 && fs.ops == fs.crashAt {
		fs.crashed = true
		return true
	}
	return false
}

// Recover simulates the reboot after a crash: the applied namespace is
// rebuilt from the durable one, each file keeping its synced prefix
// plus a DeriveSeed-chosen amount of the unsynced suffix (un-fsynced
// page-cache data that happened to reach the disk). The crash is
// disarmed and the FS serves operations again.
func (fs *CrashFS) Recover() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.recoveries++
	next := make(map[string]*inode, len(fs.durable))
	for name, ino := range fs.durable {
		keep := ino.synced
		if extra := len(ino.data) - ino.synced; extra > 0 {
			key := fmt.Sprintf("survive/%d/%d/%s", fs.recoveries, fs.ops, name)
			keep += int(uint64(runner.DeriveSeed(fs.seed, key)) % uint64(extra+1))
		}
		next[name] = &inode{data: append([]byte(nil), ino.data[:keep]...), synced: keep}
	}
	fs.names = next
	// Post-reboot, what survived IS the durable image.
	fs.durable = make(map[string]*inode, len(next))
	for name, ino := range next {
		fs.durable[name] = ino
	}
	fs.crashed = false
	fs.crashAt = 0
}

// memFile routes writer calls back through the CrashFS so every access
// to shared state happens under the FS lock.
type memFile struct {
	fs  *CrashFS
	ino *inode
}

// Write implements File.
func (f *memFile) Write(p []byte) (int, error) { return f.fs.write(f.ino, p) }

// Sync implements File.
func (f *memFile) Sync() error { return f.fs.syncFile(f.ino) }

// Close implements File. Closing is not a durability point and cannot
// crash.
func (f *memFile) Close() error { return nil }

func (fs *CrashFS) write(ino *inode, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, ErrCrashed
	}
	if fs.op() {
		// Torn write: a deterministic prefix reaches the page cache.
		keep := int(uint64(runner.DeriveSeed(fs.seed, fmt.Sprintf("torn/%d", fs.ops))) % uint64(len(p)+1))
		ino.data = append(ino.data, p[:keep]...)
		return keep, ErrCrashed
	}
	ino.data = append(ino.data, p...)
	return len(p), nil
}

func (fs *CrashFS) syncFile(ino *inode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if fs.op() {
		return ErrCrashed
	}
	ino.synced = len(ino.data)
	return nil
}

// Create implements FS.
func (fs *CrashFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	if fs.op() {
		return nil, ErrCrashed
	}
	ino := &inode{}
	fs.names[name] = ino
	return &memFile{fs: fs, ino: ino}, nil
}

// ReadFile implements FS. Reads observe the applied namespace (the page
// cache) and do not consume crashpoints.
func (fs *CrashFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	ino, ok := fs.names[name]
	if !ok {
		return nil, fmt.Errorf("wal: read %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

// Rename implements FS.
func (fs *CrashFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if err := checkName(oldname); err != nil {
		return err
	}
	if err := checkName(newname); err != nil {
		return err
	}
	if fs.op() {
		return ErrCrashed
	}
	ino, ok := fs.names[oldname]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldname, os.ErrNotExist)
	}
	fs.names[newname] = ino
	delete(fs.names, oldname)
	return nil
}

// Remove implements FS.
func (fs *CrashFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if err := checkName(name); err != nil {
		return err
	}
	if fs.op() {
		return ErrCrashed
	}
	if _, ok := fs.names[name]; !ok {
		return fmt.Errorf("wal: remove %s: %w", name, os.ErrNotExist)
	}
	delete(fs.names, name)
	return nil
}

// List implements FS.
func (fs *CrashFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(fs.names))
	for name := range fs.names {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: the applied namespace becomes the durable one.
// File content durability is still governed per-inode by Sync.
func (fs *CrashFS) SyncDir() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if fs.op() {
		return ErrCrashed
	}
	fs.durable = make(map[string]*inode, len(fs.names))
	for name, ino := range fs.names {
		fs.durable[name] = ino
	}
	return nil
}

// DumpTo writes the applied namespace into dir (created if needed) —
// the post-mortem artifact a failed equivalence run leaves for CI.
func (fs *CrashFS) DumpTo(dir string) error {
	fs.mu.Lock()
	files := make(map[string][]byte, len(fs.names))
	for name, ino := range fs.names {
		files[name] = append([]byte(nil), ino.data...)
	}
	fs.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
