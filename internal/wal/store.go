package wal

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// File-name scheme inside the state dir. Segments are named by the
// sequence number of their first record; snapshots by the session epoch
// they capture. Temporaries never survive an Open.
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".db"
	tmpSnap    = "tmp-snap"
	tmpPrefix  = "tmp-"
)

// TypeSnapshot frames a snapshot file's single record. Log records use
// caller-defined types below 0xff.
const TypeSnapshot byte = 0xff

// Options tunes a Store.
type Options struct {
	// SegmentRecords caps records per segment before rotation
	// (default 128).
	SegmentRecords int
	// Logf receives recovery warnings (truncation, dropped segments,
	// ignored snapshots). Nil discards them.
	Logf func(format string, args ...any)
}

// Recovered is what Open salvaged from the state dir.
type Recovered struct {
	// SnapshotEpoch is the epoch of the newest valid snapshot, -1 when
	// none exists.
	SnapshotEpoch int
	// Snapshot is that snapshot's payload (nil when none).
	Snapshot []byte
	// Records is the verified log tail beyond the snapshot, in order.
	Records []Record
	// Truncated reports whether a torn or corrupt tail was cut off.
	Truncated bool
}

// Store is the segmented write-ahead log plus snapshot manager. One
// writer at a time; Append and SaveSnapshot are fully synchronous — when
// they return nil the bytes are durable.
type Store struct {
	fs         FS
	segRecords int
	logf       func(string, ...any)

	mu sync.Mutex
	// ghlint:guardedby mu
	cur File
	// ghlint:guardedby mu
	curCount int
	// ghlint:guardedby mu
	segNames []string
	// ghlint:guardedby mu
	nextSeq uint64
	// ghlint:guardedby mu
	lastSnapEpoch int
	// ghlint:guardedby mu
	closed bool
}

// Open recovers the state dir and returns a store ready to append.
// Damage never fails an Open: a torn or corrupt tail is truncated (and
// the damaged segment physically repaired so the bad bytes cannot
// resurface), invalid snapshots are skipped, and leftover temporaries
// are deleted — each with a warning through Options.Logf. Open fails
// only on real I/O errors.
func Open(fsys FS, o Options) (*Store, Recovered, error) {
	if fsys == nil {
		return nil, Recovered{}, errors.New("wal: nil fs")
	}
	if o.SegmentRecords == 0 {
		o.SegmentRecords = 128
	}
	if o.SegmentRecords < 1 {
		return nil, Recovered{}, fmt.Errorf("wal: segment records %d", o.SegmentRecords)
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Store{
		fs:            fsys,
		segRecords:    o.SegmentRecords,
		logf:          logf,
		nextSeq:       1,
		lastSnapEpoch: -1,
	}
	rec, err := s.recover()
	if err != nil {
		return nil, Recovered{}, err
	}
	return s, rec, nil
}

// segName / snapName build the canonical file names.
func segName(firstSeq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix) }
func snapName(epoch int) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, uint64(epoch), snapSuffix)
}

// parseHex extracts the 16-hex-digit payload of name between prefix and
// suffix.
func parseHex(name, prefix, suffix string) (uint64, bool) {
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(body) != 16 {
		return 0, false
	}
	var v uint64
	for _, c := range body {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// recover scans the state dir: delete temporaries, pick the newest
// valid snapshot, replay the segment chain, truncate at the first
// damage.
func (s *Store) recover() (Recovered, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	names, err := s.fs.List()
	if err != nil {
		return Recovered{}, err
	}
	var segs, snaps, tmps []string
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			tmps = append(tmps, name)
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			segs = append(segs, name)
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			snaps = append(snaps, name)
		default:
			s.logf("wal: ignoring unrecognized file %s", name)
		}
	}

	// A temporary is an interrupted snapshot write that never reached
	// its rename: garbage by definition.
	for _, t := range tmps {
		s.logf("wal: removing leftover temporary %s", t)
		if err := s.fs.Remove(t); err != nil {
			return Recovered{}, err
		}
	}

	rec := Recovered{SnapshotEpoch: -1}
	var snapLastSeq uint64

	// Newest valid snapshot wins; invalid ones are skipped with a
	// warning (an older intact snapshot is strictly better than a
	// refusal to start).
	sort.Slice(snaps, func(i, j int) bool {
		ei, _ := parseHex(snaps[i], snapPrefix, snapSuffix)
		ej, _ := parseHex(snaps[j], snapPrefix, snapSuffix)
		return ei > ej
	})
	for _, name := range snaps {
		epoch, ok := parseHex(name, snapPrefix, snapSuffix)
		if !ok {
			s.logf("wal: ignoring snapshot with malformed name %s", name)
			continue
		}
		b, err := s.fs.ReadFile(name)
		if err != nil {
			return Recovered{}, err
		}
		frames, _, dmg := decodeFrames(b)
		if dmg != nil || len(frames) != 1 || frames[0].Type != TypeSnapshot {
			reason := "not a single snapshot frame"
			if dmg != nil {
				reason = dmg.Reason
			}
			s.logf("wal: ignoring invalid snapshot %s: %s", name, reason)
			continue
		}
		rec.SnapshotEpoch = int(epoch)
		rec.Snapshot = frames[0].Data
		snapLastSeq = frames[0].Seq
		break
	}

	// Replay the segment chain in first-seq order, truncating at the
	// first damaged or discontinuous frame.
	sort.Slice(segs, func(i, j int) bool {
		si, _ := parseHex(segs[i], segPrefix, segSuffix)
		sj, _ := parseHex(segs[j], segPrefix, segSuffix)
		return si < sj
	})
	var records []Record
	live := segs[:0]
	damaged := false
	for _, name := range segs {
		if damaged {
			// Everything after the damage point is unreachable: its
			// sequence numbers will be reissued.
			s.logf("wal: dropping unreachable segment %s", name)
			if err := s.fs.Remove(name); err != nil {
				return Recovered{}, err
			}
			continue
		}
		b, err := s.fs.ReadFile(name)
		if err != nil {
			return Recovered{}, err
		}
		frames, consumed, dmg := decodeFrames(b)
		if dmg == nil && len(frames) == 0 {
			// An empty segment is a crash between segment creation and
			// its first record. Its name (= the next sequence number)
			// will be reissued, so drop the file rather than track it.
			s.logf("wal: removing empty segment %s", name)
			if err := s.fs.Remove(name); err != nil {
				return Recovered{}, err
			}
			continue
		}
		if dmg == nil && len(frames) > 0 && len(records) > 0 && frames[0].Seq != records[len(records)-1].Seq+1 {
			dmg = &Damage{Reason: fmt.Sprintf("segment starts at seq %d, want %d", frames[0].Seq, records[len(records)-1].Seq+1)}
			frames, consumed = nil, 0
		}
		records = append(records, frames...)
		if dmg == nil {
			live = append(live, name)
			continue
		}
		damaged = true
		rec.Truncated = true
		s.logf("wal: truncating log at %s offset %d (%s); %d records survive before the cut",
			name, dmg.Offset, dmg.Reason, len(records))
		// Physically repair the segment so the bad bytes can never be
		// replayed: rewrite the clean prefix via temp+rename, or drop
		// the file when nothing survives.
		if err := s.repairSegmentLocked(name, b[:consumed]); err != nil {
			return Recovered{}, err
		}
		if consumed > 0 {
			live = append(live, name)
		}
	}
	segs = live

	// Cut the log at the snapshot watermark.
	if rec.SnapshotEpoch >= 0 {
		idx := sort.Search(len(records), func(i int) bool { return records[i].Seq > snapLastSeq })
		kept := records[idx:]
		if len(kept) > 0 && kept[0].Seq != snapLastSeq+1 {
			s.logf("wal: log resumes at seq %d but snapshot covers through %d; discarding unreachable tail", kept[0].Seq, snapLastSeq)
			kept = nil
			rec.Truncated = true
			segs, err = s.removeAllLocked(segs)
			if err != nil {
				return Recovered{}, err
			}
		}
		records = kept
		s.nextSeq = snapLastSeq + 1
	} else if len(records) > 0 && records[0].Seq != 1 {
		s.logf("wal: log starts at seq %d with no snapshot; discarding", records[0].Seq)
		records = nil
		rec.Truncated = true
		segs, err = s.removeAllLocked(segs)
		if err != nil {
			return Recovered{}, err
		}
	}
	if len(records) > 0 {
		s.nextSeq = records[len(records)-1].Seq + 1
	}

	if err := s.fs.SyncDir(); err != nil {
		return Recovered{}, err
	}
	s.segNames = append([]string(nil), segs...)
	s.lastSnapEpoch = rec.SnapshotEpoch
	rec.Records = records
	return rec, nil
}

// repairSegmentLocked rewrites a damaged segment's clean prefix
// atomically (temp → sync → rename), or removes the file when the
// prefix is empty.
//
// ghlint:holds s.mu
func (s *Store) repairSegmentLocked(name string, good []byte) error {
	if len(good) == 0 {
		return s.fs.Remove(name)
	}
	tmp := tmpPrefix + name
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(good); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Rename(tmp, name)
}

// removeAllLocked deletes the given segment files, returning the empty
// live list.
//
// ghlint:holds s.mu
func (s *Store) removeAllLocked(segs []string) ([]string, error) {
	for _, name := range segs {
		s.logf("wal: dropping unreachable segment %s", name)
		if err := s.fs.Remove(name); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Append journals one record and fsyncs it; on nil return the record is
// durable. Errors are fatal to the store's usefulness — the caller must
// treat them as a stop-the-world condition, not retry.
func (s *Store) Append(typ byte, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: store closed")
	}
	if typ == TypeSnapshot {
		return errors.New("wal: record type reserved for snapshots")
	}
	if s.cur == nil {
		name := segName(s.nextSeq)
		f, err := s.fs.Create(name)
		if err != nil {
			return fmt.Errorf("wal: create segment: %w", err)
		}
		// The segment's directory entry must be durable before any
		// record in it counts as committed.
		if err := s.fs.SyncDir(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: sync dir after segment create: %w", err)
		}
		s.cur = f
		s.curCount = 0
		s.segNames = append(s.segNames, name)
	}
	frame, err := appendFrame(nil, Record{Seq: s.nextSeq, Type: typ, Data: data})
	if err != nil {
		return err
	}
	if _, err := s.cur.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	s.nextSeq++
	s.curCount++
	if s.curCount >= s.segRecords {
		err := s.cur.Close()
		s.cur = nil
		if err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
	}
	return nil
}

// SaveSnapshot atomically persists a full-state snapshot covering every
// record appended so far (write-temp → fsync → rename → fsync-dir) and
// then prunes the log: all segments and older snapshots become
// redundant and are deleted. A crash anywhere in the sequence leaves
// either the old snapshot+log or the new snapshot governing recovery.
func (s *Store) SaveSnapshot(epoch int, state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: store closed")
	}
	if epoch < 0 {
		return fmt.Errorf("wal: snapshot epoch %d", epoch)
	}
	// Seal the open segment: every live record must be on disk under a
	// closed file before the snapshot that supersedes it exists.
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		if err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
	}
	frame, err := appendFrame(nil, Record{Seq: s.nextSeq - 1, Type: TypeSnapshot, Data: state})
	if err != nil {
		return err
	}
	f, err := s.fs.Create(tmpSnap)
	if err != nil {
		return fmt.Errorf("wal: create snapshot temp: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	name := snapName(epoch)
	if err := s.fs.Rename(tmpSnap, name); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := s.fs.SyncDir(); err != nil {
		return fmt.Errorf("wal: sync dir after snapshot: %w", err)
	}
	// Prune: the new snapshot covers the whole log, so every segment
	// and every other snapshot is dead weight. Deleting them is not a
	// correctness point — a crash mid-prune just leaves files the next
	// Open discards.
	for _, seg := range s.segNames {
		if err := s.fs.Remove(seg); err != nil {
			return fmt.Errorf("wal: prune segment: %w", err)
		}
	}
	s.segNames = nil
	names, err := s.fs.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if n != name && strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) {
			if err := s.fs.Remove(n); err != nil {
				return fmt.Errorf("wal: prune snapshot: %w", err)
			}
		}
	}
	if err := s.fs.SyncDir(); err != nil {
		return fmt.Errorf("wal: sync dir after prune: %w", err)
	}
	s.lastSnapEpoch = epoch
	return nil
}

// Segments reports how many live segment files the log currently spans.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segNames)
}

// LastSnapshotEpoch reports the epoch of the newest snapshot, -1 when
// none has been written or recovered.
func (s *Store) LastSnapshotEpoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSnapEpoch
}

// Close seals the open segment. The store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		return err
	}
	return nil
}
