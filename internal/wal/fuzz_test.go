package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWALReplay hammers the frame replay path with truncation,
// bit-flips, and garbage. Invariants: replay never panics, never
// returns a record whose re-encoding (and therefore CRC) disagrees with
// the bytes it was decoded from, keeps sequence numbers strictly
// consecutive, and consumes exactly the clean prefix.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a clean three-record log, plus mutants.
	clean := encodeFramesForTest(f, []Record{
		{Seq: 1, Type: 1, Data: []byte(`{"epoch":0}`)},
		{Seq: 2, Type: 2, Data: []byte(`{"epoch":0,"result":{}}`)},
		{Seq: 3, Type: 1, Data: []byte(`{"epoch":1}`)},
	})
	f.Add(clean)
	f.Add(clean[:len(clean)-3])                 // torn tail
	f.Add(append([]byte{0xff, 0xff}, clean...)) // garbage prefix
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, consumed, dmg := decodeFrames(b)
		if consumed < 0 || consumed > len(b) {
			t.Fatalf("consumed %d outside [0,%d]", consumed, len(b))
		}
		if dmg == nil && consumed != len(b) {
			t.Fatalf("no damage reported but only %d/%d bytes consumed", consumed, len(b))
		}
		if dmg != nil && dmg.Offset != consumed {
			t.Fatalf("damage offset %d != consumed %d", dmg.Offset, consumed)
		}
		// Every returned record must re-encode to exactly the bytes it
		// came from — which also re-proves its CRC — and the whole
		// clean prefix must round-trip.
		var re []byte
		var err error
		for i, r := range recs {
			if i > 0 && r.Seq != recs[i-1].Seq+1 {
				t.Fatalf("records %d..%d break sequence continuity: %d then %d", i-1, i, recs[i-1].Seq, r.Seq)
			}
			re, err = appendFrame(re, r)
			if err != nil {
				t.Fatalf("re-encode record %d: %v", i, err)
			}
		}
		if !bytes.Equal(re, b[:consumed]) {
			t.Fatalf("re-encoded prefix (%d bytes) != consumed input (%d bytes)", len(re), consumed)
		}
		// Paranoia: recompute each record's CRC from the consumed bytes
		// directly; a record must never survive replay with a bad CRC.
		off := 0
		for i := range recs {
			n := int(binary.LittleEndian.Uint32(b[off : off+4]))
			payload := b[off+frameHeaderLen : off+frameHeaderLen+n]
			if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[off+4:off+8]) {
				t.Fatalf("record %d passed replay with a failing CRC", i)
			}
			off += frameHeaderLen + n
		}
	})
}

func encodeFramesForTest(f *testing.F, recs []Record) []byte {
	f.Helper()
	var b []byte
	var err error
	for _, r := range recs {
		b, err = appendFrame(b, r)
		if err != nil {
			f.Fatalf("encode: %v", err)
		}
	}
	return b
}
