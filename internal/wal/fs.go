// Package wal implements the daemon's durable-state plane: a segmented,
// CRC32C-framed write-ahead log plus atomic snapshots over a small
// filesystem abstraction. The daemon journals each scheduling epoch and
// periodically compacts the log into a snapshot written with the
// write-temp → fsync → rename → fsync-dir discipline, so a crash at any
// instant leaves either the old state or the new state on disk — never
// a torn mixture presented as valid.
//
// Recovery is logical redo: because the controller session is a
// deterministic state machine (seeded RNG with a persisted draw
// counter), the log does not need to carry physical state deltas. Each
// committed record pins one epoch's journaled outcome; replay restores
// the newest valid snapshot and re-executes the journaled epochs,
// verifying each re-derived outcome byte-for-byte against the log. A
// torn or corrupt tail is truncated with a logged warning — the dropped
// epochs were never durably committed and re-execute identically when
// the daemon resumes — so recovery never refuses to start over tail
// damage.
//
// The FS seam exists for the deterministic crash-injection harness
// (CrashFS): production uses DirFS over a real directory with real
// fsyncs, tests use an in-memory filesystem that loses unsynced data at
// a scheduled crashpoint exactly the way a power cut does.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is a writable log or snapshot file.
type File interface {
	io.Writer
	// Sync forces written bytes to stable storage (fsync). Data written
	// but not synced may not survive a crash.
	Sync() error
	// Close releases the handle. Close does not imply Sync.
	Close() error
}

// FS is the flat-namespace filesystem the store runs on. Names never
// contain path separators. Implementations: DirFS (production, real
// fsyncs) and CrashFS (deterministic crash injection).
type FS interface {
	// Create truncates or creates name for writing. The new directory
	// entry is durable only after SyncDir.
	Create(name string) (File, error)
	// ReadFile returns the full current content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file. The
	// renamed entry is durable only after SyncDir.
	Rename(oldname, newname string) error
	// Remove deletes name. Durable only after SyncDir.
	Remove(name string) error
	// List returns all file names, sorted.
	List() ([]string, error)
	// SyncDir makes pending directory operations (create, rename,
	// remove) durable.
	SyncDir() error
}

// checkName rejects names that would escape the flat namespace.
func checkName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("wal: bad file name %q", name)
	}
	return nil
}

// DirFS is the production FS: a real directory with real fsyncs.
type DirFS struct {
	dir string
}

// NewDirFS creates dir if needed and returns an FS rooted there.
func NewDirFS(dir string) (*DirFS, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: empty state dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create state dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

// Dir reports the root directory.
func (fs *DirFS) Dir() string { return fs.dir }

func (fs *DirFS) path(name string) (string, error) {
	if err := checkName(name); err != nil {
		return "", err
	}
	return filepath.Join(fs.dir, name), nil
}

// Create implements FS.
func (fs *DirFS) Create(name string) (File, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", name, err)
	}
	return f, nil
}

// ReadFile implements FS.
func (fs *DirFS) ReadFile(name string) ([]byte, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Rename implements FS.
func (fs *DirFS) Rename(oldname, newname string) error {
	po, err := fs.path(oldname)
	if err != nil {
		return err
	}
	pn, err := fs.path(newname)
	if err != nil {
		return err
	}
	return os.Rename(po, pn)
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	p, err := fs.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// List implements FS.
func (fs *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list state dir: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: fsync on the directory itself, which is what
// makes renames and creates durable on POSIX filesystems.
func (fs *DirFS) SyncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return fmt.Errorf("wal: open state dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync state dir: %w", err)
	}
	return nil
}
