package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collectLogf returns a Logf that accumulates formatted warnings.
func collectLogf(dst *[]string) func(string, ...any) {
	return func(format string, args ...any) {
		*dst = append(*dst, fmt.Sprintf(format, args...))
	}
}

func mustOpen(t *testing.T, fsys FS, o Options) (*Store, Recovered) {
	t.Helper()
	s, rec, err := Open(fsys, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func appendN(t *testing.T, s *Store, typ byte, n int, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(typ, []byte(fmt.Sprintf("%s-%d", label, i))); err != nil {
			t.Fatalf("Append %s-%d: %v", label, i, err)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	fs := NewCrashFS(1)
	s, rec := mustOpen(t, fs, Options{})
	if rec.SnapshotEpoch != -1 || len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendN(t, s, 1, 5, "r")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec2 := mustOpen(t, fs, Options{})
	if len(rec2.Records) != 5 || rec2.Truncated {
		t.Fatalf("reopen recovered %d records (truncated=%v), want 5 clean", len(rec2.Records), rec2.Truncated)
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || r.Type != 1 || string(r.Data) != fmt.Sprintf("r-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestStoreSegmentRotationAndContinuity(t *testing.T) {
	fs := NewCrashFS(2)
	s, _ := mustOpen(t, fs, Options{SegmentRecords: 3})
	appendN(t, s, 1, 10, "x")
	if got := s.Segments(); got != 4 {
		t.Fatalf("segments = %d, want 4 (10 records / 3 per segment)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, rec := mustOpen(t, fs, Options{SegmentRecords: 3})
	if len(rec.Records) != 10 || rec.Truncated {
		t.Fatalf("recovered %d records (truncated=%v), want 10 clean", len(rec.Records), rec.Truncated)
	}
	// New appends continue the sequence in a fresh segment.
	appendN(t, s2, 1, 1, "y")
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec2 := mustOpen(t, fs, Options{SegmentRecords: 3})
	if len(rec2.Records) != 11 || rec2.Records[10].Seq != 11 {
		t.Fatalf("after resume-append: %d records, last seq %d", len(rec2.Records), rec2.Records[len(rec2.Records)-1].Seq)
	}
}

func TestStoreSnapshotCutsAndPrunes(t *testing.T) {
	fs := NewCrashFS(3)
	s, _ := mustOpen(t, fs, Options{})
	appendN(t, s, 1, 4, "pre")
	if err := s.SaveSnapshot(4, []byte("state@4")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if got := s.Segments(); got != 0 {
		t.Fatalf("segments after snapshot = %d, want 0 (pruned)", got)
	}
	if got := s.LastSnapshotEpoch(); got != 4 {
		t.Fatalf("LastSnapshotEpoch = %d, want 4", got)
	}
	appendN(t, s, 1, 2, "post")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec := mustOpen(t, fs, Options{})
	if rec.SnapshotEpoch != 4 || string(rec.Snapshot) != "state@4" {
		t.Fatalf("recovered snapshot epoch %d data %q", rec.SnapshotEpoch, rec.Snapshot)
	}
	if len(rec.Records) != 2 || rec.Records[0].Seq != 5 {
		t.Fatalf("tail = %d records starting at seq %d, want 2 starting at 5", len(rec.Records), rec.Records[0].Seq)
	}
	// Only the one snapshot file and the one post-snapshot segment
	// remain on disk.
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	var nSeg, nSnap int
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) {
			nSeg++
		}
		if strings.HasPrefix(n, snapPrefix) {
			nSnap++
		}
	}
	if nSeg != 1 || nSnap != 1 {
		t.Fatalf("disk has %d segments, %d snapshots (%v), want 1 and 1", nSeg, nSnap, names)
	}
}

func TestStoreTornTailTruncatesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	dfs, err := NewDirFS(dir)
	if err != nil {
		t.Fatalf("NewDirFS: %v", err)
	}
	s, _ := mustOpen(t, dfs, Options{})
	appendN(t, s, 1, 3, "r")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the last record: chop 5 bytes off the segment.
	seg := findOne(t, dir, segPrefix)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if err := os.WriteFile(seg, b[:len(b)-5], 0o644); err != nil {
		t.Fatalf("tear segment: %v", err)
	}

	var warnings []string
	s2, rec, err := Open(dfs, Options{Logf: collectLogf(&warnings)})
	if err != nil {
		t.Fatalf("Open over torn tail must succeed, got %v", err)
	}
	if !rec.Truncated || len(rec.Records) != 2 {
		t.Fatalf("recovered %d records (truncated=%v), want 2 truncated", len(rec.Records), rec.Truncated)
	}
	if !anyContains(warnings, "truncating log") {
		t.Fatalf("no truncation warning in %v", warnings)
	}
	// The damaged segment was physically repaired: a fresh Open sees a
	// clean log.
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var w2 []string
	_, rec2, err := Open(dfs, Options{Logf: collectLogf(&w2)})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec2.Truncated || len(rec2.Records) != 2 {
		t.Fatalf("after repair: %d records truncated=%v, want 2 clean", len(rec2.Records), rec2.Truncated)
	}
}

func TestStoreCorruptMiddleDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	dfs, err := NewDirFS(dir)
	if err != nil {
		t.Fatalf("NewDirFS: %v", err)
	}
	s, _ := mustOpen(t, dfs, Options{SegmentRecords: 2})
	appendN(t, s, 1, 6, "r") // three segments
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := findAll(t, dir, segPrefix)
	if len(segs) != 3 {
		t.Fatalf("have %d segments, want 3", len(segs))
	}
	// Flip one byte inside the middle segment's first record payload.
	b, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	b[frameHeaderLen+payloadFixedLen] ^= 0x40
	if err := os.WriteFile(segs[1], b, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	var warnings []string
	_, rec, err := Open(dfs, Options{SegmentRecords: 2, Logf: collectLogf(&warnings)})
	if err != nil {
		t.Fatalf("Open over corrupt middle must succeed, got %v", err)
	}
	if !rec.Truncated || len(rec.Records) != 2 {
		t.Fatalf("recovered %d records (truncated=%v), want only segment 1's 2 records", len(rec.Records), rec.Truncated)
	}
	if !anyContains(warnings, "CRC32C mismatch") || !anyContains(warnings, "dropping unreachable segment") {
		t.Fatalf("warnings missing corruption/drop notices: %v", warnings)
	}
	if got := findAll(t, dir, segPrefix); len(got) != 1 {
		t.Fatalf("%d segment files survive, want 1 (corrupt + later ones removed)", len(got))
	}
}

func TestStoreInvalidSnapshotFallsBack(t *testing.T) {
	fs := NewCrashFS(4)
	s, _ := mustOpen(t, fs, Options{})
	appendN(t, s, 1, 1, "a")
	if err := s.SaveSnapshot(1, []byte("good@1")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Plant a newer snapshot with garbage content.
	f, err := fs.Create(snapName(9))
	if err != nil {
		t.Fatalf("plant: %v", err)
	}
	if _, err := f.Write([]byte("garbage, not a frame")); err != nil {
		t.Fatalf("plant write: %v", err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatalf("plant syncdir: %v", err)
	}

	var warnings []string
	_, rec, err := Open(fs, Options{Logf: collectLogf(&warnings)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.SnapshotEpoch != 1 || string(rec.Snapshot) != "good@1" {
		t.Fatalf("recovered snapshot epoch %d %q, want fallback to epoch 1", rec.SnapshotEpoch, rec.Snapshot)
	}
	if !anyContains(warnings, "ignoring invalid snapshot") {
		t.Fatalf("no invalid-snapshot warning in %v", warnings)
	}
}

func TestStoreRemovesLeftoverTemp(t *testing.T) {
	fs := NewCrashFS(5)
	f, err := fs.Create(tmpSnap)
	if err != nil {
		t.Fatalf("plant tmp: %v", err)
	}
	if _, err := f.Write([]byte("half-written snapshot")); err != nil {
		t.Fatalf("write tmp: %v", err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	var warnings []string
	mustOpen(t, fs, Options{Logf: collectLogf(&warnings)})
	if !anyContains(warnings, "leftover temporary") {
		t.Fatalf("no temp warning in %v", warnings)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	for _, n := range names {
		if strings.HasPrefix(n, tmpPrefix) {
			t.Fatalf("temporary %s survived Open", n)
		}
	}
}

// TestStoreCrashAtEveryOp is the WAL-level half of the equivalence
// proof: a scripted append/snapshot workload is crashed at every
// mutating FS operation, recovered, and re-opened; recovery must always
// yield a clean prefix of the committed records, and completing the
// workload afterwards must always produce the full committed history.
func TestStoreCrashAtEveryOp(t *testing.T) {
	const seed = 42
	workload := func(fs *CrashFS) error {
		s, rec, err := Open(fs, Options{SegmentRecords: 2})
		if err != nil {
			return err
		}
		// Resume the payload counter from what recovery salvaged.
		next := 0
		if rec.SnapshotEpoch >= 0 {
			next = rec.SnapshotEpoch
		}
		next += len(rec.Records)
		for ; next < 7; next++ {
			// The snapshot point is a pure function of progress, so a
			// restarted run re-decides it identically.
			if next == 4 && s.LastSnapshotEpoch() < 4 {
				if err := s.SaveSnapshot(4, []byte("snap4")); err != nil {
					return err
				}
			}
			if err := s.Append(1, []byte(fmt.Sprintf("v%d", next))); err != nil {
				return err
			}
		}
		return s.Close()
	}

	// Baseline: uninterrupted run.
	base := NewCrashFS(seed)
	if err := workload(base); err != nil {
		t.Fatalf("baseline workload: %v", err)
	}
	total := base.Ops()
	if total < 20 {
		t.Fatalf("workload exposes only %d crashpoints; expected a rich schedule", total)
	}
	_, baseRec, err := Open(base, Options{SegmentRecords: 2})
	if err != nil {
		t.Fatalf("baseline reopen: %v", err)
	}
	baseState := replayPayloads(baseRec)

	for k := 1; k <= total; k++ {
		fs := NewCrashFS(seed)
		fs.SetCrashAt(k)
		err := workload(fs)
		if !fs.Crashed() {
			t.Fatalf("crashpoint %d never fired", k)
		}
		if err == nil {
			// The crash may fire inside Close()'s no-op path only if the
			// workload already finished; any committed state must then be
			// complete. Fall through to the restart below either way.
			t.Logf("crashpoint %d: workload returned nil", k)
		}
		fs.Recover()

		// Restart and run to completion.
		if err := workload(fs); err != nil {
			t.Fatalf("crashpoint %d: restarted workload failed: %v", k, err)
		}
		_, rec, err := Open(fs, Options{SegmentRecords: 2})
		if err != nil {
			t.Fatalf("crashpoint %d: final open: %v", k, err)
		}
		if got := replayPayloads(rec); got != baseState {
			t.Fatalf("crashpoint %d: final state %q != baseline %q", k, got, baseState)
		}
	}
}

// replayPayloads folds a recovery into a comparable string: the
// snapshot watermark plus every tail payload.
func replayPayloads(rec Recovered) string {
	var b strings.Builder
	fmt.Fprintf(&b, "snap=%d|", rec.SnapshotEpoch)
	for _, r := range rec.Records {
		b.Write(r.Data)
		b.WriteByte('|')
	}
	return b.String()
}

// TestCrashFSDurabilityModel pins the semantics the store relies on.
func TestCrashFSDurabilityModel(t *testing.T) {
	fs := NewCrashFS(7)
	f, err := fs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("synced")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	// A second file is created but its directory entry is never synced.
	g, err := fs.Create("b")
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if _, err := g.Write([]byte("lost")); err != nil {
		t.Fatalf("Write b: %v", err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf("Sync b: %v", err)
	}

	fs.SetCrashAt(fs.Ops() + 1)
	if _, err := f.Write([]byte("torn")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed write returned %v, want ErrCrashed", err)
	}
	if err := fs.SyncDir(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op returned %v, want ErrCrashed", err)
	}
	fs.Recover()

	// File a: the synced prefix survives; the torn suffix may partially
	// survive but never beyond what was written.
	b, err := fs.ReadFile("a")
	if err != nil {
		t.Fatalf("ReadFile a after recover: %v", err)
	}
	if !bytes.HasPrefix(b, []byte("synced")) || len(b) > len("syncedtorn") {
		t.Fatalf("file a recovered as %q", b)
	}
	// File b: never linked durably — gone.
	if _, err := fs.ReadFile("b"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file b after recover: err=%v, want not-exist", err)
	}

	// Determinism: the same seed and crash schedule produce the same
	// disk image.
	run := func() []byte {
		fs := NewCrashFS(7)
		f, _ := fs.Create("a")
		_, _ = f.Write([]byte("synced"))
		_ = f.Sync()
		_ = fs.SyncDir()
		g, _ := fs.Create("b")
		_, _ = g.Write([]byte("lost"))
		_ = g.Sync()
		fs.SetCrashAt(fs.Ops() + 1)
		_, _ = f.Write([]byte("torn"))
		fs.Recover()
		out, _ := fs.ReadFile("a")
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("CrashFS recovery is not deterministic for identical schedules")
	}
}

func TestDirFSRejectsPathEscapes(t *testing.T) {
	dfs, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirFS: %v", err)
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := dfs.Create(name); err == nil {
			t.Errorf("Create(%q) succeeded, want error", name)
		}
	}
}

func findOne(t *testing.T, dir, prefix string) string {
	t.Helper()
	got := findAll(t, dir, prefix)
	if len(got) != 1 {
		t.Fatalf("found %d files with prefix %s, want 1", len(got), prefix)
	}
	return got[0]
}

func findAll(t *testing.T, dir, prefix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func anyContains(haystack []string, needle string) bool {
	for _, h := range haystack {
		if strings.Contains(h, needle) {
			return true
		}
	}
	return false
}
