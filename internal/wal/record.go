package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame layout, little-endian:
//
//	[4B payload length][4B CRC32C(payload)][payload]
//	payload = [8B seq][1B type][data]
//
// The CRC covers the whole payload, so a bit-flip anywhere in seq,
// type, or data is detected; a torn write shows up as a short frame.
// Sequence numbers are strictly consecutive across segment boundaries,
// which turns a lost segment or a replayed stale file into a detectable
// gap rather than silent state divergence.
const (
	frameHeaderLen  = 8
	payloadFixedLen = 9
	// MaxRecordBytes bounds a frame's payload; lengths beyond it are
	// treated as corruption, not allocation requests.
	MaxRecordBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one framed WAL entry.
type Record struct {
	Seq  uint64
	Type byte
	Data []byte
}

// appendFrame appends r's wire encoding to dst.
func appendFrame(dst []byte, r Record) ([]byte, error) {
	if len(r.Data) > MaxRecordBytes-payloadFixedLen {
		return nil, fmt.Errorf("wal: record too large (%d bytes)", len(r.Data))
	}
	var hdr [frameHeaderLen + payloadFixedLen]byte
	payloadLen := payloadFixedLen + len(r.Data)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(hdr[8:16], r.Seq)
	hdr[16] = r.Type
	crc := crc32.Update(crc32.Checksum(hdr[8:], crcTable), crcTable, r.Data)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, r.Data...), nil
}

// Damage describes why frame decoding stopped before the end of a
// segment.
type Damage struct {
	// Offset is the byte offset where the damaged frame starts.
	Offset int
	Reason string
}

// decodeFrames replays frames from b until the end of the buffer or the
// first damaged frame. It returns the valid records, the number of
// clean bytes consumed, and a non-nil Damage when the tail is torn,
// corrupt, or breaks sequence continuity. Record data is copied out of
// b.
func decodeFrames(b []byte) (recs []Record, consumed int, dmg *Damage) {
	off := 0
	var prevSeq uint64
	for off < len(b) {
		rest := b[off:]
		if len(rest) < frameHeaderLen {
			return recs, off, &Damage{Offset: off, Reason: "torn frame header"}
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n < payloadFixedLen || n > MaxRecordBytes {
			return recs, off, &Damage{Offset: off, Reason: fmt.Sprintf("implausible frame length %d", n)}
		}
		if len(rest) < frameHeaderLen+n {
			return recs, off, &Damage{Offset: off, Reason: "torn frame payload"}
		}
		payload := rest[frameHeaderLen : frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off, &Damage{Offset: off, Reason: "CRC32C mismatch"}
		}
		seq := binary.LittleEndian.Uint64(payload[0:8])
		if len(recs) > 0 && seq != prevSeq+1 {
			return recs, off, &Damage{Offset: off, Reason: fmt.Sprintf("sequence gap: %d after %d", seq, prevSeq)}
		}
		prevSeq = seq
		recs = append(recs, Record{
			Seq:  seq,
			Type: payload[8],
			Data: append([]byte(nil), payload[payloadFixedLen:]...),
		})
		off += frameHeaderLen + n
	}
	return recs, off, nil
}
