// Package runner is the deterministic parallel execution engine behind
// every multi-run evaluation in this repository: policy comparisons
// (sim.Compare), the experiment sweeps and ablations, the multi-rack
// cluster simulation, and the ghbench command all fan their independent
// simulation runs through Map.
//
// The determinism contract: a simulation run is a pure function of its
// Config — every run owns its RNG (seeded from the config), its
// database, and its policy instances, and shares only immutable inputs
// (racks, specs, traces). Map exploits that: it executes runs on a
// bounded worker pool and writes each result into its index slot, so
// the output is bit-identical to a serial loop regardless of how the
// scheduler interleaves workers. Parallelism 1 degenerates to exactly
// the legacy serial loop (in order, on the calling goroutine, stopping
// at the first failure).
//
// Where a fan-out needs per-run noise streams that are independent but
// reproducible, DeriveSeed maps (parent seed, stable run key) to a
// child seed — never derive seeds from completion order.
package runner

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultParallelism resolves a Parallelism knob: values above 1 are
// taken as-is, 1 means serial, and 0 (or negative) means one worker per
// available CPU (runtime.GOMAXPROCS(0)).
func DefaultParallelism(p int) int {
	if p > 0 {
		return p
	}
	// Worker count never reaches results: Map writes by index, so output
	// is bit-identical at every parallelism level (see parallel_test.go).
	return runtime.GOMAXPROCS(0) //lint:ghlint ignore determinism pool sizing only, proven result-invariant
}

// PanicError is a panic recovered from a task, preserving the panic
// value and the stack of the panicking goroutine. Map converts panics
// to errors in every mode (including serial) so that a panicking run
// yields the same outcome regardless of parallelism, and one bad run
// cannot tear down the whole pool.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %d panicked: %v", e.Index, e.Value)
}

// Map runs fn(0) … fn(n-1) with at most parallelism concurrent calls
// and returns the results in index order. fn must depend only on its
// index (and state owned by that run); results are then identical for
// every parallelism level.
//
// Error semantics are deterministic too: if any task fails, Map returns
// the error of the lowest failing index — the same error a serial loop
// would have stopped at. Tasks above an already-failed index may be
// skipped (the batch is abandoned), but every index below the lowest
// known failure still runs, so the reported error never depends on
// scheduling. Panics are captured as *PanicError.
func Map[T any](parallelism, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	p := DefaultParallelism(parallelism)
	if p > n {
		p = n
	}
	if p == 1 {
		// Legacy serial behaviour: in order, stop at the first failure.
		for i := 0; i < n; i++ {
			v, err := call(i, fn)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next task index to claim
		minErr atomic.Int64 // lowest failing index; n = none
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	minErr.Store(int64(n))
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > minErr.Load() {
					// A lower index already failed; this task's result
					// could never be observed. Skip it.
					continue
				}
				v, err := call(i, fn)
				if err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if m := minErr.Load(); m < int64(n) {
		return nil, errs[m]
	}
	return out, nil
}

// call invokes one task with panic capture.
func call[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// DeriveSeed deterministically derives a child RNG seed from a parent
// seed and a stable run key (a policy name, a sweep cell label, a rack
// index — anything that identifies the run independent of scheduling).
// The same (parent, key) pair always yields the same child; distinct
// keys decorrelate their noise streams. The key is hashed with FNV-1a
// and mixed with the parent through a SplitMix64 finalizer.
func DeriveSeed(parent int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := uint64(parent) ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
