package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDefaultParallelism(t *testing.T) {
	if got := DefaultParallelism(1); got != 1 {
		t.Errorf("DefaultParallelism(1) = %d", got)
	}
	if got := DefaultParallelism(7); got != 7 {
		t.Errorf("DefaultParallelism(7) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := DefaultParallelism(0); got != want {
		t.Errorf("DefaultParallelism(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := DefaultParallelism(-3); got != want {
		t.Errorf("DefaultParallelism(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, par := range []int{1, 2, 4, 8, 64} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			out, err := Map(par, 100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 100 {
				t.Fatalf("len = %d", len(out))
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map(4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n should error")
	}
}

// TestMapLowestIndexError pins the deterministic error contract: with
// several failing tasks, Map reports the lowest failing index — exactly
// the error a serial loop stops at — at every parallelism level.
func TestMapLowestIndexError(t *testing.T) {
	errA := errors.New("task 3 failed")
	errB := errors.New("task 60 failed")
	for _, par := range []int{1, 2, 8} {
		_, err := Map(par, 100, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 60:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("parallelism %d: err = %v, want lowest-index error %v", par, err, errA)
		}
	}
}

func TestMapPanicRecovered(t *testing.T) {
	for _, par := range []int{1, 4} {
		_, err := Map(par, 10, func(i int) (int, error) {
			if i == 5 {
				panic("boom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallelism %d: err = %v, want *PanicError", par, err)
		}
		if pe.Index != 5 || pe.Value != "boom" {
			t.Errorf("parallelism %d: PanicError = %+v", par, pe)
		}
		if !strings.Contains(pe.Error(), "task 5 panicked: boom") {
			t.Errorf("Error() = %q", pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Error("panic stack not captured")
		}
	}
}

// TestMapPanicBeatsLaterError: a panic at a lower index wins over an
// ordinary error at a higher index.
func TestMapPanicBeatsLaterError(t *testing.T) {
	_, err := Map(4, 20, func(i int) (int, error) {
		if i == 2 {
			panic(i)
		}
		if i == 10 {
			return 0, errors.New("later")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want panic at index 2", err)
	}
}

// TestMapBoundedConcurrency verifies the pool never runs more tasks at
// once than the requested parallelism.
func TestMapBoundedConcurrency(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	_, err := Map(par, 50, func(i int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		// Let the first few tasks pile up before anyone finishes.
		once.Do(func() { close(gate) })
		<-gate
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Errorf("peak concurrency %d exceeds parallelism %d", p, par)
	}
}

// TestMapStress is the -race-targeted pool hammer: many batches of tiny
// tasks, with error-returning and panicking runs mixed in, checking
// error propagation, panic recovery, and that every worker exits (no
// goroutine leak across batches).
func TestMapStress(t *testing.T) {
	before := runtime.NumGoroutine()
	var completed atomic.Int64
	for round := 0; round < 50; round++ {
		round := round
		n := 1 + round%97
		failAt := -1
		if round%3 == 1 {
			failAt = round % n
		}
		panicAt := -1
		if round%5 == 2 {
			panicAt = (round * 7) % n
		}
		out, err := Map(1+round%9, n, func(i int) (int, error) {
			completed.Add(1)
			switch i {
			case failAt:
				return 0, fmt.Errorf("round %d task %d", round, i)
			case panicAt:
				panic(i)
			}
			return i + round, nil
		})
		wantFail := failAt
		if panicAt >= 0 && (wantFail < 0 || panicAt < wantFail) {
			wantFail = panicAt
		}
		switch {
		case wantFail >= 0 && err == nil:
			t.Fatalf("round %d: expected failure at %d, got none", round, wantFail)
		case wantFail < 0 && err != nil:
			t.Fatalf("round %d: unexpected error %v", round, err)
		case wantFail < 0:
			for i, v := range out {
				if v != i+round {
					t.Fatalf("round %d: out[%d] = %d", round, i, v)
				}
			}
		case wantFail == failAt:
			if want := fmt.Sprintf("round %d task %d", round, failAt); err.Error() != want {
				t.Fatalf("round %d: err = %q, want %q", round, err, want)
			}
		default:
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Index != panicAt {
				t.Fatalf("round %d: err = %v, want panic at %d", round, err, panicAt)
			}
		}
	}
	if completed.Load() == 0 {
		t.Fatal("no tasks ran")
	}
	// Clean shutdown: the pool retains no goroutines between batches.
	runtime.GC()
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d — pool leak", before, after)
	}
}

// TestMapConcurrentBatches runs pools from many goroutines at once (the
// nested fan-out shape the experiment runners use: cells × policies).
func TestMapConcurrentBatches(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := Map(4, 40, func(i int) (int, error) {
				inner, err := Map(2, 5, func(j int) (int, error) { return i + j, nil })
				if err != nil {
					return 0, err
				}
				sum := 0
				for _, v := range inner {
					sum += v
				}
				return sum + g, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range out {
				if want := 5*i + 10 + g; v != want {
					t.Errorf("g=%d out[%d] = %d, want %d", g, i, v, want)
				}
			}
		}()
	}
	wg.Wait()
}
