package runner

import (
	"math/rand"
	"testing"
)

// TestDeriveSeedGolden is the table-driven pin of the per-run seed
// derivation: these exact child seeds guard the noise streams of every
// committed experiment — a refactor that re-shuffles them silently
// invalidates reproduced numbers, so any change here must be deliberate.
func TestDeriveSeedGolden(t *testing.T) {
	tests := []struct {
		parent int64
		key    string
		want   int64
	}{
		{0, "", -4359066618775142608},
		{0, "a", 6857225946766476583},
		{1, "", -5920651555061792927},
		{1, "a", -4540585005282519652},
		{7, "policy/Uniform", -4768881500929439488},
		{7, "rack/0", 8176743925675637398},
		{7, "rack/1", -3260096916553030041},
		{-1, "sweep/cell=3", 9105995197551158155},
		{42, "sweep/noise=10", -6225444651435170691},
		{1 << 40, "sweep/budget=500", 186755352167390613},
	}
	for _, tc := range tests {
		if got := DeriveSeed(tc.parent, tc.key); got != tc.want {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", tc.parent, tc.key, got, tc.want)
		}
		// Stability: repeated calls agree (no hidden global state).
		if a, b := DeriveSeed(tc.parent, tc.key), DeriveSeed(tc.parent, tc.key); a != b {
			t.Errorf("DeriveSeed(%d, %q) unstable: %d vs %d", tc.parent, tc.key, a, b)
		}
	}
}

// TestDeriveSeedDistinctKeys: distinct run keys must decorrelate, and
// the same key under distinct parents must differ too.
func TestDeriveSeedDistinctKeys(t *testing.T) {
	keys := []string{
		"", "a", "b", "aa", "ab", "ba",
		"policy/Uniform", "policy/Manual", "policy/GreenHetero",
		"policy/GreenHetero-a", "policy/GreenHetero-p",
		"rack/0", "rack/1", "rack/2",
		"sweep/budget=500", "sweep/budget=600",
	}
	for _, parent := range []int64{0, 1, 7, -9, 1 << 33} {
		seen := make(map[int64]string, len(keys))
		for _, k := range keys {
			s := DeriveSeed(parent, k)
			if prev, dup := seen[s]; dup {
				t.Errorf("parent %d: keys %q and %q collide on seed %d", parent, prev, k, s)
			}
			seen[s] = k
		}
	}
	for _, k := range keys {
		if DeriveSeed(1, k) == DeriveSeed(2, k) {
			t.Errorf("key %q: parents 1 and 2 collide", k)
		}
	}
}

// TestDeriveSeedStreamsDiffer: child seeds must drive visibly different
// noise streams (the whole point of per-run derivation).
func TestDeriveSeedStreamsDiffer(t *testing.T) {
	a := rand.New(rand.NewSource(DeriveSeed(7, "rack/0")))
	b := rand.New(rand.NewSource(DeriveSeed(7, "rack/1")))
	same := 0
	for i := 0; i < 32; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/32 identical draws across distinct keys", same)
	}
}
