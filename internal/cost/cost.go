// Package cost models utility grid charges for a rack: volumetric energy
// cost plus the peak-demand charge that motivates the paper's grid
// under-provisioning argument (§V-B.4 cites peak grid power at up to
// $13.61/kW, after Goiri et al.'s Parasol). GreenHetero's better power
// utilization lets operators cap the grid feed lower, and this package
// quantifies what that cap is worth.
package cost

import (
	"errors"
	"fmt"
)

// Tariff prices grid consumption.
type Tariff struct {
	// EnergyPerKWh is the volumetric price in $/kWh.
	EnergyPerKWh float64
	// PeakPerKW is the monthly demand charge in $/kW of peak draw.
	PeakPerKW float64
}

// DefaultTariff uses $0.10/kWh energy and the paper's $13.61/kW peak
// demand charge.
func DefaultTariff() Tariff {
	return Tariff{EnergyPerKWh: 0.10, PeakPerKW: 13.61}
}

// Validate checks the tariff for negative prices.
func (t Tariff) Validate() error {
	if t.EnergyPerKWh < 0 || t.PeakPerKW < 0 {
		return fmt.Errorf("%w: %+v", ErrBadTariff, t)
	}
	return nil
}

var (
	// ErrBadTariff is returned for negative prices.
	ErrBadTariff = errors.New("cost: bad tariff")
	// ErrNoSeries is returned for empty grid series.
	ErrNoSeries = errors.New("cost: empty grid power series")
	// ErrBadStep is returned for non-positive step durations.
	ErrBadStep = errors.New("cost: step hours must be positive")
)

// Bill itemizes the grid charges for one billing window.
type Bill struct {
	// EnergyKWh is the total grid energy consumed. The dimension lattice
	// tracks energy, not scale — the kilo prefix is this package's own
	// convention.
	//
	// ghlint:units Wh
	EnergyKWh float64
	// PeakKW is the highest epoch-average grid draw (power; kilo prefix
	// as above).
	//
	// ghlint:units W
	PeakKW float64
	// EnergyCost and PeakCost are the itemized charges; Total sums them.
	EnergyCost float64
	PeakCost   float64
	Total      float64
}

// FromSeries bills a per-epoch grid power series (watts) sampled every
// stepHours hours.
func FromSeries(gridW []float64, stepHours float64, t Tariff) (Bill, error) {
	if err := t.Validate(); err != nil {
		return Bill{}, err
	}
	if len(gridW) == 0 {
		return Bill{}, ErrNoSeries
	}
	if stepHours <= 0 {
		return Bill{}, fmt.Errorf("%w: %v", ErrBadStep, stepHours)
	}
	var b Bill
	for i, w := range gridW {
		if w < 0 {
			return Bill{}, fmt.Errorf("cost: negative grid power %v at epoch %d", w, i)
		}
		b.EnergyKWh += w * stepHours / 1000
		if w/1000 > b.PeakKW {
			b.PeakKW = w / 1000
		}
	}
	b.EnergyCost = b.EnergyKWh * t.EnergyPerKWh
	b.PeakCost = b.PeakKW * t.PeakPerKW
	b.Total = b.EnergyCost + b.PeakCost
	return b, nil
}

// UnderProvisionSaving compares two bills (e.g. GreenHetero vs Uniform at
// equal throughput targets) and reports the saving of the first over the
// second; negative means the first costs more.
func UnderProvisionSaving(a, b Bill) float64 { return b.Total - a.Total }
