package cost

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFromSeries(t *testing.T) {
	// Four 15-minute epochs: 1000, 500, 0, 1500 W.
	bill, err := FromSeries([]float64{1000, 500, 0, 1500}, 0.25, DefaultTariff())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bill.EnergyKWh-0.75) > 1e-12 {
		t.Errorf("energy = %v kWh, want 0.75", bill.EnergyKWh)
	}
	if bill.PeakKW != 1.5 {
		t.Errorf("peak = %v kW, want 1.5", bill.PeakKW)
	}
	if math.Abs(bill.EnergyCost-0.075) > 1e-12 {
		t.Errorf("energy cost = %v", bill.EnergyCost)
	}
	if math.Abs(bill.PeakCost-1.5*13.61) > 1e-9 {
		t.Errorf("peak cost = %v", bill.PeakCost)
	}
	if math.Abs(bill.Total-(bill.EnergyCost+bill.PeakCost)) > 1e-12 {
		t.Errorf("total = %v", bill.Total)
	}
}

func TestFromSeriesErrors(t *testing.T) {
	if _, err := FromSeries(nil, 0.25, DefaultTariff()); !errors.Is(err, ErrNoSeries) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := FromSeries([]float64{1}, 0, DefaultTariff()); !errors.Is(err, ErrBadStep) {
		t.Errorf("zero step err = %v", err)
	}
	if _, err := FromSeries([]float64{1}, 0.25, Tariff{EnergyPerKWh: -1}); !errors.Is(err, ErrBadTariff) {
		t.Errorf("bad tariff err = %v", err)
	}
	if _, err := FromSeries([]float64{-5}, 0.25, DefaultTariff()); err == nil {
		t.Error("negative power should error")
	}
}

func TestUnderProvisionSaving(t *testing.T) {
	a := Bill{Total: 10}
	b := Bill{Total: 25}
	if got := UnderProvisionSaving(a, b); got != 15 {
		t.Errorf("saving = %v, want 15", got)
	}
	if got := UnderProvisionSaving(b, a); got != -15 {
		t.Errorf("saving = %v, want -15", got)
	}
}

// Property: the bill is monotone — scaling the series up never lowers
// any component.
func TestQuickBillMonotone(t *testing.T) {
	f := func(raw []uint16, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		series := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		k := 1 + float64(scaleRaw)/64
		for i, r := range raw {
			series[i] = float64(r)
			scaled[i] = float64(r) * k
		}
		a, err1 := FromSeries(series, 0.25, DefaultTariff())
		b, err2 := FromSeries(scaled, 0.25, DefaultTariff())
		if err1 != nil || err2 != nil {
			return false
		}
		return b.EnergyKWh >= a.EnergyKWh-1e-9 && b.PeakKW >= a.PeakKW-1e-9 && b.Total >= a.Total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
