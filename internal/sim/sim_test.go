package sim

import (
	"errors"
	"testing"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/power"
	"greenhetero/internal/server"
	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

var simStart = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func comb1Rack(t testing.TB) *server.Rack {
	t.Helper()
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	r, err := server.NewRack("comb1", server.Group{Spec: a, Count: 5}, server.Group{Spec: b, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustWorkload(t testing.TB, id string) workload.Workload {
	t.Helper()
	w, err := workload.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// scarcityLadder builds a constant-step trace sweeping supply fractions
// of the given anchor demand.
func scarcityLadder(t testing.TB, fracs []float64, anchorW float64, perLevel int) *trace.Trace {
	t.Helper()
	var vals []float64
	for _, f := range fracs {
		for i := 0; i < perLevel; i++ {
			vals = append(vals, f*anchorW)
		}
	}
	tr, err := trace.New("ladder", simStart, 15*time.Minute, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseConfig(t testing.TB) Config {
	t.Helper()
	tr, err := solar.DefaultHigh(2200)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rack:        comb1Rack(t),
		Workload:    mustWorkload(t, workload.SPECjbb),
		Policy:      policy.Solver{Adaptive: true},
		Solar:       tr,
		Epochs:      96,
		GridBudgetW: 1000,
		Seed:        7,
	}
}

func TestRunValidation(t *testing.T) {
	base := baseConfig(t)
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil rack", func(c *Config) { c.Rack = nil }},
		{"nil policy", func(c *Config) { c.Policy = nil }},
		{"nil solar", func(c *Config) { c.Solar = nil }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"negative start", func(c *Config) { c.StartEpoch = -1 }},
		{"negative grid", func(c *Config) { c.GridBudgetW = -1 }},
		{"empty workload", func(c *Config) { c.Workload = workload.Workload{} }},
		{"bad soc", func(c *Config) { c.InitialSoC = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := baseConfig(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("epochs = %d, want %d", len(res.Epochs), cfg.Epochs)
	}
	if res.Policy != "GreenHetero" || res.Workload != workload.SPECjbb {
		t.Errorf("labels = %q %q", res.Policy, res.Workload)
	}
	for _, e := range res.Epochs {
		if e.EPU < 0 || e.EPU > 1 {
			t.Errorf("epoch %d: EPU %v out of range", e.Epoch, e.EPU)
		}
		if e.UsedW > e.SupplyW+e.DemandW { // defensive sanity
			t.Errorf("epoch %d: used %v >> supply %v", e.Epoch, e.UsedW, e.SupplyW)
		}
		if e.SupplyW < 0 || e.Perf < 0 || e.GridW < 0 {
			t.Errorf("epoch %d: negative flows %+v", e.Epoch, e)
		}
		if e.GridW > cfg.GridBudgetW+1e-9 {
			t.Errorf("epoch %d: grid %v exceeds budget", e.Epoch, e.GridW)
		}
		if e.BatterySoC < 0.6-1e-9 || e.BatterySoC > 1+1e-9 {
			t.Errorf("epoch %d: SoC %v outside DoD band", e.Epoch, e.BatterySoC)
		}
		var sum float64
		for _, f := range e.Fractions {
			if f < -1e-9 {
				t.Errorf("epoch %d: negative fraction %v", e.Epoch, f)
			}
			sum += f
		}
		if sum > 1+1e-9 {
			t.Errorf("epoch %d: fractions sum %v", e.Epoch, sum)
		}
	}
	// The first epoch must have run training (fresh database).
	if !res.Epochs[0].TrainingRun {
		t.Error("first epoch should be a training run")
	}
	if res.Epochs[1].TrainingRun {
		t.Error("training must not repeat for a profiled pair")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := baseConfig(t)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Epochs {
		if r1.Epochs[i].Perf != r2.Epochs[i].Perf || r1.Epochs[i].EPU != r2.Epochs[i].EPU {
			t.Fatalf("epoch %d differs across identical runs", i)
		}
	}
	cfg.Seed = 8
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Epochs {
		if r1.Epochs[i].Perf != r3.Epochs[i].Perf {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noisy runs")
	}
}

func TestCaseAEpochsAreUnconstrained(t *testing.T) {
	// With abundant renewable all day, every post-training epoch is
	// Case A: near-perfect EPU and near-max performance for *any*
	// policy (the paper: adaptive allocation has little impact when
	// power is abundant).
	cfg := baseConfig(t)
	abundant, err := trace.New("abundant", simStart, 15*time.Minute, constVals(5000, 48))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Solar = abundant
	cfg.Epochs = 48
	cfg.Intensity = ConstantIntensity(0.9)

	results, err := Compare(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}})
	if err != nil {
		t.Fatal(err)
	}
	uni, gh := results["Uniform"], results["GreenHetero"]
	ratio := gh.MeanPerf() / uni.MeanPerf()
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("abundant-power ratio = %v, want ≈ 1", ratio)
	}
	for _, e := range gh.Epochs[1:] {
		if e.Case != power.CaseA {
			t.Errorf("epoch %d: case %v, want A", e.Epoch, e.Case)
		}
	}
}

func constVals(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestScarcityOrderingMatchesPaper(t *testing.T) {
	// Under insufficient renewable power (Figs. 9/10 regime) the paper's
	// ordering must hold: GreenHetero ≥ GreenHetero-a ≥ Uniform, every
	// policy ≥ Uniform, and GreenHetero's gain in the paper's 1.2–2.2×
	// band (±0.3 slack for our substrate).
	rack := comb1Rack(t)
	anchor := rack.PeakW() * 0.83 // ≈ full SPECjbb demand
	tr := scarcityLadder(t, []float64{0.45, 0.55, 0.65, 0.75, 0.85, 0.95}, anchor, 6)
	for _, wid := range []string{workload.SPECjbb, workload.Streamcluster, workload.Memcached} {
		wid := wid
		t.Run(wid, func(t *testing.T) {
			cfg := Config{
				Rack: rack, Workload: mustWorkload(t, wid), Solar: tr,
				Epochs: tr.Len(), GridBudgetW: 0, InitialSoC: 0.6,
				Seed: 7, Intensity: ConstantIntensity(1),
			}
			results, err := Compare(cfg, policy.All())
			if err != nil {
				t.Fatal(err)
			}
			uni := results["Uniform"].MeanPerfScarce()
			gh := results["GreenHetero"].MeanPerfScarce()
			gha := results["GreenHetero-a"].MeanPerfScarce()
			for name, r := range results {
				if name == "Uniform" {
					continue
				}
				if r.MeanPerfScarce() < uni*0.98 {
					t.Errorf("%s (%v) below Uniform (%v)", name, r.MeanPerfScarce(), uni)
				}
			}
			if gh < gha*0.98 {
				t.Errorf("GreenHetero (%v) below GreenHetero-a (%v)", gh, gha)
			}
			gain := gh / uni
			if gain < 1.2 || gain > 2.5 {
				t.Errorf("gain = %vx, want within the paper band ≈[1.2, 2.2]", gain)
			}
			// EPU improves too (Fig. 10 direction).
			if results["GreenHetero"].MeanEPUScarce() <= results["Uniform"].MeanEPUScarce() {
				t.Error("GreenHetero EPU not above Uniform")
			}
		})
	}
}

func TestHighTraceRuntimeShape(t *testing.T) {
	// Fig. 8 shape: on the High trace over 24 h, GreenHetero ≈ 1.2–1.8×
	// Uniform in scarce epochs, ≈ 1× in Case A epochs; the battery
	// reaches its DoD floor overnight; grid takes over afterwards.
	cfg := baseConfig(t)
	results, err := Compare(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}})
	if err != nil {
		t.Fatal(err)
	}
	uni, gh := results["Uniform"], results["GreenHetero"]
	scarceGain := gh.MeanPerfScarce() / uni.MeanPerfScarce()
	if scarceGain < 1.2 || scarceGain > 2.0 {
		t.Errorf("scarce gain = %v, want ≈ 1.5", scarceGain)
	}
	var hitDoD, usedGrid, chargedBattery bool
	for _, e := range gh.Epochs {
		if e.BatterySoC <= 0.605 {
			hitDoD = true
		}
		if e.GridW > 0 {
			usedGrid = true
		}
		if e.BatteryInW > 0 {
			chargedBattery = true
		}
	}
	if !hitDoD {
		t.Error("battery never reached DoD over 24h (Fig. 8b expects a long overnight discharge)")
	}
	if !usedGrid {
		t.Error("grid never used (Fig. 8b expects grid takeover after DoD)")
	}
	if !chargedBattery {
		t.Error("battery never charged (Fig. 8b expects daytime charging)")
	}
	// Average PAR in a heterogeneity-favoring band (paper ≈ 58 %).
	if par := gh.MeanPAR(); par < 0.5 || par > 0.75 {
		t.Errorf("mean PAR = %v, want ≈ 0.58–0.65", par)
	}
}

func TestLowTraceMoreBatteryActivity(t *testing.T) {
	// Fig. 11: the Low trace causes more charge/discharge transitions
	// than the High trace.
	cfg := baseConfig(t)
	cfg.Epochs = 96 * 3
	high, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := solar.DefaultLow(2200)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Solar = low
	lowRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if transitions(lowRes) <= transitions(high) {
		t.Errorf("low trace transitions %d ≤ high %d", transitions(lowRes), transitions(high))
	}
}

// transitions counts battery direction changes (charge↔discharge).
func transitions(r *Result) int {
	var n int
	prev := 0
	for _, e := range r.Epochs {
		cur := 0
		switch {
		case e.BatteryOutW > 1:
			cur = -1
		case e.BatteryInW > 1:
			cur = 1
		}
		if cur != 0 && prev != 0 && cur != prev {
			n++
		}
		if cur != 0 {
			prev = cur
		}
	}
	return n
}

func TestGridBudgetSweep(t *testing.T) {
	// Fig. 12 direction: the scarcer the grid budget, the larger
	// GreenHetero's advantage once batteries drain.
	rack := comb1Rack(t)
	night, err := trace.New("night", simStart, 15*time.Minute, constVals(0, 24))
	if err != nil {
		t.Fatal(err)
	}
	gains := make([]float64, 0, 3)
	for _, budget := range []float64{600, 900, 1200} {
		cfg := Config{
			Rack: rack, Workload: mustWorkload(t, workload.SPECjbb), Solar: night,
			Epochs: 24, GridBudgetW: budget, InitialSoC: 0.6, Seed: 7,
			Intensity: ConstantIntensity(1),
		}
		results, err := Compare(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}})
		if err != nil {
			t.Fatal(err)
		}
		gains = append(gains, results["GreenHetero"].MeanPerf()/results["Uniform"].MeanPerf())
	}
	if !(gains[0] >= gains[1] && gains[1] >= gains[2]) {
		t.Errorf("gains %v not decreasing with budget", gains)
	}
}

func TestGPURackSradGain(t *testing.T) {
	// Fig. 14: on the CPU+GPU rack, Srad_v1 shows the largest gain
	// (paper: up to 4.6×) and Cfd the smallest.
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	g, err := server.Lookup(server.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	rack, err := server.NewRack("comb6", server.Group{Spec: a, Count: 5}, server.Group{Spec: g, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := scarcityLadder(t, []float64{0.45, 0.55, 0.65, 0.75}, rack.PeakW()*0.85, 6)
	gains := make(map[string]float64)
	for _, w := range workload.Comb6Set() {
		cfg := Config{
			Rack: rack, Workload: w, Solar: tr, Epochs: tr.Len(),
			GridBudgetW: 0, InitialSoC: 0.6, Seed: 7, Intensity: ConstantIntensity(1),
		}
		results, err := Compare(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}})
		if err != nil {
			t.Fatal(err)
		}
		gains[w.ID] = results["GreenHetero"].MeanPerfScarce() / results["Uniform"].MeanPerfScarce()
	}
	if gains[workload.SradV1] < 2.5 {
		t.Errorf("srad gain = %v, want large (paper 4.6x)", gains[workload.SradV1])
	}
	for id, g := range gains {
		if id == workload.SradV1 {
			continue
		}
		if g > gains[workload.SradV1] {
			t.Errorf("%s gain %v exceeds srad %v", id, g, gains[workload.SradV1])
		}
	}
	if gains[workload.Cfd] > gains[workload.Particlefilter] {
		t.Errorf("cfd gain %v above particlefilter %v (cfd should be smallest)", gains[workload.Cfd], gains[workload.Particlefilter])
	}
}

func TestCompareFreshManualState(t *testing.T) {
	// Compare must not leak Manual's trial table between scenarios.
	cfg := baseConfig(t)
	cfg.Epochs = 12
	pols := []policy.Policy{&policy.Manual{}}
	if _, err := Compare(cfg, pols); err != nil {
		t.Fatal(err)
	}
	// Second call with a different rack shape must still work (a stale
	// cached 2-group ratio on a 3-group rack would error).
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.XeonE52603)
	if err != nil {
		t.Fatal(err)
	}
	c, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	rack3, err := server.NewRack("comb5", server.Group{Spec: a, Count: 2}, server.Group{Spec: b, Count: 2}, server.Group{Spec: c, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rack = rack3
	if _, err := Compare(cfg, []policy.Policy{&policy.Manual{}}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalIntensityShape(t *testing.T) {
	f := DiurnalIntensity(96)
	for e := 0; e < 96; e++ {
		v := f(e)
		if v <= 0 || v > 1 {
			t.Fatalf("intensity(%d) = %v out of range", e, v)
		}
	}
	// Midday must exceed midnight (business-hours hump).
	if f(56) <= f(0) { // 14:00 vs 00:00
		t.Errorf("midday %v not above midnight %v", f(56), f(0))
	}
	// Degenerate epochsPerDay falls back to constant full load.
	if DiurnalIntensity(0)(5) != 1 {
		t.Error("zero epochsPerDay should yield 1")
	}
}

func BenchmarkRun24h(b *testing.B) {
	tr, err := solar.DefaultHigh(2200)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Rack:        comb1Rack(b),
		Workload:    mustWorkload(b, workload.SPECjbb),
		Policy:      policy.Solver{Adaptive: true},
		Solar:       tr,
		Epochs:      96,
		GridBudgetW: 1000,
		Seed:        7,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWeekLongStability runs the paper's full one-week trace: invariants
// must hold at every epoch, the battery must cycle repeatedly, and the
// adaptive database must keep refitting without degrading.
func TestWeekLongStability(t *testing.T) {
	if testing.Short() {
		t.Skip("week-long run")
	}
	cfg := baseConfig(t)
	cfg.Epochs = 7 * 96
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 7*96 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.EPU < 0 || e.EPU > 1 || e.SupplyW < 0 || e.Perf < 0 {
			t.Fatalf("epoch %d: invariants violated: %+v", e.Epoch, e)
		}
		if e.BatterySoC < 0.6-1e-9 || e.BatterySoC > 1+1e-9 {
			t.Fatalf("epoch %d: SoC %v", e.Epoch, e.BatterySoC)
		}
	}
	if res.BatteryCycles < 5 {
		t.Errorf("battery cycles = %d over a week, want ≥ 5 (nightly)", res.BatteryCycles)
	}
	// Day 7 performance must not collapse relative to day 2 (the
	// database refits must not degrade the projections over time).
	day := func(d int) float64 {
		var sum float64
		for _, e := range res.Epochs[d*96 : (d+1)*96] {
			sum += e.Perf
		}
		return sum
	}
	if day(6) < day(1)*0.85 {
		t.Errorf("day 7 perf %v collapsed vs day 2 %v", day(6), day(1))
	}
}

// TestSessionStepwise exercises the Session API directly.
func TestSessionStepwise(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Epochs = 4
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != "GreenHetero" || s.WorkloadLabel() != workload.SPECjbb {
		t.Errorf("labels = %s/%s", s.Policy(), s.WorkloadLabel())
	}
	if s.EpochHours() != 0.25 {
		t.Errorf("epoch hours = %v", s.EpochHours())
	}
	for i := 0; i < 4; i++ {
		if s.Done() {
			t.Fatalf("done after %d epochs", i)
		}
		if s.Epoch() != i {
			t.Fatalf("epoch index = %d, want %d", s.Epoch(), i)
		}
		er, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if er.Epoch != i {
			t.Errorf("result epoch = %d", er.Epoch)
		}
	}
	if !s.Done() {
		t.Error("not done after budget")
	}
	// Stepping past Done keeps working (daemon mode): the trace end
	// value holds.
	if _, err := s.Step(); err != nil {
		t.Fatalf("step past done: %v", err)
	}
	if s.Bank() == nil || s.DB() == nil {
		t.Error("nil accessors")
	}
}
