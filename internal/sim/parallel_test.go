package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"greenhetero/internal/policy"
)

// TestCompareSerialParallelEquivalence is the determinism contract for
// the comparison engine: the same config compared at Parallelism 1
// (the exact legacy serial loop) and Parallelism 8 must produce
// bit-identical results for every policy — every epoch record, every
// fraction, every battery cycle.
func TestCompareSerialParallelEquivalence(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Epochs = 24

	serial, err := CompareParallel(cfg, policy.All(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CompareParallel(cfg, policy.All(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("policy counts differ: %d vs %d", len(serial), len(parallel))
	}
	for name, sr := range serial {
		pr, ok := parallel[name]
		if !ok {
			t.Fatalf("policy %s missing from parallel results", name)
		}
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("policy %s: serial and parallel results differ", name)
		}
	}
	// Compare (the default entry point) must agree with both.
	def, err := Compare(cfg, policy.All())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, def) {
		t.Error("Compare default parallelism diverges from serial")
	}
}

// TestCompareParallelRepeatable: repeated parallel comparisons are
// bit-identical to each other (no scheduling-order leakage).
func TestCompareParallelRepeatable(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Epochs = 16
	a, err := CompareParallel(cfg, policy.All(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareParallel(cfg, policy.All(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two parallel comparisons of the same config differ")
	}
}

// TestCompareParallelErrorDeterminism: an invalid config must surface
// the same (first-policy) error at every parallelism level.
func TestCompareParallelErrorDeterminism(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Epochs = 0 // invalid: every run fails
	var msgs []string
	for _, par := range []int{1, 8} {
		_, err := CompareParallel(cfg, policy.All(), par)
		if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("parallelism %d: err = %v, want ErrBadConfig", par, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs by parallelism: %q vs %q", msgs[0], msgs[1])
	}
	if _, err := CompareParallel(baseConfig(t), nil, 4); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no policies: err = %v, want ErrBadConfig", err)
	}
}

// BenchmarkCompareParallel measures the comparison engine's wall-clock
// scaling: the five Table III policies on a 24h SPECjbb run, at
// parallelism 1 (legacy serial) and 4. On multi-core hardware the
// parallel variant should approach a len(policies)-way speedup; output
// is bit-identical either way (see the equivalence tests above).
func BenchmarkCompareParallel(b *testing.B) {
	cfg := baseConfig(b)
	cfg.Epochs = 96
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CompareParallel(cfg, policy.All(), par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
