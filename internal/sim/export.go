package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the per-epoch record for external plotting (the
// paper's figures are time series of exactly these columns).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"epoch", "case", "intensity", "renewable_w", "demand_w", "supply_w",
		"grid_w", "battery_out_w", "battery_in_w", "battery_soc",
		"par", "perf", "used_w", "epu", "training_run",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sim: write csv header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range r.Epochs {
		par := 0.0
		var sum float64
		for _, fr := range e.Fractions {
			sum += fr
		}
		if sum > 0 {
			par = e.Fractions[0] / sum
		}
		rec := []string{
			strconv.Itoa(e.Epoch),
			e.Case.String(),
			f(e.Intensity),
			f(e.RenewableW),
			f(e.DemandW),
			f(e.SupplyW),
			f(e.GridW),
			f(e.BatteryOutW),
			f(e.BatteryInW),
			f(e.BatterySoC),
			f(par),
			f(e.Perf),
			f(e.UsedW),
			f(e.EPU),
			strconv.FormatBool(e.TrainingRun),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sim: write csv epoch %d: %w", e.Epoch, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sim: flush csv: %w", err)
	}
	return nil
}
