// Package sim is the experimental testbed: it binds the solar trace, the
// battery bank, the grid feed, the heterogeneous rack, and the hidden
// workload response surfaces into an epoch-driven simulation, and runs
// the GreenHetero controller (or a baseline policy) against them.
//
// The simulator plays the role of the paper's physical prototype
// (§V-A.2): it owns the ground truth the controller can only observe
// through noisy measurements, evaluates each epoch's allocation on that
// truth, and records performance, EPU, and power flows per epoch.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"greenhetero/internal/battery"
	"greenhetero/internal/core"
	"greenhetero/internal/fit"
	"greenhetero/internal/metrics"
	"greenhetero/internal/policy"
	"greenhetero/internal/power"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/runner"
	"greenhetero/internal/server"
	"greenhetero/internal/timeseries"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// IntensityFunc maps an epoch index to a load intensity in (0, 1].
type IntensityFunc func(epoch int) float64

// DiurnalIntensity is the default demand pattern: the typical datacenter
// rack-power shape of Fig. 6 — a business-hours hump over a constant
// night-time floor. epochsPerDay is derived from the epoch length.
func DiurnalIntensity(epochsPerDay int) IntensityFunc {
	return func(epoch int) float64 {
		if epochsPerDay <= 0 {
			return 1
		}
		hour := 24 * float64(epoch%epochsPerDay) / float64(epochsPerDay)
		base := 0.60
		if hour >= 7 && hour <= 21 {
			base += 0.35 * math.Sin(math.Pi*(hour-7)/14)
		}
		// Small deterministic ripple so consecutive epochs differ.
		base += 0.02 * math.Sin(float64(epoch))
		if base > 1 {
			base = 1
		}
		if base < 0.05 {
			base = 0.05
		}
		return base
	}
}

// ConstantIntensity runs the workload flat out (used by the PAR-sweep
// case study, which fixes the power budget instead).
func ConstantIntensity(i float64) IntensityFunc {
	return func(int) float64 { return i }
}

// Config describes one simulation run.
type Config struct {
	// Rack is the heterogeneous rack under test.
	Rack *server.Rack
	// Workload runs on every server (the paper evaluates one workload
	// at a time per rack).
	Workload workload.Workload
	// GroupWorkloads, when non-nil, assigns each rack group its own
	// workload (a mixed rack, one entry per group); Workload is then
	// ignored. Real racks collocate services, and the database keys per
	// (configuration, workload) pair either way.
	GroupWorkloads []workload.Workload
	// Policy allocates power (Table III).
	Policy policy.Policy
	// Solar is the renewable generation trace; one sample per epoch.
	Solar *trace.Trace
	// StartEpoch offsets into the solar trace.
	StartEpoch int
	// Epochs is the number of scheduling epochs to simulate.
	Epochs int
	// GridBudgetW caps grid draw (paper default 1000 W).
	GridBudgetW float64
	// Battery configures the rack bank; zero value means the paper's
	// default 12 kWh/40 % DoD/80 % bank.
	Battery battery.Config
	// Bank, when non-nil, is an externally owned battery store the
	// session drives instead of building its own bank — the fleet
	// coordinator hands each rack a per-epoch lease of the shared site
	// bank. Battery and InitialSoC are then ignored, Session.Bank()
	// returns nil, and exported state carries no battery section (the
	// store's state lives with its owner).
	Bank battery.Store
	// Intensity is the demand pattern; nil means DiurnalIntensity.
	Intensity IntensityFunc
	// Seed drives measurement noise (same seed → same observations).
	Seed int64
	// ProfileSamples is the number of training-run samples (the paper
	// profiles every 2 minutes for 10 minutes → 5; default 5).
	ProfileSamples int
	// TrainingNoise multiplies the workload's measurement noise during
	// training runs (default 3): the paper notes "the information from
	// the profiling data is limited in the training run and can be less
	// accurate" (§IV-B.5) — 2-minute windows are much noisier than
	// epoch-long runtime feedback. This is what makes GreenHetero's
	// adaptive refits beat GreenHetero-a's frozen projections.
	TrainingNoise float64
	// InitialSoC sets the battery's starting state of charge in [0, 1]
	// (clamped to the usable band). Zero means full (the paper
	// initializes the battery to its maximal state, §V-B.1); use the
	// DoD floor to study the drained-battery regime of Figs. 9/10/12.
	InitialSoC float64
	// FeedbackSamples is how many runtime samples feed the database per
	// epoch under adaptive policies (default 2).
	FeedbackSamples int
	// DB, if non-nil, is used (and mutated) instead of a fresh
	// database — lets experiments pre-train or share state.
	DB *profiledb.DB
	// Alpha and Beta fix the controller's Holt smoothing parameters
	// (zero values mean the controller defaults). The predictor
	// ablation sets Alpha=1, Beta≈0 to emulate a naive last-value
	// predictor.
	Alpha, Beta float64
	// PredictorFactory, when set, builds the controller's predictors
	// (called twice: renewable, then demand) — e.g. the Holt-Winters
	// seasonal extension. Overrides Alpha/Beta.
	PredictorFactory func() timeseries.Predictor
}

// ErrBadConfig is returned by Run for invalid configurations.
var ErrBadConfig = errors.New("sim: bad config")

func (c *Config) withDefaults() (Config, error) {
	out := *c
	switch {
	case out.Rack == nil:
		return out, fmt.Errorf("%w: nil rack", ErrBadConfig)
	case out.Policy == nil:
		return out, fmt.Errorf("%w: nil policy", ErrBadConfig)
	case out.Solar == nil:
		return out, fmt.Errorf("%w: nil solar trace", ErrBadConfig)
	case out.Epochs < 1:
		return out, fmt.Errorf("%w: epochs %d", ErrBadConfig, out.Epochs)
	case out.StartEpoch < 0:
		return out, fmt.Errorf("%w: start epoch %d", ErrBadConfig, out.StartEpoch)
	case out.GridBudgetW < 0:
		return out, fmt.Errorf("%w: grid budget %v", ErrBadConfig, out.GridBudgetW)
	}
	if out.GroupWorkloads == nil {
		if out.Workload.ID == "" {
			return out, fmt.Errorf("%w: empty workload", ErrBadConfig)
		}
		out.GroupWorkloads = make([]workload.Workload, out.Rack.NumGroups())
		for i := range out.GroupWorkloads {
			out.GroupWorkloads[i] = out.Workload
		}
	}
	if len(out.GroupWorkloads) != out.Rack.NumGroups() {
		return out, fmt.Errorf("%w: %d group workloads for %d groups", ErrBadConfig, len(out.GroupWorkloads), out.Rack.NumGroups())
	}
	for i, w := range out.GroupWorkloads {
		if w.ID == "" {
			return out, fmt.Errorf("%w: group %d empty workload", ErrBadConfig, i)
		}
	}
	if out.Battery == (battery.Config{}) {
		out.Battery = battery.DefaultConfig()
	}
	if out.Intensity == nil {
		perDay := int(24 * time.Hour / out.Solar.Step)
		out.Intensity = DiurnalIntensity(perDay)
	}
	if out.ProfileSamples == 0 {
		out.ProfileSamples = 5
	}
	if out.TrainingNoise == 0 {
		out.TrainingNoise = 3
	}
	if out.InitialSoC == 0 {
		out.InitialSoC = 1
	}
	if out.InitialSoC < 0 || out.InitialSoC > 1 {
		return out, fmt.Errorf("%w: initial SoC %v", ErrBadConfig, out.InitialSoC)
	}
	if out.FeedbackSamples == 0 {
		out.FeedbackSamples = 2
	}
	if out.DB == nil {
		out.DB = profiledb.New()
	}
	return out, nil
}

// EpochResult records one epoch's outcome on the ground truth.
type EpochResult struct {
	Epoch       int
	Case        power.Case
	Intensity   float64
	RenewableW  float64
	DemandW     float64
	SupplyW     float64
	GridW       float64
	BatteryOutW float64
	BatteryInW  float64
	BatterySoC  float64
	Fractions   []float64
	Perf        float64
	UsedW       float64
	EPU         float64
	TrainingRun bool
}

// Result is a full run's record.
type Result struct {
	Policy   string
	Workload string
	Epochs   []EpochResult
	// BatteryCycles is how many discharge-to-DoD cycles the bank
	// completed over the run (lifetime accounting, §V-B.3).
	BatteryCycles int

	// epochHours is the epoch length in hours, for energy aggregation.
	epochHours float64
}

// GridSeriesW extracts the per-epoch grid draw, for cost accounting.
func (r *Result) GridSeriesW() []float64 {
	out := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		out[i] = e.GridW
	}
	return out
}

// EpochHours reports the epoch length in hours.
func (r *Result) EpochHours() float64 { return r.epochHours }

// MeanPerf averages throughput over all epochs.
func (r *Result) MeanPerf() float64 {
	return r.mean(func(e EpochResult) float64 { return e.Perf }, nil)
}

// MeanEPU averages EPU over epochs with nonzero supply.
func (r *Result) MeanEPU() float64 {
	return r.mean(func(e EpochResult) float64 { return e.EPU },
		func(e EpochResult) bool { return e.SupplyW > 0 })
}

// MeanPerfScarce averages throughput over the scarcity epochs (Cases B
// and C) — the regime the paper's Figs. 9/10 analyze.
func (r *Result) MeanPerfScarce() float64 {
	return r.mean(func(e EpochResult) float64 { return e.Perf },
		func(e EpochResult) bool { return e.Case != power.CaseA })
}

// MeanEPUScarce averages EPU over scarcity epochs with nonzero supply.
func (r *Result) MeanEPUScarce() float64 {
	return r.mean(func(e EpochResult) float64 { return e.EPU },
		func(e EpochResult) bool { return e.Case != power.CaseA && e.SupplyW > 0 })
}

// MeanPAR averages the first group's power allocation ratio over epochs
// where power was allocated (Fig. 8's "average PAR ≈ 58 %").
func (r *Result) MeanPAR() float64 {
	return r.mean(func(e EpochResult) float64 {
		var sum float64
		for _, f := range e.Fractions {
			sum += f
		}
		if sum == 0 {
			return 0
		}
		return e.Fractions[0] / sum
	}, func(e EpochResult) bool {
		for _, f := range e.Fractions {
			if f > 0 {
				return true
			}
		}
		return false
	})
}

// GridEnergyWh totals grid energy drawn.
func (r *Result) GridEnergyWh() float64 {
	var wh float64
	for _, e := range r.Epochs {
		wh += e.GridW * hoursPerEpoch(r)
	}
	return wh
}

func hoursPerEpoch(r *Result) float64 { return r.epochHours }

func (r *Result) mean(f func(EpochResult) float64, keep func(EpochResult) bool) float64 {
	var sum float64
	var n int
	for _, e := range r.Epochs {
		if keep != nil && !keep(e) {
			continue
		}
		sum += f(e)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// prober implements core.Prober over the hidden ground truth.
type prober struct {
	intensity     float64
	samples       int
	trainingNoise float64
	rng           *rand.Rand
}

// TrainingRun profiles the pair across its power band at the current
// intensity, as the ondemand governor sweeps with load (Fig. 7).
func (p *prober) TrainingRun(spec server.Spec, w workload.Workload) (core.TrainingResult, error) {
	if p.samples < 2 {
		return core.TrainingResult{}, fmt.Errorf("sim: profile samples %d", p.samples)
	}
	peakEff := workload.PeakEffWAt(spec, w, p.intensity)
	res := core.TrainingResult{Samples: make([]fit.Sample, 0, p.samples)}
	for i := 0; i < p.samples; i++ {
		frac := float64(i) / float64(p.samples-1)
		pw := spec.IdleW + 1 + frac*(peakEff-spec.IdleW-1)
		s := measureAt(spec, w, pw, p.intensity, p.trainingNoise, p.rng)
		res.Samples = append(res.Samples, s)
		if s.X > res.PeakEffW {
			res.PeakEffW = s.X
		}
	}
	return res, nil
}

// measureAt is one noisy observation of the intensity-aware truth. The
// noise factor scales both axes: short training windows blur the power
// meter as much as the throughput counter.
func measureAt(spec server.Spec, w workload.Workload, pw, intensity, noiseFactor float64, rng *rand.Rand) fit.Sample {
	perf := workload.PerfAt(spec, w, pw, intensity)
	perfNoisy := perf * (1 + noiseFactor*w.Noise()*rng.NormFloat64())
	if perfNoisy < 0 {
		perfNoisy = 0
	}
	powerNoisy := pw * (1 + noiseFactor*0.01*rng.NormFloat64())
	if powerNoisy < 0 {
		powerNoisy = 0
	}
	return fit.Sample{X: powerNoisy, Y: perfNoisy}
}

// Session is a stepwise simulation: one call to Step advances one
// scheduling epoch. Run wraps it for batch execution; the daemon drives
// it on a wall-clock ticker. Not safe for concurrent use — callers
// serialize access (the daemon holds a mutex).
type Session struct {
	cfg Config
	// src is rng's underlying source; its draw counter is what lets
	// ExportState pin — and RestoreState reproduce — the exact RNG
	// stream position.
	src *countingSource
	rng *rand.Rand
	// bank is the session-owned rack bank; nil when cfg.Bank supplied an
	// external store. store is whichever of the two the controller sees.
	bank         *battery.Bank
	store        battery.Store
	pb           *prober
	groups       []server.Group
	ctrl         *core.Controller
	tryIntensity float64

	epoch      int
	prevDemand float64
	// intensityScale multiplies the configured intensity pattern (flash
	// crowds under chaos); 1 leaves the pattern bit-untouched.
	intensityScale float64

	// fbMap and fbBufs are Step's reusable feedback staging: the
	// database copies samples out inside FeedbackMixed, so the map and
	// per-group slices are safe to recycle every epoch instead of
	// reallocating.
	fbMap  map[int][]fit.Sample
	fbBufs [][]fit.Sample
}

// NewSession validates cfg and prepares a stepwise simulation.
func NewSession(cfg Config) (*Session, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := newCountingSource(c.Seed)
	rng := rand.New(src)
	var bank *battery.Bank
	store := c.Bank
	if store == nil {
		bank, err = battery.New(c.Battery)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := bank.SetSoC(c.InitialSoC); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		store = bank
	}
	s := &Session{
		cfg:            c,
		src:            src,
		rng:            rng,
		bank:           bank,
		store:          store,
		groups:         c.Rack.Groups(),
		intensityScale: 1,
	}
	s.pb = &prober{
		intensity:     c.Intensity(0),
		samples:       c.ProfileSamples,
		trainingNoise: c.TrainingNoise,
		rng:           rng,
	}
	// The Manual policy trials allocations on the live (simulated)
	// system at the current intensity.
	s.tryIntensity = c.Intensity(0)
	tryAllocation := func(supplyW float64, fracs []float64) (float64, error) {
		return truePerf(s.groups, c.GroupWorkloads, supplyW, fracs, s.tryIntensity), nil
	}
	coreCfg := core.Config{
		Rack:          c.Rack,
		DB:            c.DB,
		Policy:        c.Policy,
		Battery:       store,
		GridBudgetW:   c.GridBudgetW,
		Epoch:         c.Solar.Step,
		Prober:        s.pb,
		TryAllocation: tryAllocation,
		Alpha:         c.Alpha,
		Beta:          c.Beta,
	}
	if c.PredictorFactory != nil {
		coreCfg.RenewablePredictor = c.PredictorFactory()
		coreCfg.DemandPredictor = c.PredictorFactory()
	}
	ctrl, err := core.New(coreCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.ctrl = ctrl
	s.prevDemand = rackDemandW(s.groups, c.GroupWorkloads, c.Intensity(0))
	return s, nil
}

// Epoch reports the next epoch index Step will run.
func (s *Session) Epoch() int { return s.epoch }

// Done reports whether the configured epoch budget is exhausted. A
// session may be stepped past Done (the trace end value is held), which
// is what a long-running daemon does.
func (s *Session) Done() bool { return s.epoch >= s.cfg.Epochs }

// Bank exposes the live battery (read-only use expected). It is nil
// when the session runs on an external store (Config.Bank).
func (s *Session) Bank() *battery.Bank { return s.bank }

// DB exposes the session's performance-power database.
func (s *Session) DB() *profiledb.DB { return s.cfg.DB }

// Policy reports the active policy name.
func (s *Session) Policy() string { return s.cfg.Policy.Name() }

// WorkloadLabel reports the run's workload label.
func (s *Session) WorkloadLabel() string { return workloadLabel(s.cfg.GroupWorkloads) }

// EpochHours reports the epoch length in hours.
func (s *Session) EpochHours() float64 { return s.cfg.Solar.Step.Hours() }

// Step advances one scheduling epoch and returns its outcome. The
// renewable power comes from the session's own solar trace.
func (s *Session) Step() (EpochResult, error) {
	return s.step(s.cfg.Solar.At(s.cfg.StartEpoch + s.epoch))
}

// SkipEpoch advances the epoch counter without simulating anything — a
// crashed or quarantined rack stays aligned with the site clock while
// it is down, so its epoch records resume at the right index when it
// rejoins. Nothing else changes: no measurement noise is drawn, no
// power flows, and the controller's projections simply go stale (which
// is exactly what a dead rack's controller does).
func (s *Session) SkipEpoch() { s.epoch++ }

// SetIntensityScale scales the configured demand intensity pattern from
// the next step on — the fleet chaos engine's flash-crowd hook. Scaled
// intensity is clamped to the pattern's (0.05, 1] band; a scale of
// exactly 1 leaves every epoch bit-identical to an unscaled run.
func (s *Session) SetIntensityScale(scale float64) error {
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return fmt.Errorf("%w: intensity scale %v", ErrBadConfig, scale)
	}
	s.intensityScale = scale
	return nil
}

// Allocation is one rack's per-epoch share of site-level resources, as
// split by a fleet allocator.
type Allocation struct {
	// RenewableW is the rack's slice of the shared site PV feed.
	RenewableW float64
	// GridBudgetW is the rack's slice of the site grid budget.
	GridBudgetW float64
}

// StepAllocated advances one scheduling epoch under a fleet
// coordinator's allocation: the rack sees the allocated renewable power
// instead of its own trace and the allocated grid budget instead of the
// configured one. The battery share arrives separately, through the
// lease installed as Config.Bank.
func (s *Session) StepAllocated(a Allocation) (EpochResult, error) {
	if a.RenewableW < 0 || a.GridBudgetW < 0 {
		return EpochResult{}, fmt.Errorf("%w: allocation %+v", ErrBadConfig, a)
	}
	if err := s.ctrl.SetGridBudgetW(a.GridBudgetW); err != nil {
		return EpochResult{}, fmt.Errorf("sim: epoch %d: %w", s.epoch, err)
	}
	return s.step(a.RenewableW)
}

// DemandBidW is the rack's demand bid for the next epoch: believed peak
// demand priced from the controller's cached projections (controller
// knowledge only — the fleet allocator must not see ground truth).
func (s *Session) DemandBidW() (float64, error) {
	return s.ctrl.BelievedDemandW(s.cfg.GroupWorkloads)
}

// step runs one epoch against the given renewable power.
func (s *Session) step(renewable float64) (EpochResult, error) {
	c := &s.cfg
	e := s.epoch
	s.epoch++
	intensity := c.Intensity(e)
	if s.intensityScale != 1 {
		intensity *= s.intensityScale
		if intensity > 1 {
			intensity = 1
		}
		if intensity < 0.05 {
			intensity = 0.05
		}
	}
	s.tryIntensity = intensity
	s.pb.intensity = intensity

	dec, err := s.ctrl.StepMixed(renewable, s.prevDemand, c.GroupWorkloads)
	if err != nil {
		return EpochResult{}, fmt.Errorf("sim: epoch %d: %w", e, err)
	}

	// Evaluate the allocation on the hidden truth.
	er := EpochResult{
		Epoch:       e,
		Case:        dec.Case,
		Intensity:   intensity,
		RenewableW:  renewable,
		DemandW:     rackDemandW(s.groups, c.GroupWorkloads, intensity),
		SupplyW:     dec.SupplyW,
		GridW:       dec.Execution.GridW,
		BatteryOutW: dec.Execution.BatteryToLoadW,
		BatteryInW:  dec.Execution.BatteryChargedW,
		BatterySoC:  s.store.SoC(),
		Fractions:   dec.Fractions,
		TrainingRun: dec.TrainingRun,
	}
	if s.fbMap == nil {
		s.fbMap = make(map[int][]fit.Sample, len(s.groups))
		s.fbBufs = make([][]fit.Sample, len(s.groups))
	}
	clear(s.fbMap)
	feedback := s.fbMap
	for i, g := range s.groups {
		gw := c.GroupWorkloads[i]
		// In a Case A epoch servers are uncapped and draw their
		// natural (saturation) power; under scarcity the SPC caps
		// each server at its PAR share.
		perServer := 0.0
		switch {
		case dec.Unconstrained:
			perServer = workload.PeakEffWAt(g.Spec, gw, intensity)
		case dec.SupplyW > 0:
			perServer = dec.Fractions[i] * dec.SupplyW / float64(g.Count)
		}
		usedPerServer := workload.UsedPowerWAt(g.Spec, gw, perServer, intensity)
		er.Perf += float64(g.Count) * workload.PerfAt(g.Spec, gw, perServer, intensity)
		er.UsedW += float64(g.Count) * usedPerServer
		// The power meter reads the server's actual draw (used
		// power), not the budget it was granted: in abundant
		// epochs that is the workload's true saturation point,
		// which is how the database's validity range tracks load.
		if usedPerServer > 0 {
			fs := s.fbBufs[i][:0]
			for smp := 0; smp < c.FeedbackSamples; smp++ {
				fs = append(fs, measureAt(g.Spec, gw, usedPerServer, intensity, 1, s.rng))
			}
			s.fbBufs[i] = fs
			feedback[i] = fs
		}
	}
	er.EPU = metrics.EPU(er.UsedW, er.SupplyW)

	if err := s.ctrl.FeedbackMixed(c.GroupWorkloads, feedback); err != nil {
		return EpochResult{}, fmt.Errorf("sim: epoch %d feedback: %w", e, err)
	}
	s.prevDemand = er.DemandW
	return er, nil
}

// NewResult returns an empty Result primed with the session's labels
// and epoch length, for callers that drive Step themselves — the fleet
// coordinator appends each rack's epoch records into one of these.
func (s *Session) NewResult() *Result {
	return &Result{
		Policy:     s.Policy(),
		Workload:   s.WorkloadLabel(),
		Epochs:     make([]EpochResult, 0, s.cfg.Epochs),
		epochHours: s.EpochHours(),
	}
}

// Run executes one simulation to completion.
func Run(cfg Config) (*Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	res := s.NewResult()
	for !s.Done() {
		er, err := s.Step()
		if err != nil {
			return nil, err
		}
		res.Epochs = append(res.Epochs, er)
	}
	if s.bank != nil {
		res.BatteryCycles = s.bank.Cycles()
	}
	return res, nil
}

// truePerf evaluates a PAR vector on the hidden truth.
func truePerf(groups []server.Group, groupWs []workload.Workload, supplyW float64, fracs []float64, intensity float64) float64 {
	var total float64
	for i, g := range groups {
		if i >= len(fracs) {
			break
		}
		perServer := fracs[i] * supplyW / float64(g.Count)
		total += float64(g.Count) * workload.PerfAt(g.Spec, groupWs[i], perServer, intensity)
	}
	return total
}

// rackDemandW is the rack's desired power at the given intensity: what an
// ondemand-governed rack would draw with unconstrained supply.
func rackDemandW(groups []server.Group, groupWs []workload.Workload, intensity float64) float64 {
	var d float64
	for i, g := range groups {
		d += float64(g.Count) * workload.PeakEffWAt(g.Spec, groupWs[i], intensity)
	}
	return d
}

// workloadLabel labels a run: the single workload id, or a mixed list.
func workloadLabel(groupWs []workload.Workload) string {
	same := true
	for _, w := range groupWs[1:] {
		if w.ID != groupWs[0].ID {
			same = false
			break
		}
	}
	if same {
		return groupWs[0].ID
	}
	label := "mixed(" + groupWs[0].ID
	for _, w := range groupWs[1:] {
		label += "+" + w.ID
	}
	return label + ")"
}

// Compare runs the same scenario under several policies, with identical
// traces, intensity, and noise seeds, and returns results keyed by policy
// name (the shape of the paper's Figs. 9/10/13/14 comparisons). Policies
// run concurrently, one worker per CPU; see CompareParallel.
func Compare(cfg Config, policies []policy.Policy) (map[string]*Result, error) {
	return CompareParallel(cfg, policies, 0)
}

// CompareParallel is Compare with an explicit parallelism knob:
// 0 means one worker per CPU (runtime.GOMAXPROCS(0)), 1 is the exact
// legacy serial loop. Results are bit-identical at every level: each
// policy's run owns its RNG (seeded from cfg.Seed), its fresh database,
// and its policy instance, and shares only the immutable rack and trace.
// Every policy deliberately sees the same noise seed — the paper's
// comparisons are paired, with identical observations across policies —
// so determinism comes from per-run RNG construction, not seed
// splitting (use runner.DeriveSeed where independent streams are
// wanted, as the cluster package does).
func CompareParallel(cfg Config, policies []policy.Policy, parallelism int) (map[string]*Result, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("%w: no policies", ErrBadConfig)
	}
	results, err := runner.Map(parallelism, len(policies), func(i int) (*Result, error) {
		p := policies[i]
		c := cfg
		c.Policy = p
		c.DB = nil // fresh database per policy: no cross-contamination
		r, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("sim: policy %s: %w", p.Name(), err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Result, len(policies))
	for i, p := range policies {
		out[p.Name()] = results[i]
	}
	return out, nil
}
