package sim

import (
	"bytes"
	"math"
	"testing"
)

// TestSkipEpoch: skipping advances the epoch clock without touching the
// RNG stream — a skipped rack stays aligned to the site clock without
// consuming its noise draws.
func TestSkipEpoch(t *testing.T) {
	s, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	before, err := s.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	s.SkipEpoch()
	s.SkipEpoch()
	after, err := s.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 3 {
		t.Errorf("epoch = %d after 1 step + 2 skips", s.Epoch())
	}
	if after.RNGDraws != before.RNGDraws {
		t.Errorf("skip consumed RNG draws: %d → %d", before.RNGDraws, after.RNGDraws)
	}
	// The session still steps normally after skipping.
	er, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if er.Epoch != 3 {
		t.Errorf("post-skip step ran epoch %d, want 3", er.Epoch)
	}
}

func TestSetIntensityScale(t *testing.T) {
	s, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := s.SetIntensityScale(bad); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}

	// A surge raises demand for the epoch it covers; scale 1 is exactly
	// the unscaled run.
	base, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.SetIntensityScale(1); err != nil {
		t.Fatal(err)
	}
	erBase, err := base.Step()
	if err != nil {
		t.Fatal(err)
	}

	surged, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := surged.SetIntensityScale(1.5); err != nil {
		t.Fatal(err)
	}
	erSurged, err := surged.Step()
	if err != nil {
		t.Fatal(err)
	}
	if erSurged.DemandW <= erBase.DemandW {
		t.Errorf("surged demand %v not above baseline %v", erSurged.DemandW, erBase.DemandW)
	}

	plain, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	erPlain, err := plain.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalResults(t, []EpochResult{erPlain}), marshalResults(t, []EpochResult{erBase})) {
		t.Error("scale 1 is not bit-identical to an unscaled run")
	}
}
