package sim

import (
	"errors"
	"strings"
	"testing"

	"greenhetero/internal/policy"
	"greenhetero/internal/workload"
)

func TestMixedRackRuns(t *testing.T) {
	// Group 0 (Xeons) runs SPECjbb, group 1 (i5s) runs Memcached: the
	// database must hold one entry per (config, workload) pair and the
	// solver must optimize across the two different curves.
	cfg := baseConfig(t)
	cfg.GroupWorkloads = []workload.Workload{
		mustWorkload(t, workload.SPECjbb),
		mustWorkload(t, workload.Memcached),
	}
	cfg.Workload = workload.Workload{} // ignored when GroupWorkloads set
	cfg.Epochs = 48
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Workload, "mixed(") ||
		!strings.Contains(res.Workload, workload.SPECjbb) ||
		!strings.Contains(res.Workload, workload.Memcached) {
		t.Errorf("label = %q", res.Workload)
	}
	if res.MeanPerf() <= 0 {
		t.Errorf("mean perf = %v", res.MeanPerf())
	}
	// The run's database was fresh: training must have profiled exactly
	// the two distinct (config, workload) pairs.
	if !res.Epochs[0].TrainingRun {
		t.Error("first epoch should train both pairs")
	}
}

func TestMixedRackBeatsUniform(t *testing.T) {
	// Mixed demand asymmetry (heavy Xeon SPECjbb vs light i5 Memcached)
	// is exactly where heterogeneity-aware allocation helps.
	rack := comb1Rack(t)
	tr := scarcityLadder(t, []float64{0.45, 0.55, 0.65, 0.75, 0.85}, rack.PeakW()*0.75, 5)
	cfg := Config{
		Rack: rack,
		GroupWorkloads: []workload.Workload{
			mustWorkload(t, workload.SPECjbb),
			mustWorkload(t, workload.Memcached),
		},
		Solar:       tr,
		Epochs:      tr.Len(),
		GridBudgetW: 0,
		InitialSoC:  0.6,
		Seed:        7,
		Intensity:   ConstantIntensity(1),
	}
	results, err := Compare(cfg, []policy.Policy{policy.Uniform{}, policy.Solver{Adaptive: true}})
	if err != nil {
		t.Fatal(err)
	}
	uni := results["Uniform"].MeanPerfScarce()
	gh := results["GreenHetero"].MeanPerfScarce()
	if gh <= uni {
		t.Errorf("mixed rack: GreenHetero %v not above Uniform %v", gh, uni)
	}
}

func TestMixedValidation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.GroupWorkloads = []workload.Workload{mustWorkload(t, workload.SPECjbb)} // 1 for 2 groups
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("length mismatch err = %v", err)
	}
	cfg.GroupWorkloads = []workload.Workload{{}, {}}
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty workload err = %v", err)
	}
}

func TestWorkloadLabel(t *testing.T) {
	jbb := mustWorkload(t, workload.SPECjbb)
	mc := mustWorkload(t, workload.Memcached)
	if got := workloadLabel([]workload.Workload{jbb, jbb}); got != workload.SPECjbb {
		t.Errorf("same label = %q", got)
	}
	if got := workloadLabel([]workload.Workload{jbb, mc}); got != "mixed(specjbb+memcached)" {
		t.Errorf("mixed label = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Epochs = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("csv lines = %d, want 9", len(lines))
	}
	if !strings.HasPrefix(lines[0], "epoch,case,intensity") {
		t.Errorf("header = %q", lines[0])
	}
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != 15 {
			t.Errorf("row %d has %d fields, want 15", i, got)
		}
	}
}
