package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// marshalResults renders epoch results for byte-exact comparison.
func marshalResults(t *testing.T, rs []EpochResult) []byte {
	t.Helper()
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExportRestoreBitIdentical is the state layer's core claim: export
// mid-run, restore into a session built from the same Config, and the
// restored session's remaining epochs are byte-identical to the
// original's — RNG stream, battery arithmetic, database refits and all.
func TestExportRestoreBitIdentical(t *testing.T) {
	const splitAt, total = 7, 20

	a, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < splitAt; i++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot must survive the same serialization the daemon applies.
	wire, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	var tail []EpochResult
	for i := splitAt; i < total; i++ {
		er, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, er)
	}

	b, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != splitAt {
		t.Fatalf("restored epoch = %d, want %d", b.Epoch(), splitAt)
	}
	var tailB []EpochResult
	for i := splitAt; i < total; i++ {
		er, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		tailB = append(tailB, er)
	}
	if !bytes.Equal(marshalResults(t, tail), marshalResults(t, tailB)) {
		t.Error("restored session's epochs diverge from the original's")
	}

	// The databases converge too.
	var dbA, dbB bytes.Buffer
	if err := a.DB().Save(&dbA); err != nil {
		t.Fatal(err)
	}
	if err := b.DB().Save(&dbB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dbA.Bytes(), dbB.Bytes()) {
		t.Error("restored session's database diverges from the original's")
	}
}

// TestRestoreStateRejections: fingerprint and validity checks.
func TestRestoreStateRejections(t *testing.T) {
	a, err := NewSession(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(); err != nil {
		t.Fatal(err)
	}
	good, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func(t *testing.T) *Session {
		s, err := NewSession(baseConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("nil state", func(t *testing.T) {
		if err := fresh(t).RestoreState(nil); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("different seed", func(t *testing.T) {
		cfg := baseConfig(t)
		cfg.Seed = 8
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RestoreState(good); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("negative epoch", func(t *testing.T) {
		st := *good
		st.Epoch = -1
		if err := fresh(t).RestoreState(&st); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("non-finite prev demand", func(t *testing.T) {
		st := *good
		st.PrevDemandW = -5
		if err := fresh(t).RestoreState(&st); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("implausible draw count", func(t *testing.T) {
		st := *good
		st.RNGDraws = 1 << 62
		if err := fresh(t).RestoreState(&st); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v", err)
		}
	})
}
