package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"greenhetero/internal/battery"
	"greenhetero/internal/core"
)

// countingSource wraps the session's seeded RNG source and counts state
// advances. math/rand's internal state is not exportable, but its
// generator advances exactly one step per Int63 or Uint64 call, so the
// draw count alone reconstructs the stream position: restore = fresh
// source from the same seed, then discard that many draws. This is what
// makes a recovered session's noise stream — and therefore everything
// downstream of it — bit-identical to the uninterrupted run's.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	// rand.NewSource's concrete type has implemented Source64 since
	// Go 1.8; the assertion is load-bearing for the draw accounting.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source.
func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// maxRestoreDraws bounds the fast-forward loop in RestoreState: a
// corrupt or hand-edited draw count must not hang recovery. The bound
// replays in well under a minute yet covers ~10⁹ epochs of real
// operation.
const maxRestoreDraws = 1 << 36

// State is a session's complete durable state: everything NewSession
// does not derive from Config. The identity fields (Policy, Workload,
// Seed) fingerprint the snapshot so it cannot restore into a session
// built from a different scenario. All floats survive the JSON
// round-trip bit-exactly.
type State struct {
	Policy      string  `json:"policy"`
	Workload    string  `json:"workload"`
	Seed        int64   `json:"seed"`
	Epoch       int     `json:"epoch"`
	PrevDemandW float64 `json:"prevDemandW"`
	RNGDraws    uint64  `json:"rngDraws"`
	// External marks a snapshot of a session driven on an external
	// battery store (Config.Bank): Battery is then zero/ignored — the
	// store's state belongs to its owner, the fleet coordinator.
	// Omitted when false, so pre-fleet snapshots decode unchanged.
	External   bool            `json:"external,omitempty"`
	Battery    battery.State   `json:"battery"`
	Controller core.State      `json:"controller"`
	DB         json.RawMessage `json:"db"`
}

// ErrBadState is returned by RestoreState for snapshots that fail
// validation or belong to a different scenario.
var ErrBadState = errors.New("sim: bad state")

// ExportState snapshots the session between steps. Sessions driven on
// an external battery store (Config.Bank) export with External set and
// no battery section: the store's state belongs to its owner, the
// fleet coordinator, which checkpoints it separately.
func (s *Session) ExportState() (*State, error) {
	ctrlSt, err := s.ctrl.ExportState()
	if err != nil {
		return nil, fmt.Errorf("sim: export: %w", err)
	}
	var db bytes.Buffer
	if err := s.cfg.DB.Save(&db); err != nil {
		return nil, fmt.Errorf("sim: export: %w", err)
	}
	st := &State{
		Policy:      s.Policy(),
		Workload:    s.WorkloadLabel(),
		Seed:        s.cfg.Seed,
		Epoch:       s.epoch,
		PrevDemandW: s.prevDemand,
		RNGDraws:    s.src.draws,
		Controller:  ctrlSt,
		DB:          db.Bytes(),
	}
	if s.bank == nil {
		st.External = true
	} else {
		st.Battery = s.bank.State()
	}
	return st, nil
}

// RestoreState applies a snapshot taken by ExportState on a session
// built from the same Config, leaving the session exactly where the
// exporting one stood — including the RNG stream position. Cheap
// validation happens up front, but restoration spans several owners
// (database, bank, controller, RNG), so on error the session must be
// discarded, not reused.
func (s *Session) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("%w: nil state", ErrBadState)
	}
	if st.Policy != s.Policy() || st.Workload != s.WorkloadLabel() || st.Seed != s.cfg.Seed {
		return fmt.Errorf("%w: snapshot is for policy=%s workload=%s seed=%d, session is policy=%s workload=%s seed=%d",
			ErrBadState, st.Policy, st.Workload, st.Seed, s.Policy(), s.WorkloadLabel(), s.cfg.Seed)
	}
	if st.Epoch < 0 {
		return fmt.Errorf("%w: negative epoch %d", ErrBadState, st.Epoch)
	}
	if math.IsNaN(st.PrevDemandW) || math.IsInf(st.PrevDemandW, 0) || st.PrevDemandW < 0 {
		return fmt.Errorf("%w: previous demand %v W", ErrBadState, st.PrevDemandW)
	}
	if st.RNGDraws > maxRestoreDraws {
		return fmt.Errorf("%w: implausible RNG draw count %d", ErrBadState, st.RNGDraws)
	}
	if st.External != (s.bank == nil) {
		return fmt.Errorf("%w: snapshot external=%v but session external=%v (battery ownership mismatch)",
			ErrBadState, st.External, s.bank == nil)
	}
	if err := s.cfg.DB.RestoreFrom(bytes.NewReader(st.DB)); err != nil {
		return fmt.Errorf("sim: restore database: %w", err)
	}
	if s.bank != nil {
		if err := s.bank.Restore(st.Battery); err != nil {
			return fmt.Errorf("sim: restore battery: %w", err)
		}
	}
	if err := s.ctrl.RestoreState(st.Controller); err != nil {
		return fmt.Errorf("sim: restore controller: %w", err)
	}
	// Rebuild the RNG at the recorded stream position. The prober
	// shares the session's RNG by construction, so it is re-pointed at
	// the same instance.
	src := newCountingSource(s.cfg.Seed)
	for i := uint64(0); i < st.RNGDraws; i++ {
		src.Uint64()
	}
	src.draws = st.RNGDraws
	rng := rand.New(src)
	s.src = src
	s.rng = rng
	s.pb.rng = rng
	s.epoch = st.Epoch
	s.prevDemand = st.PrevDemandW
	return nil
}
