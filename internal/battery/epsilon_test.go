package battery

import (
	"math"
	"testing"
	"time"
)

// TestEpsilonRackScaleUnchanged pins the capacity-relative tolerance to
// the historical absolute 1e-9 Wh for every rack-scale bank, so goldens
// and export/restore fixtures recorded before the site-scale fix stay
// bit-identical.
func TestEpsilonRackScaleUnchanged(t *testing.T) {
	for _, capWh := range []float64{100, 1200, 12000, 20000} {
		cfg := DefaultConfig()
		cfg.CapacityWh = capWh
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.epsWh != 1e-9 {
			t.Errorf("capacity %v Wh: epsWh = %v, want historical 1e-9", capWh, b.epsWh)
		}
	}
}

// TestEpsilonSiteScaleLatch is the regression test for the site-scale
// epsilon bug: with an absolute 1e-9 Wh tolerance, Full() and AtDoD()
// can never latch on a >= ~12 MWh bank because 1e-9 is below one ULP of
// the charge level, so a one-ULP rounding residue from charge
// arithmetic defeats the comparison forever.
func TestEpsilonSiteScaleLatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityWh = 12e6 // 12 MWh: ULP(1.2e7) ~ 1.9e-9 Wh > 1e-9
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ulp := math.Nextafter(cfg.CapacityWh, math.Inf(1)) - cfg.CapacityWh; ulp <= 1e-9 {
		t.Fatalf("test premise broken: ULP(%v) = %v <= 1e-9", cfg.CapacityWh, ulp)
	}

	// One ULP below nameplate — where charge arithmetic rounding lands.
	b.chargeWh = math.Nextafter(cfg.CapacityWh, 0)
	if !b.Full() {
		t.Errorf("Full() false at one ULP below %v Wh capacity", cfg.CapacityWh)
	}

	// One ULP above the DoD floor.
	b.chargeWh = math.Nextafter(b.floorWh, math.Inf(1))
	if !b.AtDoD() {
		t.Errorf("AtDoD() false at one ULP above the %v Wh floor", b.floorWh)
	}
}

// TestEpsilonSiteScaleFullAfterCharge drives the latch failure through
// the public API: drain a site-scale bank slightly, recharge it past
// nameplate, and require Full() to latch.
func TestEpsilonSiteScaleFullAfterCharge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityWh = 24e6
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hour := time.Hour
	if got := b.Discharge(1e6, hour); got != 1e6 {
		t.Fatalf("Discharge = %v, want 1e6", got)
	}
	// Offer far more than the room left; Charge clamps to capacity.
	b.Charge(b.AcceptableChargeW(hour), hour, SourceRenewable)
	if !b.Full() {
		t.Errorf("Full() = false after recharging a %v Wh bank to capacity (charge %v)",
			cfg.CapacityWh, b.chargeWh)
	}
}
