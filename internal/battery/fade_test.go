package battery

import (
	"errors"
	"math"
	"testing"
)

func TestFade(t *testing.T) {
	cfg := Config{CapacityWh: 1000, DepthOfDischarge: 0.4, Efficiency: 0.8}
	b := mustNew(t, cfg)
	if err := b.SetSoC(1); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []float64{0, -0.1, 1.5, math.NaN()} {
		if err := b.Fade(bad); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Fade(%v) = %v, want ErrBadConfig", bad, err)
		}
	}
	if err := b.Fade(1); err != nil {
		t.Fatal(err)
	}
	if b.ChargeWh() != 1000 {
		t.Errorf("Fade(1) changed charge to %v", b.ChargeWh())
	}

	// Fades compound: 20% then 50% of the remainder.
	if err := b.Fade(0.8); err != nil {
		t.Fatal(err)
	}
	if got := b.ChargeWh(); got != 800 {
		t.Errorf("charge after 20%% fade = %v, want clamped to 800", got)
	}
	if got := b.SoC(); math.Abs(got-1) > 1e-12 {
		t.Errorf("SoC after fade = %v, want 1 against faded capacity", got)
	}
	if err := b.Fade(0.5); err != nil {
		t.Fatal(err)
	}
	if got := b.ChargeWh(); got != 400 {
		t.Errorf("charge after both fades = %v, want 400", got)
	}

	// The DoD floor tracks the faded capacity: charge never clamps
	// below it.
	if got, floor := b.ChargeWh(), 400*(1-0.4); got < floor {
		t.Errorf("charge %v below faded floor %v", got, floor)
	}
	if b.AtDoD() {
		t.Error("full (faded) bank reports at DoD floor")
	}
}
