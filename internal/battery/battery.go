// Package battery models the rack-level distributed energy storage used
// by GreenHetero (paper §II-A, §IV-B.1, §V-A.2): a lead-acid bank
// (default 10 × 12 V × 100 Ah = 12 kWh) with a 40 % depth-of-discharge
// floor, 80 % round-trip efficiency, and charge/discharge power caps.
//
// The model is energy-accounting only (no electrochemistry): each epoch
// the simulator asks to charge or discharge some power for the epoch
// duration, and the bank applies efficiency, DoD, and rate limits. Cycle
// counting follows the paper's accounting (a "cycle" is one full
// discharge to the DoD floor, used for the lifetime remarks in §V-B.3).
package battery

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Config parameterizes a bank. All energies are watt-hours, powers watts.
type Config struct {
	// CapacityWh is the nameplate energy capacity (paper: 12 kWh).
	CapacityWh float64
	// DepthOfDischarge is the usable fraction of capacity (paper: 0.40
	// — the bank never drains below 60 % state of charge).
	//
	// ghlint:units frac
	DepthOfDischarge float64
	// Efficiency is the round-trip efficiency, applied on charge
	// (paper: 0.80).
	//
	// ghlint:units frac
	Efficiency float64
	// MaxChargeW caps charging power; 0 means unlimited.
	MaxChargeW float64
	// MaxDischargeW caps discharging power; 0 means unlimited.
	MaxDischargeW float64
}

// DefaultConfig reproduces the paper's setup: 10 × 12 V × 100 Ah
// lead-acid (12 kWh), DoD 40 %, efficiency 80 %.
func DefaultConfig() Config {
	return Config{
		CapacityWh:       12000,
		DepthOfDischarge: 0.40,
		Efficiency:       0.80,
	}
}

// ErrBadConfig is returned by New for invalid configurations.
var ErrBadConfig = errors.New("battery: bad config")

// RatedCycles is the cycle life of the paper's lead-acid bank at 40 %
// depth of discharge: 1300 recharge cycles (§V-A.2, after Kontorinis et
// al.).
const RatedCycles = 1300

// LifetimeYears estimates the bank's service life from an observed
// cycling rate: cycles consumed over the observed window, extrapolated
// against the rated cycle budget. Zero observed cycles yields +Inf
// (calendar aging is out of scope, as in the paper); a non-positive
// window yields 0.
func LifetimeYears(cycles int, observed time.Duration) float64 {
	if observed <= 0 {
		return 0
	}
	if cycles <= 0 {
		return math.Inf(1)
	}
	perYear := float64(cycles) / observed.Hours() * 24 * 365
	return RatedCycles / perYear
}

// Store is the battery abstraction the controller drives each epoch:
// budget queries before the source-selection plan, then at most one of
// Discharge or Charge when the enforcer applies it. *Bank implements it
// directly; *Lease implements it over a per-rack slice of a shared
// SiteBank. All methods are on the epoch hot path and must stay
// allocation-free.
type Store interface {
	// SoC reports the state of charge in [0, 1].
	//
	// ghlint:allocfree
	// ghlint:units result=frac
	SoC() float64
	// AtDoD reports whether the store is pinned at its DoD floor.
	//
	// ghlint:allocfree
	AtDoD() bool
	// AvailableDischargeW is the maximum power sustainable for d.
	//
	// ghlint:allocfree
	AvailableDischargeW(d time.Duration) float64
	// AcceptableChargeW is the maximum source-side charging power for d.
	//
	// ghlint:allocfree
	AcceptableChargeW(d time.Duration) float64
	// Discharge drains up to requestW for d, returning delivered power.
	//
	// ghlint:allocfree
	Discharge(requestW float64, d time.Duration) float64
	// Charge absorbs up to offerW source-side watts for d, returning the
	// power actually consumed.
	//
	// ghlint:allocfree
	Charge(offerW float64, d time.Duration, src Source) float64
}

// Bank is a battery bank. Not safe for concurrent use; the simulator
// owns it single-threaded, and the controller sees only snapshots.
type Bank struct {
	cfg      Config
	chargeWh float64 // current stored energy
	floorWh  float64 // minimum stored energy (DoD floor)
	epsWh    float64 // comparison tolerance, scaled to capacity

	cycles        int
	atFloor       bool // latched while resting at the floor
	dischargedWh  float64
	chargedWh     float64
	gridChargedWh float64
}

// New validates cfg and returns a bank at full charge (the paper
// initializes the battery to its maximal state, §V-B.1).
func New(cfg Config) (*Bank, error) {
	if cfg.CapacityWh <= 0 {
		return nil, fmt.Errorf("%w: capacity %v", ErrBadConfig, cfg.CapacityWh)
	}
	if cfg.DepthOfDischarge <= 0 || cfg.DepthOfDischarge > 1 {
		return nil, fmt.Errorf("%w: DoD %v", ErrBadConfig, cfg.DepthOfDischarge)
	}
	if cfg.Efficiency <= 0 || cfg.Efficiency > 1 {
		return nil, fmt.Errorf("%w: efficiency %v", ErrBadConfig, cfg.Efficiency)
	}
	if cfg.MaxChargeW < 0 || cfg.MaxDischargeW < 0 {
		return nil, fmt.Errorf("%w: negative power cap", ErrBadConfig)
	}
	// The floor/full comparisons need a tolerance for accumulated charge
	// arithmetic rounding. A fixed 1e-9 Wh drops below one float64 ULP
	// once capacity reaches ~12 MWh (ULP(1.2e7) ≈ 1.9e-9 Wh), making
	// Full() unlatchable at site scale, so the tolerance scales with
	// capacity; the 5e-14 factor keeps every rack-scale bank (≤ 20 kWh)
	// on the historical 1e-9 floor, bit-identical with prior releases.
	eps := cfg.CapacityWh * 5e-14
	if eps < 1e-9 {
		eps = 1e-9
	}
	return &Bank{
		cfg:      cfg,
		chargeWh: cfg.CapacityWh,
		floorWh:  cfg.CapacityWh * (1 - cfg.DepthOfDischarge),
		epsWh:    eps,
	}, nil
}

// Config returns the bank's configuration.
func (b *Bank) Config() Config { return b.cfg }

// ChargeWh reports the currently stored energy.
func (b *Bank) ChargeWh() float64 { return b.chargeWh }

// SoC reports the state of charge in [0, 1].
//
// ghlint:allocfree
// ghlint:units result=frac
func (b *Bank) SoC() float64 { return b.chargeWh / b.cfg.CapacityWh }

// AtDoD reports whether the bank has drained to its DoD floor and can no
// longer discharge.
//
// ghlint:allocfree
func (b *Bank) AtDoD() bool { return b.chargeWh <= b.floorWh+b.epsWh }

// Full reports whether the bank is at nameplate capacity.
func (b *Bank) Full() bool { return b.chargeWh >= b.cfg.CapacityWh-b.epsWh }

// Cycles reports completed discharge-to-DoD cycles (paper §V-B.3 counts
// ~2/day on the Low trace).
func (b *Bank) Cycles() int { return b.cycles }

// Totals reports lifetime energy flows: discharged to load, charged in
// (post-efficiency), and the charged-in share that came from the grid.
func (b *Bank) Totals() (dischargedWh, chargedWh, gridChargedWh float64) {
	return b.dischargedWh, b.chargedWh, b.gridChargedWh
}

// AvailableDischargeW returns the maximum power the bank can sustain for
// the given duration without crossing the DoD floor (and within the
// discharge cap).
//
// ghlint:allocfree
func (b *Bank) AvailableDischargeW(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	headroom := b.chargeWh - b.floorWh
	if headroom <= 0 {
		return 0
	}
	p := headroom / d.Hours()
	if b.cfg.MaxDischargeW > 0 && p > b.cfg.MaxDischargeW {
		p = b.cfg.MaxDischargeW
	}
	return p
}

// AcceptableChargeW returns the maximum charging power (pre-efficiency,
// i.e. power drawn from the source) the bank can absorb for duration d.
//
// ghlint:allocfree
func (b *Bank) AcceptableChargeW(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	room := b.cfg.CapacityWh - b.chargeWh
	if room <= 0 {
		return 0
	}
	// Source power × efficiency × hours = stored Wh.
	p := room / (b.cfg.Efficiency * d.Hours())
	if b.cfg.MaxChargeW > 0 && p > b.cfg.MaxChargeW {
		p = b.cfg.MaxChargeW
	}
	return p
}

// SetSoC forces the state of charge (for experiment setup, e.g. "the
// batteries have drained out", §V-B.4). The value clamps to the usable
// band [1−DoD, 1]; setting the floor marks a completed cycle boundary so
// subsequent discharges count cycles correctly.
func (b *Bank) SetSoC(frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("%w: SoC %v", ErrBadConfig, frac)
	}
	wh := b.cfg.CapacityWh * frac
	if wh < b.floorWh {
		wh = b.floorWh
	}
	b.chargeWh = wh
	b.atFloor = b.AtDoD()
	return nil
}

// Fade permanently scales the bank's nameplate capacity by frac — the
// chaos framework's battery-aging event. The DoD floor and the
// capacity-relative comparison tolerance are recomputed for the new
// capacity, and stored energy is clamped into the shrunken usable band;
// landing on the new floor latches it as a cycle boundary (like
// SetSoC), not a completed discharge cycle. Fade(1) is a no-op and
// leaves the bank bit-identical.
func (b *Bank) Fade(frac float64) error {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return fmt.Errorf("%w: fade fraction %v", ErrBadConfig, frac)
	}
	if frac == 1 {
		return nil
	}
	b.cfg.CapacityWh *= frac
	b.floorWh = b.cfg.CapacityWh * (1 - b.cfg.DepthOfDischarge)
	eps := b.cfg.CapacityWh * 5e-14
	if eps < 1e-9 {
		eps = 1e-9
	}
	b.epsWh = eps
	if b.chargeWh > b.cfg.CapacityWh {
		b.chargeWh = b.cfg.CapacityWh
	}
	if b.chargeWh < b.floorWh {
		b.chargeWh = b.floorWh
	}
	b.atFloor = b.AtDoD()
	return nil
}

// State is a bank's complete durable state: everything New does not
// derive from Config. Serialized into daemon checkpoints; float fields
// survive a JSON round-trip bit-exactly (Go emits shortest-round-trip
// representations), which the crash-equivalence tests rely on.
type State struct {
	ChargeWh      float64 `json:"chargeWh"`
	Cycles        int     `json:"cycles"`
	AtFloor       bool    `json:"atFloor"`
	DischargedWh  float64 `json:"dischargedWh"`
	ChargedWh     float64 `json:"chargedWh"`
	GridChargedWh float64 `json:"gridChargedWh"`
}

// State snapshots the bank's mutable state.
func (b *Bank) State() State {
	return State{
		ChargeWh:      b.chargeWh,
		Cycles:        b.cycles,
		AtFloor:       b.atFloor,
		DischargedWh:  b.dischargedWh,
		ChargedWh:     b.chargedWh,
		GridChargedWh: b.gridChargedWh,
	}
}

// ErrBadState is returned by Restore for snapshots that violate the
// bank's invariants (typically a snapshot taken under a different
// Config, or a hand-edited file).
var ErrBadState = errors.New("battery: bad state")

// Restore overwrites the bank's mutable state from a snapshot taken by
// State on a bank with the same Config. The snapshot is validated
// against the bank's invariants before anything is applied, so a failed
// Restore leaves the bank untouched.
func (b *Bank) Restore(st State) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"chargeWh", st.ChargeWh},
		{"dischargedWh", st.DischargedWh},
		{"chargedWh", st.ChargedWh},
		{"gridChargedWh", st.GridChargedWh},
	} {
		name, v := f.name, f.v
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite %s", ErrBadState, name)
		}
		if v < 0 {
			return fmt.Errorf("%w: negative %s %v", ErrBadState, name, v)
		}
	}
	if st.ChargeWh < b.floorWh || st.ChargeWh > b.cfg.CapacityWh {
		return fmt.Errorf("%w: charge %v Wh outside usable band [%v, %v]",
			ErrBadState, st.ChargeWh, b.floorWh, b.cfg.CapacityWh)
	}
	if st.Cycles < 0 {
		return fmt.Errorf("%w: negative cycles %d", ErrBadState, st.Cycles)
	}
	if st.GridChargedWh > st.ChargedWh {
		return fmt.Errorf("%w: grid-charged %v Wh exceeds total charged %v Wh",
			ErrBadState, st.GridChargedWh, st.ChargedWh)
	}
	b.chargeWh = st.ChargeWh
	b.cycles = st.Cycles
	b.atFloor = st.AtFloor
	b.dischargedWh = st.DischargedWh
	b.chargedWh = st.ChargedWh
	b.gridChargedWh = st.GridChargedWh
	return nil
}

// Source identifies where charging energy comes from. Only one source may
// charge the battery at a time (paper §IV-B.1 assumption 3).
type Source int

const (
	// SourceRenewable is on-site PV.
	SourceRenewable Source = iota + 1
	// SourceGrid is utility power.
	SourceGrid
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceRenewable:
		return "renewable"
	case SourceGrid:
		return "grid"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Discharge drains up to requestW for duration d and returns the power
// actually delivered (limited by the DoD floor and discharge cap).
//
// ghlint:allocfree
func (b *Bank) Discharge(requestW float64, d time.Duration) float64 {
	if requestW <= 0 || d <= 0 {
		return 0
	}
	p := requestW
	if avail := b.AvailableDischargeW(d); p > avail {
		p = avail
	}
	if p <= 0 {
		return 0
	}
	b.chargeWh -= p * d.Hours()
	if b.chargeWh < b.floorWh {
		b.chargeWh = b.floorWh
	}
	b.dischargedWh += p * d.Hours()
	if b.AtDoD() && !b.atFloor {
		b.cycles++
		b.atFloor = true
	}
	return p
}

// Charge absorbs up to offerW (source-side watts) for duration d from the
// given source and returns the source power actually consumed. Storage
// gains offerW × efficiency × hours.
//
// ghlint:allocfree
func (b *Bank) Charge(offerW float64, d time.Duration, src Source) float64 {
	if offerW <= 0 || d <= 0 {
		return 0
	}
	p := offerW
	if acc := b.AcceptableChargeW(d); p > acc {
		p = acc
	}
	if p <= 0 {
		return 0
	}
	stored := p * b.cfg.Efficiency * d.Hours()
	b.chargeWh += stored
	if b.chargeWh > b.cfg.CapacityWh {
		b.chargeWh = b.cfg.CapacityWh
	}
	b.chargedWh += stored
	if src == SourceGrid {
		b.gridChargedWh += stored
	}
	if b.chargeWh > b.floorWh+b.epsWh {
		b.atFloor = false
	}
	return p
}
