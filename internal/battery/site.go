// Site-scale storage: one shared Bank carved into per-rack epoch leases.
//
// The fleet coordinator cannot hand racks the shared *Bank directly —
// racks step in parallel, and Bank is single-threaded state. Instead,
// each epoch the coordinator Carves the bank's available discharge and
// charge power into per-rack budgets (one Lease per rack, weighted by
// the site allocator), the racks step concurrently mutating only their
// own Lease, and after the parallelism barrier Settle replays the
// accumulated flows onto the real Bank in rack-index order. The replay
// order is fixed, so the site battery trace is bit-identical at every
// parallelism level.
//
// A Lease's view of the site is the carve-time snapshot adjusted by its
// own flows: SoC moves only with the lease's local energy, and AtDoD is
// the carve-time value. Racks therefore see each other's battery
// traffic with a one-epoch lag — the price of the barrier, and exactly
// the staleness a real site EMS telemetry loop has.
package battery

import (
	"fmt"
	"time"
)

// Lease is one rack's slice of a SiteBank for a single epoch. It
// implements Store. Each lease is owned by one rack goroutine between
// Carve and Settle; leases never touch shared state.
type Lease struct {
	capacityWh float64
	efficiency float64

	// Carve-time budgets, decremented as the rack draws on them.
	dischargeBudgetW float64
	chargeBudgetW    float64

	// Local estimate of site stored energy (carve-time snapshot plus
	// this lease's own flows).
	siteWh float64
	atDoD  bool

	// Flows accumulated this epoch, replayed by Settle.
	dischargedW       float64
	chargedRenewableW float64
	chargedGridW      float64
}

// SoC reports the lease's estimate of the site state of charge.
//
// ghlint:allocfree
func (l *Lease) SoC() float64 { return l.siteWh / l.capacityWh }

// AtDoD reports the carve-time DoD-floor latch of the site bank.
//
// ghlint:allocfree
func (l *Lease) AtDoD() bool { return l.atDoD }

// AvailableDischargeW returns the remaining discharge budget. The
// budget was computed for the carve duration; d only gates d <= 0.
//
// ghlint:allocfree
func (l *Lease) AvailableDischargeW(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return l.dischargeBudgetW
}

// AcceptableChargeW returns the remaining source-side charge budget.
//
// ghlint:allocfree
func (l *Lease) AcceptableChargeW(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return l.chargeBudgetW
}

// Discharge drains up to requestW from the lease's budget.
//
// ghlint:allocfree
func (l *Lease) Discharge(requestW float64, d time.Duration) float64 {
	if requestW <= 0 || d <= 0 {
		return 0
	}
	p := requestW
	if p > l.dischargeBudgetW {
		p = l.dischargeBudgetW
	}
	if p <= 0 {
		return 0
	}
	l.dischargeBudgetW -= p
	l.dischargedW += p
	l.siteWh -= p * d.Hours()
	return p
}

// Charge absorbs up to offerW source-side watts against the budget.
//
// ghlint:allocfree
func (l *Lease) Charge(offerW float64, d time.Duration, src Source) float64 {
	if offerW <= 0 || d <= 0 {
		return 0
	}
	p := offerW
	if p > l.chargeBudgetW {
		p = l.chargeBudgetW
	}
	if p <= 0 {
		return 0
	}
	l.chargeBudgetW -= p
	if src == SourceGrid {
		l.chargedGridW += p
	} else {
		l.chargedRenewableW += p
	}
	l.siteWh += p * l.efficiency * d.Hours()
	return p
}

// SiteBank is a shared battery bank plus one reusable Lease per rack.
// Not safe for concurrent use itself; only the leases handed out
// between Carve and Settle may be used concurrently (one per rack).
type SiteBank struct {
	bank   *Bank
	leases []Lease
}

// NewSiteBank builds a site bank with cfg and one lease per rack.
func NewSiteBank(cfg Config, racks int) (*SiteBank, error) {
	if racks <= 0 {
		return nil, fmt.Errorf("%w: site bank needs racks > 0, got %d", ErrBadConfig, racks)
	}
	b, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SiteBank{bank: b, leases: make([]Lease, racks)}, nil
}

// Bank exposes the underlying shared bank (setup and reporting only —
// never between Carve and Settle).
func (s *SiteBank) Bank() *Bank { return s.bank }

// Lease returns rack i's lease. The pointer is stable across epochs;
// budgets are refreshed by Carve.
func (s *SiteBank) Lease(i int) *Lease { return &s.leases[i] }

// Racks returns the number of leases.
func (s *SiteBank) Racks() int { return len(s.leases) }

// Carve splits the bank's currently available discharge and charge
// power across the leases by weight (weights must sum to ~1; they are
// used as-is, so any shortfall is simply power left unoffered) and
// snapshots the bank state into each lease.
func (s *SiteBank) Carve(weights []float64, d time.Duration) error {
	if len(weights) != len(s.leases) {
		return fmt.Errorf("%w: %d weights for %d leases", ErrBadConfig, len(weights), len(s.leases))
	}
	avail := s.bank.AvailableDischargeW(d)
	acc := s.bank.AcceptableChargeW(d)
	wh := s.bank.ChargeWh()
	atDoD := s.bank.AtDoD()
	for i := range s.leases {
		l := &s.leases[i]
		*l = Lease{
			capacityWh:       s.bank.cfg.CapacityWh,
			efficiency:       s.bank.cfg.Efficiency,
			dischargeBudgetW: weights[i] * avail,
			chargeBudgetW:    weights[i] * acc,
			siteWh:           wh,
			atDoD:            atDoD,
		}
	}
	return nil
}

// Settlement aggregates the epoch's settled site battery flows
// (source-side watts, summed over racks).
type Settlement struct {
	DischargeW       float64
	ChargeRenewableW float64
	ChargeGridW      float64
}

// Settle replays every lease's accumulated flows onto the shared bank
// in rack-index order and zeroes the leases. Because Carve bounded each
// budget by the bank's own limits, the replay is not clipped (beyond
// float rounding at the last ULP) and cycle/flow accounting lands on
// the real bank exactly once per epoch.
func (s *SiteBank) Settle(d time.Duration) Settlement {
	var out Settlement
	for i := range s.leases {
		l := &s.leases[i]
		if l.dischargedW > 0 {
			out.DischargeW += s.bank.Discharge(l.dischargedW, d)
		}
		if l.chargedRenewableW > 0 {
			out.ChargeRenewableW += s.bank.Charge(l.chargedRenewableW, d, SourceRenewable)
		}
		if l.chargedGridW > 0 {
			out.ChargeGridW += s.bank.Charge(l.chargedGridW, d, SourceGrid)
		}
		l.dischargedW, l.chargedRenewableW, l.chargedGridW = 0, 0, 0
	}
	return out
}
