package battery

import (
	"math"
	"testing"
	"time"
)

// Store conformance: both the rack bank and the site lease satisfy the
// controller-facing interface.
var (
	_ Store = (*Bank)(nil)
	_ Store = (*Lease)(nil)
)

const epoch = 15 * time.Minute

func siteBank(t *testing.T, racks int) *SiteBank {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CapacityWh = 48000
	s, err := NewSiteBank(cfg, racks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSiteBankValidation(t *testing.T) {
	if _, err := NewSiteBank(DefaultConfig(), 0); err == nil {
		t.Error("racks=0: want error")
	}
	if _, err := NewSiteBank(Config{}, 4); err == nil {
		t.Error("zero config: want error")
	}
}

func TestCarveSplitsBudgetsByWeight(t *testing.T) {
	s := siteBank(t, 2)
	if err := s.Bank().SetSoC(0.8); err != nil {
		t.Fatal(err)
	}
	weights := []float64{0.75, 0.25}
	if err := s.Carve(weights, epoch); err != nil {
		t.Fatal(err)
	}
	avail := s.Bank().AvailableDischargeW(epoch)
	acc := s.Bank().AcceptableChargeW(epoch)
	for i, w := range weights {
		l := s.Lease(i)
		if got := l.AvailableDischargeW(epoch); got != w*avail {
			t.Errorf("lease %d discharge budget = %v, want %v", i, got, w*avail)
		}
		if got := l.AcceptableChargeW(epoch); got != w*acc {
			t.Errorf("lease %d charge budget = %v, want %v", i, got, w*acc)
		}
		if got := l.SoC(); got != s.Bank().SoC() {
			t.Errorf("lease %d SoC = %v, want carve-time %v", i, got, s.Bank().SoC())
		}
		if l.AtDoD() != s.Bank().AtDoD() {
			t.Errorf("lease %d AtDoD = %v, want %v", i, l.AtDoD(), s.Bank().AtDoD())
		}
	}
	if err := s.Carve([]float64{1}, epoch); err == nil {
		t.Error("wrong weight count: want error")
	}
}

func TestLeaseBudgetEnforcement(t *testing.T) {
	s := siteBank(t, 2)
	if err := s.Carve([]float64{0.5, 0.5}, epoch); err != nil {
		t.Fatal(err)
	}
	l := s.Lease(0)
	budget := l.AvailableDischargeW(epoch)
	if got := l.Discharge(budget*2, epoch); got != budget {
		t.Errorf("Discharge over budget delivered %v, want clamp to %v", got, budget)
	}
	if got := l.Discharge(1, epoch); got != 0 {
		t.Errorf("Discharge on exhausted budget delivered %v, want 0", got)
	}
	// SoC estimate moved by the lease's own flow only.
	wantWh := s.Bank().ChargeWh() - budget*epoch.Hours()
	if got := l.SoC() * 48000; math.Abs(got-wantWh) > 1e-6 {
		t.Errorf("lease siteWh = %v, want %v", got, wantWh)
	}
	// The sibling lease is unaffected.
	if got := s.Lease(1).SoC(); got != s.Bank().SoC() {
		t.Errorf("sibling lease SoC moved to %v", got)
	}
}

// TestSettleMatchesDirectBankFlows proves the carve→lease→settle path
// applies exactly the flows a single-owner bank would see, including
// cycle accounting and the grid-charged split.
func TestSettleMatchesDirectBankFlows(t *testing.T) {
	s := siteBank(t, 3)
	direct, err := New(s.Bank().Config())
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Carve([]float64{0.5, 0.3, 0.2}, epoch); err != nil {
		t.Fatal(err)
	}
	d0 := s.Lease(0).Discharge(4000, epoch)
	d1 := s.Lease(1).Discharge(2500, epoch)
	c2 := s.Lease(2).Charge(10, epoch, SourceGrid)
	st := s.Settle(epoch)

	if st.DischargeW != d0+d1 || st.ChargeGridW != c2 || st.ChargeRenewableW != 0 {
		t.Errorf("settlement %+v, want discharge %v grid-charge %v", st, d0+d1, c2)
	}
	direct.Discharge(d0, epoch)
	direct.Discharge(d1, epoch)
	direct.Charge(c2, epoch, SourceGrid)
	if s.Bank().State() != direct.State() {
		t.Errorf("settled bank state %+v != direct replay %+v", s.Bank().State(), direct.State())
	}

	// Leases are zeroed: a second settle is a no-op.
	before := s.Bank().State()
	if st2 := s.Settle(epoch); st2 != (Settlement{}) || s.Bank().State() != before {
		t.Errorf("second Settle moved state: %+v", st2)
	}
}

// TestSettleNeverClips: the per-lease budgets sum to at most the bank's
// own limits, so replaying them is never cut off by the DoD floor.
func TestSettleNeverClips(t *testing.T) {
	s := siteBank(t, 4)
	weights := []float64{0.25, 0.25, 0.25, 0.25}
	for e := 0; e < 200; e++ {
		if err := s.Carve(weights, epoch); err != nil {
			t.Fatal(err)
		}
		var want float64
		for i := 0; i < 4; i++ {
			want += s.Lease(i).Discharge(1e9, epoch) // drain the full budget
		}
		st := s.Settle(epoch)
		if math.Abs(st.DischargeW-want) > 1e-6 {
			t.Fatalf("epoch %d: settled %v W of %v W requested", e, st.DischargeW, want)
		}
		if s.Bank().AtDoD() {
			return // drained to the floor without clipping
		}
	}
	t.Fatal("bank never reached the DoD floor")
}
