package battery

import (
	"errors"
	"math"
	"testing"
	"time"
)

func stateBank(t *testing.T) *Bank {
	t.Helper()
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStateRestoreRoundTrip: State → Restore into a fresh bank with the
// same Config reproduces the mutable state bit-for-bit.
func TestStateRestoreRoundTrip(t *testing.T) {
	a := stateBank(t)
	// Drive the bank through real transitions so the snapshot is not the
	// initial state.
	a.Discharge(200, 30*time.Minute)
	a.Charge(150, 15*time.Minute, SourceGrid)
	a.Charge(90, 15*time.Minute, SourceRenewable)
	st := a.State()

	b := stateBank(t)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got := b.State(); got != st {
		t.Errorf("round trip: got %+v, want %+v", got, st)
	}
	if math.Float64bits(b.ChargeWh()) != math.Float64bits(a.ChargeWh()) {
		t.Errorf("charge bits differ: %x vs %x",
			math.Float64bits(b.ChargeWh()), math.Float64bits(a.ChargeWh()))
	}
	// The restored bank behaves identically from here on.
	ga := a.Discharge(100, 15*time.Minute)
	gb := b.Discharge(100, 15*time.Minute)
	if math.Float64bits(ga) != math.Float64bits(gb) {
		t.Errorf("post-restore divergence: %v vs %v", ga, gb)
	}
}

// TestRestoreRejections: every invariant violation is refused and
// leaves the bank untouched.
func TestRestoreRejections(t *testing.T) {
	base := stateBank(t).State()
	cap := DefaultConfig().CapacityWh
	cases := []struct {
		name   string
		mutate func(*State)
	}{
		{"nan charge", func(s *State) { s.ChargeWh = math.NaN() }},
		{"inf charged", func(s *State) { s.ChargedWh = math.Inf(1) }},
		{"negative discharged", func(s *State) { s.DischargedWh = -1 }},
		{"charge above capacity", func(s *State) { s.ChargeWh = cap * 2 }},
		{"charge below floor", func(s *State) { s.ChargeWh = 0 }},
		{"negative cycles", func(s *State) { s.Cycles = -1 }},
		{"grid exceeds total charged", func(s *State) {
			s.ChargedWh = 10
			s.GridChargedWh = 20
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := stateBank(t)
			before := b.State()
			st := base
			tc.mutate(&st)
			err := b.Restore(st)
			if !errors.Is(err, ErrBadState) {
				t.Fatalf("err = %v, want ErrBadState", err)
			}
			if after := b.State(); after != before {
				t.Errorf("failed Restore mutated the bank: %+v -> %+v", before, after)
			}
		})
	}
}
