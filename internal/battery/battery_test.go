package battery

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Bank {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{DepthOfDischarge: 0.4, Efficiency: 0.8}},
		{"zero dod", Config{CapacityWh: 100, Efficiency: 0.8}},
		{"dod over 1", Config{CapacityWh: 100, DepthOfDischarge: 1.5, Efficiency: 0.8}},
		{"zero efficiency", Config{CapacityWh: 100, DepthOfDischarge: 0.4}},
		{"efficiency over 1", Config{CapacityWh: 100, DepthOfDischarge: 0.4, Efficiency: 1.2}},
		{"negative cap", Config{CapacityWh: 100, DepthOfDischarge: 0.4, Efficiency: 0.8, MaxChargeW: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestStartsFull(t *testing.T) {
	b := mustNew(t, DefaultConfig())
	if !b.Full() {
		t.Error("new bank should start full")
	}
	if got := b.SoC(); got != 1 {
		t.Errorf("SoC = %v, want 1", got)
	}
	if b.AtDoD() {
		t.Error("full bank should not be at DoD")
	}
}

func TestDischargeToDoDFloor(t *testing.T) {
	// 12 kWh bank, DoD 40 % → 4.8 kWh usable. At 1200 W that is 4 h.
	b := mustNew(t, DefaultConfig())
	var delivered float64
	hours := 0
	for !b.AtDoD() && hours < 100 {
		delivered += b.Discharge(1200, time.Hour)
		hours++
	}
	if hours != 4 {
		t.Errorf("drained in %d hours, want 4", hours)
	}
	if math.Abs(b.ChargeWh()-7200) > 1e-6 {
		t.Errorf("floor charge = %v, want 7200", b.ChargeWh())
	}
	if b.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1", b.Cycles())
	}
	// Further discharge yields nothing.
	if got := b.Discharge(1000, time.Hour); got != 0 {
		t.Errorf("discharge at floor = %v, want 0", got)
	}
}

func TestPartialLastDischarge(t *testing.T) {
	// Request more than the remaining usable energy: delivery is capped.
	b := mustNew(t, DefaultConfig())
	got := b.Discharge(10000, time.Hour) // usable 4800 Wh → max 4800 W for 1h
	if math.Abs(got-4800) > 1e-6 {
		t.Errorf("delivered %v W, want 4800", got)
	}
	if !b.AtDoD() {
		t.Error("bank should be at DoD")
	}
}

func TestChargeEfficiency(t *testing.T) {
	cfg := DefaultConfig()
	b := mustNew(t, cfg)
	b.Discharge(4800, time.Hour) // to floor: 7200 Wh stored
	used := b.Charge(1000, time.Hour, SourceRenewable)
	if math.Abs(used-1000) > 1e-9 {
		t.Errorf("consumed %v, want 1000", used)
	}
	if math.Abs(b.ChargeWh()-(7200+800)) > 1e-6 { // 80 % of 1000 Wh stored
		t.Errorf("charge = %v, want 8000", b.ChargeWh())
	}
}

func TestChargeCapAtFull(t *testing.T) {
	b := mustNew(t, DefaultConfig())
	if got := b.Charge(1000, time.Hour, SourceRenewable); got != 0 {
		t.Errorf("charging a full bank consumed %v, want 0", got)
	}
	// Drain 800 Wh of storage room, then overcharge: consumption limited
	// to room/efficiency.
	b.Discharge(800, time.Hour)
	got := b.Charge(5000, time.Hour, SourceGrid)
	if math.Abs(got-1000) > 1e-6 { // 800 Wh room / 0.8 eff
		t.Errorf("consumed %v, want 1000", got)
	}
	if !b.Full() {
		t.Error("bank should be full after overcharge")
	}
}

func TestPowerCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDischargeW = 500
	cfg.MaxChargeW = 300
	b := mustNew(t, cfg)
	if got := b.Discharge(1000, time.Hour); got != 500 {
		t.Errorf("discharge = %v, want cap 500", got)
	}
	if got := b.Charge(1000, time.Hour, SourceRenewable); got != 300 {
		t.Errorf("charge = %v, want cap 300", got)
	}
}

func TestCycleCounting(t *testing.T) {
	b := mustNew(t, DefaultConfig())
	for cycle := 1; cycle <= 3; cycle++ {
		b.Discharge(1e9, time.Hour) // slam to floor
		if b.Cycles() != cycle {
			t.Fatalf("cycles = %d, want %d", b.Cycles(), cycle)
		}
		// Lingering at the floor must not double-count.
		b.Discharge(100, time.Hour)
		if b.Cycles() != cycle {
			t.Fatalf("cycles double-counted at floor: %d", b.Cycles())
		}
		b.Charge(1e9, time.Hour, SourceGrid)
	}
	discharged, charged, gridCharged := b.Totals()
	if discharged <= 0 || charged <= 0 || gridCharged <= 0 {
		t.Errorf("totals = %v %v %v, want all positive", discharged, charged, gridCharged)
	}
	if gridCharged > charged {
		t.Errorf("grid share %v exceeds total charged %v", gridCharged, charged)
	}
}

func TestAvailableAndAcceptable(t *testing.T) {
	b := mustNew(t, DefaultConfig())
	if got := b.AvailableDischargeW(0); got != 0 {
		t.Errorf("zero duration discharge = %v", got)
	}
	if got := b.AcceptableChargeW(-time.Hour); got != 0 {
		t.Errorf("negative duration charge = %v", got)
	}
	if got := b.AvailableDischargeW(2 * time.Hour); math.Abs(got-2400) > 1e-6 {
		t.Errorf("available over 2h = %v, want 2400", got)
	}
}

func TestNoopRequests(t *testing.T) {
	b := mustNew(t, DefaultConfig())
	if got := b.Discharge(-5, time.Hour); got != 0 {
		t.Errorf("negative discharge = %v", got)
	}
	if got := b.Charge(0, time.Hour, SourceGrid); got != 0 {
		t.Errorf("zero charge = %v", got)
	}
}

func TestSourceString(t *testing.T) {
	if SourceRenewable.String() != "renewable" || SourceGrid.String() != "grid" {
		t.Error("Source.String mismatch")
	}
	if Source(9).String() != "Source(9)" {
		t.Errorf("unknown = %v", Source(9))
	}
}

// Property: stored energy always stays within [floor, capacity] across
// arbitrary interleavings of charge and discharge.
func TestQuickEnergyBounds(t *testing.T) {
	cfg := DefaultConfig()
	floor := cfg.CapacityWh * (1 - cfg.DepthOfDischarge)
	f := func(ops []int16) bool {
		b, err := New(cfg)
		if err != nil {
			return false
		}
		for _, op := range ops {
			p := float64(op) * 10
			if p >= 0 {
				b.Discharge(p, 15*time.Minute)
			} else {
				b.Charge(-p, 15*time.Minute, SourceRenewable)
			}
			if b.ChargeWh() < floor-1e-6 || b.ChargeWh() > cfg.CapacityWh+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: energy conservation — delivered discharge Wh equals the drop
// in stored energy; consumed charge Wh × efficiency equals the rise.
func TestQuickEnergyConservation(t *testing.T) {
	cfg := DefaultConfig()
	f := func(reqRaw uint16, charge bool) bool {
		b, err := New(cfg)
		if err != nil {
			return false
		}
		b.Discharge(2000, time.Hour) // leave room both ways
		before := b.ChargeWh()
		req := float64(reqRaw)
		if charge {
			used := b.Charge(req, 30*time.Minute, SourceRenewable)
			gained := b.ChargeWh() - before
			return math.Abs(gained-used*cfg.Efficiency*0.5) < 1e-6
		}
		got := b.Discharge(req, 30*time.Minute)
		lost := before - b.ChargeWh()
		return math.Abs(lost-got*0.5) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDischargeChargeCycle(b *testing.B) {
	bank, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Discharge(1200, 15*time.Minute)
		bank.Charge(1200, 15*time.Minute, SourceRenewable)
	}
}

func TestLifetimeYears(t *testing.T) {
	// Two cycles per day (the Low-trace regime, §V-B.3): 1300 rated
	// cycles last ≈ 1.78 years.
	got := LifetimeYears(2, 24*time.Hour)
	if math.Abs(got-float64(RatedCycles)/(2*365)) > 1e-9 {
		t.Errorf("LifetimeYears(2/day) = %v", got)
	}
	// One cycle per day ≈ 3.56 years.
	if a, b := LifetimeYears(1, 24*time.Hour), LifetimeYears(2, 24*time.Hour); a <= b {
		t.Errorf("fewer cycles should last longer: %v vs %v", a, b)
	}
	if !math.IsInf(LifetimeYears(0, time.Hour), 1) {
		t.Error("zero cycles should be +Inf")
	}
	if LifetimeYears(5, 0) != 0 {
		t.Error("zero window should be 0")
	}
}
