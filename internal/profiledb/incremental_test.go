package profiledb

import (
	"math"
	"testing"

	"greenhetero/internal/fit"
)

// referenceDB mirrors the pre-accumulator AddFeedback semantics exactly:
// append all incoming samples, trim to the window via a fresh copy,
// widen the peak, batch-refit with fitCurve. The incremental path must
// match it bit for bit — window contents, curve coefficients, R²,
// bounds, refit counts, and error outcomes alike.
type referenceDB struct {
	maxSamples int
	entries    map[Key]*Entry
}

func (r *referenceDB) addFeedback(k Key, samples ...fit.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	e := r.entries[k]
	e.Samples = append(e.Samples, samples...)
	if over := len(e.Samples) - r.maxSamples; over > 0 {
		e.Samples = append(e.Samples[:0:0], e.Samples[over:]...)
	}
	for _, s := range samples {
		if s.X > e.PeakEffW {
			e.PeakEffW = s.X
		}
	}
	curve, err := fitCurve(e.Samples)
	if err != nil {
		return err
	}
	e.Curve = curve
	e.Refits++
	return nil
}

func entriesBitEqual(t *testing.T, step int, got Entry, want *Entry) {
	t.Helper()
	if math.Float64bits(got.IdleW) != math.Float64bits(want.IdleW) ||
		math.Float64bits(got.PeakEffW) != math.Float64bits(want.PeakEffW) {
		t.Fatalf("step %d: bounds diverged: got (%v, %v) want (%v, %v)",
			step, got.IdleW, got.PeakEffW, want.IdleW, want.PeakEffW)
	}
	if got.Refits != want.Refits {
		t.Fatalf("step %d: refits %d vs %d", step, got.Refits, want.Refits)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("step %d: window %d vs %d samples", step, len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("step %d sample %d: %v vs %v", step, i, got.Samples[i], want.Samples[i])
		}
	}
	if len(got.Curve.Coeffs) != len(want.Curve.Coeffs) {
		t.Fatalf("step %d: curve degree %d vs %d", step, got.Curve.Degree(), want.Curve.Degree())
	}
	for i := range got.Curve.Coeffs {
		if math.Float64bits(got.Curve.Coeffs[i]) != math.Float64bits(want.Curve.Coeffs[i]) {
			t.Fatalf("step %d coeff %d: %v (%#x) vs %v (%#x)", step, i,
				got.Curve.Coeffs[i], math.Float64bits(got.Curve.Coeffs[i]),
				want.Curve.Coeffs[i], math.Float64bits(want.Curve.Coeffs[i]))
		}
	}
	if math.Float64bits(got.Curve.R2) != math.Float64bits(want.Curve.R2) {
		t.Fatalf("step %d: R² %v vs %v", step, got.Curve.R2, want.Curve.R2)
	}
}

// TestAddFeedbackMatchesBatchRefit drives the incremental refit path
// through growth, eviction, degenerate windows, and recovery, checking
// bit-identity against the batch reference after every call.
func TestAddFeedbackMatchesBatchRefit(t *testing.T) {
	const window = 12
	k := Key{ServerID: "xeon", WorkloadID: "jbb"}
	train := []fit.Sample{{X: 40, Y: 100}, {X: 55, Y: 180}, {X: 70, Y: 240}, {X: 85, Y: 280}}

	db := New(WithMaxSamples(window))
	if err := db.AddTrainingRun(k, 30, 90, train); err != nil {
		t.Fatal(err)
	}
	ref := &referenceDB{maxSamples: window, entries: map[Key]*Entry{k: {
		Key: k, IdleW: 30, PeakEffW: 90,
		Samples: append([]fit.Sample(nil), train...),
	}}}
	refCurve, err := fitCurve(ref.entries[k].Samples)
	if err != nil {
		t.Fatal(err)
	}
	ref.entries[k].Curve = refCurve

	// Feedback stream: single appends, a multi-sample batch bigger than
	// the remaining window, a batch bigger than the whole window, a
	// degenerate all-same-X burst (refit fails, curve kept), then
	// recovery samples.
	steps := [][]fit.Sample{
		{{X: 62, Y: 210.5}},
		{{X: 47.25, Y: 151}},
		{{X: 95, Y: 310}}, // widens PeakEffW
		{{X: 58, Y: 190}, {X: 66, Y: 222}, {X: 74, Y: 251}, {X: 81, Y: 270}, {X: 88, Y: 288}},
		{{X: 52, Y: 170}, {X: 69, Y: 230}, {X: 77, Y: 258}},
		func() []fit.Sample { // one batch larger than the whole window
			big := make([]fit.Sample, window+3)
			for i := range big {
				x := 42 + 3.1*float64(i)
				big[i] = fit.Sample{X: x, Y: 90 + 2.9*x}
			}
			return big
		}(),
		func() []fit.Sample { // degenerate: flood the window with one X
			bad := make([]fit.Sample, window)
			for i := range bad {
				bad[i] = fit.Sample{X: 60, Y: float64(200 + i)}
			}
			return bad
		}(),
		{{X: 50, Y: 160}, {X: 72, Y: 240}},
	}

	for i, batch := range steps {
		gotErr := db.AddFeedback(k, batch...)
		wantErr := ref.addFeedback(k, batch...)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("step %d: incremental err %v, reference err %v", i, gotErr, wantErr)
		}
		got, err := db.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		entriesBitEqual(t, i, got, ref.entries[k])
	}
}

// TestAddFeedbackSteadyStateAllocFree pins the per-epoch refit to zero
// allocations once the window has filled (ISSUE 6 satellite: the
// fit.Polynomial/solveLinear per-call allocations moved into reused
// accumulator buffers).
func TestAddFeedbackSteadyStateAllocFree(t *testing.T) {
	k := Key{ServerID: "xeon", WorkloadID: "jbb"}
	db := New(WithMaxSamples(16))
	train := []fit.Sample{{X: 40, Y: 100}, {X: 55, Y: 180}, {X: 70, Y: 240}, {X: 85, Y: 280}}
	if err := db.AddTrainingRun(k, 30, 90, train); err != nil {
		t.Fatal(err)
	}
	// Warm up: fill the window past capacity so every further call runs
	// the evict+re-accumulate+refit path, and let slice capacities settle.
	fb := make([]fit.Sample, 1)
	for i := 0; i < 40; i++ {
		x := 40 + float64(i%50)
		fb[0] = fit.Sample{X: x, Y: 80 + 3*x - 0.011*x*x}
		if err := db.AddFeedback(k, fb...); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		x := 40 + float64(i%50)
		fb[0] = fit.Sample{X: x, Y: 80 + 3*x - 0.011*x*x}
		if err := db.AddFeedback(k, fb...); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state AddFeedback allocates %v per call, want 0", allocs)
	}
}

// TestProjectionMatchesLookup checks the samples-free projection carries
// exactly the fields Lookup does (minus the window) and that
// ProjectionInto reuses caller capacity without aliasing the store.
func TestProjectionMatchesLookup(t *testing.T) {
	k := Key{ServerID: "xeon", WorkloadID: "jbb"}
	db := New()
	train := []fit.Sample{{X: 40, Y: 100}, {X: 55, Y: 180}, {X: 70, Y: 240}, {X: 85, Y: 280}}
	if err := db.AddTrainingRun(k, 30, 90, train); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFeedback(k, fit.Sample{X: 62, Y: 210}); err != nil {
		t.Fatal(err)
	}

	full, err := db.Lookup(k)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := db.Projection(k)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Samples != nil {
		t.Fatalf("projection carries %d samples, want none", len(proj.Samples))
	}
	proj.Samples = full.Samples
	entriesBitEqual(t, 0, proj, &full)

	// Reuse path: no allocations once the scratch entry has capacity,
	// and mutating the scratch never reaches the store.
	var scratch Entry
	if err := db.ProjectionInto(k, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := db.ProjectionInto(k, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProjectionInto allocates %v per call with warm scratch, want 0", allocs)
	}
	scratch.Curve.Coeffs[0] = -999
	again, err := db.Lookup(k)
	if err != nil {
		t.Fatal(err)
	}
	if again.Curve.Coeffs[0] == -999 {
		t.Fatal("mutating a projection scratch reached the store")
	}

	if _, err := db.Projection(Key{ServerID: "nope", WorkloadID: "nope"}); err == nil {
		t.Fatal("Projection of missing key must error")
	}
}
