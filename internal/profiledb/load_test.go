package profiledb

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"greenhetero/internal/fit"
)

// trainedDB builds a database with two real entries.
func trainedDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	samples := []fit.Sample{{X: 100, Y: 10}, {X: 150, Y: 22}, {X: 200, Y: 30}, {X: 250, Y: 34}}
	if err := db.AddTrainingRun(Key{ServerID: "xeon", WorkloadID: "jbb"}, 80, 260, samples); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTrainingRun(Key{ServerID: "i5", WorkloadID: "jbb"}, 40, 120, []fit.Sample{
		{X: 50, Y: 8}, {X: 80, Y: 14}, {X: 110, Y: 18},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestLoadRejections drives Load with hand-built snapshots covering
// every class the validator must refuse.
func TestLoadRejections(t *testing.T) {
	// A minimal well-formed entry to mutate from.
	valid := `{"key":{"serverId":"a","workloadId":"w"},"idleW":50,"peakEffW":200,` +
		`"samples":[{"x":100,"y":10}],"curve":{"coeffs":[1,2,3]},"refits":0}`

	cases := []struct {
		name string
		json string
	}{
		{"zero maxSamples", `{"maxSamples":0,"entries":[]}`},
		{"negative maxSamples", `{"maxSamples":-3,"entries":[]}`},
		{"empty server id", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"","workloadId":"w"},"idleW":50,"peakEffW":200}]}`},
		{"empty workload id", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":""},"idleW":50,"peakEffW":200}]}`},
		{"duplicate keys", `{"maxSamples":64,"entries":[` + valid + `,` + valid + `]}`},
		{"nan idleW", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":"NaN","peakEffW":200}]}`},
		{"inf peakEffW", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":50,"peakEffW":1e999}]}`},
		{"zero idleW", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":0,"peakEffW":200}]}`},
		{"peak below idle", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":200,"peakEffW":100}]}`},
		{"negative refits", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":50,"peakEffW":200,"refits":-1}]}`},
		{"non-finite sample", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":50,"peakEffW":200,` +
			`"samples":[{"x":1e999,"y":1}]}]}`},
		{"non-finite curve coefficient", `{"maxSamples":64,"entries":[` +
			`{"key":{"serverId":"a","workloadId":"w"},"idleW":50,"peakEffW":200,` +
			`"curve":{"coeffs":[1,1e999]}}]}`},
		{"trailing garbage type", `{"maxSamples":"many","entries":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.json)); err == nil {
				t.Errorf("Load accepted %s", tc.json)
			}
		})
	}
}

func TestLoadRejectionsAreErrBadEntry(t *testing.T) {
	// Structural (JSON) failures wrap differently, but every semantic
	// rejection is ErrBadEntry so callers can distinguish corrupt files
	// from unreadable ones.
	_, err := Load(strings.NewReader(`{"maxSamples":0,"entries":[]}`))
	if !errors.Is(err, ErrBadEntry) {
		t.Errorf("semantic rejection err = %v, want ErrBadEntry", err)
	}
}

// TestSaveLoadByteIdentical: Save output is accepted by Load and
// reproduces the database byte-for-byte on a second Save.
func TestSaveLoadByteIdentical(t *testing.T) {
	db := trainedDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("save → load → save is not byte-identical")
	}
}

// TestRestoreFrom: in-place restore replaces the entries, rejects
// mismatched maxSamples, and leaves the DB untouched on bad input.
func TestRestoreFrom(t *testing.T) {
	src := trainedDB(t)
	var snap bytes.Buffer
	if err := src.Save(&snap); err != nil {
		t.Fatal(err)
	}

	dst := New()
	if err := dst.RestoreFrom(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Errorf("restored %d entries, want %d", dst.Len(), src.Len())
	}
	var out bytes.Buffer
	if err := dst.Save(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), out.Bytes()) {
		t.Error("RestoreFrom did not reproduce the snapshot byte-for-byte")
	}

	// maxSamples is part of the deployment fingerprint.
	other := New(WithMaxSamples(8))
	if err := other.RestoreFrom(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrBadEntry) {
		t.Errorf("mismatched maxSamples err = %v, want ErrBadEntry", err)
	}
	if other.Len() != 0 {
		t.Error("failed RestoreFrom mutated the database")
	}

	// Invalid snapshot leaves existing entries in place.
	before := dst.Len()
	if err := dst.RestoreFrom(strings.NewReader(`{"maxSamples":0}`)); err == nil {
		t.Error("invalid snapshot accepted")
	}
	if dst.Len() != before {
		t.Error("failed RestoreFrom mutated the database")
	}
}
