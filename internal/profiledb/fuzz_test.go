package profiledb

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens the database decoder: malformed snapshots must error
// or produce a usable store — never panic, never corrupt Predict.
func FuzzLoad(f *testing.F) {
	// Seed with a real snapshot.
	db := New()
	if err := db.AddTrainingRun(Key{ServerID: "s", WorkloadID: "w"}, 50, 100,
		trainingSamples(5, 0.01, 1)); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"entries":[{"key":{"serverId":"a","workloadId":"b"},"idleW":1,"peakEffW":2}]}`))
	f.Add([]byte(`{"entries":[{"key":{}}]}`))
	f.Add([]byte(`garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, k := range loaded.Keys() {
			e, err := loaded.Lookup(k)
			if err != nil {
				t.Fatalf("listed key %v not loadable: %v", k, err)
			}
			// Predict must not panic anywhere in a plausible range.
			for p := 0.0; p <= 500; p += 50 {
				if v := e.Predict(p); v < 0 {
					t.Fatalf("negative prediction %v", v)
				}
			}
		}
	})
}
