package profiledb

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"greenhetero/internal/fit"
	"greenhetero/internal/server"
	"greenhetero/internal/workload"
)

var testKey = Key{ServerID: "e5-2620", WorkloadID: "specjbb"}

// trainingSamples produces samples from a known concave truth.
func trainingSamples(n int, noise float64, seed int64) []fit.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]fit.Sample, 0, n)
	for i := 0; i < n; i++ {
		p := 90 + float64(i)*(57.0/float64(n-1)) // 90..147 W
		perf := 1000 * math.Sqrt((p-88)/59)
		out = append(out, fit.Sample{X: p, Y: perf * (1 + noise*rng.NormFloat64())})
	}
	return out
}

func mustTrain(t *testing.T, db *DB, k Key) {
	t.Helper()
	if err := db.AddTrainingRun(k, 88, 147, trainingSamples(5, 0.02, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestLookupNotFound(t *testing.T) {
	db := New()
	if _, err := db.Lookup(testKey); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if db.Has(testKey) {
		t.Error("Has on empty db")
	}
}

func TestAddTrainingRunAndPredict(t *testing.T) {
	db := New()
	mustTrain(t, db, testKey)
	if !db.Has(testKey) {
		t.Fatal("entry missing after training run")
	}
	e, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	// Clamping semantics.
	if got := e.Predict(50); got != 0 {
		t.Errorf("Predict below idle = %v, want 0", got)
	}
	if got, want := e.Predict(300), e.Predict(147); got != want {
		t.Errorf("Predict above peakEff = %v, want constant %v", got, want)
	}
	// Projection should be close to the truth mid-range.
	truth := 1000 * math.Sqrt((120.0-88)/59)
	if got := e.Predict(120); math.Abs(got-truth)/truth > 0.15 {
		t.Errorf("Predict(120) = %v, truth %v", got, truth)
	}
}

func TestAddTrainingRunValidation(t *testing.T) {
	db := New()
	if err := db.AddTrainingRun(Key{}, 88, 147, trainingSamples(5, 0, 1)); !errors.Is(err, ErrBadEntry) {
		t.Errorf("empty key err = %v", err)
	}
	if err := db.AddTrainingRun(testKey, 0, 147, trainingSamples(5, 0, 1)); !errors.Is(err, ErrBadEntry) {
		t.Errorf("zero idle err = %v", err)
	}
	if err := db.AddTrainingRun(testKey, 150, 147, trainingSamples(5, 0, 1)); !errors.Is(err, ErrBadEntry) {
		t.Errorf("inverted range err = %v", err)
	}
	if err := db.AddTrainingRun(testKey, 88, 147, nil); !errors.Is(err, ErrFit) {
		t.Errorf("no samples err = %v", err)
	}
}

func TestLinearFallbackWithFewSamples(t *testing.T) {
	db := New()
	samples := []fit.Sample{{X: 90, Y: 100}, {X: 120, Y: 500}, {X: 147, Y: 900}}
	if err := db.AddTrainingRun(testKey, 88, 147, samples); err != nil {
		t.Fatal(err)
	}
	e, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if e.Curve.Degree() != 1 {
		t.Errorf("degree = %d, want linear fallback", e.Curve.Degree())
	}
}

func TestFeedbackImprovesFit(t *testing.T) {
	// Start from a sparse noisy training run, then add accurate feedback:
	// the refitted projection must get closer to the truth.
	db := New()
	if err := db.AddTrainingRun(testKey, 88, 147, trainingSamples(5, 0.25, 7)); err != nil {
		t.Fatal(err)
	}
	truth := func(p float64) float64 { return 1000 * math.Sqrt((p-88)/59) }
	errAt := func(e Entry) float64 {
		var sum float64
		for p := 95.0; p <= 145; p += 10 {
			sum += math.Abs(e.Predict(p) - truth(p))
		}
		return sum
	}
	before, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := db.AddFeedback(testKey, trainingSamples(8, 0.01, int64(10+i))...); err != nil {
			t.Fatal(err)
		}
	}
	after, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if errAt(after) >= errAt(before) {
		t.Errorf("feedback did not improve fit: before %v after %v", errAt(before), errAt(after))
	}
	if after.Refits != 6 {
		t.Errorf("refits = %d, want 6", after.Refits)
	}
}

func TestFeedbackNotFound(t *testing.T) {
	db := New()
	err := db.AddFeedback(testKey, fit.Sample{X: 100, Y: 10})
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestFeedbackEmptyIsNoop(t *testing.T) {
	db := New()
	if err := db.AddFeedback(testKey); err != nil {
		t.Errorf("empty feedback should be a no-op, got %v", err)
	}
}

func TestSampleWindowEviction(t *testing.T) {
	db := New(WithMaxSamples(10))
	mustTrain(t, db, testKey)
	for i := 0; i < 5; i++ {
		if err := db.AddFeedback(testKey, trainingSamples(4, 0.01, int64(i))...); err != nil {
			t.Fatal(err)
		}
	}
	e, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Samples) != 10 {
		t.Errorf("retained %d samples, want 10", len(e.Samples))
	}
}

func TestPredictNegativeFloored(t *testing.T) {
	e := Entry{IdleW: 88, PeakEffW: 147, Curve: fit.Poly{Coeffs: []float64{-1000, 0, 0}}}
	if got := e.Predict(100); got != 0 {
		t.Errorf("Predict = %v, want floored 0", got)
	}
}

func TestEnergyEfficiency(t *testing.T) {
	db := New()
	mustTrain(t, db, testKey)
	e, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Predict(147) / 147
	if got := e.EnergyEfficiency(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EnergyEfficiency = %v, want %v", got, want)
	}
	zero := Entry{}
	if zero.EnergyEfficiency() != 0 {
		t.Error("zero entry efficiency should be 0")
	}
}

func TestKeysSorted(t *testing.T) {
	db := New()
	keys := []Key{
		{ServerID: "b", WorkloadID: "y"},
		{ServerID: "a", WorkloadID: "z"},
		{ServerID: "a", WorkloadID: "x"},
	}
	for _, k := range keys {
		if err := db.AddTrainingRun(k, 50, 100, []fit.Sample{{X: 55, Y: 1}, {X: 80, Y: 2}, {X: 99, Y: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Keys()
	want := []Key{{ServerID: "a", WorkloadID: "x"}, {ServerID: "a", WorkloadID: "z"}, {ServerID: "b", WorkloadID: "y"}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d, want 3", db.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(WithMaxSamples(32))
	mustTrain(t, db, testKey)
	other := Key{ServerID: "i5-4460", WorkloadID: "memcached"}
	if err := db.AddTrainingRun(other, 47, 62, []fit.Sample{{X: 48, Y: 10}, {X: 55, Y: 40}, {X: 60, Y: 55}, {X: 62, Y: 60}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", got.Len())
	}
	e1, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := got.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	for p := 90.0; p <= 147; p += 10 {
		if math.Abs(e1.Predict(p)-e2.Predict(p)) > 1e-9 {
			t.Errorf("Predict(%v) differs after round trip", p)
		}
	}
}

func TestLoadRejectsBadData(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("bad json should error")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"entries":[{"key":{}}]}`))); !errors.Is(err, ErrBadEntry) {
		t.Errorf("empty key err = %v", err)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	db := New()
	mustTrain(t, db, testKey)
	e, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	e.Samples[0].Y = -999
	e.Curve.Coeffs[0] = -999
	e2, err := db.Lookup(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Samples[0].Y == -999 || e2.Curve.Coeffs[0] == -999 {
		t.Error("Lookup must return a deep copy")
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Monitor goroutines write feedback while schedulers read; run with
	// -race to verify.
	db := New()
	specs := server.Catalog()
	wls := workload.Catalog()
	for _, s := range specs[:3] {
		for _, w := range wls[:3] {
			k := Key{ServerID: s.ID, WorkloadID: w.ID}
			if err := db.AddTrainingRun(k, s.IdleW, workload.PeakEffW(s, w), trainingSamples(5, 0.05, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := Key{ServerID: specs[g%3].ID, WorkloadID: wls[g%3].ID}
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					_ = db.AddFeedback(k, trainingSamples(3, 0.05, int64(i))...)
				} else {
					if e, err := db.Lookup(k); err == nil {
						_ = e.Predict(100)
					}
					_ = db.Keys()
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRefit(b *testing.B) {
	db := New()
	if err := db.AddTrainingRun(testKey, 88, 147, trainingSamples(5, 0.05, 1)); err != nil {
		b.Fatal(err)
	}
	fb := trainingSamples(3, 0.05, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AddFeedback(testKey, fb...); err != nil {
			b.Fatal(err)
		}
	}
}
