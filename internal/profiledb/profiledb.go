// Package profiledb implements the GreenHetero performance-power database
// (paper §IV-B.2, Fig. 7): for every (server configuration, workload)
// pair it holds profiled (power, performance) samples and a quadratic
// curve fit Perf = f(Power) used by the Solver as a performance
// projection.
//
// Entries are created by a training run (the first time a workload meets
// a configuration, Algorithm 1 lines 4–5) and refreshed each epoch with
// feedback samples, re-fitting the curve over new and old samples
// together (lines 7–10). The store is safe for concurrent use: the
// Monitor writes feedback while the Scheduler reads projections.
package profiledb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"greenhetero/internal/fit"
)

// Key identifies one (server configuration, workload) pair.
type Key struct {
	ServerID   string `json:"serverId"`
	WorkloadID string `json:"workloadId"`
}

// String implements fmt.Stringer.
func (k Key) String() string { return k.ServerID + "/" + k.WorkloadID }

// Entry is one database row: the retained samples and the current fit.
type Entry struct {
	// Key identifies the pair.
	Key Key `json:"key"`
	// IdleW and PeakEffW bound the projection's validity: below IdleW
	// the projection is 0, above PeakEffW it is constant (paper
	// §IV-B.3 clamping semantics).
	IdleW    float64 `json:"idleW"`
	PeakEffW float64 `json:"peakEffW"`
	// Samples are the retained (power, perf) observations, oldest first.
	Samples []fit.Sample `json:"samples"`
	// Curve is the current quadratic projection.
	Curve fit.Poly `json:"curve"`
	// Refits counts how many times the curve was reconstructed.
	Refits int `json:"refits"`

	// acc carries the entry's running normal-equation sums so the
	// per-epoch refit is incremental (O(new samples) instead of
	// O(window)) and allocation-free. It is lazily created on the first
	// AddFeedback, kept in sync with Samples from then on, and never
	// copied out of the store (copyEntry drops it): fits from the sums
	// are bit-identical to batch fits over the same window, so its
	// presence is invisible to every reader.
	acc *fit.Accumulator
}

// Predict evaluates the projection with the paper's clamping: zero below
// idle power, constant beyond the effective peak, floored at zero
// (a noisy fit must never project negative throughput).
//
// ghlint:allocfree
func (e *Entry) Predict(powerW float64) float64 {
	if powerW < e.IdleW {
		return 0
	}
	if powerW > e.PeakEffW {
		powerW = e.PeakEffW
	}
	v := e.Curve.Eval(powerW)
	if v < 0 {
		return 0
	}
	return v
}

// EnergyEfficiency is the projected throughput per watt at the effective
// peak, the ranking key of the GreenHetero-p policy.
//
// ghlint:allocfree
func (e *Entry) EnergyEfficiency() float64 {
	if e.PeakEffW <= 0 {
		return 0
	}
	return e.Predict(e.PeakEffW) / e.PeakEffW
}

var (
	// ErrNotFound is returned when a pair has no entry yet — the signal
	// to start a training run (Algorithm 1 line 3).
	ErrNotFound = errors.New("profiledb: entry not found")
	// ErrBadEntry is returned for invalid entry parameters.
	ErrBadEntry = errors.New("profiledb: bad entry")
	// ErrFit wraps curve-fitting failures.
	ErrFit = errors.New("profiledb: fit failed")
)

// DB is the thread-safe store.
type DB struct {
	mu sync.RWMutex
	// ghlint:guardedby mu
	entries map[Key]*Entry
	// maxSamples is set only by Options inside New, before the DB is
	// published to any other goroutine, and is immutable afterwards — so
	// it is deliberately not guarded.
	maxSamples int
}

// Option configures a DB.
type Option func(*DB)

// WithMaxSamples caps retained samples per entry (oldest evicted first).
// The default is 64; the cap keeps refits cheap and lets the projection
// track drift.
func WithMaxSamples(n int) Option {
	return func(db *DB) {
		if n > 0 {
			db.maxSamples = n
		}
	}
}

// New creates an empty database.
func New(opts ...Option) *DB {
	db := &DB{
		entries:    make(map[Key]*Entry),
		maxSamples: 64,
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Len reports the number of entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Keys returns all keys, sorted for determinism.
func (db *DB) Keys() []Key {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]Key, 0, len(db.entries))
	for k := range db.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ServerID != keys[j].ServerID {
			return keys[i].ServerID < keys[j].ServerID
		}
		return keys[i].WorkloadID < keys[j].WorkloadID
	})
	return keys
}

// Lookup returns a copy of the entry for k, or ErrNotFound.
func (db *DB) Lookup(k Key) (Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[k]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	return copyEntry(e), nil
}

// Projection returns a copy of the entry without its retained samples —
// the fields the allocation policies and solver actually read (bounds,
// curve, refit count). Use Lookup when the sample window is needed.
func (db *DB) Projection(k Key) (Entry, error) {
	var out Entry
	if err := db.ProjectionInto(k, &out); err != nil {
		return Entry{}, err
	}
	return out, nil
}

// ProjectionInto is Projection writing into out, reusing out's
// coefficient capacity — the per-epoch policy path calls it once per
// group with a scratch Entry and performs no steady-state allocations.
//
// ghlint:allocfree
func (db *DB) ProjectionInto(k Key, out *Entry) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[k]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	coeffs := append(out.Curve.Coeffs[:0], e.Curve.Coeffs...)
	*out = Entry{Key: e.Key, IdleW: e.IdleW, PeakEffW: e.PeakEffW, Curve: e.Curve, Refits: e.Refits}
	out.Curve.Coeffs = coeffs
	return nil
}

// Has reports whether the pair has been profiled (Algorithm 1 line 3).
func (db *DB) Has(k Key) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.entries[k]
	return ok
}

// AddTrainingRun creates (or replaces) the entry for k from a training
// run's samples, fitting the initial quadratic projection.
func (db *DB) AddTrainingRun(k Key, idleW, peakEffW float64, samples []fit.Sample) error {
	if k.ServerID == "" || k.WorkloadID == "" {
		return fmt.Errorf("%w: empty key", ErrBadEntry)
	}
	if idleW <= 0 || peakEffW <= idleW {
		return fmt.Errorf("%w: power range idle %v peakEff %v", ErrBadEntry, idleW, peakEffW)
	}
	curve, err := fitCurve(samples)
	if err != nil {
		return fmt.Errorf("training run %s: %w", k, err)
	}
	e := &Entry{
		Key:      k,
		IdleW:    idleW,
		PeakEffW: peakEffW,
		Samples:  append([]fit.Sample(nil), samples...),
		Curve:    curve,
	}
	db.trim(e)

	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[k] = e
	return nil
}

// AddFeedback appends runtime feedback samples and reconstructs the
// projection over old and new samples together (Algorithm 1 lines 8–10).
//
// ghlint:allocfree
func (db *DB) AddFeedback(k Key, samples ...fit.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[k]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	// Evict before appending, in place. The retained window is the tail
	// of (old ++ incoming), which is exactly what append-then-trim kept,
	// without reallocating the sample slice every epoch.
	incoming := samples
	over := len(e.Samples) + len(incoming) - db.maxSamples
	if over > 0 {
		if over >= len(e.Samples) {
			incoming = incoming[over-len(e.Samples):]
			e.Samples = e.Samples[:0]
		} else {
			n := copy(e.Samples, e.Samples[over:])
			e.Samples = e.Samples[:n]
		}
	}
	e.Samples = append(e.Samples, incoming...)
	// A feedback draw beyond the believed effective peak means the
	// workload's demand grew (e.g. load intensity rose since the
	// training run): widen the projection's validity range. The range
	// never shrinks — under power scarcity the rack only observes
	// throttled draws, which say nothing about true demand.
	for _, s := range samples {
		if s.X > e.PeakEffW {
			e.PeakEffW = s.X
		}
	}
	// Keep the incremental sums in step with the window. Appends fold in
	// O(degree) per sample; evictions re-accumulate (the only way to
	// stay bit-identical to a batch fit — see fit.Accumulator).
	resync := over > 0
	if e.acc == nil {
		e.acc, _ = fit.NewAccumulator(2) // degree 2 never errors
		resync = true
	}
	if resync {
		e.acc.ReplaceWindow(e.Samples)
	} else {
		for _, s := range incoming {
			e.acc.Append(s)
		}
	}
	curve, err := refitEntry(e)
	if err != nil {
		// Degenerate feedback (e.g. repeated identical power points
		// after eviction) must not corrupt the existing projection.
		return fmt.Errorf("refit %s: %w", k, err)
	}
	// The accumulator's coefficient buffer is reused two fits later;
	// copy into the entry-owned slice (reusing its capacity) so the
	// stored curve survives future refits.
	curve.Coeffs = append(e.Curve.Coeffs[:0], curve.Coeffs...)
	e.Curve = curve
	e.Refits++
	return nil
}

// trim evicts the oldest samples beyond maxSamples, shifting in place.
func (db *DB) trim(e *Entry) {
	if over := len(e.Samples) - db.maxSamples; over > 0 {
		n := copy(e.Samples, e.Samples[over:])
		e.Samples = e.Samples[:n]
	}
}

// fitCurve fits the quadratic projection, falling back to linear when
// only three or fewer distinct samples exist.
func fitCurve(samples []fit.Sample) (fit.Poly, error) {
	if len(samples) >= 4 {
		if p, err := fit.Quadratic(samples); err == nil {
			return p, nil
		}
	}
	p, err := fit.Linear(samples)
	if err != nil {
		return fit.Poly{}, fmt.Errorf("%w: %v", ErrFit, err)
	}
	return p, nil
}

// refitEntry is fitCurve on the entry's incremental sums: the same
// quadratic-then-linear ladder with the same error wrapping, fed from
// the accumulator instead of re-walking the window. Bit-identical to
// fitCurve(e.Samples) by the accumulator's equivalence contract.
//
// ghlint:allocfree
func refitEntry(e *Entry) (fit.Poly, error) {
	if len(e.Samples) >= 4 {
		if p, err := e.acc.Fit(e.Samples, 2); err == nil {
			return p, nil
		}
	}
	p, err := e.acc.Fit(e.Samples, 1)
	if err != nil {
		return fit.Poly{}, fmt.Errorf("%w: %v", ErrFit, err)
	}
	return p, nil
}

func copyEntry(e *Entry) Entry {
	out := *e
	out.Samples = append([]fit.Sample(nil), e.Samples...)
	out.Curve.Coeffs = append([]float64(nil), e.Curve.Coeffs...)
	out.acc = nil
	return out
}

// snapshot is the JSON wire form of the database.
type snapshot struct {
	MaxSamples int     `json:"maxSamples"`
	Entries    []Entry `json:"entries"`
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{MaxSamples: db.maxSamples, Entries: make([]Entry, 0, len(db.entries))}
	for _, k := range db.keysLocked() {
		snap.Entries = append(snap.Entries, copyEntry(db.entries[k]))
	}
	db.mu.RUnlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("profiledb: save: %w", err)
	}
	return nil
}

// keysLocked returns sorted keys; caller must hold at least RLock.
//
// ghlint:holds db.mu read
func (db *DB) keysLocked() []Key {
	keys := make([]Key, 0, len(db.entries))
	for k := range db.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ServerID != keys[j].ServerID {
			return keys[i].ServerID < keys[j].ServerID
		}
		return keys[i].WorkloadID < keys[j].WorkloadID
	})
	return keys
}

// validate checks a decoded snapshot before any of it is installed:
// positive maxSamples, unique non-empty keys, and finite power bounds,
// sample coordinates, and curve coefficients. Snapshots come from Save
// but also from hand-edited files and crash recovery, so nothing is
// trusted.
func (sn *snapshot) validate() error {
	if sn.MaxSamples <= 0 {
		return fmt.Errorf("%w: non-positive maxSamples %d", ErrBadEntry, sn.MaxSamples)
	}
	seen := make(map[Key]bool, len(sn.Entries))
	for i := range sn.Entries {
		e := &sn.Entries[i]
		if e.Key.ServerID == "" || e.Key.WorkloadID == "" {
			return fmt.Errorf("%w: entry %d has empty key", ErrBadEntry, i)
		}
		if seen[e.Key] {
			return fmt.Errorf("%w: duplicate key %s", ErrBadEntry, e.Key)
		}
		seen[e.Key] = true
		for _, f := range []struct {
			name string
			v    float64
		}{{"idleW", e.IdleW}, {"peakEffW", e.PeakEffW}} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
				return fmt.Errorf("%w: %s: non-finite %s", ErrBadEntry, e.Key, f.name)
			}
		}
		if e.IdleW <= 0 || e.PeakEffW <= e.IdleW {
			return fmt.Errorf("%w: %s: power range idle %v peakEff %v", ErrBadEntry, e.Key, e.IdleW, e.PeakEffW)
		}
		if e.Refits < 0 {
			return fmt.Errorf("%w: %s: negative refits %d", ErrBadEntry, e.Key, e.Refits)
		}
		for j, s := range e.Samples {
			if math.IsNaN(s.X) || math.IsInf(s.X, 0) || math.IsNaN(s.Y) || math.IsInf(s.Y, 0) {
				return fmt.Errorf("%w: %s: non-finite sample %d (%v, %v)", ErrBadEntry, e.Key, j, s.X, s.Y)
			}
		}
		for j, c := range e.Curve.Coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("%w: %s: non-finite curve coefficient %d (%v)", ErrBadEntry, e.Key, j, c)
			}
		}
	}
	return nil
}

// decodeSnapshot reads and validates a snapshot from r.
func decodeSnapshot(r io.Reader) (snapshot, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("profiledb: load: %w", err)
	}
	if err := snap.validate(); err != nil {
		return snapshot{}, err
	}
	return snap, nil
}

// Load reads a database written by Save, rejecting duplicate keys,
// non-positive maxSamples, and non-finite coefficients or samples.
func Load(r io.Reader) (*DB, error) {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	db := New(WithMaxSamples(snap.MaxSamples))
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := range snap.Entries {
		e := snap.Entries[i]
		db.entries[e.Key] = &e
	}
	return db, nil
}

// RestoreFrom replaces the database's entries from a snapshot written
// by Save — crash recovery into a DB already shared with a controller.
// The snapshot is fully validated first, so on error the DB is
// untouched. The snapshot's maxSamples must equal the DB's: that field
// is immutable by design (trim reads it unlocked), and a mismatch means
// the snapshot belongs to a differently-configured deployment.
func (db *DB) RestoreFrom(r io.Reader) error {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	if snap.MaxSamples != db.maxSamples {
		return fmt.Errorf("%w: snapshot maxSamples %d, database %d", ErrBadEntry, snap.MaxSamples, db.maxSamples)
	}
	entries := make(map[Key]*Entry, len(snap.Entries))
	for i := range snap.Entries {
		e := snap.Entries[i]
		entries[e.Key] = &e
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries = entries
	return nil
}
