package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer forbids nondeterministic inputs in the
// deterministic core: wall-clock reads, the global math/rand source,
// environment variables, and CPU-count queries. A single such call
// inside a simulation path silently breaks the serial-vs-parallel
// bit-identity proof and makes golden experiment tables flaky, so the
// convention is promoted to a build-time error here.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, global-RNG, environment, and CPU-count reads " +
		"in the deterministic core packages; simulation output must be a " +
		"pure function of the run Config",
	Run: runDeterminism,
}

// forbiddenCalls maps package path → function name → the reason the
// call is nondeterministic. Only calls through the package selector are
// matched, which is exactly how these functions are reached.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the environment",
		"LookupEnv": "reads the environment",
		"Environ":   "reads the environment",
	},
	"runtime": {
		"NumCPU":     "depends on the host CPU count",
		"GOMAXPROCS": "depends on the host CPU count",
	},
}

// globalRandAllowed lists the math/rand (and math/rand/v2) functions
// that do NOT touch the shared global source: constructors that take an
// explicit, caller-owned seed or source. Everything else at package
// level draws from the process-global RNG and is forbidden in the core.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) {
	if !IsDeterministicCore(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pkgQualifiedCall(pass.Info, call)
			if pkgPath == "" {
				return true
			}
			if reason, ok := forbiddenCalls[pkgPath][fn]; ok {
				pass.Reportf(call.Pos(),
					"%s.%s %s; deterministic-core packages must derive everything from the run Config (move the call behind an injected clock/knob or to an allowlisted package)",
					pkgPath, fn, reason)
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandAllowed[fn] {
				pass.Reportf(call.Pos(),
					"%s.%s draws from the process-global RNG; deterministic-core packages must use a rand.Rand seeded from the run Config (rand.New(rand.NewSource(seed)))",
					pkgPath, fn)
			}
			return true
		})
	}
}

// pkgQualifiedCall resolves a call of the form pkg.Fn(...) to its
// package import path and function name, following the type-checker's
// resolution so import aliases cannot hide a forbidden call. Non-package
// selectors (method calls, field accesses) return "".
func pkgQualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
