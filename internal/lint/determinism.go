package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer forbids nondeterministic inputs in the
// deterministic core: wall-clock reads, the global math/rand source,
// environment variables, and CPU-count queries. A single such call
// inside a simulation path silently breaks the serial-vs-parallel
// bit-identity proof and makes golden experiment tables flaky, so the
// convention is promoted to a build-time error here.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, global-RNG, environment, and CPU-count reads " +
		"in the deterministic core packages; simulation output must be a " +
		"pure function of the run Config",
	Run: runDeterminism,
}

// forbiddenCalls maps package path → function name → the reason the
// call is nondeterministic. Matching is by the type-checker's resolution
// of every identifier use, so plain pkg.Fn calls, dot-imported bare
// calls, and function-value references (now := time.Now) are all caught.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the environment",
		"LookupEnv": "reads the environment",
		"Environ":   "reads the environment",
	},
	"runtime": {
		"NumCPU":     "depends on the host CPU count",
		"GOMAXPROCS": "depends on the host CPU count",
	},
}

// globalRandAllowed lists the math/rand (and math/rand/v2) functions
// that do NOT touch the shared global source: constructors that take an
// explicit, caller-owned seed or source. Everything else at package
// level draws from the process-global RNG and is forbidden in the core.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) {
	if !IsDeterministicCore(pass.Path) {
		return
	}
	// Every identifier use the type-checker resolved to a package-level
	// function is checked, not just pkg.Fn selector calls: that catches
	// dot-imported bare calls (import . "time"; Now()) and forbidden
	// functions captured as values (now := time.Now; now()) at the point
	// the function is named, where a call-only walk would miss them.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			pkgPath, fn := usedPackageFunc(pass.Info, id)
			if pkgPath == "" {
				return true
			}
			if reason, ok := forbiddenCalls[pkgPath][fn]; ok {
				pass.Reportf(id.Pos(),
					"%s.%s %s; deterministic-core packages must derive everything from the run Config (move the call behind an injected clock/knob or to an allowlisted package)",
					pkgPath, fn, reason)
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandAllowed[fn] {
				pass.Reportf(id.Pos(),
					"%s.%s draws from the process-global RNG; deterministic-core packages must use a rand.Rand seeded from the run Config (rand.New(rand.NewSource(seed)))",
					pkgPath, fn)
			}
			return true
		})
	}
}

// usedPackageFunc resolves an identifier use to the package-level
// function it names, whether reached through a selector (time.Now),
// a dot-import (Now), or a value reference (now := time.Now). Methods
// are excluded: rng.Float64() on a caller-owned *rand.Rand is exactly
// the deterministic pattern the analyzer steers code toward, even
// though the method shares its name with the forbidden global.
func usedPackageFunc(info *types.Info, id *ast.Ident) (pkgPath, fn string) {
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// pkgQualifiedCall resolves a call to its package import path and
// function name, following the type-checker's resolution so import
// aliases and dot-imports cannot hide a forbidden call. Method calls,
// field accesses, and calls of local function values return "".
func pkgQualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, fn string) {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		id, ok := f.X.(*ast.Ident)
		if !ok {
			return "", ""
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return "", ""
		}
		return pn.Imported().Path(), f.Sel.Name
	case *ast.Ident:
		// Dot-imported: the bare identifier resolves straight to the
		// imported package's function.
		return usedPackageFunc(info, f)
	}
	return "", ""
}
