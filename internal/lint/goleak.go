package lint

// goleak requires every goroutine launched in non-test code (the loader
// only feeds ghlint non-test files) to have a *provable termination
// channel*. A `go` statement passes if any of the following holds:
//
//  1. the launching function pairs it with a sync.WaitGroup — an .Add
//     call appears in the same function body, the repo's worker-pool
//     idiom (runner.Map, telemetry.Collect, faultnet.serve);
//  2. the call carries a context.Context argument — cancellation is the
//     callee's contract;
//  3. the callee's body is visible (a function literal, or a function or
//     method declared in the same package) and contains a channel
//     receive, a select statement, a WaitGroup Done/Wait call, or no
//     loops at all (a straight-line goroutine runs off the end).
//
// Anything else — the classic fire-and-forget `go func() { for { ... }
// }()` — is flagged: a goroutine nobody can stop outlives Close/Stop,
// keeps connections and timers alive, and turns clean shutdown into a
// race. The "no loops" rule is deliberately generous (a loop-free body
// can still block forever on a channel send), but every false negative
// it admits is a goroutine that terminates in the common case; the
// analyzer's job is catching the unbounded ones.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoleakAnalyzer is the goroutine-lifecycle analyzer.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: "every `go` statement needs a provable termination channel: a " +
		"WaitGroup pairing in the launching function, a context.Context " +
		"argument, or a visible callee body that receives, selects, or " +
		"does not loop",
	Run: runGoleak,
}

func runGoleak(pass *Pass) {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		eachFuncBody(file, func(body *ast.BlockStmt) {
			launcherHasAdd := bodyHasWaitGroupAdd(pass.Info, body)
			for _, g := range directGoStmts(body) {
				if launcherHasAdd || goStmtTerminates(pass, g, decls) {
					continue
				}
				pass.Reportf(g.Pos(), "goroutine has no provable termination channel: pair it with a WaitGroup, pass a context.Context, or select on a done/stop channel")
			}
		})
	}
}

// packageFuncDecls maps declared function/method objects to their
// bodies, so `go d.loop()` can be judged by what loop actually does.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// eachFuncBody visits every function body in the file: declarations and
// literals (including literals bound to package-level vars).
func eachFuncBody(file *ast.File, visit func(*ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// directGoStmts returns the go statements belonging to this body and
// not to a nested function literal (the literal is its own launcher).
func directGoStmts(body *ast.BlockStmt) []*ast.GoStmt {
	var out []*ast.GoStmt
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				out = append(out, n)
			}
			return true
		})
	}
	return out
}

// syncWaitGroupMethod reports whether call is wg.<name> for a
// sync.WaitGroup receiver, resolved through the type checker.
func syncWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named, ok := derefType(recv.Type()).(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// bodyHasWaitGroupAdd scans a launcher body (nested literals included:
// runner-style pools wrap the Add/spawn pairing in helpers) for a
// WaitGroup Add call.
func bodyHasWaitGroupAdd(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && syncWaitGroupMethod(info, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// goStmtTerminates applies rules 2 and 3 to one go statement.
func goStmtTerminates(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) bool {
	for _, arg := range g.Call.Args {
		if t := baseType(pass.Info, arg); t != nil && isContextType(t) {
			return true
		}
	}
	body := calleeBody(pass, g.Call, decls)
	if body == nil {
		return false // invisible callee: cannot prove anything
	}
	return bodyTerminates(pass.Info, body)
}

// calleeBody resolves the launched call to a body we can inspect.
func calleeBody(pass *Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := decls[pass.Info.Uses[fun]]; ok {
			return fn.Body
		}
	case *ast.SelectorExpr:
		if fn, ok := decls[pass.Info.Uses[fun.Sel]]; ok {
			return fn.Body
		}
	}
	return nil
}

// bodyTerminates looks for a termination signal inside a goroutine
// body: a channel receive (including ranging over a channel), a select,
// a WaitGroup Done/Wait, a context argument threaded into the body —
// or the absence of any loop.
func bodyTerminates(info *types.Info, body *ast.BlockStmt) bool {
	loops := false
	signal := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = true
		case *ast.RangeStmt:
			loops = true
			if t := baseType(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					signal = true // ranging a channel ends when it closes
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				signal = true
			}
		case *ast.SelectStmt:
			signal = true
		case *ast.CallExpr:
			if syncWaitGroupMethod(info, n, "Done") || syncWaitGroupMethod(info, n, "Wait") {
				signal = true
			}
		}
		return true
	})
	return signal || !loops
}
