package lint

import (
	"sort"
	"strings"
)

// DettaintAnalyzer escalates the determinism analyzer through the call
// graph. The direct analyzer flags a wall-clock / global-RNG /
// environment / CPU-count read written inside a deterministic-core
// package — but a one-function indirection launders the taint: a core
// function calling a helper in an unclassified package (cmd/, a nested
// internal subdirectory, the module root) that itself calls time.Now
// passes the direct check in both places, because the helper's package
// is not gated and the core caller never names time.Now. This analyzer
// closes that hole: it computes transitive sink reachability over the
// program's call graph and flags every call from a core function to an
// in-program callee outside the core whose transitive closure reaches a
// sink, with the full call chain in the diagnostic.
//
// Reporting discipline (kept minimal so one bad helper does not flag
// every ancestor):
//
//   - Sinks written directly in a core function are the direct
//     analyzer's findings; dettaint never re-reports them.
//   - A call from core to core is never a frontier: by induction the
//     callee's own pass reports its problem (directly or at its own
//     frontier), so flagging the caller too would only duplicate.
//   - A call from core to a non-core in-program function whose closure
//     reaches a sink IS the frontier: that is the laundering point,
//     and the finding names the chain from caller to sink.
//
// Interface calls resolve by CHA, with one deliberate exception:
// implementations living in wallClockAllowed packages do not propagate
// taint through interface dispatch. Injecting a live, wall-clock-facing
// implementation (livenode.Node as a Prober) through an interface is
// the sanctioned determinism boundary — the config chooses it
// deliberately. A hard static call from core into a wallClockAllowed
// function enjoys no such exemption: the dependency is then wired at
// build time, which is exactly the laundering this analyzer exists to
// catch. Unknown edges (foreign interfaces, unresolvable function
// values) are treated as clean — a documented blind spot shared with
// every static call-graph tool; the direct analyzer still guards the
// bodies of everything loaded.
var DettaintAnalyzer = &Analyzer{
	Name: "dettaint",
	Doc: "flag deterministic-core calls into helpers that transitively " +
		"reach wall-clock/global-RNG/environment/CPU-count sinks, naming " +
		"the full call chain; closes the one-function-indirection hole in " +
		"the determinism analyzer",
	Run: runDettaint,
}

func runDettaint(pass *Pass) {
	if !IsDeterministicCore(pass.Path) {
		return
	}
	prog := pass.Prog
	pkg := prog.packageByPath(pass.Path)
	if pkg == nil {
		return
	}
	taint := computeTaint(prog)
	for _, node := range prog.PackageNodes(pkg) {
		for _, e := range node.Calls {
			callee := frontierCallee(prog, e, taint)
			if callee == nil {
				continue
			}
			chain, sink := taintChain(prog, callee, taint)
			if sink == nil {
				continue
			}
			full := append([]string{node.Display}, chain...)
			pass.Reportf(e.Pos,
				"%s calls %s, which transitively reaches %s.%s (%s) outside the deterministic core: %s → %s.%s; inject the dependency through an interface or move the helper into a core package",
				node.Display, callee.Display, sink.PkgPath, sink.Name, sink.Reason,
				strings.Join(full, " → "), sink.PkgPath, sink.Name)
		}
	}
}

// computeTaint runs the sink-reachability fixpoint over the program:
// a node is tainted when its body names a sink or when any of its
// resolvable callees is tainted. Iteration order is sorted, so the
// result is deterministic (and order-independent anyway: the fixpoint
// is monotone).
func computeTaint(prog *Program) map[string]bool {
	keys := make([]string, 0, len(prog.Funcs))
	taint := make(map[string]bool)
	for key, n := range prog.Funcs {
		keys = append(keys, key)
		if len(n.Sinks) > 0 {
			taint[key] = true
		}
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			if taint[key] {
				continue
			}
			n := prog.Funcs[key]
			for _, e := range n.Calls {
				for _, ck := range taintCallees(prog, e) {
					if taint[ck] {
						taint[key] = true
						changed = true
						break
					}
				}
				if taint[key] {
					break
				}
			}
		}
	}
	return taint
}

// taintCallees lists the in-program callees an edge propagates taint
// from. Interface fan-out skips implementations in wallClockAllowed
// packages: interface injection is the sanctioned determinism boundary.
func taintCallees(prog *Program, e CallEdge) []string {
	switch e.Kind {
	case EdgeStatic:
		if _, ok := prog.Funcs[e.Callee]; ok {
			return []string{e.Callee}
		}
	case EdgeIface:
		var out []string
		for _, k := range e.Callees {
			n := prog.Funcs[k]
			if n == nil || wallClockAllowed[pkgKey(n.Pkg.Path)] {
				continue
			}
			out = append(out, k)
		}
		return out
	}
	return nil
}

// frontierCallee resolves an edge to the first tainted in-program
// callee outside the deterministic core — the laundering point this
// analyzer reports — or nil.
func frontierCallee(prog *Program, e CallEdge, taint map[string]bool) *FuncNode {
	for _, k := range taintCallees(prog, e) {
		n := prog.Funcs[k]
		if n == nil || IsDeterministicCore(n.Pkg.Path) {
			continue
		}
		if taint[k] {
			return n
		}
	}
	return nil
}

// taintChain reconstructs a shortest call chain from start to a direct
// sink, following the same edges taint propagated over. BFS order is
// deterministic: edges in source order, interface fan-outs sorted.
func taintChain(prog *Program, start *FuncNode, taint map[string]bool) ([]string, *SinkUse) {
	type item struct {
		node *FuncNode
		path []string
	}
	seen := map[string]bool{start.Key: true}
	queue := []item{{start, []string{start.Display}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if len(it.node.Sinks) > 0 {
			return it.path, &it.node.Sinks[0]
		}
		for _, e := range it.node.Calls {
			for _, ck := range taintCallees(prog, e) {
				if seen[ck] || !taint[ck] {
					continue
				}
				seen[ck] = true
				next := prog.Funcs[ck]
				path := append(append([]string{}, it.path...), next.Display)
				queue = append(queue, item{next, path})
			}
		}
	}
	return nil, nil
}
