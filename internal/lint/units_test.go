package lint_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"greenhetero/internal/lint"
)

// TestUnitsAnnotationsCoverCore closes the loop between the naming
// convention and the dimension-flow engine: every exported W/Wh-suffixed
// struct field in the dimensioned core's central packages (battery,
// power, cluster) must resolve to its suffix's dimension in the engine's
// field table — by suffix, annotation, or inference. A field the engine
// cannot resolve is a hole in the dimension discipline: stores through
// it would launder units invisibly, and neither a mix nor a mismatch
// downstream of it could ever be reported.
func TestUnitsAnnotationsCoverCore(t *testing.T) {
	root := filepath.Join("..", "..")
	pkgs, err := lint.Load(root, "./internal/battery", "./internal/power", "./internal/cluster")
	if err != nil {
		t.Fatal(err)
	}
	dims := lint.UnitsFieldDims(lint.BuildProgram(pkgs))

	checked := 0
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !tn.Exported() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				want := suffixDim(f.Name())
				if !f.Exported() || want == "" {
					continue
				}
				checked++
				key := pkg.Path + ".(" + name + ")." + f.Name()
				got, ok := dims[key]
				if !ok {
					t.Errorf("%s: exported unit-suffixed field did not resolve to any dimension in the units engine", key)
					continue
				}
				if got != want {
					t.Errorf("%s: resolves to %q, the suffix promises %q", key, got, want)
				}
			}
		}
	}
	// The battery/power/cluster structs carry well over a dozen
	// suffixed fields; a collapse here means the loader or the engine
	// silently stopped seeing them.
	if checked < 15 {
		t.Fatalf("only %d suffixed exported fields checked; the sweep lost its subject", checked)
	}
}

// suffixDim mirrors the engine's W/Wh suffix classification for the
// coverage walk (fractions and hours are covered by fixtures; the
// W-vs-Wh confusion is the one that corrupts EPU numbers).
func suffixDim(name string) string {
	switch {
	case boundarySuffix(name, "Wh"):
		return "Wh"
	case boundarySuffix(name, "W"), boundarySuffix(name, "Watts"):
		return "W"
	}
	return ""
}

// boundarySuffix requires a camel-case boundary before the suffix, like
// the engine's own classifier.
func boundarySuffix(name, suffix string) bool {
	if len(name) <= len(suffix) || name[len(name)-len(suffix):] != suffix {
		return false
	}
	prev := name[len(name)-len(suffix)-1]
	return prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9'
}
