package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	// Path is the import path ("greenhetero/internal/sim").
	Path string
	// Name is the package name.
	Name string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression facts.
	Info *types.Info
	// TypeErrors collects type-checking problems the loader tolerated.
	// Analysis still runs with partial type information, but drivers
	// should surface these: a finding may be missing behind them.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
}

// Load enumerates the packages matching patterns (as the go tool would,
// so "./..." works and testdata/ is skipped), parses their non-test
// files, and type-checks them against source. dir is the directory to
// resolve patterns from — typically "." — and may be anywhere inside a
// module: the loader asks `go list -m` for the module root and pins the
// process working directory there for the duration of the load, because
// the source importer resolves module-local imports through a build
// context rooted at the cwd. (Earlier versions required dir to *be* the
// cwd and errored otherwise; that made `go test ./internal/lint/...`
// from the repo root awkward for no good reason.)
//
// The chdir is process-wide state: Load is not safe for concurrent use
// with other Loads or with code that depends on the working directory.
// The cwd is restored before Load returns.
//
// Type checking uses the standard library's source importer, so the
// loader needs no pre-built export data and no dependencies outside the
// Go toolchain — it works in a bare container and in CI alike.
func Load(dir string, patterns ...string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving dir %q: %v", dir, err)
	}
	root, err := moduleRoot(abs)
	if err != nil {
		return nil, err
	}
	restore, err := pinWorkingDir(root)
	if err != nil {
		return nil, err
	}
	defer restore()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns still resolve from the caller's dir — `go list` gets its
	// own Dir — so Load(".", "./...") in a subtree lints that subtree.
	listed, err := goList(abs, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFiles parses and type-checks the given files as a single package
// with the given import path. It is the entry point the fixture test
// harness uses: fixtures live under testdata/ (invisible to the go
// tool) but still import real packages, which resolve through the
// source importer.
func LoadFiles(importPath string, files ...string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return checkFiles(fset, imp, importPath, files)
}

// moduleRoot resolves the root directory of the module containing dir
// via `go list -m -f {{.Dir}}`.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: resolving module root of %q: %v\n%s", dir, err, stderr.String())
	}
	root := string(bytes.TrimSpace(stdout.Bytes()))
	if root == "" {
		return "", fmt.Errorf("lint: %q is not inside a module (go list -m returned no directory)", dir)
	}
	return root, nil
}

// pinWorkingDir switches the process to root for the load (the source
// importer's build context follows the cwd) and returns the restore
// function. Already being there — directly or through symlinks — is a
// no-op.
func pinWorkingDir(root string) (func(), error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, fmt.Errorf("lint: getwd: %v", err)
	}
	same := wd == root
	if !same {
		rr, errR := filepath.EvalSymlinks(root)
		rw, errW := filepath.EvalSymlinks(wd)
		same = errR == nil && errW == nil && rr == rw
	}
	if same {
		return func() {}, nil
	}
	if err := os.Chdir(root); err != nil {
		return nil, fmt.Errorf("lint: entering module root %q: %v", root, err)
	}
	return func() { _ = os.Chdir(wd) }, nil
}

// goList shells out to `go list -json` and decodes the stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Check records errors through conf.Error and still returns as much
	// of the package as it could type; analysis degrades gracefully.
	tpkg, _ := conf.Check(importPath, fset, asts, info)

	name := ""
	if len(asts) > 0 {
		name = asts[0].Name.Name
	}
	return &Package{
		Path:       importPath,
		Name:       name,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}
