package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloateqAnalyzer rejects == and != between two non-constant
// floating-point expressions. Exact float identity is almost never the
// intended predicate in this codebase: paired-policy comparisons,
// golden-table assertions, and battery/power accounting all accumulate
// rounding, so `a == b` between two computed floats encodes an
// assumption the hardware does not honor. Comparisons against a
// constant (x == 0, the IEEE-clean sentinel checks) are allowed, as are
// comparisons inside the approved epsilon-helper functions where exact
// identity is the point.
var FloateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between non-constant floating-point expressions " +
		"outside approved epsilon/equality helpers; computed floats " +
		"compare by tolerance, not identity",
	Run: runFloateq,
}

func runFloateq(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				// Approved epsilon helpers may compare exactly; closures
				// inside them inherit the approval.
				if approvedFloatEqHelpers[fd.Name.Name] {
					continue
				}
				if fd.Body != nil {
					inspectFloatEq(pass, fd.Body)
				}
				continue
			}
			// Package-level declarations carry comparisons too: var
			// initializers, including closures bound to vars (var cmp =
			// func(a, b float64) bool { return a == b }). The approved-
			// helper exemption is for named FuncDecls only.
			inspectFloatEq(pass, decl)
		}
	}
}

// inspectFloatEq walks a declaration or function body reporting float
// identity comparisons.
func inspectFloatEq(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		tx, okx := pass.Info.Types[be.X]
		ty, oky := pass.Info.Types[be.Y]
		if !okx || !oky {
			return true
		}
		// A constant on either side is an intentional sentinel
		// (x == 0, r == math.Inf(1) is not constant but math.MaxFloat64
		// is); only flag identity between two computed values.
		if tx.Value != nil || ty.Value != nil {
			return true
		}
		if !isFloat(tx.Type) || !isFloat(ty.Type) {
			return true
		}
		pass.Reportf(be.OpPos,
			"%q between two non-constant floating-point expressions; compare with an epsilon (math.Abs(a-b) <= tol) or move the comparison into an approved equality helper",
			be.Op.String())
		return true
	})
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
