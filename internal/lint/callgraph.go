package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Interprocedural layer: a static call graph over every loaded package,
// shared by the allocfree and dettaint analyzers.
//
// The graph is deliberately modest — it is a lint foundation, not a
// whole-program optimizer — but each approximation is chosen so the
// analyzers built on it stay sound for their contract:
//
//   - Functions are keyed by symbol string ("pkg.Fn", "pkg.(T).M",
//     "pkg.Fn$1" for the first function literal inside Fn), never by
//     types.Object identity. Every package is type-checked in its own
//     universe, so the *types.Func a caller resolves for an imported
//     function is a different object from the one the callee's own
//     check produced; the symbol string is the identity that survives
//     the universe boundary.
//   - Direct calls, method calls on concrete receivers, and method
//     values resolve to static edges.
//   - Function values are tracked one step: a local variable assigned
//     exactly once from a function literal, a function reference, or a
//     method value resolves calls through that variable to the target.
//     Deeper dataflow (values through fields, slices, channels) is not
//     chased; such calls become unknown edges.
//   - Calls through interfaces defined in the analyzed program resolve
//     by class-hierarchy analysis to every in-program type whose method
//     set covers the interface's method names (name-based matching —
//     structural types.Implements cannot compare named types across
//     type-checker universes). Calls through foreign interfaces
//     (io.Writer, error) are unknown edges.
//   - Everything else — calls of computed expressions, foreign
//     interface dispatch — is a conservative unknown edge that the
//     analyzers treat per their own contract (allocfree: a finding;
//     dettaint: documented blind spot).
type Program struct {
	// Pkgs are the loaded packages the graph spans, in load order.
	Pkgs []*Package
	// Funcs maps symbol key → node for every function declaration and
	// function literal in Pkgs.
	Funcs map[string]*FuncNode

	// contractFields marks func-typed struct fields annotated
	// `// ghlint:allocfree` ("pkg.(Type).Field"): calls through them
	// are trusted, and every binding to them is a verification
	// obligation (see allocfree.go).
	contractFields map[string]token.Pos
	// contractIfaceMethods marks interface methods annotated
	// `// ghlint:allocfree` ("pkg.(Iface).Method"): calls through them
	// are trusted and every in-program implementation must itself be
	// annotated.
	contractIfaceMethods map[string]token.Pos

	// methodsByName maps a method name to every in-program concrete
	// method node with that name, for CHA fan-out.
	methodsByName map[string][]*FuncNode
	// methodNames maps a concrete type key ("pkg.T") to its full method
	// set's names (promoted methods included), for name-based
	// interface satisfaction.
	methodNames map[string]map[string]bool
	// ifaceMethods maps an in-program interface key ("pkg.(Iface)") to
	// its full method-name list (embedded interfaces flattened).
	ifaceMethods map[string][]string

	// units caches the dimension-flow engine (units.go) so every
	// package's units pass shares one program-wide fixpoint.
	units *unitsEngine
}

// FuncNode is one function declaration or function literal.
type FuncNode struct {
	// Key is the node's symbol key (see funcKey / litKey).
	Key string
	// Display is the human form used in diagnostics: the key with the
	// module prefix compressed ("fit.(*Accumulator).Fit").
	Display string
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Parent is the enclosing function node for literals.
	Parent *FuncNode
	// Allocfree records a `// ghlint:allocfree` annotation on the
	// declaration's doc comment.
	Allocfree bool
	// Calls are the node's outgoing edges, in source order.
	Calls []CallEdge
	// Sinks are direct nondeterminism sources named in the body
	// (time.Now, math/rand globals, ...), in source order.
	Sinks []SinkUse
}

// EdgeKind classifies a call edge.
type EdgeKind int

const (
	// EdgeStatic is a resolved call to one known function.
	EdgeStatic EdgeKind = iota
	// EdgeIface is an interface method call resolved by CHA to every
	// in-program implementation.
	EdgeIface
	// EdgeContract is a call through an allocfree-annotated func-typed
	// struct field.
	EdgeContract
	// EdgeUnknown is a dynamic call the graph cannot resolve.
	EdgeUnknown
)

// CallEdge is one call site in a function body.
type CallEdge struct {
	// Pos locates the call in the caller's package FileSet.
	Pos token.Pos
	// Kind classifies the edge.
	Kind EdgeKind
	// Callee is the resolved symbol key for EdgeStatic (the callee may
	// be outside the program: no Funcs entry) and the field key for
	// EdgeContract.
	Callee string
	// Callees is the CHA fan-out for EdgeIface: the method keys of
	// every in-program implementation, sorted.
	Callees []string
	// CalleePkg and CalleeName describe the callee for messages and
	// for out-of-program callees (pkg path + bare name). For
	// EdgeUnknown, CalleeName holds a best-effort description of the
	// call expression.
	CalleePkg, CalleeName string
	// RecvType is the callee's receiver type name, "" for functions.
	RecvType string
	// IfaceAnnotated marks an EdgeIface whose interface method carries
	// the allocfree contract annotation.
	IfaceAnnotated bool
}

// SinkUse is one direct nondeterminism source named in a body.
type SinkUse struct {
	Pos token.Pos
	// PkgPath and Name identify the source ("time", "Now").
	PkgPath, Name string
	// Reason says why it is nondeterministic.
	Reason string
}

// allocfreeMarker is the annotation that puts a function, a func-typed
// struct field, or an interface method under the allocfree contract.
const allocfreeMarker = "ghlint:allocfree"

// hasAllocfreeMarker reports whether any comment in the group is the
// allocfree annotation.
func hasAllocfreeMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := directiveArg(c, allocfreeMarker); ok {
			return true
		}
	}
	return false
}

// funcKey builds the symbol key for a (possibly imported) function
// object: "pkg.Fn" for package-level functions, "pkg.(T).M" for
// methods, pointer receivers normalized away. Reports false for
// builtins and objects without a package.
func funcKey(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		name, ok := recvTypeName(recv.Type())
		if !ok {
			// Interface-method objects are handled by the CHA path; a
			// caller asking for their concrete key gets nothing.
			return "", false
		}
		return pkg.Path() + ".(" + name + ")." + fn.Name(), true
	}
	return pkg.Path() + "." + fn.Name(), true
}

// recvTypeName extracts the named receiver type behind an optional
// pointer. Reports false for interface receivers and anonymous types.
func recvTypeName(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || types.IsInterface(n) {
		return "", false
	}
	return n.Obj().Name(), true
}

// displayKey compresses a symbol key for diagnostics:
// "greenhetero/internal/fit.(Accumulator).Fit" → "fit.(Accumulator).Fit".
func displayKey(key string) string {
	if rest, ok := strings.CutPrefix(key, modulePath+"/internal/"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(key, modulePath+"/"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(key, modulePath+"."); ok {
		return rest
	}
	return key
}

// BuildProgram constructs the interprocedural view over pkgs. The
// result is deterministic: node ordering, edge ordering, and CHA
// fan-outs depend only on the packages' source.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:                 pkgs,
		Funcs:                make(map[string]*FuncNode),
		contractFields:       make(map[string]token.Pos),
		contractIfaceMethods: make(map[string]token.Pos),
		methodsByName:        make(map[string][]*FuncNode),
		methodNames:          make(map[string]map[string]bool),
		ifaceMethods:         make(map[string][]string),
	}

	// Phase A: declare every function node, collect annotations,
	// contract fields/interface methods, and concrete method sets.
	for _, pkg := range pkgs {
		prog.declarePackage(pkg)
	}
	// CHA fan-out lists must not depend on package load order beyond
	// the stable sort key.
	for name := range prog.methodsByName {
		nodes := prog.methodsByName[name]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key < nodes[j].Key })
	}

	// Phase B: resolve call edges and sinks, which may reference nodes
	// from any package.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if node := prog.nodeForDecl(pkg, fd); node != nil {
					prog.buildBody(node)
				}
			}
		}
	}
	return prog
}

// declarePackage registers pkg's function declarations, its annotated
// contract fields and interface methods, and its concrete types'
// method-name sets.
func (p *Program) declarePackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				key, ok := declKey(pkg, d)
				if !ok {
					continue
				}
				node := &FuncNode{
					Key:       key,
					Display:   displayKey(key),
					Pkg:       pkg,
					Decl:      d,
					Allocfree: hasAllocfreeMarker(d.Doc),
				}
				p.Funcs[key] = node
				if d.Recv != nil {
					p.methodsByName[d.Name.Name] = append(p.methodsByName[d.Name.Name], node)
				}
			case *ast.GenDecl:
				p.declareTypes(pkg, d)
			}
		}
	}
}

// declareTypes collects contract annotations from struct fields and
// interface methods, and concrete types' method sets for CHA.
func (p *Program) declareTypes(pkg *Package, gd *ast.GenDecl) {
	if gd.Tok != token.TYPE {
		return
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		typeKey := pkg.Path + "." + ts.Name.Name
		switch t := ts.Type.(type) {
		case *ast.StructType:
			for _, field := range t.Fields.List {
				if _, isFunc := field.Type.(*ast.FuncType); !isFunc {
					continue
				}
				if !hasAllocfreeMarker(field.Doc) && !hasAllocfreeMarker(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					p.contractFields[pkg.Path+".("+ts.Name.Name+")."+name.Name] = name.Pos()
				}
			}
		case *ast.InterfaceType:
			for _, m := range t.Methods.List {
				if !hasAllocfreeMarker(m.Doc) && !hasAllocfreeMarker(m.Comment) {
					continue
				}
				for _, name := range m.Names {
					p.contractIfaceMethods[pkg.Path+".("+ts.Name.Name+")."+name.Name] = name.Pos()
				}
			}
		}
		// Record the full method set (promoted methods included) of
		// every named non-interface type, in the type's own universe
		// where identity is coherent — and each interface's required
		// method names, for name-based satisfaction checks.
		if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
			if named, ok := obj.Type().(*types.Named); ok {
				if it, isIface := named.Underlying().(*types.Interface); isIface {
					names := make([]string, 0, it.NumMethods())
					for i := 0; i < it.NumMethods(); i++ {
						names = append(names, it.Method(i).Name())
					}
					sort.Strings(names)
					p.ifaceMethods[pkg.Path+".("+ts.Name.Name+")"] = names
				} else {
					names := make(map[string]bool)
					ms := types.NewMethodSet(types.NewPointer(named))
					for i := 0; i < ms.Len(); i++ {
						names[ms.At(i).Obj().Name()] = true
					}
					p.methodNames[typeKey] = names
				}
			}
		}
	}
}

// declKey builds the symbol key of a declaration from the package's
// own Defs.
func declKey(pkg *Package, fd *ast.FuncDecl) (string, bool) {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", false
	}
	return funcKey(obj)
}

// nodeForDecl resolves the node registered for fd in phase A.
func (p *Program) nodeForDecl(pkg *Package, fd *ast.FuncDecl) *FuncNode {
	key, ok := declKey(pkg, fd)
	if !ok {
		return nil
	}
	return p.Funcs[key]
}

// bodyBuilder walks one declaration's body, creating literal child
// nodes and attributing edges and sinks to the innermost enclosing
// function.
type bodyBuilder struct {
	prog *Program
	pkg  *Package
	// funcVals maps a local variable object to the symbol key of the
	// single function value it is bound to (one-step tracking); only
	// variables with exactly one binding in the declaration qualify.
	funcVals map[types.Object]string
	// litKeys maps each literal to its node key.
	litKeys map[*ast.FuncLit]string
	// litCount numbers literals per enclosing declaration.
	litCount int
}

// buildBody populates node (a declaration node) and its literal
// descendants.
func (p *Program) buildBody(node *FuncNode) {
	b := &bodyBuilder{
		prog:     p,
		pkg:      node.Pkg,
		funcVals: make(map[types.Object]string),
		litKeys:  make(map[*ast.FuncLit]string),
	}
	// Pre-pass: number every literal (so keys are stable in source
	// order) and track single-assignment function-valued locals.
	b.scanLiterals(node, node.Decl.Body)
	b.scanFuncValues(node.Decl.Body)
	b.walk(node, node.Decl.Body)
}

// scanLiterals creates a child node for every function literal in the
// subtree, keyed parentKey+"$"+ordinal in source order.
func (b *bodyBuilder) scanLiterals(declNode *FuncNode, body ast.Node) {
	var enclosing []*FuncNode
	enclosing = append(enclosing, declNode)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		b.litCount++
		key := fmt.Sprintf("%s$%d", declNode.Key, b.litCount)
		child := &FuncNode{
			Key:     key,
			Display: displayKey(key),
			Pkg:     declNode.Pkg,
			Lit:     lit,
			Parent:  enclosing[len(enclosing)-1],
		}
		b.prog.Funcs[key] = child
		b.litKeys[lit] = key
		enclosing = append(enclosing, child)
		ast.Inspect(lit.Body, visit)
		enclosing = enclosing[:len(enclosing)-1]
		return false
	}
	ast.Inspect(body, visit)
}

// scanFuncValues records locals bound exactly once to a resolvable
// function value anywhere in the declaration. A second binding (or an
// unresolvable one) disqualifies the variable.
func (b *bodyBuilder) scanFuncValues(body ast.Node) {
	bound := make(map[types.Object]int)
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := b.pkg.Info.Defs[id]
		if obj == nil {
			obj = b.pkg.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		bound[v]++
		if key, ok := b.resolveFuncValue(rhs); ok && bound[v] == 1 {
			b.funcVals[v] = key
		} else {
			delete(b.funcVals, v)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) != len(st.Values) {
				return true
			}
			for i, id := range st.Names {
				record(id, st.Values[i])
			}
		}
		return true
	})
}

// resolveFuncValue resolves an expression used as a function value to
// a symbol key: a literal, a package-level function reference, or a
// method value on a concrete receiver.
func (b *bodyBuilder) resolveFuncValue(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.FuncLit:
		key, ok := b.litKeys[v]
		return key, ok
	case *ast.Ident:
		if fn, ok := b.pkg.Info.Uses[v].(*types.Func); ok {
			return funcKey(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.Info.Selections[v]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return funcKey(fn)
			}
		}
		if fn, ok := b.pkg.Info.Uses[v.Sel].(*types.Func); ok {
			return funcKey(fn)
		}
	}
	return "", false
}

// walk attributes edges and sinks in body to cur, descending into
// literals with their own nodes.
func (b *bodyBuilder) walk(cur *FuncNode, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if key, ok := b.litKeys[e]; ok {
				b.walk(b.prog.Funcs[key], e.Body)
			}
			return false
		case *ast.CallExpr:
			b.addCallEdge(cur, e)
			return true
		case *ast.Ident:
			b.addSink(cur, e)
			return true
		}
		return true
	})
}

// addSink records direct nondeterminism sources, reusing the
// determinism analyzer's tables so both report the same facts.
func (b *bodyBuilder) addSink(cur *FuncNode, id *ast.Ident) {
	pkgPath, fn := usedPackageFunc(b.pkg.Info, id)
	if pkgPath == "" {
		return
	}
	if reason, ok := forbiddenCalls[pkgPath][fn]; ok {
		cur.Sinks = append(cur.Sinks, SinkUse{Pos: id.Pos(), PkgPath: pkgPath, Name: fn, Reason: reason})
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandAllowed[fn] {
		cur.Sinks = append(cur.Sinks, SinkUse{Pos: id.Pos(), PkgPath: pkgPath, Name: fn, Reason: "draws from the process-global RNG"})
	}
}

// addCallEdge resolves one call expression to an edge on cur.
// Conversions and builtins produce no edge: the allocfree analyzer
// inspects them in its own walk.
func (b *bodyBuilder) addCallEdge(cur *FuncNode, call *ast.CallExpr) {
	info := b.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		if key, ok := b.litKeys[f]; ok {
			cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeStatic, Callee: key, CalleePkg: b.pkg.Path, CalleeName: displayKey(key)})
		}
		return
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			if key, ok := funcKey(obj); ok {
				cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeStatic, Callee: key, CalleePkg: obj.Pkg().Path(), CalleeName: obj.Name()})
				return
			}
		case *types.Var:
			if key, ok := b.funcVals[obj]; ok {
				cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeStatic, Callee: key, CalleePkg: b.pkg.Path, CalleeName: f.Name})
				return
			}
		case nil:
			return
		}
		cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: f.Name})
		return
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			b.addSelectionEdge(cur, call, f, sel)
			return
		}
		// No selection: a package-qualified reference (pkg.Fn).
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			if key, ok := funcKey(fn); ok {
				edge := CallEdge{Pos: call.Lparen, Kind: EdgeStatic, Callee: key, CalleePkg: fn.Pkg().Path(), CalleeName: fn.Name()}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					edge.RecvType, _ = recvTypeName(sig.Recv().Type())
				}
				cur.Calls = append(cur.Calls, edge)
				return
			}
		}
		// Package-level func-typed var (binary.LittleEndian is a var,
		// but its methods go through Selections; this handles e.g.
		// pkgvar() calls).
		cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: exprString(f)})
		return
	}
	cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: exprString(fun)})
}

// addSelectionEdge resolves x.Sel(...) through the type-checker's
// selection: concrete methods become static edges, interface methods
// CHA edges, func-typed fields contract or unknown edges.
func (b *bodyBuilder) addSelectionEdge(cur *FuncNode, call *ast.CallExpr, sel *ast.SelectorExpr, s *types.Selection) {
	switch s.Kind() {
	case types.MethodVal, types.MethodExpr:
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			break
		}
		recv := s.Recv()
		if s.Kind() == types.MethodExpr {
			// T.M / I.M used as a value then called: receiver is the
			// expression type's first parameter; resolve like a call on
			// that type.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = sig.Recv().Type()
			}
		}
		if rt := derefType(recv); types.IsInterface(rt) {
			b.addIfaceEdge(cur, call, rt, fn)
			return
		}
		if key, ok := funcKey(fn); ok {
			name, _ := recvTypeName(recv)
			cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeStatic, Callee: key, CalleePkg: fn.Pkg().Path(), CalleeName: fn.Name(), RecvType: name})
			return
		}
	case types.FieldVal:
		v, ok := s.Obj().(*types.Var)
		if !ok {
			break
		}
		if recvName, ok := recvTypeName(s.Recv()); ok && v.Pkg() != nil {
			fieldKey := v.Pkg().Path() + ".(" + recvName + ")." + v.Name()
			if _, annotated := b.prog.contractFields[fieldKey]; annotated {
				cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeContract, Callee: fieldKey, CalleePkg: v.Pkg().Path(), CalleeName: v.Name(), RecvType: recvName})
				return
			}
		}
	}
	cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: exprString(sel)})
}

// addIfaceEdge resolves an interface method call by CHA over the
// program's concrete types. Only interfaces defined in the program
// fan out; a foreign interface (io.Writer) is an unknown edge — the
// program cannot enumerate its implementations meaningfully.
func (b *bodyBuilder) addIfaceEdge(cur *FuncNode, call *ast.CallExpr, iface types.Type, method *types.Func) {
	named, ok := iface.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: exprString(call.Fun)})
		return
	}
	ifacePkg := named.Obj().Pkg().Path()
	if !b.prog.hasPackage(ifacePkg) {
		cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: exprString(call.Fun)})
		return
	}
	it, ok := named.Underlying().(*types.Interface)
	if !ok {
		cur.Calls = append(cur.Calls, CallEdge{Pos: call.Lparen, Kind: EdgeUnknown, CalleeName: exprString(call.Fun)})
		return
	}
	required := make([]string, 0, it.NumMethods())
	for i := 0; i < it.NumMethods(); i++ {
		required = append(required, it.Method(i).Name())
	}
	ifaceKey := ifacePkg + ".(" + named.Obj().Name() + ")." + method.Name()
	_, annotated := b.prog.contractIfaceMethods[ifaceKey]

	var callees []string
	for _, m := range b.prog.methodsByName[method.Name()] {
		typeKey := m.Pkg.Path + "." + m.recvName()
		if implementsByName(b.prog.methodNames[typeKey], required) {
			callees = append(callees, m.Key)
		}
	}
	sort.Strings(callees)
	cur.Calls = append(cur.Calls, CallEdge{
		Pos: call.Lparen, Kind: EdgeIface,
		Callee:    ifaceKey,
		Callees:   callees,
		CalleePkg: ifacePkg, CalleeName: method.Name(), RecvType: named.Obj().Name(),
		IfaceAnnotated: annotated,
	})
}

// recvName extracts a method node's receiver type name from its
// declaration.
func (n *FuncNode) recvName() string {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return ""
	}
	t := n.Decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters (T[P]).
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// implementsByName reports whether a type's method-name set covers the
// interface's required method names. This is CHA's name-based
// satisfaction test: structural checking cannot compare named types
// across type-checker universes, so matching is by name, which
// over-approximates (safe for taint propagation, and in practice exact
// for this module's small interfaces).
func implementsByName(have map[string]bool, required []string) bool {
	if have == nil {
		return false
	}
	for _, r := range required {
		if !have[r] {
			return false
		}
	}
	return true
}

// hasPackage reports whether path is one of the program's packages.
func (p *Program) hasPackage(path string) bool {
	return p.packageByPath(path) != nil
}

// packageByPath resolves one of the program's packages by import path.
func (p *Program) packageByPath(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// PackageNodes returns the program's nodes declared in pkg, in source
// order (declarations ordered by position, literals after their
// parent).
func (p *Program) PackageNodes(pkg *Package) []*FuncNode {
	var nodes []*FuncNode
	for _, n := range p.Funcs {
		if n.Pkg == pkg {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		pi, pj := nodes[i].pos(), nodes[j].pos()
		if pi != pj {
			return pi < pj
		}
		return nodes[i].Key < nodes[j].Key
	})
	return nodes
}

// pos is the node's declaration position.
func (n *FuncNode) pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// exprString renders a short description of an expression for
// diagnostics.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.SliceExpr:
		return exprString(v.X) + "[...]"
	}
	return "dynamic expression"
}
