package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// UnitsAnalyzer is the interprocedural dimension-flow pass: the whole
// repository does dimensional arithmetic — watts of PV feed, watt-hours
// of battery state, epoch hours, DVFS fractions — and the identifier
// suffix convention (…W/…Watts, …Wh, …Hours/…H, …Frac/…Fraction) only
// protects expressions where both operands still carry their suffix.
// Any assignment to a neutral name, any call boundary, and any struct
// field store used to launder the unit; the retired local unitsafety
// analyzer was blind one step past the suffix.
//
// This analyzer replaces it with a small dimension lattice
// {W, Wh, h, frac} propagated over the whole program (same fixpoint
// shape as dettaint): dimensions are seeded from identifier suffixes and
// from explicit `// ghlint:units` annotations on params, results, and
// struct fields, then flowed through assignments, short variable
// declarations, call arguments, return values, and field stores across
// package boundaries. Multiplication and division convert in the
// lattice — W × h = Wh, Wh / h = W, Wh / W = h, same-dimension
// quotients are fractions, and fractions and constants scale without
// changing a dimension — so the legal conversion path is never a
// finding.
//
// Annotation grammar (placement mirrors ghlint:allocfree):
//
//	// ghlint:units Wh                      on a struct field
//	// ghlint:units offer=W d=h result=Wh   on a function's doc comment
//
// Function entries name parameters or named results; `result` (or
// `resultN` for multi-result functions) addresses unnamed results.
// Malformed annotations — unknown dimension token, name matching no
// parameter or result, annotation contradicting the name's own suffix —
// are findings, so a typo cannot silently weaken the contract.
//
// Findings:
//
//   - mixing: additive arithmetic or comparisons between two expressions
//     whose *flow-resolved* dimensions are distinct hard dimensions
//     (W, Wh, h). Fractions and constants are dimensionless scalars and
//     never mix additively.
//   - dimension mismatch: a value with a known dimension flowing into a
//     parameter, result, field, or suffixed local declared with a
//     different dimension.
//   - laundering: a neutral (unsuffixed, unannotated) parameter, result,
//     or field whose inflows mix distinct hard dimensions — the point
//     where the program erases a unit — and a neutral local that both
//     accumulates mixed dimensions and crosses a call boundary as an
//     argument. The fix is an annotation or splitting the helper.
//
// Conservative blind spots, shared with the call graph: calls through
// function values and foreign interfaces do not propagate, and a
// conflicted (mixed-inflow) slot evaluates as unknown at its uses so one
// laundering point cannot cascade into findings at every downstream
// expression.
var UnitsAnalyzer = &Analyzer{
	Name: "units",
	Doc: "interprocedural dimension-flow analysis: infer W/Wh/h/frac " +
		"dimensions from identifier suffixes and ghlint:units annotations, " +
		"propagate them through assignments, call arguments, returns, and " +
		"field stores, and flag additive/comparison mixing, cross-boundary " +
		"dimension mismatches, and laundering through neutral names",
	Run: runUnits,
}

// unitsMarker introduces a dimension annotation.
const unitsMarker = "ghlint:units"

// udim is one point of the dimension lattice.
type udim uint8

const (
	udimUnknown udim = iota
	udimW            // power, watts
	udimWh           // energy, watt-hours
	udimH            // time, hours
	udimFrac         // dimensionless ratio (DVFS fraction, SoC, efficiency)
)

// String renders the dimension for diagnostics.
func (d udim) String() string {
	switch d {
	case udimW:
		return "power (W)"
	case udimWh:
		return "energy (Wh)"
	case udimH:
		return "time (h)"
	case udimFrac:
		return "fraction"
	default:
		return "unknown"
	}
}

// dimToken is the annotation spelling of each dimension.
func (d udim) dimToken() string {
	switch d {
	case udimW:
		return "W"
	case udimWh:
		return "Wh"
	case udimH:
		return "h"
	case udimFrac:
		return "frac"
	}
	return ""
}

// parseDimToken resolves an annotation token to a dimension.
func parseDimToken(tok string) (udim, bool) {
	switch tok {
	case "W":
		return udimW, true
	case "Wh":
		return udimWh, true
	case "h":
		return udimH, true
	case "frac":
		return udimFrac, true
	}
	return udimUnknown, false
}

// dimBit maps the hard (mixable) dimensions onto mask bits; frac is
// dimensionless and deliberately carries no bit — fractional inflow can
// never make a slot "mixed".
func dimBit(d udim) uint8 {
	switch d {
	case udimW:
		return 1
	case udimWh:
		return 2
	case udimH:
		return 4
	}
	return 0
}

// maskDims renders a mask's dimensions for laundering diagnostics.
func maskDims(mask uint8) string {
	var parts []string
	for _, d := range []udim{udimW, udimWh, udimH} {
		if mask&dimBit(d) != 0 {
			parts = append(parts, d.String())
		}
	}
	return strings.Join(parts, " and ")
}

// dimOfName infers a dimension from an identifier's unit suffix. The
// suffix must sit at a camel-case boundary (suffixAtBoundary), so bare
// loop variables and words that merely end in the letters do not
// classify.
func dimOfName(name string) udim {
	switch {
	case suffixAtBoundary(name, "Wh"):
		return udimWh
	case suffixAtBoundary(name, "W"), suffixAtBoundary(name, "Watts"):
		return udimW
	case suffixAtBoundary(name, "Hours"), suffixAtBoundary(name, "H"):
		return udimH
	case suffixAtBoundary(name, "Frac"), suffixAtBoundary(name, "Fraction"),
		suffixAtBoundary(name, "Fracs"), suffixAtBoundary(name, "Fractions"):
		return udimFrac
	}
	return udimUnknown
}

// dval is an expression's evaluated dimension. isConst marks untyped and
// typed constants, which act as dimensionless scalars everywhere: they
// scale products, and they are additively compatible with any dimension
// (powerW + 5 is not a unit bug).
type dval struct {
	d       udim
	isConst bool
}

// hard reports whether the value carries a mixable dimension.
func (v dval) hard() bool {
	return !v.isConst && dimBit(v.d) != 0
}

// uslot is one dimension-carrying declaration site: a parameter, a
// result, or a struct field. Declared slots (suffix or annotation) are
// fixed seeds; neutral slots accumulate an inflow mask during the
// fixpoint.
type uslot struct {
	declared bool
	d        udim  // meaningful when declared
	mask     uint8 // hard-dimension inflows for neutral slots
	fracIn   bool  // saw fractional inflow (inference only, never a conflict)

	pos   token.Pos
	pkg   *Package
	name  string // identifier, "" for unnamed results
	owner string // display name of the owning function or type
	kind  string // "parameter", "result", "field"
}

// dim resolves the slot's current dimension: declared wins; a neutral
// slot with exactly one hard inflow infers it; fraction-only inflow
// infers frac; anything mixed is unknown (the conflict is reported as
// laundering, not propagated).
func (s *uslot) dim() udim {
	if s.declared {
		return s.d
	}
	switch s.mask {
	case dimBit(udimW):
		return udimW
	case dimBit(udimWh):
		return udimWh
	case dimBit(udimH):
		return udimH
	case 0:
		if s.fracIn {
			return udimFrac
		}
	}
	return udimUnknown
}

// conflicted reports mixed hard inflows on a neutral slot.
func (s *uslot) conflicted() bool {
	return !s.declared && s.mask&(s.mask-1) != 0
}

// usig is one function's (or in-program interface method's) dimension
// signature: parameter and result slots in flattened declaration order.
type usig struct {
	params   []*uslot
	results  []*uslot
	variadic bool
}

// unitsFinding is one engine finding, attributed to the package whose
// pass must report it.
type unitsFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// unitsEngine is the program-wide dimension-flow state, built once per
// Program and cached on it (the driver and the test harness are
// single-threaded, like the rest of the loader).
type unitsEngine struct {
	prog   *Program
	fields map[string]*uslot // "pkg.(T).Field"
	sigs   map[string]*usig  // funcKey / "pkg.(Iface).Method"

	declFindings []unitsFinding // malformed/contradictory annotations
	findings     []unitsFinding // report-pass findings

	changed bool
	report  bool
}

// unitsFor returns the program's dimension-flow engine, building it on
// first use: declare seeds, run the flow fixpoint to stability, then one
// reporting pass over the stable tables.
func unitsFor(prog *Program) *unitsEngine {
	if prog.units != nil {
		return prog.units
	}
	e := &unitsEngine{
		prog:   prog,
		fields: make(map[string]*uslot),
		sigs:   make(map[string]*usig),
	}
	for _, pkg := range prog.Pkgs {
		e.declarePackage(pkg)
	}
	for e.changed = true; e.changed; {
		e.changed = false
		e.evalAll()
	}
	e.report = true
	e.evalAll()
	e.reportSlots()
	prog.units = e
	return e
}

func runUnits(pass *Pass) {
	e := unitsFor(pass.Prog)
	for _, f := range e.declFindings {
		if f.pkg.Path == pass.Path {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	for _, f := range e.findings {
		if f.pkg.Path == pass.Path {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// UnitsFieldDims exposes the engine's resolved struct-field dimensions:
// field key ("pkg.(T).Field") → annotation token ("W", "Wh", "h",
// "frac") for every field whose dimension resolved by suffix,
// annotation, or inference. The annotation-coverage test ties the
// dimensioned core's exported fields to this map.
func UnitsFieldDims(prog *Program) map[string]string {
	e := unitsFor(prog)
	out := make(map[string]string)
	for key, s := range e.fields {
		if d := s.dim(); d != udimUnknown {
			out[key] = d.dimToken()
		}
	}
	return out
}

// declFinding records a declare-phase finding (malformed annotations).
func (e *unitsEngine) declFinding(pkg *Package, pos token.Pos, format string, args ...any) {
	e.declFindings = append(e.declFindings, unitsFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// finding records a report-pass finding.
func (e *unitsEngine) finding(pkg *Package, pos token.Pos, format string, args ...any) {
	if !e.report {
		return
	}
	e.findings = append(e.findings, unitsFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// unitsAnnotationArg extracts the argument of a ghlint:units annotation
// from a comment group, if present.
func unitsAnnotationArg(groups ...*ast.CommentGroup) (string, token.Pos, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if arg, ok := directiveArg(c, unitsMarker); ok {
				return trimWantMarker(arg), c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// declarePackage seeds slots from pkg's type and function declarations.
func (e *unitsEngine) declarePackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					switch t := ts.Type.(type) {
					case *ast.StructType:
						e.declareStruct(pkg, ts.Name.Name, t)
					case *ast.InterfaceType:
						e.declareInterface(pkg, ts.Name.Name, t)
					}
				}
			case *ast.FuncDecl:
				key, ok := declKey(pkg, d)
				if !ok {
					continue
				}
				e.sigs[key] = e.buildSig(pkg, displayKey(key), d.Type, d.Doc)
			}
		}
	}
}

// declareStruct seeds one struct's field slots from suffixes and from
// their ghlint:units annotations.
func (e *unitsEngine) declareStruct(pkg *Package, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		arg, annPos, hasAnn := unitsAnnotationArg(field.Doc, field.Comment)
		var annDim udim
		if hasAnn {
			var ok bool
			if annDim, ok = parseDimToken(arg); !ok {
				e.declFinding(pkg, annPos,
					"malformed ghlint:units annotation: %q is not a dimension (want W, Wh, h, or frac)", arg)
				hasAnn = false
			}
		}
		for _, name := range field.Names {
			slot := &uslot{
				pos: name.Pos(), pkg: pkg, name: name.Name,
				owner: typeName, kind: "field",
			}
			suffix := dimOfName(name.Name)
			switch {
			case hasAnn && suffix != udimUnknown && suffix != annDim:
				e.declFinding(pkg, annPos,
					"ghlint:units %s contradicts the %s suffix of field %s.%s; fix the annotation or rename the field",
					annDim.dimToken(), suffix, typeName, name.Name)
				slot.d, slot.declared = suffix, true
			case hasAnn:
				slot.d, slot.declared = annDim, true
			case suffix != udimUnknown:
				slot.d, slot.declared = suffix, true
			}
			e.fields[pkg.Path+".("+typeName+")."+name.Name] = slot
		}
	}
}

// declareInterface seeds signature slots for an in-program interface's
// methods, so dimension flow crosses interface call boundaries the same
// way it crosses static ones. The interface's own declaration is the
// contract; implementations are not fanned out.
func (e *unitsEngine) declareInterface(pkg *Package, ifaceName string, it *ast.InterfaceType) {
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok || len(m.Names) == 0 {
			continue // embedded interface
		}
		for _, name := range m.Names {
			key := pkg.Path + ".(" + ifaceName + ")." + name.Name
			e.sigs[key] = e.buildSig(pkg, ifaceName+"."+name.Name, ft, docFor(m))
		}
	}
}

// docFor merges a field's doc and line comments for annotation lookup.
func docFor(f *ast.Field) *ast.CommentGroup {
	if f.Doc != nil {
		return f.Doc
	}
	return f.Comment
}

// buildSig flattens a function type into slots, seeding dimensions from
// name suffixes, from a single-result function's own suffixed name
// (GridEnergyWh() is an accessor returning Wh), and from a
// `// ghlint:units name=dim` doc annotation.
func (e *unitsEngine) buildSig(pkg *Package, display string, ft *ast.FuncType, doc *ast.CommentGroup) *usig {
	sig := &usig{}
	addSlots := func(list *ast.FieldList, kind string) []*uslot {
		var slots []*uslot
		if list == nil {
			return slots
		}
		for _, f := range list.List {
			if _, ok := f.Type.(*ast.Ellipsis); ok && kind == "parameter" {
				sig.variadic = true
			}
			if len(f.Names) == 0 {
				slots = append(slots, &uslot{pos: f.Pos(), pkg: pkg, owner: display, kind: kind})
				continue
			}
			for _, n := range f.Names {
				slot := &uslot{pos: n.Pos(), pkg: pkg, name: n.Name, owner: display, kind: kind}
				if d := dimOfName(n.Name); d != udimUnknown {
					slot.d, slot.declared = d, true
				}
				slots = append(slots, slot)
			}
		}
		return slots
	}
	sig.params = addSlots(ft.Params, "parameter")
	sig.results = addSlots(ft.Results, "result")

	// A unit-suffixed function name declares its single result: the
	// accessor convention (EnergyWh, SupplyW, EpochHours) the old
	// analyzer already classified.
	if len(sig.results) == 1 && !sig.results[0].declared && sig.results[0].name == "" {
		base := display
		if i := strings.LastIndex(base, "."); i >= 0 {
			base = base[i+1:]
		}
		if d := dimOfName(base); d != udimUnknown {
			sig.results[0].d, sig.results[0].declared = d, true
		}
	}

	arg, annPos, hasAnn := unitsAnnotationArg(doc)
	if !hasAnn {
		return sig
	}
	for _, entry := range strings.Fields(arg) {
		name, tok, ok := strings.Cut(entry, "=")
		if !ok {
			e.declFinding(pkg, annPos,
				"malformed ghlint:units annotation: entry %q is not name=dim", entry)
			continue
		}
		d, ok := parseDimToken(tok)
		if !ok {
			e.declFinding(pkg, annPos,
				"malformed ghlint:units annotation: %q is not a dimension (want W, Wh, h, or frac)", tok)
			continue
		}
		slot := sig.slotNamed(name)
		if slot == nil {
			e.declFinding(pkg, annPos,
				"malformed ghlint:units annotation: %s has no parameter or result %q", display, name)
			continue
		}
		if slot.declared && slot.d != d {
			e.declFinding(pkg, annPos,
				"ghlint:units %s contradicts the %s suffix of %q in %s; fix the annotation or rename",
				d.dimToken(), slot.d, name, display)
			continue
		}
		slot.d, slot.declared = d, true
	}
	return sig
}

// slotNamed resolves an annotation entry name: a parameter name, a named
// result, or the positional forms "result" / "resultN".
func (s *usig) slotNamed(name string) *uslot {
	for _, p := range s.params {
		if p.name == name {
			return p
		}
	}
	for _, r := range s.results {
		if r.name != "" && r.name == name {
			return r
		}
	}
	if name == "result" && len(s.results) > 0 {
		return s.results[0]
	}
	if rest, ok := strings.CutPrefix(name, "result"); ok {
		var i int
		if _, err := fmt.Sscanf(rest, "%d", &i); err == nil && i >= 0 && i < len(s.results) {
			return s.results[i]
		}
	}
	return nil
}

// evalAll runs one flow pass (and, in report mode, the mixing checks)
// over every function body in the program.
func (e *unitsEngine) evalAll() {
	for _, pkg := range e.prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				e.evalFunc(pkg, fd)
			}
		}
	}
}

// ulocal tracks one function-local variable's dimension evidence.
type ulocal struct {
	name      string
	declared  udim // from the identifier suffix; fixed
	mask      uint8
	fracIn    bool
	bindings  []ubind
	usedAsArg bool
}

type ubind struct {
	pos token.Pos
	d   udim
}

// dim mirrors uslot.dim for locals.
func (l *ulocal) dim() udim {
	if l.declared != udimUnknown {
		return l.declared
	}
	switch l.mask {
	case dimBit(udimW):
		return udimW
	case dimBit(udimWh):
		return udimWh
	case dimBit(udimH):
		return udimH
	case 0:
		if l.fracIn {
			return udimFrac
		}
	}
	return udimUnknown
}

// fctx is the per-function evaluation context.
type fctx struct {
	e        *unitsEngine
	pkg      *Package
	display  string
	sig      *usig                    // nil inside function literals (returns unkeyed)
	paramOf  map[types.Object]*uslot  // parameter objects → slots
	resultOf map[types.Object]*uslot  // named-result objects → slots
	locals   map[types.Object]*ulocal // shared with nested literals (closure capture)
}

// evalFunc runs the flow walk (and report-mode checks) over one
// declaration.
func (e *unitsEngine) evalFunc(pkg *Package, fd *ast.FuncDecl) {
	key, ok := declKey(pkg, fd)
	if !ok {
		return
	}
	sig := e.sigs[key]
	if sig == nil {
		return
	}
	c := &fctx{
		e: e, pkg: pkg, display: displayKey(key), sig: sig,
		paramOf:  make(map[types.Object]*uslot),
		resultOf: make(map[types.Object]*uslot),
		locals:   make(map[types.Object]*ulocal),
	}
	c.bindFieldList(fd.Type.Params, sig.params, c.paramOf)
	c.bindFieldList(fd.Type.Results, sig.results, c.resultOf)
	c.walkBody(fd.Body, sig)
	if e.report {
		c.mixWalk(fd.Body)
		c.reportLaunderedLocals()
	}
}

// bindFieldList maps declared identifier objects onto their slots, in
// the same flattening order buildSig used.
func (c *fctx) bindFieldList(list *ast.FieldList, slots []*uslot, into map[types.Object]*uslot) {
	if list == nil {
		return
	}
	i := 0
	for _, f := range list.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, n := range f.Names {
			if i < len(slots) {
				if obj := c.pkg.Info.Defs[n]; obj != nil {
					into[obj] = slots[i]
				}
			}
			i++
		}
	}
}

// walkBody performs the flow walk: every assignment, declaration,
// return, range, call, and composite literal contributes dimension
// inflows; function literals recurse with their own return scope but
// shared locals (closures capture the enclosing frame).
func (c *fctx) walkBody(body ast.Node, sig *usig) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			child := &fctx{
				e: c.e, pkg: c.pkg, display: c.display, sig: nil,
				paramOf: c.paramOf, resultOf: c.resultOf, locals: c.locals,
			}
			// Literal parameters live as suffix-classified locals.
			if s.Type.Params != nil {
				for _, f := range s.Type.Params.List {
					for _, name := range f.Names {
						if obj := c.pkg.Info.Defs[name]; obj != nil {
							child.locals[obj] = &ulocal{name: name.Name, declared: dimOfName(name.Name)}
						}
					}
				}
			}
			child.walkBody(s.Body, nil)
			return false
		case *ast.AssignStmt:
			c.assign(s)
		case *ast.ValueSpec:
			c.valueSpec(s)
		case *ast.ReturnStmt:
			c.returnStmt(s, sig)
		case *ast.RangeStmt:
			c.rangeStmt(s)
		case *ast.CallExpr:
			c.call(s)
		case *ast.CompositeLit:
			c.compositeLit(s)
		}
		return true
	})
}

// assign flows right-hand dimensions into left-hand targets. Arithmetic
// assignments (+=, -=, …) keep the target's own dimension and are
// checked by the mixing walk instead.
func (c *fctx) assign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			c.flowToExpr(lhs, c.dimOf(s.Rhs[i]), s.Rhs[i].Pos())
		}
		return
	}
	// Multi-value: a, b := f() — flow each callee result slot.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if sig := c.calleeSigOf(call); sig != nil {
				for i, lhs := range s.Lhs {
					if i < len(sig.results) {
						c.flowToExpr(lhs, dval{d: sig.results[i].dim()}, s.Rhs[0].Pos())
					}
				}
			}
		}
	}
}

// valueSpec flows var-declaration initializers.
func (c *fctx) valueSpec(s *ast.ValueSpec) {
	if len(s.Names) == len(s.Values) {
		for i, name := range s.Names {
			c.flowToExpr(name, c.dimOf(s.Values[i]), s.Values[i].Pos())
		}
		return
	}
	if len(s.Values) == 1 {
		if call, ok := ast.Unparen(s.Values[0]).(*ast.CallExpr); ok {
			if sig := c.calleeSigOf(call); sig != nil {
				for i, name := range s.Names {
					if i < len(sig.results) {
						c.flowToExpr(name, dval{d: sig.results[i].dim()}, s.Values[0].Pos())
					}
				}
			}
		}
	}
}

// returnStmt flows returned expressions into the function's result
// slots. Inside a function literal sig is nil and returns are unkeyed.
func (c *fctx) returnStmt(s *ast.ReturnStmt, sig *usig) {
	if sig == nil || len(s.Results) != len(sig.results) {
		return
	}
	for i, r := range s.Results {
		c.flowToSlot(sig.results[i], c.dimOf(r), r.Pos())
	}
}

// rangeStmt flows the ranged expression's element dimension into the
// value variable (the repo's convention names dimensioned slices with
// the element's suffix: GridSeriesW, bidsW).
func (c *fctx) rangeStmt(s *ast.RangeStmt) {
	if s.Value == nil {
		return
	}
	c.flowToExpr(s.Value, c.dimOf(s.X), s.X.Pos())
}

// compositeLit flows keyed and positional struct-literal values into
// field slots.
func (c *fctx) compositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pkg.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := derefType(tv.Type).(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	prefix := named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")."
	for i, el := range lit.Elts {
		var fieldName string
		var value ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fieldName, value = id.Name, kv.Value
		} else {
			if i >= st.NumFields() {
				continue
			}
			fieldName, value = st.Field(i).Name(), el
		}
		if slot := c.e.fields[prefix+fieldName]; slot != nil {
			c.flowToSlot(slot, c.dimOf(value), value.Pos())
		}
	}
}

// call flows argument dimensions into the callee's parameter slots and
// marks locals that cross the call boundary.
func (c *fctx) call(call *ast.CallExpr) {
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: the value stays in this function's hands
	}
	// An identifier handed to any real call crosses a boundary, whether
	// or not the callee resolves to an in-program signature —
	// out-of-program and dynamic callees launder a mixed-dimension
	// local just as thoroughly as resolved ones.
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if l := c.localFor(id, false); l != nil {
				l.usedAsArg = true
			}
		}
	}
	sig, shift := c.calleeSigShift(call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pi := i + shift
		if pi < 0 {
			continue // method-expression receiver: no parameter slot
		}
		if pi >= len(sig.params) {
			if !sig.variadic || len(sig.params) == 0 {
				continue
			}
			pi = len(sig.params) - 1
		}
		c.flowToSlot(sig.params[pi], c.dimOf(arg), arg.Pos())
	}
}

// calleeSigOf resolves a call to its dimension signature, nil when the
// callee is out of program or unresolvable.
func (c *fctx) calleeSigOf(call *ast.CallExpr) *usig {
	sig, _ := c.calleeSigShift(call)
	return sig
}

// calleeSigShift resolves a call's signature plus the argument shift
// (1 for method expressions, whose first argument is the receiver).
func (c *fctx) calleeSigShift(call *ast.CallExpr) (*usig, int) {
	info := c.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil, 0 // conversion
	}
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			if key, ok := unitsFuncKey(fn); ok {
				return c.e.sigs[key], 0
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, 0
			}
			key, ok := unitsFuncKey(fn)
			if !ok {
				return nil, 0
			}
			if sel.Kind() == types.MethodExpr {
				return c.e.sigs[key], -1
			}
			return c.e.sigs[key], 0
		}
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			if key, ok := unitsFuncKey(fn); ok {
				return c.e.sigs[key], 0
			}
		}
	}
	return nil, 0
}

// unitsFuncKey is funcKey extended to interface-method objects, whose
// receiver is the (named) interface itself: dimension contracts live on
// the interface declaration.
func unitsFuncKey(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		named, ok := derefType(recv.Type()).(*types.Named)
		if !ok {
			return "", false
		}
		return pkg.Path() + ".(" + named.Obj().Name() + ")." + fn.Name(), true
	}
	return pkg.Path() + "." + fn.Name(), true
}

// flowToExpr flows a value into an assignable expression: locals, named
// results, parameters, field selectors, and element stores through
// index/star expressions.
func (c *fctx) flowToExpr(lhs ast.Expr, v dval, pos token.Pos) {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		obj := c.pkg.Info.Defs[t]
		if obj == nil {
			obj = c.pkg.Info.Uses[t]
		}
		if obj == nil {
			return
		}
		if slot, ok := c.resultOf[obj]; ok {
			c.flowToSlot(slot, v, pos)
			return
		}
		if slot, ok := c.paramOf[obj]; ok {
			c.flowToSlot(slot, v, pos)
			return
		}
		if l := c.localFor(t, true); l != nil {
			c.flowToLocal(l, v, pos)
		}
	case *ast.SelectorExpr:
		if key, ok := c.fieldKeyOf(t); ok {
			if slot := c.e.fields[key]; slot != nil {
				c.flowToSlot(slot, v, pos)
			}
		}
	case *ast.IndexExpr:
		c.flowToExpr(t.X, v, pos)
	case *ast.StarExpr:
		c.flowToExpr(t.X, v, pos)
	}
}

// localFor resolves an identifier to its local tracking record,
// creating one when create is set. Parameters, named results, fields,
// and package-level variables are not locals.
func (c *fctx) localFor(id *ast.Ident, create bool) *ulocal {
	obj := c.pkg.Info.Defs[id]
	if obj == nil {
		obj = c.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if _, isParam := c.paramOf[obj]; isParam {
		return nil
	}
	if _, isResult := c.resultOf[obj]; isResult {
		return nil
	}
	if c.pkg.Types != nil && v.Parent() == c.pkg.Types.Scope() {
		return nil // package-level variable
	}
	if l, ok := c.locals[obj]; ok {
		return l
	}
	if !create {
		return nil
	}
	l := &ulocal{name: id.Name, declared: dimOfName(id.Name)}
	c.locals[obj] = l
	return l
}

// flowToSlot joins a value into a parameter/result/field slot: declared
// slots check for mismatches, neutral slots accumulate inflow.
func (c *fctx) flowToSlot(slot *uslot, v dval, pos token.Pos) {
	if slot == nil || v.isConst || v.d == udimUnknown {
		return
	}
	if slot.declared {
		if v.d != slot.d {
			c.e.finding(c.pkg, pos,
				"dimension mismatch: %s value flows into %s %q of %s declared %s; convert explicitly (power × duration.Hours() = energy) or fix the declaration",
				v.d, slot.kind, slot.name, slot.owner, slot.d)
		}
		return
	}
	if bit := dimBit(v.d); bit != 0 {
		if slot.mask&bit == 0 {
			slot.mask |= bit
			c.e.changed = true
		}
	} else if v.d == udimFrac && !slot.fracIn {
		slot.fracIn = true
		c.e.changed = true
	}
}

// flowToLocal joins a value into a local: suffix-declared locals check
// for mismatches, neutral locals accumulate evidence for the
// laundering report.
func (c *fctx) flowToLocal(l *ulocal, v dval, pos token.Pos) {
	if v.isConst || v.d == udimUnknown {
		return
	}
	if l.declared != udimUnknown {
		if v.d != l.declared {
			c.e.finding(c.pkg, pos,
				"dimension mismatch: %s value bound to %s-suffixed local %q; convert explicitly (power × duration.Hours() = energy) or rename the variable",
				v.d, l.declared, l.name)
		}
		return
	}
	if bit := dimBit(v.d); bit != 0 {
		l.mask |= bit
		l.bindings = append(l.bindings, ubind{pos: pos, d: v.d})
	} else if v.d == udimFrac {
		l.fracIn = true
	}
}

// fieldKeyOf resolves a field selector to its slot key through the
// type-checker's selection. Fields promoted from embedded types key
// under the outer type and simply miss the table (the suffix fallback in
// selectorDim still classifies them).
func (c *fctx) fieldKeyOf(sel *ast.SelectorExpr) (string, bool) {
	s, ok := c.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	named, ok := derefType(s.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + sel.Sel.Name, true
}

// dimOf evaluates an expression's dimension. It is pure: findings come
// from the flow hooks and the mixing walk, never from evaluation.
func (c *fctx) dimOf(e ast.Expr) dval {
	if tv, ok := c.pkg.Info.Types[e]; ok && tv.Value != nil {
		return dval{isConst: true}
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.dimOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return c.dimOf(x.X)
		}
	case *ast.StarExpr:
		return c.dimOf(x.X)
	case *ast.IndexExpr:
		return c.dimOf(x.X)
	case *ast.SliceExpr:
		return c.dimOf(x.X)
	case *ast.Ident:
		return c.identDim(x)
	case *ast.SelectorExpr:
		return c.selectorDim(x)
	case *ast.CallExpr:
		return c.callDim(x)
	case *ast.BinaryExpr:
		return c.binaryDim(x)
	}
	return dval{}
}

// identDim resolves an identifier: named results, parameters, tracked
// locals, then the suffix convention (package-level variables and
// anything else the flow has not seen).
func (c *fctx) identDim(id *ast.Ident) dval {
	obj := c.pkg.Info.Uses[id]
	if obj == nil {
		obj = c.pkg.Info.Defs[id]
	}
	if obj != nil {
		if slot, ok := c.resultOf[obj]; ok {
			return dval{d: slot.dim()}
		}
		if slot, ok := c.paramOf[obj]; ok {
			return dval{d: slot.dim()}
		}
		if l, ok := c.locals[obj]; ok {
			return dval{d: l.dim()}
		}
	}
	return dval{d: dimOfName(id.Name)}
}

// selectorDim resolves x.F: field slots first, then the suffix of the
// selected name (out-of-program fields, promoted fields, package vars).
func (c *fctx) selectorDim(sel *ast.SelectorExpr) dval {
	if key, ok := c.fieldKeyOf(sel); ok {
		if slot := c.e.fields[key]; slot != nil {
			return dval{d: slot.dim()}
		}
	}
	if s, ok := c.pkg.Info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return dval{} // method value, not a dimensioned read
	}
	return dval{d: dimOfName(sel.Sel.Name)}
}

// callDim evaluates a call expression: numeric conversions are
// transparent, builtin and math min/max/abs-style helpers join their
// arguments, in-program callees report their result slot, and
// out-of-program callees fall back to the suffix of their name
// (r.GridEnergyWh()), with time.Duration's Hours() the canonical
// power×time conversion.
func (c *fctx) callDim(call *ast.CallExpr) dval {
	info := c.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isNumericType(tv.Type) {
			return c.dimOf(call.Args[0])
		}
		return dval{}
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "min" || b.Name() == "max" {
				return c.joinArgs(call)
			}
			return dval{}
		}
	}
	if sig := c.calleeSigOf(call); sig != nil {
		if len(sig.results) == 1 {
			return dval{d: sig.results[0].dim()}
		}
		return dval{}
	}
	// Out-of-program callee: magnitude-preserving math helpers join
	// their arguments; otherwise the callee's name suffix decides.
	fn := calleeFuncObj(info, fun)
	if fn == nil {
		return dval{}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" && magnitudePreserving[fn.Name()] {
		return c.joinArgs(call)
	}
	if fn.Name() == "Hours" {
		return dval{d: udimH}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 1 {
		return dval{d: dimOfName(fn.Name())}
	}
	return dval{}
}

// magnitudePreserving lists math functions whose result carries their
// argument's dimension.
var magnitudePreserving = map[string]bool{
	"Abs": true, "Min": true, "Max": true,
	"Floor": true, "Ceil": true, "Trunc": true, "Round": true,
}

// calleeFuncObj resolves the called *types.Func, nil for dynamic calls.
func calleeFuncObj(info *types.Info, fun ast.Expr) *types.Func {
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// joinArgs additively joins a call's argument dimensions (min/max/Abs
// return one of their inputs).
func (c *fctx) joinArgs(call *ast.CallExpr) dval {
	out := dval{isConst: true}
	for _, a := range call.Args {
		out = addDim(out, c.dimOf(a))
	}
	return out
}

// isNumericType reports whether a conversion target is numeric (so the
// conversion preserves the operand's dimension).
func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// binaryDim applies the lattice's operator tables.
func (c *fctx) binaryDim(x *ast.BinaryExpr) dval {
	switch x.Op {
	case token.ADD, token.SUB:
		return addDim(c.dimOf(x.X), c.dimOf(x.Y))
	case token.MUL:
		return mulDim(c.dimOf(x.X), c.dimOf(x.Y))
	case token.QUO:
		return divDim(c.dimOf(x.X), c.dimOf(x.Y))
	}
	return dval{}
}

// addDim: addition requires (and yields) a single dimension. Constants
// are transparent; an unknown operand adopts the known hard dimension
// (additive compatibility is the evidence); fractions blended into a
// hard dimension yield unknown — the blend is sanctioned (epsilons,
// ratios) but the sum's dimension is no longer knowable.
func addDim(a, b dval) dval {
	if a.isConst {
		return dval{d: b.d}
	}
	if b.isConst {
		return dval{d: a.d}
	}
	if a.d == b.d {
		return dval{d: a.d}
	}
	if a.d == udimUnknown && b.hard() {
		return dval{d: b.d}
	}
	if b.d == udimUnknown && a.hard() {
		return dval{d: a.d}
	}
	return dval{}
}

// mulDim: scalars (constants, fractions) preserve the other factor;
// W × h converts to Wh; any other product has no tracked dimension.
func mulDim(a, b dval) dval {
	scalarA := a.isConst || a.d == udimFrac
	scalarB := b.isConst || b.d == udimFrac
	switch {
	case scalarA && scalarB:
		if a.d == udimFrac || b.d == udimFrac {
			return dval{d: udimFrac}
		}
		return dval{isConst: true}
	case scalarA:
		return dval{d: b.d}
	case scalarB:
		return dval{d: a.d}
	case a.d == udimW && b.d == udimH, a.d == udimH && b.d == udimW:
		return dval{d: udimWh}
	}
	return dval{}
}

// divDim: scalar divisors preserve the dividend; same-dimension
// quotients are fractions; Wh/h = W and Wh/W = h close the conversion
// triangle.
func divDim(a, b dval) dval {
	if b.isConst || b.d == udimFrac {
		return dval{d: a.d}
	}
	if a.d != udimUnknown && !a.isConst && a.d == b.d {
		return dval{d: udimFrac}
	}
	if a.d == udimWh && b.d == udimH {
		return dval{d: udimW}
	}
	if a.d == udimWh && b.d == udimW {
		return dval{d: udimH}
	}
	return dval{}
}

// mixWalk is the report-pass check for additive and comparison mixing,
// run once per function over the stable tables so each expression is
// checked exactly once.
func (c *fctx) mixWalk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BinaryExpr:
			if mixableOps[s.Op] {
				c.checkMix(s.OpPos, s.Op, s.X, s.Y)
			}
		case *ast.AssignStmt:
			if (s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN) &&
				len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				c.checkMix(s.TokPos, s.Tok, s.Lhs[0], s.Rhs[0])
			}
		}
		return true
	})
}

// checkMix reports two distinct hard dimensions meeting across an
// additive or comparison operator.
func (c *fctx) checkMix(opPos token.Pos, op token.Token, x, y ast.Expr) {
	xv, yv := c.dimOf(x), c.dimOf(y)
	if !xv.hard() || !yv.hard() || xv.d == yv.d {
		return
	}
	c.e.finding(c.pkg, opPos,
		"%q mixes %s (%s) with %s (%s); convert explicitly (power × duration.Hours() = energy) or go through a named conversion helper",
		op.String(), exprString(x), xv.d, exprString(y), yv.d)
}

// reportLaunderedLocals flags neutral locals that both accumulated
// mixed hard dimensions and crossed a call boundary: past that point no
// reader — human or analyzer — can recover the unit.
func (c *fctx) reportLaunderedLocals() {
	for _, l := range c.locals {
		if l.declared != udimUnknown || l.mask&(l.mask-1) == 0 || !l.usedAsArg {
			continue
		}
		seen := l.bindings[0].d
		for _, b := range l.bindings[1:] {
			if b.d != seen {
				c.e.finding(c.pkg, b.pos,
					"local %q launders mixed dimensions (%s) and crosses a call boundary; keep the unit suffix on the name or split the variable",
					l.name, maskDims(l.mask))
				break
			}
		}
	}
}

// reportSlots emits the laundering findings for neutral parameters,
// results, and fields whose inflows mixed hard dimensions. Keys are
// sorted so the engine's finding order is a pure function of the source.
func (e *unitsEngine) reportSlots() {
	keys := make([]string, 0, len(e.sigs))
	for k := range e.sigs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sig := e.sigs[k]
		for _, p := range sig.params {
			if p.conflicted() {
				e.findings = append(e.findings, unitsFinding{pkg: p.pkg, pos: p.pos, msg: fmt.Sprintf(
					"parameter %q of %s receives mixed dimensions (%s) from its call sites; a dimensioned value is laundered through the neutral name — annotate it (// ghlint:units %s=<dim>) or split the helper",
					p.name, p.owner, maskDims(p.mask), p.name)})
			}
		}
		for i, r := range sig.results {
			if r.conflicted() {
				e.findings = append(e.findings, unitsFinding{pkg: r.pkg, pos: r.pos, msg: fmt.Sprintf(
					"result %d of %s returns mixed dimensions (%s); annotate it (// ghlint:units result=<dim>) or split the function",
					i, r.owner, maskDims(r.mask))})
			}
		}
	}
	fkeys := make([]string, 0, len(e.fields))
	for k := range e.fields {
		fkeys = append(fkeys, k)
	}
	sort.Strings(fkeys)
	for _, k := range fkeys {
		f := e.fields[k]
		if f.conflicted() {
			e.findings = append(e.findings, unitsFinding{pkg: f.pkg, pos: f.pos, msg: fmt.Sprintf(
				"field %s.%s receives mixed dimensions (%s) from its stores; a dimensioned value is laundered through the neutral name — annotate it (// ghlint:units <dim>) or split the field",
				f.owner, f.name, maskDims(f.mask))})
		}
	}
}
