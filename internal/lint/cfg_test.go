package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc typechecks src (a full file) and returns the named
// function's body CFG inputs.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// stateAt runs the lock-set dataflow over fn and returns the held-set
// description in force just before each assignment to a variable,
// keyed by the variable's name.
func stateAt(t *testing.T, fn *ast.FuncDecl, info *types.Info, entry lockSet) map[string]string {
	t.Helper()
	g := buildCFG(fn.Body)
	if g.unsupported {
		t.Fatalf("CFG unexpectedly unsupported")
	}
	lf := solveLockFlow(g, info, entry)
	out := make(map[string]string)
	lf.walk(func(n ast.Node, held lockSet) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			out[id.Name] = held.describe()
		}
	})
	return out
}

const lockFlowSrc = `package p

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

type E struct {
	sync.Mutex
	n int
}

func straight(s *S) {
	inside := 0
	s.mu.Lock()
	held := 0
	s.mu.Unlock()
	after := 0
	_, _, _ = inside, held, after
}

func deferred(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	held := 0
	_ = held
}

func branchy(s *S, c bool) {
	if c {
		s.mu.Lock()
		inThen := 0
		_ = inThen
		s.mu.Unlock()
	}
	joined := 0
	_ = joined
}

func modes(s *S, c bool) {
	if c {
		s.mu.Lock()
	} else {
		s.mu.RLock()
	}
	merged := 0
	_ = merged
}

func embedded(e *E) {
	e.Lock()
	held := 0
	_ = held
	e.Unlock()
}

func loops(s *S) {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		inLoop := 0
		_ = inLoop
	}
	s.mu.Unlock()
	for {
		s.mu.Lock()
		reacquired := 0
		_ = reacquired
		s.mu.Unlock()
	}
}

func dropInLoop(s *S, xs []int) {
	s.mu.Lock()
	for range xs {
		s.mu.Unlock()
		s.mu.Lock()
	}
	// The zero-iteration path keeps the lock; the looped path re-locks;
	// but the *backedge into the header* carries an unlocked interval, so
	// nothing between Unlock and Lock may claim the lock. After the loop
	// both paths hold it again.
	after := 0
	_ = after
	s.mu.Unlock()
}
`

func TestLockFlowStraightLine(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "straight")
	got := stateAt(t, fn, info, lockSet{})
	want := map[string]string{
		"inside": "no locks held",
		"held":   "holding s.mu(write)",
		"after":  "no locks held",
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("at %s = ...: got %q, want %q", k, got[k], w)
		}
	}
}

func TestLockFlowDeferUnlock(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "deferred")
	got := stateAt(t, fn, info, lockSet{})
	if got["held"] != "holding s.mu(write)" {
		t.Errorf("defer unlock must keep the lock held to exit; got %q", got["held"])
	}
}

func TestLockFlowBranchJoin(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "branchy")
	got := stateAt(t, fn, info, lockSet{})
	if got["inThen"] != "holding s.mu(write)" {
		t.Errorf("then-branch: got %q", got["inThen"])
	}
	if got["joined"] != "no locks held" {
		t.Errorf("join of locked/unlocked paths must drop the lock; got %q", got["joined"])
	}
}

func TestLockFlowModeMeet(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "modes")
	got := stateAt(t, fn, info, lockSet{})
	if got["merged"] != "holding s.mu(read)" {
		t.Errorf("write ∧ read must meet to read; got %q", got["merged"])
	}
}

func TestLockFlowEmbeddedMutex(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "embedded")
	got := stateAt(t, fn, info, lockSet{})
	if got["held"] != "holding e.Mutex(write)" {
		t.Errorf("embedded mutex must key as the promoted field; got %q", got["held"])
	}
}

func TestLockFlowLoops(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "loops")
	got := stateAt(t, fn, info, lockSet{})
	if got["inLoop"] != "holding s.mu(write)" {
		t.Errorf("lock held across loop body: got %q", got["inLoop"])
	}
	if got["reacquired"] != "holding s.mu(write)" {
		t.Errorf("re-acquired inside infinite loop: got %q", got["reacquired"])
	}
}

func TestLockFlowUnlockRelockLoop(t *testing.T) {
	fn, info := parseFunc(t, lockFlowSrc, "dropInLoop")
	got := stateAt(t, fn, info, lockSet{})
	if got["after"] != "holding s.mu(write)" {
		t.Errorf("after unlock/relock loop both paths hold the lock; got %q", got["after"])
	}
}

func TestLockFlowEntrySeed(t *testing.T) {
	// Seeding the entry state models a ghlint:holds contract: the body
	// never locks, yet the lock reads as held throughout.
	fn, info := parseFunc(t, `package p

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

func helper(s *S) {
	body := 0
	_ = body
}
`, "helper")
	var recv types.Object
	for id, obj := range info.Defs {
		if id.Name == "s" {
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				recv = v
			}
		}
	}
	if recv == nil {
		t.Fatal("param object not found")
	}
	entry := lockSet{held: map[lockKey]lockMode{{root: recv, path: ".mu"}: modeWrite}}
	got := stateAt(t, fn, info, entry)
	if got["body"] != "holding s.mu(write)" {
		t.Errorf("entry seed must flow through; got %q", got["body"])
	}
}

func TestCFGGotoUnsupported(t *testing.T) {
	fn, _ := parseFunc(t, `package p

func g() {
top:
	goto top
}
`, "g")
	g := buildCFG(fn.Body)
	if !g.unsupported {
		t.Error("goto must mark the CFG unsupported")
	}
}

func TestCFGInfiniteForHasNoFalseExit(t *testing.T) {
	fn, _ := parseFunc(t, `package p

func f() {
	for {
	}
}
`, "f")
	g := buildCFG(fn.Body)
	// The synthetic exit is reachable only via the implicit fallthrough
	// edge from the (unreachable) block after the loop; the loop header
	// itself must not edge to exit or to the after-block.
	for _, bl := range g.blocks {
		for _, n := range bl.nodes {
			_ = n
		}
	}
	// Walk from entry: exit must NOT be reachable.
	seen := make(map[*cfgBlock]bool)
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			dfs(s)
		}
	}
	dfs(g.entry)
	if seen[g.exit] {
		t.Error("for{} must make the function exit unreachable")
	}
}

func TestCFGSelectNoDefaultBlocks(t *testing.T) {
	fn, info := parseFunc(t, `package p

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

func f(s *S, ch chan int) {
	s.mu.Lock()
	select {
	case <-ch:
		s.mu.Unlock()
		got := 0
		_ = got
	}
	// Only the case path reaches here, and it unlocked.
	after := 0
	_ = after
}
`, "f")
	got := stateAt(t, fn, info, lockSet{})
	if got["got"] != "no locks held" {
		t.Errorf("case body state: got %q", got["got"])
	}
	if got["after"] != "no locks held" {
		t.Errorf("post-select state: got %q", got["after"])
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	fn, info := parseFunc(t, `package p

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

func f(s *S, v int) {
	switch v {
	case 1:
		s.mu.Lock()
		fallthrough
	case 2:
		// Reached with the lock held (via fallthrough) or not held
		// (direct match) — the meet must drop it.
		merged := 0
		_ = merged
	}
}
`, "f")
	got := stateAt(t, fn, info, lockSet{})
	if got["merged"] != "no locks held" {
		t.Errorf("fallthrough/direct meet: got %q", got["merged"])
	}
}

func TestLockSetDescribeStable(t *testing.T) {
	if d := topLockSet().describe(); d != "⊤" {
		t.Errorf("top: %q", d)
	}
	if d := (lockSet{}).describe(); d != "no locks held" {
		t.Errorf("empty: %q", d)
	}
	if !strings.Contains((lockSet{}).meet(topLockSet()).describe(), "no locks") {
		t.Error("meet with top must be identity")
	}
}
