package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitsafetyAnalyzer rejects arithmetic that mixes power (watts) with
// energy (watt-hours) without an explicit conversion. The repository's
// naming convention carries the unit in the identifier suffix —
// CapacityWh, MaxChargeW, GridBudgetW, PeakWatts — which makes the
// dimensional error `chargeWh + maxChargeW` mechanically detectable.
// Multiplication and division are exempt (W × hours = Wh is precisely
// how units convert); addition, subtraction, and comparisons between a
// W-suffixed and a Wh-suffixed operand are always bugs unless one side
// passed through a named conversion first.
//
// Deprecated: retired from the shipped suite in favor of the
// interprocedural units analyzer (units.go), which subsumes this check
// and additionally tracks dimensions through assignments, call
// boundaries, and field stores — the laundering shapes this local,
// suffix-only pass is blind to. The analyzer stays exported solely as
// the regression baseline: TestUnitsLaunderRegression runs it against
// the launder fixture to prove the shape it misses is now caught.
var UnitsafetyAnalyzer = &Analyzer{
	Name: "unitsafety",
	Doc: "flag additive arithmetic and comparisons mixing watt-suffixed " +
		"(W/Watts) and watt-hour-suffixed (Wh) identifiers without a " +
		"named conversion helper",
	Run: runUnitsafety,
}

// unit is the dimension inferred from an identifier suffix.
type unit int

const (
	unitNone   unit = iota
	unitPower       // …W, …Watts
	unitEnergy      // …Wh
)

func (u unit) String() string {
	switch u {
	case unitPower:
		return "power (W)"
	case unitEnergy:
		return "energy (Wh)"
	default:
		return "unitless"
	}
}

// mixableOps are the operators across which units must agree.
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
}

func runUnitsafety(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !mixableOps[n.Op] {
					return true
				}
				checkUnits(pass, n.OpPos, n.Op, n.X, n.Y)
			case *ast.AssignStmt:
				if !mixableOps[n.Tok] || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				checkUnits(pass, n.TokPos, n.Tok, n.Lhs[0], n.Rhs[0])
			}
			return true
		})
	}
}

// checkUnits reports when x and y carry conflicting unit suffixes.
func checkUnits(pass *Pass, opPos token.Pos, op token.Token, x, y ast.Expr) {
	ux, nx := unitOf(x)
	uy, ny := unitOf(y)
	if ux == unitNone || uy == unitNone || ux == uy {
		return
	}
	pass.Reportf(opPos,
		"%q mixes %s (%s) with %s (%s); convert explicitly (power × duration.Hours() = energy) or go through a named conversion helper",
		op.String(), nx, ux, ny, uy)
}

// unitOf infers the unit an expression carries from its terminal
// identifier: plain identifiers, field selectors, and calls of
// unit-suffixed accessors (r.GridEnergyWh()). Parentheses and unary
// minus are transparent. Products, quotients, and anything else return
// unitNone — a product's unit is not the unit of either factor.
func unitOf(expr ast.Expr) (unit, string) {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return unitOf(e.X)
		}
	case *ast.Ident:
		return unitOfName(e.Name), e.Name
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name), e.Sel.Name
	case *ast.CallExpr:
		if name := calleeName(e); name != "" {
			return unitOfName(name), name + "()"
		}
	}
	return unitNone, ""
}

// unitOfName classifies a name by its unit suffix. The suffix must be
// preceded by a lowercase letter or digit (a camel-case boundary), so
// bare loop variables like "w" and words that merely end in the letters
// do not classify.
func unitOfName(name string) unit {
	switch {
	case suffixAtBoundary(name, "Wh"):
		return unitEnergy
	case suffixAtBoundary(name, "W"), suffixAtBoundary(name, "Watts"):
		return unitPower
	}
	return unitNone
}

// suffixAtBoundary reports whether name ends in suffix with a camel-case
// boundary right before it.
func suffixAtBoundary(name, suffix string) bool {
	if !strings.HasSuffix(name, suffix) || len(name) == len(suffix) {
		return false
	}
	prev := name[len(name)-len(suffix)-1]
	return prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9'
}
