package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocfreeAnalyzer verifies `// ghlint:allocfree` annotations: an
// annotated function must contain no allocation site and must call only
// callees that are themselves under the contract. PR 6 proved the epoch
// hot path (refit → solve → enforce → step) runs at ~6 allocs/epoch,
// but that proof is dynamic — AllocsPerRun pins and the ghperf CI gate
// notice a regression only after it ships. This analyzer turns the
// invariant static: a refactor that reintroduces boxing, slice growth,
// or a closure anywhere in the annotated call tree is a lint finding at
// the exact line, not a bench delta three layers up.
//
// Allocation sites flagged inside an annotated function:
//
//   - make, new
//   - append without provable reuse (reuse = the base is a slice
//     expression of an existing buffer, or the result is assigned back
//     to the same expression it appends to)
//   - composite literals of slice or map type, and &T{} (the literal's
//     address is taken, so it is heap-allocated unless escape analysis
//     proves otherwise — the analyzer does not model escape analysis)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - implicit interface boxing of non-pointer-shaped concrete values
//     at call arguments, assignments, and returns (the fmt.* trap)
//   - closure creation (function literals that escape) and bound
//     method values
//   - map writes
//   - goroutine launches
//
// Cold paths are exempt, because the contract is about the steady-state
// hot loop, not failure exits or one-time warm-up:
//
//   - a return whose final result is a non-nil error expression (and
//     panic calls): error construction on the failure exit is fine
//   - the body of an `if x == nil`, `if err != nil` (error-typed), or
//     `if cap(x) < n` / `if len(x) != n` guard: lazy initialization and
//     grow-on-demand buffers allocate only until steady state
//
// Callee discipline: an annotated function may call (a) functions that
// are themselves annotated, (b) a vetted stdlib whitelist (math,
// math/bits, sync lock/unlock, sync.Map.Load, errors.Is,
// time.Duration's numeric accessors, and encoding/binary's fixed-width
// Append/Put/Uint accessors — the Append family amortizes into the
// caller's reused buffer), (c) func-typed
// struct fields annotated `// ghlint:allocfree` (every binding to such
// a field is verified program-wide), and (d) interface methods
// annotated `// ghlint:allocfree` (every in-program implementation
// must be annotated). Anything else — including unresolvable dynamic
// calls — is a finding; genuinely-cold allocations on the hot path's
// fringe carry reasoned suppressions that enumerate the per-epoch
// allocation budget in source.
var AllocfreeAnalyzer = &Analyzer{
	Name: "allocfree",
	Doc: "verify ghlint:allocfree annotations: no allocation sites and no " +
		"calls outside the allocfree-verified set, so the zero-alloc hot " +
		"path proven by AllocsPerRun is enforced statically",
	Run: runAllocfree,
}

func runAllocfree(pass *Pass) {
	prog := pass.Prog
	pkg := prog.packageByPath(pass.Path)
	if pkg == nil {
		return
	}
	for _, node := range prog.PackageNodes(pkg) {
		if node.Decl != nil && node.Allocfree && node.Decl.Body != nil {
			newAllocfreeCheck(pass, prog, node).check()
		}
	}
	checkContractBindings(pass, prog, pkg)
	checkContractImpls(pass, prog, pkg)
}

// allocfreeCheck verifies one annotated declaration (or one function
// literal bound to a contract field).
type allocfreeCheck struct {
	pass *Pass
	prog *Program
	root *FuncNode
	// name is the subject used in messages.
	name string
	// edges indexes the root's and its literals' call edges by Lparen.
	edges map[token.Pos]CallEdge
	// handledAppends are append calls already validated as buffer reuse
	// through their enclosing assignment.
	handledAppends map[*ast.CallExpr]bool
	// okLits are literals allowed to exist (immediately invoked, or
	// bound to a local used only in call position); their bodies are
	// checked inline. Other literals are allocation findings and their
	// bodies are skipped.
	okLits map[*ast.FuncLit]bool
	// exempt marks cold-path subtree roots (see package doc).
	exempt map[ast.Node]bool
	// returnSigs maps each return statement to its function's results.
	returnSigs map[*ast.ReturnStmt]*types.Tuple
}

func newAllocfreeCheck(pass *Pass, prog *Program, root *FuncNode) *allocfreeCheck {
	c := &allocfreeCheck{
		pass:           pass,
		prog:           prog,
		root:           root,
		name:           root.Display,
		edges:          make(map[token.Pos]CallEdge),
		handledAppends: make(map[*ast.CallExpr]bool),
		okLits:         make(map[*ast.FuncLit]bool),
		exempt:         make(map[ast.Node]bool),
		returnSigs:     make(map[*ast.ReturnStmt]*types.Tuple),
	}
	declKey := root.Key
	if root.Parent != nil {
		for p := root.Parent; p != nil; p = p.Parent {
			declKey = p.Key
		}
	}
	for key, n := range prog.Funcs {
		if key == root.Key || strings.HasPrefix(key, declKey+"$") {
			for _, e := range n.Calls {
				c.edges[e.Pos] = e
			}
		}
	}
	return c
}

// body returns the subtree this check covers.
func (c *allocfreeCheck) body() *ast.BlockStmt {
	if c.root.Decl != nil {
		return c.root.Decl.Body
	}
	return c.root.Lit.Body
}

func (c *allocfreeCheck) check() {
	body := c.body()
	c.markExempt(body)
	c.classifyLiterals(body)
	c.collectReturnSigs(body)
	c.walk(body)
}

// markExempt records cold-path subtree roots: error-exit returns,
// panic calls, and the bodies of lazy-init / grow-on-demand guards.
func (c *allocfreeCheck) markExempt(body ast.Node) {
	info := c.pass.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if isColdErrorReturn(info, s) {
				c.exempt[s] = true
			}
		case *ast.IfStmt:
			if isColdGuard(info, s.Cond) {
				c.exempt[s.Body] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					c.exempt[s] = true
				}
			}
		}
		return true
	})
}

// isColdErrorReturn reports whether ret's final result is a non-nil
// error-typed expression: the failure exit of a hot function, where
// constructing the error is expected to allocate.
func isColdErrorReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	t := info.Types[last].Type
	if t == nil || !isErrorType(t) {
		return false
	}
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// isColdGuard reports whether cond guards a lazy-init, error-handling,
// or grow-on-demand block: `x == nil`, error-typed `x != nil`,
// `cap(x) < n`, `len(x) != n`, and order/operator variants.
func isColdGuard(info *types.Info, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch bin.Op {
	case token.EQL: // x == nil: lazy initialization
		if isNil(bin.X) || isNil(bin.Y) {
			return true
		}
	case token.NEQ: // err != nil: error handling
		var other ast.Expr
		switch {
		case isNil(bin.X):
			other = bin.Y
		case isNil(bin.Y):
			other = bin.X
		}
		if other != nil {
			if t := info.Types[other].Type; t != nil && isErrorType(t) {
				return true
			}
		}
	}
	// cap/len comparisons in any order with any ordering operator (and
	// len != n): a buffer being grown or reshaped to demand.
	capLen := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || (id.Name != "cap" && id.Name != "len") {
			return false
		}
		_, isBuiltin := info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	switch bin.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		return capLen(bin.X) || capLen(bin.Y)
	}
	return false
}

// isErrorType reports whether t is the universe error type.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// classifyLiterals decides which function literals are allowed:
// immediately invoked, or bound once to a local variable whose every
// other use is a call. Those run inline on the hot path and their
// bodies are checked; everything else is a closure allocation.
func (c *allocfreeCheck) classifyLiterals(body ast.Node) {
	// Literals immediately invoked.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			c.okLits[lit] = true
		}
		return true
	})
	// Literals bound once to a call-only local.
	binds := make(map[*types.Var]*ast.FuncLit)
	bindCount := make(map[*types.Var]int)
	uses := make(map[*types.Var][]*ast.Ident)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.Info.Defs[id]
				if obj == nil {
					obj = c.pass.Info.Uses[id]
				}
				v, ok := obj.(*types.Var)
				if !ok || v.IsField() {
					continue
				}
				bindCount[v]++
				if lit, ok := ast.Unparen(s.Rhs[i]).(*ast.FuncLit); ok {
					binds[v] = lit
				} else {
					delete(binds, v)
				}
			}
		case *ast.Ident:
			if v, ok := c.pass.Info.Uses[s].(*types.Var); ok {
				uses[v] = append(uses[v], s)
			}
		}
		return true
	})
	callFuns := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				callFuns[id] = true
			}
		}
		return true
	})
	for v, lit := range binds {
		if bindCount[v] != 1 {
			continue
		}
		onlyCalled := true
		for _, use := range uses[v] {
			if !callFuns[use] {
				onlyCalled = false
				break
			}
		}
		if onlyCalled {
			c.okLits[lit] = true
		}
	}
}

// collectReturnSigs maps each return statement to the result tuple of
// its innermost enclosing function, for return boxing checks.
func (c *allocfreeCheck) collectReturnSigs(body ast.Node) {
	var record func(n ast.Node, results *types.Tuple)
	record = func(n ast.Node, results *types.Tuple) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.FuncLit:
				if sig, ok := c.pass.Info.Types[s].Type.(*types.Signature); ok {
					record(s.Body, sig.Results())
				}
				return false
			case *ast.ReturnStmt:
				c.returnSigs[s] = results
			}
			return true
		})
	}
	var results *types.Tuple
	if c.root.Decl != nil {
		if fn, ok := c.pass.Info.Defs[c.root.Decl.Name].(*types.Func); ok {
			results = fn.Type().(*types.Signature).Results()
		}
	} else if sig, ok := c.pass.Info.Types[c.root.Lit].Type.(*types.Signature); ok {
		results = sig.Results()
	}
	record(body, results)
}

// walk checks every non-exempt node in the subtree.
func (c *allocfreeCheck) walk(body ast.Node) {
	info := c.pass.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if c.exempt[n] {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			if !c.okLits[s] {
				c.reportf(s.Pos(), "allocates: closure creation (the literal escapes; hoist it or bind it to a call-only local)")
				return false
			}
			return true // body checked inline: the literal runs on the hot path
		case *ast.CallExpr:
			c.checkCall(s)
			return true
		case *ast.CompositeLit:
			c.checkComposite(s)
			return true
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
					c.reportf(s.Pos(), "allocates: composite literal escapes via & (heap allocation unless escape analysis intervenes)")
				}
			}
			return true
		case *ast.BinaryExpr:
			if s.Op == token.ADD {
				if t := info.Types[s].Type; t != nil && isStringType(t) {
					c.reportf(s.Pos(), "allocates: string concatenation")
				}
			}
			return true
		case *ast.SelectorExpr:
			return true
		case *ast.AssignStmt:
			c.checkAssign(s)
			return true
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok && c.isMapIndex(idx) {
				c.reportf(s.Pos(), "allocates: map write (may rehash or grow)")
			}
			return true
		case *ast.GoStmt:
			c.reportf(s.Pos(), "allocates: goroutine launch")
			return true
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i, v := range s.Values {
					if t := info.Defs[s.Names[i]]; t != nil {
						c.checkBoxing(t.Type(), v)
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			if results := c.returnSigs[s]; results != nil && results.Len() == len(s.Results) {
				for i, r := range s.Results {
					c.checkBoxing(results.At(i).Type(), r)
				}
			}
			return true
		}
		return true
	})
	c.checkMethodValues(body)
}

// checkMethodValues flags bound method values (x.M used as a value):
// each binds its receiver into a fresh closure.
func (c *allocfreeCheck) checkMethodValues(body ast.Node) {
	calledFuns := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				calledFuns[sel] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if c.exempt[n] {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || calledFuns[sel] {
			return true
		}
		if s, ok := c.pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			c.reportf(sel.Pos(), "allocates: method value %s binds its receiver into a closure", exprString(sel))
		}
		return true
	})
}

// checkCall handles conversions, builtins, callee discipline, and
// implicit boxing at call arguments.
func (c *allocfreeCheck) checkCall(call *ast.CallExpr) {
	info := c.pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(tv.Type, call)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(b.Name(), call)
			return
		}
	}
	c.checkArgBoxing(call)

	edge, ok := c.edges[call.Lparen]
	if !ok {
		c.reportf(call.Pos(), "calls %s, which the call graph cannot resolve; annotate the target or suppress with a reason", exprString(call.Fun))
		return
	}
	switch edge.Kind {
	case EdgeStatic:
		if node, inProgram := c.prog.Funcs[edge.Callee]; inProgram {
			if node.Lit != nil {
				return // a tracked literal: its body is checked inline
			}
			if !node.Allocfree {
				c.reportf(call.Pos(), "calls %s, which is not ghlint:allocfree-annotated", node.Display)
			}
			return
		}
		if !allocfreeWhitelisted(edge.CalleePkg, edge.RecvType, edge.CalleeName) {
			c.reportf(call.Pos(), "calls %s.%s, which is outside the allocfree-verified set (not annotated, not whitelisted)", edge.CalleePkg, edge.CalleeName)
		}
	case EdgeContract:
		// Calls through an annotated func-typed field are trusted; the
		// bindings are verified program-wide (checkContractBindings).
	case EdgeIface:
		if !edge.IfaceAnnotated {
			c.reportf(call.Pos(), "calls %s dynamically through interface %s.(%s); annotate the interface method ghlint:allocfree or suppress with a reason",
				edge.CalleeName, displayKey(edge.CalleePkg), edge.RecvType)
		}
		// Annotated interface methods are trusted here; every
		// in-program implementation is verified by checkContractImpls.
	case EdgeUnknown:
		c.reportf(call.Pos(), "calls %s, which the call graph cannot resolve; annotate the target or suppress with a reason", edge.CalleeName)
	}
}

// checkBuiltin flags the allocating builtins.
func (c *allocfreeCheck) checkBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "make":
		c.reportf(call.Pos(), "allocates: make")
	case "new":
		c.reportf(call.Pos(), "allocates: new")
	case "append":
		if !c.handledAppends[call] && !appendReusesBase(call) {
			c.reportf(call.Pos(), "allocates: append may grow its backing array (reuse a buffer via base[:0] or assign the result back to the base)")
		}
	case "print", "println":
		c.reportf(call.Pos(), "allocates: %s boxes its operands", name)
	}
}

// appendReusesBase reports whether append's base is a slice expression
// of an existing buffer (x[:0], x[a:b]) — reuse by construction. A
// full (three-index) slice expression with a capacity bound of 0 is
// the fresh-copy idiom and does not count.
func appendReusesBase(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	return ok && !se.Slice3
}

// checkConversion flags allocating conversions: string<->[]byte/[]rune
// and boxing conversions to interface types.
func (c *allocfreeCheck) checkConversion(dst types.Type, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	src := c.pass.Info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if isStringType(dst) && !isStringType(src) {
		if _, ok := src.Underlying().(*types.Slice); ok {
			c.reportf(call.Pos(), "allocates: conversion to string copies the slice")
		}
		return
	}
	if _, ok := dst.Underlying().(*types.Slice); ok && isStringType(src) {
		c.reportf(call.Pos(), "allocates: conversion from string copies into a new slice")
		return
	}
	if types.IsInterface(dst) {
		c.checkBoxing(dst, call.Args[0])
	}
}

// checkArgBoxing flags implicit interface boxing of arguments against
// the callee's signature (the fmt.* variadic trap).
func (c *allocfreeCheck) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := c.pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, no boxing
			}
			if s, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.checkBoxing(pt, arg)
		}
	}
}

// checkAssign handles map writes, string +=, append-reuse validation,
// and boxing at assignments.
func (c *allocfreeCheck) checkAssign(s *ast.AssignStmt) {
	info := c.pass.Info
	// Map writes on any LHS.
	for _, lhs := range s.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.isMapIndex(idx) {
			c.reportf(lhs.Pos(), "allocates: map write (may rehash or grow)")
		}
	}
	if s.Tok == token.ADD_ASSIGN {
		if t := info.Types[s.Lhs[0]].Type; t != nil && isStringType(t) {
			c.reportf(s.Pos(), "allocates: string concatenation")
		}
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		// x = append(x, ...): assigning the result back to the base is
		// buffer reuse — growth happens only until steady-state
		// capacity, the same amortization AllocsPerRun pins at zero.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if types.ExprString(ast.Unparen(s.Lhs[i])) == types.ExprString(ast.Unparen(call.Args[0])) {
						c.handledAppends[call] = true
					}
				}
			}
		}
		var dst types.Type
		if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && s.Tok == token.DEFINE {
			if obj := info.Defs[id]; obj != nil {
				dst = obj.Type()
			}
		} else if t := info.Types[s.Lhs[i]].Type; t != nil {
			dst = t
		}
		if dst != nil {
			c.checkBoxing(dst, rhs)
		}
	}
}

// checkBoxing reports an implicit interface conversion that boxes a
// non-pointer-shaped concrete value onto the heap. Pointer-shaped
// values (*T, chan, func, unsafe.Pointer) fit the interface data word
// without allocating; interface-to-interface conversions never
// re-box; untyped nil is free.
func (c *allocfreeCheck) checkBoxing(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.pass.Info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	st := tv.Type
	if types.IsInterface(st) {
		return
	}
	switch st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	c.reportf(src.Pos(), "allocates: interface boxing of %s (concrete %s into %s)", exprString(src), st.String(), dst.String())
}

// isMapIndex reports whether idx indexes a map.
func (c *allocfreeCheck) isMapIndex(idx *ast.IndexExpr) bool {
	t := c.pass.Info.Types[idx.X].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkComposite flags slice and map literals (backing storage is
// allocated). Struct and array literals are values; their escape is
// caught at the &-site.
func (c *allocfreeCheck) checkComposite(lit *ast.CompositeLit) {
	t := c.pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.reportf(lit.Pos(), "allocates: slice literal")
	case *types.Map:
		c.reportf(lit.Pos(), "allocates: map literal")
	}
}

func (c *allocfreeCheck) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "%s is ghlint:allocfree but %s", c.name, fmt.Sprintf(format, args...))
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocfreeWhitelisted vets stdlib callees that perform no allocation
// (or whose allocation amortizes into a caller-reused buffer, for the
// encoding/binary Append family).
func allocfreeWhitelisted(pkgPath, recv, name string) bool {
	switch pkgPath {
	case "math", "math/bits":
		return true
	case "sync":
		switch recv {
		case "Mutex":
			return name == "Lock" || name == "Unlock" || name == "TryLock"
		case "RWMutex":
			return name == "Lock" || name == "Unlock" || name == "RLock" || name == "RUnlock" || name == "TryLock" || name == "TryRLock"
		case "Map":
			return name == "Load"
		}
	case "encoding/binary":
		switch recv {
		case "littleEndian", "bigEndian":
			return strings.HasPrefix(name, "AppendUint") ||
				strings.HasPrefix(name, "PutUint") ||
				strings.HasPrefix(name, "Uint")
		}
	case "errors":
		return name == "Is"
	case "time":
		// Duration's numeric accessors are pure integer arithmetic;
		// Duration.String (which allocates) is deliberately absent.
		if recv == "Duration" {
			switch name {
			case "Hours", "Minutes", "Seconds", "Milliseconds", "Microseconds", "Nanoseconds":
				return true
			}
		}
	}
	return false
}

// checkContractBindings verifies every binding to an allocfree-
// annotated func-typed field in pkg: the bound value must be an
// annotated function, an annotated-field-compatible method, or a
// function literal that itself passes the allocfree body check.
func checkContractBindings(pass *Pass, prog *Program, pkg *Package) {
	if len(prog.contractFields) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fieldKey, ok := selectionFieldKey(pass.Info, sel)
					if !ok {
						continue
					}
					if _, annotated := prog.contractFields[fieldKey]; annotated {
						checkContractValue(pass, prog, pkg, fieldKey, s.Rhs[i])
					}
				}
			case *ast.CompositeLit:
				t := pass.Info.Types[s].Type
				if t == nil {
					return true
				}
				named, ok := derefType(t).(*types.Named)
				if !ok || named.Obj().Pkg() == nil {
					return true
				}
				for _, elt := range s.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					fieldKey := named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + key.Name
					if _, annotated := prog.contractFields[fieldKey]; annotated {
						checkContractValue(pass, prog, pkg, fieldKey, kv.Value)
					}
				}
			}
			return true
		})
	}
}

// selectionFieldKey resolves x.F to its field key when F is a struct
// field.
func selectionFieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	recvName, ok := recvTypeName(s.Recv())
	if !ok {
		return "", false
	}
	return v.Pkg().Path() + ".(" + recvName + ")." + v.Name(), true
}

// checkContractValue verifies one value bound to an annotated field.
func checkContractValue(pass *Pass, prog *Program, pkg *Package, fieldKey string, value ast.Expr) {
	value = ast.Unparen(value)
	display := displayKey(fieldKey)
	if tv, ok := pass.Info.Types[value]; ok && tv.IsNil() {
		return // nil binding: never called, never allocates
	}
	if lit, ok := value.(*ast.FuncLit); ok {
		// The literal becomes the contract body: verify it like an
		// annotated function.
		for _, n := range prog.PackageNodes(pkg) {
			if n.Lit == lit {
				c := newAllocfreeCheck(pass, prog, n)
				c.name = "the literal bound to " + display
				c.check()
				return
			}
		}
		pass.Reportf(value.Pos(), "binding to allocfree contract field %s cannot be verified (literal not in call graph)", display)
		return
	}
	// A function reference or method value.
	var fn *types.Func
	switch v := value.(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[v].(*types.Func)
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[v]; ok && s.Kind() == types.MethodVal {
			fn, _ = s.Obj().(*types.Func)
		} else {
			fn, _ = pass.Info.Uses[v.Sel].(*types.Func)
		}
	}
	if fn != nil {
		if key, ok := funcKey(fn); ok {
			if node, inProgram := prog.Funcs[key]; inProgram {
				if !node.Allocfree {
					pass.Reportf(value.Pos(), "%s is bound to allocfree contract field %s but is not ghlint:allocfree-annotated", node.Display, display)
				}
				return
			}
			pass.Reportf(value.Pos(), "%s is bound to allocfree contract field %s but is outside the analyzed program", displayKey(key), display)
			return
		}
	}
	pass.Reportf(value.Pos(), "binding to allocfree contract field %s cannot be statically verified; bind a named annotated function or a literal", display)
}

// checkContractImpls verifies that every in-program implementation of
// an allocfree-annotated interface method is itself annotated. The
// caller trusts the interface contract; this closes the loop over the
// implementations CHA can see.
func checkContractImpls(pass *Pass, prog *Program, pkg *Package) {
	if len(prog.contractIfaceMethods) == 0 {
		return
	}
	keys := make([]string, 0, len(prog.contractIfaceMethods))
	for k := range prog.contractIfaceMethods {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, ifaceKey := range keys {
		ifaceType, method, ok := splitMethodKey(ifaceKey)
		if !ok {
			continue
		}
		required := prog.ifaceMethods[ifaceType]
		if required == nil {
			continue
		}
		for _, impl := range prog.methodsByName[method] {
			if impl.Pkg != pkg || impl.Allocfree {
				continue
			}
			typeKey := impl.Pkg.Path + "." + impl.recvName()
			if !implementsByName(prog.methodNames[typeKey], required) {
				continue
			}
			pass.Reportf(impl.Decl.Name.Pos(),
				"%s implements %s, which is ghlint:allocfree-annotated; annotate the implementation (or break the interface satisfaction)",
				impl.Display, displayKey(ifaceKey))
		}
	}
}

// splitMethodKey splits "pkg.(T).M" into "pkg.(T)" and "M".
func splitMethodKey(key string) (typeKey, method string, ok bool) {
	i := strings.LastIndex(key, ").")
	if i < 0 {
		return "", "", false
	}
	return key[:i+1], key[i+2:], true
}
