package lint_test

import (
	"testing"

	"greenhetero/internal/lint"
	"greenhetero/internal/lint/linttest"
)

// corePath puts fixtures in deterministic-core scope for the
// package-gated analyzers.
const corePath = "greenhetero/internal/sim"

func TestDeterminismAnalyzer(t *testing.T) {
	linttest.Run(t, lint.DeterminismAnalyzer, corePath,
		"determinism/determinism.go", "determinism/dotimport.go")
}

func TestSeedflowAnalyzer(t *testing.T) {
	linttest.Run(t, lint.SeedflowAnalyzer, corePath, "seedflow/seedflow.go")
}

// TestUnitsAnalyzer proves the dimension-flow engine end to end:
// suffix and annotation seeding, malformed-annotation findings, static
// and interface call-boundary mismatches, laundering through neutral
// parameters, locals, and fields, the multiplicative conversion
// triangle staying silent, and reasoned suppression.
func TestUnitsAnalyzer(t *testing.T) {
	linttest.Run(t, lint.UnitsAnalyzer, corePath, "units/units.go")
}

// TestUnitsKeepsUnitsafetyFixtureGreen pins the retirement contract:
// the old local analyzer's fixture passes unchanged wants under the
// interprocedural engine — every mix it caught is still caught, every
// legal conversion is still silent.
func TestUnitsKeepsUnitsafetyFixtureGreen(t *testing.T) {
	linttest.Run(t, lint.UnitsAnalyzer, corePath, "unitsafety/unitsafety.go")
}

// TestUnitsLaunderRegression replays the laundering shape that
// motivated the engine (a W value read into a neutral local, then
// handed to a helper that adds it to a Wh value) and proves units
// reports it where the retired suffix-only unitsafety pass — run here
// against the very same fixture — sees nothing.
func TestUnitsLaunderRegression(t *testing.T) {
	linttest.Run(t, lint.UnitsAnalyzer, corePath, "units/launder.go")

	pkg, err := lint.LoadFiles(corePath, "testdata/units/launder.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, d := range lint.RunPackage(pkg, []*lint.Analyzer{lint.UnitsafetyAnalyzer}) {
		t.Errorf("retired unitsafety unexpectedly reports the laundered mix: [%s] %s — the regression fixture no longer proves the gap", d.Analyzer, d.Message)
	}
}

// TestChanboundAnalyzer proves the bounded-concurrency contract:
// capacity-less makes, sends without an escape, select default and
// cancellation escapes, mayblock contracts, and dead or reasonless
// directives.
func TestChanboundAnalyzer(t *testing.T) {
	linttest.Run(t, lint.ChanboundAnalyzer, "greenhetero/internal/telemetry", "chanbound/chanbound.go")
}

// TestChanboundGatedOutsideScope verifies the backpressure-scope gate:
// the same violation-dense fixture loaded under a deterministic-core
// path must produce nothing — the contract binds telemetry and daemon
// only until the rest of the repo migrates.
func TestChanboundGatedOutsideScope(t *testing.T) {
	pkg, err := lint.LoadFiles(corePath, "testdata/chanbound/chanbound.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, d := range lint.RunPackage(pkg, []*lint.Analyzer{lint.ChanboundAnalyzer}) {
		t.Errorf("unexpected diagnostic outside the backpressure scope: [%s] %s", d.Analyzer, d.Message)
	}
}

func TestFloateqAnalyzer(t *testing.T) {
	linttest.Run(t, lint.FloateqAnalyzer, corePath, "floateq/floateq.go")
}

func TestGuardedbyAnalyzer(t *testing.T) {
	linttest.Run(t, lint.GuardedbyAnalyzer, corePath, "guardedby/guardedby.go")
}

// TestGuardedbyDaemonRaceRegression replays the PR 3 daemon race shape
// (session stepped between Unlock and re-Lock) and proves guardedby
// reports it while the shipped fix stays clean.
func TestGuardedbyDaemonRaceRegression(t *testing.T) {
	linttest.Run(t, lint.GuardedbyAnalyzer, "greenhetero/internal/daemon", "guardedby/daemonrace.go")
}

func TestGoleakAnalyzer(t *testing.T) {
	linttest.Run(t, lint.GoleakAnalyzer, corePath, "goleak/goleak.go")
}

func TestDefercloseAnalyzer(t *testing.T) {
	linttest.Run(t, lint.DefercloseAnalyzer, "greenhetero/internal/telemetry", "deferclose/deferclose.go")
}

// TestFlowAnalyzersRunEverywhere pins that the flow-sensitive analyzers
// are not package-gated: the same racy fixture fires even under a
// wall-clock-allowed import path.
func TestFlowAnalyzersRunEverywhere(t *testing.T) {
	linttest.Run(t, lint.GuardedbyAnalyzer, "greenhetero/internal/faultnet", "guardedby/daemonrace.go")
}

// taintutilDep is the shared fixture dependency for the
// interprocedural suites: a real importable package under testdata/
// holding a laundered wall-clock chain, an annotated leaf, and an
// allocating helper.
var taintutilDep = linttest.Dep{
	Path:  "greenhetero/internal/lint/testdata/taintutil",
	Files: []string{"taintutil/taintutil.go"},
}

// TestAllocfreeFixtures proves the allocfree contract end to end:
// every allocation-site class, the cold-path exemptions, callee
// discipline (annotated, whitelisted, cross-package, dynamic), the
// hidden-allocation regression, and the interface/field contracts.
func TestAllocfreeFixtures(t *testing.T) {
	linttest.RunWithDeps(t, lint.AllocfreeAnalyzer, corePath,
		[]string{"allocfree/allocfree.go", "allocfree/contract.go"},
		taintutilDep)
}

// TestDettaintFixtures proves the transitive-determinism pass: a core
// function laundering time.Now through a helper package is flagged at
// the frontier call with the full chain named, core→core indirection
// is not double-reported, clean helpers stay silent, and reasoned
// suppressions apply.
func TestDettaintFixtures(t *testing.T) {
	linttest.RunWithDeps(t, lint.DettaintAnalyzer, corePath,
		[]string{"dettaint/laundered.go"},
		taintutilDep)
}

// TestSuppression pins the directive contract end to end: exact-line,
// exact-analyzer silencing, and malformed directives reported.
func TestSuppression(t *testing.T) {
	linttest.Run(t, lint.DeterminismAnalyzer, corePath, "suppress/suppress.go")
}

// TestAnalyzersGatedOutsideCore verifies the package gate itself: the
// determinism fixture is full of violations, but loaded under an
// allowlisted wall-clock path none of them may fire (the malformed
// directives in other fixtures are absent here, and the fixture's
// well-formed suppression is simply unused).
func TestAnalyzersGatedOutsideCore(t *testing.T) {
	pkg, err := lint.LoadFiles("greenhetero/internal/telemetry", "testdata/determinism/determinism.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.RunPackage(pkg, []*lint.Analyzer{lint.DeterminismAnalyzer, lint.SeedflowAnalyzer})
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside the core: [%s] %s", d.Analyzer, d.Message)
	}
}
