package lint_test

import (
	"testing"

	"greenhetero/internal/lint"
	"greenhetero/internal/lint/linttest"
)

// corePath puts fixtures in deterministic-core scope for the
// package-gated analyzers.
const corePath = "greenhetero/internal/sim"

func TestDeterminismAnalyzer(t *testing.T) {
	linttest.Run(t, lint.DeterminismAnalyzer, corePath,
		"determinism/determinism.go", "determinism/dotimport.go")
}

func TestSeedflowAnalyzer(t *testing.T) {
	linttest.Run(t, lint.SeedflowAnalyzer, corePath, "seedflow/seedflow.go")
}

func TestUnitsafetyAnalyzer(t *testing.T) {
	linttest.Run(t, lint.UnitsafetyAnalyzer, corePath, "unitsafety/unitsafety.go")
}

func TestFloateqAnalyzer(t *testing.T) {
	linttest.Run(t, lint.FloateqAnalyzer, corePath, "floateq/floateq.go")
}

// TestSuppression pins the directive contract end to end: exact-line,
// exact-analyzer silencing, and malformed directives reported.
func TestSuppression(t *testing.T) {
	linttest.Run(t, lint.DeterminismAnalyzer, corePath, "suppress/suppress.go")
}

// TestAnalyzersGatedOutsideCore verifies the package gate itself: the
// determinism fixture is full of violations, but loaded under an
// allowlisted wall-clock path none of them may fire (the malformed
// directives in other fixtures are absent here, and the fixture's
// well-formed suppression is simply unused).
func TestAnalyzersGatedOutsideCore(t *testing.T) {
	pkg, err := lint.LoadFiles("greenhetero/internal/telemetry", "testdata/determinism/determinism.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.RunPackage(pkg, []*lint.Analyzer{lint.DeterminismAnalyzer, lint.SeedflowAnalyzer})
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside the core: [%s] %s", d.Analyzer, d.Message)
	}
}
