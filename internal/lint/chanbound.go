package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanboundAnalyzer enforces the bounded-concurrency contract the
// telemetry-scale refactor (ROADMAP item 4) will be built under:
// "backpressure instead of unbounded queues" is only a slogan until
// every channel in the collector plane has a reasoned size and every
// send has a provable way out.
//
// Two rules, enforced over the backpressure scope (internal/telemetry
// and internal/daemon):
//
//  1. Every `make(chan T)` must pass an explicit capacity, or carry a
//     reasoned `// ghlint:unbounded <reason>` directive (trailing on the
//     make's line, or standalone on the line above). A zero-capacity
//     channel is a rendezvous — every send blocks until a receiver is
//     ready — which is exactly right for close-only signal channels and
//     exactly wrong for a data queue; the directive records which one
//     this is.
//
//  2. Every send statement needs a provable non-blocking escape:
//     a select with a `default` clause (drop/shed path), a select with
//     a cancellation receive case (`<-x.Done()` — the send aborts on
//     shutdown), or a reasoned `ghlint:mayblock <reason>` contract —
//     either a line directive at the send or a doc-comment contract on
//     the enclosing declared function, for functions whose whole job is
//     a blocking handoff.
//
// Directives are themselves checked: a missing reason is malformed (a
// suppression without a recorded justification never silently widens the
// blind spot), and an unbounded/mayblock line directive whose line has
// no matching make/send is dead and reported — a directive that drifted
// away from its statement would otherwise re-arm the hazard invisibly.
var ChanboundAnalyzer = &Analyzer{
	Name: "chanbound",
	Doc: "bounded-concurrency contracts for the telemetry plane: every " +
		"make(chan) needs an explicit capacity or a reasoned " +
		"ghlint:unbounded directive, and every send needs a non-blocking " +
		"escape (select default, cancellation case, or ghlint:mayblock " +
		"contract)",
	Run: runChanbound,
}

const (
	unboundedMarker = "ghlint:unbounded"
	mayblockMarker  = "ghlint:mayblock"
)

// chanDirective is one ghlint:unbounded / ghlint:mayblock line
// directive, indexed by the code line it governs.
type chanDirective struct {
	pos    token.Pos
	reason string
	used   bool
}

func runChanbound(pass *Pass) {
	if !backpressureScope[pkgKey(pass.Path)] {
		return
	}
	for _, f := range pass.Files {
		docGroups := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docGroups[fd.Doc] = true
			}
		}
		unbounded, mayblock := collectChanDirectives(pass, f, docGroups)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			docMayblock := funcMayblockContract(pass, fd)
			w := &chanWalker{
				pass:      pass,
				unbounded: unbounded,
				mayblock:  mayblock,
				contract:  docMayblock,
			}
			w.walk(fd.Body, nil)
		}
		for _, lineDirs := range []map[int]*chanDirective{unbounded, mayblock} {
			for _, d := range lineDirs {
				if !d.used && d.reason != "" {
					pass.Reportf(d.pos,
						"dead directive: no matching statement on the governed line; move it next to the make/send it justifies")
				}
			}
		}
	}
}

// funcMayblockContract checks fd's doc comment for a ghlint:mayblock
// contract, reporting a malformed (reasonless) one.
func funcMayblockContract(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		arg, ok := directiveArg(c, mayblockMarker)
		if !ok {
			continue
		}
		if trimWantMarker(arg) == "" {
			pass.Reportf(c.Pos(),
				"malformed %s contract: missing reason — record why %s is allowed to block", mayblockMarker, fd.Name.Name)
			return false
		}
		return true
	}
	return false
}

// collectChanDirectives indexes a file's unbounded/mayblock line
// directives by governed line (trailing → own line, standalone → next
// line, same placement rules as suppressions) and reports reasonless
// ones as malformed. Function doc comments are excluded: a mayblock
// marker there is a function contract (funcMayblockContract), not a
// line directive.
func collectChanDirectives(pass *Pass, f *ast.File, docGroups map[*ast.CommentGroup]bool) (unbounded, mayblock map[int]*chanDirective) {
	unbounded = make(map[int]*chanDirective)
	mayblock = make(map[int]*chanDirective)
	codeLines := codeLineSet(pass.Fset, f)
	for _, cg := range f.Comments {
		if docGroups[cg] {
			continue
		}
		for _, c := range cg.List {
			for marker, into := range map[string]map[int]*chanDirective{
				unboundedMarker: unbounded,
				mayblockMarker:  mayblock,
			} {
				arg, ok := directiveArg(c, marker)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				target := pos.Line + 1
				if codeLines[pos.Line] {
					target = pos.Line
				}
				d := &chanDirective{pos: c.Pos(), reason: trimWantMarker(arg)}
				if d.reason == "" {
					pass.Reportf(c.Pos(),
						"malformed %s directive: missing reason — record why", marker)
					d.used = true // malformed already reported; not also dead
				}
				into[target] = d
			}
		}
	}
	return unbounded, mayblock
}

// trimWantMarker strips a fixture harness "// want ..." annotation from
// a directive argument so fixtures can carry both on one line.
func trimWantMarker(arg string) string {
	if i := strings.Index(arg, "// want"); i >= 0 {
		arg = arg[:i]
	}
	return strings.TrimSpace(arg)
}

// selectInfo describes the select statement enclosing a send case.
type selectInfo struct {
	hasDefault bool
	hasCancel  bool
}

// chanWalker walks one function body applying both rules. The enclosing
// select (for send cases) is threaded through the walk; function
// literals inherit the declared function's mayblock doc contract — the
// literal lexically lives inside the contract's scope.
type chanWalker struct {
	pass      *Pass
	unbounded map[int]*chanDirective
	mayblock  map[int]*chanDirective
	contract  bool
}

func (w *chanWalker) walk(n ast.Node, sel *selectInfo) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			w.checkMake(s)
		case *ast.SendStmt:
			w.checkSend(s, sel)
			// Channel and value expressions may contain nested makes.
			w.walk(s.Chan, sel)
			w.walk(s.Value, sel)
			return false
		case *ast.SelectStmt:
			info := classifySelect(s)
			for _, clause := range s.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					w.walk(cc.Comm, &info)
				}
				for _, stmt := range cc.Body {
					// The case body runs after the communication won;
					// sends inside it are ordinary sends again.
					w.walk(stmt, nil)
				}
			}
			return false
		}
		return true
	})
}

// classifySelect finds the escape clauses of a select: a default case,
// or a cancellation receive (`<-x.Done()` / `<-ctx.Done()`).
func classifySelect(s *ast.SelectStmt) selectInfo {
	var info selectInfo
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			info.hasDefault = true
			continue
		}
		if recvFromDone(cc.Comm) {
			info.hasCancel = true
		}
	}
	return info
}

// recvFromDone reports whether a comm clause receives from a zero-arg
// .Done() call — the context/stop-channel cancellation idiom.
func recvFromDone(comm ast.Stmt) bool {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	unary, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || unary.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(unary.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// checkMake applies rule 1 to a make(chan …) call.
func (w *chanWalker) checkMake(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := w.pass.Info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "make" || len(call.Args) == 0 {
		return
	}
	tv, ok := w.pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	line := w.pass.Fset.Position(call.Pos()).Line
	d := w.unbounded[line]
	if len(call.Args) >= 2 {
		if d != nil && !d.used {
			d.used = true
			w.pass.Reportf(d.pos,
				"dead %s directive: this make(chan) already has an explicit capacity", unboundedMarker)
		}
		return
	}
	if d != nil {
		d.used = true
		return
	}
	w.pass.Reportf(call.Pos(),
		"make(chan) without an explicit capacity: a zero-capacity channel blocks every send until a receiver is ready; size it for backpressure or justify with // %s <reason>", unboundedMarker)
}

// checkSend applies rule 2 to one send statement. A mayblock line
// directive on a send that already has an escape is claimed (and
// reported as dead) here, mirroring checkMake's redundant-directive
// report — otherwise the end-of-file sweep would mis-describe it as
// having no matching statement.
func (w *chanWalker) checkSend(s *ast.SendStmt, sel *selectInfo) {
	line := w.pass.Fset.Position(s.Pos()).Line
	d := w.mayblock[line]
	if sel != nil && (sel.hasDefault || sel.hasCancel) {
		if d != nil && !d.used {
			d.used = true
			w.pass.Reportf(d.pos,
				"dead %s directive: this send already has a non-blocking escape in its select", mayblockMarker)
		}
		return
	}
	if w.contract {
		if d != nil && !d.used {
			d.used = true
			w.pass.Reportf(d.pos,
				"dead %s directive: the enclosing function's %s contract already covers this send", mayblockMarker, mayblockMarker)
		}
		return
	}
	if d != nil {
		d.used = true
		return
	}
	w.pass.Reportf(s.Arrow,
		"send on %q has no non-blocking escape: wrap it in a select with a default or cancellation case, or contract the blocking handoff with // %s <reason>", exprString(s.Chan), mayblockMarker)
}
