package lint

// cfg.go builds per-function control-flow graphs — the substrate for the
// flow-sensitive analyzers (guardedby, deferclose). The statement-local
// analyzers of the original suite (determinism, seedflow, floateq, and
// the since-retired unitsafety) ask "does this expression appear?"; the
// concurrency analyzers
// must ask "is the lock held *on every path reaching this access?*",
// and that question only makes sense over a graph of basic blocks.
//
// The builder covers the structured-control subset of Go: if/else,
// for (all three forms), range, switch, type switch, select,
// break/continue (labeled and unlabeled), fallthrough, return, and
// calls that provably do not return (panic, os.Exit, log.Fatal*).
// goto is rare enough in this repository (absent, in fact) that the
// builder marks the graph unsupported instead of modelling it;
// analyzers skip such functions rather than risk wrong answers.
//
// Node granularity is the statement (plus conditions and range/switch
// header expressions as standalone nodes), which matches how locks are
// used in Go: a Lock call is its own ExprStmt, so per-statement states
// are exactly lock-acquisition states. Function literals are *excluded*
// from their enclosing graph — a closure runs at an unknowable time, so
// each FuncLit gets its own CFG and its own analysis.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: a maximal straight-line node sequence.
type cfgBlock struct {
	index int
	nodes []ast.Node // statements and header expressions, in eval order
	succs []*cfgBlock
	preds []*cfgBlock
}

// funcCFG is one function body's control-flow graph.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit is the synthetic exit block: returns, panics, and the body's
	// fallthrough end all edge here. It holds no nodes.
	exit *cfgBlock
	// unsupported is set when the body uses control flow the builder
	// does not model (goto); flow-sensitive analyzers should skip the
	// function rather than report from a wrong graph.
	unsupported bool
}

// branchFrame is one enclosing breakable/continuable construct.
type branchFrame struct {
	label string    // enclosing label, "" if none
	brk   *cfgBlock // break target (loops, switch, select)
	cont  *cfgBlock // continue target (loops only, nil otherwise)
}

// cfgBuilder carries the in-progress graph.
type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock
	frames []branchFrame
	// pendingLabel is the label of a LabeledStmt whose inner statement
	// is about to be built; loops and switches consume it.
	pendingLabel string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmt(body)
	b.edge(b.cur, b.g.exit) // implicit return at the end of the body
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	bl := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.nodes = append(b.cur.nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// deadEnd parks the builder on a fresh block with no predecessors:
// statements after a return/branch are unreachable, and a predecessor-
// less block's dataflow state is TOP, so nothing in dead code is ever
// reported.
func (b *cfgBuilder) deadEnd() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // condition false
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		body := b.newBlock()
		b.edge(head, body)
		b.frames = append(b.frames, branchFrame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, cont)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X) // the ranged-over expression is evaluated once
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		b.edge(head, after) // range exhausted
		body := b.newBlock()
		b.edge(head, body)
		b.frames = append(b.frames, branchFrame{label: label, brk: after, cont: head})
		b.cur = body
		// Key/Value targets are assigned per iteration; surface them for
		// the access classifiers (selector targets here are exotic but
		// legal Go).
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, branchFrame{label: label, brk: after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no cases blocks forever: after then has no
		// predecessors, which is exactly "unreachable".
		b.cur = after
	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			// Not modelled: mark the graph unsupported and route to exit
			// so the block structure stays well formed.
			b.g.unsupported = true
			b.edge(b.cur, b.g.exit)
			b.deadEnd()
		case token.FALLTHROUGH:
			// Handled inside switchStmt (it needs the next clause); a
			// fallthrough reaching here would be invalid Go anyway.
		default: // break, continue
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t := b.branchTarget(s.Tok, label); t != nil {
				b.edge(b.cur, t)
			} else {
				b.g.unsupported = true
			}
			b.deadEnd()
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.deadEnd()
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.edge(b.cur, b.g.exit)
			b.deadEnd()
		}
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

// switchStmt builds value and type switches. Each case guard gets its
// own block (so a fallthrough path does not re-evaluate the next
// clause's guard expressions), bodies are prebuilt as blocks to give
// fallthrough a target, and a missing default adds the no-match edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	clauses := body.List
	starts := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		starts[i] = b.newBlock()
	}
	b.frames = append(b.frames, branchFrame{label: label, brk: after})
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if len(cc.List) == 0 {
			hasDefault = true
			b.edge(head, starts[i])
		} else {
			guard := b.newBlock()
			b.edge(head, guard)
			for _, e := range cc.List {
				guard.nodes = append(guard.nodes, e)
			}
			b.edge(guard, starts[i])
		}
		b.cur = starts[i]
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauses) {
					b.edge(b.cur, starts[i+1])
				}
				b.deadEnd()
				continue
			}
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// branchTarget resolves break/continue against the frame stack.
func (b *cfgBuilder) branchTarget(tok token.Token, label string) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		switch tok {
		case token.BREAK:
			if f.brk != nil {
				return f.brk
			}
		case token.CONTINUE:
			if f.cont != nil {
				return f.cont
			}
		}
		if label != "" {
			return nil // labeled the wrong kind of construct
		}
	}
	return nil
}

// isTerminatingCall reports whether a call provably never returns, by
// name: the panic builtin, os.Exit, and the log.Fatal family. This is a
// syntactic check (no type resolution) — a user-defined panic shadow
// would be misclassified, but the deterministic core forbids shadowing
// builtins by convention and the cost of a miss is only a spurious CFG
// edge.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}

// unparen strips parentheses. (ast.Unparen exists from go1.22, but a
// local helper keeps the floor explicit and costs three lines.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// inspectSync walks n in evaluation-relevant order for the flow
// analyzers, skipping constructs that do not execute synchronously at
// this program point: function-literal bodies (their own CFG), deferred
// calls (they run at exit), and go statements' calls (they run on
// another goroutine; argument evaluation is synchronous, so arguments
// are still visited).
func inspectSync(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.GoStmt:
			for _, arg := range x.Call.Args {
				inspectSync(arg, visit)
			}
			return false
		}
		return visit(x)
	})
}
