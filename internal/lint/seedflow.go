package lint

import (
	"go/ast"
	"strings"
)

// SeedflowAnalyzer polices how RNG seeds flow through the deterministic
// core. Every rand.NewSource (or rand.New, math/rand/v2 NewPCG, …) seed
// must be traceable to either runner.DeriveSeed or a configuration Seed
// field. Ad-hoc seed arithmetic — `baseSeed + int64(i)`, a literal, a
// hash rolled inline — is exactly how correlated noise streams sneak
// into fan-outs: two runs whose seeds differ by a small offset produce
// statistically dependent noise, which quietly biases paired-policy
// comparisons (the EPU deltas the paper's tables hinge on).
var SeedflowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc: "require RNG seeds in the deterministic core to come from " +
		"runner.DeriveSeed or a config Seed field, never inline seed " +
		"arithmetic or literals that correlate fan-out noise streams",
	Run: runSeedflow,
}

// seedConstructors maps rand package → the constructor functions whose
// arguments are seeds.
var seedConstructors = map[string]map[string]bool{
	"math/rand":    {"NewSource": true},
	"math/rand/v2": {"NewPCG": true, "NewSource": true},
}

func runSeedflow(pass *Pass) {
	if !IsDeterministicCore(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pkgQualifiedCall(pass.Info, call)
			if !seedConstructors[pkgPath][fn] {
				return true
			}
			for _, arg := range call.Args {
				if !seedDerived(pass, arg) {
					pass.Reportf(arg.Pos(),
						"seed for %s.%s is not derived from runner.DeriveSeed or a Seed config field; ad-hoc seeds correlate fan-out noise streams (derive child seeds with runner.DeriveSeed(parentSeed, stableKey))",
						pkgPath, fn)
				}
			}
			return true
		})
	}
}

// seedDerived reports whether expr is an acceptable seed expression:
// a call to (anything.)DeriveSeed, a selector or identifier whose name
// is Seed-suffixed (cfg.Seed, childSeed), possibly wrapped in
// parentheses or a type conversion (int64(cfg.Seed), uint64(seed)).
func seedDerived(pass *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return seedDerived(pass, e.X)
	case *ast.CallExpr:
		// Type conversions are transparent: int64(x) is as good as x.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return seedDerived(pass, e.Args[0])
		}
		return calleeName(e) == "DeriveSeed"
	case *ast.SelectorExpr:
		return isSeedName(e.Sel.Name)
	case *ast.Ident:
		return isSeedName(e.Name)
	}
	return false
}

// isSeedName reports whether an identifier names a seed by convention.
func isSeedName(name string) bool {
	return name == "Seed" || name == "seed" ||
		strings.HasSuffix(name, "Seed") || strings.HasSuffix(name, "seed")
}

// calleeName extracts the terminal name of a call's function: DeriveSeed
// for both runner.DeriveSeed(...) and a local DeriveSeed(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
