package lint

import (
	"go/ast"
	"strings"
)

// SeedflowAnalyzer polices how RNG seeds flow through the deterministic
// core. Every rand.NewSource (or rand.New, math/rand/v2 NewPCG, …) seed
// must be traceable to either runner.DeriveSeed or a configuration Seed
// field. Ad-hoc seed arithmetic — `baseSeed + int64(i)`, a literal, a
// hash rolled inline — is exactly how correlated noise streams sneak
// into fan-outs: two runs whose seeds differ by a small offset produce
// statistically dependent noise, which quietly biases paired-policy
// comparisons (the EPU deltas the paper's tables hinge on).
var SeedflowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc: "require RNG seeds in the deterministic core to come from " +
		"runner.DeriveSeed or a config Seed field, never inline seed " +
		"arithmetic or literals that correlate fan-out noise streams",
	Run: runSeedflow,
}

// seedConstructors maps rand package → the constructor functions whose
// arguments are seeds.
var seedConstructors = map[string]map[string]bool{
	"math/rand":    {"NewSource": true},
	"math/rand/v2": {"NewPCG": true, "NewSource": true},
}

func runSeedflow(pass *Pass) {
	if !IsDeterministicCore(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pkgQualifiedCall(pass.Info, call)
			if !seedConstructors[pkgPath][fn] {
				return true
			}
			for _, arg := range call.Args {
				if !seedDerived(pass, arg, true) {
					pass.Reportf(arg.Pos(),
						"seed for %s.%s is not derived from runner.DeriveSeed or a Seed config field; ad-hoc seeds correlate fan-out noise streams (derive child seeds with runner.DeriveSeed(parentSeed, stableKey))",
						pkgPath, fn)
				}
			}
			return true
		})
	}
}

// seedDerived reports whether expr is an acceptable seed expression:
// a call to (anything.)DeriveSeed, a selector whose field name is
// Seed-suffixed (cfg.Seed), or a Seed-named identifier, possibly
// wrapped in parentheses or a type conversion (int64(cfg.Seed)).
//
// A Seed-suffixed name alone is not trusted: when trace is set, a local
// identifier with a single-assignment initializer is judged by that
// initializer instead, so `badSeed := cfg.Seed + int64(i)` cannot
// launder inline seed arithmetic through a flattering name. The trace
// is one step deep — an identifier reached through another identifier,
// or one whose declaration cannot be seen (a parameter, a field, a
// multi-value assignment, a later reassignment), falls back to the
// name convention.
func seedDerived(pass *Pass, expr ast.Expr, trace bool) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return seedDerived(pass, e.X, trace)
	case *ast.CallExpr:
		// Type conversions are transparent: int64(x) is as good as x.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return seedDerived(pass, e.Args[0], trace)
		}
		return calleeName(e) == "DeriveSeed"
	case *ast.SelectorExpr:
		return isSeedName(e.Sel.Name)
	case *ast.Ident:
		if trace {
			if init := identInitializer(e); init != nil {
				return seedDerived(pass, init, false)
			}
		}
		return isSeedName(e.Name)
	}
	return false
}

// identInitializer returns the expression a locally declared identifier
// was initialized with (`x := expr` or `var x = expr`), or nil when the
// declaration is out of reach: a parameter, a struct field, a spec with
// no value, or a multi-value assignment whose components cannot be
// paired positionally.
func identInitializer(id *ast.Ident) ast.Expr {
	if id.Obj == nil {
		return nil
	}
	switch decl := id.Obj.Decl.(type) {
	case *ast.AssignStmt:
		if len(decl.Lhs) != len(decl.Rhs) {
			return nil
		}
		for i, lhs := range decl.Lhs {
			if li, ok := lhs.(*ast.Ident); ok && li.Obj == id.Obj {
				return decl.Rhs[i]
			}
		}
	case *ast.ValueSpec:
		if len(decl.Values) != len(decl.Names) {
			return nil
		}
		for i, name := range decl.Names {
			if name.Obj == id.Obj {
				return decl.Values[i]
			}
		}
	}
	return nil
}

// isSeedName reports whether an identifier names a seed by convention.
func isSeedName(name string) bool {
	return name == "Seed" || name == "seed" ||
		strings.HasSuffix(name, "Seed") || strings.HasSuffix(name, "seed")
}

// calleeName extracts the terminal name of a call's function: DeriveSeed
// for both runner.DeriveSeed(...) and a local DeriveSeed(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
