package lint

// deferclose verifies that OS-backed resources — sockets, listeners,
// files — are closed (or deliberately handed off) on every control-flow
// path from their acquisition to the function's exit. The acquisition
// set is the repo's actual surface: net.Dial/DialTimeout/Listen* and
// os.Open/Create/OpenFile, plus the (net.Dialer).Dial* methods the
// telemetry transport uses.
//
// The check is a CFG reachability question, not a "is there a defer
// Close" pattern match: starting just after the acquisition, every path
// must hit a statement that *mentions* the resource variable before
// reaching the exit. Mentioning is the deliberately coarse kill — a
// defer conn.Close() is a mention, but so is returning the resource,
// storing it in a struct, or passing it to another function, all of
// which transfer ownership somewhere this analyzer cannot follow.
// What survives that generosity is exactly the embarrassing bug: a
// path that acquires a socket and then forgets it entirely. Two shapes
// are excluded from "forgetting":
//
//   - nil-comparisons (`if conn != nil`) are not mentions — testing a
//     handle is not disposing of it;
//   - an early return lexically inside an `if` whose condition involves
//     the acquisition's error variable is exempt: on the error path the
//     resource is nil and there is nothing to close.
//
// Terminating calls (panic, os.Exit, log.Fatal*) end a path without
// complaint — os.Exit skips deferred closes anyway, and the kernel
// reaps the descriptors.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefercloseAnalyzer is the resource-leak analyzer.
var DefercloseAnalyzer = &Analyzer{
	Name: "deferclose",
	Doc: "resources acquired from net.Dial/Listen and os.Open must be " +
		"closed, returned, or stored on every control-flow path; a path " +
		"that forgets the handle leaks a descriptor",
	Run: runDeferclose,
}

// acquirerFuncs are the package-level acquisition functions.
var acquirerFuncs = map[string]map[string]bool{
	"net": {
		"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
		"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenPacket": true,
	},
	"os": {
		"Open": true, "Create": true, "OpenFile": true,
	},
}

// acquirerMethods are acquisition methods, keyed by receiver type.
var acquirerMethods = map[string]map[string]bool{
	"net.Dialer": {"Dial": true, "DialContext": true},
}

func runDeferclose(pass *Pass) {
	for _, file := range pass.Files {
		eachFuncBody(file, func(body *ast.BlockStmt) {
			checkDefercloseBody(pass, body)
		})
	}
}

// acquisitionCall reports whether call acquires a closeable resource,
// returning a short name for the diagnostic.
func acquisitionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if pkg, fn := pkgQualifiedCall(info, call); pkg != "" {
		if fns, ok := acquirerFuncs[pkg]; ok && fns[fn] {
			return pkg + "." + fn, true
		}
		return "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named, ok := derefType(recv.Type()).(*types.Named)
	if !ok {
		return "", false
	}
	key := fn.Pkg().Path() + "." + named.Obj().Name()
	if ms, ok := acquirerMethods[key]; ok && ms[sel.Sel.Name] {
		return "(" + key + ")." + sel.Sel.Name, true
	}
	return "", false
}

// acquisition is one resource-producing assignment inside a CFG.
type acquisition struct {
	assign *ast.AssignStmt
	what   string       // e.g. "net.Dial", for the diagnostic
	res    types.Object // the resource variable
	errObj types.Object // the paired error variable, nil if discarded
	block  *cfgBlock    // block containing the assignment
	idx    int          // index of the assignment within block.nodes
}

func checkDefercloseBody(pass *Pass, body *ast.BlockStmt) {
	g := buildCFG(body)
	if g.unsupported {
		return
	}
	var acqs []acquisition
	for _, bl := range g.blocks {
		for i, n := range bl.nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			what, ok := acquisitionCall(pass.Info, call)
			if !ok {
				continue
			}
			res := assignedObj(pass.Info, as, 0)
			if res == nil {
				continue // blank or non-ident target: nothing to track
			}
			acqs = append(acqs, acquisition{
				assign: as, what: what, res: res,
				errObj: assignedObj(pass.Info, as, 1),
				block:  bl, idx: i,
			})
		}
	}
	if len(acqs) == 0 {
		return
	}
	exempt := exemptReturns(pass.Info, body, acqs)
	for _, a := range acqs {
		if leakPath(pass.Info, g, a, exempt[a.res]) {
			pass.Reportf(a.assign.Pos(), "%s result %s is not closed on every path (missing `defer %s.Close()`?)",
				a.what, a.res.Name(), a.res.Name())
		}
	}
}

// assignedObj resolves the i'th assignment target to its object.
func assignedObj(info *types.Info, as *ast.AssignStmt, i int) types.Object {
	if i >= len(as.Lhs) {
		return nil
	}
	id, ok := unparen(as.Lhs[i]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// exemptReturns collects, per resource, the returns lexically inside an
// if whose condition involves the paired error variable (or nil-tests
// the resource): the error path holds no resource.
func exemptReturns(info *types.Info, body *ast.BlockStmt, acqs []acquisition) map[types.Object]map[*ast.ReturnStmt]bool {
	out := make(map[types.Object]map[*ast.ReturnStmt]bool)
	for _, a := range acqs {
		set := make(map[*ast.ReturnStmt]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			guardsErr := a.errObj != nil && mentionsAtAll(info, ifs.Cond, a.errObj)
			nilTestsRes := usesOnlyInNilCompare(info, ifs.Cond, a.res)
			if !guardsErr && !nilTestsRes {
				return true
			}
			ast.Inspect(ifs.Body, func(m ast.Node) bool {
				if r, ok := m.(*ast.ReturnStmt); ok {
					set[r] = true
				}
				return true
			})
			return true
		})
		out[a.res] = set
	}
	return out
}

// usesOnlyInNilCompare reports whether cond mentions res and only via
// nil-comparisons.
func usesOnlyInNilCompare(info *types.Info, cond ast.Expr, res types.Object) bool {
	return mentionsAtAll(info, cond, res) && !mentions(info, cond, res)
}

// mentionsAtAll reports any identifier use of obj under n.
func mentionsAtAll(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentions reports whether n uses obj outside of nil-comparisons.
func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if be, ok := x.(*ast.BinaryExpr); ok && isNilCompare(info, be, obj) {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isNilCompare reports whether be is `obj == nil` or `obj != nil` (in
// either operand order).
func isNilCompare(info *types.Info, be *ast.BinaryExpr, obj types.Object) bool {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return false
	}
	isObj := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && info.ObjectOf(id) == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isObj(be.X) && isNil(be.Y)) || (isNil(be.X) && isObj(be.Y))
}

// leakPath reports whether some path from just after the acquisition
// reaches the function exit without ever mentioning the resource.
func leakPath(info *types.Info, g *funcCFG, a acquisition, exempt map[*ast.ReturnStmt]bool) bool {
	visited := make(map[*cfgBlock]bool)
	var fromBlock func(bl *cfgBlock, start int) bool
	fromBlock = func(bl *cfgBlock, start int) bool {
		for i := start; i < len(bl.nodes); i++ {
			n := bl.nodes[i]
			if r, ok := n.(*ast.ReturnStmt); ok {
				if exempt[r] || mentions(info, r, a.res) {
					return false
				}
				return true // returning without disposing
			}
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, isCall := es.X.(*ast.CallExpr); isCall && isTerminatingCall(call) {
					return false // crash path; descriptors die with us
				}
			}
			if mentions(info, n, a.res) {
				return false // closed, stored, passed on — disposed
			}
		}
		for _, succ := range bl.succs {
			if succ == g.exit {
				return true // fell off the end of the function
			}
			if visited[succ] {
				continue
			}
			visited[succ] = true
			if fromBlock(succ, 0) {
				return true
			}
		}
		return false
	}
	return fromBlock(a.block, a.idx+1)
}
