package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is silenced with a reasoned, analyzer-scoped comment:
//
//	x := sloppy() //lint:ghlint ignore floateq exact identity is intended here
//
// Placement rules (deliberately narrow — a directive silences exactly
// one analyzer on exactly one line):
//
//   - A trailing directive (code precedes it on the same line) applies
//     to its own line.
//   - A standalone directive (first thing on its line) applies to the
//     next line, so it can sit above a long expression.
//
// The reason is mandatory: a suppression without a recorded
// justification is treated as malformed, and malformed directives are
// themselves reported — a typo in an analyzer name can never silently
// widen the blind spot.

// directivePrefix introduces a ghlint directive comment.
const directivePrefix = "//lint:ghlint"

// suppressionSet indexes well-formed directives for filtering.
type suppressionSet map[string]map[int][]string // file → line → analyzers

// suppresses reports whether d is silenced by a directive.
func (s suppressionSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, name := range s[pos.Filename][pos.Line] {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}

// collectDirectives scans the files' comments for ghlint directives.
// Well-formed directives populate the returned set; malformed ones
// (wrong verb, unknown analyzer, missing reason) come back as
// diagnostics attributed to the pseudo-analyzer "ghlint".
func collectDirectives(fset *token.FileSet, files []*ast.File) (suppressionSet, []Diagnostic) {
	set := make(suppressionSet)
	var diags []Diagnostic
	for _, f := range files {
		codeLines := codeLineSet(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				target := pos.Line + 1 // standalone: applies to the next line
				if codeLines[pos.Line] {
					target = pos.Line // trailing: applies to its own line
				}
				name, err := parseDirective(c.Text)
				if err != nil {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "ghlint",
						Message:  fmt.Sprintf("malformed ghlint directive: %v", err),
					})
					continue
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				byLine[target] = append(byLine[target], name)
			}
		}
	}
	return set, diags
}

// parseDirective validates a directive comment and returns the analyzer
// it names. The expected shape is:
//
//	//lint:ghlint ignore <analyzer> <reason...>
//
// Any trailing "// want ..." marker (used by the fixture test harness
// to annotate expected findings) is stripped before parsing so fixtures
// can exercise directives and expectations on one line.
func parseDirective(text string) (analyzer string, err error) {
	body := strings.TrimPrefix(text, directivePrefix)
	if i := strings.Index(body, "// want"); i >= 0 {
		body = body[:i]
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", fmt.Errorf("want %q, got bare directive", directivePrefix+" ignore <analyzer> <reason>")
	}
	if fields[0] != "ignore" {
		return "", fmt.Errorf("unknown verb %q (only \"ignore\" is supported)", fields[0])
	}
	if len(fields) < 2 {
		return "", fmt.Errorf("missing analyzer name (one of %s)", strings.Join(AnalyzerNames(), ", "))
	}
	name := fields[1]
	if lookupAnalyzer(name) == nil {
		return "", fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(AnalyzerNames(), ", "))
	}
	if len(fields) < 3 {
		return "", fmt.Errorf("missing reason: every suppression must record why")
	}
	return name, nil
}

// codeLineSet returns the set of lines in f that contain code tokens
// (comments excluded), used to distinguish trailing from standalone
// directives. Any line with code has some AST node starting on it, so
// recording each node's start (and end, for multi-line nodes' closing
// tokens) is sufficient.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		if n.End().IsValid() {
			lines[fset.Position(n.End()-1).Line] = true
		}
		return true
	})
	return lines
}
