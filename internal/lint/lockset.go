package lint

// lockset.go is the forward dataflow engine over funcCFG that the
// guardedby analyzer runs on: it tracks, at every statement, the set of
// named mutexes that are *provably held on all paths* reaching it (a
// "must" analysis), and in which mode (read vs write).
//
// Lattice. A state is either TOP (start value for blocks not yet
// reached — everything held) or a finite map lockKey → mode. The meet
// at a join point is key intersection with mode minimum: a lock counts
// as held only if every incoming path holds it, and only as a read
// lock if any path holds merely RLock. States only ever shrink under
// meet and the key space per function is finite, so the fixpoint
// terminates.
//
// Lock identity. A mutex is named by the *path* that reaches it from a
// root variable object: d.mu is (object d, ".mu"), a bare local mu is
// (object mu, ""), and a lock via an embedded sync.Mutex — s.Lock() on
// a struct embedding Mutex — resolves through the type-checker's
// selection index to (object s, ".Mutex"). Pointer dereferences are
// transparent ((*p).mu ≡ p.mu). Paths the engine cannot name (an index
// expression, a call result) are simply not tracked; the guardedby
// analyzer treats an unnameable guard as unproven, which errs toward
// reporting.
//
// Transfer. Lock/RLock set the key's mode, Unlock/RUnlock clear it.
// `defer mu.Unlock()` is deliberately a no-op: the unlock runs at
// function exit, so the lock stays held for the remainder of the body —
// which is precisely the defer-unlock idiom's meaning. Calls inside go
// statements and function literals do not transfer either (they do not
// run at this program point); inspectSync enforces all three rules.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// lockMode is how a mutex is held.
type lockMode int

const (
	modeRead  lockMode = 1 // RLock: sufficient for reads of guarded fields
	modeWrite lockMode = 2 // Lock: required for writes
)

// lockKey names one mutex: a root variable and a field path.
type lockKey struct {
	root types.Object
	path string
}

// lockSet is one dataflow state.
type lockSet struct {
	top  bool
	held map[lockKey]lockMode
}

// topLockSet is the ⊤ element: the not-yet-computed "everything held".
func topLockSet() lockSet { return lockSet{top: true} }

func (s lockSet) clone() lockSet {
	if s.top {
		return s
	}
	m := make(map[lockKey]lockMode, len(s.held))
	for k, v := range s.held {
		m[k] = v
	}
	return lockSet{held: m}
}

// get returns the mode k is held in (0 if not held). TOP holds all.
func (s lockSet) get(k lockKey) lockMode {
	if s.top {
		return modeWrite
	}
	return s.held[k]
}

func (s *lockSet) set(k lockKey, m lockMode) {
	if s.top {
		return // TOP absorbs; TOP states are never walked for reporting
	}
	if s.held == nil {
		s.held = make(map[lockKey]lockMode)
	}
	s.held[k] = m
}

func (s *lockSet) clear(k lockKey) {
	if s.top {
		return
	}
	delete(s.held, k)
}

// meet is the lattice meet: key intersection, mode minimum.
func (s lockSet) meet(o lockSet) lockSet {
	if s.top {
		return o.clone()
	}
	if o.top {
		return s.clone()
	}
	m := make(map[lockKey]lockMode)
	for k, v := range s.held {
		if ov, ok := o.held[k]; ok {
			if ov < v {
				v = ov
			}
			m[k] = v
		}
	}
	return lockSet{held: m}
}

func (s lockSet) eq(o lockSet) bool {
	if s.top || o.top {
		return s.top == o.top
	}
	if len(s.held) != len(o.held) {
		return false
	}
	for k, v := range s.held {
		if o.held[k] != v {
			return false
		}
	}
	return true
}

// describe renders the held set for diagnostics, in stable order.
func (s lockSet) describe() string {
	if s.top {
		return "⊤"
	}
	if len(s.held) == 0 {
		return "no locks held"
	}
	var parts []string
	for k, v := range s.held {
		mode := "write"
		if v == modeRead {
			mode = "read"
		}
		parts = append(parts, k.display()+"("+mode+")")
	}
	sort.Strings(parts)
	return "holding " + strings.Join(parts, ", ")
}

// display renders a key as the source-ish path that names it.
func (k lockKey) display() string {
	if k.root == nil {
		return strings.TrimPrefix(k.path, ".")
	}
	return k.root.Name() + k.path
}

// lockMethodModes maps sync mutex method names to their transfer.
var lockMethodModes = map[string]struct {
	mode    lockMode
	release bool
}{
	"Lock":    {mode: modeWrite},
	"RLock":   {mode: modeRead},
	"Unlock":  {release: true},
	"RUnlock": {release: true},
}

// exprKey names the variable path an expression denotes, following
// idents, field selections (including promotions through embedded
// structs), and pointer dereferences. ok is false for anything else —
// index expressions, call results, literals.
func exprKey(info *types.Info, e ast.Expr) (lockKey, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return lockKey{root: v}, true
		}
		return lockKey{}, false
	case *ast.SelectorExpr:
		base, ok := exprKey(info, e.X)
		if !ok {
			return lockKey{}, false
		}
		sel := info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return lockKey{}, false
		}
		path, ok := selectionFieldPath(baseType(info, e.X), sel.Index())
		if !ok {
			return lockKey{}, false
		}
		base.path += path
		return base, true
	case *ast.StarExpr:
		return exprKey(info, e.X)
	}
	return lockKey{}, false
}

// baseType returns the type of an expression, nil if unknown.
func baseType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// selectionFieldPath renders a types.Selection field index sequence as
// a ".f.g" path against the base type, resolving embedded hops.
func selectionFieldPath(t types.Type, index []int) (string, bool) {
	var sb strings.Builder
	for _, i := range index {
		if t == nil {
			return "", false
		}
		st, ok := derefType(t).Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", false
		}
		f := st.Field(i)
		sb.WriteString(".")
		sb.WriteString(f.Name())
		t = f.Type()
	}
	return sb.String(), true
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// syncLockCall classifies a call as a sync.Mutex/RWMutex lock-family
// method and names the mutex it targets. Embedded mutexes resolve to
// the embedded field's path: s.Lock() on a struct embedding sync.Mutex
// yields key (s, ".Mutex").
func syncLockCall(info *types.Info, call *ast.CallExpr) (key lockKey, mode lockMode, release, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, 0, false, false
	}
	spec, isLockName := lockMethodModes[sel.Sel.Name]
	if !isLockName {
		return lockKey{}, 0, false, false
	}
	fn, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, 0, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockKey{}, 0, false, false
	}
	named, isNamed := derefType(recv.Type()).(*types.Named)
	if !isNamed {
		return lockKey{}, 0, false, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return lockKey{}, 0, false, false
	}
	key, keyed := exprKey(info, sel.X)
	if !keyed {
		return lockKey{}, 0, false, false
	}
	// A promoted method reaches the mutex through embedded fields: the
	// selection index names the hops, the last entry being the method.
	if s := info.Selections[sel]; s != nil && len(s.Index()) > 1 {
		path, pathOK := selectionFieldPath(baseType(info, sel.X), s.Index()[:len(s.Index())-1])
		if !pathOK {
			return lockKey{}, 0, false, false
		}
		key.path += path
	}
	return key, spec.mode, spec.release, true
}

// applyLockOps advances the state across one CFG node.
func applyLockOps(info *types.Info, n ast.Node, s *lockSet) {
	inspectSync(n, func(x ast.Node) bool {
		call, isCall := x.(*ast.CallExpr)
		if !isCall {
			return true
		}
		key, mode, release, ok := syncLockCall(info, call)
		if !ok {
			return true
		}
		if release {
			s.clear(key)
		} else if mode > s.get(key) {
			s.set(key, mode)
		}
		return true
	})
}

// lockFlow is the solved dataflow: the entry state of every block.
type lockFlow struct {
	g    *funcCFG
	info *types.Info
	in   []lockSet
}

// solveLockFlow runs the worklist to fixpoint. entry seeds the entry
// block — empty for a plain function, pre-held for a function carrying
// a ghlint:holds directive.
func solveLockFlow(g *funcCFG, info *types.Info, entry lockSet) *lockFlow {
	lf := &lockFlow{g: g, info: info, in: make([]lockSet, len(g.blocks))}
	for i := range lf.in {
		lf.in[i] = topLockSet()
	}
	lf.in[g.entry.index] = entry.clone()

	work := []*cfgBlock{g.entry}
	queued := make([]bool, len(g.blocks))
	queued[g.entry.index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.index] = false

		out := lf.in[b.index].clone()
		for _, n := range b.nodes {
			applyLockOps(info, n, &out)
		}
		for _, succ := range b.succs {
			merged := lf.in[succ.index].meet(out)
			if !merged.eq(lf.in[succ.index]) {
				lf.in[succ.index] = merged
				if !queued[succ.index] {
					queued[succ.index] = true
					work = append(work, succ)
				}
			}
		}
	}
	return lf
}

// walk visits every node of every reached block with the lock state in
// force *before* the node executes. Blocks still at TOP (unreachable)
// are skipped: nothing in dead code is reportable.
func (lf *lockFlow) walk(visit func(n ast.Node, held lockSet)) {
	for _, b := range lf.g.blocks {
		st := lf.in[b.index]
		if st.top {
			continue
		}
		st = st.clone()
		for _, n := range b.nodes {
			visit(n, st)
			applyLockOps(lf.info, n, &st)
		}
	}
}
