package lint_test

import (
	"testing"

	"greenhetero/internal/lint"
)

const cgBase = "greenhetero/internal/sim."

func loadCallgraphProgram(t *testing.T) *lint.Program {
	t.Helper()
	pkg, err := lint.LoadFiles("greenhetero/internal/sim", "testdata/callgraph/callgraph.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
	}
	return lint.BuildProgram([]*lint.Package{pkg})
}

func nodeOf(t *testing.T, prog *lint.Program, key string) *lint.FuncNode {
	t.Helper()
	n := prog.Funcs[key]
	if n == nil {
		keys := make([]string, 0, len(prog.Funcs))
		for k := range prog.Funcs {
			keys = append(keys, k)
		}
		t.Fatalf("no node %q; have %v", key, keys)
	}
	return n
}

// TestCallGraphKeys pins the symbol-key scheme the whole engine hangs
// off: pointer receivers normalize away, literals get $N suffixes, and
// displays strip the module's internal/ prefix.
func TestCallGraphKeys(t *testing.T) {
	prog := loadCallgraphProgram(t)

	if n := nodeOf(t, prog, cgBase+"(fast).Tick"); n.Display != "sim.(fast).Tick" {
		t.Errorf("(fast).Tick display = %q, want sim.(fast).Tick", n.Display)
	}
	if prog.Funcs[cgBase+"(*fast).Tick"] != nil {
		t.Error("pointer receiver leaked into the key: found (*fast).Tick")
	}
	if n := nodeOf(t, prog, cgBase+"caller"); n.Display != "sim.caller" {
		t.Errorf("caller display = %q, want sim.caller", n.Display)
	}

	lit := nodeOf(t, prog, cgBase+"withLit$1")
	if lit.Lit == nil {
		t.Error("withLit$1 is not a literal node")
	}
	if lit.Parent != prog.Funcs[cgBase+"withLit"] {
		t.Error("withLit$1 parent is not withLit")
	}
}

// TestCallGraphEdges pins edge resolution: direct call, one-step
// function value, tracked literal, CHA fan-out, unknown.
func TestCallGraphEdges(t *testing.T) {
	prog := loadCallgraphProgram(t)

	staticTo := func(name, callee string) {
		t.Helper()
		for _, e := range nodeOf(t, prog, cgBase+name).Calls {
			if e.Kind == lint.EdgeStatic && e.Callee == cgBase+callee {
				return
			}
		}
		t.Errorf("%s: no static edge to %s in %+v", name, callee, nodeOf(t, prog, cgBase+name).Calls)
	}
	staticTo("caller", "leaf")
	staticTo("viaValue", "leaf")
	staticTo("withLit", "withLit$1")

	var iface *lint.CallEdge
	for i, e := range nodeOf(t, prog, cgBase+"viaIface").Calls {
		if e.Kind == lint.EdgeIface {
			iface = &nodeOf(t, prog, cgBase+"viaIface").Calls[i]
		}
	}
	if iface == nil {
		t.Fatal("viaIface: no interface edge")
	}
	if iface.RecvType != "ticker" {
		t.Errorf("iface edge RecvType = %q, want ticker", iface.RecvType)
	}
	want := []string{cgBase + "(fast).Tick", cgBase + "(slow).Tick"}
	if len(iface.Callees) != len(want) {
		t.Fatalf("iface fan-out = %v, want %v", iface.Callees, want)
	}
	for i := range want {
		if iface.Callees[i] != want[i] {
			t.Fatalf("iface fan-out = %v, want %v (sorted)", iface.Callees, want)
		}
	}

	unknown := false
	for _, e := range nodeOf(t, prog, cgBase+"viaUnknown").Calls {
		if e.Kind == lint.EdgeUnknown {
			unknown = true
		}
	}
	if !unknown {
		t.Error("viaUnknown: expected an unknown edge for fns[0]()")
	}
}

// TestCallGraphSinks pins that nondeterminism sinks are recorded on
// the node that names them, reusing the determinism analyzer's tables.
func TestCallGraphSinks(t *testing.T) {
	prog := loadCallgraphProgram(t)
	n := nodeOf(t, prog, cgBase+"sinky")
	found := false
	for _, s := range n.Sinks {
		if s.PkgPath == "time" && s.Name == "Now" && s.Reason == "reads the wall clock" {
			found = true
		}
	}
	if !found {
		t.Errorf("sinky sinks = %+v, want time.Now (reads the wall clock)", n.Sinks)
	}
	if len(nodeOf(t, prog, cgBase+"leaf").Sinks) != 0 {
		t.Error("leaf has sinks, want none")
	}
}
