package lint

// guardedby enforces annotated lock discipline: a struct field carrying
//
//	// ghlint:guardedby <mutexField>
//
// may only be read where the named sibling mutex is provably held (any
// mode), and only be written where it is provably held in write mode —
// RLock suffices for reads only. "Provably held" is the must-hold
// dataflow of lockset.go over the cfg.go control-flow graph, so
// defer-unlock, early returns, branch joins, and loop backedges are all
// modelled; an access is flagged exactly when *some* path reaches it
// with the lock released, which is the shape of the PR 3 daemon race
// (session stepped between Unlock and re-Lock).
//
// Helper functions that are documented to run with the lock already
// held declare the contract on the function:
//
//	// ghlint:holds <expr>[ read]
//
// where <expr> names the mutex from the function's own receiver or
// parameters (e.g. `a.mu`). The directive seeds the entry state of the
// dataflow — it is trusted, not checked at call sites; the convention
// (enforced by review) is that such helpers carry a *Locked name suffix.
//
// Function literals are analyzed as their own functions with an empty
// entry state: a closure runs at an unknowable time, so a lock held
// where the closure is *created* proves nothing about where it *runs*.
// Known accepted holes, chosen to keep false positives at zero: accesses
// through an unnameable base (an index or call result) are reported as
// unprovable rather than guessed at; argument evaluation of a defer
// statement is not checked; a pointer-receiver method call on a guarded
// field counts as a read.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedbyAnalyzer is the lock-discipline analyzer.
var GuardedbyAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// ghlint:guardedby <mutexField>` must only be " +
		"accessed while the named mutex is provably held on every path " +
		"(flow-sensitive); writes require Lock, reads accept RLock",
	Run: runGuardedby,
}

// Annotation comment prefixes. Note these are distinct from the
// suppression grammar (`//lint:ghlint ignore ...` in suppress.go):
// suppressions silence findings, these *create* obligations.
const (
	guardedbyMarker = "ghlint:guardedby"
	holdsMarker     = "ghlint:holds"
)

// guardSpec is one field's protection contract.
type guardSpec struct {
	structName string
	fieldName  string
	mutexField string
}

// directiveArg extracts the argument text of a `// <marker> <arg>`
// comment, reporting whether the comment is that directive at all.
func directiveArg(c *ast.Comment, marker string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	rest := strings.TrimPrefix(text, marker)
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", false // e.g. "ghlint:guardedbytes" — a different word
	}
	return strings.TrimSpace(rest), true
}

// isSyncMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectGuards parses every guardedby directive in the package into a
// field-object → contract map, reporting malformed directives.
func collectGuards(pass *Pass) map[types.Object]guardSpec {
	guards := make(map[types.Object]guardSpec)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				collectStructGuards(pass, ts, st, guards)
			}
		}
	}
	return guards
}

func collectStructGuards(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, guards map[types.Object]guardSpec) {
	for _, field := range st.Fields.List {
		var dirs []*ast.Comment
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if _, ok := directiveArg(c, guardedbyMarker); ok {
					dirs = append(dirs, c)
				}
			}
		}
		if len(dirs) == 0 {
			continue
		}
		// Directive problems are reported at the field, not the comment:
		// fixtures put `// want` on the code line, and a want annotation
		// inside the directive comment itself would corrupt its argument.
		if len(dirs) > 1 {
			pass.Reportf(field.Pos(), "duplicate ghlint:guardedby directive (a field has exactly one guard)")
		}
		arg, _ := directiveArg(dirs[0], guardedbyMarker)
		parts := strings.Fields(arg)
		if len(parts) != 1 {
			pass.Reportf(field.Pos(), "malformed directive: want `// ghlint:guardedby <mutexField>`, got %q", strings.TrimSpace(strings.TrimPrefix(dirs[0].Text, "//")))
			continue
		}
		mutexField := parts[0]
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "ghlint:guardedby on an embedded field is not supported (name the field)")
			continue
		}
		if !validMutexField(pass, ts, mutexField, field.Pos()) {
			continue
		}
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if name.Name == mutexField {
				pass.Reportf(field.Pos(), "field %s.%s cannot be guarded by itself", ts.Name.Name, name.Name)
				continue
			}
			guards[obj] = guardSpec{structName: ts.Name.Name, fieldName: name.Name, mutexField: mutexField}
		}
	}
}

// validMutexField checks the named guard exists on the struct and is a
// sync mutex, reporting at pos when it is not. The lookup goes through
// the type checker's view of the struct so embedded mutexes (field name
// "Mutex"/"RWMutex") resolve too.
func validMutexField(pass *Pass, ts *ast.TypeSpec, mutexField string, pos token.Pos) bool {
	obj := pass.Info.Defs[ts.Name]
	if obj == nil {
		return false
	}
	structT, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < structT.NumFields(); i++ {
		f := structT.Field(i)
		if f.Name() != mutexField {
			continue
		}
		if !isSyncMutexType(f.Type()) {
			pass.Reportf(pos, "guard field %s.%s is not a sync.Mutex or sync.RWMutex", ts.Name.Name, mutexField)
			return false
		}
		return true
	}
	pass.Reportf(pos, "guard field %q does not exist in struct %s", mutexField, ts.Name.Name)
	return false
}

// holdsEntry builds the dataflow entry state a function's ghlint:holds
// directives declare. Malformed or unresolvable directives are reported
// and the function is skipped (analyzing under a wrong contract would
// only produce noise).
func holdsEntry(pass *Pass, fn *ast.FuncDecl) (lockSet, bool) {
	entry := lockSet{}
	if fn.Doc == nil {
		return entry, true
	}
	ok := true
	for _, c := range fn.Doc.List {
		arg, is := directiveArg(c, holdsMarker)
		if !is {
			continue
		}
		parts := strings.Fields(arg)
		mode := modeWrite
		if len(parts) == 2 && parts[1] == "read" {
			mode = modeRead
			parts = parts[:1]
		}
		// Reported at the func keyword, not the comment, so fixtures can
		// carry `// want` without polluting the directive argument.
		if len(parts) != 1 {
			pass.Reportf(fn.Pos(), "malformed directive: want `// ghlint:holds <expr>[ read]`, got %q", strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
			ok = false
			continue
		}
		segs := strings.Split(parts[0], ".")
		root := funcScopeVar(pass, fn, segs[0])
		if root == nil {
			pass.Reportf(fn.Pos(), "ghlint:holds: %q is not a receiver or parameter of %s", segs[0], fn.Name.Name)
			ok = false
			continue
		}
		key := lockKey{root: root}
		if len(segs) > 1 {
			key.path = "." + strings.Join(segs[1:], ".")
		}
		entry.set(key, mode)
	}
	return entry, ok
}

// funcScopeVar resolves a name against a function's receiver and
// parameters.
func funcScopeVar(pass *Pass, fn *ast.FuncDecl, name string) types.Object {
	var lists []*ast.FieldList
	if fn.Recv != nil {
		lists = append(lists, fn.Recv)
	}
	if fn.Type.Params != nil {
		lists = append(lists, fn.Type.Params)
	}
	for _, fl := range lists {
		for _, f := range fl.List {
			for _, n := range f.Names {
				if n.Name == name {
					return pass.Info.Defs[n]
				}
			}
		}
	}
	return nil
}

func runGuardedby(pass *Pass) {
	guards := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			entry, ok := holdsEntry(pass, fn)
			if ok && len(guards) > 0 {
				checkGuardedBody(pass, fn.Body, entry, guards)
			}
		}
		if len(guards) == 0 {
			continue
		}
		// Every function literal is its own function with an empty entry
		// state; inspectSync inside checkGuardedBody skips nested literals,
		// so each body is analyzed exactly once.
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkGuardedBody(pass, fl.Body, lockSet{}, guards)
			}
			return true
		})
	}
}

// checkGuardedBody runs the lock-set dataflow over one function body
// and reports every guarded-field access the flow cannot justify.
func checkGuardedBody(pass *Pass, body *ast.BlockStmt, entry lockSet, guards map[types.Object]guardSpec) {
	g := buildCFG(body)
	if g.unsupported {
		return // goto: no trustworthy graph, better silent than wrong
	}
	lf := solveLockFlow(g, pass.Info, entry)
	lf.walk(func(n ast.Node, held lockSet) {
		writes := make(map[ast.Expr]bool)
		collectWriteTargets(n, writes)
		inspectSync(n, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			spec, guarded := guards[s.Obj()]
			if !guarded {
				return true
			}
			checkGuardedAccess(pass, sel, s, spec, held, writes[sel])
			return true
		})
	})
}

// collectWriteTargets marks, within one CFG node, every expression that
// is written: assignment left-hand sides, ++/--, address-taking (a
// pointer to a guarded field can be written through at any time, so &f
// is classified as a write), and the map argument of delete.
func collectWriteTargets(n ast.Node, writes map[ast.Expr]bool) {
	inspectSync(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWriteTarget(lhs, writes)
			}
		case *ast.IncDecStmt:
			markWriteTarget(x.X, writes)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markWriteTarget(x.X, writes)
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				markWriteTarget(x.Args[0], writes)
			}
		}
		return true
	})
}

// markWriteTarget classifies the base being mutated: writing s.f marks
// the selector; writing s.m[k] or s.sl[i] mutates the container field,
// so the index base is marked; writing *p mutates the pointee, not the
// pointer-valued field, so the chain stops.
func markWriteTarget(e ast.Expr, writes map[ast.Expr]bool) {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		writes[e] = true
		markWriteTarget(e.X, writes)
	case *ast.IndexExpr:
		markWriteTarget(e.X, writes)
	}
}

func checkGuardedAccess(pass *Pass, sel *ast.SelectorExpr, s *types.Selection, spec guardSpec, held lockSet, isWrite bool) {
	verb := "read"
	need := modeRead
	if isWrite {
		verb = "write"
		need = modeWrite
	}
	key, keyed := exprKey(pass.Info, sel.X)
	if keyed {
		// The guard is a sibling of the field in its declaring struct;
		// promotion hops (all but the last selection index) lead there.
		if idx := s.Index(); len(idx) > 1 {
			path, ok := selectionFieldPath(baseType(pass.Info, sel.X), idx[:len(idx)-1])
			if !ok {
				keyed = false
			} else {
				key.path += path
			}
		}
		key.path += "." + spec.mutexField
	}
	if !keyed {
		pass.Reportf(sel.Pos(), "field %s.%s is guarded by %s: cannot prove the lock is held for this %s (receiver path is not a named variable)",
			spec.structName, spec.fieldName, spec.mutexField, verb)
		return
	}
	got := held.get(key)
	if got >= need {
		return
	}
	if isWrite && got == modeRead {
		pass.Reportf(sel.Pos(), "field %s.%s is guarded by %s: write while %s is read-locked (RLock suffices for reads only)",
			spec.structName, spec.fieldName, spec.mutexField, key.display())
		return
	}
	pass.Reportf(sel.Pos(), "field %s.%s is guarded by %s: %s without holding %s (%s)",
		spec.structName, spec.fieldName, spec.mutexField, verb, key.display(), held.describe())
}
