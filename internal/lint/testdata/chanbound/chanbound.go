// Fixture for the chanbound analyzer: every make(chan) needs an
// explicit capacity or a reasoned ghlint:unbounded directive, every
// send needs a provable non-blocking escape (select default,
// cancellation case, or a ghlint:mayblock contract), and the
// directives themselves are checked for reasons and dead placement.
package chanbound

import "context"

func makes(n int) {
	c1 := make(chan int) // want "without an explicit capacity"
	c2 := make(chan int, n)
	c3 := make(chan struct{}) // ghlint:unbounded close-only completion signal; never sent on
	// ghlint:unbounded close-only stop signal; receivers block on close
	c4 := make(chan struct{})
	c5 := make(chan int, 4) // ghlint:unbounded wrong: already bounded // want "dead ghlint:unbounded"
	// ghlint:unbounded // want "missing reason"
	c6 := make(chan int)
	// ghlint:unbounded stray: nothing to govern on the next line // want "dead directive"
	m := n + 1
	_, _, _, _, _, _, _ = c1, c2, c3, c4, c5, c6, m
}

func sends(ctx context.Context, c chan int, v int) {
	c <- v // want "no non-blocking escape"
	select {
	case c <- v: // shed path: the default drops on a full buffer
	default:
	}
	select {
	case c <- v: // aborts when the context is cancelled
	case <-ctx.Done():
	}
	select {
	case c <- v: // want "no non-blocking escape"
	}
	select {
	case <-ctx.Done():
		c <- v // want "no non-blocking escape"
	default:
	}
	c <- v // ghlint:mayblock fixture: paired with a dedicated drainer goroutine
	// ghlint:mayblock stray: governs a plain statement // want "dead directive"
	_ = v
	select {
	case c <- v: // ghlint:mayblock wrong: the default is already the escape // want "dead ghlint:mayblock"
	default:
	}
}

// handoff performs a synchronous rendezvous by design.
//
// ghlint:mayblock the caller owns the pairing receive; blocking is the contract
func handoff(c chan int, v int) {
	c <- v
	c <- v // ghlint:mayblock wrong: the function contract already covers it // want "dead ghlint:mayblock"
}

// ghlint:mayblock // want "missing reason"
func badContract(c chan int, v int) {
	c <- v // want "no non-blocking escape"
}
