// Regression fixture for the laundering shape the retired local
// unitsafety analyzer was blind to: a power value is read into a
// neutral local (`x := b.PeakW` — the suffix dies right there), then
// crosses a call boundary into a helper that adds it to an energy
// value. Locally the helper's `capWh + x` has only one suffixed
// operand, so the old suffix-only pass reports nothing
// (TestUnitsLaunderRegression proves that); the interprocedural units
// engine flows W through the local and into the helper's neutral
// parameter, and the addition is a dimension mix.
package units

// Bank mirrors internal/battery's suffixed field naming.
type Bank struct {
	CapWh float64
	PeakW float64
}

// addReserve folds a neutral addend into the capacity — the half of the
// bug the old analyzer could see, and didn't.
func addReserve(capWh, x float64) float64 {
	return capWh + x // want "mixes"
}

func launder(b Bank) float64 {
	x := b.PeakW // the W suffix is gone; only flow analysis remembers
	return addReserve(b.CapWh, x)
}
