// Fixture for the interprocedural units analyzer: dimensions seeded
// from identifier suffixes and ghlint:units annotations flow through
// assignments, call boundaries (static and interface), returns, and
// field stores; additive mixing, cross-boundary mismatches, laundering
// through neutral names, and malformed annotations are findings, while
// the multiplicative conversion triangle (W × h = Wh, Wh / h = W,
// Wh / W = h, like/like = frac) stays silent.
package units

import "time"

// Plant mixes suffixed, annotated, and deliberately broken fields.
type Plant struct {
	// ghlint:units Wh
	Reserve float64
	SupplyW float64
	Horizon float64 // ghlint:units h
	Ratio   float64 // ghlint:units frac
	Bad     float64 // ghlint:units joules // want "not a dimension"
	PeakW   float64 // ghlint:units Wh // want "contradicts"
}

// Store is an in-program interface whose declaration carries the
// dimension contract for every implementation and call site.
type Store interface {
	// ghlint:units offerW=W result=Wh
	Absorb(offerW float64) float64
}

// charge converts a power rate over a duration into energy.
//
// ghlint:units w=W d=h result=Wh
func charge(w, d float64) float64 {
	return w * d
}

// ghlint:units q=W // want "no parameter or result"
func noSuchParam(x float64) float64 { return x }

// ghlint:units W // want "not name=dim"
func bareEntry(x float64) float64 { return x }

func misuse(p Plant) float64 {
	return charge(p.Reserve, p.Horizon) // want "dimension mismatch"
}

func drive(s Store, p Plant) float64 {
	return s.Absorb(p.Reserve) // want "dimension mismatch"
}

// blend receives power from one call site and energy from the other:
// the neutral parameter is where the dimension is laundered.
func blend(v float64) float64 { return v } // want "mixed dimensions"

func callers(p Plant) float64 {
	return blend(p.SupplyW) + blend(p.Reserve)
}

func blend2(x float64) float64 { return x }

func launderLocal(p Plant) float64 {
	acc := p.SupplyW
	acc = p.Reserve // want "launders mixed dimensions"
	return blend2(acc)
}

// Sink's neutral field accumulates both dimensions from its stores.
type Sink struct {
	Level float64 // want "mixed dimensions"
}

func fill(s *Sink, p Plant) {
	s.Level = p.SupplyW
	s.Level = p.Reserve
}

func misfill(p Plant) Plant {
	return Plant{Reserve: p.SupplyW} // want "dimension mismatch"
}

func build(p Plant) Plant {
	return Plant{Reserve: p.Reserve, SupplyW: p.SupplyW, Horizon: p.Horizon}
}

func conversions(p Plant, d time.Duration) float64 {
	energyWh := p.SupplyW * d.Hours() // W × h = Wh
	backW := energyWh / p.Horizon     // Wh / h = W
	hrs := p.Reserve / backW          // Wh / W = h
	ratio := p.Reserve / energyWh     // Wh / Wh = frac
	scaled := p.SupplyW * p.Ratio     // frac scales without converting
	return energyWh*ratio + charge(backW+scaled, hrs+p.Horizon)
}

func quieted(p Plant) float64 {
	//lint:ghlint ignore units fixture: intentionally dimensionless blend
	return p.SupplyW + p.Reserve
}

// Meter exercises the method-expression calling form, whose first
// argument is the receiver: the receiver slot has no parameter, and
// the remaining arguments still map onto the method's parameter slots.
type Meter struct{}

// ghlint:units vW=W result=W
func (Meter) Record(vW float64) float64 { return vW }

func methodExprCalls(p Plant) float64 {
	okW := Meter.Record(Meter{}, p.SupplyW)
	bad := Meter.Record(Meter{}, p.Reserve) // want "dimension mismatch"
	return okW + bad
}
