// Fixture for the units analyzer (kept green across the retirement of
// the local unitsafety pass): additive arithmetic and comparisons may
// not mix watt-suffixed and watt-hour-suffixed identifiers;
// multiplicative conversion is the legal path between the two
// dimensions.
package unitsafety

import "time"

// Bank mirrors internal/battery's unit-suffixed field naming.
type Bank struct {
	CapacityWh float64
	ChargeWh   float64
	MaxChargeW float64
	PeakWatts  float64
}

// EnergyWh is a unit-suffixed accessor, classified like a field.
func (b Bank) EnergyWh() float64 { return b.ChargeWh }

func bad(b Bank, gridW, loadWh float64) float64 {
	sum := gridW + loadWh            // want "mixes"
	if b.MaxChargeW > b.CapacityWh { // want "mixes"
		sum -= b.ChargeWh
	}
	diff := b.PeakWatts - b.EnergyWh() // want "mixes"
	headroomWh := b.CapacityWh
	headroomWh -= gridW // want "mixes"
	return sum + diff + headroomWh
}

func good(b Bank, gridW, loadWh float64, d time.Duration) float64 {
	energyWh := gridW*d.Hours() + loadWh // multiplication converts W to Wh
	powerW := gridW + b.MaxChargeW       // same dimension adds fine
	ratio := b.ChargeWh / b.CapacityWh   // division of like units is fine
	raw := gridW + ratio                 // unitless operand: no mix
	return energyWh + raw + powerW*0*d.Hours()
}

func suppressed(gridW, loadWh float64) float64 {
	//lint:ghlint ignore units fixture: intentionally dimensionless blend
	return gridW + loadWh
}
