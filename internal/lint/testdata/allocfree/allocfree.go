// The allocfree fixture: every allocation-site class the analyzer
// flags, every cold-path exemption it grants, and the callee
// discipline — including the hidden-allocation regression shape, where
// a helper deep in an annotated call tree grows a slice and the
// finding must land at that exact line. Loaded with testdata/taintutil
// as a RunWithDeps dependency for the cross-package cases.
package sim

import (
	"fmt"
	"math"
	"sort"

	"greenhetero/internal/lint/testdata/taintutil"
)

type pair struct{ a, b float64 }

// plainHelper is deliberately unannotated: calling it from an
// annotated function is a finding.
func plainHelper(x float64) float64 { return x + 1 }

// leafOK is allocation-free and under the contract.
//
// ghlint:allocfree
func leafOK(x float64) float64 { return x * 2 }

// ghlint:allocfree
func hotMake(n int) []float64 {
	buf := make([]float64, n) // want "sim\\.hotMake is ghlint:allocfree but allocates: make"
	p := new(pair)            // want "allocates: new"
	_ = p
	return buf
}

// ghlint:allocfree
func hotAppend(xs []float64, v float64) []float64 {
	ys := append(xs, v) // want "allocates: append may grow its backing array"
	return ys
}

// hotReuse stays clean: both append shapes are provable buffer reuse.
//
// ghlint:allocfree
func hotReuse(buf []float64, v float64) []float64 {
	buf = append(buf, v)      // ok: result assigned back to the base
	out := append(buf[:0], v) // ok: the base is a slice of an existing buffer
	return out
}

// hotChain stays clean: every callee is under the contract.
//
// ghlint:allocfree
func hotChain(x float64) float64 { return leafOK(x) }

// hiddenAlloc is the regression shape: the annotated entry point is
// clean, but a helper it calls grows a slice. The finding lands in the
// helper, at the append.
//
// ghlint:allocfree
func hiddenAlloc(xs []float64, v float64) []float64 {
	return sneaky(xs, v)
}

// ghlint:allocfree
func sneaky(xs []float64, v float64) []float64 {
	out := append(xs, v) // want "sim\\.sneaky is ghlint:allocfree but allocates: append may grow"
	return out
}

// ghlint:allocfree
func hotCaller(x float64) float64 {
	return plainHelper(x) // want "calls sim\\.plainHelper, which is not ghlint:allocfree-annotated"
}

// hotWithColdExit stays clean: the error exit allocates, but a return
// whose final result is a non-nil error is a cold path by definition.
//
// ghlint:allocfree
func hotWithColdExit(x float64) (float64, error) {
	if x < 0 {
		return 0, fmt.Errorf("negative input %v", x) // ok: cold error exit
	}
	return x * 2, nil
}

type scratch struct{ buf []float64 }

// ensure stays clean: grow-on-demand behind a cap guard allocates only
// until steady state, the same amortization AllocsPerRun pins at zero.
//
// ghlint:allocfree
func (s *scratch) ensure(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) // ok: lazy-init guard body is exempt
	}
	s.buf = s.buf[:n]
}

func sink(v any) {}

// ghlint:allocfree
func hotBoxing(x float64) {
	sink(x) // want "allocates: interface boxing of x" "calls sim\\.sink, which is not ghlint:allocfree-annotated"
}

// ghlint:allocfree
func hotClosure(xs []float64) float64 {
	add := func(a, b float64) float64 { return a + b } // ok: bound to a call-only local, runs inline
	total := 0.0
	for _, x := range xs {
		total = add(total, x)
	}
	f := func() float64 { return total } // want "allocates: closure creation"
	_ = f
	return total
}

type counter struct{ n float64 }

func (c *counter) bump(v float64) float64 { c.n += v; return c.n }

// ghlint:allocfree
func hotMethodValue(c *counter) float64 {
	f := c.bump // want "allocates: method value c\\.bump binds its receiver into a closure"
	return f(1) // want "calls sim\\.\\(counter\\)\\.bump, which is not ghlint:allocfree-annotated"
}

// ghlint:allocfree
func hotMapWrite(m map[string]int) {
	m["k"] = 1 // want "allocates: map write"
	m["n"]++   // want "allocates: map write"
}

// ghlint:allocfree
func hotConcat(a, b string) string {
	return a + b // want "allocates: string concatenation"
}

// ghlint:allocfree
func hotSliceLit(x float64) []float64 {
	return []float64{x} // want "allocates: slice literal"
}

// hotValueStruct stays clean: a struct literal is a value; only its
// escape via & allocates.
//
// ghlint:allocfree
func hotValueStruct(x float64) pair {
	return pair{a: x, b: x}
}

// ghlint:allocfree
func hotEscape(x float64) *pair {
	return &pair{a: x} // want "allocates: composite literal escapes via &"
}

// ghlint:allocfree
func hotConvert(bs []byte) string {
	return string(bs) // want "allocates: conversion to string copies the slice"
}

// ghlint:allocfree
func hotDynamic(fns []func() float64) float64 {
	return fns[0]() // want "calls fns\\[\\.\\.\\.\\], which the call graph cannot resolve"
}

// ghlint:allocfree
func hotGo(x float64) {
	go leafOK(x) // want "allocates: goroutine launch"
}

// hotMath stays clean: math is on the vetted stdlib whitelist.
//
// ghlint:allocfree
func hotMath(x float64) float64 {
	return math.Sqrt(x)
}

// ghlint:allocfree
func hotSort(xs []float64) {
	sort.Float64s(xs) // want "calls sort\\.Float64s, which is outside the allocfree-verified set"
}

// hotCross exercises the contract across a package boundary: the
// annotated dependency function is fine, the unannotated one is not.
//
// ghlint:allocfree
func hotCross(x float64) float64 {
	y := taintutil.Scale(x)          // ok: annotated across the package boundary
	return y + taintutil.Alloc(1)[0] // want "calls lint/testdata/taintutil\\.Alloc, which is not ghlint:allocfree-annotated"
}

// hotSuppressed documents a budgeted allocation with a reasoned
// directive; the finding is silenced, not absent.
//
// ghlint:allocfree
func hotSuppressed(n int) []float64 {
	return make([]float64, n) //lint:ghlint ignore allocfree fixture pins the reasoned-budget suppression path
}
