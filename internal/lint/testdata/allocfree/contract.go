// Contract cases for the allocfree fixture: interface methods and
// func-typed struct fields under `// ghlint:allocfree`, with every
// binding and implementation verified program-wide.
package sim

import "greenhetero/internal/lint/testdata/taintutil"

// predictor's Observe is under the allocfree contract: annotated
// callers may dispatch through it, and every in-program
// implementation must itself be annotated.
type predictor interface {
	// ghlint:allocfree
	Observe(v float64)
}

type goodImpl struct{ last float64 }

// Observe implements predictor under the contract.
//
// ghlint:allocfree
func (g *goodImpl) Observe(v float64) { g.last = v }

type badImpl struct{ hist []float64 }

// Observe implements predictor but is not annotated: flagged at the
// declaration, because an annotated caller can reach it dynamically.
func (b *badImpl) Observe(v float64) { // want "sim\\.\\(badImpl\\)\\.Observe implements sim\\.\\(predictor\\)\\.Observe, which is ghlint:allocfree-annotated"
	b.hist = append(b.hist, v)
}

// hotIface stays clean: the interface method carries the contract.
//
// ghlint:allocfree
func hotIface(p predictor, v float64) {
	p.Observe(v)
}

// sampler carries no annotation, so dispatching through it from an
// annotated function is a finding.
type sampler interface {
	Sample() float64
}

type noisy struct{ state float64 }

func (n *noisy) Sample() float64 {
	n.state++
	return n.state
}

// ghlint:allocfree
func hotBadIface(s sampler) float64 {
	return s.Sample() // want "calls Sample dynamically through interface sim\\.\\(sampler\\)"
}

// model's perf hook is under the contract: calls through the field are
// trusted, and every binding program-wide is verified instead.
type model struct {
	// ghlint:allocfree
	perf func(x float64) float64
}

// ghlint:allocfree
func hotField(m *model, x float64) float64 {
	return m.perf(x)
}

// badModel is a composite-literal binding outside any function body.
var badModel = model{perf: plainHelper} // want "sim\\.plainHelper is bound to allocfree contract field sim\\.\\(model\\)\\.perf but is not ghlint:allocfree-annotated"

// bind exercises every binding shape. It is itself unannotated:
// bindings are verified wherever they occur, because the annotated
// caller dispatching through the field cannot see who bound it.
func bind(m *model, x float64) *model {
	m.perf = leafOK                                   // ok: annotated function
	m.perf = plainHelper                              // want "sim\\.plainHelper is bound to allocfree contract field"
	m.perf = func(v float64) float64 { return v + x } // ok: the literal is verified inline
	m.perf = func(v float64) float64 {
		return taintutil.Alloc(1)[0] // want "the literal bound to sim\\.\\(model\\)\\.perf is ghlint:allocfree but calls lint/testdata/taintutil\\.Alloc"
	}
	return &model{perf: leafOK} // ok: annotated function in a composite binding
}
