// The dettaint fixture: a deterministic-core package laundering a
// wall-clock read through a helper package. The direct determinism
// analyzer passes both sides — this file never names time.Now, and the
// helper's package is not core-gated — so only the transitive pass can
// connect them. Loaded with testdata/taintutil as a RunWithDeps
// dependency.
package sim

import "greenhetero/internal/lint/testdata/taintutil"

// step calls the laundering helper directly: the call site is the
// frontier, and the diagnostic names every hop down to the sink.
func step() float64 {
	t := taintutil.EpochStamp() // want "sim\\.step calls lint/testdata/taintutil\\.EpochStamp, which transitively reaches time\\.Now \\(reads the wall clock\\) outside the deterministic core: sim\\.step → lint/testdata/taintutil\\.EpochStamp → lint/testdata/taintutil\\.stamp → time\\.Now"
	return float64(t)
}

// indirect launders through a core-local helper first. No finding
// here: core→core is never a frontier — the helper's own body holds
// the laundering call and gets the finding, so flagging every ancestor
// would only duplicate it.
func indirect() float64 {
	return helper()
}

func helper() float64 {
	return float64(taintutil.EpochStamp()) // want "sim\\.helper calls lint/testdata/taintutil\\.EpochStamp, which transitively reaches time\\.Now"
}

// okPath uses a clean helper from the same package: reaching outside
// the core is fine when the closure never hits a sink.
func okPath(x float64) float64 {
	return taintutil.Clean(x)
}

// suppressed documents a sanctioned boundary with a reasoned
// directive; the finding is silenced, not absent.
func suppressed() float64 {
	return float64(taintutil.EpochStamp()) //lint:ghlint ignore dettaint fixture pins the suppression path for transitive findings
}
