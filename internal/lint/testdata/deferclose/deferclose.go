// Fixture for the deferclose analyzer: a net/os resource must be
// closed, returned, or stored on every control-flow path after its
// acquisition. Error-path early returns are exempt (the handle is nil
// there), nil-tests are not disposals, and a branch that forgets the
// handle is flagged at the acquisition.
package deferclose

import (
	"net"
	"os"
)

// deferClosed is the canonical shape: error path exempt, happy path
// covered by the deferred close.
func deferClosed(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Write([]byte("ping\n"))
	return err
}

// escapes transfers ownership to the caller; returning the resource is
// a disposal.
func escapes(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// stored hands the handle to a longer-lived owner.
type holder struct {
	f *os.File
}

func (h *holder) open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// leakyBranch closes on the verbose path only; the quiet path returns
// with the socket still open.
func leakyBranch(addr string, verbose bool) error {
	conn, err := net.Dial("tcp", addr) // want "net.Dial result conn is not closed on every path"
	if err != nil {
		return err
	}
	if verbose {
		return conn.Close()
	}
	return nil
}

// leakyListener forgets the listener on the early-out path; the final
// close does not cover it.
func leakyListener(addr string, ready chan<- struct{}) error {
	ln, err := net.Listen("tcp", addr) // want "net.Listen result ln is not closed on every path"
	if err != nil {
		return err
	}
	select {
	case ready <- struct{}{}:
	default:
		return nil
	}
	return ln.Close()
}

// nilTestIsNotDisposal: comparing the handle against nil does not count
// as taking responsibility for it.
func nilTestIsNotDisposal(path string) bool {
	f, err := os.Open(path) // want "os.Open result f is not closed on every path"
	if err != nil {
		return false
	}
	return f != nil
}

// dialerMethod covers the method-receiver acquirers the telemetry
// transport uses.
func dialerMethod(addr string) error {
	var d net.Dialer
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return nil
}

// crashPathIsFine: a terminating call ends the path without complaint.
func crashPathIsFine(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	return f
}
