// Fixture for the suppression mechanism, run through the determinism
// analyzer. It pins down the directive contract:
//
//   - a trailing directive silences exactly the named analyzer on
//     exactly its own line;
//   - a standalone directive silences the next line;
//   - a directive naming a different analyzer silences nothing;
//   - malformed directives (bad verb, unknown analyzer, missing
//     reason) are themselves diagnostics.
package suppress

import "time"

func trailing() time.Time {
	return time.Now() //lint:ghlint ignore determinism fixture: trailing form
}

func standalone() time.Time {
	//lint:ghlint ignore determinism fixture: standalone form covers the next line
	return time.Now()
}

func wrongAnalyzer() time.Time {
	return time.Now() //lint:ghlint ignore floateq wrong analyzer does not silence // want "reads the wall clock"
}

func wrongLine() time.Time {
	//lint:ghlint ignore determinism fixture: standalone form reaches one line only
	t := time.Unix(0, 0)
	_ = t
	return time.Now() // want "reads the wall clock"
}

func malformed() time.Time {
	t1 := time.Now() //lint:ghlint pardon determinism not a verb // want "reads the wall clock" "unknown verb"
	t2 := time.Now() //lint:ghlint ignore nosuchanalyzer because // want "reads the wall clock" "unknown analyzer"
	t3 := time.Now() //lint:ghlint ignore determinism // want "reads the wall clock" "missing reason"
	if t1.After(t2) {
		return t1
	}
	return t3
}
