// Fixture for the seedflow analyzer: seeds reaching rand.NewSource in
// the deterministic core must come from runner.DeriveSeed or a Seed
// config field — inline seed arithmetic correlates fan-out streams.
package seedflow

import (
	"fmt"
	"math/rand"

	"greenhetero/internal/runner"
)

// Config mirrors the repo's fan-out configs.
type Config struct {
	Seed int64
}

func bad(cfg Config, i int) *rand.Rand {
	a := rand.NewSource(42)                  // want "not derived from runner.DeriveSeed"
	b := rand.NewSource(cfg.Seed + int64(i)) // want "not derived from runner.DeriveSeed"
	_ = a
	return rand.New(b)
}

func badNamed(cfg Config, i int) rand.Source {
	// A flattering Seed-suffixed name cannot launder inline seed
	// arithmetic: the analyzer traces a local identifier back to its
	// initializer.
	offsetSeed := cfg.Seed + int64(i)
	return rand.NewSource(offsetSeed) // want "not derived from runner.DeriveSeed"
}

func goodParam(childSeed int64) rand.Source {
	// Parameters cannot be traced; a Seed-suffixed name is the
	// caller's contract.
	return rand.NewSource(childSeed)
}

func good(cfg Config, i int) *rand.Rand {
	direct := rand.NewSource(cfg.Seed)
	derived := rand.NewSource(runner.DeriveSeed(cfg.Seed, fmt.Sprintf("run/%d", i)))
	converted := rand.NewSource(int64(uint64(cfg.Seed)))
	childSeed := runner.DeriveSeed(cfg.Seed, "child")
	named := rand.NewSource(childSeed)
	_, _, _ = direct, derived, converted
	return rand.New(named)
}

func suppressed(i int) rand.Source {
	return rand.NewSource(int64(i)) //lint:ghlint ignore seedflow fixture: deliberate raw seed
}
