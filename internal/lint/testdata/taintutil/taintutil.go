// Package taintutil is a fixture dependency for the interprocedural
// analyzers (dettaint, allocfree). It lives under testdata/ so the go
// tool never builds it, yet it is a real importable package: fixtures
// load it through linttest.RunWithDeps and import it by this path, so
// the call graph sees genuine cross-package edges. Its import path has
// a nested internal/ suffix, which leaves it unclassified by the
// core/allowlist tables — exactly the kind of helper package that
// launders nondeterminism past the direct determinism analyzer.
package taintutil

import "time"

// EpochStamp launders a wall-clock read behind a helper hop: neither
// this function nor a core caller names time.Now, so the direct
// analyzer is blind in both places. dettaint must still connect
// caller → EpochStamp → stamp → time.Now.
func EpochStamp() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().UnixNano()
}

// Clean is a pure helper: core callers use it without findings.
func Clean(x float64) float64 {
	return x * 2
}

// Alloc grows a fresh slice on every call; an allocfree-annotated
// caller must be flagged for calling it.
func Alloc(n int) []float64 {
	return make([]float64, n)
}

// Scale is allocation-free and under the contract, so annotated
// callers may use it across the package boundary.
//
// ghlint:allocfree
func Scale(x float64) float64 {
	return x * 0.5
}
