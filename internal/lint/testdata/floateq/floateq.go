// Fixture for the floateq analyzer: identity comparison between two
// computed floats is flagged; comparisons against constants and
// comparisons inside approved epsilon helpers are not.
package floateq

import "math"

func bad(a, b float64, xs []float64) bool {
	if a == b { // want "non-constant floating-point"
		return true
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum != a*b // want "non-constant floating-point"
}

func good(a, b float64) bool {
	if a == 0 || b != 1.5 { // constants are intentional sentinels
		return false
	}
	if math.Abs(a-b) <= 1e-9 { // the blessed pattern
		return true
	}
	n := int(a)
	return n == int(b) // integer identity is exact
}

// approxEqual is on the approved-helper list: exact identity here is
// the fast path of a tolerance check.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// Package-level initializers are inspected too; a closure bound to a
// var does not escape the analyzer.
var looseCmp = func(a, b float64) bool {
	return a == b // want "non-constant floating-point"
}

func suppressed(a, b float64) bool {
	return a == b //lint:ghlint ignore floateq fixture: bit-identity is the contract under test
}
