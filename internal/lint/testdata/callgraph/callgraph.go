// Fixture for the call-graph unit tests: one function per edge shape —
// static, one-step function value, interface CHA fan-out, tracked
// literal, unresolvable dynamic call — plus a sink and a pointer
// receiver for key-normalization checks.
package sim

import "time"

type ticker interface {
	Tick(x float64) float64
}

type fast struct{}

func (f *fast) Tick(x float64) float64 { return x + 1 }

type slow struct{ last float64 }

func (s *slow) Tick(x float64) float64 {
	s.last = x
	return x * 2
}

func leaf(x float64) float64 { return x + 1 }

func caller(x float64) float64 {
	return leaf(x)
}

func viaValue(x float64) float64 {
	f := leaf
	return f(x)
}

func viaIface(tk ticker, x float64) float64 {
	return tk.Tick(x)
}

func viaUnknown(fns []func() float64) float64 {
	return fns[0]()
}

func withLit(x float64) float64 {
	double := func(v float64) float64 { return v * 2 }
	return double(x)
}

func sinky() int64 {
	return time.Now().UnixNano()
}
