// Fixture for the goleak analyzer: a goroutine passes with a WaitGroup
// pairing in its launcher, a context.Context argument, or a visible
// callee that selects, receives, or does not loop. Fire-and-forget
// infinite loops are flagged.
package goleak

import (
	"context"
	"sync"
)

// ctxCancelled passes rule 2: the context argument is the termination
// contract.
func ctxCancelled(ctx context.Context) {
	go pump(ctx)
}

func pump(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// waitGroupPaired passes rule 1: the launcher Adds before spawning.
func waitGroupPaired(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(j func()) {
			defer wg.Done()
			j()
		}(job)
	}
	wg.Wait()
}

// fireAndForget is the classic leak: an infinite loop nobody can stop.
func fireAndForget(sink chan<- int) {
	go func() { // want "no provable termination channel"
		n := 0
		for {
			n++
			sink <- n
		}
	}()
}

// selectStop passes rule 3: the literal selects on a stop channel.
func selectStop(stop <-chan struct{}, sink chan<- int) {
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				return
			case sink <- n:
				n++
			}
		}
	}()
}

// straightLine passes rule 3: no loops — the body runs off the end.
func straightLine(errs chan<- error, work func() error) {
	go func() { errs <- work() }()
}

// rangeChannel passes rule 3: ranging a channel ends when it closes.
func rangeChannel(in <-chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

type server struct {
	stop chan struct{}
}

// start passes rule 3 through a method callee declared in this package:
// loop's body selects on the stop channel.
func (s *server) start() {
	go s.loop()
}

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// spin loops forever with no exit signal; launching it is flagged even
// though the go statement itself looks innocent.
func spin() {
	n := 0
	for {
		n++
	}
}

func launchSpin() {
	go spin() // want "no provable termination channel"
}
