// Fixture for the determinism analyzer's resolution hardening: neither
// a dot-import nor a function-value alias may hide a forbidden call.
// The analyzer matches the type-checker's resolution of every
// identifier use, not the pkg.Fn spelling, so a bare Now() and a
// captured `clock := Now` are flagged exactly like time.Now().
package determinism

import (
	. "math/rand"
	. "time"
)

func badDotImport() float64 {
	t := Now()                                 // want "reads the wall clock"
	return Float64() + float64(t.Nanosecond()) // want "process-global RNG"
}

func badValueAlias() Duration {
	clock := Now // want "reads the wall clock"
	start := clock()
	return Since(start) // want "reads the wall clock"
}
