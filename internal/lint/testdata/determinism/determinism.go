// Fixture for the determinism analyzer: the harness loads this file
// under a deterministic-core import path, so every nondeterministic
// input below must be flagged, while config-seeded RNG use passes.
package determinism

import (
	"math/rand"
	"os"
	"runtime"
	stdtime "time"
)

// Config mirrors the repo's run configs: the seed is data, not time.
type Config struct {
	Seed int64
}

func bad(c Config) float64 {
	t := stdtime.Now()             // want "reads the wall clock"
	elapsed := stdtime.Since(t)    // want "reads the wall clock"
	jitter := rand.Float64()       // want "process-global RNG"
	n := rand.Intn(10)             // want "process-global RNG"
	home := os.Getenv("HOME")      // want "reads the environment"
	workers := runtime.NumCPU()    // want "depends on the host CPU count"
	procs := runtime.GOMAXPROCS(0) // want "depends on the host CPU count"
	return float64(len(home)+n+workers+procs) + jitter + elapsed.Seconds()
}

func good(c Config) float64 {
	rng := rand.New(rand.NewSource(c.Seed)) // constructors with explicit seeds are fine
	d := 5 * stdtime.Minute                 // time arithmetic without the wall clock is fine
	return rng.Float64() + d.Hours()
}

func suppressed(c Config) stdtime.Time {
	//lint:ghlint ignore determinism fixture: demonstrating a reasoned suppression
	return stdtime.Now()
}
