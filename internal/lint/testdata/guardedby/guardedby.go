// Fixture for the guardedby analyzer: fields annotated
// `// ghlint:guardedby <mutexField>` may only be touched where the
// lock-set dataflow proves the mutex held — defer-unlock and
// early-return shapes pass, access-after-Unlock and write-under-RLock
// are flagged, and embedded mutexes resolve by their promoted name.
package guardedby

import "sync"

type counter struct {
	mu sync.RWMutex
	// ghlint:guardedby mu
	n int
	// ghlint:guardedby mu
	labels map[string]int
}

// plainLock is the baseline: everything inside Lock/Unlock passes.
func (c *counter) plainLock() {
	c.mu.Lock()
	c.n++
	c.labels["total"] = c.n
	c.mu.Unlock()
}

// deferUnlock holds to function exit; the whole body is covered.
func (c *counter) deferUnlock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// earlyReturn releases on the early path and keeps the lock on the
// fall-through path: both access patterns are provably covered.
func (c *counter) earlyReturn(skip bool) int {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// afterUnlock touches the field once the lock is gone.
func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "write without holding c.mu"
}

// readLocked reads under RLock: sufficient.
func (c *counter) readLocked() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// writeUnderRLock mutates under a read lock: flagged, with the mode in
// the message.
func (c *counter) writeUnderRLock() {
	c.mu.RLock()
	c.n++ // want "RLock suffices for reads only"
	c.mu.RUnlock()
}

// readUnlocked reads with no lock at all.
func (c *counter) readUnlocked() int {
	return c.n // want "read without holding c.mu"
}

// deleteIsAWrite mutates the guarded map.
func (c *counter) deleteIsAWrite(k string) {
	c.mu.RLock()
	delete(c.labels, k) // want "RLock suffices for reads only"
	c.mu.RUnlock()
}

// branchMeet joins a locked and an unlocked path: must-analysis drops
// the lock at the join.
func (c *counter) branchMeet(lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.n++ // want "write without holding c.mu"
	if lock {
		c.mu.Unlock()
	}
}

// closureEscapes runs at an unknowable time: the lock held where the
// literal is created proves nothing about where it runs.
func (c *counter) closureEscapes() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want "write without holding c.mu"
	}
}

// lockedHelper declares the caller-holds contract; the entry state is
// seeded and the body passes with no lock operations of its own.
//
// ghlint:holds c.mu
func (c *counter) lockedHelper() {
	c.n++
}

// readHelper holds the read side only: reads pass, writes would not.
//
// ghlint:holds c.mu read
func (c *counter) readHelper() int {
	return c.n
}

// holdsReadIsNotWrite: a read-mode contract does not license writes.
//
// ghlint:holds c.mu read
func (c *counter) holdsReadIsNotWrite() {
	c.n++ // want "RLock suffices for reads only"
}

// embedded guards through a promoted sync.Mutex: the lock call is
// s.Lock(), the guard key is the embedded field's name.
type embedded struct {
	sync.Mutex
	// ghlint:guardedby Mutex
	state string
}

func (e *embedded) ok() {
	e.Lock()
	e.state = "ready"
	e.Unlock()
}

func (e *embedded) bad() string {
	return e.state // want "read without holding e.Mutex"
}

// badDirectives: every malformed annotation is itself a finding,
// reported at the field it decorates.
type badDirectives struct {
	mu sync.Mutex
	nt string
	// ghlint:guardedby missing
	a int // want "guard field \"missing\" does not exist in struct badDirectives"
	// ghlint:guardedby nt
	b int // want "is not a sync.Mutex or sync.RWMutex"
	// ghlint:guardedby mu extra words
	c int // want "malformed directive"
}

// ghlint:holds nosuch.mu
func badHolds(d *badDirectives) { // want "not a receiver or parameter"
	_ = d
}

// selfGuard pins the self-reference error.
type selfGuard struct {
	// ghlint:guardedby mu
	mu sync.Mutex // want "cannot be guarded by itself"
}
