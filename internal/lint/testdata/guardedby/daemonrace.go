// Regression fixture reproducing the PR 3 daemon race shape: the
// control loop released d.mu to avoid holding it across a slow step,
// then stepped the session *in the gap* — so /status handlers reading
// under RLock raced the step. Only -race at runtime caught it then;
// guardedby must catch it at build time now. The fixed variant (step
// under the write lock, exactly the shipped fix) must be clean.
package guardedby

import "sync"

type session struct{ epoch int }

func (s *session) Step() { s.epoch++ }

type daemon struct {
	mu sync.RWMutex
	// ghlint:guardedby mu
	session *session
	// ghlint:guardedby mu
	history []int
}

// racyLoop is the pre-PR-3 shape: unlock, step, re-lock.
func (d *daemon) racyLoop() {
	for {
		d.mu.Lock()
		h := len(d.history)
		d.mu.Unlock()
		d.session.Step() // want "field daemon.session is guarded by mu: read without holding d.mu"
		d.mu.Lock()
		d.history = append(d.history, h)
		d.mu.Unlock()
	}
}

// fixedLoop is the shipped fix: the step happens under the write lock,
// and the status read path takes RLock.
func (d *daemon) fixedLoop() {
	for {
		d.mu.Lock()
		d.session.Step()
		d.history = append(d.history, len(d.history))
		d.mu.Unlock()
	}
}

// statusRead is the handler side: RLock suffices for reads.
func (d *daemon) statusRead() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.history) + d.session.epoch
}
