// Package lint is ghlint: a domain-aware static-analysis suite that
// mechanically enforces the invariants the rest of this repository only
// promises in prose — determinism of the simulation core, unit safety of
// power/energy arithmetic, and disciplined seed flow through the
// parallel experiment engine.
//
// The repo's headline claim (bit-identical serial-vs-parallel
// experiment output, see internal/runner) survives only as long as no
// simulation path reads the wall clock, the global RNG, the
// environment, or the CPU count, and every fan-out derives child seeds
// through runner.DeriveSeed. Those are conventions; this package is the
// machine that checks them on every build.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, analysistest-style fixtures under
// testdata/), but is self-contained on the standard library's go/ast and
// go/types so the tool builds with no third-party dependencies: the
// linter that guards the build must not complicate it.
//
// Ten analyzers ship today. Three are statement-local AST passes:
//
//   - determinism: forbids wall-clock, global-RNG, environment, and
//     CPU-count reads inside the deterministic core packages.
//   - seedflow: requires rand.NewSource seeds in the core to come from
//     runner.DeriveSeed or a config Seed field, never ad-hoc arithmetic.
//   - floateq: rejects ==/!= between non-constant floating-point
//     expressions outside approved epsilon helpers.
//
// Three are flow-sensitive, built on a per-function CFG (cfg.go) and a
// must-hold lock-set dataflow (lockset.go):
//
//   - guardedby: fields annotated `// ghlint:guardedby <mutexField>`
//     are only accessed where the mutex is provably held on every path
//     (RLock suffices for reads only; `// ghlint:holds` declares a
//     caller-holds-lock contract on helpers).
//   - goleak: every `go` statement needs a provable termination channel
//     (WaitGroup pairing, context argument, or a callee that selects /
//     receives / does not loop).
//   - deferclose: net/os resources must be closed, returned, or stored
//     on every control-flow path from their acquisition.
//
// One enforces the telemetry plane's bounded-concurrency contract:
//
//   - chanbound: every make(chan) in internal/telemetry and
//     internal/daemon needs an explicit capacity or a reasoned
//     `// ghlint:unbounded` directive, and every send needs a provable
//     non-blocking escape (select default, cancellation case, or a
//     `ghlint:mayblock` contract).
//
// Three are interprocedural, built on a whole-program call graph
// (callgraph.go) shared across every loaded package:
//
//   - units: dimension-flow analysis over the W/Wh/h/frac lattice —
//     dimensions seeded from identifier suffixes and `// ghlint:units`
//     annotations propagate through assignments, calls, returns, and
//     field stores; additive mixing, cross-boundary mismatches, and
//     laundering through neutral names are findings. Replaces the
//     retired local unitsafety pass (kept as a regression baseline).
//   - allocfree: functions annotated `// ghlint:allocfree` contain no
//     allocation site and call only annotated, whitelisted, or
//     contract-verified callees — the static form of the epoch hot
//     path's AllocsPerRun zero-alloc proof.
//   - dettaint: deterministic-core functions must not call helpers that
//     *transitively* reach a wall-clock or global-RNG read; findings
//     name the full call chain to the sink.
//
// Findings are suppressed line-by-line with a reasoned directive:
//
//	//lint:ghlint ignore <analyzer> <reason>
//
// See suppress.go for the exact placement rules. Malformed directives
// are themselves diagnostics, so a typo cannot silently disable a check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: an analyzer, a position, and a message.
type Diagnostic struct {
	// Pos locates the finding in the package's FileSet.
	Pos token.Pos
	// Analyzer names the analyzer that produced the finding (or
	// "ghlint" for driver-level findings such as malformed directives).
	Analyzer string
	// Message describes the violation and, where possible, the fix.
	Message string
	// Suppressed marks a finding silenced by a reasoned directive.
	// RunPackage drops suppressed findings; RunPackageAll keeps them
	// flagged, so the -json driver output can make suppression churn
	// reviewable.
	Suppressed bool
}

// Analyzer is one named check. Run inspects the package behind pass and
// reports findings via pass.Reportf; it must not retain the pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output, in the
	// -analyzers driver flag, and in suppression directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// Run executes the analyzer over one package.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Path is the package's import path. Package-gated analyzers
	// (determinism, seedflow) consult it via the config in config.go.
	Path string
	// Fset maps token.Pos to file positions.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package (may be partially complete if the
	// loader tolerated type errors).
	Pkg *types.Package
	// Info holds type-checker facts for expressions in Files.
	Info *types.Info
	// Prog is the interprocedural view over every loaded package (the
	// call graph, see callgraph.go). Interprocedural analyzers
	// (allocfree, dettaint) consult it; statement-local ones ignore it.
	// Always non-nil: single-package entry points build a one-package
	// program, in which cross-package callees appear as out-of-program
	// edges.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		SeedflowAnalyzer,
		UnitsAnalyzer,
		FloateqAnalyzer,
		GuardedbyAnalyzer,
		GoleakAnalyzer,
		DefercloseAnalyzer,
		ChanboundAnalyzer,
		AllocfreeAnalyzer,
		DettaintAnalyzer,
	}
}

// AnalyzerNames returns the names of the full suite, in order.
func AnalyzerNames() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// lookupAnalyzer resolves a name against the suite.
func lookupAnalyzer(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs the given analyzers over pkg, applies suppression
// directives, appends diagnostics for malformed directives, and returns
// the surviving findings sorted by position then analyzer. The result
// is deterministic: it depends only on the package's source.
//
// The package is analyzed as a one-package program: interprocedural
// analyzers see calls into unloaded packages as out-of-program edges.
// Use BuildProgram + RunProgramPackage for whole-program precision.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgramPackage(BuildProgram([]*Package{pkg}), pkg, analyzers)
}

// RunProgramPackage is RunPackage against a prebuilt multi-package
// program, so interprocedural analyzers resolve cross-package edges.
// Diagnostics are reported for pkg only; prog must contain pkg.
func RunProgramPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, d := range RunProgramPackageAll(prog, pkg, analyzers) {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunPackageAll is RunPackage without the suppression filter: silenced
// findings are returned with Suppressed set instead of dropped, so a
// reviewer (or the -json CI artifact) can see what the directives are
// holding back. Ordering and determinism match RunPackage.
func RunPackageAll(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgramPackageAll(BuildProgram([]*Package{pkg}), pkg, analyzers)
}

// RunProgramPackageAll is RunPackageAll against a prebuilt program.
func RunProgramPackageAll(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	sups, supDiags := collectDirectives(pkg.Fset, pkg.Files)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			d.Suppressed = sups.suppresses(pkg.Fset, d)
			diags = append(diags, d)
		}
	}
	diags = append(diags, supDiags...)

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
