// Package linttest is the fixture harness for ghlint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library: fixture files under testdata/ annotate the lines where an
// analyzer must fire with `// want "regexp"` comments, and Run fails
// the test on any missed, unexpected, or mismatched finding.
//
// Fixtures live under testdata/ so the go tool never builds them, but
// they are real, type-checked Go: they may import this module's
// packages and the standard library, and a fixture that stops
// type-checking fails the test rather than silently weakening it.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"greenhetero/internal/lint"
)

// wantRe matches one `// want "…"` annotation; several may share a line
// inside one comment.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

// wantQuoted splits the quoted regexp list captured by wantRe.
var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want annotation: a diagnostic matching rx must be
// reported on (file, line).
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

// Run loads the fixture files as one package with the given import path
// (package-gated analyzers consult the path: pass a deterministic-core
// path like "greenhetero/internal/sim" to put the fixture in scope),
// runs the analyzer through the full driver pipeline — suppression
// directives applied, malformed directives reported — and compares the
// surviving diagnostics against the fixture's want annotations.
func Run(t *testing.T, a *lint.Analyzer, importPath string, files ...string) {
	t.Helper()
	RunWithDeps(t, a, importPath, files)
}

// Dep is one fixture dependency for RunWithDeps: a package built from
// testdata files and loaded into the same call-graph program as the
// target, so interprocedural analyzers see genuine cross-package
// edges. Dependency packages live in real directories under testdata/
// (testdata/taintutil → "greenhetero/internal/lint/testdata/taintutil")
// so the target fixture's imports resolve through the source importer,
// while the go tool still never builds them. Path must match what the
// target imports — the call graph keys functions by import path, so a
// mismatch silently drops every cross-package edge.
type Dep struct {
	// Path is the dependency's import path.
	Path string
	// Files are its fixture files, relative to testdata/.
	Files []string
}

// RunWithDeps is Run for interprocedural analyzers: deps are loaded
// first, the target package last, and one call-graph program is built
// over all of them before the analyzer runs on the target alone. Want
// annotations are honored only in the target's files — findings never
// land in dependency packages (each package's own run reports those).
func RunWithDeps(t *testing.T, a *lint.Analyzer, importPath string, files []string, deps ...Dep) {
	t.Helper()
	if len(files) == 0 {
		t.Fatal("linttest: no fixture files")
	}
	for i, f := range files {
		files[i] = filepath.Join("testdata", f)
	}
	var pkgs []*lint.Package
	for _, d := range deps {
		df := make([]string, len(d.Files))
		for i, f := range d.Files {
			df[i] = filepath.Join("testdata", f)
		}
		dep, err := lint.LoadFiles(d.Path, df...)
		if err != nil {
			t.Fatalf("loading dependency %s: %v", d.Path, err)
		}
		if len(dep.TypeErrors) > 0 {
			t.Fatalf("dependency %s does not type-check: %v", d.Path, dep.TypeErrors)
		}
		pkgs = append(pkgs, dep)
	}
	pkg, err := lint.LoadFiles(importPath, files...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixtures do not type-check: %v", pkg.TypeErrors)
	}
	pkgs = append(pkgs, pkg)

	wants := collectWants(t, files)
	prog := lint.BuildProgram(pkgs)
	diags := lint.RunProgramPackage(prog, pkg, []*lint.Analyzer{a})

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// collectWants scans the fixture files line-by-line for want
// annotations; an annotation inside any comment (including directive
// comments) is honored.
func collectWants(t *testing.T, files []string) []expectation {
	t.Helper()
	var wants []expectation
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", name, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range wantQuoted.FindAllStringSubmatch(m[1], -1) {
				rx, err := regexp.Compile(unescape(q[1]))
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, q[1], err)
				}
				wants = append(wants, expectation{file: name, line: i + 1, rx: rx})
			}
		}
	}
	return wants
}

// unescape undoes the \" escapes the quoted form required.
func unescape(s string) string {
	return strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(s)
}
