package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greenhetero/internal/lint"
)

// TestAllocfreeCoversHotPath closes the loop between the dynamic and the
// static allocation proofs: every function pinned to zero allocations by
// a testing.AllocsPerRun bench must carry the ghlint:allocfree
// annotation, so the analyzer statically guards exactly the invariants
// the benches measure. The test discovers the actual pin sites in the
// tree, so neither a new pin nor a deleted one can silently drift away
// from the map below.
func TestAllocfreeCoversHotPath(t *testing.T) {
	// The pinned set, by package: how many AllocsPerRun call sites the
	// package's tests hold, and which symbols those pins exercise. A new
	// pin must extend this map (and annotate its call tree).
	pinned := map[string]struct {
		sites   int
		symbols []string
	}{
		"internal/fit": {sites: 1, symbols: []string{
			"greenhetero/internal/fit.(Accumulator).ReplaceWindow",
			"greenhetero/internal/fit.(Accumulator).Fit",
		}},
		"internal/profiledb": {sites: 2, symbols: []string{
			"greenhetero/internal/profiledb.(DB).AddFeedback",
			"greenhetero/internal/profiledb.(DB).ProjectionInto",
		}},
	}

	// 1. Discover the actual AllocsPerRun call sites. The needle is
	// split so this file does not count itself.
	needle := "testing.AllocsPerRun" + "("
	root := filepath.Join("..", "..")
	found := make(map[string]int)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n := strings.Count(string(src), needle)
		if n == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		found[filepath.ToSlash(rel)] += n
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pkg, n := range found {
		want, ok := pinned[pkg]
		if !ok {
			t.Errorf("%s has %d AllocsPerRun pin(s) not covered by this test; add its pinned symbols to the map", pkg, n)
			continue
		}
		if n != want.sites {
			t.Errorf("%s has %d AllocsPerRun pin sites, the map expects %d; update the pinned symbol list", pkg, n, want.sites)
		}
	}
	for pkg := range pinned {
		if found[pkg] == 0 {
			t.Errorf("%s lost its AllocsPerRun pin; drop it from the map or restore the bench", pkg)
		}
	}

	// 2. Every pinned symbol is under the allocfree contract.
	pkgs, err := lint.Load(root, "./internal/fit", "./internal/profiledb")
	if err != nil {
		t.Fatal(err)
	}
	prog := lint.BuildProgram(pkgs)
	for _, p := range pinned {
		for _, sym := range p.symbols {
			node, ok := prog.Funcs[sym]
			if !ok {
				t.Errorf("pinned symbol %s not found in the call graph", sym)
				continue
			}
			if !node.Allocfree {
				t.Errorf("%s is pinned zero-alloc by AllocsPerRun but is not ghlint:allocfree-annotated", sym)
			}
		}
	}
}
