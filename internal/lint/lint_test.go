package lint

import (
	"strings"
	"testing"
)

func TestIsDeterministicCore(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"greenhetero/internal/sim", true},
		{"greenhetero/internal/experiments", true},
		{"greenhetero/internal/battery", true},
		{"greenhetero/internal/runner", true},
		{"greenhetero/internal/telemetry", false}, // allowlisted
		{"greenhetero/internal/livenode", false},  // allowlisted
		{"greenhetero/internal/daemon", false},    // allowlisted
		{"greenhetero/internal/trace", false},     // allowlisted
		{"greenhetero/internal/lint", false},      // not classified
		{"greenhetero/cmd/greenhetero", false},    // outside internal/
		{"greenhetero", false},
		{"fmt", false},
		{"greenhetero/internal/sim/deep", false}, // only direct children classify
	}
	for _, c := range cases {
		if got := IsDeterministicCore(c.path); got != c.want {
			t.Errorf("IsDeterministicCore(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		errPart  string
	}{
		{"//lint:ghlint ignore floateq golden tables need identity", "floateq", ""},
		{"//lint:ghlint ignore determinism clock injected in tests // want \"x\"", "determinism", ""},
		{"//lint:ghlint", "", "bare directive"},
		{"//lint:ghlint forgive floateq please", "", "unknown verb"},
		{"//lint:ghlint ignore", "", "missing analyzer"},
		{"//lint:ghlint ignore nosuch reason", "", "unknown analyzer"},
		{"//lint:ghlint ignore floateq", "", "missing reason"},
	}
	for _, c := range cases {
		got, err := parseDirective(c.text)
		if c.errPart == "" {
			if err != nil || got != c.analyzer {
				t.Errorf("parseDirective(%q) = %q, %v; want %q, nil", c.text, got, err, c.analyzer)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("parseDirective(%q) err = %v; want containing %q", c.text, err, c.errPart)
		}
	}
}

// TestCheckDirIsCwd pins Load's contract that dir names the process
// working directory, the only root the source importer can resolve
// module-local imports against.
func TestCheckDirIsCwd(t *testing.T) {
	if err := checkDirIsCwd("."); err != nil {
		t.Errorf(`checkDirIsCwd(".") = %v, want nil`, err)
	}
	if err := checkDirIsCwd(t.TempDir()); err == nil {
		t.Error("checkDirIsCwd(non-cwd) = nil, want error")
	}
}

func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"determinism", "seedflow", "unitsafety", "floateq"}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if lookupAnalyzer(name) == nil {
			t.Errorf("lookupAnalyzer(%q) = nil", name)
		}
	}
}
