package lint

import (
	"os"
	"strings"
	"testing"
)

func TestIsDeterministicCore(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"greenhetero/internal/sim", true},
		{"greenhetero/internal/experiments", true},
		{"greenhetero/internal/battery", true},
		{"greenhetero/internal/runner", true},
		{"greenhetero/internal/telemetry", false}, // allowlisted
		{"greenhetero/internal/livenode", false},  // allowlisted
		{"greenhetero/internal/daemon", false},    // allowlisted
		{"greenhetero/internal/trace", false},     // allowlisted
		{"greenhetero/internal/lint", false},      // not classified
		{"greenhetero/cmd/greenhetero", false},    // outside internal/
		{"greenhetero", false},
		{"fmt", false},
		{"greenhetero/internal/sim/deep", false}, // only direct children classify
	}
	for _, c := range cases {
		if got := IsDeterministicCore(c.path); got != c.want {
			t.Errorf("IsDeterministicCore(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		errPart  string
	}{
		{"//lint:ghlint ignore floateq golden tables need identity", "floateq", ""},
		{"//lint:ghlint ignore determinism clock injected in tests // want \"x\"", "determinism", ""},
		{"//lint:ghlint", "", "bare directive"},
		{"//lint:ghlint forgive floateq please", "", "unknown verb"},
		{"//lint:ghlint ignore", "", "missing analyzer"},
		{"//lint:ghlint ignore nosuch reason", "", "unknown analyzer"},
		{"//lint:ghlint ignore floateq", "", "missing reason"},
	}
	for _, c := range cases {
		got, err := parseDirective(c.text)
		if c.errPart == "" {
			if err != nil || got != c.analyzer {
				t.Errorf("parseDirective(%q) = %q, %v; want %q, nil", c.text, got, err, c.analyzer)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("parseDirective(%q) err = %v; want containing %q", c.text, err, c.errPart)
		}
	}
}

// TestLoadFromSubdir pins the loader's module-root resolution: this
// test's working directory is internal/lint (two levels below the
// module root), yet Load works both on the current directory and on
// patterns resolved from an explicit other directory — the old
// must-be-cwd error is gone. It also verifies the cwd is restored.
func TestLoadFromSubdir(t *testing.T) {
	before, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}

	pkgs, err := Load(".")
	if err != nil {
		t.Fatalf(`Load(".") from internal/lint: %v`, err)
	}
	found := false
	for _, p := range pkgs {
		if p.Path == "greenhetero/internal/lint" {
			found = true
		}
	}
	if !found {
		t.Errorf(`Load(".") from internal/lint did not include the lint package itself`)
	}

	pkgs, err = Load("../..", "./internal/fit")
	if err != nil {
		t.Fatalf(`Load("../..", "./internal/fit"): %v`, err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "greenhetero/internal/fit" {
		t.Fatalf(`Load("../..", "./internal/fit") = %+v, want exactly greenhetero/internal/fit`, pkgs)
	}

	after, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("Load changed the working directory: %q -> %q", before, after)
	}
}

func TestModuleRootOutsideModule(t *testing.T) {
	if _, err := moduleRoot(os.TempDir()); err == nil {
		t.Error("moduleRoot(os.TempDir()) = nil error, want failure outside a module")
	}
}

func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"determinism", "seedflow", "units", "floateq", "guardedby", "goleak", "deferclose", "chanbound", "allocfree", "dettaint"}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if lookupAnalyzer(name) == nil {
			t.Errorf("lookupAnalyzer(%q) = nil", name)
		}
	}
}
