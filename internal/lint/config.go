package lint

import "strings"

// modulePath is the import-path prefix of this repository's packages.
const modulePath = "greenhetero"

// deterministicCore lists the packages whose results must be a pure
// function of their inputs: no wall clock, no global RNG, no
// environment, no CPU-count dependence. These are the packages the
// serial-vs-parallel equivalence proof (internal/runner, DESIGN §5a)
// and every golden experiment table stand on.
//
// internal/runner itself is included: it is the determinism contract's
// enforcement point, and its single legitimate CPU-count read
// (DefaultParallelism) carries a reasoned suppression directive.
var deterministicCore = map[string]bool{
	"sim":         true,
	"experiments": true,
	"policy":      true,
	"solver":      true,
	"cluster":     true,
	"scenario":    true,
	"profiledb":   true,
	"fit":         true,
	"solar":       true,
	"workload":    true,
	"battery":     true,
	"power":       true,
	"core":        true,
	"cost":        true,
	// Beyond the canonical list: pure-compute packages that feed the
	// same deterministic results.
	"runner":     true,
	"server":     true,
	"enforcer":   true,
	"timeseries": true,
	// wal: crash recovery must replay identically on every boot, and the
	// CrashFS's torn-write/survival choices are DeriveSeed-keyed — the
	// package has no business reading clocks or global randomness.
	"wal": true,
	// chaos: a storm's stress report must be byte-identical for a fixed
	// seed at any parallelism; every random choice (cascade victims,
	// jitter, crashpoints) flows from DeriveSeed-keyed streams spent at
	// engine build time.
	"chaos": true,
}

// wallClockAllowed lists the packages that legitimately face the wall
// clock, the environment, or live hardware, and are therefore exempt
// from the determinism and seedflow analyzers: the telemetry transport,
// the live-node agent, the daemon, operational metrics, the trace
// loader (which stamps ingestion timestamps), and the fault-injection
// proxy (its schedules are seeded, but its transport faces real
// sockets and timeouts).
var wallClockAllowed = map[string]bool{
	"telemetry": true,
	"livenode":  true,
	"daemon":    true,
	"metrics":   true,
	"trace":     true,
	"faultnet":  true,
}

// backpressureScope lists the packages under the bounded-concurrency
// contract (chanbound): the telemetry plane being rebuilt for 10k-agent
// scale (ROADMAP item 4) and the daemon that hosts it. Channels here
// must declare their capacity policy and sends must prove an escape;
// the rest of the repo opts in as its concurrency structure migrates.
var backpressureScope = map[string]bool{
	"telemetry": true,
	"daemon":    true,
}

// pkgKey reduces an import path to the name it is classified under:
// "greenhetero/internal/sim" → "sim". Paths outside this module's
// internal tree (cmd/, examples/, the root package, other modules)
// return "" and are never classified as core.
func pkgKey(importPath string) string {
	rest, ok := strings.CutPrefix(importPath, modulePath+"/internal/")
	if !ok {
		return ""
	}
	// Only direct children of internal/ are classified.
	if strings.Contains(rest, "/") {
		return ""
	}
	return rest
}

// IsDeterministicCore reports whether the package at importPath belongs
// to the deterministic core (and is not explicitly wall-clock-allowed).
func IsDeterministicCore(importPath string) bool {
	k := pkgKey(importPath)
	return deterministicCore[k] && !wallClockAllowed[k]
}

// approvedFloatEqHelpers names functions inside which exact float
// equality is the point — epsilon/equality helpers and ULP tricks. The
// floateq analyzer does not report comparisons lexically inside a
// function (or method) with one of these names.
var approvedFloatEqHelpers = map[string]bool{
	"approxEqual": true,
	"approxEq":    true,
	"almostEqual": true,
	"AlmostEqual": true,
	"EqualWithin": true,
	"eqWithin":    true,
	"floatEq":     true,
}
