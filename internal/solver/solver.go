// Package solver implements the GreenHetero problem solver (paper
// §IV-B.3): given per-group performance projections and a predicted power
// supply, find the power allocation ratio (PAR) vector that maximizes
// aggregate rack throughput (Eq. 8).
//
// The objective is a sum of clamped concave projections — but the clamp
// to zero below each server's idle power makes it non-concave (a server
// allocated less than idle contributes nothing, so it can be better to
// shut one group out entirely). A closed-form KKT solution is therefore
// unsafe. The solver instead searches the PAR simplex on a configurable
// grid (default 1 %, versus the Manual policy's 10 %) and then refines
// the best cell by coordinate descent with geometrically shrinking steps,
// which converges inside the locally-concave active cell.
//
// Within a group, power is split evenly across that group's servers (the
// paper distributes the same amount to servers of the same type). Any
// allocation a group cannot consume (beyond its effective peak) is
// trimmed and left unallocated — the scheduler routes it to the battery
// (the paper's "extra ratio (1−η−γ) … charged into batteries").
package solver

import (
	"errors"
	"fmt"
)

// GroupModel is the solver's view of one homogeneous server group.
type GroupModel struct {
	// Count is the number of identical servers in the group.
	Count int
	// IdleW is each server's idle power: allocations below it yield
	// zero performance.
	IdleW float64
	// PeakEffW is each server's effective peak for the current
	// workload: allocations above it are wasted.
	PeakEffW float64
	// Perf projects one server's throughput from its allocated power.
	// It must honor the clamping semantics (0 below IdleW, constant
	// above PeakEffW); profiledb.Entry.Predict does. The allocfree
	// annotation makes the field a verified contract: the solver's hot
	// loops call Perf millions of times per epoch, so every binding is
	// statically checked to be allocation-free.
	//
	// ghlint:allocfree
	Perf func(perServerW float64) float64
	// Coeffs, when non-nil, declares that Perf is a pure function fully
	// determined by (IdleW, PeakEffW, Coeffs) — true of a profiledb
	// projection, whose curve these are the coefficients of. Warm uses
	// the declaration to memoize solves and tabulate per-group values;
	// leave nil for opaque Perf functions and Warm degrades to the
	// reference search.
	Coeffs []float64
}

// Result is the optimized allocation.
type Result struct {
	// Fractions is the PAR vector: Fractions[i] of the supply goes to
	// group i. Sum ≤ 1; the remainder is unallocated (battery).
	Fractions []float64
	// PredictedPerf is the projected aggregate throughput.
	PredictedPerf float64
	// Evaluations counts objective evaluations (for the ablation bench).
	Evaluations int
}

var (
	// ErrNoGroups is returned for an empty model list.
	ErrNoGroups = errors.New("solver: no groups")
	// ErrTooManyGroups mirrors the paper's ≤3 configurations per rack.
	ErrTooManyGroups = errors.New("solver: more than 3 groups")
	// ErrBadModel is returned for invalid group models.
	ErrBadModel = errors.New("solver: bad group model")
	// ErrBadSupply is returned for non-positive supply.
	ErrBadSupply = errors.New("solver: supply must be positive")
)

// Options tune the search.
type Options struct {
	// GridStep is the coarse simplex granularity as a fraction of
	// supply (default 0.01, i.e. 1 %).
	GridStep float64
	// RefinePasses is the number of shrinking coordinate-descent passes
	// (default 3).
	RefinePasses int
}

// ghlint:allocfree
func (o Options) withDefaults() Options {
	if o.GridStep <= 0 || o.GridStep > 0.5 {
		o.GridStep = 0.01
	}
	if o.RefinePasses < 0 {
		o.RefinePasses = 0
	} else if o.RefinePasses == 0 {
		o.RefinePasses = 3
	}
	return o
}

// validate rejects malformed solver inputs; shared by Optimize and
// Warm.Optimize so both paths report identical errors.
//
// ghlint:allocfree
func validate(models []GroupModel, supplyW float64) error {
	if len(models) == 0 {
		return ErrNoGroups
	}
	if len(models) > 3 {
		return fmt.Errorf("%w: %d", ErrTooManyGroups, len(models))
	}
	if supplyW <= 0 {
		return fmt.Errorf("%w: %v", ErrBadSupply, supplyW)
	}
	for i, m := range models {
		if m.Count < 1 || m.IdleW <= 0 || m.PeakEffW <= m.IdleW || m.Perf == nil {
			return fmt.Errorf("%w: group %d: %+v", ErrBadModel, i, m)
		}
	}
	return nil
}

// Optimize finds the PAR vector maximizing projected throughput.
func Optimize(models []GroupModel, supplyW float64, opts Options) (Result, error) {
	if err := validate(models, supplyW); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()

	s := search{models: models, supplyW: supplyW}
	best := s.gridSearch(o.GridStep)
	best = s.refine(best, o.GridStep, o.RefinePasses)
	fracs := s.trim(best.fracs)
	return Result{
		Fractions:     fracs,
		PredictedPerf: best.perf,
		Evaluations:   s.evals,
	}, nil
}

// candidate is one evaluated point on the simplex.
type candidate struct {
	fracs []float64
	perf  float64
}

type search struct {
	models  []GroupModel
	supplyW float64
	evals   int
}

// objective projects aggregate throughput for a PAR vector.
//
// ghlint:allocfree
// ghlint:units fracs=frac
func (s *search) objective(fracs []float64) float64 {
	s.evals++
	var total float64
	for i, m := range s.models {
		perServer := fracs[i] * s.supplyW / float64(m.Count)
		total += float64(m.Count) * m.Perf(perServer)
	}
	return total
}

// gridSearch scans the simplex at the given step.
//
// ghlint:units step=frac
func (s *search) gridSearch(step float64) candidate {
	n := len(s.models)
	steps := int(1/step + 0.5)
	best := candidate{fracs: make([]float64, n), perf: -1}
	tryPoint := func(fracs []float64) {
		if p := s.objective(fracs); p > best.perf {
			best.perf = p
			copy(best.fracs, fracs)
		}
	}
	switch n {
	case 1:
		for i := 0; i <= steps; i++ {
			tryPoint([]float64{float64(i) * step})
		}
	case 2:
		fr := make([]float64, 2)
		for i := 0; i <= steps; i++ {
			fr[0] = float64(i) * step
			fr[1] = 1 - fr[0]
			tryPoint(fr)
		}
	case 3:
		fr := make([]float64, 3)
		for i := 0; i <= steps; i++ {
			for j := 0; i+j <= steps; j++ {
				fr[0] = float64(i) * step
				fr[1] = float64(j) * step
				fr[2] = 1 - fr[0] - fr[1]
				if fr[2] < 0 {
					fr[2] = 0
				}
				tryPoint(fr)
			}
		}
	}
	return best
}

// refine runs shrinking coordinate-descent passes around c. Each pass
// perturbs one coordinate pair (i gains what j loses, keeping the sum
// constant) by ±step, halving the step each pass.
//
// ghlint:units step=frac
func (s *search) refine(c candidate, step float64, passes int) candidate {
	n := len(s.models)
	if n == 1 {
		return c
	}
	fr := append([]float64(nil), c.fracs...)
	for pass := 0; pass < passes; pass++ {
		step /= 2
		improved := true
		for iter := 0; improved && iter < 20; iter++ {
			improved = false
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					d := step
					if fr[j] < d {
						d = fr[j]
					}
					if d <= 0 || fr[i]+d > 1 {
						continue
					}
					fr[i] += d
					fr[j] -= d
					if p := s.objective(fr); p > c.perf {
						c.perf = p
						copy(c.fracs, fr)
						improved = true
					} else {
						fr[i] -= d
						fr[j] += d
					}
				}
			}
		}
		copy(fr, c.fracs)
	}
	return c
}

// trim cuts each group's fraction back to what it can actually consume
// (Count × PeakEffW), freeing surplus for the battery, and zeroes
// fractions that leave every server below idle (pure waste).
// ghlint:units fracs=frac result=frac
func (s *search) trim(fracs []float64) []float64 {
	out := append([]float64(nil), fracs...)
	for i, m := range s.models {
		maxUseful := float64(m.Count) * m.PeakEffW / s.supplyW
		if out[i] > maxUseful {
			out[i] = maxUseful
		}
		perServer := out[i] * s.supplyW / float64(m.Count)
		if perServer < m.IdleW {
			out[i] = 0
		}
	}
	return out
}

// UniformFractions returns the heterogeneity-oblivious baseline PAR: the
// supply split evenly per server, so each group receives a share
// proportional to its server count (Table III "Uniform").
//
// ghlint:units result0=frac
func UniformFractions(counts []int) ([]float64, error) {
	if len(counts) == 0 {
		return nil, ErrNoGroups
	}
	var total int
	for i, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("%w: group %d count %d", ErrBadModel, i, c)
		}
		total += c
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out, nil
}
